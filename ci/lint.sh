#!/usr/bin/env bash
# ci/lint.sh — build (or reuse) the draid_lint binary and run the full
# repo scan. Single entry point for the CI lint job and the documented
# pre-commit hook, so both enforce the same budget and rule set.
#
# Environment knobs:
#   BUILD_DIR    build tree holding the lint binary (default: build-lint)
#   LINT_FORMAT  --format value: text | json | github (default: text)
#   LINT_REPORT  when set, also write the JSON report to this path
#   LINT_BUDGET  allow() suppression budget (default: 12)
#
# Extra arguments pass through to draid_lint (e.g. a path subset).
# Exit: 0 clean, 1 violations/over-budget/over-time, 2 usage error.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-lint}"
LINT_FORMAT="${LINT_FORMAT:-text}"
LINT_BUDGET="${LINT_BUDGET:-12}"
BIN="$BUILD_DIR/tools/draid_lint/draid_lint"

if [ ! -x "$BIN" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "$BUILD_DIR" --target draid_lint -j"$(nproc)" >/dev/null
fi

args=(--max-suppressions="$LINT_BUDGET" --format="$LINT_FORMAT")
if [ -n "${LINT_REPORT:-}" ]; then
    args+=(--report="$LINT_REPORT")
fi

start=$(date +%s)
status=0
"$BIN" "${args[@]}" "$@" || status=$?
elapsed=$(( $(date +%s) - start ))
echo "draid-lint wall-clock: ${elapsed}s" >&2

# The scan is a per-commit gate; if it cannot finish inside a minute it
# has regressed badly enough to fail the job outright.
if [ "$elapsed" -ge 60 ]; then
    echo "draid-lint exceeded the 60s wall-clock budget" >&2
    exit 1
fi
exit "$status"
