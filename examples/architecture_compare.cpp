/**
 * @file
 * Architecture shoot-out: the same 128 KB random-write workload against
 * Linux MD, the SPDK RAID POC, and dRAID on identical simulated testbeds,
 * with a per-NIC traffic breakdown that makes the §2.3 bandwidth argument
 * visible.
 *
 * Run: ./build/examples/architecture_compare
 */

#include <cstdio>
#include <memory>

#include "baselines/linux_md.h"
#include "baselines/spdk_raid.h"
#include "cluster/cluster.h"
#include "core/draid_host.h"
#include "workload/fio.h"

using namespace draid;

namespace {

struct Outcome
{
    double bw = 0.0;
    double lat = 0.0;
    double host_tx_per_user = 0.0;
    double host_rx_per_user = 0.0;
};

Outcome
run(const char *label, int which)
{
    cluster::TestbedConfig config;
    config.ssd.capacity = 2ull << 30;
    cluster::Cluster cluster(config, 8);

    std::unique_ptr<baselines::HostCentricRaid> baseline;
    std::unique_ptr<core::DraidSystem> draid;
    blockdev::BlockDevice *dev = nullptr;
    if (which == 0) {
        baseline = std::make_unique<baselines::LinuxMdRaid>(
            cluster, raid::RaidLevel::kRaid5, 512 * 1024);
        dev = baseline.get();
    } else if (which == 1) {
        baseline = std::make_unique<baselines::SpdkRaid>(
            cluster, raid::RaidLevel::kRaid5, 512 * 1024);
        dev = baseline.get();
    } else {
        core::DraidOptions options;
        draid = std::make_unique<core::DraidSystem>(cluster, options);
        dev = &draid->host();
    }

    workload::FioConfig fio;
    fio.ioSize = 128 * 1024;
    fio.readRatio = 0.0;
    fio.ioDepth = 32;
    fio.numOps = 1000;
    fio.workingSetBytes = 512ull << 20;

    const std::uint64_t tx0 =
        cluster.host().nic().tx().bytesTransferred();
    const std::uint64_t rx0 =
        cluster.host().nic().rx().bytesTransferred();
    workload::FioJob job(cluster.sim(), *dev, fio);
    auto r = job.run();

    Outcome o;
    o.bw = r.bandwidthMBps;
    o.lat = r.avgLatencyUs;
    const double user = 1000.0 * 128 * 1024;
    o.host_tx_per_user =
        (cluster.host().nic().tx().bytesTransferred() - tx0) / user;
    o.host_rx_per_user =
        (cluster.host().nic().rx().bytesTransferred() - rx0) / user;
    std::printf("%-9s %9.0f MB/s  %8.0f us   host tx/user %.2fx   "
                "rx/user %.2fx\n",
                label, o.bw, o.lat, o.host_tx_per_user,
                o.host_rx_per_user);
    return o;
}

} // namespace

int
main()
{
    std::printf("128KB random writes, RAID-5, 8 targets, iodepth 32\n");
    std::printf("%-9s %14s %11s %22s %14s\n", "system", "bandwidth",
                "latency", "", "");
    auto linux = run("LinuxMD", 0);
    auto spdk = run("SPDK", 1);
    auto draid = run("dRAID", 2);

    std::printf("\ndRAID vs SPDK: %.2fx bandwidth at %.0f%% of the host "
                "traffic\n",
                draid.bw / spdk.bw,
                100.0 * (draid.host_tx_per_user + draid.host_rx_per_user) /
                    (spdk.host_tx_per_user + spdk.host_rx_per_user));
    std::printf("dRAID vs Linux MD: %.2fx bandwidth\n",
                draid.bw / linux.bw);
    return 0;
}
