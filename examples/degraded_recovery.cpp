/**
 * @file
 * Failure lifecycle walkthrough: run a workload, lose a storage server,
 * serve degraded I/O, rebuild onto a spare with the bandwidth-aware
 * reducer policy, and verify every byte survived.
 *
 * Run: ./build/examples/degraded_recovery
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "cluster/cluster.h"
#include "core/draid_host.h"
#include "core/reconstruct.h"
#include "workload/fio.h"

using namespace draid;

int
main()
{
    // 9 targets: 8 array members + 1 spare from the shared pool (§1:
    // disaggregation means spares come from the pool, not per-array).
    cluster::TestbedConfig config;
    config.ssd.capacity = 1ull << 30;
    cluster::Cluster cluster(config, 9);

    core::DraidOptions options;
    options.chunkSize = 256 * 1024;
    options.reducerPolicy = core::ReducerPolicy::kBwAware;
    core::DraidSystem draid(cluster, options, /*width=*/8);
    auto &array = draid.host();
    const auto &geom = array.geometry();

    // Fill 64 stripes with a known pattern and keep a reference model.
    const std::uint64_t stripes = 64;
    const std::uint64_t span = stripes * geom.stripeDataSize();
    ec::Buffer content(span);
    content.fillPattern(7);
    bool loaded = false;
    array.write(0, content.clone(), [&](blockdev::IoStatus st) {
        loaded = st == blockdev::IoStatus::kOk;
    });
    cluster.sim().run();
    std::printf("loaded %.0f MB across %llu stripes: %s\n",
                span / 1e6, static_cast<unsigned long long>(stripes),
                loaded ? "OK" : "FAILED");

    // Disaster: storage server 3 goes dark.
    cluster.failTarget(3);
    array.markFailed(3);
    std::printf("server 3 failed -> array degraded\n");

    // Degraded workload: 200 random reads, some of which reconstruct.
    workload::FioConfig fio;
    fio.ioSize = 128 * 1024;
    fio.readRatio = 1.0;
    fio.ioDepth = 16;
    fio.numOps = 200;
    fio.workingSetBytes = span;
    workload::FioJob job(cluster.sim(), array, fio);
    auto result = job.run();
    std::printf("degraded reads: %.0f MB/s, avg %.0f us, %llu errors "
                "(%llu reconstructed)\n",
                result.bandwidthMBps, result.avgLatencyUs,
                static_cast<unsigned long long>(result.errors),
                static_cast<unsigned long long>(
                    array.counters().degradedReads));

    // Rebuild the lost drive onto spare target 8, peer-to-peer.
    core::RebuildJob rebuild(
        cluster.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            array.reconstructChunk(stripe, 8, std::move(done));
        },
        stripes, geom.chunkSize(), /*window=*/16);
    rebuild.start([&](bool ok) {
        std::printf("rebuild %s: %.0f MB/s, %llu stripes\n",
                    ok ? "complete" : "had failures",
                    rebuild.throughputMBps(),
                    static_cast<unsigned long long>(
                        rebuild.stripesDone()));
        cluster.sim().stop();
    });
    cluster.sim().run();

    // The spare now mirrors the lost device; verify every stripe's chunk.
    std::uint64_t verified = 0;
    for (std::uint64_t s = 0; s < stripes; ++s) {
        if (geom.roleOf(s, 3) != raid::ChunkRole::kData)
            continue; // parity chunks checked implicitly below
        const std::uint32_t idx = geom.dataIndexOf(s, 3);
        const std::uint64_t user_off =
            s * geom.stripeDataSize() +
            static_cast<std::uint64_t>(idx) * geom.chunkSize();
        ec::Buffer expect = content.slice(user_off, geom.chunkSize());
        ec::Buffer got = cluster.target(8).ssd().store().readSync(
            geom.deviceAddress(s, 0), geom.chunkSize());
        if (got.contentEquals(expect))
            ++verified;
    }
    std::printf("spare verification: %llu data chunks byte-identical\n",
                static_cast<unsigned long long>(verified));

    // Full end-to-end read while still degraded (host uses parity for
    // anything on device 3).
    bool all_ok = false;
    array.read(0, static_cast<std::uint32_t>(span),
               [&](blockdev::IoStatus st, ec::Buffer all) {
                   all_ok = st == blockdev::IoStatus::kOk &&
                            all.contentEquals(content);
               });
    cluster.sim().run();
    std::printf("full degraded read-back: %s\n",
                all_ok ? "all bytes intact" : "MISMATCH");

    // Swap the rebuilt spare in: the array is healthy again, and member
    // slot 3 is served by target 8 from the shared pool.
    array.replaceDevice(3, 8);
    std::printf("spare swapped in -> array %s (member 3 now on target "
                "%u)\n",
                array.isDegraded() ? "STILL DEGRADED" : "healthy",
                array.targetOf(3));

    bool healthy_ok = false;
    array.read(0, static_cast<std::uint32_t>(span),
               [&](blockdev::IoStatus st, ec::Buffer all) {
                   healthy_ok = st == blockdev::IoStatus::kOk &&
                                all.contentEquals(content);
               });
    cluster.sim().run();
    std::printf("healthy read-back after swap: %s\n",
                healthy_ok ? "all bytes intact" : "MISMATCH");
    return all_ok && healthy_ok ? 0 : 1;
}
