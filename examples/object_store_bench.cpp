/**
 * @file
 * Serverless-style object workload (the use case motivating disaggregated
 * RAID in §1): a lightweight object store on a dRAID-5 array serving a
 * YCSB-A mix of 128 KB objects, compared in normal and degraded state.
 *
 * Run: ./build/examples/object_store_bench
 */

#include <cstdio>
#include <functional>
#include <memory>

#include "app/object_store.h"
#include "cluster/cluster.h"
#include "core/draid_host.h"
#include "sim/stats.h"
#include "workload/ycsb.h"

using namespace draid;

namespace {

struct RunStats
{
    double kiops = 0.0;
    double avg_us = 0.0;
};

RunStats
runYcsbA(cluster::Cluster &cluster, app::ObjectStore &store,
         std::uint64_t objects, std::uint64_t ops)
{
    workload::YcsbGenerator gen(workload::YcsbWorkload::kA,
                                workload::YcsbDistribution::kUniform,
                                objects, 99);
    sim::LatencyRecorder lat;
    const sim::Ticks begin = cluster.sim().now();
    std::uint64_t issued = 0, completed = 0;

    std::function<void()> next = [&]() {
        if (issued >= ops)
            return;
        ++issued;
        const auto op = gen.next();
        const sim::Ticks t0 = cluster.sim().now();
        auto finish = [&, t0]() {
            lat.record(cluster.sim().now() - t0);
            if (++completed == ops)
                cluster.sim().stop();
            else
                next();
        };
        if (op.type == workload::YcsbOp::Type::kRead) {
            store.get(op.key, [finish](bool, ec::Buffer) { finish(); });
        } else {
            ec::Buffer obj(store.objectSize());
            obj.fill(static_cast<std::uint8_t>(op.key));
            store.put(op.key, std::move(obj), [finish](bool) { finish(); });
        }
    };
    for (int i = 0; i < 32; ++i)
        next();
    cluster.sim().run();

    RunStats out;
    out.kiops = static_cast<double>(completed) /
                sim::toSeconds(cluster.sim().now() - begin) / 1e3;
    out.avg_us = lat.mean() / sim::kMicrosecond;
    return out;
}

} // namespace

int
main()
{
    cluster::TestbedConfig config;
    config.ssd.capacity = 2ull << 30;
    cluster::Cluster cluster(config, 8);

    core::DraidOptions options;
    core::DraidSystem draid(cluster, options);
    app::ObjectStore store(draid.host(), 128 * 1024);

    // Load 8000 objects (~1 GB of user data).
    const std::uint64_t objects = 8000;
    std::uint64_t loaded = 0, next_id = 0;
    std::function<void()> load = [&]() {
        if (next_id >= objects)
            return;
        const std::uint64_t id = next_id++;
        ec::Buffer obj(store.objectSize());
        obj.fill(static_cast<std::uint8_t>(id));
        store.put(id, std::move(obj), [&](bool) {
            if (++loaded == objects)
                cluster.sim().stop();
            else
                load();
        });
    };
    for (int i = 0; i < 16; ++i)
        load();
    cluster.sim().run();
    std::printf("loaded %llu x 128KB objects (%.1f GB)\n",
                static_cast<unsigned long long>(loaded),
                loaded * 128.0 / 1024 / 1024);

    auto normal = runYcsbA(cluster, store, objects, 10000);
    std::printf("YCSB-A normal state:   %7.1f KIOPS, avg %6.0f us\n",
                normal.kiops, normal.avg_us);

    draid.host().markFailed(2);
    auto degraded = runYcsbA(cluster, store, objects, 10000);
    std::printf("YCSB-A degraded state: %7.1f KIOPS, avg %6.0f us "
                "(server 2 down)\n",
                degraded.kiops, degraded.avg_us);

    std::printf("degraded retains %.0f%% of normal throughput\n",
                100.0 * degraded.kiops / normal.kiops);
    return 0;
}
