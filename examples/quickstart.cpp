/**
 * @file
 * Quickstart: build a simulated 8-server testbed, create a dRAID-5 array
 * over it, write and read back data, and print what moved where.
 *
 * Run: ./build/examples/quickstart
 */

#include <cstdio>

#include "cluster/cluster.h"
#include "core/draid_host.h"

using namespace draid;

int
main()
{
    // 1. A testbed: one host plus eight storage servers, each with a
    //    100 Gbps NIC and one NVMe SSD (calibrated to the paper's drive).
    cluster::TestbedConfig config;
    config.ssd.capacity = 4ull << 30;
    cluster::Cluster cluster(config, /*num_targets=*/8);

    // 2. A dRAID-5 array across all eight targets (512 KB chunks).
    core::DraidOptions options;
    options.level = raid::RaidLevel::kRaid5;
    options.chunkSize = 512 * 1024;
    core::DraidSystem draid(cluster, options);
    auto &array = draid.host();

    std::printf("dRAID-5 array: %u devices, %.1f GB usable\n",
                array.geometry().width(),
                static_cast<double>(array.sizeBytes()) / (1ull << 30));

    // 3. Write 1 MB of data at offset 128 KB (a partial-stripe write:
    //    watch the disaggregated parity machinery run).
    ec::Buffer data(1 << 20);
    data.fillPattern(2023);
    bool done = false;
    array.write(128 * 1024, data.clone(), [&](blockdev::IoStatus st) {
        std::printf("write completed: %s at t=%.1f us\n",
                    st == blockdev::IoStatus::kOk ? "OK" : "FAILED",
                    sim::toMicros(cluster.sim().now()));
        done = true;
    });
    cluster.sim().run();
    if (!done)
        return 1;

    // 4. Read it back and verify.
    bool match = false;
    array.read(128 * 1024, 1 << 20,
               [&](blockdev::IoStatus st, ec::Buffer got) {
                   match = st == blockdev::IoStatus::kOk &&
                           got.contentEquals(data);
               });
    cluster.sim().run();
    std::printf("read-back verification: %s\n",
                match ? "bytes identical" : "MISMATCH");

    // 5. Where did the bytes go? The host sent ~1 MB (the user data);
    //    partial parities flowed peer-to-peer between storage servers.
    std::printf("\ntraffic summary:\n");
    std::printf("  host     tx %8.0f KB   rx %8.0f KB\n",
                cluster.host().nic().tx().bytesTransferred() / 1024.0,
                cluster.host().nic().rx().bytesTransferred() / 1024.0);
    for (std::uint32_t i = 0; i < cluster.numTargets(); ++i) {
        std::printf("  server %u tx %8.0f KB   rx %8.0f KB\n", i,
                    cluster.target(i).nic().tx().bytesTransferred() /
                        1024.0,
                    cluster.target(i).nic().rx().bytesTransferred() /
                        1024.0);
    }

    const auto &c = array.counters();
    std::printf("\nwrite modes used: %llu RMW, %llu reconstruct-write, "
                "%llu full-stripe\n",
                static_cast<unsigned long long>(c.rmwWrites),
                static_cast<unsigned long long>(c.rcwWrites),
                static_cast<unsigned long long>(c.fullStripeWrites));
    return match ? 0 : 1;
}
