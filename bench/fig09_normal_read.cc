// Bench binary regenerating the paper's fig09_normal_read.
#include "figures.h"

int
main(int argc, char **argv)
{
    // Default artifacts: a bench-JSON perf row per job plus the windowed
    // timeline. --bench-json= / --timeline= override the paths.
    draid::bench::TelemetryOptions defaults;
    defaults.benchJsonPath = "BENCH_fig09.json";
    defaults.timelinePath = "TIMELINE_fig09.json";
    draid::bench::initTelemetry(argc, argv, defaults);
    draid::bench::figReadVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 9");
    return 0;
}
