// Bench binary regenerating the paper's fig09_normal_read.
#include "figures.h"

int
main(int argc, char **argv)
{
    // Default artifacts: a bench-JSON perf row per job, the windowed
    // timeline, and the engine wall-clock profile (ROADMAP item 1's
    // baseline artifact). --bench-json= / --timeline= / --profile=
    // override the paths; --no-profile turns the profiler off.
    draid::bench::TelemetryOptions defaults;
    defaults.benchJsonPath = "BENCH_fig09.json";
    defaults.timelinePath = "TIMELINE_fig09.json";
    defaults.profilePath = "BENCH_simcore.json";
    defaults.benchLabel = "fig09";
    draid::bench::initTelemetry(argc, argv, defaults);
    draid::bench::figReadVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 9");
    return 0;
}
