// Bench binary regenerating the paper's fig09_normal_read.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figReadVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 9");
    return 0;
}
