/**
 * @file
 * Synthetic event-pump microbenchmark for the simulator core.
 *
 * Measures raw engine throughput with no simulated components in the way,
 * giving BENCH_simcore.json a lower bound to compare the fig09/fig17
 * attribution numbers against:
 *
 *  - micro.noop  : N independent no-op events, pre-scheduled in same-tick
 *                  groups so the heap is deep and batches are wide — the
 *                  push/pop + drain cost of a loaded heap.
 *  - micro.chain : N chained events, each scheduling its successor — the
 *                  near-empty-heap latency path every continuation
 *                  callback in the real simulation pays.
 *
 * All timing comes from telemetry::SimProfiler; this file never reads the
 * host clock itself (the draid-lint wall-clock rule bans that outside
 * src/telemetry/, here as everywhere in bench/).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "sim/simulator.h"
#include "telemetry/sim_profiler.h"

namespace {

struct Options
{
    std::uint64_t events = 1u << 20; ///< events per pump
    std::uint64_t seed = 1;          ///< no RNG; recorded for the row key
    std::string profilePath = "BENCH_simcore.json";
    bool ascii = false;
};

/** Group size for the same-tick batches of the no-op pump. */
constexpr std::uint64_t kBatchWidth = 64;

void
runNoopPump(draid::telemetry::SimProfiler &profiler, std::uint64_t events)
{
    draid::sim::Simulator sim;
    profiler.attach(sim);
    // Pre-schedule everything so the heap holds `events` entries at its
    // deepest; kBatchWidth events share each tick to exercise the
    // same-tick drain.
    for (std::uint64_t i = 0; i < events; ++i) {
        const draid::sim::Tick when =
            static_cast<draid::sim::Tick>(i / kBatchWidth);
        sim.scheduleAt(draid::sim::Ticks{when}, "micro.noop", []() {});
    }
    sim.run();
}

void
runChainPump(draid::telemetry::SimProfiler &profiler, std::uint64_t events)
{
    draid::sim::Simulator sim;
    profiler.attach(sim);
    std::uint64_t remaining = events;
    // Self-rescheduling chain: exactly one event in the heap at a time.
    std::function<void()> step = [&]() {
        if (--remaining > 0)
            sim.schedule(draid::sim::Ticks{1}, "micro.chain", step);
    };
    sim.schedule(draid::sim::Ticks{1}, "micro.chain", step);
    sim.run();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--events=", 0) == 0)
            opts.events = std::strtoull(arg.c_str() + 9, nullptr, 10);
        else if (arg.rfind("--seed=", 0) == 0)
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--profile=", 0) == 0)
            opts.profilePath = arg.substr(10);
        else if (arg == "--profile-ascii")
            opts.ascii = true;
        else if (arg == "--no-profile")
            opts.profilePath.clear();
        else if (arg == "--strict-flags") {
            // micro_simcore is already strict: unknown flags exit 2.
        } else {
            std::fprintf(stderr,
                         "usage: micro_simcore [--events=N] [--seed=N] "
                         "[--profile=<path>] [--profile-ascii] "
                         "[--no-profile]\n");
            return 2;
        }
    }
    if (opts.events == 0)
        opts.events = 1;

    draid::telemetry::SimProfiler profiler;
    runNoopPump(profiler, opts.events);
    runChainPump(profiler, opts.events);

    const draid::telemetry::SimProfiler::Report report = profiler.report();
    std::printf("# micro_simcore: %llu events/pump, %.0f events/sec "
                "aggregate\n",
                static_cast<unsigned long long>(opts.events),
                report.eventsPerSec);
    if (!opts.profilePath.empty()) {
        std::ofstream os(opts.profilePath, std::ios::trunc);
        if (!os) {
            std::fprintf(stderr,
                         "error: could not write engine profile to %s\n",
                         opts.profilePath.c_str());
            return 1;
        }
        draid::telemetry::SimProfiler::writeJson(os, report,
                                                 "micro_simcore",
                                                 opts.seed);
    }
    if (opts.ascii) {
        std::ostringstream ss;
        draid::telemetry::SimProfiler::renderAscii(ss, report,
                                                   "micro_simcore");
        std::fputs(ss.str().c_str(), stderr);
    }
    return 0;
}
