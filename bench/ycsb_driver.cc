#include "ycsb_driver.h"

#include <memory>

namespace draid::bench {

namespace {

/** Generic closed-loop runner: keeps `depth` app ops in flight. */
template <typename IssueFn>
YcsbResult
runClosedLoop(sim::Simulator &sim, std::uint64_t num_ops, int depth,
              IssueFn issue)
{
    struct State
    {
        std::uint64_t issued = 0;
        std::uint64_t completed = 0;
        sim::LatencyRecorder latency;
        sim::Ticks begin = sim::Ticks::zero();
    };
    auto st = std::make_shared<State>();
    st->begin = sim.now();

    // issue(onDone) starts one op; onDone() is called at completion.
    std::function<void()> pump = [&sim, st, num_ops, &issue, &pump]() {};
    auto pump_ptr = std::make_shared<std::function<void()>>();
    *pump_ptr = [&sim, st, num_ops, issue, pump_ptr]() {
        if (st->issued >= num_ops)
            return;
        ++st->issued;
        const sim::Ticks t0 = sim.now();
        issue([&sim, st, num_ops, t0, pump_ptr]() {
            st->latency.record(sim.now() - t0);
            if (++st->completed == num_ops) {
                sim.stop();
                return;
            }
            (*pump_ptr)();
        });
    };
    for (int i = 0; i < depth; ++i)
        (*pump_ptr)();
    sim.run();

    YcsbResult r;
    const double secs = sim::toSeconds(sim.now() - st->begin);
    if (secs > 0)
        r.kiops = static_cast<double>(st->completed) / secs / 1e3;
    r.avgLatencyUs = st->latency.mean() / sim::kMicrosecond;
    return r;
}

} // namespace

YcsbResult
runObjectStoreYcsb(SystemUnderTest &sut, workload::YcsbWorkload workload,
                   std::uint64_t num_objects, std::uint64_t num_ops,
                   int depth, std::uint32_t object_size)
{
    auto &sim = sut.sim();
    auto store = std::make_shared<app::ObjectStore>(sut.device(),
                                                    object_size);

    // Load phase: insert every object (uniform distribution per §9.6).
    {
        std::uint64_t loaded = 0;
        std::uint64_t next = 0;
        auto pump = std::make_shared<std::function<void()>>();
        *pump = [&, pump]() {
            if (next >= num_objects)
                return;
            const std::uint64_t id = next++;
            ec::Buffer obj(object_size);
            obj.fill(static_cast<std::uint8_t>(id));
            store->put(id, std::move(obj), [&, pump](bool) {
                if (++loaded == num_objects)
                    sim.stop();
                else
                    (*pump)();
            });
        };
        for (int i = 0; i < 16 && i < static_cast<int>(num_objects); ++i)
            (*pump)();
        sim.run();
    }

    // Key stream seed derives from the harness --seed (offset keeps the
    // object-store and MiniKv streams distinct, and the default seed of 1
    // reproduces the historical artifacts).
    auto gen = std::make_shared<workload::YcsbGenerator>(
        workload, workload::YcsbDistribution::kUniform, num_objects,
        benchSeed() + 6);

    return runClosedLoop(
        sim, num_ops, depth,
        [store, gen, object_size](std::function<void()> done) {
            const auto op = gen->next();
            switch (op.type) {
              case workload::YcsbOp::Type::kRead:
                store->get(op.key,
                           [done](bool, ec::Buffer) { done(); });
                break;
              case workload::YcsbOp::Type::kUpdate:
              case workload::YcsbOp::Type::kInsert: {
                ec::Buffer obj(object_size);
                obj.fill(static_cast<std::uint8_t>(op.key));
                store->put(op.key, std::move(obj),
                           [done](bool) { done(); });
                break;
              }
              case workload::YcsbOp::Type::kReadModifyWrite:
                store->get(op.key, [store, op, object_size,
                                    done](bool, ec::Buffer data) {
                    ec::Buffer updated =
                        data.empty() ? ec::Buffer(object_size)
                                     : data.clone();
                    updated[0] ^= 1;
                    store->put(op.key, std::move(updated),
                               [done](bool) { done(); });
                });
                break;
            }
        });
}

YcsbResult
runMiniKvYcsb(SystemUnderTest &sut, workload::YcsbWorkload workload,
              std::uint64_t num_records, std::uint64_t num_ops, int depth)
{
    auto &sim = sut.sim();
    app::MiniKvConfig cfg;
    auto kv = std::make_shared<app::MiniKv>(
        sim, sut.cluster().host().cpu(), sut.device(), cfg);

    // Load phase.
    {
        std::uint64_t loaded = 0;
        std::uint64_t next = 0;
        auto pump = std::make_shared<std::function<void()>>();
        *pump = [&, pump]() {
            if (next >= num_records)
                return;
            kv->put(next++, [&, pump](bool) {
                if (++loaded == num_records)
                    sim.stop();
                else
                    (*pump)();
            });
        };
        for (int i = 0; i < 32; ++i)
            (*pump)();
        sim.run();
    }

    // Uniform keys (like the paper's object-store runs): MiniKv's compact
    // keyspace would otherwise concentrate zipfian-hot keys into a single
    // stripe and overstate the POC's read-lock penalty.
    auto gen = std::make_shared<workload::YcsbGenerator>(
        workload,
        workload == workload::YcsbWorkload::kD
            ? workload::YcsbDistribution::kLatest
            : workload::YcsbDistribution::kUniform,
        num_records, benchSeed() + 10);

    return runClosedLoop(sim, num_ops, depth,
                         [kv, gen](std::function<void()> done) {
        const auto op = gen->next();
        switch (op.type) {
          case workload::YcsbOp::Type::kRead:
            kv->get(op.key, [done](bool) { done(); });
            break;
          case workload::YcsbOp::Type::kUpdate:
          case workload::YcsbOp::Type::kInsert:
            kv->put(op.key, [done](bool) { done(); });
            break;
          case workload::YcsbOp::Type::kReadModifyWrite:
            kv->get(op.key, [kv, op, done](bool) {
                kv->put(op.key, [done](bool) { done(); });
            });
            break;
        }
    });
}

} // namespace draid::bench
