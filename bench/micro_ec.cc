// google-benchmark microbenchmarks of the erasure-coding kernels (the
// ISA-L stand-ins of §8): XOR parity, GF(2^8) multiply-accumulate, RAID-6
// P+Q generation, and recovery paths.

#include <benchmark/benchmark.h>

#include <vector>

#include "ec/buffer.h"
#include "ec/gf256.h"
#include "ec/raid5_codec.h"
#include "ec/raid6_codec.h"
#include "ec/xor_kernel.h"

using namespace draid::ec;

namespace {

std::vector<Buffer>
makeData(std::size_t k, std::size_t len)
{
    std::vector<Buffer> data;
    for (std::size_t i = 0; i < k; ++i) {
        Buffer b(len);
        b.fillPattern(i + 1);
        data.push_back(b);
    }
    return data;
}

void
BM_XorInto(benchmark::State &state)
{
    const auto len = static_cast<std::size_t>(state.range(0));
    Buffer a(len), b(len);
    a.fillPattern(1);
    b.fillPattern(2);
    for (auto _ : state) {
        xorInto(a.data(), b.data(), len);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(len));
}
BENCHMARK(BM_XorInto)->Arg(4096)->Arg(65536)->Arg(524288);

void
BM_GfMulAccum(benchmark::State &state)
{
    const auto len = static_cast<std::size_t>(state.range(0));
    Buffer src(len), dst(len);
    src.fillPattern(3);
    const auto &gf = Gf256::instance();
    for (auto _ : state) {
        gf.mulAccum(0x1d, src.data(), dst.data(), len);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfMulAccum)->Arg(4096)->Arg(65536)->Arg(524288);

void
BM_Raid5Parity(benchmark::State &state)
{
    auto data = makeData(7, 65536);
    for (auto _ : state) {
        auto p = Raid5Codec::computeParity(data);
        benchmark::DoNotOptimize(p.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            7 * 65536);
}
BENCHMARK(BM_Raid5Parity);

void
BM_Raid6PQ(benchmark::State &state)
{
    auto data = makeData(6, 65536);
    Buffer p, q;
    for (auto _ : state) {
        Raid6Codec::computePQ(data, p, q);
        benchmark::DoNotOptimize(q.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            6 * 65536);
}
BENCHMARK(BM_Raid6PQ);

void
BM_Raid6RecoverTwoData(benchmark::State &state)
{
    auto data = makeData(6, 65536);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);
    for (auto _ : state) {
        auto broken = data;
        broken[1] = Buffer();
        broken[4] = Buffer();
        Raid6Codec::recoverTwoData(broken, p, q, 1, 4);
        benchmark::DoNotOptimize(broken[1].data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            2 * 65536);
}
BENCHMARK(BM_Raid6RecoverTwoData);

void
BM_Raid5Delta(benchmark::State &state)
{
    Buffer oldc(131072), newc(131072);
    oldc.fillPattern(5);
    newc.fillPattern(6);
    for (auto _ : state) {
        auto d = Raid5Codec::delta(oldc, newc);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            131072);
}
BENCHMARK(BM_Raid5Delta);

} // namespace

BENCHMARK_MAIN();
