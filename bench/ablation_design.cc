// Ablation bench for the design choices DESIGN.md calls out:
//   1. peer-to-peer forwarding vs relaying partials through the host (§3),
//   2. the §5.3 parallel I/O pipeline vs serial execution,
//   3. the §5.2 non-blocking reduce vs a barrier,
// measured as 128 KB random-write bandwidth/latency on the default array.

#include "harness.h"

using namespace draid;
using namespace draid::bench;

namespace {

constexpr std::uint64_t kKb = 1024;
constexpr std::uint64_t kMb = 1024 * 1024;

workload::FioResult
runVariant(const core::DraidOptions &opts, int depth = 32)
{
    ArrayConfig array;
    array.width = 8;
    array.draidOpts = opts;
    SystemUnderTest sut(SystemKind::kDraid, array);
    workload::FioConfig fio;
    fio.ioSize = 128 * kKb;
    fio.readRatio = 0.0;
    fio.ioDepth = depth;
    fio.numOps = 1200;
    fio.workingSetBytes = 512 * kMb;
    return runFio(sut, fio);
}

} // namespace

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    printFigureHeader("Ablation",
                      "dRAID design-choice ablations (RAID-5, 8 targets, "
                      "128KB writes, iodepth 32)",
                      {"variant", "MBps", "avg_us", "p99_us"});

    struct Variant
    {
        const char *name;
        core::DraidOptions opts;
    };
    core::DraidOptions full;
    core::DraidOptions no_pipeline;
    no_pipeline.pipeline = false;
    core::DraidOptions barrier;
    barrier.nonBlockingReduce = false;
    core::DraidOptions host_relay;
    host_relay.p2pForwarding = false;
    core::DraidOptions worst;
    worst.pipeline = false;
    worst.nonBlockingReduce = false;
    worst.p2pForwarding = false;

    const Variant variants[] = {
        {"full dRAID", full},
        {"no §5.3 pipeline", no_pipeline},
        {"§5.2 barrier reduce", barrier},
        {"host-relay partials", host_relay},
        {"all disabled", worst},
    };

    int idx = 0;
    for (const auto &v : variants) {
        auto r = runVariant(v.opts);
        std::printf("# variant %d: %s\n", idx, v.name);
        printRow({static_cast<double>(idx++), r.bandwidthMBps,
                  r.avgLatencyUs, r.p99LatencyUs});
    }
    printNote("expected: host relay costs ~2x host tx (halves peak BW); "
              "pipeline and non-blocking reduce each shave latency");

    // Latency-focused comparison at depth 1 where overlap matters most.
    printFigureHeader("Ablation (qd1)",
                      "single-outstanding write latency per variant",
                      {"variant", "MBps", "avg_us", "p99_us"});
    idx = 0;
    for (const auto &v : variants) {
        auto r = runVariant(v.opts, /*depth=*/1);
        std::printf("# variant %d: %s\n", idx, v.name);
        printRow({static_cast<double>(idx++), r.bandwidthMBps,
                  r.avgLatencyUs, r.p99LatencyUs});
    }
    return 0;
}
