/**
 * @file
 * Shared bench harness: builds each system under test on a fresh simulated
 * testbed and runs FIO-style jobs against it, printing rows in the shape
 * of the paper's figures (bandwidth MB/s + average latency us).
 */

#ifndef DRAID_BENCH_HARNESS_H
#define DRAID_BENCH_HARNESS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/linux_md.h"
#include "baselines/spdk_raid.h"
#include "cluster/cluster.h"
#include "core/draid_host.h"
#include "workload/fio.h"

namespace draid::bench {

/** The three systems the paper compares (§9.1). */
enum class SystemKind
{
    kLinux,
    kSpdk,
    kDraid,
};

const char *name(SystemKind kind);

/** Shape of the array under test. */
struct ArrayConfig
{
    raid::RaidLevel level = raid::RaidLevel::kRaid5;
    std::uint32_t chunkKb = 512;
    std::uint32_t width = 8;       ///< member devices
    std::uint32_t spares = 0;      ///< extra targets beyond the members
    core::DraidOptions draidOpts;  ///< dRAID-only toggles
    std::vector<double> targetNicGoodputs; ///< heterogeneity (Fig. 17b)
};

/**
 * Flags shared by every bench binary:
 *   --seed=<n>             RNG seed for every workload the binary runs
 *                          (FIO offset/ratio draws and the YCSB key
 *                          streams all derive from it). Defaults to 1 so
 *                          the same CLI invocation is reproducible by
 *                          construction; the harness owns the seed and
 *                          workloads never pick their own.
 *   --metrics-json=<path>  save a metrics + utilization snapshot
 *   --trace=<path>         enable per-op tracing, save a Chrome trace
 *   --trace-sample=<n>     deterministic head sampling: retain spans of
 *                          1-in-n trace ids, chosen by a seeded hash of
 *                          the id (never the engine RNG), so the sampled
 *                          set is byte-identical across runs and sampling
 *                          cannot perturb the simulation. 0/1 = keep all.
 *                          Windowed timeline stats stay exact (they are
 *                          fed at op completion, not from retained spans).
 *   --exemplars=<path>     capture the K slowest ops per 1 ms window —
 *                          with their full span chains — in a bounded
 *                          reservoir and save them as JSONL (one op per
 *                          line with a per-phase breakdown). Also feeds
 *                          the slowest_ops section of --bench-json rows.
 *   --breakdown            print a critical-path latency breakdown table
 *                          (phase | mean | p50 | p99 | share) plus the
 *                          bottleneck verdict after every measured job.
 *                          Goes to stderr so figure stdout stays diffable.
 *   --bench-json=<path>    append one JSON row per measured job (system,
 *                          config, MB/s, mean/p50/p99/p99.9 us latency,
 *                          per-phase breakdown, bottleneck verdict)
 *   --timeline=<path>      append one JSON timeline per measured job:
 *                          windowed goodput/IOPS/p50/p99 series, cluster
 *                          events from the journal, per-node utilization,
 *                          and health flags
 *   --timeline-ascii       render each measured job's timeline as an
 *                          ASCII sparkline with event markers overlaid
 *                          (stderr, so figure stdout stays diffable)
 *   --no-flight-recorder   disable the always-on flight recorder (used by
 *                          the determinism check: enabled vs dark runs
 *                          must produce byte-identical figure output)
 *   --profile=<path>       attach the engine profiler to every simulator
 *                          this process builds and write one JSON row of
 *                          host wall-clock attribution (events/sec,
 *                          heap stats, per-label costs) at process exit.
 *                          fig09/fig17 default to BENCH_simcore.json.
 *   --profile-ascii        render the end-of-run attribution report as an
 *                          ASCII table on stderr (implies profiling)
 *   --no-profile           drop the binary's default profile path; used
 *                          by the CI proof that profiling on vs off
 *                          leaves simulated output byte-identical
 *   --tenants=<n>          arm per-tenant contention attribution for up
 *                          to n tenants (runTenantFio() names them); also
 *                          armed implicitly by --interference=
 *   --interference=<path>  append one JSON row per measured multi-tenant
 *                          job: tenant table, victim x aggressor x
 *                          resource blame matrix (exact ns, sums to the
 *                          measured queue-wait), windowed per-tenant SLO
 *                          series with burn-rate flags
 *   --strict-flags         exit non-zero on any unrecognized --flag
 *                          instead of warning (CI sets this everywhere so
 *                          a typo cannot silently run the wrong config)
 * Unrecognized --flags draw a warning on stderr (fatal under
 * --strict-flags).
 */
struct TelemetryOptions
{
    /** Base RNG seed for every workload this process drives. */
    std::uint64_t seed = 1;
    std::string metricsJsonPath;
    std::string tracePath;
    std::string benchJsonPath;
    std::string timelinePath;
    std::string profilePath;
    std::string exemplarsPath;
    /** --trace-sample=: retain 1-in-N trace ids (0/1 keeps all). */
    std::uint64_t traceSamplePeriod = 1;
    /** Tag written into the BENCH_simcore.json row ("fig09", ...). */
    std::string benchLabel = "bench";
    bool timelineAscii = false;
    bool breakdown = false;
    bool flightRecorder = true;
    bool profileAscii = false;
    /** --tenants=: expected tenant count (0 = attribution off). */
    std::uint32_t tenants = 0;
    /** --interference=: JSONL path for the per-job attribution rows. */
    std::string interferencePath;
    /** --strict-flags: unknown flags are fatal. */
    bool strictFlags = false;

    bool any() const
    {
        return !metricsJsonPath.empty() || !tracePath.empty() ||
               analyzer() || timeline();
    }

    /** Whether the critical-path analyzer must see the span stream. */
    bool analyzer() const
    {
        return breakdown || !benchJsonPath.empty();
    }

    /** Whether a windowed timeline must be built per measured job. */
    bool timeline() const
    {
        return timelineAscii || !timelinePath.empty();
    }

    /** Whether the engine profiler observes this process's simulators. */
    bool profiling() const
    {
        return profileAscii || !profilePath.empty();
    }

    /** Whether the tail-exemplar reservoir captures slow ops: requested
     *  explicitly, or implied by the bench-JSON slowest_ops section. */
    bool exemplarCapture() const
    {
        return !exemplarsPath.empty() || analyzer();
    }

    /** Whether per-tenant contention attribution is armed. */
    bool interference() const
    {
        return tenants >= 2 || !interferencePath.empty();
    }
};

/** Parse the shared flags; @p defaults seeds the pre-flag values. */
TelemetryOptions parseTelemetryOptions(int argc, char **argv,
                                       const TelemetryOptions &defaults = {});

/**
 * Install the telemetry flags for every SystemUnderTest this process
 * builds. Benches run several systems back to back and each one saves
 * over the same files at teardown, so the artifacts describe the LAST
 * system built (for dRAID-vs-baseline figures that is dRAID).
 */
void initTelemetry(int argc, char **argv);

/**
 * As above, but with per-binary defaults (e.g. fig09 writes
 * BENCH_fig09.json unless --bench-json= overrides it).
 */
void initTelemetry(int argc, char **argv, const TelemetryOptions &defaults);

/**
 * The process-wide workload seed (--seed=, default 1). runFio() and the
 * YCSB drivers pull from here so a bench invocation's randomness is fully
 * determined by its command line.
 */
std::uint64_t benchSeed();

/** One fully assembled system on its own cluster. */
class SystemUnderTest
{
  public:
    SystemUnderTest(SystemKind kind, const ArrayConfig &array);
    ~SystemUnderTest();

    blockdev::BlockDevice &device();
    cluster::Cluster &cluster() { return *cluster_; }
    sim::Simulator &sim() { return cluster_->sim(); }
    SystemKind kind() const { return kind_; }
    const ArrayConfig &array() const { return array_; }

    /** Declare a member device failed on the system's controller. */
    void markFailed(std::uint32_t dev);

    /** Per-stripe rebuild entry point (dRAID p2p / baselines host-pull). */
    void reconstructChunk(std::uint64_t stripe, std::uint32_t spare,
                          std::function<void(bool)> done);

    core::DraidHost *draidHost();

  private:
    SystemKind kind_;
    ArrayConfig array_;
    cluster::TestbedConfig cfg_;
    std::unique_ptr<cluster::Cluster> cluster_;
    std::unique_ptr<core::DraidSystem> draid_;
    std::unique_ptr<baselines::SpdkRaid> spdk_;
    std::unique_ptr<baselines::LinuxMdRaid> linux_;
};

/**
 * Preload the working set (sequential full-stripe writes) so measured
 * reads hit written data and measured partial writes see realistic old
 * data, then run the FIO job.
 */
workload::FioResult runFio(SystemUnderTest &sut,
                           const workload::FioConfig &fio,
                           bool preload = true);

/** One tenant's share of a multi-tenant traffic mix. */
struct TenantJob
{
    std::string name;           ///< tenant label ("victim", "aggr0", ...)
    workload::FioConfig fio;    ///< this tenant's workload
    double sloTargetP99Us = 0;  ///< windowed p99 SLO target; 0 = none
};

/**
 * Run several tenants' jobs concurrently on one system: preload once,
 * register each tenant with the contention tracker (resetting the
 * accounting so the exported matrix covers exactly the measured run),
 * drive all jobs under a single simulator run, and append one
 * interference JSON row (--interference=) covering the mix. Results are
 * returned in @p jobs order.
 */
std::vector<workload::FioResult> runTenantFio(SystemUnderTest &sut,
                                              const std::vector<TenantJob> &jobs,
                                              bool preload = true);

/** A do-nothing measurement job whose runFio() call only preloads. */
workload::FioConfig preloadConfig(std::uint64_t working_set_bytes);

/** Print a figure header: title + column names. */
void printFigureHeader(const std::string &figure, const std::string &title,
                       const std::vector<std::string> &columns);

/** Print one numeric row. */
void printRow(const std::vector<double> &values);

/** Print a commentary line (prefixed with '#'). */
void printNote(const std::string &note);

} // namespace draid::bench

#endif // DRAID_BENCH_HARNESS_H
