// Bench binary regenerating Figure 20: object store YCSB on normal-state
// RAID-5 (128 KB objects, uniform distribution, §9.6).

#include "ycsb_driver.h"

using namespace draid;
using namespace draid::bench;
using workload::YcsbWorkload;

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    printFigureHeader("Figure 20",
                      "object store YCSB on normal-state RAID-5 "
                      "(128KB objects, uniform)",
                      {"workload", "spdk_KIOPS", "draid_KIOPS", "spdk_us",
                       "draid_us"});
    const YcsbWorkload workloads[] = {YcsbWorkload::kA, YcsbWorkload::kB,
                                      YcsbWorkload::kC, YcsbWorkload::kD,
                                      YcsbWorkload::kF};
    for (std::size_t wi = 0; wi < std::size(workloads); ++wi) {
        const auto w = workloads[wi];
        std::printf("# %s\n", workload::YcsbGenerator::name(w));
        std::vector<double> row{static_cast<double>(wi)};
        std::vector<double> lat;
        for (auto kind : {SystemKind::kSpdk, SystemKind::kDraid}) {
            ArrayConfig array;
            array.width = 8;
            SystemUnderTest sut(kind, array);
            auto r = runObjectStoreYcsb(sut, w, 12000, 20000, 32);
            row.push_back(r.kiops);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
    printNote("paper: dRAID 1.7x on YCSB-A, 1.5x on YCSB-F; read-heavy "
              "B/C/D see little gain in normal state");
    return 0;
}
