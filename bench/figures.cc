#include "figures.h"

#include <algorithm>

#include "core/reconstruct.h"

namespace draid::bench {

namespace {

constexpr std::uint64_t kKb = 1024;
constexpr std::uint64_t kMb = 1024 * 1024;

const std::vector<SystemKind> kAllSystems{SystemKind::kLinux,
                                          SystemKind::kSpdk,
                                          SystemKind::kDraid};

std::string
levelName(raid::RaidLevel level)
{
    return level == raid::RaidLevel::kRaid6 ? "RAID-6" : "RAID-5";
}

/** RAID-level-aware number of ops: keep every point to a similar cost. */
std::uint64_t
opsFor(std::uint32_t io_kb)
{
    if (io_kb >= 2048)
        return 300;
    if (io_kb >= 256)
        return 800;
    return 1500;
}

} // namespace

void
figReadVsIoSize(raid::RaidLevel level, const std::string &figure)
{
    printFigureHeader(figure,
                      levelName(level) +
                          " normal-state read vs I/O size "
                          "(6 targets, 512KB chunk, iodepth 64)",
                      {"io_kb", "linux_MBps", "spdk_MBps", "draid_MBps",
                       "linux_us", "spdk_us", "draid_us"});
    for (std::uint32_t io_kb : {4, 8, 16, 32, 64, 128}) {
        std::vector<double> row{static_cast<double>(io_kb)};
        std::vector<double> lat;
        for (auto kind : kAllSystems) {
            ArrayConfig array;
            array.level = level;
            array.width = 6;
            SystemUnderTest sut(kind, array);
            workload::FioConfig fio;
            fio.ioSize = io_kb * kKb;
            fio.readRatio = 1.0;
            fio.ioDepth = 64;
            fio.numOps = opsFor(io_kb) * 2;
            fio.workingSetBytes = 512 * kMb;
            auto r = runFio(sut, fio);
            row.push_back(r.bandwidthMBps);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
    printNote("paper: all systems reach NIC goodput (~11500 MB/s) beyond "
              "64KB; dRAID leads at small sizes (lock-free reads)");
}

void
figWriteVsIoSize(raid::RaidLevel level, const std::string &figure)
{
    const bool r6 = level == raid::RaidLevel::kRaid6;
    printFigureHeader(figure,
                      levelName(level) +
                          " write vs I/O size (8 targets, 512KB chunk, "
                          "iodepth 32; RMW/RCW/FSW regimes)",
                      {"io_kb", "linux_MBps", "spdk_MBps", "draid_MBps",
                       "linux_us", "spdk_us", "draid_us"});
    std::vector<std::uint32_t> sizes{4,   8,   16,  32,  64,   128,
                                     256, 512, 1024, 2048};
    sizes.push_back(r6 ? 3072 : 3584);
    for (std::uint32_t io_kb : sizes) {
        std::vector<double> row{static_cast<double>(io_kb)};
        std::vector<double> lat;
        for (auto kind : kAllSystems) {
            ArrayConfig array;
            array.level = level;
            array.width = 8;
            SystemUnderTest sut(kind, array);
            workload::FioConfig fio;
            fio.ioSize = io_kb * kKb;
            fio.readRatio = 0.0;
            fio.ioDepth = 32;
            fio.numOps = opsFor(io_kb);
            fio.workingSetBytes = io_kb >= 1024 ? 1536 * kMb : 768 * kMb;
            auto r = runFio(sut, fio);
            row.push_back(r.bandwidthMBps);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
    printNote(r6 ? "paper: dRAID ~2.3x SPDK at 128KB; RAID-6 small writes "
                   "run at ~2/3 of RAID-5"
                 : "paper: dRAID ~1.7x SPDK at 128KB, drive-bound plateau "
                   "256KB-1024KB, ~1.5x on reconstruct writes, parity at "
                   "3584KB (full stripe)");
}

void
figWriteVsChunkSize(raid::RaidLevel level, const std::string &figure)
{
    printFigureHeader(figure,
                      levelName(level) +
                          " write vs chunk size (8 targets, 128KB I/O, "
                          "iodepth 32)",
                      {"chunk_kb", "linux_MBps", "spdk_MBps", "draid_MBps",
                       "linux_us", "spdk_us", "draid_us"});
    for (std::uint32_t chunk_kb : {32, 64, 128, 256, 512, 1024}) {
        std::vector<double> row{static_cast<double>(chunk_kb)};
        std::vector<double> lat;
        for (auto kind : kAllSystems) {
            ArrayConfig array;
            array.level = level;
            array.width = 8;
            array.chunkKb = chunk_kb;
            SystemUnderTest sut(kind, array);
            workload::FioConfig fio;
            fio.ioSize = 128 * kKb;
            fio.readRatio = 0.0;
            fio.ioDepth = 32;
            fio.numOps = 1200;
            fio.workingSetBytes = 768 * kMb;
            auto r = runFio(sut, fio);
            row.push_back(r.bandwidthMBps);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
    printNote("paper: dRAID runs at full drive bandwidth for chunks "
              ">=128KB, up to 1.7x (RAID-5) / 2.6x (RAID-6) over SPDK");
}

void
figWriteVsWidth(raid::RaidLevel level, const std::string &figure)
{
    printFigureHeader(figure,
                      levelName(level) +
                          " write vs stripe width (128KB I/O, 512KB "
                          "chunk, iodepth 32)",
                      {"width", "nic_goodput", "linux_MBps", "spdk_MBps",
                       "draid_MBps", "linux_us", "spdk_us", "draid_us"});
    for (std::uint32_t width : {4, 6, 8, 10, 12, 14, 16, 18}) {
        std::vector<double> row{static_cast<double>(width), 11500.0};
        std::vector<double> lat;
        for (auto kind : kAllSystems) {
            ArrayConfig array;
            array.level = level;
            array.width = width;
            SystemUnderTest sut(kind, array);
            workload::FioConfig fio;
            fio.ioSize = 128 * kKb;
            fio.readRatio = 0.0;
            fio.ioDepth = 48;
            fio.numOps = 1200;
            fio.workingSetBytes = 768 * kMb;
            auto r = runFio(sut, fio);
            row.push_back(r.bandwidthMBps);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
    printNote("paper: SPDK caps at ~half the NIC goodput (RMW sends 2x); "
              "dRAID scales linearly, ~84Gbps (10500 MB/s) at width 18; "
              "Linux MD declines with width");
}

void
figWriteVsReadRatio(raid::RaidLevel level, const std::string &figure)
{
    printFigureHeader(figure,
                      levelName(level) +
                          " mixed workload vs read ratio (8 targets, "
                          "128KB I/O, iodepth 32)",
                      {"read_pct", "linux_MBps", "spdk_MBps", "draid_MBps",
                       "linux_us", "spdk_us", "draid_us"});
    for (int pct : {0, 25, 50, 75, 100}) {
        std::vector<double> row{static_cast<double>(pct)};
        std::vector<double> lat;
        for (auto kind : kAllSystems) {
            ArrayConfig array;
            array.level = level;
            array.width = 8;
            SystemUnderTest sut(kind, array);
            workload::FioConfig fio;
            fio.ioSize = 128 * kKb;
            fio.readRatio = pct / 100.0;
            fio.ioDepth = 32;
            fio.numOps = 1500;
            fio.workingSetBytes = 768 * kMb;
            auto r = runFio(sut, fio);
            row.push_back(r.bandwidthMBps);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
    printNote("paper: dRAID 1.4x-1.7x (RAID-5) / 1.6x-2.3x (RAID-6) for "
              "every mix except read-only");
}

void
figLatencyVsLoad(raid::RaidLevel level, const std::string &figure)
{
    for (double read_ratio : {0.0, 0.5}) {
        printFigureHeader(
            figure,
            levelName(level) +
                (read_ratio == 0.0
                     ? " latency vs bandwidth, write-only (18 targets)"
                     : " latency vs bandwidth, 50% read + 50% write "
                       "(18 targets)"),
            {"iodepth", "linux_MBps", "linux_us", "spdk_MBps", "spdk_us",
             "draid_MBps", "draid_us"});
        for (int depth : {1, 2, 4, 8, 16, 32, 64, 128}) {
            std::vector<double> row{static_cast<double>(depth)};
            for (auto kind : kAllSystems) {
                ArrayConfig array;
                array.level = level;
                array.width = 18;
                SystemUnderTest sut(kind, array);
                workload::FioConfig fio;
                fio.ioSize = 128 * kKb;
                fio.readRatio = read_ratio;
                fio.ioDepth = depth;
                fio.numOps = std::max<std::uint64_t>(300, 40ull * depth);
                fio.workingSetBytes = 768 * kMb;
                auto r = runFio(sut, fio);
                row.push_back(r.bandwidthMBps);
                row.push_back(r.avgLatencyUs);
            }
            printRow(row);
        }
    }
    printNote("paper: dRAID saturates near NIC goodput (~11500 MB/s WO, "
              "~3x SPDK on 50/50); SPDK flat-lines at half goodput");
}

namespace {

void
degradedFigure(raid::RaidLevel level, const std::string &figure,
               bool sweep_width, bool writes)
{
    const std::string what = writes ? "degraded write" : "degraded read";
    if (!sweep_width) {
        printFigureHeader(figure,
                          levelName(level) + " " + what +
                              " vs I/O size (8 targets, one failed "
                              "drive, iodepth 32)",
                          {"io_kb", "linux_MBps", "spdk_MBps",
                           "draid_MBps", "linux_us", "spdk_us",
                           "draid_us"});
        for (std::uint32_t io_kb : {4, 8, 16, 32, 64, 128}) {
            std::vector<double> row{static_cast<double>(io_kb)};
            std::vector<double> lat;
            for (auto kind : kAllSystems) {
                ArrayConfig array;
                array.level = level;
                array.width = 8;
                SystemUnderTest sut(kind, array);
                workload::FioConfig fio;
                fio.ioSize = io_kb * kKb;
                fio.readRatio = writes ? 0.0 : 1.0;
                fio.ioDepth = writes ? 32 : 64;
                fio.numOps = 1200;
                fio.workingSetBytes = 512 * kMb;

                // Preload while healthy, then fail one drive.
                runFio(sut, preloadConfig(fio.workingSetBytes));
                sut.markFailed(0);
                auto r = runFio(sut, fio, /*preload=*/false);
                row.push_back(r.bandwidthMBps);
                lat.push_back(r.avgLatencyUs);
            }
            row.insert(row.end(), lat.begin(), lat.end());
            printRow(row);
        }
        return;
    }

    printFigureHeader(figure,
                      levelName(level) + " " + what +
                          " vs stripe width (128KB I/O, one failed "
                          "drive, iodepth 64)",
                      {"width", "linux_MBps", "spdk_MBps", "draid_MBps",
                       "linux_us", "spdk_us", "draid_us"});
    for (std::uint32_t width : {4, 6, 8, 10, 12, 14, 16, 18}) {
        std::vector<double> row{static_cast<double>(width)};
        std::vector<double> lat;
        for (auto kind : kAllSystems) {
            ArrayConfig array;
            array.level = level;
            array.width = width;
            SystemUnderTest sut(kind, array);
            workload::FioConfig fio;
            fio.ioSize = 128 * kKb;
            fio.readRatio = 1.0;
            fio.ioDepth = 64;
            fio.numOps = 1500;
            fio.workingSetBytes = 512 * kMb;
            runFio(sut, preloadConfig(fio.workingSetBytes));
            sut.markFailed(0);
            auto r = runFio(sut, fio, /*preload=*/false);
            row.push_back(r.bandwidthMBps);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
}

} // namespace

void
figDegradedReadVsIoSize(raid::RaidLevel level, const std::string &figure)
{
    degradedFigure(level, figure, /*sweep_width=*/false, /*writes=*/false);
    printNote("paper: dRAID reaches ~95% of normal-state read throughput; "
              "SPDK ~57-61%; Linux MD ~834 MB/s");
}

void
figDegradedReadVsWidth(raid::RaidLevel level, const std::string &figure)
{
    degradedFigure(level, figure, /*sweep_width=*/true, /*writes=*/false);
    printNote("paper: SPDK peaks at width 6-8 then declines (host pulls "
              "n-1 chunks); dRAID approaches normal-state read as width "
              "grows, up to 2.4x");
}

void
figDegradedWriteVsIoSize(raid::RaidLevel level, const std::string &figure)
{
    degradedFigure(level, figure, /*sweep_width=*/false, /*writes=*/true);
    printNote("paper: ~5% drop vs normal state for all systems (RAID-5); "
              "dRAID still up to 1.7x (RAID-5) / 2.6x (RAID-6) over SPDK");
}

void
figReconstructionScalability(const std::string &figure)
{
    printFigureHeader(figure,
                      "RAID-5 full-rebuild throughput vs stripe width "
                      "(one failed drive, rebuild onto spare)",
                      {"width", "spdk_MBps", "draid_MBps"});
    for (std::uint32_t width : {4, 6, 8, 10, 12, 14, 16, 18}) {
        std::vector<double> row{static_cast<double>(width)};
        for (auto kind : {SystemKind::kSpdk, SystemKind::kDraid}) {
            ArrayConfig array;
            array.width = width;
            array.spares = 1;
            SystemUnderTest sut(kind, array);

            // Preload enough stripes, then rebuild them.
            const std::uint64_t stripes = 96;
            const std::uint64_t chunk = 512 * kKb;
            workload::FioConfig pre;
            pre.workingSetBytes = stripes * (width - 1) * chunk;
            runFio(sut, preloadConfig(pre.workingSetBytes));
            sut.markFailed(0);

            core::RebuildJob job(
                sut.sim(),
                [&](std::uint64_t stripe, std::function<void(bool)> done) {
                    sut.reconstructChunk(stripe, width, std::move(done));
                },
                stripes, static_cast<std::uint32_t>(chunk), /*window=*/16);
            job.bindTrace(&sut.cluster().tracer(),
                          sut.cluster().hostId());
            job.registerMetrics(
                sut.cluster().nodeScope(sut.cluster().hostId())
                    .scope("rebuild"));
            job.start([&](bool) { sut.sim().stop(); });
            sut.sim().run();
            row.push_back(job.throughputMBps());
        }
        printRow(row);
    }
    printNote("paper: SPDK rebuild flattens (~1500-2000 MB/s, host-NIC "
              "bound at n-1 chunks per chunk); dRAID sustains ~3000+ MB/s "
              "across widths (drive-read bound)");
}

void
figRebuildInterference(const std::string &figure)
{
    printFigureHeader(figure,
                      "foreground random-read goodput during a mid-run "
                      "drive failure + online rebuild onto a hot spare "
                      "(dRAID, width 8 + 1 spare, 512KB chunk)",
                      {"fg_MBps", "fg_p99_us", "rebuild_MBps", "rebuild_ms",
                       "degraded_rd"});

    ArrayConfig array;
    array.width = 8;
    array.spares = 1;
    SystemUnderTest sut(SystemKind::kDraid, array);

    const std::uint64_t stripes = 96;
    const std::uint64_t chunk = 512 * kKb;
    const std::uint64_t ws = stripes * (array.width - 1) * chunk;
    runFio(sut, preloadConfig(ws));

    // The failure lands mid-job, so the rebuild runs under foreground
    // load; completion swaps the spare in and the array recovers.
    core::RebuildJob rebuild(
        sut.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            sut.reconstructChunk(stripe, array.width, std::move(done));
        },
        stripes, static_cast<std::uint32_t>(chunk), /*window=*/16);
    rebuild.bindTrace(&sut.cluster().tracer(), sut.cluster().hostId());
    rebuild.bindJournal(&sut.cluster().telemetry().journal(),
                        sut.cluster().hostId());
    rebuild.registerMetrics(
        sut.cluster().nodeScope(sut.cluster().hostId()).scope("rebuild"));

    sim::Ticks rebuild_start = sim::Ticks::zero();
    sim::Ticks rebuild_end = sim::Ticks::zero();
    sut.sim().schedule(sim::Ticks::ms(8), [&] {
        sut.markFailed(0);
        rebuild_start = sut.sim().now();
        rebuild.start([&](bool) {
            rebuild_end = sut.sim().now();
            sut.draidHost()->replaceDevice(0, array.width);
        });
    });

    workload::FioConfig fio;
    fio.ioSize = 128 * kKb;
    fio.readRatio = 1.0;
    fio.ioDepth = 32;
    fio.numOps = 4000;
    fio.workingSetBytes = ws;
    auto r = runFio(sut, fio, /*preload=*/false);
    if (!rebuild.finished())
        sut.sim().run(); // drain a rebuild that outlasted the foreground

    printRow({r.bandwidthMBps, r.p99LatencyUs, rebuild.throughputMBps(),
              static_cast<double>((rebuild_end - rebuild_start).raw()) /
                  sim::kMillisecond,
              static_cast<double>(sut.draidHost()->counters().degradedReads)});
    printNote("rebuild window: foreground goodput dips while the array "
              "serves degraded reads plus rebuild traffic, then recovers "
              "at the hot-spare swap (--timeline-ascii shows the dip "
              "bracketed by the R/C markers)");
}

void
figBwAwareReconstruction(const std::string &figure)
{
    printFigureHeader(figure,
                      "degraded-read latency vs bandwidth with "
                      "heterogeneous NICs (width 8: three 25Gbps targets), "
                      "random vs bandwidth-aware reducer",
                      {"iodepth", "random_MBps", "random_us",
                       "bwaware_MBps", "bwaware_us"});

    for (int depth : {1, 2, 4, 8, 16, 32, 64}) {
        std::vector<double> row{static_cast<double>(depth)};
        for (auto policy : {core::ReducerPolicy::kRandom,
                            core::ReducerPolicy::kBwAware}) {
            ArrayConfig array;
            array.width = 8;
            array.draidOpts.reducerPolicy = policy;
            // Targets 1-3 get 25 Gbps NICs; the failed target 0 and the
            // rest keep 100 Gbps.
            array.targetNicGoodputs = {11.5e9, 2.875e9, 2.875e9, 2.875e9};
            SystemUnderTest sut(SystemKind::kDraid, array);

            const std::uint64_t ws = 512 * kMb;
            runFio(sut, preloadConfig(ws));
            sut.markFailed(0);

            // All reads target the failed device's chunks: every op is a
            // reconstructed read.
            auto *host = sut.draidHost();
            const auto &g = host->geometry();
            const std::uint32_t io = 128 * kKb;
            const std::uint64_t stripes = ws / g.stripeDataSize();
            workload::FioConfig fio;
            fio.ioSize = io;
            fio.readRatio = 1.0;
            fio.ioDepth = depth;
            fio.numOps = 1200;
            fio.workingSetBytes = ws;
            fio.offsetPicker = [&g, stripes, io](sim::Rng &rng) {
                // A random in-chunk-aligned offset on the failed device
                // (device 0) of a random stripe.
                const std::uint64_t stripe = rng.nextBounded(stripes);
                std::uint32_t fidx = 0;
                for (std::uint32_t i = 0; i < g.dataChunks(); ++i) {
                    if (g.dataDevice(stripe, i) == 0)
                        fidx = i;
                }
                if (g.roleOf(stripe, 0) != raid::ChunkRole::kData) {
                    // Parity stripe: any chunk works (read is normal);
                    // keep the stream uniform by using chunk 0.
                    fidx = 0;
                }
                const std::uint64_t base =
                    stripe * g.stripeDataSize() +
                    static_cast<std::uint64_t>(fidx) * g.chunkSize();
                const std::uint64_t slots = g.chunkSize() / io;
                return base + rng.nextBounded(slots) * io;
            };
            auto r = runFio(sut, fio, /*preload=*/false);
            row.push_back(r.bandwidthMBps);
            row.push_back(r.avgLatencyUs);
        }
        printRow(row);
    }
    printNote("paper: bandwidth-aware selection improves degraded read "
              "bandwidth by ~53% over random on the heterogeneous setup");
}

} // namespace draid::bench
