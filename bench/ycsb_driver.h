/**
 * @file
 * Closed-loop YCSB drivers for the two applications of §9.6: the
 * hash-based object store (Figs. 20-21) and MiniKv, the RocksDB stand-in
 * (Fig. 19).
 */

#ifndef DRAID_BENCH_YCSB_DRIVER_H
#define DRAID_BENCH_YCSB_DRIVER_H

#include "app/minikv.h"
#include "app/object_store.h"
#include "harness.h"
#include "workload/ycsb.h"

namespace draid::bench {

/** Application-level result in the paper's units. */
struct YcsbResult
{
    double kiops = 0.0;
    double avgLatencyUs = 0.0;
};

/** Run one YCSB workload against the object store on @p sut. */
YcsbResult runObjectStoreYcsb(SystemUnderTest &sut,
                              workload::YcsbWorkload workload,
                              std::uint64_t num_objects,
                              std::uint64_t num_ops, int depth,
                              std::uint32_t object_size = 128 * 1024);

/** Run one YCSB workload against MiniKv on @p sut. */
YcsbResult runMiniKvYcsb(SystemUnderTest &sut,
                         workload::YcsbWorkload workload,
                         std::uint64_t num_records, std::uint64_t num_ops,
                         int depth);

} // namespace draid::bench

#endif // DRAID_BENCH_YCSB_DRIVER_H
