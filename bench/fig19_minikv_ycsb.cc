// Bench binary regenerating Figure 19: MiniKv (the RocksDB/BlobFS
// stand-in, §9.6) YCSB throughput on RAID-5, normal and degraded state.

#include "ycsb_driver.h"

using namespace draid;
using namespace draid::bench;
using workload::YcsbWorkload;

namespace {

void
runState(bool degraded)
{
    printFigureHeader("Figure 19",
                      std::string("MiniKv (RocksDB stand-in) YCSB on "
                                  "RAID-5, ") +
                          (degraded ? "degraded" : "normal") + " state",
                      {"workload", "spdk_KIOPS", "draid_KIOPS", "spdk_us",
                       "draid_us"});
    const YcsbWorkload workloads[] = {YcsbWorkload::kA, YcsbWorkload::kB,
                                      YcsbWorkload::kC, YcsbWorkload::kD,
                                      YcsbWorkload::kF};
    for (std::size_t wi = 0; wi < std::size(workloads); ++wi) {
        const auto w = workloads[wi];
        std::printf("# %s\n", workload::YcsbGenerator::name(w));
        std::vector<double> row{static_cast<double>(wi)};
        std::vector<double> lat;
        for (auto kind : {SystemKind::kSpdk, SystemKind::kDraid}) {
            ArrayConfig array;
            array.width = 8;
            SystemUnderTest sut(kind, array);
            if (degraded)
                sut.markFailed(0);
            auto r = runMiniKvYcsb(sut, w, 150000, 30000, 32);
            row.push_back(r.kiops);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    runState(/*degraded=*/false);
    runState(/*degraded=*/true);
    printNote("paper: dRAID improves write-heavy A/F by ~1.27-1.28x in "
              "normal state (single LSM instance is CPU/lock bound, <5% "
              "of array bandwidth); larger gains in degraded state");
    return 0;
}
