// Bench binary regenerating the paper's fig24_r6_write_chunk_size.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsChunkSize(draid::raid::RaidLevel::kRaid6, "Figure 24");
    return 0;
}
