// Bench binary regenerating the paper's fig24_r6_write_chunk_size.
#include "figures.h"

int
main()
{
    draid::bench::figWriteVsChunkSize(draid::raid::RaidLevel::kRaid6, "Figure 24");
    return 0;
}
