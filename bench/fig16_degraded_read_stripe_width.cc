// Bench binary regenerating the paper's fig16_degraded_read_stripe_width.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figDegradedReadVsWidth(draid::raid::RaidLevel::kRaid5, "Figure 16");
    return 0;
}
