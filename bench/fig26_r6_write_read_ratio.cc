// Bench binary regenerating the paper's fig26_r6_write_read_ratio.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsReadRatio(draid::raid::RaidLevel::kRaid6, "Figure 26");
    return 0;
}
