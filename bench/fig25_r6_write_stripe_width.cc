// Bench binary regenerating the paper's fig25_r6_write_stripe_width.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsWidth(draid::raid::RaidLevel::kRaid6, "Figure 25");
    return 0;
}
