// Bench binary regenerating the paper's fig12_write_stripe_width.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsWidth(draid::raid::RaidLevel::kRaid5, "Figure 12");
    return 0;
}
