// QoS interference scenario: a latency-sensitive victim tenant (small
// random reads) sharing one dRAID array with a bandwidth aggressor
// (large saturating writes). Phase A measures the victim alone for an
// isolated-baseline p99; phase B reruns the victim against the
// aggressor on a fresh system with the victim's SLO set to 1.2x the
// isolated p99, so the exported interference row carries real burn
// flags and the blame matrix names the aggressor.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "harness.h"
#include "telemetry/interference.h"

namespace {

constexpr std::uint64_t kMb = 1ull << 20;

draid::workload::FioConfig
victimConfig()
{
    draid::workload::FioConfig fio;
    fio.ioSize = 4 * 1024;
    fio.readRatio = 1.0;
    fio.ioDepth = 4;
    fio.numOps = 2000;
    fio.workingSetBytes = 256 * kMb;
    return fio;
}

draid::workload::FioConfig
aggressorConfig()
{
    draid::workload::FioConfig fio;
    fio.ioSize = 1024 * 1024;
    fio.readRatio = 0.0;
    fio.ioDepth = 32;
    fio.numOps = 600;
    fio.workingSetBytes = 256 * kMb;
    return fio;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace draid;
    using draid::bench::TenantJob;

    bench::TelemetryOptions defaults;
    defaults.interferencePath = "BENCH_interference.json";
    defaults.benchLabel = "fig_qos_interference";
    defaults.tenants = 2;
    bench::initTelemetry(argc, argv, defaults);

    bench::ArrayConfig array;

    bench::printFigureHeader(
        "fig_qos_interference",
        "victim 4K reads vs aggressor 1M writes (dRAID, RAID-5 8-wide)",
        {"phase", "vic_MBps", "vic_p99us", "agg_MBps", "burn_wins"});

    // Phase A: the victim alone. The single-tenant run still goes through
    // runTenantFio so the baseline row lands in the same JSONL artifact.
    double isolatedP99Us = 0;
    {
        bench::SystemUnderTest sut(bench::SystemKind::kDraid, array);
        const auto results =
            bench::runTenantFio(sut, {TenantJob{"victim", victimConfig()}});
        isolatedP99Us = results[0].p99LatencyUs;
        bench::printRow({0, results[0].bandwidthMBps,
                         results[0].p99LatencyUs, 0, 0});
    }

    // Phase B: fresh system, victim + aggressor, SLO = 1.2x isolated p99.
    {
        bench::SystemUnderTest sut(bench::SystemKind::kDraid, array);
        TenantJob victim{"victim", victimConfig(), 1.2 * isolatedP99Us};
        TenantJob aggressor{"aggressor", aggressorConfig()};
        const auto results =
            bench::runTenantFio(sut, {victim, aggressor});

        const telemetry::ContentionTracker &ct =
            sut.cluster().telemetry().contention();

        // The victim registered first, so it holds the first named id.
        telemetry::TenantId victimId = 0;
        for (std::size_t t = 1; t < ct.tenantCount(); ++t) {
            if (ct.tenantName(static_cast<telemetry::TenantId>(t)) ==
                "victim") {
                victimId = static_cast<telemetry::TenantId>(t);
                break;
            }
        }
        const double burn =
            static_cast<double>(ct.burnWindows(victimId));
        bench::printRow({1, results[0].bandwidthMBps,
                         results[0].p99LatencyUs,
                         results[1].bandwidthMBps, burn});

        bench::printNote("isolated victim p99(us): " +
                         std::to_string(isolatedP99Us));

        // Victim x aggressor heatmap on stdout: deterministic, so the
        // double-run byte-compare still holds.
        std::ostringstream heat;
        ct.renderAsciiHeatmap(heat);
        std::fputs(heat.str().c_str(), stdout);

        // The exactness contract is the whole point of the instrument;
        // fail the binary loudly if it ever drifts.
        if (ct.totalBlameTicks() != ct.totalWaitTicks()) {
            std::fprintf(stderr,
                         "FATAL: blame %lld ns != wait %lld ns\n",
                         static_cast<long long>(ct.totalBlameTicks()),
                         static_cast<long long>(ct.totalWaitTicks()));
            return 1;
        }
        bench::printNote("blame == wait: " +
                         std::to_string(ct.totalBlameTicks()) + " ns over " +
                         std::to_string(ct.waitedOps()) + " waiting ops");
    }
    return 0;
}
