// Bench binary regenerating the paper's fig17_reconstruction.
#include "figures.h"

int
main(int argc, char **argv)
{
    // Default artifacts: a bench-JSON perf row per job plus the windowed
    // timeline. --bench-json= / --timeline= override the paths.
    draid::bench::TelemetryOptions defaults;
    defaults.benchJsonPath = "BENCH_fig17.json";
    defaults.timelinePath = "TIMELINE_fig17.json";
    draid::bench::initTelemetry(argc, argv, defaults);
    draid::bench::figReconstructionScalability("Figure 17a");
    draid::bench::figBwAwareReconstruction("Figure 17b");
    draid::bench::figRebuildInterference("Figure 17c");
    return 0;
}
