// Bench binary regenerating the paper's fig17_reconstruction.
#include "figures.h"

int
main(int argc, char **argv)
{
    // Default artifacts: a bench-JSON perf row per job, the windowed
    // timeline, and the engine wall-clock profile (ROADMAP item 1's
    // baseline artifact). --bench-json= / --timeline= / --profile=
    // override the paths; --no-profile turns the profiler off.
    draid::bench::TelemetryOptions defaults;
    defaults.benchJsonPath = "BENCH_fig17.json";
    defaults.timelinePath = "TIMELINE_fig17.json";
    defaults.profilePath = "BENCH_simcore.json";
    defaults.benchLabel = "fig17";
    draid::bench::initTelemetry(argc, argv, defaults);
    draid::bench::figReconstructionScalability("Figure 17a");
    draid::bench::figBwAwareReconstruction("Figure 17b");
    draid::bench::figRebuildInterference("Figure 17c");
    return 0;
}
