// Bench binary regenerating the paper's fig17_reconstruction.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figReconstructionScalability("Figure 17a"); draid::bench::figBwAwareReconstruction("Figure 17b");
    return 0;
}
