// Bench binary regenerating the paper's fig17_reconstruction.
#include "figures.h"

int
main()
{
    draid::bench::figReconstructionScalability("Figure 17a"); draid::bench::figBwAwareReconstruction("Figure 17b");
    return 0;
}
