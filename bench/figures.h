/**
 * @file
 * Reusable figure generators: each reproduces one experiment family of the
 * paper's evaluation, parameterized by RAID level so the appendix (RAID-6,
 * Figs. 22-30) reuses the RAID-5 logic (Figs. 9-18).
 */

#ifndef DRAID_BENCH_FIGURES_H
#define DRAID_BENCH_FIGURES_H

#include <cstdint>
#include <string>
#include <vector>

#include "harness.h"

namespace draid::bench {

/** Fig. 9 / 22: normal-state read bandwidth+latency vs I/O size. */
void figReadVsIoSize(raid::RaidLevel level, const std::string &figure);

/** Fig. 10 / 23: normal-state write vs I/O size across write modes. */
void figWriteVsIoSize(raid::RaidLevel level, const std::string &figure);

/** Fig. 11 / 24: normal-state write vs chunk size. */
void figWriteVsChunkSize(raid::RaidLevel level, const std::string &figure);

/** Fig. 12 / 25: normal-state write vs stripe width (+NIC goodput). */
void figWriteVsWidth(raid::RaidLevel level, const std::string &figure);

/** Fig. 13 / 26: mixed workload vs read ratio. */
void figWriteVsReadRatio(raid::RaidLevel level, const std::string &figure);

/** Fig. 14 / 27: latency vs offered bandwidth (WO and 50/50), width 18. */
void figLatencyVsLoad(raid::RaidLevel level, const std::string &figure);

/** Fig. 15 / 28: degraded read vs I/O size. */
void figDegradedReadVsIoSize(raid::RaidLevel level,
                             const std::string &figure);

/** Fig. 16 / 29: degraded read vs stripe width. */
void figDegradedReadVsWidth(raid::RaidLevel level,
                            const std::string &figure);

/** Fig. 18 / 30: degraded write vs I/O size. */
void figDegradedWriteVsIoSize(raid::RaidLevel level,
                              const std::string &figure);

/** Fig. 17a: full-rebuild throughput vs stripe width (SPDK vs dRAID). */
void figReconstructionScalability(const std::string &figure);

/** Fig. 17b: random vs bandwidth-aware reducer on heterogeneous NICs. */
void figBwAwareReconstruction(const std::string &figure);

/**
 * Fig. 17c (companion scenario): foreground random reads with a mid-run
 * drive failure, online rebuild onto a hot spare, and the swap back to
 * normal state. The interesting output is the timeline: run with
 * --timeline-ascii to see the goodput dip bracketed by the
 * RebuildStarted/RebuildCompleted markers.
 */
void figRebuildInterference(const std::string &figure);

} // namespace draid::bench

#endif // DRAID_BENCH_FIGURES_H
