// Bench binary regenerating the paper's fig14_latency_throughput.
#include "figures.h"

int
main()
{
    draid::bench::figLatencyVsLoad(draid::raid::RaidLevel::kRaid5, "Figure 14");
    return 0;
}
