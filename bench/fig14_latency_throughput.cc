// Bench binary regenerating the paper's fig14_latency_throughput.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figLatencyVsLoad(draid::raid::RaidLevel::kRaid5, "Figure 14");
    return 0;
}
