// Bench binary regenerating the paper's fig13_write_read_ratio.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsReadRatio(draid::raid::RaidLevel::kRaid5, "Figure 13");
    return 0;
}
