#include "harness.h"

#include <cassert>
#include <cstdio>

namespace draid::bench {

namespace {

/** Process-wide telemetry flags; set once by initTelemetry(). */
TelemetryOptions g_telemetry;

/** Busy-fraction sampling period when telemetry is requested. */
constexpr sim::Tick kUtilSampleInterval = 100 * sim::kMicrosecond;

} // namespace

TelemetryOptions
parseTelemetryOptions(int argc, char **argv)
{
    TelemetryOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--metrics-json=", 0) == 0)
            opts.metricsJsonPath = arg.substr(15);
        else if (arg.rfind("--trace=", 0) == 0)
            opts.tracePath = arg.substr(8);
    }
    return opts;
}

void
initTelemetry(int argc, char **argv)
{
    g_telemetry = parseTelemetryOptions(argc, argv);
}

const char *
name(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kLinux: return "Linux";
      case SystemKind::kSpdk: return "SPDK";
      case SystemKind::kDraid: return "dRAID";
    }
    return "?";
}

SystemUnderTest::SystemUnderTest(SystemKind kind, const ArrayConfig &array)
    : kind_(kind)
{
    // 2 GB per drive keeps memory bounded while giving enough stripes.
    cfg_.ssd.capacity = 2ull << 30;
    cluster_ = std::make_unique<cluster::Cluster>(
        cfg_, array.width + array.spares, array.targetNicGoodputs);

    const std::uint32_t chunk = array.chunkKb * 1024;
    switch (kind) {
      case SystemKind::kDraid: {
        core::DraidOptions o = array.draidOpts;
        o.level = array.level;
        o.chunkSize = chunk;
        draid_ = std::make_unique<core::DraidSystem>(*cluster_, o,
                                                     array.width);
        break;
      }
      case SystemKind::kSpdk:
        spdk_ = std::make_unique<baselines::SpdkRaid>(*cluster_,
                                                      array.level, chunk,
                                                      array.width);
        break;
      case SystemKind::kLinux:
        linux_ = std::make_unique<baselines::LinuxMdRaid>(*cluster_,
                                                          array.level,
                                                          chunk,
                                                          array.width);
        break;
    }

    if (!g_telemetry.tracePath.empty())
        cluster_->tracer().setEnabled(true);
    if (g_telemetry.any())
        cluster_->startUtilizationSampling(kUtilSampleInterval);
}

SystemUnderTest::~SystemUnderTest()
{
    if (!cluster_)
        return;
    if (!g_telemetry.metricsJsonPath.empty() &&
        !cluster_->telemetry().saveMetricsJson(g_telemetry.metricsJsonPath))
        std::fprintf(stderr, "warning: could not write metrics JSON to %s\n",
                     g_telemetry.metricsJsonPath.c_str());
    if (!g_telemetry.tracePath.empty() &&
        !cluster_->telemetry().saveChromeTrace(g_telemetry.tracePath))
        std::fprintf(stderr, "warning: could not write trace to %s\n",
                     g_telemetry.tracePath.c_str());
}

blockdev::BlockDevice &
SystemUnderTest::device()
{
    if (draid_)
        return draid_->host();
    if (spdk_)
        return *spdk_;
    return *linux_;
}

core::DraidHost *
SystemUnderTest::draidHost()
{
    return draid_ ? &draid_->host() : nullptr;
}

void
SystemUnderTest::markFailed(std::uint32_t dev)
{
    if (draid_) {
        draid_->host().markFailed(dev);
    } else if (spdk_) {
        spdk_->markFailed(dev);
    } else {
        linux_->markFailed(dev);
    }
}

void
SystemUnderTest::reconstructChunk(std::uint64_t stripe, std::uint32_t spare,
                                  std::function<void(bool)> done)
{
    if (draid_) {
        draid_->host().reconstructChunk(stripe, spare, std::move(done));
    } else if (spdk_) {
        spdk_->reconstructChunk(stripe, spare, std::move(done));
    } else {
        linux_->reconstructChunk(stripe, spare, std::move(done));
    }
}

workload::FioResult
runFio(SystemUnderTest &sut, const workload::FioConfig &fio, bool preload)
{
    auto &dev = sut.device();
    auto &sim = sut.sim();

    if (preload) {
        // Sequential full-span preload with big writes (full stripes where
        // possible) so the measured region holds real data + parity. The
        // drain waits on the completion count, not on queue exhaustion:
        // recurring controller events (e.g. the §6.2 bandwidth-aware
        // refresh timer) keep the queue occupied forever.
        const std::uint64_t span = fio.workingSetBytes == 0
                                       ? dev.sizeBytes()
                                       : std::min(fio.workingSetBytes,
                                                  dev.sizeBytes());
        const std::uint32_t io = 4u << 20;
        std::uint64_t pos = 0;
        int outstanding = 0;
        int resume_below = -1;
        while (pos < span) {
            const std::uint32_t len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(io, span - pos));
            ec::Buffer data(len);
            data.fill(static_cast<std::uint8_t>(pos >> 22));
            ++outstanding;
            dev.write(pos, std::move(data), [&](blockdev::IoStatus) {
                --outstanding;
                if (resume_below >= 0 && outstanding < resume_below) {
                    resume_below = -1;
                    sim.stop();
                }
            });
            pos += len;
            if (outstanding >= 16) {
                resume_below = 8;
                sim.run();
            }
        }
        while (outstanding > 0) {
            resume_below = 1;
            sim.run();
        }
    }

    workload::FioJob job(sim, dev, fio);
    return job.run();
}

workload::FioConfig
preloadConfig(std::uint64_t working_set_bytes)
{
    workload::FioConfig fio;
    fio.ioSize = 128 * 1024;
    fio.readRatio = 1.0;
    fio.ioDepth = 1;
    fio.numOps = 1;
    fio.workingSetBytes = working_set_bytes;
    return fio;
}

void
printFigureHeader(const std::string &figure, const std::string &title,
                  const std::vector<std::string> &columns)
{
    std::printf("\n# %s: %s\n", figure.c_str(), title.c_str());
    std::printf("#");
    for (const auto &c : columns)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

void
printRow(const std::vector<double> &values)
{
    std::printf(" ");
    for (double v : values)
        std::printf(" %12.1f", v);
    std::printf("\n");
    std::fflush(stdout);
}

void
printNote(const std::string &note)
{
    std::printf("# %s\n", note.c_str());
}

} // namespace draid::bench
