#include "harness.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "telemetry/critical_path.h"
#include "telemetry/exemplar.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/interference.h"
#include "telemetry/sim_profiler.h"
#include "telemetry/timeline.h"

namespace draid::bench {

namespace {

/** Process-wide telemetry flags; set once by initTelemetry(). */
TelemetryOptions g_telemetry;

/**
 * Process-wide engine profiler: every SystemUnderTest's simulator feeds
 * the same instance, so the BENCH_simcore.json row covers the whole
 * invocation (all systems, all jobs). Attribution is observe-only; the
 * determinism gate proves figure output is identical with it on or off.
 */
telemetry::SimProfiler g_simProfiler;

/**
 * Telemetry self-accounting, accumulated as each SystemUnderTest is torn
 * down (recording-path host ns, retained heap bytes, drop counters) and
 * written as the telemetry_overhead block of the BENCH_simcore.json row.
 */
telemetry::SimProfiler::TelemetryOverhead g_telemetryOverhead;

/** atexit hook: write/render the engine-profile report once per process. */
void
saveSimcoreProfile()
{
    const telemetry::SimProfiler::Report report = g_simProfiler.report();
    if (!g_telemetry.profilePath.empty()) {
        std::ofstream os(g_telemetry.profilePath, std::ios::trunc);
        if (os)
            telemetry::SimProfiler::writeJson(os, report,
                                              g_telemetry.benchLabel,
                                              g_telemetry.seed,
                                              &g_telemetryOverhead);
        else
            std::fprintf(stderr,
                         "warning: could not write engine profile to %s\n",
                         g_telemetry.profilePath.c_str());
    }
    if (g_telemetry.profileAscii) {
        std::ostringstream ss;
        telemetry::SimProfiler::renderAscii(ss, report,
                                            g_telemetry.benchLabel);
        std::fputs(ss.str().c_str(), stderr);
        std::fflush(stderr);
    }
}

/** Figure label from the last printFigureHeader, for bench-JSON rows. */
std::string g_currentFigure;

/** First bench-JSON row truncates the file; later rows append. */
bool g_benchJsonStarted = false;

/** Same truncate-then-append pattern for the timeline file. */
bool g_timelineStarted = false;

/** And for the exemplar JSONL file (one reservoir dump per system). */
bool g_exemplarsStarted = false;

/** And for the interference JSONL file (one row per tenant mix). */
bool g_interferenceStarted = false;

/** Busy-fraction sampling period when telemetry is requested. */
constexpr sim::Ticks kUtilSampleInterval = sim::Ticks::us(100);

const char *
levelName(raid::RaidLevel level)
{
    return level == raid::RaidLevel::kRaid6 ? "raid6" : "raid5";
}

} // namespace

TelemetryOptions
parseTelemetryOptions(int argc, char **argv, const TelemetryOptions &defaults)
{
    TelemetryOptions opts = defaults;
    // Strict mode must catch typos in flags parsed before it appears on
    // the command line, so scan for it first.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--strict-flags")
            opts.strictFlags = true;
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--seed=", 0) == 0)
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--metrics-json=", 0) == 0)
            opts.metricsJsonPath = arg.substr(15);
        else if (arg.rfind("--trace=", 0) == 0)
            opts.tracePath = arg.substr(8);
        else if (arg.rfind("--trace-sample=", 0) == 0)
            opts.traceSamplePeriod =
                std::strtoull(arg.c_str() + 15, nullptr, 10);
        else if (arg.rfind("--exemplars=", 0) == 0)
            opts.exemplarsPath = arg.substr(12);
        else if (arg.rfind("--bench-json=", 0) == 0)
            opts.benchJsonPath = arg.substr(13);
        else if (arg.rfind("--timeline=", 0) == 0)
            opts.timelinePath = arg.substr(11);
        else if (arg == "--timeline-ascii")
            opts.timelineAscii = true;
        else if (arg == "--breakdown")
            opts.breakdown = true;
        else if (arg == "--no-flight-recorder")
            opts.flightRecorder = false;
        else if (arg.rfind("--profile=", 0) == 0)
            opts.profilePath = arg.substr(10);
        else if (arg == "--profile-ascii")
            opts.profileAscii = true;
        else if (arg == "--no-profile") {
            opts.profilePath.clear();
            opts.profileAscii = false;
        } else if (arg.rfind("--tenants=", 0) == 0)
            opts.tenants = static_cast<std::uint32_t>(
                std::strtoul(arg.c_str() + 10, nullptr, 10));
        else if (arg.rfind("--interference=", 0) == 0)
            opts.interferencePath = arg.substr(15);
        else if (arg == "--strict-flags")
            opts.strictFlags = true;
        else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr,
                         "%s: unknown flag %s (known: "
                         "--seed= --metrics-json= --trace= --trace-sample= "
                         "--exemplars= --bench-json= "
                         "--timeline= --timeline-ascii "
                         "--breakdown --no-flight-recorder "
                         "--profile= --profile-ascii --no-profile "
                         "--tenants= --interference= --strict-flags)\n",
                         opts.strictFlags ? "error" : "warning",
                         arg.c_str());
            if (opts.strictFlags)
                std::exit(2);
        }
    }
    return opts;
}

void
initTelemetry(int argc, char **argv)
{
    initTelemetry(argc, argv, TelemetryOptions{});
}

void
initTelemetry(int argc, char **argv, const TelemetryOptions &defaults)
{
    g_telemetry = parseTelemetryOptions(argc, argv, defaults);
    // A bench abort should always leave a readable post-mortem; when a
    // trace path was given, also drop a Chrome trace of the final ring.
    telemetry::FlightRecorder::installCrashHandlers();
    if (!g_telemetry.tracePath.empty())
        telemetry::FlightRecorder::setCrashTracePath(
            g_telemetry.tracePath + ".postmortem.json");
    // The profile row spans the whole invocation, so it is written when
    // the process winds down, after the last system under test retires.
    if (g_telemetry.profiling())
        std::atexit(saveSimcoreProfile);
}

std::uint64_t
benchSeed()
{
    return g_telemetry.seed;
}

const char *
name(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kLinux: return "Linux";
      case SystemKind::kSpdk: return "SPDK";
      case SystemKind::kDraid: return "dRAID";
    }
    return "?";
}

SystemUnderTest::SystemUnderTest(SystemKind kind, const ArrayConfig &array)
    : kind_(kind), array_(array)
{
    // 2 GB per drive keeps memory bounded while giving enough stripes.
    cfg_.ssd.capacity = 2ull << 30;
    cluster_ = std::make_unique<cluster::Cluster>(
        cfg_, array.width + array.spares, array.targetNicGoodputs);

    const std::uint32_t chunk = array.chunkKb * 1024;
    switch (kind) {
      case SystemKind::kDraid: {
        core::DraidOptions o = array.draidOpts;
        o.level = array.level;
        o.chunkSize = chunk;
        draid_ = std::make_unique<core::DraidSystem>(*cluster_, o,
                                                     array.width);
        break;
      }
      case SystemKind::kSpdk:
        spdk_ = std::make_unique<baselines::SpdkRaid>(*cluster_,
                                                      array.level, chunk,
                                                      array.width);
        break;
      case SystemKind::kLinux:
        linux_ = std::make_unique<baselines::LinuxMdRaid>(*cluster_,
                                                          array.level,
                                                          chunk,
                                                          array.width);
        break;
    }

    // The analyzer and the timeline both consume the retained span
    // stream, so tracing must be on whenever either was requested.
    if (!g_telemetry.tracePath.empty() || g_telemetry.analyzer() ||
        g_telemetry.timeline())
        cluster_->tracer().setEnabled(true);
    // Head sampling gates retention only: ids are still minted for every
    // op and the decision is a pure hash of the id, so turning it on
    // cannot change simulated output.
    cluster_->tracer().setSamplePeriod(g_telemetry.traceSamplePeriod);
    // The exemplar reservoir rides the recording stream (it needs
    // active(), not enabled()): with the default-on flight recorder it
    // works even in spans-off runs, and keeps whole chains for tail ops
    // that sampling would drop from retention.
    if (g_telemetry.exemplarCapture())
        cluster_->telemetry().exemplars().setEnabled(true);
    // Self-time the recording paths only when a profile was asked for;
    // the clock reads stay inside src/telemetry/ and never influence
    // what is recorded.
    if (g_telemetry.profiling())
        cluster_->tracer().setSelfTiming(true);
    if (g_telemetry.any())
        cluster_->startUtilizationSampling(kUtilSampleInterval);
    // Observe-only: attaching the engine profiler cannot perturb event
    // order, so simulated output is identical with or without this.
    if (g_telemetry.profiling())
        g_simProfiler.attach(cluster_->sim());

    // Arm per-tenant contention attribution; resources were registered
    // unconditionally at node instrumentation, enabling only turns the
    // recording hooks on.
    if (g_telemetry.interference())
        cluster_->telemetry().contention().setEnabled(true);

    // A bench op timeout is always a bug: dump the ring right away.
    telemetry::FlightRecorder &fr =
        cluster_->telemetry().flightRecorder();
    fr.setDumpOnAbnormal(true);
    if (!g_telemetry.flightRecorder)
        fr.setEnabled(false);
}

SystemUnderTest::~SystemUnderTest()
{
    if (!cluster_)
        return;
    if (!g_telemetry.metricsJsonPath.empty() &&
        !cluster_->telemetry().saveMetricsJson(g_telemetry.metricsJsonPath))
        std::fprintf(stderr, "warning: could not write metrics JSON to %s\n",
                     g_telemetry.metricsJsonPath.c_str());
    if (!g_telemetry.tracePath.empty() &&
        !cluster_->telemetry().saveChromeTrace(g_telemetry.tracePath))
        std::fprintf(stderr, "warning: could not write trace to %s\n",
                     g_telemetry.tracePath.c_str());
    if (!g_telemetry.exemplarsPath.empty()) {
        std::ofstream os(g_telemetry.exemplarsPath,
                         g_exemplarsStarted ? std::ios::app
                                            : std::ios::trunc);
        if (os) {
            g_exemplarsStarted = true;
            telemetry::writeExemplarsJsonl(
                os, cluster_->telemetry().exemplars());
        } else {
            std::fprintf(stderr,
                         "warning: could not write exemplars to %s\n",
                         g_telemetry.exemplarsPath.c_str());
        }
    }

    // A silently truncated trace misleads; one line on stderr when any
    // retention cap dropped data (the Chrome export carries the same
    // numbers as trace_truncation metadata).
    const telemetry::Tracer &tr = cluster_->tracer();
    if (tr.droppedSpans() > 0 || tr.droppedCounters() > 0)
        std::fprintf(stderr,
                     "warning: telemetry dropped %llu span(s), %llu "
                     "counter sample(s) at retention caps\n",
                     static_cast<unsigned long long>(tr.droppedSpans()),
                     static_cast<unsigned long long>(tr.droppedCounters()));

    // Fold this system's telemetry self-accounting into the process-wide
    // overhead block (BENCH_simcore.json) and the profiler's label rows.
    const telemetry::Telemetry &tel = cluster_->telemetry();
    g_telemetryOverhead.hostNs += tr.spanCost().ns + tr.opCost().ns +
                                  tr.counterCost().ns;
    g_telemetryOverhead.retainedBytes += tel.retainedTelemetryBytes();
    g_telemetryOverhead.spansRetained += tr.spans().size();
    g_telemetryOverhead.spansDropped += tr.droppedSpans();
    g_telemetryOverhead.spansSampledOut += tr.sampledOutSpans();
    g_telemetryOverhead.countersRetained += tr.counterSamples().size();
    g_telemetryOverhead.countersDropped += tr.droppedCounters();
    g_telemetryOverhead.exemplars += tel.exemplars().size();
    g_telemetryOverhead.samplePeriod = tr.samplePeriod();
    if (g_telemetry.profiling()) {
        g_simProfiler.addExternalCost("telemetry.trace.span",
                                      tr.spanCost().calls,
                                      tr.spanCost().ns);
        g_simProfiler.addExternalCost("telemetry.trace.op",
                                      tr.opCost().calls, tr.opCost().ns);
        g_simProfiler.addExternalCost("telemetry.trace.counter",
                                      tr.counterCost().calls,
                                      tr.counterCost().ns);
    }
}

blockdev::BlockDevice &
SystemUnderTest::device()
{
    if (draid_)
        return draid_->host();
    if (spdk_)
        return *spdk_;
    return *linux_;
}

core::DraidHost *
SystemUnderTest::draidHost()
{
    return draid_ ? &draid_->host() : nullptr;
}

void
SystemUnderTest::markFailed(std::uint32_t dev)
{
    if (draid_) {
        draid_->host().markFailed(dev);
    } else if (spdk_) {
        spdk_->markFailed(dev);
    } else {
        linux_->markFailed(dev);
    }
}

void
SystemUnderTest::reconstructChunk(std::uint64_t stripe, std::uint32_t spare,
                                  std::function<void(bool)> done)
{
    if (draid_) {
        draid_->host().reconstructChunk(stripe, spare, std::move(done));
    } else if (spdk_) {
        spdk_->reconstructChunk(stripe, spare, std::move(done));
    } else {
        linux_->reconstructChunk(stripe, spare, std::move(done));
    }
}

namespace {

/** Human breakdown table, on stderr (figure stdout stays diffable). */
void
printBreakdownTable(SystemUnderTest &sut, const workload::FioConfig &fio,
                    const workload::FioResult &result,
                    const telemetry::CriticalPathReport &report)
{
    std::fprintf(stderr,
                 "\n## critical path: %s %s (%s c%uk w%u io%u rd%.2f "
                 "qd%d, %zu ops, %.1f MB/s)\n",
                 g_currentFigure.empty() ? "bench" : g_currentFigure.c_str(),
                 name(sut.kind()), levelName(sut.array().level),
                 sut.array().chunkKb, sut.array().width, fio.ioSize,
                 fio.readRatio, fio.ioDepth, report.ops.size(),
                 result.bandwidthMBps);
    std::fprintf(stderr, "## %-8s %10s %10s %10s %8s\n", "phase",
                 "mean(us)", "p50(us)", "p99(us)", "share");
    for (std::size_t p = 0; p < telemetry::kNumPhases; ++p) {
        const telemetry::PhaseSummary &ps = report.phases[p];
        if (ps.totalTicks == 0)
            continue;
        std::fprintf(stderr, "## %-8s %10.2f %10.2f %10.2f %7.1f%%\n",
                     telemetry::phaseName(static_cast<telemetry::Phase>(p)),
                     ps.meanUs, ps.p50Us, ps.p99Us, ps.share * 100.0);
    }
    if (report.hasVerdict()) {
        const telemetry::ResourceBusy &b = report.bottleneck();
        std::fprintf(stderr,
                     "## bottleneck: %s %s, busy %.1f%% of the run window\n",
                     sut.cluster().nodeName(b.node).c_str(),
                     b.lane.c_str(), b.busyFraction * 100.0);
    }
    std::fflush(stderr);
}

/** One JSONL row per measured job. */
void
appendBenchJsonRow(SystemUnderTest &sut, const workload::FioConfig &fio,
                   const workload::FioResult &result,
                   const telemetry::CriticalPathReport &report,
                   sim::Tick job_start, sim::Tick job_end)
{
    std::ofstream os(g_telemetry.benchJsonPath,
                     g_benchJsonStarted ? std::ios::app : std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "warning: could not write bench JSON to %s\n",
                     g_telemetry.benchJsonPath.c_str());
        return;
    }
    g_benchJsonStarted = true;

    char buf[512];
    os << "{\"figure\":\""
       << (g_currentFigure.empty() ? "bench" : g_currentFigure)
       << "\",\"system\":\"" << name(sut.kind()) << "\",\"seed\":"
       << g_telemetry.seed;
    std::snprintf(buf, sizeof(buf),
                  ",\"config\":{\"level\":\"%s\",\"chunk_kb\":%u,"
                  "\"width\":%u,\"spares\":%u,\"io_size\":%u,"
                  "\"read_ratio\":%.4f,\"io_depth\":%d,\"num_ops\":%llu,"
                  "\"sequential\":%s}",
                  levelName(sut.array().level), sut.array().chunkKb,
                  sut.array().width, sut.array().spares, fio.ioSize,
                  fio.readRatio, fio.ioDepth,
                  static_cast<unsigned long long>(fio.numOps),
                  fio.sequential ? "true" : "false");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"bandwidth_MBps\":%.3f,\"kiops\":%.3f,\"errors\":%llu"
                  ",\"lat_us\":{\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f,"
                  "\"p999\":%.3f}",
                  result.bandwidthMBps, result.kiops,
                  static_cast<unsigned long long>(result.errors),
                  result.avgLatencyUs, result.p50LatencyUs,
                  result.p99LatencyUs, result.p999LatencyUs);
    os << buf;
    os << ",\"phases\":{";
    bool first = true;
    for (std::size_t p = 0; p < telemetry::kNumPhases; ++p) {
        const telemetry::PhaseSummary &ps = report.phases[p];
        if (!first)
            os << ",";
        first = false;
        std::snprintf(buf, sizeof(buf),
                      "\"%s\":{\"mean_us\":%.3f,\"p50_us\":%.3f,"
                      "\"p99_us\":%.3f,\"share\":%.4f}",
                      telemetry::phaseName(static_cast<telemetry::Phase>(p)),
                      ps.meanUs, ps.p50Us, ps.p99Us, ps.share);
        os << buf;
    }
    os << "}";
    if (report.hasVerdict()) {
        const telemetry::ResourceBusy &b = report.bottleneck();
        std::snprintf(buf, sizeof(buf),
                      ",\"bottleneck\":{\"node\":\"%s\",\"lane\":\"%s\","
                      "\"busy\":%.4f}",
                      sut.cluster().nodeName(b.node).c_str(),
                      b.lane.c_str(), b.busyFraction);
        os << buf;
    }
    // Slowest-op verdicts: the measured job's tail exemplars, each with
    // the dominant phase of its own span chain. Sampling cannot thin this
    // out — the reservoir is fed at op completion, before retention.
    const telemetry::ExemplarReservoir &res =
        sut.cluster().telemetry().exemplars();
    if (res.enabled()) {
        os << ",\"slowest_ops\":[";
        const auto slow = res.collect(job_start, job_end);
        const std::size_t n = std::min<std::size_t>(slow.size(), 5);
        for (std::size_t i = 0; i < n; ++i) {
            const telemetry::ExemplarReservoir::Exemplar &e = *slow[i];
            const telemetry::CriticalPathReport verdict =
                telemetry::analyzeCriticalPath(e.chain);
            const char *dominant =
                telemetry::phaseName(telemetry::Phase::kQueue);
            sim::Tick dominantTicks = -1;
            if (!verdict.ops.empty()) {
                for (std::size_t p = 0; p < telemetry::kNumPhases; ++p) {
                    const sim::Tick t = verdict.ops.front().phaseTicks[p];
                    if (t > dominantTicks) {
                        dominantTicks = t;
                        dominant = telemetry::phaseName(
                            static_cast<telemetry::Phase>(p));
                    }
                }
            }
            if (i)
                os << ",";
            std::snprintf(buf, sizeof(buf),
                          "{\"trace\":%llu,\"name\":\"%s\","
                          "\"latency_us\":%.3f,\"bytes\":%llu,"
                          "\"spans\":%zu,\"dominant\":\"%s\"}",
                          static_cast<unsigned long long>(e.traceId),
                          e.name.c_str(),
                          static_cast<double>(e.latency()) /
                              sim::kMicrosecond,
                          static_cast<unsigned long long>(e.bytes),
                          e.chain.size(), dominant);
            os << buf;
        }
        os << "]";
    }
    os << "}\n";
}

/** "fig09 dRAID (raid5 c512k w8 io131072 rd1.00 qd32)" */
std::string
jobLabel(SystemUnderTest &sut, const workload::FioConfig &fio)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s %s (%s c%uk w%u io%u rd%.2f qd%d)",
                  g_currentFigure.empty() ? "bench"
                                          : g_currentFigure.c_str(),
                  name(sut.kind()), levelName(sut.array().level),
                  sut.array().chunkKb, sut.array().width, fio.ioSize,
                  fio.readRatio, fio.ioDepth);
    return buf;
}

/** One JSONL timeline row per measured job. */
void
appendTimelineRow(SystemUnderTest &sut, const workload::FioConfig &fio,
                  const telemetry::TimelineReport &report)
{
    std::ofstream os(g_telemetry.timelinePath,
                     g_timelineStarted ? std::ios::app : std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "warning: could not write timeline to %s\n",
                     g_telemetry.timelinePath.c_str());
        return;
    }
    g_timelineStarted = true;
    os << "{\"figure\":\""
       << (g_currentFigure.empty() ? "bench" : g_currentFigure)
       << "\",\"system\":\"" << name(sut.kind()) << "\",\"io_size\":"
       << fio.ioSize << ",\"read_ratio\":" << fio.readRatio
       << ",\"timeline\":";
    telemetry::writeTimelineJson(os, report);
    os << "}\n";
}

/** One interference JSONL row covering the measured tenant mix. */
void
appendInterferenceRow(SystemUnderTest &sut, const std::string &label)
{
    std::ofstream os(g_telemetry.interferencePath,
                     g_interferenceStarted ? std::ios::app
                                           : std::ios::trunc);
    if (!os) {
        std::fprintf(stderr,
                     "warning: could not write interference row to %s\n",
                     g_telemetry.interferencePath.c_str());
        return;
    }
    g_interferenceStarted = true;
    sut.cluster().telemetry().contention().writeJsonRow(os, label,
                                                        g_telemetry.seed);
    os << "\n";
}

} // namespace

/** Preload helper shared by runFio and runTenantFio. */
static void
preloadSpan(SystemUnderTest &sut, std::uint64_t working_set_bytes)
{
    auto &dev = sut.device();
    auto &sim = sut.sim();
    {
        // Sequential full-span preload with big writes (full stripes where
        // possible) so the measured region holds real data + parity. The
        // drain waits on the completion count, not on queue exhaustion:
        // recurring controller events (e.g. the §6.2 bandwidth-aware
        // refresh timer) keep the queue occupied forever.
        const std::uint64_t span = working_set_bytes == 0
                                       ? dev.sizeBytes()
                                       : std::min(working_set_bytes,
                                                  dev.sizeBytes());
        const std::uint32_t io = 4u << 20;
        std::uint64_t pos = 0;
        int outstanding = 0;
        int resume_below = -1;
        while (pos < span) {
            const std::uint32_t len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(io, span - pos));
            ec::Buffer data(len);
            data.fill(static_cast<std::uint8_t>(pos >> 22));
            ++outstanding;
            dev.write(pos, std::move(data), [&](blockdev::IoStatus) {
                --outstanding;
                if (resume_below >= 0 && outstanding < resume_below) {
                    resume_below = -1;
                    sim.stop();
                }
            });
            pos += len;
            if (outstanding >= 16) {
                resume_below = 8;
                sim.run();
            }
        }
        while (outstanding > 0) {
            resume_below = 1;
            sim.run();
        }
    }
}

workload::FioResult
runFio(SystemUnderTest &sut, const workload::FioConfig &fio, bool preload)
{
    auto &dev = sut.device();
    auto &sim = sut.sim();

    if (preload)
        preloadSpan(sut, fio.workingSetBytes);

    // Only spans recorded by the measured job feed the analyzer and the
    // timeline; the preload's full-stripe writes would otherwise skew
    // the breakdown.
    const std::size_t span_base =
        sut.cluster().tracer().spans().size();
    const sim::Tick job_start = sim.now().raw();

    // Streaming aggregation: the timeline is fed one op at a time as it
    // completes (adaptive bin width), not rebuilt from retained spans —
    // so its windowed stats stay exact even when --trace-sample= retains
    // almost nothing, and its memory is O(bins), not O(ops).
    telemetry::WindowedAggregator streamed(sim::Ticks::zero());
    if (g_telemetry.timeline())
        sut.cluster().tracer().bindOpSink(&streamed);

    // The harness owns the seed (--seed=): a job must not carry its own,
    // so identical CLI invocations replay identical offset/ratio draws.
    workload::FioConfig seeded = fio;
    seeded.seed = benchSeed();
    workload::FioJob job(sim, dev, seeded);
    workload::FioResult result = job.run();

    if (g_telemetry.timeline())
        sut.cluster().tracer().bindOpSink(nullptr);

    // Preload-only calls (numOps <= 1) measure nothing worth reporting.
    if ((g_telemetry.analyzer() || g_telemetry.timeline()) &&
        fio.numOps > 1) {
        const auto &all = sut.cluster().tracer().spans();
        const std::vector<telemetry::TraceSpan> measured(
            all.begin() + static_cast<std::ptrdiff_t>(
                              std::min(span_base, all.size())),
            all.end());
        if (g_telemetry.analyzer()) {
            const telemetry::CriticalPathReport report =
                telemetry::analyzeCriticalPath(measured);
            if (g_telemetry.breakdown)
                printBreakdownTable(sut, fio, result, report);
            if (!g_telemetry.benchJsonPath.empty())
                appendBenchJsonRow(sut, fio, result, report, job_start,
                                   sim.now().raw() + 1);
        }
        if (g_telemetry.timeline()) {
            const telemetry::Telemetry &tel = sut.cluster().telemetry();
            const telemetry::TimelineReport report =
                telemetry::buildTimeline(
                    streamed,
                    tel.journal().snapshotRange(job_start, sim.now().raw() + 1),
                    tel.sampler().samples(), sut.cluster().hostId());
            if (g_telemetry.timelineAscii) {
                std::ostringstream ss;
                ss << "\n";
                telemetry::renderTimelineAscii(ss, report,
                                               jobLabel(sut, fio));
                std::fputs(ss.str().c_str(), stderr);
                std::fflush(stderr);
            }
            if (!g_telemetry.timelinePath.empty())
                appendTimelineRow(sut, fio, report);
        }
    }
    return result;
}

std::vector<workload::FioResult>
runTenantFio(SystemUnderTest &sut, const std::vector<TenantJob> &jobs,
             bool preload)
{
    auto &dev = sut.device();
    auto &sim = sut.sim();
    telemetry::ContentionTracker &ct =
        sut.cluster().telemetry().contention();
    ct.setEnabled(true);

    if (preload) {
        // One preload covering the union of working sets.
        std::uint64_t span = 0;
        bool whole = false;
        for (const TenantJob &j : jobs) {
            if (j.fio.workingSetBytes == 0)
                whole = true;
            span = std::max(span, j.fio.workingSetBytes);
        }
        preloadSpan(sut, whole ? 0 : span);
    }

    // Resolve tenant ids; reusing an existing registration keeps repeated
    // mixes on one system from exhausting the bounded registry.
    std::vector<telemetry::TenantId> ids;
    ids.reserve(jobs.size());
    for (const TenantJob &j : jobs) {
        telemetry::TenantId id = telemetry::ContentionTracker::kUntracked;
        for (std::size_t t = 1; t < ct.tenantCount(); ++t) {
            if (ct.tenantName(static_cast<telemetry::TenantId>(t)) ==
                j.name) {
                id = static_cast<telemetry::TenantId>(t);
                break;
            }
        }
        if (id == telemetry::ContentionTracker::kUntracked)
            id = ct.registerTenant(j.name);
        if (j.sloTargetP99Us > 0)
            ct.setSloTargetTicks(
                id, static_cast<sim::Tick>(j.sloTargetP99Us *
                                           sim::kMicrosecond));
        ids.push_back(id);
    }

    // The exported row must cover exactly the measured mix, so the
    // preload's occupancy, waits and completions are dropped here.
    ct.resetAccounting();

    std::vector<std::unique_ptr<workload::FioJob>> owned;
    std::vector<workload::FioJob *> raw;
    owned.reserve(jobs.size());
    raw.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        workload::FioConfig seeded = jobs[i].fio;
        // Distinct deterministic stream per tenant, all derived from the
        // invocation's --seed.
        seeded.seed = benchSeed() + i;
        seeded.tenant = ids[i];
        seeded.contention = &ct;
        owned.push_back(
            std::make_unique<workload::FioJob>(sim, dev, seeded));
        raw.push_back(owned.back().get());
    }
    std::vector<workload::FioResult> results =
        workload::runConcurrent(sim, raw);

    if (!g_telemetry.interferencePath.empty()) {
        std::string label =
            g_currentFigure.empty() ? "bench" : g_currentFigure;
        label += " ";
        label += name(sut.kind());
        appendInterferenceRow(sut, label);
    }
    return results;
}

workload::FioConfig
preloadConfig(std::uint64_t working_set_bytes)
{
    workload::FioConfig fio;
    fio.ioSize = 128 * 1024;
    fio.readRatio = 1.0;
    fio.ioDepth = 1;
    fio.numOps = 1;
    fio.workingSetBytes = working_set_bytes;
    return fio;
}

void
printFigureHeader(const std::string &figure, const std::string &title,
                  const std::vector<std::string> &columns)
{
    g_currentFigure = figure;
    std::printf("\n# %s: %s\n", figure.c_str(), title.c_str());
    std::printf("#");
    for (const auto &c : columns)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
}

void
printRow(const std::vector<double> &values)
{
    std::printf(" ");
    for (double v : values)
        std::printf(" %12.1f", v);
    std::printf("\n");
    std::fflush(stdout);
}

void
printNote(const std::string &note)
{
    std::printf("# %s\n", note.c_str());
}

} // namespace draid::bench
