// Reproduces Table 1 (architecture comparison) with *measured* network
// overhead factors from the simulation's per-NIC byte counters, plus the
// §2.3 motivating single-drive numbers.

#include <cstdio>

#include "harness.h"
#include "nvme/ssd.h"

using namespace draid;
using namespace draid::bench;

namespace {

constexpr std::uint64_t kKb = 1024;
constexpr std::uint64_t kMb = 1024 * 1024;

/** Host tx bytes per user byte for a 128 KB random-write workload. */
double
writeOverhead(SystemKind kind)
{
    ArrayConfig array;
    array.width = 8;
    SystemUnderTest sut(kind, array);
    workload::FioConfig fio;
    fio.ioSize = 128 * kKb;
    fio.readRatio = 0.0;
    fio.ioDepth = 16;
    fio.numOps = 400;
    fio.workingSetBytes = 512 * kMb;
    runFio(sut, preloadConfig(fio.workingSetBytes));
    const std::uint64_t tx0 =
        sut.cluster().host().nic().tx().bytesTransferred();
    runFio(sut, fio, /*preload=*/false);
    const std::uint64_t tx =
        sut.cluster().host().nic().tx().bytesTransferred() - tx0;
    return static_cast<double>(tx) / (400.0 * 128 * kKb);
}

/** Host rx bytes per user byte for reads of the failed chunk. */
double
degradedReadOverhead(SystemKind kind)
{
    ArrayConfig array;
    array.width = 8;
    SystemUnderTest sut(kind, array);
    const std::uint64_t ws = 256 * kMb;
    runFio(sut, preloadConfig(ws));
    sut.markFailed(0);

    // Read 128 KB slices that live on the failed device.
    const std::uint32_t chunk = 512 * kKb;
    const std::uint64_t stripe_data = 7ull * chunk;
    std::uint64_t user = 0;
    const std::uint64_t rx0 =
        sut.cluster().host().nic().rx().bytesTransferred();
    auto &dev = sut.device();
    int pending = 0;
    for (std::uint64_t s = 0; s < 64; ++s) {
        // Data index of device 0 in stripe s (skip its parity stripes).
        bool found = false;
        std::uint32_t fidx = 0;
        raid::Geometry g(raid::RaidLevel::kRaid5, chunk, 8);
        if (g.roleOf(s, 0) != raid::ChunkRole::kData)
            continue;
        fidx = g.dataIndexOf(s, 0);
        found = true;
        if (!found)
            continue;
        const std::uint64_t off =
            s * stripe_data + static_cast<std::uint64_t>(fidx) * chunk;
        ++pending;
        user += 128 * kKb;
        dev.read(off, 128 * kKb,
                 [&](blockdev::IoStatus, ec::Buffer) { --pending; });
    }
    sut.sim().run();
    const std::uint64_t rx =
        sut.cluster().host().nic().rx().bytesTransferred() - rx0;
    return static_cast<double>(rx) / static_cast<double>(user);
}

} // namespace

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    std::printf("# Table 1: remote RAID architecture comparison "
                "(measured network overhead factors)\n");
    std::printf("# Single-Machine column is analytic (local drive "
                "access): overheads 1x by construction.\n\n");

    // §2.3 motivating numbers: single-drive bandwidth.
    {
        sim::Simulator sim;
        nvme::SsdConfig cfg;
        nvme::Ssd ssd(sim, cfg);
        int done = 0;
        for (int i = 0; i < 256; ++i) {
            ssd.write(static_cast<std::uint64_t>(i) * kMb,
                      ec::Buffer(kMb),
                      [&](blockdev::IoStatus) { ++done; });
        }
        sim.run();
        const double wr_gbps = 256.0 * kMb * 8.0 /
                               sim::toSeconds(sim.now()) / 1e9;
        std::printf("# single-drive write: %.1f Gbps "
                    "(paper section 2.3: ~19 Gbps)\n",
                    wr_gbps);
    }

    const double spdk_w = writeOverhead(SystemKind::kSpdk);
    const double draid_w = writeOverhead(SystemKind::kDraid);
    const double linux_w = writeOverhead(SystemKind::kLinux);
    const double spdk_dr = degradedReadOverhead(SystemKind::kSpdk);
    const double draid_dr = degradedReadOverhead(SystemKind::kDraid);
    const double linux_dr = degradedReadOverhead(SystemKind::kLinux);

    std::printf("\n# %-22s %12s %12s %12s\n", "row", "Distributed(MD)",
                "Distrib(SPDK)", "dRAID");
    std::printf("  %-22s %12s %12s %12s\n", "fault tolerance",
                "disk+server", "disk+server", "disk+server");
    std::printf("  %-22s %12s %12s %12s\n", "hot spare", "pool", "pool",
                "pool");
    std::printf("  %-22s %12s %12s %12s\n", "scaling", "on-demand",
                "on-demand", "on-demand");
    std::printf("  %-22s %11.2fx %11.2fx %11.2fx\n",
                "write overhead (tx)", linux_w, spdk_w, draid_w);
    std::printf("  %-22s %11.2fx %11.2fx %11.2fx\n",
                "D-read overhead (rx)", linux_dr, spdk_dr, draid_dr);
    std::printf("\n# paper: distributed 1-4x write / Nx degraded read; "
                "dRAID 1x / 1x\n");
    return 0;
}
