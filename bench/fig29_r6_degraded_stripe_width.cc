// Bench binary regenerating the paper's fig29_r6_degraded_stripe_width.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figDegradedReadVsWidth(draid::raid::RaidLevel::kRaid6, "Figure 29");
    return 0;
}
