// Bench binary regenerating the paper's fig22_r6_normal_read.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figReadVsIoSize(draid::raid::RaidLevel::kRaid6, "Figure 22");
    return 0;
}
