// Bench binary regenerating the paper's fig30_r6_degraded_write.
#include "figures.h"

int
main()
{
    draid::bench::figDegradedWriteVsIoSize(draid::raid::RaidLevel::kRaid6, "Figure 30");
    return 0;
}
