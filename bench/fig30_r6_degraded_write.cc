// Bench binary regenerating the paper's fig30_r6_degraded_write.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figDegradedWriteVsIoSize(draid::raid::RaidLevel::kRaid6, "Figure 30");
    return 0;
}
