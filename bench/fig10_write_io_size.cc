// Bench binary regenerating the paper's fig10_write_io_size.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 10");
    return 0;
}
