// Bench binary regenerating the paper's fig10_write_io_size.
#include "figures.h"

int
main()
{
    draid::bench::figWriteVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 10");
    return 0;
}
