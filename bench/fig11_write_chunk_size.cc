// Bench binary regenerating the paper's fig11_write_chunk_size.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsChunkSize(draid::raid::RaidLevel::kRaid5, "Figure 11");
    return 0;
}
