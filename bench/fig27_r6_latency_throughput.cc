// Bench binary regenerating the paper's fig27_r6_latency_throughput.
#include "figures.h"

int
main()
{
    draid::bench::figLatencyVsLoad(draid::raid::RaidLevel::kRaid6, "Figure 27");
    return 0;
}
