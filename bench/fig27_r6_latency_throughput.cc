// Bench binary regenerating the paper's fig27_r6_latency_throughput.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figLatencyVsLoad(draid::raid::RaidLevel::kRaid6, "Figure 27");
    return 0;
}
