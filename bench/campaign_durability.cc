/**
 * Fault-campaign bench: Monte Carlo durability estimation (ROADMAP
 * fault-campaign item).
 *
 * Runs N seeded trials of each scenario class — benign single failure,
 * correlated dual failure, latent-sector-errors-during-rebuild, and
 * gray-drive/target-flap/port-degrade churn — on a small dRAID testbed.
 * Every trial ends with a bit-for-bit integrity check; the campaign
 * report carries per-class data-loss probability with Wilson 95%
 * intervals, degraded-SLO time, rebuild-exposure stats, and a
 * closed-form MTTDL cross-check row derived from the same rate
 * parameters the schedules were drawn from.
 *
 * Flags:
 *   --seed=<n>         campaign seed (default 1); trials derive from it
 *   --trials=<n>       Monte Carlo trials per class (default 32)
 *   --bench-json=<p>   durability report path (default BENCH_campaign.json)
 *   --timeline-ascii   render each trial's timeline on stderr
 *
 * Two runs with the same flags produce byte-identical stdout and
 * BENCH_campaign.json (the CI determinism gate compares them).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/campaign.h"

int
main(int argc, char **argv)
{
    draid::campaign::CampaignConfig cfg;
    std::string benchJsonPath = "BENCH_campaign.json";

    bool strictFlags = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--strict-flags") == 0)
            strictFlags = true;
    }
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--seed=", 7) == 0) {
            cfg.seed = std::strtoull(arg + 7, nullptr, 10);
        } else if (std::strncmp(arg, "--trials=", 9) == 0) {
            cfg.trials =
                static_cast<std::uint32_t>(std::strtoul(arg + 9, nullptr, 10));
        } else if (std::strncmp(arg, "--bench-json=", 13) == 0) {
            benchJsonPath = arg + 13;
        } else if (std::strcmp(arg, "--timeline-ascii") == 0) {
            cfg.timelineAscii = true;
        } else if (std::strcmp(arg, "--strict-flags") == 0) {
            // Handled by the prescan above.
        } else {
            std::fprintf(stderr, "%s: unknown flag %s\n",
                         strictFlags ? "error" : "warning", arg);
            if (strictFlags)
                return 2;
        }
    }

    std::printf("# campaign_durability: %u trials/class, seed %llu\n",
                cfg.trials, static_cast<unsigned long long>(cfg.seed));
    std::printf("# class trials losses loss_p wilson_lo wilson_hi "
                "lost_stripes slo_ms exposure_ms rebuild_ms\n");

    const draid::campaign::CampaignReport report =
        draid::campaign::runCampaign(cfg, &std::cerr);

    for (const draid::campaign::ClassReport &cr : report.classes) {
        std::printf("%s %u %u %.4f %.4f %.4f %llu %.3f %.3f %.3f\n",
                    draid::campaign::scenarioName(cr.cls), cr.trials,
                    cr.losses, cr.lossP, cr.ci.lo, cr.ci.hi,
                    static_cast<unsigned long long>(cr.lostStripes),
                    cr.degradedSloMsMean, cr.exposureMsMean,
                    cr.rebuildMsMean);
    }
    if (report.mttdl.valid) {
        std::printf("# mttdl cross-check: model_loss_p %.4f measured %.4f "
                    "mttr_h %.3g mttdl_h %.4g\n",
                    report.mttdl.modelLossP, report.mttdl.measuredLossP,
                    report.mttdl.mttrHours, report.mttdl.mttdlHours);
    }

    std::uint32_t unexplained = 0;
    for (const draid::campaign::ClassReport &cr : report.classes)
        unexplained += cr.unexplainedIntegrityFailures;
    if (unexplained > 0) {
        std::fprintf(stderr,
                     "error: %u trials failed integrity without a "
                     "recorded data-loss verdict\n",
                     unexplained);
        return 1;
    }

    std::ofstream os(benchJsonPath, std::ios::trunc);
    if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     benchJsonPath.c_str());
        return 1;
    }
    draid::campaign::writeCampaignJson(os, report);
    return 0;
}
