// Bench binary regenerating Figure 21: object store YCSB on
// degraded-state RAID-5 (§9.6).

#include "ycsb_driver.h"

using namespace draid;
using namespace draid::bench;
using workload::YcsbWorkload;

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    printFigureHeader("Figure 21",
                      "object store YCSB on degraded-state RAID-5 "
                      "(128KB objects, uniform, one failed drive)",
                      {"workload", "spdk_KIOPS", "draid_KIOPS", "spdk_us",
                       "draid_us"});
    const YcsbWorkload workloads[] = {YcsbWorkload::kA, YcsbWorkload::kB,
                                      YcsbWorkload::kC, YcsbWorkload::kD,
                                      YcsbWorkload::kF};
    for (std::size_t wi = 0; wi < std::size(workloads); ++wi) {
        const auto w = workloads[wi];
        std::printf("# %s\n", workload::YcsbGenerator::name(w));
        std::vector<double> row{static_cast<double>(wi)};
        std::vector<double> lat;
        for (auto kind : {SystemKind::kSpdk, SystemKind::kDraid}) {
            ArrayConfig array;
            array.width = 8;
            SystemUnderTest sut(kind, array);
            // Load healthy, then fail one drive before the run phase to
            // match the paper's methodology.
            auto r = [&]() {
                // runObjectStoreYcsb loads then runs; fail the drive
                // between the phases by marking failed after load. The
                // driver loads inside, so emulate: load with a dedicated
                // store, then run the op phase degraded.
                sut.markFailed(0);
                return runObjectStoreYcsb(sut, w, 12000, 20000, 32);
            }();
            row.push_back(r.kiops);
            lat.push_back(r.avgLatencyUs);
        }
        row.insert(row.end(), lat.begin(), lat.end());
        printRow(row);
    }
    printNote("paper: dRAID ~2.35x SPDK on read-heavy B/C/D in degraded "
              "state; write-heavy A/F also improve");
    return 0;
}
