// Bench binary regenerating the paper's fig23_r6_write_io_size.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figWriteVsIoSize(draid::raid::RaidLevel::kRaid6, "Figure 23");
    return 0;
}
