// Bench binary regenerating the paper's fig23_r6_write_io_size.
#include "figures.h"

int
main()
{
    draid::bench::figWriteVsIoSize(draid::raid::RaidLevel::kRaid6, "Figure 23");
    return 0;
}
