// Bench binary regenerating the paper's fig28_r6_degraded_read.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figDegradedReadVsIoSize(draid::raid::RaidLevel::kRaid6, "Figure 28");
    return 0;
}
