// Bench binary regenerating the paper's fig28_r6_degraded_read.
#include "figures.h"

int
main()
{
    draid::bench::figDegradedReadVsIoSize(draid::raid::RaidLevel::kRaid6, "Figure 28");
    return 0;
}
