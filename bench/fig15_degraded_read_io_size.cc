// Bench binary regenerating the paper's fig15_degraded_read_io_size.
#include "figures.h"

int
main()
{
    draid::bench::figDegradedReadVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 15");
    return 0;
}
