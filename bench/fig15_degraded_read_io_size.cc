// Bench binary regenerating the paper's fig15_degraded_read_io_size.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figDegradedReadVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 15");
    return 0;
}
