// Bench binary regenerating the paper's fig18_degraded_write.
#include "figures.h"

int
main(int argc, char **argv)
{
    draid::bench::initTelemetry(argc, argv);
    draid::bench::figDegradedWriteVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 18");
    return 0;
}
