// Bench binary regenerating the paper's fig18_degraded_write.
#include "figures.h"

int
main()
{
    draid::bench::figDegradedWriteVsIoSize(draid::raid::RaidLevel::kRaid5, "Figure 18");
    return 0;
}
