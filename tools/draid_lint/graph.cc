#include "graph.h"

#include <algorithm>

namespace draidlint {

namespace {

/** "src/<module>/..." -> "<module>"; "" otherwise. */
std::string
secondComponent(const std::string &rel_path)
{
    const std::string prefix = "src/";
    if (rel_path.compare(0, prefix.size(), prefix) != 0)
        return "";
    std::size_t slash = rel_path.find('/', prefix.size());
    if (slash == std::string::npos)
        return "";
    return rel_path.substr(prefix.size(), slash - prefix.size());
}

} // namespace

const std::map<std::string, std::set<std::string>> &
allowedModuleDeps()
{
    static const std::map<std::string, std::set<std::string>> kDeps = {
        {"ec", {}},
        {"sim", {}},
        {"proto", {"sim"}},
        {"telemetry", {"sim"}}, // observe-only: types + recorded events
        {"net", {"sim", "ec", "proto", "telemetry"}},
        {"blockdev", {"ec", "net", "telemetry"}},
        {"nvme", {"sim", "blockdev", "telemetry"}},
        {"raid", {"sim", "telemetry"}},
        {"workload", {"sim", "blockdev", "telemetry"}},
        {"cluster", {"sim", "net", "nvme", "telemetry"}},
        {"core",
         {"sim", "ec", "net", "proto", "raid", "blockdev", "cluster",
          "telemetry"}},
        {"baselines",
         {"sim", "ec", "net", "raid", "blockdev", "cluster", "telemetry"}},
        {"app", {"sim", "ec", "blockdev"}},
        {"campaign", {"sim", "cluster", "core", "workload", "telemetry"}},
    };
    return kDeps;
}

std::string
moduleOf(const std::string &rel_path)
{
    const std::string m = secondComponent(rel_path);
    return allowedModuleDeps().count(m) ? m : "";
}

std::string
includeTargetModule(const std::string &target)
{
    std::size_t slash = target.find('/');
    if (slash == std::string::npos)
        return "";
    const std::string m = target.substr(0, slash);
    return allowedModuleDeps().count(m) ? m : "";
}

bool
isNvmfBridge(const std::string &rel_path)
{
    const std::string prefix = "src/blockdev/nvmf_";
    return rel_path.compare(0, prefix.size(), prefix) == 0;
}

std::string
allowedDepsFor(const std::string &rel_path)
{
    const std::string m = moduleOf(rel_path);
    auto it = allowedModuleDeps().find(m);
    if (it == allowedModuleDeps().end())
        return "";
    std::set<std::string> allowed = it->second;
    if (isNvmfBridge(rel_path))
        allowed.insert("cluster");
    std::string joined;
    for (const std::string &a : allowed)
        joined += (joined.empty() ? "" : ", ") + a;
    return joined.empty() ? "(none)" : joined;
}

void
IncludeGraph::addFile(const FileUnit &unit)
{
    if (moduleOf(unit.relPath).empty())
        return;
    auto &edges = adj_[unit.relPath];
    for (const Include &inc : unit.includes) {
        if (!inc.quoted || includeTargetModule(inc.target).empty())
            continue;
        edges.push_back({"src/" + inc.target, inc.line});
    }
}

void
IncludeGraph::checkCycles(std::vector<Diagnostic> &out) const
{
    // Iterative DFS with colors; each back edge closes exactly one cycle
    // and the path on the stack names it.
    enum class Color
    {
        kWhite,
        kGray,
        kBlack,
    };
    std::map<std::string, Color> color;
    for (const auto &[node, edges] : adj_)
        color[node] = Color::kWhite;

    struct Frame
    {
        std::string node;
        std::size_t next = 0;
    };

    for (const auto &[start, start_edges] : adj_) {
        if (color[start] != Color::kWhite)
            continue;
        std::vector<Frame> stack{{start, 0}};
        color[start] = Color::kGray;
        while (!stack.empty()) {
            Frame &frame = stack.back();
            static const std::vector<Edge> kNoEdges;
            auto it = adj_.find(frame.node);
            const std::vector<Edge> &edges =
                it != adj_.end() ? it->second : kNoEdges;
            if (frame.next >= edges.size()) {
                color[frame.node] = Color::kBlack;
                stack.pop_back();
                continue;
            }
            const Edge &e = edges[frame.next++];
            auto c = color.find(e.to);
            if (c == color.end() || c->second == Color::kBlack)
                continue; // not scanned / already proven acyclic
            if (c->second == Color::kGray) {
                // Name the cycle from the stack entry for e.to onward.
                std::string path;
                bool in_cycle = false;
                for (const Frame &f : stack) {
                    if (f.node == e.to)
                        in_cycle = true;
                    if (in_cycle)
                        path += f.node + " -> ";
                }
                path += e.to;
                out.push_back({frame.node, e.line, "layering",
                               "include cycle: " + path});
                continue;
            }
            color[e.to] = Color::kGray;
            stack.push_back({e.to, 0});
        }
    }
}

} // namespace draidlint
