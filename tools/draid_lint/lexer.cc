#include "lint.h"

#include <cctype>
#include <cstddef>

namespace draidlint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Two-character punctuators we keep fused (template scans rely on '<'
 *  and '>' staying single, so shifts are deliberately NOT fused). */
bool
isFusedPunct(char a, char b)
{
    switch (a) {
      case ':': return b == ':';
      case '-': return b == '>' || b == '=' || b == '-';
      case '+': return b == '=' || b == '+';
      case '=': return b == '=';
      case '!': return b == '=';
      case '&': return b == '&';
      case '|': return b == '|';
      default: return false;
    }
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/**
 * Parse a `draid-lint:` marker inside comment text. Two well-formed
 * shapes exist: `allow(<rule>) -- <reason>` (reason mandatory) and
 * `cap(<expr>)` (bound expression mandatory). Anything else after the
 * marker lands in badSuppressionLines.
 */
void
parseSuppression(const std::string &comment, int line, FileUnit &unit)
{
    const std::string marker = "draid-lint:";
    std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    std::string rest = trim(comment.substr(at + marker.size()));
    const std::string cap = "cap(";
    if (rest.compare(0, cap.size(), cap) == 0) {
        // The bound may itself contain parentheses (e.g. a call-shaped
        // constant), so match the marker's own closing paren from the end.
        std::size_t close = rest.rfind(')');
        if (close == std::string::npos || close < cap.size() ||
            !trim(rest.substr(close + 1)).empty()) {
            unit.badSuppressionLines.push_back(line);
            return;
        }
        std::string expr = trim(rest.substr(cap.size(), close - cap.size()));
        if (expr.empty()) {
            unit.badSuppressionLines.push_back(line);
            return;
        }
        unit.caps.push_back({line, expr});
        return;
    }
    const std::string allow = "allow(";
    if (rest.compare(0, allow.size(), allow) != 0) {
        unit.badSuppressionLines.push_back(line);
        return;
    }
    std::size_t close = rest.find(')');
    if (close == std::string::npos) {
        unit.badSuppressionLines.push_back(line);
        return;
    }
    std::string rule = trim(rest.substr(allow.size(), close - allow.size()));
    std::string tail = trim(rest.substr(close + 1));
    if (rule.empty() || tail.compare(0, 2, "--") != 0 ||
        trim(tail.substr(2)).empty()) {
        unit.badSuppressionLines.push_back(line);
        return;
    }
    unit.suppressions.push_back({line, rule, trim(tail.substr(2))});
}

/** Parse an include target out of a directive line body. */
void
parseInclude(const std::string &body, int line, FileUnit &unit)
{
    std::size_t i = 0;
    while (i < body.size() && (body[i] == ' ' || body[i] == '\t'))
        ++i;
    if (i >= body.size())
        return;
    char open = body[i];
    char close_ch = open == '"' ? '"' : open == '<' ? '>' : '\0';
    if (close_ch == '\0')
        return;
    std::size_t end = body.find(close_ch, i + 1);
    if (end == std::string::npos)
        return;
    unit.includes.push_back(
        {line, body.substr(i + 1, end - i - 1), open == '"'});
}

} // namespace

FileUnit
lexFile(const std::string &rel_path, const std::string &content)
{
    FileUnit unit;
    unit.relPath = rel_path;
    std::size_t dot = rel_path.rfind('.');
    unit.isHeader = dot != std::string::npos && rel_path.substr(dot) == ".h";

    const std::size_t n = content.size();
    std::size_t i = 0;
    int line = 1;
    bool at_line_start = true;

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? content[i + k] : '\0';
    };

    while (i < n) {
        char c = content[i];

        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i;
            continue;
        }

        // Line comment: scan for a suppression marker, then discard.
        if (c == '/' && peek(1) == '/') {
            std::size_t end = content.find('\n', i);
            if (end == std::string::npos)
                end = n;
            parseSuppression(content.substr(i + 2, end - i - 2), line, unit);
            i = end;
            continue;
        }

        // Block comment (suppressions are line-comment-only by design).
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i < n && !(content[i] == '*' && peek(1) == '/')) {
                if (content[i] == '\n')
                    ++line;
                ++i;
            }
            i = i < n ? i + 2 : n;
            continue;
        }

        // Preprocessor directive: record includes, swallow the rest of
        // the (possibly continued) line so macro bodies don't leak
        // tokens into the rules.
        if (c == '#' && at_line_start) {
            std::size_t j = i + 1;
            while (j < n && (content[j] == ' ' || content[j] == '\t'))
                ++j;
            std::size_t word_end = j;
            while (word_end < n &&
                   isIdentChar(content[word_end]))
                ++word_end;
            std::string directive = content.substr(j, word_end - j);
            std::size_t end = i;
            int extra_lines = 0;
            while (end < n) {
                if (content[end] == '\n') {
                    if (end > 0 && content[end - 1] == '\\') {
                        ++extra_lines;
                        ++end;
                        continue;
                    }
                    break;
                }
                ++end;
            }
            if (directive == "include")
                parseInclude(content.substr(word_end, end - word_end), line,
                             unit);
            line += extra_lines;
            i = end;
            continue;
        }
        at_line_start = false;

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && peek(1) == '"') {
            std::size_t d0 = i + 2;
            std::size_t dp = d0;
            while (dp < n && content[dp] != '(')
                ++dp;
            std::string close_seq =
                ")" + content.substr(d0, dp - d0) + "\"";
            std::size_t end = content.find(close_seq, dp);
            if (end == std::string::npos)
                end = n;
            else
                end += close_seq.size();
            for (std::size_t k = i; k < end && k < n; ++k)
                if (content[k] == '\n')
                    ++line;
            unit.tokens.push_back({Token::Kind::kString, "", line});
            i = end;
            continue;
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            std::size_t j = i + 1;
            while (j < n && content[j] != quote) {
                if (content[j] == '\\')
                    ++j;
                else if (content[j] == '\n')
                    ++line; // unterminated; keep the count sane
                ++j;
            }
            unit.tokens.push_back({quote == '"' ? Token::Kind::kString
                                                : Token::Kind::kCharLit,
                                   "", line});
            i = j < n ? j + 1 : n;
            continue;
        }

        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(content[j]))
                ++j;
            unit.tokens.push_back({Token::Kind::kIdentifier,
                                   content.substr(i, j - i), line});
            i = j;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < n && (isIdentChar(content[j]) || content[j] == '\'' ||
                             ((content[j] == '+' || content[j] == '-') &&
                              j > i &&
                              (content[j - 1] == 'e' ||
                               content[j - 1] == 'E' ||
                               content[j - 1] == 'p' ||
                               content[j - 1] == 'P')) ||
                             content[j] == '.'))
                ++j;
            unit.tokens.push_back(
                {Token::Kind::kNumber, content.substr(i, j - i), line});
            i = j;
            continue;
        }

        // Punctuation, fusing the two-char operators the rules rely on.
        if (isFusedPunct(c, peek(1))) {
            unit.tokens.push_back(
                {Token::Kind::kPunct, content.substr(i, 2), line});
            i += 2;
            continue;
        }
        unit.tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
        ++i;
    }
    return unit;
}

} // namespace draidlint
