/**
 * @file
 * Per-file symbol/scope index for the semantic rules (lint.h).
 *
 * One linear pass over the token stream tracks the brace-scope stack
 * (namespace / class / function / lambda / control block) and harvests:
 *
 *  - growable container members declared at class scope (bounded-memory),
 *  - function declarations at class/namespace scope with their return-type
 *    and parameter-list token ranges (tick-unit),
 *  - the body token ranges of lambdas passed to Simulator::schedule() /
 *    scheduleAt() — event callbacks (callback-discipline).
 *
 * Like the lexer, this is deliberately NOT a C++ front end: it leans on
 * the repo's consistent style (clang-format, one declaration per line,
 * `Type name_;` members) and prefers false negatives over noise.
 */

#ifndef DRAID_TOOLS_LINT_INDEX_H
#define DRAID_TOOLS_LINT_INDEX_H

#include <cstddef>
#include <string>
#include <vector>

#include "lint.h"

namespace draidlint {

/** Half-open token index range [begin, end). */
struct TokenRange
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

/** A class-scope data member whose type can grow without bound. */
struct GrowableMember
{
    int line = 0;            ///< line of the declared name
    std::string container;   ///< e.g. "vector", "unordered_map"
    std::string name;        ///< declared identifier
    std::string className;   ///< enclosing class/struct ("" if anonymous)
};

/** A function declaration (or definition) at class/namespace scope. */
struct FunctionDecl
{
    int line = 0;
    std::string name;
    TokenRange returnType; ///< statement tokens before the name
    TokenRange params;     ///< tokens strictly inside the parameter parens
};

/** The body of a lambda passed to schedule()/scheduleAt(). */
struct CallbackBody
{
    int line = 0;     ///< line of the schedule call
    TokenRange body;  ///< tokens strictly inside the lambda's braces
};

/** Everything the semantic rules need to know about one file. */
struct FileIndex
{
    std::vector<GrowableMember> growableMembers;
    std::vector<FunctionDecl> functions;
    std::vector<CallbackBody> callbacks;
};

/** Build the index for @p unit in one token pass. */
FileIndex buildFileIndex(const FileUnit &unit);

} // namespace draidlint

#endif // DRAID_TOOLS_LINT_INDEX_H
