#include "lint.h"

#include <algorithm>
#include <cstddef>

namespace draidlint {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

/**
 * Code whose control flow feeds simulated ticks or exported artifacts
 * (DESIGN.md §5.6). Everything under src/ qualifies: the sim core and
 * RAID layers obviously, but also the apps (SST layout order reaches
 * fig19) and telemetry (TIMELINE_*.json is byte-compared in CI).
 */
bool
inSimScope(const std::string &path)
{
    return startsWith(path, "src/");
}

bool
inFpScope(const std::string &path)
{
    return startsWith(path, "src/sim/") || startsWith(path, "src/net/");
}

const std::string &
tokText(const FileUnit &u, std::size_t i)
{
    static const std::string kEmpty;
    return i < u.tokens.size() ? u.tokens[i].text : kEmpty;
}

bool
isIdent(const FileUnit &u, std::size_t i)
{
    return i < u.tokens.size() &&
           u.tokens[i].kind == Token::Kind::kIdentifier;
}

/**
 * Given the index of a '<' token, return the index one past its matching
 * '>' (token-level depth count; shifts are never fused by the lexer so
 * nested closes count correctly). Returns tokens.size() when unmatched.
 */
std::size_t
skipTemplateArgs(const FileUnit &u, std::size_t lt)
{
    int depth = 0;
    for (std::size_t i = lt; i < u.tokens.size(); ++i) {
        const std::string &t = u.tokens[i].text;
        if (t == "<")
            ++depth;
        else if (t == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (t == ";" || t == "{")
            break; // not a template argument list after all
    }
    return u.tokens.size();
}

/** Index of the identifier being declared after a type's template args,
 *  skipping cv/ref/ptr decoration; npos-equivalent when absent. */
std::size_t
declaredNameAfter(const FileUnit &u, std::size_t i)
{
    while (i < u.tokens.size() &&
           (tokText(u, i) == "&" || tokText(u, i) == "*" ||
            tokText(u, i) == "const"))
        ++i;
    if (isIdent(u, i))
        return i;
    return u.tokens.size();
}

struct RuleSink
{
    const FileUnit &unit;
    std::vector<Diagnostic> &out;

    void report(int line, const std::string &rule,
                const std::string &message) const
    {
        for (const Suppression &s : unit.suppressions)
            if (s.rule == rule && (s.line == line || s.line + 1 == line))
                return;
        out.push_back({unit.relPath, line, rule, message});
    }
};

// ---------------------------------------------------------------------------
// D1 wall-clock: no host-time reads outside src/telemetry/
// ---------------------------------------------------------------------------

void
ruleWallClock(const FileUnit &u, const RuleSink &sink)
{
    if (startsWith(u.relPath, "src/telemetry/"))
        return;
    static const std::set<std::string> kBanned = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "clock_gettime", "gettimeofday", "timespec_get", "mktime",
        "localtime",    "gmtime",       "strftime",      "ftime",
        "utc_clock",    "tai_clock",    "file_clock",
    };
    for (std::size_t i = 0; i < u.tokens.size(); ++i) {
        if (!isIdent(u, i))
            continue;
        const std::string &t = u.tokens[i].text;
        if (kBanned.count(t)) {
            sink.report(u.tokens[i].line, "wall-clock",
                        "'" + t +
                            "' reads host time; simulated time must come "
                            "from sim::Simulator::now()");
            continue;
        }
        // std::time / ::time / time(nullptr) / clock().
        if (t == "time" || t == "clock") {
            bool qualified = i > 0 && tokText(u, i - 1) == "::";
            bool null_call =
                tokText(u, i + 1) == "(" &&
                (tokText(u, i + 2) == "nullptr" ||
                 tokText(u, i + 2) == "NULL" ||
                 (t == "time" && tokText(u, i + 2) == "0") ||
                 (t == "clock" && tokText(u, i + 2) == ")"));
            if (qualified || null_call)
                sink.report(u.tokens[i].line, "wall-clock",
                            "'" + t +
                                "()' reads host time; simulated time must "
                                "come from sim::Simulator::now()");
        }
    }
}

// ---------------------------------------------------------------------------
// D2 raw-rng: all randomness flows through src/sim/rng.h
// ---------------------------------------------------------------------------

void
ruleRawRng(const FileUnit &u, const RuleSink &sink)
{
    if (u.relPath == "src/sim/rng.h" || u.relPath == "src/sim/rng.cc")
        return;
    for (const Include &inc : u.includes)
        if (!inc.quoted && inc.target == "random")
            sink.report(inc.line, "raw-rng",
                        "<random> engines/distributions are banned; draw "
                        "from sim::Rng (src/sim/rng.h) instead");
    static const std::set<std::string> kBanned = {
        "random_device",
        "mt19937",
        "mt19937_64",
        "minstd_rand",
        "minstd_rand0",
        "default_random_engine",
        "knuth_b",
        "ranlux24",
        "ranlux24_base",
        "ranlux48",
        "ranlux48_base",
        "linear_congruential_engine",
        "mersenne_twister_engine",
        "subtract_with_carry_engine",
        "discard_block_engine",
        "independent_bits_engine",
        "shuffle_order_engine",
        "uniform_int_distribution",
        "uniform_real_distribution",
        "normal_distribution",
        "bernoulli_distribution",
        "exponential_distribution",
        "poisson_distribution",
        "geometric_distribution",
        "binomial_distribution",
        "negative_binomial_distribution",
        "discrete_distribution",
        "piecewise_constant_distribution",
        "piecewise_linear_distribution",
        "srand",
        "srand48",
        "srandom",
        "rand_r",
        "drand48",
        "erand48",
        "lrand48",
        "nrand48",
        "mrand48",
        "jrand48",
        "arc4random",
    };
    // Telemetry is held to a stricter bar: it must not draw randomness
    // AT ALL, not even through sim::Rng — a trace-sampling decision
    // backed by an engine draw would shift the deterministic seed chain
    // and perturb the simulation it is observing. Sampling decisions
    // hash the trace id instead (telemetry/sampling.h). The contention
    // attribution sources (FIFO pipes, CPU cores, stripe locks — the
    // files that feed ContentionTracker occupancy/wait records) carry
    // the same bar: their recording hooks must stay a pure function of
    // the event stream or BENCH_interference.json stops being
    // byte-identical across same-seed runs.
    const bool telemetryScope =
        u.relPath.rfind("src/telemetry/", 0) == 0 ||
        u.relPath.rfind("src/sim/pipe", 0) == 0 ||
        u.relPath.rfind("src/sim/cpu", 0) == 0 ||
        u.relPath.rfind("src/raid/stripe_lock", 0) == 0;
    for (std::size_t i = 0; i < u.tokens.size(); ++i) {
        if (!isIdent(u, i))
            continue;
        const std::string &t = u.tokens[i].text;
        if (kBanned.count(t)) {
            sink.report(u.tokens[i].line, "raw-rng",
                        "'" + t +
                            "' bypasses the deterministic seed chain; "
                            "use sim::Rng (src/sim/rng.h)");
            continue;
        }
        if (telemetryScope && t == "Rng") {
            sink.report(u.tokens[i].line, "raw-rng",
                        "telemetry must be draw-free: an Rng draw here "
                        "would shift the engine's seed chain and perturb "
                        "the simulation; decide by hashing the trace id "
                        "(telemetry/sampling.h)");
            continue;
        }
        // Bare rand()/random() calls (but not foo.rand() / x->random()).
        if ((t == "rand" || t == "random") && tokText(u, i + 1) == "(") {
            const std::string &prev = i > 0 ? tokText(u, i - 1) : "";
            if (prev != "." && prev != "->")
                sink.report(u.tokens[i].line, "raw-rng",
                            "'" + t +
                                "()' is unseeded global state; use "
                                "sim::Rng (src/sim/rng.h)");
        }
    }
}

// ---------------------------------------------------------------------------
// D3 unordered-iter: no hash-order traversal in sim-affecting code
// ---------------------------------------------------------------------------

bool
isUnorderedContainer(const std::string &t)
{
    return t == "unordered_map" || t == "unordered_set" ||
           t == "unordered_multimap" || t == "unordered_multiset";
}

/** Names declared as unordered containers (members, locals, aliases). */
std::set<std::string>
collectUnorderedDecls(const FileUnit &u)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < u.tokens.size(); ++i) {
        if (!isIdent(u, i) || !isUnorderedContainer(u.tokens[i].text) ||
            tokText(u, i + 1) != "<")
            continue;
        // `using Alias = std::unordered_map<...>;` declares the alias.
        if (i >= 4 && tokText(u, i - 1) == "::" &&
            tokText(u, i - 3) == "=" && isIdent(u, i - 4) &&
            i >= 5 && tokText(u, i - 5) == "using") {
            names.insert(u.tokens[i - 4].text);
            continue;
        }
        std::size_t after = skipTemplateArgs(u, i + 1);
        std::size_t name = declaredNameAfter(u, after);
        if (name < u.tokens.size())
            names.insert(u.tokens[name].text);
    }
    return names;
}

void
ruleUnorderedIter(const FileUnit &u, const SymbolTables &tables,
                  const RuleSink &sink)
{
    if (!inSimScope(u.relPath))
        return;
    std::set<std::string> local = collectUnorderedDecls(u);
    auto isUnorderedName = [&](const std::string &name) {
        return local.count(name) || tables.unorderedNames.count(name);
    };

    for (std::size_t i = 0; i < u.tokens.size(); ++i) {
        // Range-for whose range expression touches an unordered name.
        if (tokText(u, i) == "for" && tokText(u, i + 1) == "(") {
            int depth = 0;
            std::size_t colon = 0;
            std::size_t close = u.tokens.size();
            for (std::size_t j = i + 1; j < u.tokens.size(); ++j) {
                const std::string &t = u.tokens[j].text;
                if (t == "(")
                    ++depth;
                else if (t == ")") {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (t == ":" && depth == 1 && colon == 0)
                    colon = j;
                else if (t == ";" && depth == 1)
                    break; // classic for; no range expression
            }
            if (colon != 0) {
                for (std::size_t j = colon + 1; j < close; ++j) {
                    if (isIdent(u, j) && isUnorderedName(u.tokens[j].text) &&
                        tokText(u, j - 1) != "." &&
                        tokText(u, j - 1) != "->") {
                        sink.report(
                            u.tokens[i].line, "unordered-iter",
                            "range-for over unordered container '" +
                                u.tokens[j].text +
                                "' leaks hash order into simulated "
                                "ticks; iterate a sorted copy or annotate "
                                "order-insensitive");
                        break;
                    }
                }
            }
        }
        // Explicit iterator walks: x.begin() / x.cbegin() / x.rbegin().
        const std::string &t = tokText(u, i);
        if ((t == "begin" || t == "cbegin" || t == "rbegin" ||
             t == "crbegin") &&
            tokText(u, i + 1) == "(" && i >= 2 &&
            (tokText(u, i - 1) == "." || tokText(u, i - 1) == "->") &&
            isIdent(u, i - 2) && isUnorderedName(u.tokens[i - 2].text)) {
            sink.report(u.tokens[i].line, "unordered-iter",
                        "iterating unordered container '" +
                            u.tokens[i - 2].text +
                            "' leaks hash order into simulated ticks; "
                            "iterate a sorted copy or annotate "
                            "order-insensitive");
        }
    }
}

// ---------------------------------------------------------------------------
// D4 ptr-key: no pointer ordering (container keys or comparators)
// ---------------------------------------------------------------------------

bool
isOrderedContainer(const std::string &t)
{
    return t == "map" || t == "set" || t == "multimap" || t == "multiset";
}

void
rulePtrKey(const FileUnit &u, const RuleSink &sink)
{
    for (std::size_t i = 0; i + 1 < u.tokens.size(); ++i) {
        if (!isIdent(u, i) || !isOrderedContainer(u.tokens[i].text) ||
            tokText(u, i + 1) != "<")
            continue;
        // Require std:: qualification so locals named `map` don't trip.
        if (!(i >= 2 && tokText(u, i - 1) == "::" &&
              tokText(u, i - 2) == "std"))
            continue;
        // Scan the first template argument (depth 1, up to ',' or '>').
        int depth = 0;
        for (std::size_t j = i + 1; j < u.tokens.size(); ++j) {
            const std::string &t = u.tokens[j].text;
            if (t == "<")
                ++depth;
            else if (t == ">") {
                if (--depth == 0)
                    break;
            } else if (t == "," && depth == 1)
                break;
            else if (t == "*" && depth == 1) {
                sink.report(u.tokens[j].line, "ptr-key",
                            "pointer key in ordered std::" +
                                u.tokens[i].text +
                                " orders by address, which varies "
                                "run-to-run; key on a stable id instead");
                break;
            } else if (t == ";" || t == "{")
                break;
        }
    }

    // Comparator lambdas ordering two pointer parameters: find lambdas
    // `[...](T *a, U *b ...) { ... a < b ... }`.
    for (std::size_t i = 0; i + 1 < u.tokens.size(); ++i) {
        if (tokText(u, i) != "]" || tokText(u, i + 1) != "(")
            continue;
        std::set<std::string> ptr_params;
        int depth = 0;
        std::size_t body = u.tokens.size();
        for (std::size_t j = i + 1; j < u.tokens.size(); ++j) {
            const std::string &t = u.tokens[j].text;
            if (t == "(")
                ++depth;
            else if (t == ")") {
                if (--depth == 0) {
                    body = j + 1;
                    break;
                }
            } else if (t == "*" && depth == 1 && isIdent(u, j + 1) &&
                       (tokText(u, j + 2) == "," ||
                        tokText(u, j + 2) == ")"))
                ptr_params.insert(u.tokens[j + 1].text);
        }
        if (ptr_params.size() < 2 || body >= u.tokens.size() ||
            tokText(u, body) != "{")
            continue;
        int braces = 0;
        for (std::size_t j = body; j < u.tokens.size(); ++j) {
            const std::string &t = u.tokens[j].text;
            if (t == "{")
                ++braces;
            else if (t == "}") {
                if (--braces == 0)
                    break;
            } else if ((t == "<" || t == ">") && isIdent(u, j - 1) &&
                       isIdent(u, j + 1) &&
                       ptr_params.count(u.tokens[j - 1].text) &&
                       ptr_params.count(u.tokens[j + 1].text)) {
                sink.report(u.tokens[j].line, "ptr-key",
                            "comparator orders pointers '" +
                                u.tokens[j - 1].text + "' and '" +
                                u.tokens[j + 1].text +
                                "' by address, which varies run-to-run; "
                                "compare a stable id instead");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// H1 include hygiene
// ---------------------------------------------------------------------------

std::string
baseName(const std::string &path)
{
    std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

void
ruleIncludeFirst(const FileUnit &u, const SymbolTables &tables,
                 const RuleSink &sink)
{
    if (u.isHeader || u.includes.empty())
        return;
    std::size_t dot = u.relPath.rfind('.');
    if (dot == std::string::npos)
        return;
    std::string sibling = u.relPath.substr(0, dot) + ".h";
    if (!tables.scannedPaths.count(sibling))
        return; // no companion header; nothing to be first
    const Include &first = u.includes.front();
    if (!first.quoted || baseName(first.target) != baseName(sibling))
        sink.report(first.line, "include-first",
                    "first include must be this file's own header '" +
                        baseName(sibling) +
                        "' so the header proves self-contained");
}

void
ruleNsHeader(const FileUnit &u, const RuleSink &sink)
{
    if (!u.isHeader)
        return;
    for (std::size_t i = 0; i + 1 < u.tokens.size(); ++i)
        if (tokText(u, i) == "using" && tokText(u, i + 1) == "namespace")
            sink.report(u.tokens[i].line, "ns-header",
                        "'using namespace' in a header leaks into every "
                        "includer; qualify names instead");
}

// ---------------------------------------------------------------------------
// H2 fp-accum: integral tick/byte totals in src/sim + src/net
// ---------------------------------------------------------------------------

bool
isFpType(const std::string &t)
{
    return t == "double" || t == "float";
}

/** Names declared float/double (scalars and vector/array elements). */
std::set<std::string>
collectFpDecls(const FileUnit &u)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i + 1 < u.tokens.size(); ++i) {
        if (!isIdent(u, i))
            continue;
        const std::string &t = u.tokens[i].text;
        if (isFpType(t)) {
            std::size_t j = i + 1;
            if (tokText(u, j) == "*")
                continue; // pointer-to-double: pointee tracked elsewhere
            if (tokText(u, j) == "&")
                ++j;
            if (!isIdent(u, j))
                continue;
            const std::string &after = tokText(u, j + 1);
            // `double mean() const` is a return type, not a declaration.
            if (after == "=" || after == ";" || after == "{" ||
                after == "," || after == ")")
                names.insert(u.tokens[j].text);
        } else if ((t == "vector" || t == "array") &&
                   tokText(u, i + 1) == "<" &&
                   isFpType(tokText(u, i + 2))) {
            std::size_t after = skipTemplateArgs(u, i + 1);
            std::size_t name = declaredNameAfter(u, after);
            if (name < u.tokens.size())
                names.insert(u.tokens[name].text);
        }
    }
    return names;
}

void
ruleFpAccum(const FileUnit &u, const SymbolTables &tables,
            const RuleSink &sink)
{
    if (!inFpScope(u.relPath))
        return;
    std::set<std::string> local = collectFpDecls(u);
    auto isFpName = [&](const std::string &name) {
        return local.count(name) || tables.fpNames.count(name);
    };
    for (std::size_t i = 1; i < u.tokens.size(); ++i) {
        const std::string &t = u.tokens[i].text;
        if (t != "+=" && t != "-=")
            continue;
        std::size_t base = i - 1;
        if (tokText(u, base) == "]") { // walk back over a subscript
            int depth = 0;
            while (base > 0) {
                if (tokText(u, base) == "]")
                    ++depth;
                else if (tokText(u, base) == "[" && --depth == 0) {
                    --base;
                    break;
                }
                --base;
            }
        }
        if (isIdent(u, base) && isFpName(u.tokens[base].text))
            sink.report(u.tokens[i].line, "fp-accum",
                        "floating-point accumulation into '" +
                            u.tokens[base].text +
                            "' drifts with summation order; accumulate "
                            "integral ticks/bytes and convert at the edge");
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

} // namespace

const std::vector<RuleInfo> &
allRules()
{
    static const std::vector<RuleInfo> kRules = {
        {"wall-clock",
         "no host-time reads; simulated time comes from Simulator::now()"},
        {"raw-rng",
         "all randomness flows through sim::Rng; telemetry is draw-free"},
        {"unordered-iter",
         "no hash-order iteration where order can reach simulated ticks"},
        {"ptr-key",
         "no pointer ordering (container keys or comparators)"},
        {"include-first",
         "a .cc file's first include is its own header"},
        {"ns-header", "no `using namespace` at header scope"},
        {"fp-accum",
         "tick/byte totals accumulate integrally in src/sim + src/net"},
        {"layering",
         "src/ include edges follow the declared module DAG; no cycles"},
        {"tick-unit",
         "scheduling/latency APIs take/return sim::Ticks, never raw "
         "sim::Tick"},
        {"bounded-memory",
         "growable container members under src/ carry a cap(<expr>) "
         "bound annotation"},
        {"callback-discipline",
         "event callbacks: no engine re-entry, no schedule fan-out or "
         "allocation in loops"},
        {"bad-suppression",
         "draid-lint markers are well-formed: allow(<rule>) -- <reason> "
         "or cap(<expr>)"},
    };
    return kRules;
}

const std::vector<std::string> &
allRuleIds()
{
    static const std::vector<std::string> kIds = [] {
        std::vector<std::string> ids;
        for (const RuleInfo &r : allRules())
            ids.push_back(r.id);
        return ids;
    }();
    return kIds;
}

void
collectHeaderSymbols(const FileUnit &unit, SymbolTables &tables)
{
    tables.scannedPaths.insert(unit.relPath);
    if (!unit.isHeader)
        return;
    // Members live in headers but are iterated from the sibling .cc, so
    // header-declared names go into the shared tables; locals stay
    // file-private (collected again per unit).
    for (const std::string &n : collectUnorderedDecls(unit))
        tables.unorderedNames.insert(n);
    if (inFpScope(unit.relPath))
        for (const std::string &n : collectFpDecls(unit))
            tables.fpNames.insert(n);
}

void
runRules(const FileUnit &unit, const SymbolTables &tables,
         std::vector<Diagnostic> &out)
{
    RuleSink sink{unit, out};
    ruleWallClock(unit, sink);
    ruleRawRng(unit, sink);
    ruleUnorderedIter(unit, tables, sink);
    rulePtrKey(unit, sink);
    ruleIncludeFirst(unit, tables, sink);
    ruleNsHeader(unit, sink);
    ruleFpAccum(unit, tables, sink);
    runSemanticRules(unit, out);

    for (int line : unit.badSuppressionLines)
        out.push_back({unit.relPath, line, "bad-suppression",
                       "malformed draid-lint comment; expected "
                       "`draid-lint: allow(<rule>) -- <reason>` with a "
                       "non-empty reason, or `draid-lint: cap(<expr>)` "
                       "with a non-empty bound"});
    for (const Suppression &s : unit.suppressions)
        if (std::find(allRuleIds().begin(), allRuleIds().end(), s.rule) ==
            allRuleIds().end()) {
            std::string known;
            for (const std::string &id : allRuleIds())
                known += (known.empty() ? "" : " ") + id;
            out.push_back({unit.relPath, s.line, "bad-suppression",
                           "allow(" + s.rule +
                               ") names an unknown rule; known rules: " +
                               known});
        }
}

} // namespace draidlint
