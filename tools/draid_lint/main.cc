/**
 * @file
 * draid_lint driver: walks the scan roots, lexes every C++ file, runs the
 * rule registry twice (pass 1 harvests header symbols, pass 2 lints) and
 * prints `file:line: rule-id: message` sorted by location.
 *
 * Exit codes: 0 clean, 1 violations, 2 usage/IO error.
 */

#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: draid_lint [options] [paths...]\n"
        "\n"
        "Scans C++ sources (.h/.cc) for dRAID determinism & hygiene rule\n"
        "violations. Paths are directories or files relative to the repo\n"
        "root; default: src bench tests.\n"
        "\n"
        "options:\n"
        "  --repo=<dir>             repo root the rules scope against\n"
        "                           (default: current directory)\n"
        "  --max-suppressions=<n>   fail when more than <n> allow()\n"
        "                           comments exist across the scan\n"
        "  --list-rules             print rule ids and exit\n"
        "  -h, --help               this text\n");
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h";
}

/** Repo-relative forward-slash path. */
std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::string s = p.lexically_relative(root).generic_string();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    long max_suppressions = -1;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--repo=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg.rfind("--max-suppressions=", 0) == 0) {
            max_suppressions = std::strtol(arg.c_str() + 19, nullptr, 10);
        } else if (arg == "--list-rules") {
            for (const std::string &id : draidlint::allRuleIds())
                std::printf("%s\n", id.c_str());
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "draid_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests"};

    std::error_code ec;
    root = fs::absolute(root, ec);
    if (ec || !fs::is_directory(root)) {
        std::fprintf(stderr, "draid_lint: repo root '%s' is not a directory\n",
                     root.string().c_str());
        return 2;
    }

    // Gather the file list (sorted for stable output across platforms).
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        fs::path full = root / p;
        if (fs::is_regular_file(full)) {
            files.push_back(full);
        } else if (fs::is_directory(full)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(full)) {
                if (entry.is_regular_file() && isSourceFile(entry.path()))
                    files.push_back(entry.path());
            }
        } else {
            std::fprintf(stderr, "draid_lint: no such path: %s\n",
                         full.string().c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: lex everything and harvest header-declared symbols.
    std::vector<draidlint::FileUnit> units;
    draidlint::SymbolTables tables;
    for (const fs::path &f : files) {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "draid_lint: cannot read %s\n",
                         f.string().c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        units.push_back(draidlint::lexFile(relPath(f, root), ss.str()));
        draidlint::collectHeaderSymbols(units.back(), tables);
        // Partial scans (single files) still need the self-include rule:
        // register a sibling header even when it wasn't asked for.
        fs::path sibling = f;
        sibling.replace_extension(".h");
        if (sibling != f && fs::is_regular_file(sibling))
            tables.scannedPaths.insert(relPath(sibling, root));
    }

    // Pass 2: rules.
    std::vector<draidlint::Diagnostic> diags;
    std::size_t suppression_count = 0;
    for (const draidlint::FileUnit &unit : units) {
        draidlint::runRules(unit, tables, diags);
        suppression_count += unit.suppressions.size();
    }

    std::sort(diags.begin(), diags.end(),
              [](const draidlint::Diagnostic &a,
                 const draidlint::Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    for (const auto &d : diags)
        std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());

    bool over_budget = max_suppressions >= 0 &&
                       suppression_count >
                           static_cast<std::size_t>(max_suppressions);
    std::fprintf(stderr,
                 "draid_lint: %zu file(s), %zu violation(s), "
                 "%zu suppression(s)%s\n",
                 units.size(), diags.size(), suppression_count,
                 over_budget ? " (over budget)" : "");
    if (over_budget)
        std::fprintf(stderr,
                     "draid_lint: suppression budget exceeded: %zu > %ld\n",
                     suppression_count, max_suppressions);
    return (!diags.empty() || over_budget) ? 1 : 0;
}
