/**
 * @file
 * draid_lint driver: walks the scan roots, lexes every C++ file, runs the
 * rule registry twice (pass 1 harvests header symbols, pass 2 lints —
 * including the v2 semantic pass and the repo-wide include-cycle check)
 * and emits diagnostics in the selected format.
 *
 * Exit codes: 0 clean, 1 violations, 2 usage/IO error.
 */

#include "graph.h"
#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: draid_lint [options] [paths...]\n"
        "\n"
        "Scans C++ sources (.h/.cc) for dRAID determinism & hygiene rule\n"
        "violations. Paths are directories or files relative to the repo\n"
        "root; default: src bench tests.\n"
        "\n"
        "options:\n"
        "  --repo=<dir>             repo root the rules scope against\n"
        "                           (default: current directory)\n"
        "  --max-suppressions=<n>   fail when more than <n> allow()\n"
        "                           comments exist across the scan\n"
        "  --format=<fmt>           text (default), json, or github\n"
        "                           (::error workflow annotations)\n"
        "  --report=<path>          additionally write the json report\n"
        "                           to <path>\n"
        "  --only=<rule>            restrict reporting to one rule id\n"
        "  --list-rules             print the rule table and exit\n"
        "  -h, --help               this text\n");
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h";
}

/** Repo-relative forward-slash path. */
std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::string s = p.lexically_relative(root).generic_string();
    return s;
}

/** Minimal JSON string escape (paths and messages are ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeJsonReport(std::FILE *to, const std::vector<draidlint::Diagnostic> &diags,
                std::size_t files, std::size_t suppressions)
{
    std::fprintf(to, "{\"files\":%zu,\"suppressions\":%zu,\"violations\":[",
                 files, suppressions);
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const draidlint::Diagnostic &d = diags[i];
        std::fprintf(to,
                     "%s{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\","
                     "\"message\":\"%s\"}",
                     i ? "," : "", jsonEscape(d.file).c_str(), d.line,
                     jsonEscape(d.rule).c_str(),
                     jsonEscape(d.message).c_str());
    }
    std::fprintf(to, "]}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    long max_suppressions = -1;
    std::string format = "text";
    std::string report_path;
    std::string only_rule;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--repo=", 0) == 0) {
            root = arg.substr(7);
        } else if (arg.rfind("--max-suppressions=", 0) == 0) {
            max_suppressions = std::strtol(arg.c_str() + 19, nullptr, 10);
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json" &&
                format != "github") {
                std::fprintf(stderr,
                             "draid_lint: unknown format '%s' (expected "
                             "text, json, or github)\n",
                             format.c_str());
                return 2;
            }
        } else if (arg.rfind("--report=", 0) == 0) {
            report_path = arg.substr(9);
        } else if (arg.rfind("--only=", 0) == 0) {
            only_rule = arg.substr(7);
            const auto &ids = draidlint::allRuleIds();
            if (std::find(ids.begin(), ids.end(), only_rule) == ids.end()) {
                std::fprintf(stderr,
                             "draid_lint: --only names unknown rule '%s' "
                             "(see --list-rules)\n",
                             only_rule.c_str());
                return 2;
            }
        } else if (arg == "--list-rules") {
            for (const draidlint::RuleInfo &r : draidlint::allRules())
                std::printf("%-20s %s\n", r.id.c_str(), r.doc.c_str());
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "draid_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests"};

    std::error_code ec;
    root = fs::absolute(root, ec);
    if (ec || !fs::is_directory(root)) {
        std::fprintf(stderr, "draid_lint: repo root '%s' is not a directory\n",
                     root.string().c_str());
        return 2;
    }

    // Gather the file list (sorted for stable output across platforms).
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        fs::path full = root / p;
        if (fs::is_regular_file(full)) {
            files.push_back(full);
        } else if (fs::is_directory(full)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(full)) {
                if (entry.is_regular_file() && isSourceFile(entry.path()))
                    files.push_back(entry.path());
            }
        } else {
            std::fprintf(stderr, "draid_lint: no such path: %s\n",
                         full.string().c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 1: lex everything and harvest header symbols + include graph.
    std::vector<draidlint::FileUnit> units;
    draidlint::SymbolTables tables;
    draidlint::IncludeGraph graph;
    for (const fs::path &f : files) {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "draid_lint: cannot read %s\n",
                         f.string().c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        units.push_back(draidlint::lexFile(relPath(f, root), ss.str()));
        draidlint::collectHeaderSymbols(units.back(), tables);
        graph.addFile(units.back());
        // Partial scans (single files) still need the self-include rule:
        // register a sibling header even when it wasn't asked for.
        fs::path sibling = f;
        sibling.replace_extension(".h");
        if (sibling != f && fs::is_regular_file(sibling))
            tables.scannedPaths.insert(relPath(sibling, root));
    }

    // Pass 2: rules (per-file), then the repo-wide cycle check.
    std::vector<draidlint::Diagnostic> diags;
    std::size_t suppression_count = 0;
    for (const draidlint::FileUnit &unit : units) {
        draidlint::runRules(unit, tables, diags);
        suppression_count += unit.suppressions.size();
    }
    graph.checkCycles(diags);

    if (!only_rule.empty())
        diags.erase(std::remove_if(diags.begin(), diags.end(),
                                   [&](const draidlint::Diagnostic &d) {
                                       return d.rule != only_rule;
                                   }),
                    diags.end());

    std::sort(diags.begin(), diags.end(),
              [](const draidlint::Diagnostic &a,
                 const draidlint::Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });

    if (format == "json") {
        writeJsonReport(stdout, diags, units.size(), suppression_count);
    } else if (format == "github") {
        for (const auto &d : diags)
            std::printf("::error file=%s,line=%d,title=draid-lint %s::%s\n",
                        d.file.c_str(), d.line, d.rule.c_str(),
                        d.message.c_str());
    } else {
        for (const auto &d : diags)
            std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line,
                        d.rule.c_str(), d.message.c_str());
    }
    if (!report_path.empty()) {
        std::FILE *rep = std::fopen(report_path.c_str(), "w");
        if (!rep) {
            std::fprintf(stderr, "draid_lint: cannot write report %s\n",
                         report_path.c_str());
            return 2;
        }
        writeJsonReport(rep, diags, units.size(), suppression_count);
        std::fclose(rep);
    }

    bool over_budget = max_suppressions >= 0 &&
                       suppression_count >
                           static_cast<std::size_t>(max_suppressions);
    std::fprintf(stderr,
                 "draid_lint: %zu file(s), %zu violation(s), "
                 "%zu suppression(s)%s\n",
                 units.size(), diags.size(), suppression_count,
                 over_budget ? " (over budget)" : "");
    if (over_budget)
        std::fprintf(stderr,
                     "draid_lint: suppression budget exceeded: %zu > %ld\n",
                     suppression_count, max_suppressions);
    return (!diags.empty() || over_budget) ? 1 : 0;
}
