/**
 * @file
 * draid-lint: repo-aware determinism & hygiene linter for the dRAID
 * reproduction (DESIGN.md §5.6).
 *
 * A dependency-free C++17 tokenizer + rule registry — deliberately NOT a
 * full C++ front end. Rules are pattern checks over the token stream,
 * tuned so the repo's idioms pass and the determinism hazards the paper
 * reproduction cares about (wall-clock reads, unseeded RNGs, hash-order
 * iteration, pointer ordering, float tick accumulation) fail loudly.
 *
 * Diagnostics print as `file:line: rule-id: message` and any violation
 * makes the binary exit non-zero. Inline suppression:
 *
 *     // draid-lint: allow(<rule-id>) -- <reason>
 *
 * covers the comment's own line and the line below it; the reason text is
 * mandatory (a reasonless allow() is itself a violation).
 *
 * v2 adds a semantic pass on top of the token stream: a per-file
 * symbol/scope index (index.h) feeding tick-unit, bounded-memory and
 * callback-discipline rules, and a module include graph (graph.h)
 * enforcing the layering DAG of DESIGN.md §6. Growable container members
 * declare their bound with a second marker form:
 *
 *     // draid-lint: cap(<expr>)
 *
 * where <expr> names the invariant that bounds the container (a constant,
 * a config field, a fixed topology count). An empty cap() is a violation.
 */

#ifndef DRAID_TOOLS_LINT_H
#define DRAID_TOOLS_LINT_H

#include <set>
#include <string>
#include <vector>

namespace draidlint {

struct Token
{
    enum class Kind
    {
        kIdentifier,
        kNumber,
        kString,
        kCharLit,
        kPunct,
    };

    Kind kind;
    std::string text;
    int line;
};

/** One #include directive, in source order. */
struct Include
{
    int line;
    std::string target; ///< path between the quotes / angle brackets
    bool quoted;        ///< "header.h" (true) vs <header> (false)
};

/** One parsed `draid-lint: allow(rule) -- reason` comment. */
struct Suppression
{
    int line;
    std::string rule;
    std::string reason;
};

/** One parsed `draid-lint: cap(expr)` bounded-memory annotation. */
struct CapAnnotation
{
    int line;
    std::string expr; ///< the bound; non-empty by construction
};

/** A lexed source file. */
struct FileUnit
{
    std::string relPath; ///< forward-slash path relative to the repo root
    bool isHeader = false;
    std::vector<Token> tokens;
    std::vector<Include> includes;
    std::vector<Suppression> suppressions;
    std::vector<CapAnnotation> caps;
    /** Lines carrying a malformed / reasonless draid-lint comment. */
    std::vector<int> badSuppressionLines;
};

struct Diagnostic
{
    std::string file;
    int line;
    std::string rule;
    std::string message;
};

/** Lex @p content as C++ (comments, strings, raw strings, preprocessor). */
FileUnit lexFile(const std::string &rel_path, const std::string &content);

/**
 * Identifier tables shared across the scan. Heuristic and name-based:
 * good enough for a single repo with a consistent naming convention,
 * not for arbitrary C++.
 */
struct SymbolTables
{
    /** Names declared as std::unordered_{map,set,...} in any header. */
    std::set<std::string> unorderedNames;
    /** Names declared float/double in src/sim + src/net headers. */
    std::set<std::string> fpNames;
    /** Every scanned rel-path (for self-include sibling lookups). */
    std::set<std::string> scannedPaths;
};

/** Harvest header-declared identifiers from @p unit into @p tables. */
void collectHeaderSymbols(const FileUnit &unit, SymbolTables &tables);

/**
 * Run every rule on @p unit, appending diagnostics. Suppressions are
 * already applied; what comes back is reportable.
 */
void runRules(const FileUnit &unit, const SymbolTables &tables,
              std::vector<Diagnostic> &out);

/**
 * The v2 semantic pass (rules_semantic.cc): builds the file's
 * symbol/scope index and runs layering, tick-unit, bounded-memory and
 * callback-discipline. Called by runRules; exposed for targeted tests.
 */
void runSemanticRules(const FileUnit &unit, std::vector<Diagnostic> &out);

/** All rule ids, for --list-rules and allow() validation. */
const std::vector<std::string> &allRuleIds();

/** Rule id + one-line doc, in registry order (--list-rules). */
struct RuleInfo
{
    std::string id;
    std::string doc;
};
const std::vector<RuleInfo> &allRules();

} // namespace draidlint

#endif // DRAID_TOOLS_LINT_H
