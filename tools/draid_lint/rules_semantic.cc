/**
 * @file
 * The v2 semantic rules, built on the per-file index (index.h) and the
 * module layering DAG (graph.h):
 *
 *  - layering:            include edges must follow the declared DAG
 *  - tick-unit:           no raw sim::Tick parameters/returns in the
 *                         scheduling + latency APIs (use sim::Ticks)
 *  - bounded-memory:      growable container members under src/ carry a
 *                         `// draid-lint: cap(<expr>)` bound annotation
 *  - callback-discipline: event callbacks must not re-enter the engine,
 *                         fan out schedules in loops, or allocate in loops
 */

#include "graph.h"
#include "index.h"
#include "lint.h"

#include <set>

namespace draidlint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

const std::string &
tokText(const FileUnit &u, std::size_t i)
{
    static const std::string kEmpty;
    return i < u.tokens.size() ? u.tokens[i].text : kEmpty;
}

bool
isIdent(const FileUnit &u, std::size_t i)
{
    return i < u.tokens.size() &&
           u.tokens[i].kind == Token::Kind::kIdentifier;
}

/** Same suppression window as rules.cc: the comment line and line+1. */
struct RuleSink
{
    const FileUnit &unit;
    std::vector<Diagnostic> &out;

    void report(int line, const std::string &rule,
                const std::string &message) const
    {
        for (const Suppression &s : unit.suppressions)
            if (s.rule == rule && (s.line == line || s.line + 1 == line))
                return;
        out.push_back({unit.relPath, line, rule, message});
    }
};

// ---------------------------------------------------------------------------
// S1 layering: the include edge must exist in the declared module DAG
// ---------------------------------------------------------------------------

void
ruleLayering(const FileUnit &u, const RuleSink &sink)
{
    const std::string module = moduleOf(u.relPath);
    if (module.empty())
        return; // bench/tests/tools may include anything
    const auto &deps = allowedModuleDeps();
    auto it = deps.find(module);
    std::set<std::string> allowed =
        it != deps.end() ? it->second : std::set<std::string>{};
    allowed.insert(module);
    if (isNvmfBridge(u.relPath))
        allowed.insert("cluster");
    for (const Include &inc : u.includes) {
        if (!inc.quoted)
            continue;
        const std::string target = includeTargetModule(inc.target);
        if (target.empty() || allowed.count(target))
            continue;
        sink.report(inc.line, "layering",
                    "include edge " + u.relPath + " -> " + inc.target +
                        " violates the layering DAG: module '" + module +
                        "' may not depend on '" + target +
                        "' (allowed: " + allowedDepsFor(u.relPath) + ")");
    }
}

// ---------------------------------------------------------------------------
// S2 tick-unit: no raw sim::Tick in the scheduling / latency signatures
// ---------------------------------------------------------------------------

/**
 * The APIs where a raw tick count is an accident waiting to happen: the
 * engine's scheduling surface and the latency/throughput math fed by it.
 * src/sim/types.h itself is exempt — it defines the strong type and its
 * raw()/Tick bridge. Raw Tick *storage* (members, serialized report
 * structs) stays legal everywhere; only parameters and returns carry the
 * unit-confusion risk this rule exists for.
 */
bool
inTickUnitScope(const std::string &path)
{
    static const std::set<std::string> kScope = {
        "src/sim/simulator.h", "src/sim/cpu.h",
        "src/sim/pipe.h",      "src/sim/stats.h",
        "src/nvme/ssd.h",      "src/telemetry/timeline.h",
    };
    return kScope.count(path) != 0;
}

void
scanRangeForRawTick(const FileUnit &u, const TokenRange &range,
                    const FunctionDecl &fn, const char *where,
                    const RuleSink &sink)
{
    for (std::size_t i = range.begin; i < range.end; ++i) {
        if (!isIdent(u, i) || u.tokens[i].text != "Tick")
            continue;
        sink.report(u.tokens[i].line, "tick-unit",
                    std::string("raw sim::Tick ") + where + " in '" +
                        fn.name +
                        "'; scheduling and latency APIs must take/return "
                        "the strong sim::Ticks type (src/sim/types.h)");
    }
}

void
ruleTickUnit(const FileUnit &u, const FileIndex &index,
             const RuleSink &sink)
{
    if (!inTickUnitScope(u.relPath))
        return;
    for (const FunctionDecl &fn : index.functions) {
        scanRangeForRawTick(u, fn.returnType, fn, "return type", sink);
        scanRangeForRawTick(u, fn.params, fn, "parameter", sink);
    }
}

// ---------------------------------------------------------------------------
// S3 bounded-memory: growable members under src/ declare their bound
// ---------------------------------------------------------------------------

void
ruleBoundedMemory(const FileUnit &u, const FileIndex &index,
                  const RuleSink &sink)
{
    if (!startsWith(u.relPath, "src/"))
        return;
    for (const GrowableMember &m : index.growableMembers) {
        bool capped = false;
        for (const CapAnnotation &cap : u.caps) {
            if (cap.line == m.line || cap.line + 1 == m.line) {
                capped = true;
                break;
            }
        }
        if (!capped)
            sink.report(
                m.line, "bounded-memory",
                "growable member '" + m.name + "' (std::" + m.container +
                    (m.className.empty() ? std::string()
                                         : " in " + m.className) +
                    ") has no bound annotation; add `// draid-lint: "
                    "cap(<expr>)` naming the invariant that bounds it, or "
                    "a reasoned allow(bounded-memory)");
    }
}

// ---------------------------------------------------------------------------
// S4 callback-discipline: event callbacks stay O(1) and re-entrance-free
// ---------------------------------------------------------------------------

/** Token extent of the loop starting at the `for`/`while` at @p i. */
TokenRange
loopExtent(const FileUnit &u, std::size_t i, std::size_t limit)
{
    std::size_t j = i + 1;
    if (tokText(u, j) == "(") {
        int depth = 0;
        for (; j < limit; ++j) {
            if (tokText(u, j) == "(")
                ++depth;
            else if (tokText(u, j) == ")" && --depth == 0) {
                ++j;
                break;
            }
        }
    }
    if (tokText(u, j) == "{") {
        int depth = 0;
        std::size_t k = j;
        for (; k < limit; ++k) {
            if (tokText(u, k) == "{")
                ++depth;
            else if (tokText(u, k) == "}" && --depth == 0)
                return {j + 1, k};
        }
        return {j + 1, limit};
    }
    // Single-statement body: up to the ';'.
    std::size_t k = j;
    while (k < limit && tokText(u, k) != ";")
        ++k;
    return {j, k};
}

void
ruleCallbackDiscipline(const FileUnit &u, const FileIndex &index,
                       const RuleSink &sink)
{
    if (!startsWith(u.relPath, "src/"))
        return;
    std::set<int> reported; // nested loops would double-report otherwise
    for (const CallbackBody &cb : index.callbacks) {
        for (std::size_t i = cb.body.begin; i < cb.body.end; ++i) {
            const std::string &t = tokText(u, i);
            // Re-entering the engine from inside an event drains
            // synchronously and corrupts the in-flight event ordering.
            if ((t == "run" || t == "runUntil" || t == "runFor") &&
                tokText(u, i + 1) == "(") {
                if (reported.insert(u.tokens[i].line).second)
                    sink.report(u.tokens[i].line, "callback-discipline",
                                "'" + t +
                                    "()' inside an event callback is a "
                                    "synchronous drain; schedule a "
                                    "continuation instead of re-entering "
                                    "the engine");
                continue;
            }
            if (t != "for" && t != "while")
                continue;
            const TokenRange body = loopExtent(u, i, cb.body.end);
            for (std::size_t j = body.begin; j < body.end; ++j) {
                const std::string &lt = tokText(u, j);
                if ((lt == "schedule" || lt == "scheduleAt") &&
                    tokText(u, j + 1) == "(") {
                    if (reported.insert(u.tokens[j].line).second)
                        sink.report(
                            u.tokens[j].line, "callback-discipline",
                            "'" + lt +
                                "()' in a loop inside an event callback "
                                "fans out unbounded events; schedule one "
                                "continuation that re-arms itself");
                } else if (lt == "new" || lt == "make_unique" ||
                           lt == "make_shared") {
                    if (reported.insert(u.tokens[j].line).second)
                        sink.report(
                            u.tokens[j].line, "callback-discipline",
                            "allocation ('" + lt +
                                "') in a loop inside an event callback; "
                                "hoist the allocation out of the hot "
                                "event path");
                }
            }
        }
    }
}

} // namespace

void
runSemanticRules(const FileUnit &unit, std::vector<Diagnostic> &out)
{
    const FileIndex index = buildFileIndex(unit);
    RuleSink sink{unit, out};
    ruleLayering(unit, sink);
    ruleTickUnit(unit, index, sink);
    ruleBoundedMemory(unit, index, sink);
    ruleCallbackDiscipline(unit, index, sink);
}

} // namespace draidlint
