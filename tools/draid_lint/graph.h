/**
 * @file
 * Repo-wide include graph and the declared layering DAG (DESIGN.md §6).
 *
 * Modules are the second path component under src/ (src/sim -> "sim").
 * The DAG below is the architecture contract of the simulator:
 *
 *     sim, ec                      (foundation: no deps)
 *       ^- proto, telemetry        (telemetry is observe-only: sim types
 *       |                           and recorded events, never the engine
 *       |                           internals of upper layers)
 *       ^- net -> blockdev -> nvme (device stack)
 *       ^- raid, workload          (mid layers)
 *       ^- cluster                 (testbed wiring)
 *       ^- core, baselines, app    (protocol implementations)
 *       ^- campaign                (fault campaigns drive everything)
 *
 * One carve-out: the NVMe-oF shims (src/blockdev/nvmf_*.{h,cc}) bridge
 * the device abstraction onto the cluster fabric and may additionally
 * see 'cluster'.
 *
 * The graph also refuses include cycles among src/ headers — a cycle is
 * a layering violation no DAG row can describe.
 */

#ifndef DRAID_TOOLS_LINT_GRAPH_H
#define DRAID_TOOLS_LINT_GRAPH_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace draidlint {

/** Module name of a repo-relative path ("" when not under src/). */
std::string moduleOf(const std::string &rel_path);

/** Module name of a quoted include target ("" when not a src module). */
std::string includeTargetModule(const std::string &target);

/** The declared DAG: module -> modules it may include (self implied). */
const std::map<std::string, std::set<std::string>> &allowedModuleDeps();

/** Extra allowance for the nvmf_* bridge files in src/blockdev. */
bool isNvmfBridge(const std::string &rel_path);

/** Comma-separated allowed list for a module, for diagnostics. */
std::string allowedDepsFor(const std::string &rel_path);

/**
 * Repo-wide quoted-include graph over the scanned units. Edges resolve
 * an include target "m/file.h" to "src/m/file.h" when m is a declared
 * module; everything else (system headers, test fixtures) is ignored.
 */
class IncludeGraph
{
  public:
    void addFile(const FileUnit &unit);

    /**
     * Depth-first cycle scan over src/ headers. Each cycle reports once,
     * at the include closing it, as a 'layering' diagnostic listing the
     * full path (a -> b -> ... -> a).
     */
    void checkCycles(std::vector<Diagnostic> &out) const;

  private:
    struct Edge
    {
        std::string to;
        int line;
    };
    std::map<std::string, std::vector<Edge>> adj_;
};

} // namespace draidlint

#endif // DRAID_TOOLS_LINT_GRAPH_H
