namespace fixture {

// Stripe-lock grant order feeds keyed occupancy segments; randomizing a
// grant would break both FIFO attribution (waits must tile exactly) and
// the determinism gate on the exported blame matrix.
unsigned
pickWaiter(sim::Rng &rng, unsigned waiters) // violation: draw-free scope
{
    return static_cast<unsigned>(rng.nextBounded(waiters));
}

} // namespace fixture
