#include <map>

namespace fixture {

struct Registry
{
    std::map<int *, int> byAddr_; // violation: ptr-key
};

} // namespace fixture
