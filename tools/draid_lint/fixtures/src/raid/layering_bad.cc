// Fixture: src/raid may depend only on {sim, telemetry}; including a
// core header inverts the layering DAG.
#include "core/draid_host.h"
