// Fixture: an event callback that re-enters the engine, fans out
// schedules in a loop and allocates per iteration.
struct Sim
{
    void run();
    bool busy();
    void schedule(long long when, void (*fn)());
};

void
plant(Sim &sim)
{
    sim.schedule(100, [&sim] {
        sim.run();
        for (int i = 0; i < 8; ++i)
            sim.schedule(200, nullptr);
        while (sim.busy())
            auto p = new int(3);
    });
}
