#include <unordered_map>

namespace fixture {

struct Table
{
    std::unordered_map<int, int> cells_;

    int sum() const
    {
        int total = 0;
        for (const auto &[k, v] : cells_) // violation: unordered-iter
            total += k + v;
        return total;
    }
};

} // namespace fixture
