#include <chrono>

namespace fixture {

long
uptime()
{
    // draid-lint: allow(wall-clock)
    auto t = std::chrono::steady_clock::now(); // NOT suppressed: no reason
    return t.time_since_epoch().count();
}

} // namespace fixture
