// Fixture: an empty cap() is malformed — it reports bad-suppression and
// leaves the member unbounded.
#include <vector>

class Q
{
    // draid-lint: cap()
    std::vector<int> q_;
};
