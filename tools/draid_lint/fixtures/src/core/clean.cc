#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

/** A file exercising every rule's *allowed* neighbourhood: keyed lookup
 *  into an unordered map, ordered iteration over a std::map keyed by a
 *  stable id, and integral accumulation. Must produce zero diagnostics. */
struct Ledger
{
    // draid-lint: cap(one entry per allocated slot)
    std::unordered_map<std::uint64_t, std::uint64_t> bySlot_;
    // draid-lint: cap(one entry per allocated slot)
    std::map<std::uint64_t, std::uint64_t> byId_;

    std::uint64_t lookup(std::uint64_t slot) const
    {
        auto it = bySlot_.find(slot);
        return it == bySlot_.end() ? 0 : it->second;
    }

    std::uint64_t total() const
    {
        std::uint64_t sum = 0;
        for (const auto &[id, v] : byId_)
            sum += v;
        return sum;
    }
};

} // namespace fixture
