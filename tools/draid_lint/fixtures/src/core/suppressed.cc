#include <chrono>

namespace fixture {

long
uptime()
{
    // draid-lint: allow(wall-clock) -- fixture: exercises the suppression path
    auto t = std::chrono::steady_clock::now(); // suppressed by line above
    return t.time_since_epoch().count();
}

} // namespace fixture
