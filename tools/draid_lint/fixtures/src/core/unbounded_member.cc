// Fixture: a growable container member under src/ with no cap()
// annotation and no reasoned allow(bounded-memory).
#include <vector>

class RebuildQueue
{
  private:
    std::vector<int> pending_;
};
