// Fixture: the same growable member, bounded with a cap() annotation,
// lints clean (a cap is a contract, not a suppression).
#include <vector>

class RebuildQueue
{
    // draid-lint: cap(kQueueDepth; popped every tick)
    std::vector<int> pending_;
};
