#include <random> // violation: raw-rng (banned include)

namespace fixture {

long
drawGapTicks()
{
    std::mt19937_64 gen(7); // violation: raw-rng (direct engine)
    return static_cast<long>(gen() % 1000);
}

} // namespace fixture
