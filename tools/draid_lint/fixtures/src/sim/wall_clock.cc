#include <chrono>

namespace fixture {

long
readClock()
{
    auto t = std::chrono::steady_clock::now(); // violation: wall-clock
    return t.time_since_epoch().count();
}

} // namespace fixture
