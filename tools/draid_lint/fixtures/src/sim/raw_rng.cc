#include <random> // violation: raw-rng (banned include)

namespace fixture {

int
roll()
{
    std::mt19937 gen(42); // violation: raw-rng (direct engine)
    return static_cast<int>(gen());
}

} // namespace fixture
