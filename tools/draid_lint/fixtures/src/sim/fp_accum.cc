namespace fixture {

double
totalSeconds(const long *ticks, int n)
{
    double total = 0.0;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(ticks[i]); // violation: fp-accum
    return total;
}

} // namespace fixture
