#include <chrono>

namespace fixture {

// An EngineObserver-style hook implemented inside src/sim/ must not read
// host time: wall-clock observers belong in src/telemetry/.
class TimingObserver
{
  public:
    void
    onEventStart()
    {
        start_ = std::chrono::steady_clock::now(); // violation: wall-clock
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace fixture
