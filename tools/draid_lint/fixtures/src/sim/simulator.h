// Fixture: the engine's scheduling surface must take/return the strong
// sim::Ticks type; raw Tick parameters and returns violate tick-unit.
namespace sim {

using Tick = long long;

class Simulator
{
  public:
    Tick now() const;
    void scheduleAt(Tick when);
};

} // namespace sim
