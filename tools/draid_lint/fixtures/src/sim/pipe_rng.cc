namespace fixture {

// A contention-attribution source must not draw engine randomness: a
// jittered service start here would change the recorded occupancy
// windows, and the exported interference row would stop being
// byte-identical across same-seed runs.
long
jitteredStart(sim::Rng &rng, long busy_until) // violation: draw-free scope
{
    return busy_until + static_cast<long>(rng.nextBounded(16));
}

} // namespace fixture
