#include <chrono>

namespace fixture {

// src/telemetry/ is the one directory where host-clock reads are legal:
// profiler implementations (telemetry::SimProfiler) live here.
long
profilerClock()
{
    auto t = std::chrono::steady_clock::now(); // allowed here
    return t.time_since_epoch().count();
}

} // namespace fixture
