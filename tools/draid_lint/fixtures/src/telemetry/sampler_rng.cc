namespace fixture {

// A trace sampler must not consume engine randomness: every draw
// advances the deterministic seed chain of the simulation under
// observation, so enabling sampling would change simulated output.
bool
sampleOp(sim::Rng &rng) // violation: telemetry is draw-free
{
    return rng.uniform01() < 0.01;
}

} // namespace fixture
