namespace fixture {

// The clean way to head-sample in telemetry: a seeded integer hash of
// the trace id. Pure and draw-free, so the sampled set is byte-identical
// across runs and the simulation never notices.
unsigned long long
sampleHash(unsigned long long id)
{
    unsigned long long z = id + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

bool
sampled(unsigned long long id, unsigned long long period)
{
    return period <= 1 || sampleHash(id) < ~0ull / period;
}

} // namespace fixture
