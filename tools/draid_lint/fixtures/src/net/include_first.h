#ifndef FIXTURE_INCLUDE_FIRST_H
#define FIXTURE_INCLUDE_FIRST_H

namespace fixture {

int answer();

} // namespace fixture

#endif // FIXTURE_INCLUDE_FIRST_H
