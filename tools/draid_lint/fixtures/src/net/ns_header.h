#ifndef FIXTURE_NS_HEADER_H
#define FIXTURE_NS_HEADER_H

#include <string>

using namespace std; // violation: ns-header

inline string
greet()
{
    return "hi";
}

#endif // FIXTURE_NS_HEADER_H
