#include <vector> // violation: include-first (own header must come first)
#include "include_first.h"

namespace fixture {

int
answer()
{
    std::vector<int> v{42};
    return v.front();
}

} // namespace fixture
