#include "index.h"

#include <set>

namespace draidlint {

namespace {

const std::string &
tokText(const FileUnit &u, std::size_t i)
{
    static const std::string kEmpty;
    return i < u.tokens.size() ? u.tokens[i].text : kEmpty;
}

bool
isIdent(const FileUnit &u, std::size_t i)
{
    return i < u.tokens.size() &&
           u.tokens[i].kind == Token::Kind::kIdentifier;
}

/** One past the punct matching @p open at index i (which holds @p open);
 *  tokens.size() when unmatched. */
std::size_t
matchForward(const FileUnit &u, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (; i < u.tokens.size(); ++i) {
        const std::string &t = u.tokens[i].text;
        if (t == open)
            ++depth;
        else if (t == close && --depth == 0)
            return i + 1;
    }
    return u.tokens.size();
}

/** One past the '>' matching the '<' at @p lt; bails at ';'/'{'. */
std::size_t
skipTemplateArgs(const FileUnit &u, std::size_t lt)
{
    int depth = 0;
    for (std::size_t i = lt; i < u.tokens.size(); ++i) {
        const std::string &t = u.tokens[i].text;
        if (t == "<")
            ++depth;
        else if (t == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (t == ";" || t == "{")
            break;
    }
    return u.tokens.size();
}

bool
isGrowableContainer(const std::string &t)
{
    static const std::set<std::string> kGrowable = {
        "vector",        "deque",
        "list",          "forward_list",
        "map",           "multimap",
        "set",           "multiset",
        "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset",
        "queue",         "priority_queue",
        "stack",
    };
    return kGrowable.count(t) != 0;
}

bool
isControlKeyword(const std::string &t)
{
    return t == "if" || t == "for" || t == "while" || t == "switch" ||
           t == "catch" || t == "do" || t == "else" || t == "try";
}

struct Scope
{
    enum class Kind
    {
        kNamespace,
        kClass,
        kFunction,
        kLambda,
        kControl,
        kOther,
    };
    Kind kind;
    std::string className;   ///< set for kClass
    std::size_t stmtBefore = 0; ///< statement start when the scope opened
};

/**
 * Classify the scope opened by the '{' at @p brace given its statement
 * head tokens [stmt, brace).
 */
Scope
classifyScope(const FileUnit &u, std::size_t stmt, std::size_t brace)
{
    Scope scope{Scope::Kind::kOther, ""};
    std::size_t i = stmt;
    // A leading template<...> prefix says nothing about the scope kind.
    if (tokText(u, i) == "template" && tokText(u, i + 1) == "<")
        i = skipTemplateArgs(u, i + 1);
    if (i >= brace)
        return scope; // bare block / braced initializer
    const std::string &first = tokText(u, i);
    if (isControlKeyword(first)) {
        scope.kind = Scope::Kind::kControl;
        return scope;
    }
    // enum / enum class bodies hold no members or functions.
    if (first == "enum")
        return scope;
    for (std::size_t j = i; j < brace; ++j) {
        const std::string &t = tokText(u, j);
        if (t == "namespace") {
            scope.kind = Scope::Kind::kNamespace;
            return scope;
        }
        if (t == "class" || t == "struct" || t == "union") {
            scope.kind = Scope::Kind::kClass;
            // Name: last identifier before the base clause / brace.
            for (std::size_t k = j + 1; k < brace; ++k) {
                if (tokText(u, k) == ":")
                    break;
                if (isIdent(u, k))
                    scope.className = u.tokens[k].text;
            }
            return scope;
        }
        if (t == "=" || t == "return")
            return scope; // braced initializer / expression braces
        if (t == "(") {
            // Function definition, lambda, or braced call argument. A
            // lambda's parameter parens are preceded by its ']' capture.
            scope.kind = j > stmt && tokText(u, j - 1) == "]"
                             ? Scope::Kind::kLambda
                             : Scope::Kind::kFunction;
            return scope;
        }
    }
    return scope;
}

/**
 * Harvest a growable-container member from the class-scope statement
 * [stmt, semi). Style-reliant: `std::vector<T> name_;` possibly with a
 * brace/equals initializer, one declarator per statement.
 */
void
tryGrowableMember(const FileUnit &u, std::size_t stmt, std::size_t semi,
                  const std::string &class_name, FileIndex &out)
{
    std::size_t i = stmt;
    while (i < semi &&
           (tokText(u, i) == "static" || tokText(u, i) == "inline" ||
            tokText(u, i) == "mutable" || tokText(u, i) == "constexpr" ||
            tokText(u, i) == "const"))
        ++i;
    if (tokText(u, i) == "using")
        return; // alias, not storage
    if (tokText(u, i) == "std" && tokText(u, i + 1) == "::")
        i += 2;
    if (!isIdent(u, i) || !isGrowableContainer(u.tokens[i].text) ||
        tokText(u, i + 1) != "<")
        return;
    const std::string container = u.tokens[i].text;
    std::size_t after = skipTemplateArgs(u, i + 1);
    while (after < semi &&
           (tokText(u, after) == "&" || tokText(u, after) == "*" ||
            tokText(u, after) == "const"))
        ++after;
    if (!isIdent(u, after) || after >= semi)
        return;
    const std::string &next = tokText(u, after + 1);
    // `std::vector<T> items() const;` is a getter, not storage.
    if (next == "(")
        return;
    out.growableMembers.push_back(
        {u.tokens[after].line, container, u.tokens[after].text, class_name});
}

/**
 * Harvest a function declaration/definition from the statement head
 * [stmt, end) at class or namespace scope. The name is the identifier
 * before the first top-level '(' (template args skipped so callable
 * types in the return position don't fake a parameter list).
 */
void
tryFunctionDecl(const FileUnit &u, std::size_t stmt, std::size_t end,
                FileIndex &out)
{
    std::size_t i = stmt;
    if (tokText(u, i) == "template" && tokText(u, i + 1) == "<")
        i = skipTemplateArgs(u, i + 1);
    if (i < end && isControlKeyword(tokText(u, i)))
        return;
    for (std::size_t j = i; j < end; ++j) {
        const std::string &t = tokText(u, j);
        if (t == "<") {
            std::size_t after = skipTemplateArgs(u, j);
            if (after > j + 1)
                j = after - 1;
            continue;
        }
        if (t == "=" || t == "[")
            return; // initializer or lambda, not a declaration
        if (t != "(")
            continue;
        if (j == stmt || !isIdent(u, j - 1))
            return;
        std::size_t close = matchForward(u, j, "(", ")");
        if (close == u.tokens.size())
            return;
        FunctionDecl fn;
        fn.line = u.tokens[j - 1].line;
        fn.name = u.tokens[j - 1].text;
        fn.returnType = {i, j - 1};
        fn.params = {j + 1, close - 1};
        out.functions.push_back(fn);
        return;
    }
}

/**
 * Record the body ranges of lambdas inside schedule()/scheduleAt() call
 * arguments. Linear: nested schedules inside a callback body are found
 * by the same outer scan.
 */
void
collectCallbacks(const FileUnit &u, FileIndex &out)
{
    for (std::size_t i = 0; i + 1 < u.tokens.size(); ++i) {
        const std::string &t = u.tokens[i].text;
        if ((t != "schedule" && t != "scheduleAt") ||
            tokText(u, i + 1) != "(")
            continue;
        const int call_line = u.tokens[i].line;
        std::size_t call_end = matchForward(u, i + 1, "(", ")");
        for (std::size_t j = i + 2; j < call_end && j < u.tokens.size();
             ++j) {
            if (tokText(u, j) != "[")
                continue;
            // '[' after a value expression is a subscript, not a capture.
            const std::string &prev = tokText(u, j - 1);
            if (j > 0 && (isIdent(u, j - 1) || prev == "]" || prev == ")"))
                continue;
            std::size_t after_capture = matchForward(u, j, "[", "]");
            if (after_capture >= u.tokens.size())
                break;
            std::size_t k = after_capture;
            if (tokText(u, k) == "(")
                k = matchForward(u, k, "(", ")");
            // Skip specifiers / trailing return up to the body brace.
            while (k < u.tokens.size() && tokText(u, k) != "{" &&
                   tokText(u, k) != "," && tokText(u, k) != ")")
                ++k;
            if (tokText(u, k) != "{")
                continue;
            std::size_t body_end = matchForward(u, k, "{", "}");
            out.callbacks.push_back({call_line, {k + 1, body_end - 1}});
            j = k; // scan inside the body for nested lambdas too
        }
    }
}

} // namespace

FileIndex
buildFileIndex(const FileUnit &unit)
{
    FileIndex index;
    std::vector<Scope> stack;
    stack.push_back({Scope::Kind::kNamespace, ""}); // file scope
    std::size_t stmt = 0;

    for (std::size_t i = 0; i < unit.tokens.size(); ++i) {
        const std::string &t = unit.tokens[i].text;
        if (t == "{") {
            Scope scope = classifyScope(unit, stmt, i);
            scope.stmtBefore = stmt;
            const Scope::Kind at = stack.back().kind;
            if (scope.kind == Scope::Kind::kFunction &&
                (at == Scope::Kind::kClass ||
                 at == Scope::Kind::kNamespace))
                tryFunctionDecl(unit, stmt, i, index);
            stack.push_back(scope);
            stmt = i + 1;
        } else if (t == "}") {
            // Popping a braced initializer resumes the declaration it
            // interrupted (`std::vector<T> v_{...};` must still be seen
            // as one member statement at the ';').
            if (stack.size() > 1) {
                if (stack.back().kind == Scope::Kind::kOther)
                    stmt = stack.back().stmtBefore;
                else
                    stmt = i + 1;
                stack.pop_back();
            } else {
                stmt = i + 1;
            }
        } else if (t == ";") {
            const Scope &at = stack.back();
            if (at.kind == Scope::Kind::kClass) {
                tryGrowableMember(unit, stmt, i, at.className, index);
                tryFunctionDecl(unit, stmt, i, index);
            } else if (at.kind == Scope::Kind::kNamespace) {
                tryFunctionDecl(unit, stmt, i, index);
            }
            stmt = i + 1;
        } else if (t == ":" && i > 0 &&
                   (unit.tokens[i - 1].text == "public" ||
                    unit.tokens[i - 1].text == "private" ||
                    unit.tokens[i - 1].text == "protected")) {
            stmt = i + 1; // access specifier ends the statement head
        }
    }

    collectCallbacks(unit, index);
    return index;
}

} // namespace draidlint
