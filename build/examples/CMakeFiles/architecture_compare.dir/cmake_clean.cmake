file(REMOVE_RECURSE
  "CMakeFiles/architecture_compare.dir/architecture_compare.cpp.o"
  "CMakeFiles/architecture_compare.dir/architecture_compare.cpp.o.d"
  "architecture_compare"
  "architecture_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
