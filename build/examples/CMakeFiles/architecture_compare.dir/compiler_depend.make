# Empty compiler generated dependencies file for architecture_compare.
# This may be replaced when dependencies are built.
