# Empty dependencies file for degraded_recovery.
# This may be replaced when dependencies are built.
