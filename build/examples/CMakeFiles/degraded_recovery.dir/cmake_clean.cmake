file(REMOVE_RECURSE
  "CMakeFiles/degraded_recovery.dir/degraded_recovery.cpp.o"
  "CMakeFiles/degraded_recovery.dir/degraded_recovery.cpp.o.d"
  "degraded_recovery"
  "degraded_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
