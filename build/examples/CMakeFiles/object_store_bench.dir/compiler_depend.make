# Empty compiler generated dependencies file for object_store_bench.
# This may be replaced when dependencies are built.
