file(REMOVE_RECURSE
  "CMakeFiles/object_store_bench.dir/object_store_bench.cpp.o"
  "CMakeFiles/object_store_bench.dir/object_store_bench.cpp.o.d"
  "object_store_bench"
  "object_store_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_store_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
