# Empty dependencies file for draid_tests.
# This may be replaced when dependencies are built.
