
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/draid_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_buffer.cc" "tests/CMakeFiles/draid_tests.dir/test_buffer.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_buffer.cc.o.d"
  "/root/repo/tests/test_bw_aware.cc" "tests/CMakeFiles/draid_tests.dir/test_bw_aware.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_bw_aware.cc.o.d"
  "/root/repo/tests/test_capsule.cc" "tests/CMakeFiles/draid_tests.dir/test_capsule.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_capsule.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/draid_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_draid_degraded.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_degraded.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_degraded.cc.o.d"
  "/root/repo/tests/test_draid_failures.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_failures.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_failures.cc.o.d"
  "/root/repo/tests/test_draid_integrity.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_integrity.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_integrity.cc.o.d"
  "/root/repo/tests/test_draid_protocol_flow.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_protocol_flow.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_protocol_flow.cc.o.d"
  "/root/repo/tests/test_draid_rebuild.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_rebuild.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_rebuild.cc.o.d"
  "/root/repo/tests/test_draid_reducer_race.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_reducer_race.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_reducer_race.cc.o.d"
  "/root/repo/tests/test_draid_scrub.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_scrub.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_scrub.cc.o.d"
  "/root/repo/tests/test_draid_swap.cc" "tests/CMakeFiles/draid_tests.dir/test_draid_swap.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_draid_swap.cc.o.d"
  "/root/repo/tests/test_fabric.cc" "tests/CMakeFiles/draid_tests.dir/test_fabric.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_fabric.cc.o.d"
  "/root/repo/tests/test_failure.cc" "tests/CMakeFiles/draid_tests.dir/test_failure.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_failure.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/draid_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_gf256.cc" "tests/CMakeFiles/draid_tests.dir/test_gf256.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_gf256.cc.o.d"
  "/root/repo/tests/test_memory_bdev.cc" "tests/CMakeFiles/draid_tests.dir/test_memory_bdev.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_memory_bdev.cc.o.d"
  "/root/repo/tests/test_minikv.cc" "tests/CMakeFiles/draid_tests.dir/test_minikv.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_minikv.cc.o.d"
  "/root/repo/tests/test_nvmf.cc" "tests/CMakeFiles/draid_tests.dir/test_nvmf.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_nvmf.cc.o.d"
  "/root/repo/tests/test_object_store.cc" "tests/CMakeFiles/draid_tests.dir/test_object_store.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_object_store.cc.o.d"
  "/root/repo/tests/test_pipe.cc" "tests/CMakeFiles/draid_tests.dir/test_pipe.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_pipe.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/draid_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_raid5_codec.cc" "tests/CMakeFiles/draid_tests.dir/test_raid5_codec.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_raid5_codec.cc.o.d"
  "/root/repo/tests/test_raid6_codec.cc" "tests/CMakeFiles/draid_tests.dir/test_raid6_codec.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_raid6_codec.cc.o.d"
  "/root/repo/tests/test_reduce_engine.cc" "tests/CMakeFiles/draid_tests.dir/test_reduce_engine.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_reduce_engine.cc.o.d"
  "/root/repo/tests/test_rng_stats.cc" "tests/CMakeFiles/draid_tests.dir/test_rng_stats.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_rng_stats.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/draid_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_ssd.cc" "tests/CMakeFiles/draid_tests.dir/test_ssd.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_ssd.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/draid_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_stripe_lock.cc" "tests/CMakeFiles/draid_tests.dir/test_stripe_lock.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_stripe_lock.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/draid_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_workload.cc.o.d"
  "/root/repo/tests/test_write_plan.cc" "tests/CMakeFiles/draid_tests.dir/test_write_plan.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_write_plan.cc.o.d"
  "/root/repo/tests/test_xor.cc" "tests/CMakeFiles/draid_tests.dir/test_xor.cc.o" "gcc" "tests/CMakeFiles/draid_tests.dir/test_xor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/draid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
