file(REMOVE_RECURSE
  "libdraid.a"
)
