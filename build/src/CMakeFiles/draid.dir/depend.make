# Empty dependencies file for draid.
# This may be replaced when dependencies are built.
