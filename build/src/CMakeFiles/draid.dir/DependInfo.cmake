
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/minikv.cc" "src/CMakeFiles/draid.dir/app/minikv.cc.o" "gcc" "src/CMakeFiles/draid.dir/app/minikv.cc.o.d"
  "/root/repo/src/app/object_store.cc" "src/CMakeFiles/draid.dir/app/object_store.cc.o" "gcc" "src/CMakeFiles/draid.dir/app/object_store.cc.o.d"
  "/root/repo/src/baselines/host_raid.cc" "src/CMakeFiles/draid.dir/baselines/host_raid.cc.o" "gcc" "src/CMakeFiles/draid.dir/baselines/host_raid.cc.o.d"
  "/root/repo/src/baselines/linux_md.cc" "src/CMakeFiles/draid.dir/baselines/linux_md.cc.o" "gcc" "src/CMakeFiles/draid.dir/baselines/linux_md.cc.o.d"
  "/root/repo/src/baselines/spdk_raid.cc" "src/CMakeFiles/draid.dir/baselines/spdk_raid.cc.o" "gcc" "src/CMakeFiles/draid.dir/baselines/spdk_raid.cc.o.d"
  "/root/repo/src/blockdev/memory_bdev.cc" "src/CMakeFiles/draid.dir/blockdev/memory_bdev.cc.o" "gcc" "src/CMakeFiles/draid.dir/blockdev/memory_bdev.cc.o.d"
  "/root/repo/src/blockdev/nvmf_initiator.cc" "src/CMakeFiles/draid.dir/blockdev/nvmf_initiator.cc.o" "gcc" "src/CMakeFiles/draid.dir/blockdev/nvmf_initiator.cc.o.d"
  "/root/repo/src/blockdev/nvmf_target.cc" "src/CMakeFiles/draid.dir/blockdev/nvmf_target.cc.o" "gcc" "src/CMakeFiles/draid.dir/blockdev/nvmf_target.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/draid.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/draid.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/CMakeFiles/draid.dir/cluster/node.cc.o" "gcc" "src/CMakeFiles/draid.dir/cluster/node.cc.o.d"
  "/root/repo/src/cluster/testbed.cc" "src/CMakeFiles/draid.dir/cluster/testbed.cc.o" "gcc" "src/CMakeFiles/draid.dir/cluster/testbed.cc.o.d"
  "/root/repo/src/core/bw_aware.cc" "src/CMakeFiles/draid.dir/core/bw_aware.cc.o" "gcc" "src/CMakeFiles/draid.dir/core/bw_aware.cc.o.d"
  "/root/repo/src/core/draid_bdev.cc" "src/CMakeFiles/draid.dir/core/draid_bdev.cc.o" "gcc" "src/CMakeFiles/draid.dir/core/draid_bdev.cc.o.d"
  "/root/repo/src/core/draid_host.cc" "src/CMakeFiles/draid.dir/core/draid_host.cc.o" "gcc" "src/CMakeFiles/draid.dir/core/draid_host.cc.o.d"
  "/root/repo/src/core/failure.cc" "src/CMakeFiles/draid.dir/core/failure.cc.o" "gcc" "src/CMakeFiles/draid.dir/core/failure.cc.o.d"
  "/root/repo/src/core/reconstruct.cc" "src/CMakeFiles/draid.dir/core/reconstruct.cc.o" "gcc" "src/CMakeFiles/draid.dir/core/reconstruct.cc.o.d"
  "/root/repo/src/core/reduce_engine.cc" "src/CMakeFiles/draid.dir/core/reduce_engine.cc.o" "gcc" "src/CMakeFiles/draid.dir/core/reduce_engine.cc.o.d"
  "/root/repo/src/core/scrub.cc" "src/CMakeFiles/draid.dir/core/scrub.cc.o" "gcc" "src/CMakeFiles/draid.dir/core/scrub.cc.o.d"
  "/root/repo/src/ec/buffer.cc" "src/CMakeFiles/draid.dir/ec/buffer.cc.o" "gcc" "src/CMakeFiles/draid.dir/ec/buffer.cc.o.d"
  "/root/repo/src/ec/gf256.cc" "src/CMakeFiles/draid.dir/ec/gf256.cc.o" "gcc" "src/CMakeFiles/draid.dir/ec/gf256.cc.o.d"
  "/root/repo/src/ec/raid5_codec.cc" "src/CMakeFiles/draid.dir/ec/raid5_codec.cc.o" "gcc" "src/CMakeFiles/draid.dir/ec/raid5_codec.cc.o.d"
  "/root/repo/src/ec/raid6_codec.cc" "src/CMakeFiles/draid.dir/ec/raid6_codec.cc.o" "gcc" "src/CMakeFiles/draid.dir/ec/raid6_codec.cc.o.d"
  "/root/repo/src/ec/xor_kernel.cc" "src/CMakeFiles/draid.dir/ec/xor_kernel.cc.o" "gcc" "src/CMakeFiles/draid.dir/ec/xor_kernel.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/CMakeFiles/draid.dir/net/fabric.cc.o" "gcc" "src/CMakeFiles/draid.dir/net/fabric.cc.o.d"
  "/root/repo/src/net/nic.cc" "src/CMakeFiles/draid.dir/net/nic.cc.o" "gcc" "src/CMakeFiles/draid.dir/net/nic.cc.o.d"
  "/root/repo/src/net/rdma.cc" "src/CMakeFiles/draid.dir/net/rdma.cc.o" "gcc" "src/CMakeFiles/draid.dir/net/rdma.cc.o.d"
  "/root/repo/src/nvme/ssd.cc" "src/CMakeFiles/draid.dir/nvme/ssd.cc.o" "gcc" "src/CMakeFiles/draid.dir/nvme/ssd.cc.o.d"
  "/root/repo/src/proto/capsule.cc" "src/CMakeFiles/draid.dir/proto/capsule.cc.o" "gcc" "src/CMakeFiles/draid.dir/proto/capsule.cc.o.d"
  "/root/repo/src/raid/geometry.cc" "src/CMakeFiles/draid.dir/raid/geometry.cc.o" "gcc" "src/CMakeFiles/draid.dir/raid/geometry.cc.o.d"
  "/root/repo/src/raid/stripe_lock.cc" "src/CMakeFiles/draid.dir/raid/stripe_lock.cc.o" "gcc" "src/CMakeFiles/draid.dir/raid/stripe_lock.cc.o.d"
  "/root/repo/src/raid/write_plan.cc" "src/CMakeFiles/draid.dir/raid/write_plan.cc.o" "gcc" "src/CMakeFiles/draid.dir/raid/write_plan.cc.o.d"
  "/root/repo/src/sim/cpu.cc" "src/CMakeFiles/draid.dir/sim/cpu.cc.o" "gcc" "src/CMakeFiles/draid.dir/sim/cpu.cc.o.d"
  "/root/repo/src/sim/pipe.cc" "src/CMakeFiles/draid.dir/sim/pipe.cc.o" "gcc" "src/CMakeFiles/draid.dir/sim/pipe.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/draid.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/draid.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/draid.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/draid.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/draid.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/draid.dir/sim/stats.cc.o.d"
  "/root/repo/src/workload/fio.cc" "src/CMakeFiles/draid.dir/workload/fio.cc.o" "gcc" "src/CMakeFiles/draid.dir/workload/fio.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/draid.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/draid.dir/workload/ycsb.cc.o.d"
  "/root/repo/src/workload/zipfian.cc" "src/CMakeFiles/draid.dir/workload/zipfian.cc.o" "gcc" "src/CMakeFiles/draid.dir/workload/zipfian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
