# Empty compiler generated dependencies file for fig19_minikv_ycsb.
# This may be replaced when dependencies are built.
