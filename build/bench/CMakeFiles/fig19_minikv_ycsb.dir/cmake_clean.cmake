file(REMOVE_RECURSE
  "CMakeFiles/fig19_minikv_ycsb.dir/fig19_minikv_ycsb.cc.o"
  "CMakeFiles/fig19_minikv_ycsb.dir/fig19_minikv_ycsb.cc.o.d"
  "fig19_minikv_ycsb"
  "fig19_minikv_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_minikv_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
