# Empty compiler generated dependencies file for fig12_write_stripe_width.
# This may be replaced when dependencies are built.
