file(REMOVE_RECURSE
  "CMakeFiles/fig12_write_stripe_width.dir/fig12_write_stripe_width.cc.o"
  "CMakeFiles/fig12_write_stripe_width.dir/fig12_write_stripe_width.cc.o.d"
  "fig12_write_stripe_width"
  "fig12_write_stripe_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_write_stripe_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
