file(REMOVE_RECURSE
  "CMakeFiles/fig28_r6_degraded_read.dir/fig28_r6_degraded_read.cc.o"
  "CMakeFiles/fig28_r6_degraded_read.dir/fig28_r6_degraded_read.cc.o.d"
  "fig28_r6_degraded_read"
  "fig28_r6_degraded_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_r6_degraded_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
