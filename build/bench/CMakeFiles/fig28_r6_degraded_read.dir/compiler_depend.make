# Empty compiler generated dependencies file for fig28_r6_degraded_read.
# This may be replaced when dependencies are built.
