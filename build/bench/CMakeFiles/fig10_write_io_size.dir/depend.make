# Empty dependencies file for fig10_write_io_size.
# This may be replaced when dependencies are built.
