# Empty compiler generated dependencies file for fig09_normal_read.
# This may be replaced when dependencies are built.
