file(REMOVE_RECURSE
  "CMakeFiles/fig09_normal_read.dir/fig09_normal_read.cc.o"
  "CMakeFiles/fig09_normal_read.dir/fig09_normal_read.cc.o.d"
  "fig09_normal_read"
  "fig09_normal_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_normal_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
