# Empty dependencies file for fig13_write_read_ratio.
# This may be replaced when dependencies are built.
