# Empty compiler generated dependencies file for fig11_write_chunk_size.
# This may be replaced when dependencies are built.
