file(REMOVE_RECURSE
  "CMakeFiles/fig11_write_chunk_size.dir/fig11_write_chunk_size.cc.o"
  "CMakeFiles/fig11_write_chunk_size.dir/fig11_write_chunk_size.cc.o.d"
  "fig11_write_chunk_size"
  "fig11_write_chunk_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_write_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
