file(REMOVE_RECURSE
  "CMakeFiles/fig15_degraded_read_io_size.dir/fig15_degraded_read_io_size.cc.o"
  "CMakeFiles/fig15_degraded_read_io_size.dir/fig15_degraded_read_io_size.cc.o.d"
  "fig15_degraded_read_io_size"
  "fig15_degraded_read_io_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_degraded_read_io_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
