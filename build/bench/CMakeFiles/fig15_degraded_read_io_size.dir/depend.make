# Empty dependencies file for fig15_degraded_read_io_size.
# This may be replaced when dependencies are built.
