file(REMOVE_RECURSE
  "CMakeFiles/fig30_r6_degraded_write.dir/fig30_r6_degraded_write.cc.o"
  "CMakeFiles/fig30_r6_degraded_write.dir/fig30_r6_degraded_write.cc.o.d"
  "fig30_r6_degraded_write"
  "fig30_r6_degraded_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig30_r6_degraded_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
