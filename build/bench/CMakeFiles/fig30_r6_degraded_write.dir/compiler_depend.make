# Empty compiler generated dependencies file for fig30_r6_degraded_write.
# This may be replaced when dependencies are built.
