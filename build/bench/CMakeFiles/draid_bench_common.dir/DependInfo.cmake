
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/figures.cc" "bench/CMakeFiles/draid_bench_common.dir/figures.cc.o" "gcc" "bench/CMakeFiles/draid_bench_common.dir/figures.cc.o.d"
  "/root/repo/bench/harness.cc" "bench/CMakeFiles/draid_bench_common.dir/harness.cc.o" "gcc" "bench/CMakeFiles/draid_bench_common.dir/harness.cc.o.d"
  "/root/repo/bench/ycsb_driver.cc" "bench/CMakeFiles/draid_bench_common.dir/ycsb_driver.cc.o" "gcc" "bench/CMakeFiles/draid_bench_common.dir/ycsb_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/draid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
