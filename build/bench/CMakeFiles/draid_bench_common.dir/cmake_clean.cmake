file(REMOVE_RECURSE
  "CMakeFiles/draid_bench_common.dir/figures.cc.o"
  "CMakeFiles/draid_bench_common.dir/figures.cc.o.d"
  "CMakeFiles/draid_bench_common.dir/harness.cc.o"
  "CMakeFiles/draid_bench_common.dir/harness.cc.o.d"
  "CMakeFiles/draid_bench_common.dir/ycsb_driver.cc.o"
  "CMakeFiles/draid_bench_common.dir/ycsb_driver.cc.o.d"
  "libdraid_bench_common.a"
  "libdraid_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/draid_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
