file(REMOVE_RECURSE
  "libdraid_bench_common.a"
)
