# Empty compiler generated dependencies file for draid_bench_common.
# This may be replaced when dependencies are built.
