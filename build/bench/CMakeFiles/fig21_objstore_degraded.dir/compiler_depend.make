# Empty compiler generated dependencies file for fig21_objstore_degraded.
# This may be replaced when dependencies are built.
