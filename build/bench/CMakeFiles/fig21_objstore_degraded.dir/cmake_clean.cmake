file(REMOVE_RECURSE
  "CMakeFiles/fig21_objstore_degraded.dir/fig21_objstore_degraded.cc.o"
  "CMakeFiles/fig21_objstore_degraded.dir/fig21_objstore_degraded.cc.o.d"
  "fig21_objstore_degraded"
  "fig21_objstore_degraded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_objstore_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
