# Empty dependencies file for fig24_r6_write_chunk_size.
# This may be replaced when dependencies are built.
