file(REMOVE_RECURSE
  "CMakeFiles/fig24_r6_write_chunk_size.dir/fig24_r6_write_chunk_size.cc.o"
  "CMakeFiles/fig24_r6_write_chunk_size.dir/fig24_r6_write_chunk_size.cc.o.d"
  "fig24_r6_write_chunk_size"
  "fig24_r6_write_chunk_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_r6_write_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
