# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig26_r6_write_read_ratio.
