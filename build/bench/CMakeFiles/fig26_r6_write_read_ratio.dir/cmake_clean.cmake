file(REMOVE_RECURSE
  "CMakeFiles/fig26_r6_write_read_ratio.dir/fig26_r6_write_read_ratio.cc.o"
  "CMakeFiles/fig26_r6_write_read_ratio.dir/fig26_r6_write_read_ratio.cc.o.d"
  "fig26_r6_write_read_ratio"
  "fig26_r6_write_read_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_r6_write_read_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
