# Empty dependencies file for fig26_r6_write_read_ratio.
# This may be replaced when dependencies are built.
