# Empty compiler generated dependencies file for fig18_degraded_write.
# This may be replaced when dependencies are built.
