file(REMOVE_RECURSE
  "CMakeFiles/fig18_degraded_write.dir/fig18_degraded_write.cc.o"
  "CMakeFiles/fig18_degraded_write.dir/fig18_degraded_write.cc.o.d"
  "fig18_degraded_write"
  "fig18_degraded_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_degraded_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
