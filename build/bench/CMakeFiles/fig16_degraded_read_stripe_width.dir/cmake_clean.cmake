file(REMOVE_RECURSE
  "CMakeFiles/fig16_degraded_read_stripe_width.dir/fig16_degraded_read_stripe_width.cc.o"
  "CMakeFiles/fig16_degraded_read_stripe_width.dir/fig16_degraded_read_stripe_width.cc.o.d"
  "fig16_degraded_read_stripe_width"
  "fig16_degraded_read_stripe_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_degraded_read_stripe_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
