# Empty dependencies file for fig16_degraded_read_stripe_width.
# This may be replaced when dependencies are built.
