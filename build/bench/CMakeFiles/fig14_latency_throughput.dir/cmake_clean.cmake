file(REMOVE_RECURSE
  "CMakeFiles/fig14_latency_throughput.dir/fig14_latency_throughput.cc.o"
  "CMakeFiles/fig14_latency_throughput.dir/fig14_latency_throughput.cc.o.d"
  "fig14_latency_throughput"
  "fig14_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
