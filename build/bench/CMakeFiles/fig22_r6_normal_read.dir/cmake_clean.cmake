file(REMOVE_RECURSE
  "CMakeFiles/fig22_r6_normal_read.dir/fig22_r6_normal_read.cc.o"
  "CMakeFiles/fig22_r6_normal_read.dir/fig22_r6_normal_read.cc.o.d"
  "fig22_r6_normal_read"
  "fig22_r6_normal_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_r6_normal_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
