# Empty dependencies file for fig22_r6_normal_read.
# This may be replaced when dependencies are built.
