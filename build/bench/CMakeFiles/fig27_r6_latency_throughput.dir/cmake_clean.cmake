file(REMOVE_RECURSE
  "CMakeFiles/fig27_r6_latency_throughput.dir/fig27_r6_latency_throughput.cc.o"
  "CMakeFiles/fig27_r6_latency_throughput.dir/fig27_r6_latency_throughput.cc.o.d"
  "fig27_r6_latency_throughput"
  "fig27_r6_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_r6_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
