# Empty dependencies file for fig27_r6_latency_throughput.
# This may be replaced when dependencies are built.
