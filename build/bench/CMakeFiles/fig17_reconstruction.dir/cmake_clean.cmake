file(REMOVE_RECURSE
  "CMakeFiles/fig17_reconstruction.dir/fig17_reconstruction.cc.o"
  "CMakeFiles/fig17_reconstruction.dir/fig17_reconstruction.cc.o.d"
  "fig17_reconstruction"
  "fig17_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
