# Empty compiler generated dependencies file for fig17_reconstruction.
# This may be replaced when dependencies are built.
