file(REMOVE_RECURSE
  "CMakeFiles/fig20_objstore_normal.dir/fig20_objstore_normal.cc.o"
  "CMakeFiles/fig20_objstore_normal.dir/fig20_objstore_normal.cc.o.d"
  "fig20_objstore_normal"
  "fig20_objstore_normal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_objstore_normal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
