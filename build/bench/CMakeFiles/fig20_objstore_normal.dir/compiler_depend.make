# Empty compiler generated dependencies file for fig20_objstore_normal.
# This may be replaced when dependencies are built.
