file(REMOVE_RECURSE
  "CMakeFiles/fig25_r6_write_stripe_width.dir/fig25_r6_write_stripe_width.cc.o"
  "CMakeFiles/fig25_r6_write_stripe_width.dir/fig25_r6_write_stripe_width.cc.o.d"
  "fig25_r6_write_stripe_width"
  "fig25_r6_write_stripe_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_r6_write_stripe_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
