# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig25_r6_write_stripe_width.
