# Empty dependencies file for fig25_r6_write_stripe_width.
# This may be replaced when dependencies are built.
