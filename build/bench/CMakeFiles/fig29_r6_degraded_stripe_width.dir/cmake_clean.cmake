file(REMOVE_RECURSE
  "CMakeFiles/fig29_r6_degraded_stripe_width.dir/fig29_r6_degraded_stripe_width.cc.o"
  "CMakeFiles/fig29_r6_degraded_stripe_width.dir/fig29_r6_degraded_stripe_width.cc.o.d"
  "fig29_r6_degraded_stripe_width"
  "fig29_r6_degraded_stripe_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig29_r6_degraded_stripe_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
