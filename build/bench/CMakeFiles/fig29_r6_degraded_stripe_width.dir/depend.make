# Empty dependencies file for fig29_r6_degraded_stripe_width.
# This may be replaced when dependencies are built.
