# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig29_r6_degraded_stripe_width.
