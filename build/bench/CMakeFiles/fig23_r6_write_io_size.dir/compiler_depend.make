# Empty compiler generated dependencies file for fig23_r6_write_io_size.
# This may be replaced when dependencies are built.
