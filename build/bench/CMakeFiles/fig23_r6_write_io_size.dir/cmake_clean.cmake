file(REMOVE_RECURSE
  "CMakeFiles/fig23_r6_write_io_size.dir/fig23_r6_write_io_size.cc.o"
  "CMakeFiles/fig23_r6_write_io_size.dir/fig23_r6_write_io_size.cc.o.d"
  "fig23_r6_write_io_size"
  "fig23_r6_write_io_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_r6_write_io_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
