/**
 * @file
 * Shared fixtures for the integration tests: a small simulated cluster
 * with a dRAID (or baseline) array on top, synchronous-looking I/O
 * helpers, and an on-disk parity scrubber.
 */

#ifndef DRAID_TESTS_DRAID_TEST_UTIL_H
#define DRAID_TESTS_DRAID_TEST_UTIL_H

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/draid_bdev.h"
#include "core/draid_host.h"
#include "ec/raid5_codec.h"
#include "ec/raid6_codec.h"

namespace draid::testutil {

/** Build a default testbed with a small SSD so tests stay fast. */
inline cluster::TestbedConfig
smallConfig()
{
    cluster::TestbedConfig cfg;
    cfg.ssd.capacity = 64ull << 20; // 64 MB per drive
    return cfg;
}

/** Synchronously write through a BlockDevice (runs the simulator). */
inline bool
writeSync(sim::Simulator &sim, blockdev::BlockDevice &dev,
          std::uint64_t offset, const ec::Buffer &data)
{
    bool ok = false;
    bool done = false;
    dev.write(offset, data.clone(), [&](blockdev::IoStatus st) {
        ok = st == blockdev::IoStatus::kOk;
        done = true;
        sim.stop();
    });
    while (!done && sim.pendingEvents() > 0)
        sim.run();
    return done && ok;
}

/** Synchronously read through a BlockDevice. */
inline ec::Buffer
readSync(sim::Simulator &sim, blockdev::BlockDevice &dev,
         std::uint64_t offset, std::uint32_t length, bool *ok_out = nullptr)
{
    ec::Buffer out;
    bool ok = false;
    bool done = false;
    dev.read(offset, length, [&](blockdev::IoStatus st, ec::Buffer data) {
        ok = st == blockdev::IoStatus::kOk;
        out = std::move(data);
        done = true;
        sim.stop();
    });
    while (!done && sim.pendingEvents() > 0)
        sim.run();
    if (ok_out)
        *ok_out = ok;
    return out;
}

/**
 * Verify the on-disk parity of one stripe directly against the member
 * drives' backing stores (bypassing all controllers).
 */
inline ::testing::AssertionResult
scrubStripe(cluster::Cluster &cluster, const raid::Geometry &geom,
            std::uint64_t stripe)
{
    const std::uint32_t chunk = geom.chunkSize();
    const std::uint64_t addr = geom.deviceAddress(stripe, 0);

    std::vector<ec::Buffer> data;
    for (std::uint32_t i = 0; i < geom.dataChunks(); ++i) {
        data.push_back(cluster.target(geom.dataDevice(stripe, i))
                           .ssd()
                           .store()
                           .readSync(addr, chunk));
    }
    ec::Buffer p = cluster.target(geom.parityDevice(stripe))
                       .ssd()
                       .store()
                       .readSync(addr, chunk);

    if (geom.level() == raid::RaidLevel::kRaid6) {
        ec::Buffer q = cluster.target(geom.qDevice(stripe))
                           .ssd()
                           .store()
                           .readSync(addr, chunk);
        ec::Buffer ep, eq;
        ec::Raid6Codec::computePQ(data, ep, eq);
        if (!p.contentEquals(ep))
            return ::testing::AssertionFailure()
                   << "P mismatch on stripe " << stripe;
        if (!q.contentEquals(eq))
            return ::testing::AssertionFailure()
                   << "Q mismatch on stripe " << stripe;
        return ::testing::AssertionSuccess();
    }

    ec::Buffer expect = ec::Raid5Codec::computeParity(data);
    if (!p.contentEquals(expect))
        return ::testing::AssertionFailure()
               << "parity mismatch on stripe " << stripe;
    return ::testing::AssertionSuccess();
}

/**
 * Minimal recursive-descent JSON well-formedness checker (RFC 8259
 * grammar, no semantic interpretation). Good enough to catch the classic
 * emitter bugs: trailing commas, unescaped quotes, bare NaN/Infinity.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(std::string s) : s_(std::move(s)) {}

    bool valid()
    {
        ws();
        const bool ok = value();
        ws();
        return ok && pos_ == s_.size();
    }

  private:
    static bool digit(char c)
    {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
    }

    void ws()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool eat(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool string()
    {
        if (!eat('"'))
            return false;
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_++])))
                            return false;
                    }
                } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control character inside a string
            }
        }
        return false; // unterminated
    }

    bool number()
    {
        eat('-');
        bool digits = false;
        while (pos_ < s_.size() && digit(s_[pos_])) {
            ++pos_;
            digits = true;
        }
        if (!digits)
            return false;
        if (eat('.')) {
            bool frac = false;
            while (pos_ < s_.size() && digit(s_[pos_])) {
                ++pos_;
                frac = true;
            }
            if (!frac)
                return false;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (!eat('+'))
                eat('-');
            bool exp = false;
            while (pos_ < s_.size() && digit(s_[pos_])) {
                ++pos_;
                exp = true;
            }
            if (!exp)
                return false;
        }
        return true;
    }

    bool array()
    {
        if (!eat('['))
            return false;
        ws();
        if (eat(']'))
            return true;
        while (true) {
            if (!value())
                return false;
            ws();
            if (eat(']'))
                return true;
            if (!eat(','))
                return false;
            ws();
        }
    }

    bool object()
    {
        if (!eat('{'))
            return false;
        ws();
        if (eat('}'))
            return true;
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (!eat(':'))
                return false;
            ws();
            if (!value())
                return false;
            ws();
            if (eat('}'))
                return true;
            if (!eat(','))
                return false;
        }
    }

    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    std::string s_;
    std::size_t pos_ = 0;
};

/** A ready-to-use dRAID rig. */
struct DraidRig
{
    cluster::TestbedConfig cfg;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<core::DraidSystem> system;

    explicit DraidRig(std::uint32_t targets = 6,
                      core::DraidOptions options = {},
                      std::uint32_t width = 0)
        : cfg(smallConfig())
    {
        cluster = std::make_unique<cluster::Cluster>(cfg, targets);
        system = std::make_unique<core::DraidSystem>(*cluster, options,
                                                     width);
    }

    core::DraidHost &host() { return system->host(); }
    sim::Simulator &sim() { return cluster->sim(); }
};

} // namespace draid::testutil

#endif // DRAID_TESTS_DRAID_TEST_UTIL_H
