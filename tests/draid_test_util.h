/**
 * @file
 * Shared fixtures for the integration tests: a small simulated cluster
 * with a dRAID (or baseline) array on top, synchronous-looking I/O
 * helpers, and an on-disk parity scrubber.
 */

#ifndef DRAID_TESTS_DRAID_TEST_UTIL_H
#define DRAID_TESTS_DRAID_TEST_UTIL_H

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/draid_bdev.h"
#include "core/draid_host.h"
#include "ec/raid5_codec.h"
#include "ec/raid6_codec.h"

namespace draid::testutil {

/** Build a default testbed with a small SSD so tests stay fast. */
inline cluster::TestbedConfig
smallConfig()
{
    cluster::TestbedConfig cfg;
    cfg.ssd.capacity = 64ull << 20; // 64 MB per drive
    return cfg;
}

/** Synchronously write through a BlockDevice (runs the simulator). */
inline bool
writeSync(sim::Simulator &sim, blockdev::BlockDevice &dev,
          std::uint64_t offset, const ec::Buffer &data)
{
    bool ok = false;
    bool done = false;
    dev.write(offset, data.clone(), [&](blockdev::IoStatus st) {
        ok = st == blockdev::IoStatus::kOk;
        done = true;
        sim.stop();
    });
    while (!done && sim.pendingEvents() > 0)
        sim.run();
    return done && ok;
}

/** Synchronously read through a BlockDevice. */
inline ec::Buffer
readSync(sim::Simulator &sim, blockdev::BlockDevice &dev,
         std::uint64_t offset, std::uint32_t length, bool *ok_out = nullptr)
{
    ec::Buffer out;
    bool ok = false;
    bool done = false;
    dev.read(offset, length, [&](blockdev::IoStatus st, ec::Buffer data) {
        ok = st == blockdev::IoStatus::kOk;
        out = std::move(data);
        done = true;
        sim.stop();
    });
    while (!done && sim.pendingEvents() > 0)
        sim.run();
    if (ok_out)
        *ok_out = ok;
    return out;
}

/**
 * Verify the on-disk parity of one stripe directly against the member
 * drives' backing stores (bypassing all controllers).
 */
inline ::testing::AssertionResult
scrubStripe(cluster::Cluster &cluster, const raid::Geometry &geom,
            std::uint64_t stripe)
{
    const std::uint32_t chunk = geom.chunkSize();
    const std::uint64_t addr = geom.deviceAddress(stripe, 0);

    std::vector<ec::Buffer> data;
    for (std::uint32_t i = 0; i < geom.dataChunks(); ++i) {
        data.push_back(cluster.target(geom.dataDevice(stripe, i))
                           .ssd()
                           .store()
                           .readSync(addr, chunk));
    }
    ec::Buffer p = cluster.target(geom.parityDevice(stripe))
                       .ssd()
                       .store()
                       .readSync(addr, chunk);

    if (geom.level() == raid::RaidLevel::kRaid6) {
        ec::Buffer q = cluster.target(geom.qDevice(stripe))
                           .ssd()
                           .store()
                           .readSync(addr, chunk);
        ec::Buffer ep, eq;
        ec::Raid6Codec::computePQ(data, ep, eq);
        if (!p.contentEquals(ep))
            return ::testing::AssertionFailure()
                   << "P mismatch on stripe " << stripe;
        if (!q.contentEquals(eq))
            return ::testing::AssertionFailure()
                   << "Q mismatch on stripe " << stripe;
        return ::testing::AssertionSuccess();
    }

    ec::Buffer expect = ec::Raid5Codec::computeParity(data);
    if (!p.contentEquals(expect))
        return ::testing::AssertionFailure()
               << "parity mismatch on stripe " << stripe;
    return ::testing::AssertionSuccess();
}

/** A ready-to-use dRAID rig. */
struct DraidRig
{
    cluster::TestbedConfig cfg;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<core::DraidSystem> system;

    explicit DraidRig(std::uint32_t targets = 6,
                      core::DraidOptions options = {},
                      std::uint32_t width = 0)
        : cfg(smallConfig())
    {
        cluster = std::make_unique<cluster::Cluster>(cfg, targets);
        system = std::make_unique<core::DraidSystem>(*cluster, options,
                                                     width);
    }

    core::DraidHost &host() { return system->host(); }
    sim::Simulator &sim() { return cluster->sim(); }
};

} // namespace draid::testutil

#endif // DRAID_TESTS_DRAID_TEST_UTIL_H
