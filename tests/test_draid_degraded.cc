// dRAID degraded state: reconstructed reads and every degraded-write case
// (§5.1 degraded handling, §6.1) must return/leave correct data.

#include <gtest/gtest.h>

#include <cstring>

#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using raid::RaidLevel;

namespace {

DraidOptions
opts(RaidLevel level)
{
    DraidOptions o;
    o.level = level;
    o.chunkSize = 64 * 1024;
    return o;
}

/** Preload a recognizable pattern across several stripes. */
void
preload(DraidRig &rig, std::uint64_t bytes, std::vector<std::uint8_t> &model)
{
    model.assign(bytes, 0);
    ec::Buffer data(bytes);
    data.fillPattern(42);
    std::memcpy(model.data(), data.data(), bytes);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
}

} // namespace

class DraidDegraded : public ::testing::TestWithParam<RaidLevel>
{
};

TEST_P(DraidDegraded, DegradedReadReconstructsLostChunk)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    preload(rig, 4 * g.stripeDataSize(), model);

    rig.host().markFailed(2);

    bool ok = false;
    ec::Buffer all = readSync(rig.sim(), rig.host(), 0,
                              static_cast<std::uint32_t>(model.size()),
                              &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(all.data(), model.data(), model.size()), 0);
    EXPECT_GE(rig.host().counters().degradedReads, 1u);
}

TEST_P(DraidDegraded, SmallDegradedReadOfLostChunkOnly)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    preload(rig, 2 * g.stripeDataSize(), model);

    const std::uint32_t failed_dev = 1;
    rig.host().markFailed(failed_dev);

    // Find a logical range living exactly on the failed device, stripe 0.
    const std::uint32_t fidx = g.dataIndexOf(0, failed_dev);
    const std::uint64_t off =
        static_cast<std::uint64_t>(fidx) * g.chunkSize() + 1000;
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), off, 5000, &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(got.data(), model.data() + off, 5000), 0);
}

TEST_P(DraidDegraded, DegradedWriteToUntouchedFailedChunkUsesRmw)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    preload(rig, 2 * g.stripeDataSize(), model);

    const std::uint32_t failed_dev = 0;
    rig.host().markFailed(failed_dev);

    // Write a chunk that is NOT on the failed device.
    const std::uint32_t fidx = g.dataIndexOf(0, failed_dev);
    const std::uint32_t target_idx = fidx == 0 ? 1 : 0;
    const std::uint64_t off =
        static_cast<std::uint64_t>(target_idx) * g.chunkSize();
    ec::Buffer data(8192);
    data.fillPattern(77);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
    std::memcpy(model.data() + off, data.data(), data.size());

    // The lost chunk must still reconstruct correctly afterwards.
    bool ok = false;
    const std::uint64_t lost_off =
        static_cast<std::uint64_t>(fidx) * g.chunkSize();
    ec::Buffer lost = readSync(rig.sim(), rig.host(), lost_off,
                               g.chunkSize(), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(lost.data(), model.data() + lost_off,
                          g.chunkSize()),
              0);
    EXPECT_GE(rig.host().counters().degradedWrites, 1u);
}

TEST_P(DraidDegraded, DegradedWriteToFailedChunkFullCoverage)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    preload(rig, 2 * g.stripeDataSize(), model);

    const std::uint32_t failed_dev = 3;
    rig.host().markFailed(failed_dev);

    const std::uint32_t fidx = g.dataIndexOf(0, failed_dev);
    const std::uint64_t off =
        static_cast<std::uint64_t>(fidx) * g.chunkSize();
    ec::Buffer data(g.chunkSize());
    data.fillPattern(88);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
    std::memcpy(model.data() + off, data.data(), data.size());

    // Reading it back must reconstruct the *new* content from parity.
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), off, g.chunkSize(),
                              &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
}

TEST_P(DraidDegraded, DegradedWriteToFailedChunkPartialCoverage)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    preload(rig, 2 * g.stripeDataSize(), model);

    const std::uint32_t failed_dev = 3;
    rig.host().markFailed(failed_dev);

    const std::uint32_t fidx = g.dataIndexOf(0, failed_dev);
    const std::uint64_t off =
        static_cast<std::uint64_t>(fidx) * g.chunkSize() + 7000;
    ec::Buffer data(9000);
    data.fillPattern(99);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
    std::memcpy(model.data() + off, data.data(), data.size());

    // The whole failed chunk (old head + new middle + old tail) must
    // reconstruct.
    const std::uint64_t chunk_off =
        static_cast<std::uint64_t>(fidx) * g.chunkSize();
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), chunk_off,
                              g.chunkSize(), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(got.data(), model.data() + chunk_off,
                          g.chunkSize()),
              0);
}

TEST_P(DraidDegraded, WriteToStripeWithFailedParity)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    preload(rig, 4 * g.stripeDataSize(), model);

    // Find a stripe whose P parity lives on device 4, then fail 4.
    std::uint64_t stripe = 0;
    while (g.parityDevice(stripe) != 4)
        ++stripe;
    rig.host().markFailed(4);

    const std::uint64_t off = stripe * g.stripeDataSize() + 123;
    ec::Buffer data(10000);
    data.fillPattern(111);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
    std::memcpy(model.data() + off, data.data(), data.size());

    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), off, 10000, &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
}

TEST_P(DraidDegraded, FullStripeWriteWhileDegradedThenRecoverable)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    rig.host().markFailed(1);

    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(321);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    // Everything (including the never-written lost chunk's content) must
    // read back via reconstruction.
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0,
                              static_cast<std::uint32_t>(data.size()),
                              &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
}

TEST_P(DraidDegraded, MixedWorkloadWhileDegradedStaysConsistent)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    const std::uint64_t span = 6 * g.stripeDataSize();
    preload(rig, span, model);
    rig.host().markFailed(2);

    sim::Rng rng(7);
    for (int i = 0; i < 40; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(1024 * (1 + rng.nextBounded(64)));
        const std::uint64_t off = rng.nextBounded(span - len);
        ec::Buffer data(len);
        data.fillPattern(5000 + i);
        std::memcpy(model.data() + off, data.data(), len);
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data))
            << "write " << i;
    }
    bool ok = false;
    ec::Buffer all = readSync(rig.sim(), rig.host(), 0,
                              static_cast<std::uint32_t>(span), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(all.data(), model.data(), span), 0);
}

INSTANTIATE_TEST_SUITE_P(Levels, DraidDegraded,
                         ::testing::Values(RaidLevel::kRaid5,
                                           RaidLevel::kRaid6));

TEST(DraidDegradedTraffic, DegradedReadUsesPeerTrafficNotHostNic)
{
    // §6.1: the host receives only the requested bytes; partial results
    // flow between peers.
    DraidOptions o;
    o.level = RaidLevel::kRaid5;
    o.chunkSize = 64 * 1024;
    DraidRig rig(8, o);
    const auto &g = rig.host().geometry();
    std::vector<std::uint8_t> model;
    ec::Buffer data(4 * g.stripeDataSize());
    data.fillPattern(1);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    rig.host().markFailed(0);
    const std::uint32_t fidx = g.dataIndexOf(0, 0);
    const std::uint64_t off =
        static_cast<std::uint64_t>(fidx) * g.chunkSize();

    const std::uint64_t rx0 =
        rig.cluster->host().nic().rx().bytesTransferred();
    bool ok = false;
    readSync(rig.sim(), rig.host(), off, g.chunkSize(), &ok);
    ASSERT_TRUE(ok);
    const std::uint64_t host_rx =
        rig.cluster->host().nic().rx().bytesTransferred() - rx0;

    // Host receives ~1 chunk (plus capsules), NOT n-1 chunks.
    EXPECT_GE(host_rx, g.chunkSize());
    EXPECT_LT(host_rx, g.chunkSize() + 8192);
}
