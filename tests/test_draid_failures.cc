// dRAID failure handling (§5.4): transient failures retried with full
// stripe writes; prolonged failures fail over to degraded state.

#include <gtest/gtest.h>

#include <cstring>

#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using raid::RaidLevel;

namespace {

DraidOptions
opts()
{
    DraidOptions o;
    o.level = RaidLevel::kRaid5;
    o.chunkSize = 64 * 1024;
    return o;
}

} // namespace

TEST(DraidFailures, TransientTargetFailureRecoversViaRetry)
{
    DraidRig rig(6, opts());
    const auto &g = rig.host().geometry();
    ec::Buffer pre(2 * g.stripeDataSize());
    pre.fillPattern(1);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, pre));

    // Take the written chunk's device down (stripe 0, data index 0) and
    // schedule its recovery before retries exhaust.
    const std::uint32_t victim = g.dataDevice(0, 0);
    rig.cluster->failTarget(victim);
    rig.sim().schedule(sim::Ticks::ms(60),
                       [&]() { rig.cluster->recoverTarget(victim); });

    ec::Buffer data(8192);
    data.fillPattern(2);
    bool done = false;
    blockdev::IoStatus status = blockdev::IoStatus::kError;
    rig.host().write(0, data.clone(), [&](blockdev::IoStatus st) {
        status = st;
        done = true;
        rig.sim().stop();
    });
    while (!done && rig.sim().pendingEvents() > 0)
        rig.sim().run();

    ASSERT_TRUE(done);
    EXPECT_EQ(status, blockdev::IoStatus::kOk);
    EXPECT_GE(rig.host().counters().retries, 1u);
    EXPECT_FALSE(rig.host().isDegraded());

    // Data and parity must be fully consistent after the retry.
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0, 8192);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
}

TEST(DraidFailures, ProlongedFailureTriggersFailover)
{
    DraidRig rig(6, opts());
    const auto &g = rig.host().geometry();
    ec::Buffer pre(2 * g.stripeDataSize());
    pre.fillPattern(3);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, pre));

    const std::uint32_t victim = g.dataDevice(0, 0);
    rig.cluster->failTarget(victim); // never recovers

    ec::Buffer data(8192);
    data.fillPattern(4);
    bool done = false;
    blockdev::IoStatus status = blockdev::IoStatus::kError;
    rig.host().write(0, data.clone(), [&](blockdev::IoStatus st) {
        status = st;
        done = true;
        rig.sim().stop();
    });
    while (!done && rig.sim().pendingEvents() > 0)
        rig.sim().run();

    ASSERT_TRUE(done);
    EXPECT_EQ(status, blockdev::IoStatus::kOk);
    EXPECT_TRUE(rig.host().isDegraded());
    EXPECT_EQ(rig.host().failedDevice(), victim);
    EXPECT_GE(rig.host().counters().failovers, 1u);

    // The write completed in degraded mode; data must read back.
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0, 8192);
    EXPECT_TRUE(got.contentEquals(data));
}

TEST(DraidFailures, RetryFullStripeRestoresConsistencyAfterPartialWrite)
{
    // Even if a write was half-applied before the failure, the full-stripe
    // retry must leave data+parity consistent.
    DraidRig rig(6, opts());
    const auto &g = rig.host().geometry();
    ec::Buffer pre(g.stripeDataSize());
    pre.fillPattern(5);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, pre));

    // Fail the parity holder for stripe 0 just before a write; recover it
    // shortly after so the retry (full-stripe) succeeds.
    const std::uint32_t p_dev = g.parityDevice(0);
    rig.cluster->failTarget(p_dev);
    rig.sim().schedule(sim::Ticks::ms(55),
                       [&]() { rig.cluster->recoverTarget(p_dev); });

    ec::Buffer data(16384);
    data.fillPattern(6);
    bool done = false;
    rig.host().write(4096, data.clone(), [&](blockdev::IoStatus st) {
        EXPECT_EQ(st, blockdev::IoStatus::kOk);
        done = true;
        rig.sim().stop();
    });
    while (!done && rig.sim().pendingEvents() > 0)
        rig.sim().run();
    ASSERT_TRUE(done);

    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
    ec::Buffer got = readSync(rig.sim(), rig.host(), 4096, 16384);
    EXPECT_TRUE(got.contentEquals(data));
}

TEST(DraidFailures, NetworkJitterDelaysButCompletes)
{
    DraidRig rig(6, opts());
    rig.cluster->fabric().setExtraDelay(3, sim::Ticks::ms(2));

    ec::Buffer data(8192);
    data.fillPattern(7);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    EXPECT_EQ(rig.host().counters().retries, 0u); // jitter < timeout
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.host().geometry(), 0));
}

TEST(DraidFailures, ReadOfDownTargetTimesOutWithError)
{
    DraidRig rig(6, opts());
    ec::Buffer pre(64 * 1024);
    pre.fillPattern(8);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, pre));

    // Down but NOT marked failed at the host: plain reads time out.
    rig.cluster->failTarget(0);
    const std::uint32_t fidx =
        rig.host().geometry().dataIndexOf(0, 0);
    const std::uint64_t off =
        static_cast<std::uint64_t>(fidx) *
        rig.host().geometry().chunkSize();
    bool ok = true;
    readSync(rig.sim(), rig.host(), off, 4096, &ok);
    EXPECT_FALSE(ok);

    // After marking failed, the same read succeeds via reconstruction.
    rig.host().markFailed(0);
    bool ok2 = false;
    readSync(rig.sim(), rig.host(), off, 4096, &ok2);
    EXPECT_TRUE(ok2);
}

TEST(DraidFailures, DeadlinesDisarmOnSuccess)
{
    DraidRig rig(6, opts());
    for (int i = 0; i < 10; ++i) {
        ec::Buffer data(4096);
        data.fillPattern(i);
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), i * 4096, data));
    }
    // Let all timeout horizons pass: nothing should fire.
    rig.sim().runFor(sim::Ticks::ms(200));
    EXPECT_EQ(rig.host().counters().retries, 0u);
    EXPECT_EQ(rig.host().counters().failovers, 0u);
}
