/**
 * @file
 * Fixture tests for draid_lint (DESIGN.md §5.6): every rule must fire at
 * the exact location planted in tools/draid_lint/fixtures/, the clean and
 * suppressed fixtures must pass, and the real repo must lint clean inside
 * its suppression budget.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

#ifndef DRAID_LINT_BIN
#error "tests/CMakeLists.txt must define DRAID_LINT_BIN"
#endif
#ifndef DRAID_LINT_FIXTURES
#error "tests/CMakeLists.txt must define DRAID_LINT_FIXTURES"
#endif
#ifndef DRAID_REPO_ROOT
#error "tests/CMakeLists.txt must define DRAID_REPO_ROOT"
#endif

struct LintRun
{
    int exitCode = -1;
    std::string output; ///< stdout + stderr, interleaved
};

/** Run the lint binary with @p args, capturing output and exit code. */
LintRun
runLint(const std::string &args)
{
    const std::string cmd =
        std::string(DRAID_LINT_BIN) + " " + args + " 2>&1";
    LintRun r;
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return r;
    std::array<char, 4096> buf;
    std::size_t got;
    while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        r.output.append(buf.data(), got);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        r.exitCode = WEXITSTATUS(status);
    return r;
}

/** Lint one fixture file against the fixture tree. */
LintRun
lintFixture(const std::string &rel, const std::string &extra = "")
{
    return runLint("--repo=" + std::string(DRAID_LINT_FIXTURES) + " " +
                   extra + " " + rel);
}

TEST(DraidLint, WallClockFiresAtPlantedLine)
{
    const LintRun r = lintFixture("src/sim/wall_clock.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/sim/wall_clock.cc:8: wall-clock:"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, WallClockStillFiresInsideEngineObserverImpls)
{
    // The EngineObserver hook gives src/sim/ a seam where host-time reads
    // would be tempting; the rule must still catch a clock read there.
    const LintRun r = lintFixture("src/sim/engine_observer_clock.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(
        r.output.find("src/sim/engine_observer_clock.cc:13: wall-clock:"),
        std::string::npos)
        << r.output;
}

TEST(DraidLint, WallClockAllowsProfilerReadsInTelemetry)
{
    // src/telemetry/ is the exempt directory: the same steady_clock read
    // that fires in src/sim/ is legal in a profiler implementation.
    const LintRun r = lintFixture("src/telemetry/profiler_clock.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos)
        << r.output;
}

TEST(DraidLint, RawRngFiresOnIncludeAndEngine)
{
    const LintRun r = lintFixture("src/sim/raw_rng.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/sim/raw_rng.cc:1: raw-rng:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("src/sim/raw_rng.cc:8: raw-rng:"),
              std::string::npos)
        << r.output;
}

// The campaign engine is the newest consumer of seeded randomness; the
// raw-rng rule must cover src/campaign/ like any other src/ directory so
// schedule generation can never bypass sim::Rng.
TEST(DraidLint, RawRngCoversCampaignScope)
{
    const LintRun r = lintFixture("src/campaign/raw_rng.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/campaign/raw_rng.cc:1: raw-rng:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("src/campaign/raw_rng.cc:8: raw-rng:"),
              std::string::npos)
        << r.output;
}

// src/telemetry/ is draw-free by contract: even sim::Rng is banned
// there, because a sampling decision backed by an engine draw would
// shift the seed chain of the simulation being observed.
TEST(DraidLint, RawRngFiresOnRngInTelemetryScope)
{
    const LintRun r = lintFixture("src/telemetry/sampler_rng.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/telemetry/sampler_rng.cc:7: raw-rng:"),
              std::string::npos)
        << r.output;
}

// The draw-free bar extends to the contention-attribution sources: the
// FIFO pipes, CPU cores and stripe locks whose occupancy records feed
// ContentionTracker. An Rng draw there would perturb the recorded
// segments and break BENCH_interference.json's double-run determinism.
TEST(DraidLint, RawRngFiresOnRngInAttributionSources)
{
    const LintRun pipe = lintFixture("src/sim/pipe_rng.cc");
    EXPECT_EQ(pipe.exitCode, 1);
    EXPECT_NE(pipe.output.find("src/sim/pipe_rng.cc:8: raw-rng:"),
              std::string::npos)
        << pipe.output;

    const LintRun lock = lintFixture("src/raid/stripe_lock_rng.cc");
    EXPECT_EQ(lock.exitCode, 1);
    EXPECT_NE(
        lock.output.find("src/raid/stripe_lock_rng.cc:7: raw-rng:"),
        std::string::npos)
        << lock.output;
}

// ... and the replacement idiom — head sampling by a seeded hash of the
// trace id — lints clean in the same scope.
TEST(DraidLint, HashBasedSamplerIsCleanInTelemetryScope)
{
    const LintRun r = lintFixture("src/telemetry/sampler_hash.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos)
        << r.output;
}

TEST(DraidLint, UnorderedIterFiresOnRangeFor)
{
    const LintRun r = lintFixture("src/core/unordered_iter.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(
        r.output.find("src/core/unordered_iter.cc:12: unordered-iter:"),
        std::string::npos)
        << r.output;
}

TEST(DraidLint, PtrKeyFiresOnPointerKeyedMap)
{
    const LintRun r = lintFixture("src/raid/ptr_key.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/raid/ptr_key.cc:7: ptr-key:"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, IncludeFirstFiresWhenOwnHeaderNotFirst)
{
    const LintRun r = lintFixture("src/net/include_first.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/net/include_first.cc:1: include-first:"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, NsHeaderFiresOnUsingNamespaceInHeader)
{
    const LintRun r = lintFixture("src/net/ns_header.h");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/net/ns_header.h:6: ns-header:"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, FpAccumFiresOnDoubleAccumulation)
{
    const LintRun r = lintFixture("src/sim/fp_accum.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/sim/fp_accum.cc:8: fp-accum:"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, CleanFileProducesNoDiagnostics)
{
    const LintRun r = lintFixture("src/core/clean.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos)
        << r.output;
}

TEST(DraidLint, SuppressionWithReasonSilencesTheRule)
{
    const LintRun r = lintFixture("src/core/suppressed.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_NE(r.output.find("1 suppression(s)"), std::string::npos)
        << r.output;
}

TEST(DraidLint, ReasonlessSuppressionIsItselfAViolation)
{
    const LintRun r = lintFixture("src/core/bad_suppression.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(
        r.output.find("src/core/bad_suppression.cc:8: bad-suppression:"),
        std::string::npos)
        << r.output;
    // Without a valid reason the underlying violation still reports.
    EXPECT_NE(r.output.find("src/core/bad_suppression.cc:9: wall-clock:"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, SuppressionBudgetEnforced)
{
    const LintRun r =
        lintFixture("src/core/suppressed.cc", "--max-suppressions=0");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("suppression budget exceeded"),
              std::string::npos)
        << r.output;
}

// ---- v2 semantic rules -------------------------------------------------

TEST(DraidLint, LayeringFiresOnInvertedIncludeEdge)
{
    const LintRun r = lintFixture("src/raid/layering_bad.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/raid/layering_bad.cc:3: layering:"),
              std::string::npos)
        << r.output;
    // The message names the offending edge and the allowed set.
    EXPECT_NE(r.output.find("src/raid/layering_bad.cc -> "
                            "core/draid_host.h"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("allowed: sim, telemetry"), std::string::npos)
        << r.output;
}

TEST(DraidLint, TickUnitFiresOnRawTickParamAndReturn)
{
    const LintRun r = lintFixture("src/sim/simulator.h");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/sim/simulator.h:10: tick-unit:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("return type in 'now'"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("src/sim/simulator.h:11: tick-unit:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("parameter in 'scheduleAt'"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, BoundedMemoryFiresOnUncappedMember)
{
    const LintRun r = lintFixture("src/core/unbounded_member.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(
        r.output.find("src/core/unbounded_member.cc:8: bounded-memory:"),
        std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("'pending_' (std::vector in RebuildQueue)"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, BoundedMemoryAcceptsCapAnnotation)
{
    const LintRun r = lintFixture("src/core/capped_member.cc");
    EXPECT_EQ(r.exitCode, 0);
    // A cap() is a contract, not a suppression: it must not count
    // against the allow() budget.
    EXPECT_NE(r.output.find("0 violation(s), 0 suppression(s)"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, EmptyCapIsMalformedAndMemberStillReports)
{
    const LintRun r = lintFixture("src/core/bad_cap.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("src/core/bad_cap.cc:7: bad-suppression:"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("src/core/bad_cap.cc:8: bounded-memory:"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, CallbackDisciplineFiresOnDrainFanoutAndAlloc)
{
    const LintRun r = lintFixture("src/core/callback_bad.cc");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(
        r.output.find("src/core/callback_bad.cc:14: callback-discipline:"),
        std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("synchronous drain"), std::string::npos)
        << r.output;
    EXPECT_NE(
        r.output.find("src/core/callback_bad.cc:16: callback-discipline:"),
        std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("fans out unbounded events"),
              std::string::npos)
        << r.output;
    EXPECT_NE(
        r.output.find("src/core/callback_bad.cc:18: callback-discipline:"),
        std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("allocation ('new')"), std::string::npos)
        << r.output;
}

// ---- output formats & exit codes ---------------------------------------

TEST(DraidLint, JsonFormatCarriesViolationsAndCounts)
{
    const LintRun r =
        lintFixture("src/core/unbounded_member.cc", "--format=json");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("\"files\":1"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"rule\":\"bounded-memory\""),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("\"file\":\"src/core/unbounded_member.cc\","
                            "\"line\":8"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, GithubFormatEmitsWorkflowAnnotations)
{
    const LintRun r =
        lintFixture("src/raid/layering_bad.cc", "--format=github");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("::error file=src/raid/layering_bad.cc,"
                            "line=3,title=draid-lint layering::"),
              std::string::npos)
        << r.output;
}

TEST(DraidLint, ListRulesPrintsEveryRuleAndExitsZero)
{
    const LintRun r = runLint("--list-rules");
    EXPECT_EQ(r.exitCode, 0);
    for (const char *rule :
         {"wall-clock", "layering", "tick-unit", "bounded-memory",
          "callback-discipline", "bad-suppression"})
        EXPECT_NE(r.output.find(rule), std::string::npos)
            << "rule " << rule << " missing from --list-rules:\n"
            << r.output;
}

TEST(DraidLint, UsageErrorsExitTwo)
{
    EXPECT_EQ(runLint("--format=yaml").exitCode, 2);
    EXPECT_EQ(runLint("--only=no-such-rule").exitCode, 2);
    EXPECT_EQ(runLint("--repo=" + std::string(DRAID_LINT_FIXTURES) +
                      " src/does_not_exist.cc")
                  .exitCode,
              2);
}

TEST(DraidLint, OnlyFilterRestrictsToOneRule)
{
    // bad_cap.cc violates both bad-suppression and bounded-memory;
    // --only keeps exactly one of them.
    const LintRun r =
        lintFixture("src/core/bad_cap.cc", "--only=bounded-memory");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("bounded-memory:"), std::string::npos)
        << r.output;
    EXPECT_EQ(r.output.find("bad-suppression:"), std::string::npos)
        << r.output;
}

TEST(DraidLint, WholeFixtureTreeFiresEveryRule)
{
    const LintRun r = runLint("--repo=" +
                              std::string(DRAID_LINT_FIXTURES) + " src");
    EXPECT_EQ(r.exitCode, 1);
    for (const char *rule :
         {"wall-clock", "raw-rng", "unordered-iter", "ptr-key",
          "include-first", "ns-header", "fp-accum", "bad-suppression",
          "layering", "tick-unit", "bounded-memory",
          "callback-discipline"})
        EXPECT_NE(r.output.find(std::string(": ") + rule + ":"),
                  std::string::npos)
            << "rule " << rule << " never fired:\n"
            << r.output;
}

/** The enforcement test: the repo itself lints clean, inside budget. */
TEST(DraidLint, RepoIsCleanWithinSuppressionBudget)
{
    const LintRun r = runLint("--repo=" + std::string(DRAID_REPO_ROOT) +
                              " --max-suppressions=12");
    EXPECT_EQ(r.exitCode, 0) << r.output;
}

/** Per-rule gates: each v2 semantic rule holds repo-wide on its own. */
TEST(DraidLint, RepoIsCleanUnderEachSemanticRule)
{
    for (const char *rule : {"layering", "tick-unit", "bounded-memory",
                             "callback-discipline"}) {
        const LintRun r =
            runLint("--repo=" + std::string(DRAID_REPO_ROOT) +
                    " --only=" + rule);
        EXPECT_EQ(r.exitCode, 0)
            << "rule " << rule << " fires on the repo:\n"
            << r.output;
    }
}

} // namespace
