// Simulator core: event ordering, determinism, run control.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/simulator.h"

using namespace draid::sim;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now().raw(), 0);
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulator, ExecutesEventAtScheduledTime)
{
    Simulator sim;
    Tick fired_at = -1;
    sim.schedule(Ticks{1000}, [&]() { fired_at = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(fired_at, 1000);
    EXPECT_EQ(sim.now().raw(), 1000);
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(Ticks{300}, [&]() { order.push_back(3); });
    sim.schedule(Ticks{100}, [&]() { order.push_back(1); });
    sim.schedule(Ticks{200}, [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTickEventsFireFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(Ticks{50}, [&order, i]() { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingWorks)
{
    Simulator sim;
    Tick second = -1;
    sim.schedule(Ticks{10}, [&]() {
        sim.schedule(Ticks{5}, [&]() { second = sim.now().raw(); });
    });
    sim.run();
    EXPECT_EQ(second, 15);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime)
{
    Simulator sim;
    bool fired = false;
    sim.schedule(Ticks{100}, [&]() {
        sim.schedule(Ticks{0}, [&]() { fired = true; });
    });
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now().raw(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(Ticks{100}, [&]() { ++fired; });
    sim.schedule(Ticks{200}, [&]() { ++fired; });
    sim.runUntil(Ticks{150});
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now().raw(), 150);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains)
{
    Simulator sim;
    sim.runUntil(Ticks{5000});
    EXPECT_EQ(sim.now().raw(), 5000);
}

TEST(Simulator, StopHaltsExecution)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(Ticks{10}, [&]() {
        ++fired;
        sim.stop();
    });
    sim.schedule(Ticks{20}, [&]() { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run(); // resumes
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForAdvancesRelative)
{
    Simulator sim;
    sim.runFor(Ticks{100});
    sim.runFor(Ticks{100});
    EXPECT_EQ(sim.now().raw(), 200);
}

TEST(Simulator, CountsExecutedEvents)
{
    Simulator sim;
    for (int i = 0; i < 25; ++i)
        sim.schedule(Ticks{i}, []() {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 25u);
}

TEST(Simulator, SameTickFifoStressInterleavedScheduleVariants)
{
    // Interleave relative schedule(), absolute scheduleAt(), labeled and
    // unlabeled overloads at scale; within a tick, execution must follow
    // scheduling order exactly, regardless of which overload queued the
    // event or how deep the same-tick batches get.
    constexpr int kTicks = 64;
    constexpr int kPerTick = 256;
    Simulator sim;
    std::vector<std::pair<Tick, int>> fired;
    fired.reserve(static_cast<std::size_t>(kTicks) * kPerTick);
    int seq = 0;
    // Round-robin across ticks so the heap interleaves ticks maximally.
    for (int j = 0; j < kPerTick; ++j) {
        for (int t = 0; t < kTicks; ++t) {
            const Tick when = 10 * (t + 1);
            const int id = seq++;
            auto fn = [&fired, &sim, id]() {
                fired.emplace_back(sim.now().raw(), id);
            };
            switch (id % 4) {
            case 0: sim.schedule(Ticks{when}, std::move(fn)); break;
            case 1: sim.schedule(Ticks{when}, "stress.rel", std::move(fn)); break;
            case 2: sim.scheduleAt(Ticks{when}, std::move(fn)); break;
            default: sim.scheduleAt(Ticks{when}, "stress.abs", std::move(fn));
            }
        }
    }
    sim.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(kTicks) * kPerTick);
    // Ticks are non-decreasing, and ids within one tick strictly increase
    // in scheduling order.
    std::vector<int> perTickCount(kTicks, 0);
    for (std::size_t i = 1; i < fired.size(); ++i) {
        EXPECT_GE(fired[i].first, fired[i - 1].first);
        if (fired[i].first == fired[i - 1].first)
            EXPECT_GT(fired[i].second, fired[i - 1].second) << "at " << i;
    }
    for (const auto &[when, id] : fired) {
        EXPECT_EQ(when, 10 * (id % kTicks + 1));
        ++perTickCount[id % kTicks];
    }
    for (int t = 0; t < kTicks; ++t)
        EXPECT_EQ(perTickCount[t], kPerTick);
}

TEST(Simulator, ExecutedPlusPendingIsConserved)
{
    // eventsExecuted() + pendingEvents() must equal total scheduled at
    // every quiescent point, including while same-tick batches are only
    // partially drained (events scheduling more events).
    Simulator sim;
    std::uint64_t totalScheduled = 0;
    const auto conserved = [&]() {
        return sim.eventsExecuted() + sim.pendingEvents() == totalScheduled;
    };
    for (int i = 0; i < 100; ++i) {
        sim.schedule(Ticks{i % 7}, [&]() {
            EXPECT_TRUE(conserved());
            // Fan out from inside a batch: these land on later ticks and
            // on this very tick (delay 0) while the batch is mid-drain.
            for (int k = 0; k < 3; ++k) {
                sim.schedule(Ticks{k}, [&]() { EXPECT_TRUE(conserved()); });
                ++totalScheduled;
            }
        });
        ++totalScheduled;
    }
    EXPECT_EQ(sim.pendingEvents(), 100u);
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), totalScheduled);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(totalScheduled, 400u);
}

TEST(Simulator, StopMidBatchKeepsSameTickLeftoversPending)
{
    // stop() from inside a same-tick batch must leave the rest of the
    // batch pending (counted by pendingEvents) and a later run() must
    // execute the leftovers in the original FIFO order.
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        sim.schedule(Ticks{10}, [&sim, &order, i]() {
            order.push_back(i);
            if (i == 2)
                sim.stop();
        });
    sim.schedule(Ticks{20}, [&order]() { order.push_back(100); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(sim.now().raw(), 10);
    EXPECT_EQ(sim.eventsExecuted(), 3u);
    EXPECT_EQ(sim.pendingEvents(), 6u); // 5 same-tick leftovers + tick 20
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 100}));
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, RunUntilDoesNotExecuteLeftoverBatchPastDeadline)
{
    // A stop() at tick T leaves same-tick leftovers; resuming with
    // runUntil(deadline < T) must execute none of them and must not move
    // the clock backwards.
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 4; ++i)
        sim.schedule(Ticks{100}, [&sim, &fired, i]() {
            ++fired;
            if (i == 0)
                sim.stop();
        });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now().raw(), 100);
    sim.runUntil(Ticks{50});
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now().raw(), 100);
    EXPECT_EQ(sim.pendingEvents(), 3u);
    sim.runUntil(Ticks{100});
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, LabeledOverloadsDoNotChangeSemantics)
{
    // The label is attribution-only: two simulators running the same
    // schedule, one labeled and one not, must agree on clock, order, and
    // counters.
    const auto drive = [](Simulator &sim, bool labeled,
                          std::vector<Tick> &ticks) {
        for (int i = 0; i < 32; ++i) {
            auto fn = [&ticks, &sim]() { ticks.push_back(sim.now().raw()); };
            if (labeled)
                sim.schedule(Ticks{i * 3 % 17}, "labeled", std::move(fn));
            else
                sim.schedule(Ticks{i * 3 % 17}, std::move(fn));
        }
        sim.run();
    };
    Simulator plain;
    Simulator tagged;
    std::vector<Tick> plainTicks;
    std::vector<Tick> taggedTicks;
    drive(plain, false, plainTicks);
    drive(tagged, true, taggedTicks);
    EXPECT_EQ(plainTicks, taggedTicks);
    EXPECT_EQ(plain.now().raw(), tagged.now().raw());
    EXPECT_EQ(plain.eventsExecuted(), tagged.eventsExecuted());
}

TEST(SimulatorTime, ConversionHelpers)
{
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(toMicros(kMicrosecond), 1.0);
    EXPECT_EQ(fromSeconds(1.5), 3 * kSecond / 2);
    EXPECT_EQ(fromSeconds(0.0), 0);
}
