// Simulator core: event ordering, determinism, run control.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

using namespace draid::sim;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulator, ExecutesEventAtScheduledTime)
{
    Simulator sim;
    Tick fired_at = -1;
    sim.schedule(1000, [&]() { fired_at = sim.now(); });
    sim.run();
    EXPECT_EQ(fired_at, 1000);
    EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(300, [&]() { order.push_back(3); });
    sim.schedule(100, [&]() { order.push_back(1); });
    sim.schedule(200, [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTickEventsFireFifo)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        sim.schedule(50, [&order, i]() { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingWorks)
{
    Simulator sim;
    Tick second = -1;
    sim.schedule(10, [&]() {
        sim.schedule(5, [&]() { second = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(second, 15);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime)
{
    Simulator sim;
    bool fired = false;
    sim.schedule(100, [&]() {
        sim.schedule(0, [&]() { fired = true; });
    });
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(100, [&]() { ++fired; });
    sim.schedule(200, [&]() { ++fired; });
    sim.runUntil(150);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 150);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains)
{
    Simulator sim;
    sim.runUntil(5000);
    EXPECT_EQ(sim.now(), 5000);
}

TEST(Simulator, StopHaltsExecution)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&]() {
        ++fired;
        sim.stop();
    });
    sim.schedule(20, [&]() { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run(); // resumes
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunForAdvancesRelative)
{
    Simulator sim;
    sim.runFor(100);
    sim.runFor(100);
    EXPECT_EQ(sim.now(), 200);
}

TEST(Simulator, CountsExecutedEvents)
{
    Simulator sim;
    for (int i = 0; i < 25; ++i)
        sim.schedule(i, []() {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 25u);
}

TEST(SimulatorTime, ConversionHelpers)
{
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(toMicros(kMicrosecond), 1.0);
    EXPECT_EQ(fromSeconds(1.5), 3 * kSecond / 2);
    EXPECT_EQ(fromSeconds(0.0), 0);
}
