// Write planner: mode decisions (the §9.3 regime boundaries) and plan
// structure.

#include <gtest/gtest.h>

#include "raid/write_plan.h"

using namespace draid::raid;

namespace {

constexpr std::uint32_t kKb = 1024;

} // namespace

TEST(WritePlan, PaperRegimeBoundariesRaid5)
{
    // §9.3: 8 drives, 512 KB chunks -> RMW below 1536 KB, reconstruct
    // write between 1536 KB and 3584 KB, full stripe at 3584 KB.
    Geometry g(RaidLevel::kRaid5, 512 * kKb, 8);
    WritePlanner planner(g);

    auto mode_of = [&](std::uint64_t io_kb) {
        auto plans = planner.plan(0, io_kb * kKb);
        EXPECT_EQ(plans.size(), 1u);
        return plans[0].mode;
    };

    EXPECT_EQ(mode_of(128), WriteMode::kReadModifyWrite);
    EXPECT_EQ(mode_of(512), WriteMode::kReadModifyWrite);
    EXPECT_EQ(mode_of(1024), WriteMode::kReadModifyWrite);
    EXPECT_EQ(mode_of(1536), WriteMode::kReconstructWrite);
    EXPECT_EQ(mode_of(2048), WriteMode::kReconstructWrite);
    EXPECT_EQ(mode_of(3072), WriteMode::kReconstructWrite);
    EXPECT_EQ(mode_of(3584), WriteMode::kFullStripe);
}

TEST(WritePlan, Raid6SmallWriteIsRmw)
{
    // §A.2: RAID-6 with 8 drives -> 3072 KB stripe; small writes RMW.
    Geometry g(RaidLevel::kRaid6, 512 * kKb, 8);
    WritePlanner planner(g);
    auto plans = planner.plan(0, 128 * kKb);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans[0].mode, WriteMode::kReadModifyWrite);
    auto full = planner.plan(0, 3072 * kKb);
    ASSERT_EQ(full.size(), 1u);
    EXPECT_EQ(full[0].mode, WriteMode::kFullStripe);
}

TEST(WritePlan, RmwParityWindowIsUnionOfSegments)
{
    Geometry g(RaidLevel::kRaid5, 512 * kKb, 8);
    WritePlanner planner(g);
    // Write spanning the end of chunk 0 and start of chunk 1.
    auto plans = planner.plan(400 * kKb, 256 * kKb);
    ASSERT_EQ(plans.size(), 1u);
    const auto &p = plans[0];
    EXPECT_EQ(p.mode, WriteMode::kReadModifyWrite);
    ASSERT_EQ(p.writes.size(), 2u);
    EXPECT_EQ(p.writes[0].dataIdx, 0u);
    EXPECT_EQ(p.writes[0].offset, 400u * kKb);
    EXPECT_EQ(p.writes[0].length, 112u * kKb);
    EXPECT_EQ(p.writes[1].dataIdx, 1u);
    EXPECT_EQ(p.writes[1].offset, 0u);
    EXPECT_EQ(p.writes[1].length, 144u * kKb);
    // Union covers [0, 512 KB).
    EXPECT_EQ(p.parityOffset, 0u);
    EXPECT_EQ(p.parityLength, 512u * kKb);
    EXPECT_EQ(p.waitNum, 2u);
}

TEST(WritePlan, RcwListsUntouchedChunks)
{
    Geometry g(RaidLevel::kRaid5, 512 * kKb, 8);
    WritePlanner planner(g);
    auto plans = planner.plan(0, 2048 * kKb); // chunks 0-3 written
    ASSERT_EQ(plans.size(), 1u);
    const auto &p = plans[0];
    EXPECT_EQ(p.mode, WriteMode::kReconstructWrite);
    EXPECT_EQ(p.writes.size(), 4u);
    ASSERT_EQ(p.rcwReads.size(), 3u);
    EXPECT_EQ(p.rcwReads[0], 4u);
    EXPECT_EQ(p.rcwReads[1], 5u);
    EXPECT_EQ(p.rcwReads[2], 6u);
    EXPECT_EQ(p.waitNum, 7u);
    EXPECT_EQ(p.parityOffset, 0u);
    EXPECT_EQ(p.parityLength, 512u * kKb);
}

TEST(WritePlan, FullStripeRequiresExactCoverage)
{
    Geometry g(RaidLevel::kRaid5, 512 * kKb, 8);
    WritePlanner planner(g);
    auto plans = planner.plan(0, 3584 * kKb);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans[0].mode, WriteMode::kFullStripe);
    EXPECT_EQ(plans[0].writes.size(), 7u);
    EXPECT_EQ(plans[0].waitNum, 0u);

    // One byte short: not full stripe.
    auto partial = planner.plan(0, 3584 * kKb - 1);
    ASSERT_EQ(partial.size(), 1u);
    EXPECT_NE(partial[0].mode, WriteMode::kFullStripe);
}

TEST(WritePlan, MultiStripeWriteSplits)
{
    Geometry g(RaidLevel::kRaid5, 512 * kKb, 8); // stripe = 3584 KB
    WritePlanner planner(g);
    auto plans = planner.plan(3584ull * kKb - 128 * kKb, 256 * kKb);
    ASSERT_EQ(plans.size(), 2u);
    EXPECT_EQ(plans[0].stripe, 0u);
    EXPECT_EQ(plans[1].stripe, 1u);
    EXPECT_EQ(plans[0].userBytes(), 128u * kKb);
    EXPECT_EQ(plans[1].userBytes(), 128u * kKb);
}

TEST(WritePlan, AlignedFullStripesAcrossManyStripes)
{
    Geometry g(RaidLevel::kRaid5, 64 * kKb, 5); // stripe = 256 KB
    WritePlanner planner(g);
    auto plans = planner.plan(0, 1024 * kKb); // 4 full stripes
    ASSERT_EQ(plans.size(), 4u);
    for (const auto &p : plans)
        EXPECT_EQ(p.mode, WriteMode::kFullStripe);
}

TEST(WritePlan, UserBytesSumsSegments)
{
    Geometry g(RaidLevel::kRaid5, 512 * kKb, 8);
    WritePlanner planner(g);
    for (std::uint64_t len : {4ull * kKb, 128ull * kKb, 1000ull * kKb}) {
        std::uint64_t total = 0;
        for (const auto &p : planner.plan(12345, len))
            total += p.userBytes();
        EXPECT_EQ(total, len);
    }
}
