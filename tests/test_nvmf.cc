// NVMe-oF initiator + target over the simulated fabric: data fidelity,
// completion matching, timeouts.

#include <gtest/gtest.h>

#include <memory>

#include "blockdev/nvmf_initiator.h"
#include "blockdev/nvmf_target.h"
#include "cluster/cluster.h"

using namespace draid;
using namespace draid::blockdev;
using namespace draid::cluster;

namespace {

/** Host endpoint that forwards completions to the initiator. */
class HostShim : public net::Endpoint
{
  public:
    explicit HostShim(NvmfInitiator &init) : init_(init) {}

    void
    onMessage(const net::Message &msg) override
    {
        init_.tryComplete(msg);
    }

  private:
    NvmfInitiator &init_;
};

struct Rig
{
    TestbedConfig cfg;
    Cluster cluster;
    CommandIdAllocator ids;
    NvmfInitiator initiator;
    HostShim shim;
    std::vector<std::unique_ptr<NvmfTarget>> targets;

    explicit Rig(std::uint32_t n = 2)
        : cluster(cfg, n), initiator(cluster, ids), shim(initiator)
    {
        cluster.fabric().setEndpoint(cluster.hostId(), &shim);
        for (std::uint32_t i = 0; i < n; ++i)
            targets.push_back(std::make_unique<NvmfTarget>(cluster, i));
    }
};

} // namespace

TEST(Nvmf, RemoteWriteThenReadRoundTrips)
{
    Rig rig;
    ec::Buffer data(64 * 1024);
    data.fillPattern(21);

    bool wrote = false;
    rig.initiator.writeRemote(0, 4096, data, [&](IoStatus st) {
        wrote = st == IoStatus::kOk;
    });
    rig.cluster.sim().run();
    EXPECT_TRUE(wrote);

    ec::Buffer got;
    rig.initiator.readRemote(0, 4096, 64 * 1024,
                             [&](IoStatus st, ec::Buffer d) {
                                 ASSERT_EQ(st, IoStatus::kOk);
                                 got = std::move(d);
                             });
    rig.cluster.sim().run();
    EXPECT_TRUE(got.contentEquals(data));
}

TEST(Nvmf, TargetsAreIndependent)
{
    Rig rig(2);
    ec::Buffer a(4096), b(4096);
    a.fill(0x0a);
    b.fill(0x0b);
    rig.initiator.writeRemote(0, 0, a, [](IoStatus) {});
    rig.initiator.writeRemote(1, 0, b, [](IoStatus) {});
    rig.cluster.sim().run();

    EXPECT_TRUE(rig.cluster.target(0).ssd().store().readSync(0, 4096)
                    .contentEquals(a));
    EXPECT_TRUE(rig.cluster.target(1).ssd().store().readSync(0, 4096)
                    .contentEquals(b));
}

TEST(Nvmf, ManyOutstandingOpsAllComplete)
{
    Rig rig;
    int completed = 0;
    for (int i = 0; i < 100; ++i) {
        rig.initiator.writeRemote(0, static_cast<std::uint64_t>(i) * 8192,
                                  ec::Buffer(8192),
                                  [&](IoStatus st) {
                                      if (st == IoStatus::kOk)
                                          ++completed;
                                  });
    }
    rig.cluster.sim().run();
    EXPECT_EQ(completed, 100);
    EXPECT_EQ(rig.initiator.pendingOps(), 0u);
}

TEST(Nvmf, WriteChargesHostTxAndTargetRx)
{
    Rig rig;
    const std::uint64_t host_tx0 =
        rig.cluster.host().nic().tx().bytesTransferred();
    rig.initiator.writeRemote(0, 0, ec::Buffer(1 << 20), [](IoStatus) {});
    rig.cluster.sim().run();
    const std::uint64_t host_tx =
        rig.cluster.host().nic().tx().bytesTransferred() - host_tx0;
    // Payload (1 MB) plus a command capsule.
    EXPECT_GE(host_tx, 1u << 20);
    EXPECT_LT(host_tx, (1u << 20) + 1024);
}

TEST(Nvmf, ReadChargesTargetTxAndHostRx)
{
    Rig rig;
    rig.initiator.readRemote(0, 0, 1 << 20,
                             [](IoStatus, ec::Buffer) {});
    rig.cluster.sim().run();
    EXPECT_GE(rig.cluster.target(0).nic().tx().bytesTransferred(),
              1u << 20);
    EXPECT_GE(rig.cluster.host().nic().rx().bytesTransferred(), 1u << 20);
}

TEST(Nvmf, TimeoutFiresWhenTargetDown)
{
    Rig rig;
    rig.cluster.failTarget(0);
    IoStatus status = IoStatus::kOk;
    rig.initiator.readRemote(0, 0, 4096, [&](IoStatus st, ec::Buffer) {
        status = st;
    });
    rig.cluster.sim().run();
    EXPECT_EQ(status, IoStatus::kTimedOut);
    EXPECT_EQ(rig.initiator.timeoutsFired(), 1u);
    EXPECT_EQ(rig.initiator.pendingOps(), 0u);
}

TEST(Nvmf, RecoveredTargetServesAgain)
{
    Rig rig;
    rig.cluster.failTarget(0);
    rig.initiator.readRemote(0, 0, 512, [](IoStatus, ec::Buffer) {});
    rig.cluster.sim().run();
    rig.cluster.recoverTarget(0);
    IoStatus status = IoStatus::kError;
    rig.initiator.readRemote(0, 0, 512, [&](IoStatus st, ec::Buffer) {
        status = st;
    });
    rig.cluster.sim().run();
    EXPECT_EQ(status, IoStatus::kOk);
}

TEST(Nvmf, UnknownCompletionIgnored)
{
    Rig rig;
    proto::Capsule c;
    c.opcode = proto::Opcode::kCompletion;
    c.commandId = 0xdeadull;
    EXPECT_FALSE(rig.initiator.tryComplete(
        net::Message{1, 0, c, {}}));
}
