// dRAID end-to-end data integrity in normal state: every write mode must
// leave correct data AND correct parity on the simulated drives.

#include <gtest/gtest.h>

#include <cstring>

#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using raid::RaidLevel;

namespace {

DraidOptions
smallOptions(RaidLevel level)
{
    DraidOptions o;
    o.level = level;
    o.chunkSize = 64 * 1024; // small chunks keep the tests fast
    return o;
}

} // namespace

class DraidIntegrity : public ::testing::TestWithParam<RaidLevel>
{
};

TEST_P(DraidIntegrity, ReadBackAfterSmallPartialWrite)
{
    DraidRig rig(6, smallOptions(GetParam()));
    ec::Buffer data(16 * 1024);
    data.fillPattern(1);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 4096, data));
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), 4096, 16 * 1024, &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.host().geometry(), 0));
    // RAID-5 at this width picks RMW; RAID-6 with k=4 picks RCW.
    EXPECT_GE(rig.host().counters().rmwWrites +
                  rig.host().counters().rcwWrites,
              1u);
}

TEST(DraidIntegrityRmw, Raid6WideArrayUsesRmw)
{
    // The paper's 8-drive RAID-6 (k=6) does use RMW for small writes.
    DraidOptions o;
    o.level = RaidLevel::kRaid6;
    o.chunkSize = 64 * 1024;
    DraidRig rig(8, o);
    ec::Buffer data(16 * 1024);
    data.fillPattern(11);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    EXPECT_GE(rig.host().counters().rmwWrites, 1u);
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0, 16 * 1024);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.host().geometry(), 0));
}

TEST_P(DraidIntegrity, ReadBackAfterRcwWrite)
{
    DraidRig rig(6, smallOptions(GetParam()));
    const auto &g = rig.host().geometry();
    // Cover most (but not all) of a stripe to trigger reconstruct write.
    const std::uint32_t len =
        (g.dataChunks() - 1) * g.chunkSize() + g.chunkSize() / 2;
    ec::Buffer data(len);
    data.fillPattern(2);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0, len, &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
    EXPECT_GE(rig.host().counters().rcwWrites, 1u);
}

TEST_P(DraidIntegrity, ReadBackAfterFullStripeWrite)
{
    DraidRig rig(6, smallOptions(GetParam()));
    const auto &g = rig.host().geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(3);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0,
                              static_cast<std::uint32_t>(data.size()), &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
    EXPECT_GE(rig.host().counters().fullStripeWrites, 1u);
}

TEST_P(DraidIntegrity, OverwriteUpdatesParity)
{
    DraidRig rig(6, smallOptions(GetParam()));
    const auto &g = rig.host().geometry();
    ec::Buffer first(32 * 1024), second(32 * 1024);
    first.fillPattern(4);
    second.fillPattern(5);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, first));
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, second));
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0, 32 * 1024);
    EXPECT_TRUE(got.contentEquals(second));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
}

TEST_P(DraidIntegrity, MultiStripeWrite)
{
    DraidRig rig(6, smallOptions(GetParam()));
    const auto &g = rig.host().geometry();
    const std::uint64_t offset = g.stripeDataSize() - 20000;
    const std::uint32_t len = 50000; // spans two stripes
    ec::Buffer data(len);
    data.fillPattern(6);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), offset, data));
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), offset, len, &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 1));
}

TEST_P(DraidIntegrity, RandomWriteStormLeavesConsistentParity)
{
    DraidRig rig(6, smallOptions(GetParam()));
    const auto &g = rig.host().geometry();
    sim::Rng rng(99);
    const std::uint64_t span = 8 * g.stripeDataSize();

    // A reference model mirrors every write.
    std::vector<std::uint8_t> model(span, 0);
    for (int i = 0; i < 60; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(1024 * (1 + rng.nextBounded(96)));
        const std::uint64_t off = rng.nextBounded(span - len);
        ec::Buffer data(len);
        data.fillPattern(1000 + i);
        std::memcpy(model.data() + off, data.data(), len);
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
    }

    bool ok = false;
    ec::Buffer all = readSync(rig.sim(), rig.host(), 0,
                              static_cast<std::uint32_t>(span), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(all.data(), model.data(), span), 0);
    for (std::uint64_t s = 0; s < 8; ++s)
        EXPECT_TRUE(scrubStripe(*rig.cluster, g, s)) << "stripe " << s;
}

TEST_P(DraidIntegrity, ConcurrentWritesToSameStripeSerialize)
{
    DraidRig rig(6, smallOptions(GetParam()));
    int completed = 0;
    for (int i = 0; i < 8; ++i) {
        ec::Buffer data(8192);
        data.fillPattern(i);
        rig.host().write(0, std::move(data), [&](blockdev::IoStatus st) {
            EXPECT_EQ(st, blockdev::IoStatus::kOk);
            ++completed;
        });
    }
    rig.sim().run();
    EXPECT_EQ(completed, 8);
    EXPECT_GE(rig.host().stripeLocks().contendedAcquires(), 1u);
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.host().geometry(), 0));
}

TEST_P(DraidIntegrity, ConcurrentWritesToDistinctStripesProceed)
{
    DraidRig rig(6, smallOptions(GetParam()));
    const auto &g = rig.host().geometry();
    int completed = 0;
    for (int i = 0; i < 4; ++i) {
        ec::Buffer data(4096);
        data.fillPattern(50 + i);
        rig.host().write(static_cast<std::uint64_t>(i) *
                             g.stripeDataSize(),
                         std::move(data), [&](blockdev::IoStatus) {
                             ++completed;
                         });
    }
    rig.sim().run();
    EXPECT_EQ(completed, 4);
    EXPECT_EQ(rig.host().stripeLocks().contendedAcquires(), 0u);
}

TEST_P(DraidIntegrity, UnwrittenRegionsReadZero)
{
    DraidRig rig(6, smallOptions(GetParam()));
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), 1 << 20, 4096, &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(ec::Buffer(4096)));
}

INSTANTIATE_TEST_SUITE_P(Levels, DraidIntegrity,
                         ::testing::Values(RaidLevel::kRaid5,
                                           RaidLevel::kRaid6));

TEST(DraidIntegrityWidths, WideArrayRoundTrip)
{
    DraidOptions o;
    o.level = RaidLevel::kRaid5;
    o.chunkSize = 32 * 1024;
    DraidRig rig(12, o);
    const auto &g = rig.host().geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(7);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0,
                              static_cast<std::uint32_t>(data.size()));
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
}

TEST(DraidIntegrityWidths, SpareTargetsUnusedByNormalIo)
{
    DraidOptions o;
    o.level = RaidLevel::kRaid5;
    o.chunkSize = 32 * 1024;
    // 8 targets, width 6: targets 6 and 7 are spares.
    DraidRig rig(8, o, 6);
    EXPECT_EQ(rig.host().geometry().width(), 6u);
    ec::Buffer data(64 * 1024);
    data.fillPattern(8);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    EXPECT_EQ(rig.cluster->target(6).ssd().writesCompleted(), 0u);
    EXPECT_EQ(rig.cluster->target(7).ssd().writesCompleted(), 0u);
}
