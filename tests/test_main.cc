/**
 * @file
 * Test runner: gtest's default main plus a listener that dumps every live
 * flight recorder when an assertion fires, so a failing integration test
 * comes with a post-mortem of the last simulated events.
 */

#include <gtest/gtest.h>

#include <iostream>

#include "telemetry/flight_recorder.h"

namespace {

/** On the first failed assertion of a test, dump the flight recorders. */
class FlightRecorderDumper : public ::testing::EmptyTestEventListener
{
    void
    OnTestPartResult(const ::testing::TestPartResult &result) override
    {
        if (!result.failed() || dumped_)
            return;
        dumped_ = true;
        std::cerr << "\n=== FLIGHT RECORDER post-mortem "
                     "(test assertion failed) ===\n";
        draid::telemetry::FlightRecorder::dumpAll(std::cerr);
        std::cerr.flush();
    }

    void
    OnTestStart(const ::testing::TestInfo &) override
    {
        dumped_ = false;
    }

    bool dumped_ = false;
};

} // namespace

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new FlightRecorderDumper); // gtest takes ownership
    draid::telemetry::FlightRecorder::installCrashHandlers();
    return RUN_ALL_TESTS();
}
