// RAID-5 codec: parity generation, recovery, delta updates.

#include <gtest/gtest.h>

#include <vector>

#include "ec/raid5_codec.h"
#include "ec/xor_kernel.h"

using namespace draid::ec;

namespace {

std::vector<Buffer>
makeData(std::size_t k, std::size_t len, std::uint64_t seed)
{
    std::vector<Buffer> data;
    for (std::size_t i = 0; i < k; ++i) {
        Buffer b(len);
        b.fillPattern(seed + i);
        data.push_back(b);
    }
    return data;
}

} // namespace

class Raid5Widths : public ::testing::TestWithParam<int>
{
};

TEST_P(Raid5Widths, AnyChunkRecoverableFromSurvivors)
{
    const int k = GetParam();
    auto data = makeData(k, 2048, 77);
    Buffer p = Raid5Codec::computeParity(data);

    for (int lost = 0; lost < k; ++lost) {
        std::vector<Buffer> survivors;
        for (int i = 0; i < k; ++i) {
            if (i != lost)
                survivors.push_back(data[i]);
        }
        survivors.push_back(p);
        Buffer rec = Raid5Codec::recover(survivors);
        EXPECT_TRUE(rec.contentEquals(data[lost])) << "lost=" << lost;
    }
}

TEST_P(Raid5Widths, ParityItselfRecoverable)
{
    const int k = GetParam();
    auto data = makeData(k, 1024, 99);
    Buffer p = Raid5Codec::computeParity(data);
    Buffer p2 = Raid5Codec::recover(data);
    EXPECT_TRUE(p2.contentEquals(p));
}

INSTANTIATE_TEST_SUITE_P(Widths, Raid5Widths,
                         ::testing::Values(2, 3, 5, 7, 9, 17));

TEST(Raid5Codec, DeltaUpdateEqualsRecompute)
{
    auto data = makeData(6, 4096, 3);
    Buffer p = Raid5Codec::computeParity(data);

    // Rewrite chunk 2.
    Buffer updated(4096);
    updated.fillPattern(1234);
    Buffer delta = Raid5Codec::delta(data[2], updated);
    xorInto(p, delta);

    data[2] = updated;
    Buffer fresh = Raid5Codec::computeParity(data);
    EXPECT_TRUE(p.contentEquals(fresh));
}

TEST(Raid5Codec, MultipleDeltasAnyOrder)
{
    auto data = makeData(5, 512, 9);
    Buffer p = Raid5Codec::computeParity(data);

    Buffer n1(512), n3(512);
    n1.fillPattern(100);
    n3.fillPattern(300);
    Buffer d1 = Raid5Codec::delta(data[1], n1);
    Buffer d3 = Raid5Codec::delta(data[3], n3);

    // Apply in the "wrong" order — XOR commutes.
    xorInto(p, d3);
    xorInto(p, d1);

    data[1] = n1;
    data[3] = n3;
    EXPECT_TRUE(p.contentEquals(Raid5Codec::computeParity(data)));
}

TEST(Raid5Codec, SingleChunkParityIsCopy)
{
    auto data = makeData(1, 64, 5);
    Buffer p = Raid5Codec::computeParity(data);
    EXPECT_TRUE(p.contentEquals(data[0]));
}
