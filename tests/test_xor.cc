// XOR kernels: correctness across sizes and alignments.

#include <gtest/gtest.h>

#include <vector>

#include "ec/buffer.h"
#include "ec/xor_kernel.h"
#include "sim/rng.h"

using namespace draid::ec;

class XorSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(XorSizes, XorIntoMatchesReference)
{
    const std::size_t n = GetParam();
    draid::sim::Rng rng(n + 1);
    std::vector<std::uint8_t> a(n), b(n), ref(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<std::uint8_t>(rng.next());
        b[i] = static_cast<std::uint8_t>(rng.next());
        ref[i] = a[i] ^ b[i];
    }
    xorInto(a.data(), b.data(), n);
    EXPECT_EQ(a, ref);
}

TEST_P(XorSizes, XorBlocksMatchesReference)
{
    const std::size_t n = GetParam();
    draid::sim::Rng rng(n + 2);
    std::vector<std::uint8_t> a(n), b(n), out(n, 0xcc), ref(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<std::uint8_t>(rng.next());
        b[i] = static_cast<std::uint8_t>(rng.next());
        ref[i] = a[i] ^ b[i];
    }
    xorBlocks(out.data(), a.data(), b.data(), n);
    EXPECT_EQ(out, ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, XorSizes,
                         ::testing::Values(0, 1, 7, 31, 32, 33, 63, 64, 100,
                                           4096, 65537));

TEST(Xor, SelfInverse)
{
    Buffer a(1024), b(1024);
    a.fillPattern(1);
    b.fillPattern(2);
    Buffer x = xorOf(a, b);
    Buffer back = xorOf(x, b);
    EXPECT_TRUE(back.contentEquals(a));
}

TEST(Xor, Commutative)
{
    Buffer a(512), b(512);
    a.fillPattern(3);
    b.fillPattern(4);
    EXPECT_TRUE(xorOf(a, b).contentEquals(xorOf(b, a)));
}

TEST(Xor, Associative)
{
    Buffer a(512), b(512), c(512);
    a.fillPattern(5);
    b.fillPattern(6);
    c.fillPattern(7);
    EXPECT_TRUE(
        xorOf(xorOf(a, b), c).contentEquals(xorOf(a, xorOf(b, c))));
}

TEST(Xor, ZeroIsIdentity)
{
    Buffer a(128), z(128);
    a.fillPattern(8);
    EXPECT_TRUE(xorOf(a, z).contentEquals(a));
}

TEST(Xor, BufferInPlace)
{
    Buffer a(64), b(64);
    a.fillPattern(9);
    b.fillPattern(10);
    Buffer expect = xorOf(a, b);
    xorInto(a, b);
    EXPECT_TRUE(a.contentEquals(expect));
}
