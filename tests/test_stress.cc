// Deterministic stress: long interleaved sequences of reads, writes,
// failure transitions, rebuilds and scrubs against a reference model.

#include <gtest/gtest.h>

#include <cstring>

#include "core/reconstruct.h"
#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using raid::RaidLevel;

namespace {

struct Model
{
    std::vector<std::uint8_t> bytes;

    explicit Model(std::uint64_t n) : bytes(n, 0) {}

    void
    write(std::uint64_t off, const ec::Buffer &data)
    {
        std::memcpy(bytes.data() + off, data.data(), data.size());
    }

    bool
    matches(std::uint64_t off, const ec::Buffer &data) const
    {
        return std::memcmp(bytes.data() + off, data.data(),
                           data.size()) == 0;
    }
};

} // namespace

class DraidStress : public ::testing::TestWithParam<RaidLevel>
{
};

TEST_P(DraidStress, LongMixedSequenceWithFailureLifecycle)
{
    DraidOptions o;
    o.level = GetParam();
    o.chunkSize = 32 * 1024;
    DraidRig rig(7, o, 6); // member 0-5, spare 6
    auto &host = rig.host();
    const auto &g = host.geometry();

    const std::uint64_t stripes = 12;
    const std::uint64_t span = stripes * g.stripeDataSize();
    Model model(span);
    sim::Rng rng(4242);

    // Phase 1: healthy churn.
    for (int i = 0; i < 60; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(512 * (1 + rng.nextBounded(128)));
        const std::uint64_t off = rng.nextBounded(span - len);
        if (rng.nextBool(0.6)) {
            ec::Buffer data(len);
            data.fillPattern(i);
            model.write(off, data);
            ASSERT_TRUE(writeSync(rig.sim(), host, off, data));
        } else {
            bool ok = false;
            ec::Buffer got = readSync(rig.sim(), host, off, len, &ok);
            ASSERT_TRUE(ok);
            ASSERT_TRUE(model.matches(off, got)) << "op " << i;
        }
    }

    // Phase 2: lose a drive, keep serving.
    host.markFailed(4);
    for (int i = 0; i < 40; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(512 * (1 + rng.nextBounded(64)));
        const std::uint64_t off = rng.nextBounded(span - len);
        if (rng.nextBool(0.5)) {
            ec::Buffer data(len);
            data.fillPattern(1000 + i);
            model.write(off, data);
            ASSERT_TRUE(writeSync(rig.sim(), host, off, data));
        } else {
            bool ok = false;
            ec::Buffer got = readSync(rig.sim(), host, off, len, &ok);
            ASSERT_TRUE(ok);
            ASSERT_TRUE(model.matches(off, got)) << "degraded op " << i;
        }
    }

    // Phase 3: rebuild onto the spare and swap it in.
    core::RebuildJob job(
        rig.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            host.reconstructChunk(stripe, 6, std::move(done));
        },
        stripes, g.chunkSize());
    bool rebuilt = false;
    job.start([&](bool ok) {
        rebuilt = ok;
        rig.sim().stop();
    });
    rig.sim().run();
    ASSERT_TRUE(rebuilt);
    host.replaceDevice(4, 6);
    ASSERT_FALSE(host.isDegraded());

    // Phase 4: healthy churn on the swapped array + final verification.
    for (int i = 0; i < 40; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(512 * (1 + rng.nextBounded(64)));
        const std::uint64_t off = rng.nextBounded(span - len);
        ec::Buffer data(len);
        data.fillPattern(2000 + i);
        model.write(off, data);
        ASSERT_TRUE(writeSync(rig.sim(), host, off, data));
    }
    bool ok = false;
    ec::Buffer all = readSync(rig.sim(), host, 0,
                              static_cast<std::uint32_t>(span), &ok);
    ASSERT_TRUE(ok);
    ASSERT_TRUE(model.matches(0, all));

    // Every stripe scrubs clean after the whole lifecycle.
    for (std::uint64_t s = 0; s < stripes; ++s) {
        core::DraidHost::ScrubResult r;
        bool scrub_done = false;
        host.scrubStripe(s, false, [&](core::DraidHost::ScrubResult res) {
            r = res;
            scrub_done = true;
            rig.sim().stop();
        });
        while (!scrub_done && rig.sim().pendingEvents() > 0)
            rig.sim().run();
        EXPECT_TRUE(r.ok && r.consistent) << "stripe " << s;
    }
}

TEST_P(DraidStress, HighConcurrencyBurst)
{
    DraidOptions o;
    o.level = GetParam();
    o.chunkSize = 32 * 1024;
    DraidRig rig(6, o);
    auto &host = rig.host();
    const std::uint64_t span = 8 * host.geometry().stripeDataSize();

    // 200 operations in flight at once, all completing correctly.
    sim::Rng rng(7);
    int completed = 0, failed = 0;
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(4096 * (1 + rng.nextBounded(8)));
        const std::uint64_t off = rng.nextBounded(span - len);
        if (i % 3 == 0) {
            host.read(off, len,
                      [&](blockdev::IoStatus st, ec::Buffer) {
                          ++completed;
                          failed += st != blockdev::IoStatus::kOk;
                      });
        } else {
            ec::Buffer data(len);
            data.fillPattern(i);
            host.write(off, std::move(data), [&](blockdev::IoStatus st) {
                ++completed;
                failed += st != blockdev::IoStatus::kOk;
            });
        }
    }
    rig.sim().run();
    EXPECT_EQ(completed, 200);
    EXPECT_EQ(failed, 0);
    for (std::uint64_t s = 0; s < 8; ++s)
        EXPECT_TRUE(scrubStripe(*rig.cluster, host.geometry(), s));
}

INSTANTIATE_TEST_SUITE_P(Levels, DraidStress,
                         ::testing::Values(RaidLevel::kRaid5,
                                           RaidLevel::kRaid6));
