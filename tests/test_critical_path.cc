/**
 * @file
 * Critical-path analyzer and flight recorder tests: exact hand-computable
 * breakdowns, the breakdown-sums-to-latency invariant on real traffic, the
 * 4+1 bottleneck verdict, ring wraparound, post-mortem dumps, and the
 * determinism guard with the always-on recorder.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "draid_test_util.h"
#include "telemetry/critical_path.h"
#include "telemetry/flight_recorder.h"

namespace draid {
namespace {

using telemetry::CriticalPathReport;
using telemetry::FlightRecorder;
using telemetry::Phase;
using telemetry::TraceSpan;
using testutil::DraidRig;
using testutil::readSync;
using testutil::writeSync;

core::DraidOptions
fourPlusOneOptions()
{
    core::DraidOptions o;
    o.chunkSize = 64 * 1024;
    return o;
}

TraceSpan
span(std::uint64_t id, sim::NodeId node, const char *lane,
     const char *name, sim::Tick start, sim::Tick end)
{
    TraceSpan s;
    s.traceId = id;
    s.node = node;
    s.lane = lane;
    s.name = name;
    s.start = start;
    s.end = end;
    return s;
}

sim::Tick
phaseSum(const telemetry::OpBreakdown &op)
{
    sim::Tick sum = 0;
    for (sim::Tick t : op.phaseTicks)
        sum += t;
    return sum;
}

// ---------------------------------------------------------------------------
// Hand-built breakdowns (exact, hand-computable phase times)
// ---------------------------------------------------------------------------

TEST(CriticalPath, HandBuiltDegradedReadBreakdownIsExact)
{
    // The span shape of a stylized 4+1 degraded read, with round numbers:
    // host command, request out, fabric hop, survivor SSD reads, reducer
    // XOR, reduced data back — then an uncovered completion tail.
    std::vector<TraceSpan> spans;
    spans.push_back(span(7, 0, "op", "draid.read", 0, 1000));
    spans.push_back(span(7, 0, "cpu", "host.cmd", 0, 100));
    spans.push_back(span(7, 0, "nic.tx", "xfer", 100, 300));
    spans.push_back(span(7, 0, "fabric", "fabric.prop", 300, 350));
    spans.push_back(span(7, 2, "ssd", "ssd.read", 350, 600));
    spans.push_back(span(7, 2, "cpu", "reduce.xor", 600, 700));
    spans.push_back(span(7, 0, "nic.rx", "xfer", 700, 900));

    const CriticalPathReport report =
        telemetry::analyzeCriticalPath(spans);
    ASSERT_EQ(report.ops.size(), 1u);
    const auto &op = report.ops[0];

    EXPECT_EQ(op.phase(Phase::kCpu), 100);
    EXPECT_EQ(op.phase(Phase::kNic), 400);
    EXPECT_EQ(op.phase(Phase::kFabric), 50);
    EXPECT_EQ(op.phase(Phase::kSsd), 250);
    EXPECT_EQ(op.phase(Phase::kReduce), 100);
    EXPECT_EQ(op.phase(Phase::kLockWait), 0);
    EXPECT_EQ(op.phase(Phase::kQueue), 100); // the [900, 1000) tail
    EXPECT_EQ(phaseSum(op), op.latency());

    // All seven resource spans are disjoint: the longest chain is their
    // total, and it is a strict lower bound on the latency.
    EXPECT_EQ(op.chainTicks, 900);
    EXPECT_LE(op.chainTicks, op.latency());
}

TEST(CriticalPath, OverlapChargesHighestPriorityPhaseOnce)
{
    // An SSD read overlapping a NIC transfer: the overlap [50, 100) is
    // charged once, to the SSD (higher priority), never double-counted.
    std::vector<TraceSpan> spans;
    spans.push_back(span(1, 0, "op", "draid.read", 0, 200));
    spans.push_back(span(1, 1, "ssd", "ssd.read", 0, 100));
    spans.push_back(span(1, 0, "nic.rx", "xfer", 50, 150));

    const CriticalPathReport report =
        telemetry::analyzeCriticalPath(spans);
    ASSERT_EQ(report.ops.size(), 1u);
    const auto &op = report.ops[0];
    EXPECT_EQ(op.phase(Phase::kSsd), 100);
    EXPECT_EQ(op.phase(Phase::kNic), 50);
    EXPECT_EQ(op.phase(Phase::kQueue), 50);
    EXPECT_EQ(phaseSum(op), 200);

    // The two spans overlap, so the chain picks only one of them.
    EXPECT_EQ(op.chainTicks, 100);
}

TEST(CriticalPath, SpansOutsideTheRootWindowAreClamped)
{
    // A resource span leaking past both ends of the op (e.g. a shared NIC
    // transfer of a neighbouring op) only counts inside the op's window.
    std::vector<TraceSpan> spans;
    spans.push_back(span(3, 0, "op", "draid.write", 100, 200));
    spans.push_back(span(3, 1, "ssd", "ssd.write", 50, 250));

    const CriticalPathReport report =
        telemetry::analyzeCriticalPath(spans);
    ASSERT_EQ(report.ops.size(), 1u);
    EXPECT_EQ(report.ops[0].phase(Phase::kSsd), 100);
    EXPECT_EQ(report.ops[0].phase(Phase::kQueue), 0);
    EXPECT_EQ(phaseSum(report.ops[0]), 100);
}

TEST(CriticalPath, RootlessSpansFeedResourcesButNotOps)
{
    // Rebuild-style traffic with no "op" root still counts toward busy
    // fractions (it competes for the same NICs and SSDs).
    std::vector<TraceSpan> spans;
    spans.push_back(span(9, 2, "ssd", "ssd.read", 0, 600));
    spans.push_back(span(9, 2, "nic.tx", "xfer", 600, 800));

    const CriticalPathReport report =
        telemetry::analyzeCriticalPath(spans);
    EXPECT_TRUE(report.ops.empty());
    ASSERT_TRUE(report.hasVerdict());
    EXPECT_EQ(report.bottleneck().lane, "ssd");
    EXPECT_EQ(report.bottleneck().node, 2u);
    EXPECT_EQ(report.bottleneck().busyTicks, 600);
}

// ---------------------------------------------------------------------------
// Real traffic: the partition is exact for every op
// ---------------------------------------------------------------------------

TEST(CriticalPathE2E, BreakdownSumsToLatencyForEveryOp)
{
    DraidRig rig(6, fourPlusOneOptions());
    rig.cluster->tracer().setEnabled(true);

    // Mixed traffic: serial writes and reads, a burst of concurrent
    // same-stripe writes (stripe-lock waits), and a degraded read.
    ec::Buffer big(192 * 1024);
    big.fillPattern(1);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, big));
    ec::Buffer small(16 * 1024);
    small.fillPattern(2);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 128 * 1024, small));
    bool ok = false;
    readSync(rig.sim(), rig.host(), 32 * 1024, 64 * 1024, &ok);
    ASSERT_TRUE(ok);

    int outstanding = 0;
    for (int i = 0; i < 4; ++i) {
        ec::Buffer b(16 * 1024);
        b.fillPattern(static_cast<std::uint8_t>(10 + i));
        ++outstanding;
        rig.host().write(static_cast<std::uint64_t>(i) * 16 * 1024,
                         std::move(b), [&](blockdev::IoStatus st) {
                             EXPECT_EQ(st, blockdev::IoStatus::kOk);
                             if (--outstanding == 0)
                                 rig.sim().stop();
                         });
    }
    while (outstanding > 0 && rig.sim().pendingEvents() > 0)
        rig.sim().run();
    ASSERT_EQ(outstanding, 0);

    rig.host().markFailed(rig.host().geometry().dataDevice(0, 0));
    readSync(rig.sim(), rig.host(), 0, 16 * 1024, &ok);
    ASSERT_TRUE(ok);

    const CriticalPathReport report = telemetry::analyzeCriticalPath(
        rig.cluster->tracer().spans());
    ASSERT_GE(report.ops.size(), 7u);
    for (const auto &op : report.ops) {
        EXPECT_EQ(phaseSum(op), op.latency())
            << op.name << " trace " << op.traceId;
        EXPECT_LE(op.chainTicks, op.latency()) << op.name;
        EXPECT_GT(op.chainTicks, 0) << op.name;
    }

    // Sanity on attribution: real traffic spends time on SSDs and NICs,
    // and the concurrent burst must have produced lock waits.
    EXPECT_GT(report.phase(Phase::kSsd).totalTicks, 0u);
    EXPECT_GT(report.phase(Phase::kNic).totalTicks, 0u);
    EXPECT_GT(report.phase(Phase::kLockWait).totalTicks, 0u);
    EXPECT_GT(report.phase(Phase::kReduce).totalTicks, 0u); // degraded read
}

// ---------------------------------------------------------------------------
// Bottleneck verdict: 4+1 RMW writes bound by the parity server
// ---------------------------------------------------------------------------

TEST(CriticalPathE2E, SequentialRmwWritesBottleneckOnParityServer)
{
    // Width-5 rig: a 4+1 RAID-5 array. 16 KB sequential writes confined
    // to stripe 0 are all read-modify-writes through stripe 0's fixed
    // parity device, whose SSD does ~4x the work of any data SSD (every
    // op reads+writes parity; each data SSD sees a quarter of the ops).
    DraidRig rig(5, fourPlusOneOptions());
    rig.cluster->tracer().setEnabled(true);

    const auto &g = rig.host().geometry();
    const std::uint64_t stripe_data = g.stripeDataSize(); // 256 KB
    for (int i = 0; i < 40; ++i) {
        ec::Buffer b(16 * 1024);
        b.fillPattern(static_cast<std::uint8_t>(i));
        const std::uint64_t off =
            (static_cast<std::uint64_t>(i) * 16 * 1024) % stripe_data;
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, b));
    }

    const CriticalPathReport report = telemetry::analyzeCriticalPath(
        rig.cluster->tracer().spans());
    ASSERT_TRUE(report.hasVerdict());
    const sim::NodeId parity_node =
        rig.cluster->targetNodeId(g.parityDevice(0));
    EXPECT_EQ(report.bottleneck().node, parity_node);
    // The parity server's SSD (or, for tiny chunks, its NIC) bounds the
    // run; with 16 KB RMWs the SSD channel dominates.
    EXPECT_EQ(report.bottleneck().lane, "ssd");
    EXPECT_GT(report.bottleneck().busyFraction, 0.0);
}

// ---------------------------------------------------------------------------
// Flight recorder: ring behaviour and post-mortems
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingWrapAroundKeepsNewestRecords)
{
    FlightRecorder fr(8);
    EXPECT_EQ(fr.capacity(), 8u);
    for (std::uint64_t i = 0; i < 20; ++i)
        fr.note("evt", i, 3, static_cast<sim::Tick>(100 * i));

    EXPECT_EQ(fr.size(), 8u);
    EXPECT_EQ(fr.totalRecorded(), 20u);
    const auto records = fr.snapshot();
    ASSERT_EQ(records.size(), 8u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].traceId, 12 + i); // oldest surviving first
        EXPECT_EQ(records[i].start,
                  static_cast<sim::Tick>(100 * (12 + i)));
        EXPECT_STREQ(records[i].lane, "event");
    }
}

TEST(FlightRecorder, MirrorsSpansEvenWhenExportTracingIsDark)
{
    telemetry::Tracer tracer;
    FlightRecorder fr(16);
    tracer.bindFlightRecorder(&fr);

    // Export tracing off, recorder on: recording sites stay active...
    EXPECT_FALSE(tracer.enabled());
    EXPECT_TRUE(tracer.active());
    EXPECT_NE(tracer.mint(), 0u);

    tracer.recordSpan(span(1, 2, "ssd", "ssd.write", 10, 20));
    EXPECT_EQ(fr.size(), 1u);
    // ...but nothing is retained for export.
    EXPECT_TRUE(tracer.spans().empty());

    // Disabling the recorder turns the whole pipeline dark.
    fr.setEnabled(false);
    EXPECT_FALSE(tracer.active());
    EXPECT_EQ(tracer.mint(), 0u);
    tracer.recordSpan(span(2, 2, "ssd", "ssd.write", 30, 40));
    EXPECT_EQ(fr.size(), 1u);
}

TEST(FlightRecorder, DumpListsRecentRecords)
{
    FlightRecorder fr(16);
    fr.record(span(42, 1, "nic.tx", "xfer", 1000, 2000));
    fr.note("op.timeout", 42, 0, 5000);

    std::ostringstream os;
    fr.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("2 records held"), std::string::npos);
    EXPECT_NE(text.find("xfer"), std::string::npos);
    EXPECT_NE(text.find("op.timeout"), std::string::npos);
    EXPECT_NE(text.find("trace=42"), std::string::npos);

    std::ostringstream chrome;
    fr.writeChromeTrace(chrome);
    EXPECT_NE(chrome.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.str().find("\"xfer\""), std::string::npos);
}

TEST(FlightRecorder, NoteAbnormalDumpsAtMostThreeTimes)
{
    FlightRecorder fr(16);
    fr.setDumpOnAbnormal(true);
    testing::internal::CaptureStderr();
    for (int i = 0; i < 5; ++i)
        fr.noteAbnormal("op.timeout", static_cast<std::uint64_t>(i), 0,
                        1000 * i);
    const std::string err = testing::internal::GetCapturedStderr();
    std::size_t dumps = 0;
    for (std::size_t pos = err.find("post-mortem"); pos != std::string::npos;
         pos = err.find("post-mortem", pos + 1))
        ++dumps;
    EXPECT_EQ(dumps, 3u);
    EXPECT_EQ(fr.totalRecorded(), 5u); // records always kept
}

TEST(FlightRecorderDeathTest, AbortDumpsPostMortem)
{
    // The crash handlers (installed by the test main) must dump the ring
    // on abort. EXPECT_DEATH matches against the child's stderr.
    EXPECT_DEATH(
        {
            FlightRecorder fr(16);
            fr.note("about.to.abort", 7, 0, 123);
            std::abort();
        },
        "FLIGHT RECORDER post-mortem.*about\\.to\\.abort");
}

// ---------------------------------------------------------------------------
// Determinism: analyzer + always-on recorder vs fully dark
// ---------------------------------------------------------------------------

TEST(CriticalPathDeterminism, AnalyzerAndRecorderDoNotPerturbTicks)
{
    // Identical scenario twice: fully dark (recorder disabled, so even
    // trace-id minting is off) vs instrumented (always-on recorder,
    // export tracing, and an analyzer pass). Completion ticks must match
    // exactly — the whole pipeline is observe-only.
    auto run = [](bool instrumented) {
        DraidRig rig(6, fourPlusOneOptions());
        if (instrumented)
            rig.cluster->tracer().setEnabled(true);
        else
            rig.cluster->telemetry().flightRecorder().setEnabled(false);

        std::vector<sim::Tick> ticks;
        ec::Buffer big(192 * 1024);
        big.fillPattern(6);
        EXPECT_TRUE(writeSync(rig.sim(), rig.host(), 8192, big));
        ticks.push_back(rig.sim().now().raw());

        ec::Buffer small(16 * 1024);
        small.fillPattern(7);
        EXPECT_TRUE(writeSync(rig.sim(), rig.host(), 0, small));
        ticks.push_back(rig.sim().now().raw());

        bool ok = false;
        readSync(rig.sim(), rig.host(), 4096, 64 * 1024, &ok);
        EXPECT_TRUE(ok);
        ticks.push_back(rig.sim().now().raw());

        if (instrumented) {
            // The analyzer is a pure function of recorded spans; running
            // it cannot touch the simulator (it has no reference to it).
            const CriticalPathReport report =
                telemetry::analyzeCriticalPath(
                    rig.cluster->tracer().spans());
            EXPECT_FALSE(report.ops.empty());
            for (const auto &op : report.ops)
                EXPECT_EQ(phaseSum(op), op.latency());
            EXPECT_GT(rig.cluster->telemetry()
                          .flightRecorder()
                          .totalRecorded(),
                      0u);
        }
        return ticks;
    };

    EXPECT_EQ(run(false), run(true));
}

} // namespace
} // namespace draid
