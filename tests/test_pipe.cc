// Pipe: bandwidth serialization, latency, utilization accounting.

#include <gtest/gtest.h>

#include "sim/cpu.h"
#include "sim/pipe.h"
#include "sim/simulator.h"

using namespace draid::sim;

TEST(Pipe, SingleTransferTakesBytesOverRate)
{
    Simulator sim;
    Pipe pipe(sim, 1e9); // 1 GB/s
    Tick done = -1;
    pipe.transfer(1000, [&]() { done = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(done, 1000); // 1000 B at 1 B/ns
}

TEST(Pipe, LatencyAddsToCompletionNotOccupancy)
{
    Simulator sim;
    Pipe pipe(sim, 1e9, /*latency=*/Ticks{500});
    Tick first = -1, second = -1;
    pipe.transfer(1000, [&]() { first = sim.now().raw(); });
    pipe.transfer(1000, [&]() { second = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(first, 1500);  // 1000 service + 500 latency
    EXPECT_EQ(second, 2500); // starts at 1000, ends 2000, +500
}

TEST(Pipe, BackToBackTransfersSerialize)
{
    Simulator sim;
    Pipe pipe(sim, 1e9);
    Tick t1 = -1, t2 = -1;
    pipe.transfer(1000, [&]() { t1 = sim.now().raw(); });
    pipe.transfer(2000, [&]() { t2 = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(t1, 1000);
    EXPECT_EQ(t2, 3000);
}

TEST(Pipe, PerOpOverheadCharged)
{
    Simulator sim;
    Pipe pipe(sim, 1e9, Ticks::zero(), /*per_op=*/Ticks{100});
    Tick t = -1;
    pipe.transfer(1000, [&]() { t = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(t, 1100);
}

TEST(Pipe, ThroughputMatchesRateUnderLoad)
{
    Simulator sim;
    Pipe pipe(sim, 2e9); // 2 B/ns
    int completed = 0;
    for (int i = 0; i < 100; ++i)
        pipe.transfer(1 << 20, [&]() { ++completed; });
    sim.run();
    EXPECT_EQ(completed, 100);
    const double seconds = toSeconds(sim.now());
    const double rate = 100.0 * (1 << 20) / seconds;
    EXPECT_NEAR(rate, 2e9, 2e7); // within 1%
}

TEST(Pipe, CountsBytesAndOps)
{
    Simulator sim;
    Pipe pipe(sim, 1e9);
    pipe.transfer(100, []() {});
    pipe.transfer(200, []() {});
    sim.run();
    EXPECT_EQ(pipe.bytesTransferred(), 300u);
    EXPECT_EQ(pipe.opsTransferred(), 2u);
}

TEST(Pipe, UtilizationReflectsBusyFraction)
{
    Simulator sim;
    Pipe pipe(sim, 1e9);
    pipe.transfer(1000, []() {});
    sim.runUntil(Ticks{2000}); // busy for 1000 of 2000 ticks
    EXPECT_NEAR(pipe.utilization(Ticks::zero()), 0.5, 1e-9);
}

TEST(Pipe, SetRateAffectsFutureTransfers)
{
    Simulator sim;
    Pipe pipe(sim, 1e9);
    Tick t1 = -1, t2 = -1;
    pipe.transfer(1000, [&]() { t1 = sim.now().raw(); });
    sim.run();
    pipe.setRate(2e9);
    pipe.transfer(1000, [&]() { t2 = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(t1, 1000);
    EXPECT_EQ(t2, 1500);
}

TEST(CpuCore, SerializesWork)
{
    Simulator sim;
    CpuCore cpu(sim);
    Tick t1 = -1, t2 = -1;
    cpu.execute(Ticks{100}, [&]() { t1 = sim.now().raw(); });
    cpu.execute(Ticks{100}, [&]() { t2 = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(t1, 100);
    EXPECT_EQ(t2, 200);
}

TEST(CpuCore, ExecuteBytesChargesAtRate)
{
    Simulator sim;
    CpuCore cpu(sim);
    Tick t = -1;
    cpu.executeBytes(1000, 1e9, Ticks{50}, [&]() { t = sim.now().raw(); });
    sim.run();
    EXPECT_EQ(t, 1050);
}

TEST(CpuCore, TracksBusyTime)
{
    Simulator sim;
    CpuCore cpu(sim);
    cpu.execute(Ticks{300}, []() {});
    sim.runUntil(Ticks{1000});
    EXPECT_EQ(cpu.busyTime().raw(), 300);
    EXPECT_NEAR(cpu.utilization(Ticks::zero()), 0.3, 1e-9);
}
