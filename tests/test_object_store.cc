// Object store on the dRAID block device.

#include <gtest/gtest.h>

#include "app/object_store.h"
#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using app::ObjectStore;

namespace {

constexpr std::uint32_t kObj = 128 * 1024;

bool
putSync(DraidRig &rig, ObjectStore &store, std::uint64_t id,
        const ec::Buffer &data)
{
    bool ok = false, done = false;
    store.put(id, data.clone(), [&](bool s) {
        ok = s;
        done = true;
        rig.sim().stop();
    });
    while (!done && rig.sim().pendingEvents() > 0)
        rig.sim().run();
    return ok;
}

ec::Buffer
getSync(DraidRig &rig, ObjectStore &store, std::uint64_t id, bool *ok_out)
{
    ec::Buffer out;
    bool done = false;
    store.get(id, [&](bool s, ec::Buffer data) {
        *ok_out = s;
        out = std::move(data);
        done = true;
        rig.sim().stop();
    });
    while (!done && rig.sim().pendingEvents() > 0)
        rig.sim().run();
    return out;
}

} // namespace

TEST(ObjectStore, PutGetRoundTrip)
{
    DraidRig rig(6);
    ObjectStore store(rig.host(), kObj);
    ec::Buffer obj(kObj);
    obj.fillPattern(1);
    ASSERT_TRUE(putSync(rig, store, 42, obj));
    bool ok = false;
    ec::Buffer got = getSync(rig, store, 42, &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(obj));
}

TEST(ObjectStore, GetMissingFails)
{
    DraidRig rig(6);
    ObjectStore store(rig.host(), kObj);
    bool ok = true, done = false;
    store.get(7, [&](bool s, ec::Buffer) {
        ok = s;
        done = true;
    });
    EXPECT_TRUE(done);
    EXPECT_FALSE(ok);
}

TEST(ObjectStore, UpdateReplacesContent)
{
    DraidRig rig(6);
    ObjectStore store(rig.host(), kObj);
    ec::Buffer a(kObj), b(kObj);
    a.fillPattern(2);
    b.fillPattern(3);
    ASSERT_TRUE(putSync(rig, store, 1, a));
    ASSERT_TRUE(putSync(rig, store, 1, b));
    EXPECT_EQ(store.objectCount(), 1u);
    bool ok = false;
    EXPECT_TRUE(getSync(rig, store, 1, &ok).contentEquals(b));
}

TEST(ObjectStore, ManyObjectsDistinct)
{
    DraidRig rig(6);
    ObjectStore store(rig.host(), 4096);
    for (std::uint64_t id = 0; id < 50; ++id) {
        ec::Buffer obj(4096);
        obj.fillPattern(100 + id);
        ASSERT_TRUE(putSync(rig, store, id, obj));
    }
    EXPECT_EQ(store.objectCount(), 50u);
    for (std::uint64_t id = 0; id < 50; ++id) {
        bool ok = false;
        ec::Buffer expect(4096);
        expect.fillPattern(100 + id);
        EXPECT_TRUE(getSync(rig, store, id, &ok).contentEquals(expect))
            << "id " << id;
    }
}

TEST(ObjectStore, SurvivesDegradedState)
{
    DraidRig rig(6);
    ObjectStore store(rig.host(), kObj);
    for (std::uint64_t id = 0; id < 12; ++id) {
        ec::Buffer obj(kObj);
        obj.fillPattern(500 + id);
        ASSERT_TRUE(putSync(rig, store, id, obj));
    }
    rig.host().markFailed(3);
    for (std::uint64_t id = 0; id < 12; ++id) {
        bool ok = false;
        ec::Buffer expect(kObj);
        expect.fillPattern(500 + id);
        EXPECT_TRUE(getSync(rig, store, id, &ok).contentEquals(expect));
        ASSERT_TRUE(ok);
    }
}

TEST(ObjectStore, CapacityBounded)
{
    DraidRig rig(6);
    // Tiny virtual store: capacity computed from device size.
    ObjectStore store(rig.host(), kObj);
    EXPECT_EQ(store.capacityObjects(), rig.host().sizeBytes() / kObj);
}
