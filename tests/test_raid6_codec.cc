// RAID-6 codec: P+Q generation and every one/two-erasure recovery case.

#include <gtest/gtest.h>

#include <vector>

#include "ec/raid6_codec.h"

using namespace draid::ec;

namespace {

std::vector<Buffer>
makeData(std::size_t k, std::size_t len, std::uint64_t seed)
{
    std::vector<Buffer> data;
    for (std::size_t i = 0; i < k; ++i) {
        Buffer b(len);
        b.fillPattern(seed * 1000 + i);
        data.push_back(b);
    }
    return data;
}

} // namespace

class Raid6Widths : public ::testing::TestWithParam<int>
{
};

TEST_P(Raid6Widths, RecoverOneDataWithP)
{
    const int k = GetParam();
    auto data = makeData(k, 1024, 1);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);
    for (int lost = 0; lost < k; ++lost) {
        Buffer rec = Raid6Codec::recoverDataWithP(data, p, lost);
        EXPECT_TRUE(rec.contentEquals(data[lost]));
    }
}

TEST_P(Raid6Widths, RecoverOneDataWithQ)
{
    const int k = GetParam();
    auto data = makeData(k, 1024, 2);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);
    for (int lost = 0; lost < k; ++lost) {
        Buffer rec = Raid6Codec::recoverDataWithQ(data, q, lost);
        EXPECT_TRUE(rec.contentEquals(data[lost])) << "lost=" << lost;
    }
}

TEST_P(Raid6Widths, RecoverTwoDataAllPairs)
{
    const int k = GetParam();
    auto data = makeData(k, 512, 3);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);
    for (int x = 0; x < k; ++x) {
        for (int y = x + 1; y < k; ++y) {
            auto broken = data;
            broken[x] = Buffer();
            broken[y] = Buffer();
            Raid6Codec::recoverTwoData(broken, p, q, x, y);
            EXPECT_TRUE(broken[x].contentEquals(data[x]))
                << "x=" << x << " y=" << y;
            EXPECT_TRUE(broken[y].contentEquals(data[y]))
                << "x=" << x << " y=" << y;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, Raid6Widths,
                         ::testing::Values(2, 3, 4, 6, 8, 16));

TEST(Raid6Codec, GenericRecoverEveryCase)
{
    const int k = 6;
    auto data = makeData(k, 256, 4);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);

    struct Case
    {
        int d1, d2; // data indices to erase, -1 = none
        bool erase_p, erase_q;
    };
    const Case cases[] = {
        {2, -1, false, false}, {-1, -1, true, false},
        {-1, -1, false, true}, {3, -1, true, false},
        {4, -1, false, true},  {1, 5, false, false},
        {-1, -1, true, true},
    };

    for (const auto &c : cases) {
        auto d = data;
        Buffer tp = p.clone(), tq = q.clone();
        if (c.d1 >= 0)
            d[c.d1] = Buffer();
        if (c.d2 >= 0)
            d[c.d2] = Buffer();
        if (c.erase_p)
            tp = Buffer();
        if (c.erase_q)
            tq = Buffer();

        ASSERT_TRUE(Raid6Codec::recover(d, tp, tq));
        for (int i = 0; i < k; ++i)
            EXPECT_TRUE(d[i].contentEquals(data[i])) << "chunk " << i;
        EXPECT_TRUE(tp.contentEquals(p));
        EXPECT_TRUE(tq.contentEquals(q));
    }
}

TEST(Raid6Codec, RecoverRejectsThreeErasures)
{
    auto data = makeData(5, 128, 6);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);
    data[0] = Buffer();
    data[1] = Buffer();
    Buffer tp; // P also missing
    EXPECT_FALSE(Raid6Codec::recover(data, tp, q));
}

TEST(Raid6Codec, QDeltaUpdateEqualsRecompute)
{
    auto data = makeData(7, 2048, 8);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);

    Buffer updated(2048);
    updated.fillPattern(555);
    Buffer delta(2048);
    for (std::size_t i = 0; i < delta.size(); ++i)
        delta[i] = data[4][i] ^ updated[i];

    Raid6Codec::applyQDelta(q, delta, 4);
    data[4] = updated;
    Buffer q2 = Raid6Codec::computeQ(data);
    EXPECT_TRUE(q.contentEquals(q2));
}

TEST(Raid6Codec, PAndQDiffer)
{
    // Q must not degenerate to P (coefficients must matter) for k >= 2.
    auto data = makeData(4, 128, 9);
    Buffer p, q;
    Raid6Codec::computePQ(data, p, q);
    EXPECT_FALSE(p.contentEquals(q));
}
