// SSD model: data fidelity, calibrated timing, channel independence.

#include <gtest/gtest.h>

#include "nvme/ssd.h"
#include "sim/simulator.h"

using namespace draid;
using namespace draid::nvme;
using draid::sim::Simulator;
using draid::sim::Tick;
using draid::sim::Ticks;
using draid::sim::kMicrosecond;

namespace {

SsdConfig
testConfig()
{
    SsdConfig c;
    c.capacity = 1ull << 30;
    c.readBw = 3.2e9;
    c.writeBw = 2.375e9;
    c.readLatency = Ticks::us(84);
    c.writeLatency = Ticks::us(14);
    c.perCommand = Ticks::us(2);
    return c;
}

} // namespace

TEST(Ssd, WriteThenReadReturnsData)
{
    Simulator sim;
    Ssd ssd(sim, testConfig());
    ec::Buffer data(4096);
    data.fillPattern(77);

    bool wrote = false;
    ssd.write(8192, data, [&](blockdev::IoStatus st) {
        wrote = st == blockdev::IoStatus::kOk;
    });
    sim.run();
    EXPECT_TRUE(wrote);

    ec::Buffer got;
    ssd.read(8192, 4096, [&](blockdev::IoStatus, ec::Buffer d) {
        got = std::move(d);
    });
    sim.run();
    EXPECT_TRUE(got.contentEquals(data));
}

TEST(Ssd, UnwrittenRangesReadAsZero)
{
    Simulator sim;
    Ssd ssd(sim, testConfig());
    ec::Buffer got;
    ssd.read(123456, 100, [&](blockdev::IoStatus, ec::Buffer d) {
        got = std::move(d);
    });
    sim.run();
    ec::Buffer zeros(100);
    EXPECT_TRUE(got.contentEquals(zeros));
}

TEST(Ssd, ReadLatencyMatchesConfig)
{
    Simulator sim;
    Ssd ssd(sim, testConfig());
    Tick t = -1;
    ssd.read(0, 128 * 1024, [&](blockdev::IoStatus, ec::Buffer) {
        t = sim.now().raw();
    });
    sim.run();
    // 2us per-cmd + 128K/3.2GB/s (= 40.96us) + 84us latency.
    const Tick service = 2 * kMicrosecond + 40960;
    EXPECT_EQ(t, service + 84 * kMicrosecond);
}

TEST(Ssd, WriteThroughputMatchesChannelRate)
{
    Simulator sim;
    Ssd ssd(sim, testConfig());
    int completed = 0;
    const int n = 64;
    for (int i = 0; i < n; ++i) {
        ssd.write(static_cast<std::uint64_t>(i) << 20,
                  ec::Buffer(1 << 20),
                  [&](blockdev::IoStatus) { ++completed; });
    }
    sim.run();
    EXPECT_EQ(completed, n);
    const double rate =
        static_cast<double>(n) * (1 << 20) / draid::sim::toSeconds(sim.now().raw());
    // Per-command overhead costs a little throughput; allow 2%.
    EXPECT_NEAR(rate, 2.375e9, 2.375e9 * 0.02);
}

TEST(Ssd, ReadsAndWritesShareTheMediaChannel)
{
    Simulator sim;
    Ssd ssd(sim, testConfig());
    Tick t_read = -1, t_write = -1;
    ssd.read(0, 1 << 20, [&](blockdev::IoStatus, ec::Buffer) {
        t_read = sim.now().raw();
    });
    ssd.write(1 << 20, ec::Buffer(1 << 20), [&](blockdev::IoStatus) {
        t_write = sim.now().raw();
    });
    sim.run();
    // The read occupies the channel first; the write queues behind it.
    const Tick read_service = 2 * kMicrosecond +
                              static_cast<Tick>((1 << 20) / 3.2) + 1;
    EXPECT_NEAR(static_cast<double>(t_read),
                static_cast<double>(read_service + 84 * kMicrosecond),
                3.0);
    const Tick write_service = 2 * kMicrosecond +
                               static_cast<Tick>((1 << 20) / 2.375) + 1;
    EXPECT_NEAR(static_cast<double>(t_write),
                static_cast<double>(read_service + write_service +
                                    14 * kMicrosecond),
                3.0);
}

TEST(Ssd, CountsOps)
{
    Simulator sim;
    Ssd ssd(sim, testConfig());
    ssd.write(0, ec::Buffer(512), [](blockdev::IoStatus) {});
    ssd.read(0, 512, [](blockdev::IoStatus, ec::Buffer) {});
    ssd.read(0, 512, [](blockdev::IoStatus, ec::Buffer) {});
    sim.run();
    EXPECT_EQ(ssd.writesCompleted(), 1u);
    EXPECT_EQ(ssd.readsCompleted(), 2u);
    EXPECT_EQ(ssd.bytesWritten(), 512u);
    EXPECT_EQ(ssd.bytesRead(), 1024u);
}
