// Fabric: delivery, bandwidth charging, duplex independence, failure
// injection.

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.h"
#include "net/rdma.h"
#include "sim/simulator.h"

using namespace draid;
using namespace draid::net;
using namespace draid::sim;

namespace {

class Recorder : public Endpoint
{
  public:
    void
    onMessage(const Message &msg) override
    {
        messages.push_back(msg);
    }

    std::vector<Message> messages;
};

struct Rig
{
    Simulator sim;
    Fabric fabric{sim, Ticks{1500}};
    Nic nicA{sim, 1e9, Ticks::zero()};
    Nic nicB{sim, 1e9, Ticks::zero()};
    Recorder epA, epB;

    Rig()
    {
        fabric.attach(0, nicA, &epA);
        fabric.attach(1, nicB, &epB);
    }
};

} // namespace

TEST(Fabric, DeliversMessageToEndpoint)
{
    Rig rig;
    proto::Capsule c;
    c.opcode = proto::Opcode::kRead;
    c.commandId = 42;
    rig.fabric.send(Message{0, 1, c, {}});
    rig.sim.run();
    ASSERT_EQ(rig.epB.messages.size(), 1u);
    EXPECT_EQ(rig.epB.messages[0].capsule.commandId, 42u);
    EXPECT_EQ(rig.epB.messages[0].from, 0u);
}

TEST(Fabric, DeliveryIncludesPropagationDelay)
{
    Rig rig;
    proto::Capsule c;
    Tick delivered = -1;
    class TimeEp : public Endpoint
    {
      public:
        TimeEp(Simulator &s_, Tick &t_) : sim(s_), t(t_) {}
        void onMessage(const Message &) override { t = sim.now().raw(); }
        Simulator &sim;
        Tick &t;
    } ep(rig.sim, delivered);
    rig.fabric.setEndpoint(1, &ep);
    rig.fabric.send(Message{0, 1, c, {}});
    rig.sim.run();
    // 64 B capsule at 1 B/ns + 1500 ns propagation.
    EXPECT_EQ(delivered, 64 + 1500);
}

TEST(Fabric, RdmaReadChargesTargetTxAndInitiatorRx)
{
    Rig rig;
    bool done = false;
    rig.fabric.rdmaRead(0, 1, 1 << 20, [&]() { done = true; });
    rig.sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.nicB.tx().bytesTransferred(), 1u << 20);
    EXPECT_EQ(rig.nicA.rx().bytesTransferred(), 1u << 20);
    EXPECT_EQ(rig.nicA.tx().bytesTransferred(), 0u);
}

TEST(Fabric, RdmaWriteChargesInitiatorTxAndTargetRx)
{
    Rig rig;
    rig.fabric.rdmaWrite(0, 1, 4096, []() {});
    rig.sim.run();
    EXPECT_EQ(rig.nicA.tx().bytesTransferred(), 4096u);
    EXPECT_EQ(rig.nicB.rx().bytesTransferred(), 4096u);
}

TEST(Fabric, FullDuplexDirectionsIndependent)
{
    Rig rig;
    Tick t_read = -1, t_write = -1;
    // Simultaneous opposite transfers should not serialize.
    rig.fabric.rdmaRead(0, 1, 1000000, [&]() { t_read = rig.sim.now().raw(); });
    rig.fabric.rdmaWrite(0, 1, 1000000, [&]() { t_write = rig.sim.now().raw(); });
    rig.sim.run();
    EXPECT_EQ(t_read, 1000000 + 1500);
    EXPECT_EQ(t_write, 1000000 + 1500);
}

TEST(Fabric, SameDirectionTransfersSerialize)
{
    Rig rig;
    Tick t1 = -1, t2 = -1;
    rig.fabric.rdmaWrite(0, 1, 1000000, [&]() { t1 = rig.sim.now().raw(); });
    rig.fabric.rdmaWrite(0, 1, 1000000, [&]() { t2 = rig.sim.now().raw(); });
    rig.sim.run();
    EXPECT_EQ(t1, 1000000 + 1500);
    EXPECT_EQ(t2, 2000000 + 1500);
}

TEST(Fabric, DownNodeDropsMessages)
{
    Rig rig;
    rig.fabric.setNodeDown(1, true);
    rig.fabric.send(Message{0, 1, proto::Capsule{}, {}});
    bool done = false;
    rig.fabric.rdmaRead(0, 1, 100, [&]() { done = true; });
    rig.sim.run();
    EXPECT_TRUE(rig.epB.messages.empty());
    EXPECT_FALSE(done);
    EXPECT_EQ(rig.fabric.messagesDropped(), 2u);

    rig.fabric.setNodeDown(1, false);
    rig.fabric.send(Message{0, 1, proto::Capsule{}, {}});
    rig.sim.run();
    EXPECT_EQ(rig.epB.messages.size(), 1u);
}

TEST(Fabric, ExtraDelayInjected)
{
    Rig rig;
    Tick t = -1;
    class TimeEp : public Endpoint
    {
      public:
        TimeEp(Simulator &s_, Tick &t_) : sim(s_), t(t_) {}
        void onMessage(const Message &) override { t = sim.now().raw(); }
        Simulator &sim;
        Tick &t;
    } ep(rig.sim, t);
    rig.fabric.setEndpoint(1, &ep);
    rig.fabric.setExtraDelay(1, Ticks{10000});
    rig.fabric.send(Message{0, 1, proto::Capsule{}, {}});
    rig.sim.run();
    EXPECT_EQ(t, 64 + 1500 + 10000);
}

TEST(Fabric, PayloadHandleTravelsWithCapsule)
{
    Rig rig;
    ec::Buffer payload(128);
    payload.fillPattern(5);
    rig.fabric.send(Message{0, 1, proto::Capsule{}, payload});
    rig.sim.run();
    ASSERT_EQ(rig.epB.messages.size(), 1u);
    EXPECT_TRUE(rig.epB.messages[0].payload.contentEquals(payload));
}

TEST(RdmaQp, CountsTraffic)
{
    Rig rig;
    RdmaQp qp(rig.fabric, 0, 1);
    qp.sendCapsule(proto::Capsule{});
    qp.read(100, []() {});
    qp.write(200, []() {});
    rig.sim.run();
    EXPECT_EQ(qp.capsulesSent(), 1u);
    EXPECT_EQ(qp.bytesRead(), 100u);
    EXPECT_EQ(qp.bytesWritten(), 200u);
}

TEST(Fabric, MessagesFromOneSourcePreserveOrder)
{
    Rig rig;
    for (std::uint64_t i = 0; i < 20; ++i) {
        proto::Capsule c;
        c.commandId = i;
        rig.fabric.send(Message{0, 1, c, {}});
    }
    rig.sim.run();
    ASSERT_EQ(rig.epB.messages.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(rig.epB.messages[i].capsule.commandId, i);
}
