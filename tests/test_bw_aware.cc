// Bandwidth-aware reconstruction: max-min solver properties, EWMA,
// selector behaviour (paper §6.2).

#include <gtest/gtest.h>

#include <numeric>

#include "core/bw_aware.h"

using namespace draid::core;
using draid::sim::Rng;

TEST(Solver, UniformWhenBandwidthEqual)
{
    auto p = solveReducerProbabilities({10e9, 10e9, 10e9, 10e9}, 5e9);
    for (double x : p)
        EXPECT_NEAR(x, 0.25, 1e-9);
}

TEST(Solver, ZeroLoadGivesUniform)
{
    auto p = solveReducerProbabilities({1e9, 20e9, 5e9}, 0.0);
    for (double x : p)
        EXPECT_NEAR(x, 1.0 / 3, 1e-9);
}

TEST(Solver, ProbabilitiesSumToOne)
{
    auto p = solveReducerProbabilities({2.875e9, 11.5e9, 11.5e9, 2.875e9,
                                        11.5e9},
                                       4e9);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-9);
    for (double x : p) {
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0 + 1e-12);
    }
}

TEST(Solver, FasterNodesGetMoreLoad)
{
    auto p = solveReducerProbabilities({2.875e9, 11.5e9}, 3e9);
    EXPECT_GT(p[1], p[0]);
}

TEST(Solver, EqualizedRemainingBandwidthAmongActive)
{
    const std::vector<double> bw{11.5e9, 11.5e9, 2.875e9};
    const double load = 6e9;
    auto p = solveReducerProbabilities(bw, load);
    // R_i = B_i - P_i * load must be equal for all candidates with P_i>0.
    std::vector<double> r;
    for (std::size_t i = 0; i < bw.size(); ++i) {
        if (p[i] > 1e-12)
            r.push_back(bw[i] - p[i] * load);
    }
    ASSERT_GE(r.size(), 2u);
    for (std::size_t i = 1; i < r.size(); ++i)
        EXPECT_NEAR(r[i], r[0], 1.0);
}

TEST(Solver, SlowNodeExcludedUnderHeavyAsymmetry)
{
    // A very slow node below the water level must get probability 0.
    auto p = solveReducerProbabilities({100e9, 100e9, 1e6}, 10e9);
    EXPECT_NEAR(p[2], 0.0, 1e-9);
    EXPECT_NEAR(p[0], 0.5, 1e-6);
}

TEST(Solver, MaximizesMinimumRemaining)
{
    // Compare against a uniform split: the solver's worst-case remaining
    // bandwidth must be at least as good.
    const std::vector<double> bw{11.5e9, 2.875e9, 2.875e9, 11.5e9};
    const double load = 7e9;
    auto p = solveReducerProbabilities(bw, load);

    auto min_remaining = [&](const std::vector<double> &probs) {
        double m = 1e300;
        for (std::size_t i = 0; i < bw.size(); ++i)
            m = std::min(m, bw[i] - probs[i] * load);
        return m;
    };
    const std::vector<double> uniform(bw.size(), 1.0 / bw.size());
    EXPECT_GE(min_remaining(p), min_remaining(uniform) - 1.0);
}

TEST(Ewma, FirstSampleSeeds)
{
    Ewma e(0.3);
    EXPECT_FALSE(e.seeded());
    e.update(100.0);
    EXPECT_TRUE(e.seeded());
    EXPECT_DOUBLE_EQ(e.value(), 100.0);
}

TEST(Ewma, ConvergesTowardConstant)
{
    Ewma e(0.3);
    e.update(0.0);
    for (int i = 0; i < 50; ++i)
        e.update(10.0);
    EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ewma, WeightsRecentSamples)
{
    Ewma e(0.5);
    e.update(0.0);
    e.update(100.0);
    EXPECT_DOUBLE_EQ(e.value(), 50.0);
}

TEST(RandomSelector, CoversAllCandidates)
{
    RandomReducerSelector sel;
    Rng rng(4);
    std::vector<std::uint32_t> candidates{2, 5, 9};
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 3000; ++i)
        ++hits[sel.select(candidates, rng)];
    EXPECT_NEAR(hits[2], 1000, 150);
    EXPECT_NEAR(hits[5], 1000, 150);
    EXPECT_NEAR(hits[9], 1000, 150);
    EXPECT_EQ(hits[0], 0);
}

TEST(BwAwareSelector, FollowsPlan)
{
    BwAwareReducerSelector sel(0.5);
    sel.refresh({0, 1}, {100e9, 1e6}, 5e9, 3.0);
    Rng rng(8);
    int fast = 0;
    const std::vector<std::uint32_t> candidates{0, 1};
    for (int i = 0; i < 2000; ++i)
        fast += sel.select(candidates, rng) == 0;
    EXPECT_GT(fast, 1990); // slow node essentially excluded
}

TEST(BwAwareSelector, RestrictsToCandidates)
{
    BwAwareReducerSelector sel(0.5);
    sel.refresh({0, 1, 2}, {10e9, 10e9, 10e9}, 2e9, 2.0);
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        const auto pick = sel.select({1, 2}, rng);
        EXPECT_NE(pick, 0u);
    }
}

TEST(BwAwareSelector, UnplannedCandidatesFallBackToUniform)
{
    BwAwareReducerSelector sel(0.5);
    Rng rng(8);
    const auto pick = sel.select({7, 8}, rng);
    EXPECT_TRUE(pick == 7 || pick == 8);
}
