// Protocol capsules: wire round-trip fidelity and size accounting.

#include <gtest/gtest.h>

#include "proto/capsule.h"

using namespace draid::proto;

namespace {

Capsule
sampleCapsule()
{
    Capsule c;
    c.commandId = 0x1234567890abcdefull;
    c.opcode = Opcode::kPartialWrite;
    c.subtype = Subtype::kRmw;
    c.nsid = 3;
    c.offset = 0xdeadbeef00ull;
    c.length = 128 * 1024;
    c.fwdOffset = 4096;
    c.fwdLength = 64 * 1024;
    c.nextDest = 5;
    c.nextDest2 = 6;
    c.waitNum = 7;
    c.dataIdx = 2;
    c.stripe = 991;
    c.status = Status::kSuccess;
    c.sgList.push_back(Sge{0x1000, 512});
    c.sgList.push_back(Sge{0x2000, 1024});
    c.sgList2.push_back(Sge{0x3000, 2048});
    return c;
}

} // namespace

TEST(Capsule, EncodeDecodeRoundTrip)
{
    const Capsule c = sampleCapsule();
    const auto wire = c.encode();
    const auto back = Capsule::decode(wire.data(), wire.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
}

TEST(Capsule, WireSizeMatchesEncoding)
{
    const Capsule c = sampleCapsule();
    EXPECT_EQ(c.encode().size(), c.wireSize());

    Capsule minimal;
    EXPECT_EQ(minimal.encode().size(), minimal.wireSize());
}

TEST(Capsule, EveryOpcodeRoundTrips)
{
    for (Opcode op : {Opcode::kRead, Opcode::kWrite, Opcode::kPartialWrite,
                      Opcode::kParity, Opcode::kReconstruction,
                      Opcode::kPeer, Opcode::kCompletion}) {
        Capsule c;
        c.opcode = op;
        const auto wire = c.encode();
        const auto back = Capsule::decode(wire.data(), wire.size());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->opcode, op);
    }
}

TEST(Capsule, EverySubtypeRoundTrips)
{
    for (Subtype st : {Subtype::kNone, Subtype::kRmw, Subtype::kRwWrite,
                       Subtype::kRwRead, Subtype::kNoRead,
                       Subtype::kAlsoRead, Subtype::kDegraded,
                       Subtype::kNoReadQ}) {
        Capsule c;
        c.subtype = st;
        const auto wire = c.encode();
        const auto back = Capsule::decode(wire.data(), wire.size());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->subtype, st);
    }
}

TEST(Capsule, DecodeRejectsBadMagic)
{
    auto wire = sampleCapsule().encode();
    wire[0] ^= 0xff;
    EXPECT_FALSE(Capsule::decode(wire.data(), wire.size()).has_value());
}

TEST(Capsule, DecodeRejectsTruncation)
{
    const auto wire = sampleCapsule().encode();
    for (std::size_t cut : {0u, 1u, 10u, 63u}) {
        EXPECT_FALSE(Capsule::decode(wire.data(), cut).has_value())
            << "cut=" << cut;
    }
    // Truncated SG list.
    EXPECT_FALSE(
        Capsule::decode(wire.data(), wire.size() - 1).has_value());
}

TEST(Capsule, StatusValuesRoundTrip)
{
    for (Status st :
         {Status::kSuccess, Status::kFailed, Status::kTimedOut}) {
        Capsule c;
        c.status = st;
        const auto wire = c.encode();
        EXPECT_EQ(Capsule::decode(wire.data(), wire.size())->status, st);
    }
}

TEST(Capsule, ToStringNames)
{
    EXPECT_STREQ(toString(Opcode::kPartialWrite), "PartialWrite");
    EXPECT_STREQ(toString(Subtype::kRwRead), "RW_READ");
    EXPECT_STREQ(toString(Status::kTimedOut), "TimedOut");
}

TEST(Capsule, InvalidNodeSentinelSurvives)
{
    Capsule c;
    c.nextDest = draid::sim::kInvalidNode;
    const auto wire = c.encode();
    EXPECT_EQ(Capsule::decode(wire.data(), wire.size())->nextDest,
              draid::sim::kInvalidNode);
}
