// Scale-ready telemetry: deterministic head sampling (seeded hash of the
// trace id), the tail-exemplar reservoir (K slowest per window, whole
// chains, bounded), streaming windowed aggregation (exact totals, capped
// latency samples, adaptive bin width), and the bounded-retention caps on
// the latency recorder and utilization sampler. Every assertion here is a
// pure function of fed data — no RNG, no clock — matching the subsystem's
// own determinism contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "sim/simulator.h"
#include "sim/stats.h"
#include "telemetry/exemplar.h"
#include "telemetry/sampling.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"

using namespace draid;

// --- sampling hash ------------------------------------------------------

TEST(Sampling, HashIsPureAndKeepRateTracksPeriod)
{
    EXPECT_EQ(telemetry::traceSampleHash(42),
              telemetry::traceSampleHash(42));
    EXPECT_NE(telemetry::traceSampleHash(42),
              telemetry::traceSampleHash(43));

    const std::uint64_t period = 64;
    std::uint64_t kept = 0;
    const std::uint64_t n = 100'000;
    for (std::uint64_t id = 1; id <= n; ++id)
        kept += telemetry::traceSampled(id, period) ? 1 : 0;
    // Expected n/period = 1562; the finalizer is uniform enough that the
    // realized rate sits well within 25% of it.
    EXPECT_GT(kept, n / period * 3 / 4);
    EXPECT_LT(kept, n / period * 5 / 4);
}

TEST(Sampling, DoubledPeriodSelectsSubset)
{
    // hash < max/128 implies hash < max/64: the period-128 set nests
    // inside the period-64 set, so raising the period only thins samples.
    for (std::uint64_t id = 1; id <= 50'000; ++id) {
        if (telemetry::traceSampled(id, 128))
            EXPECT_TRUE(telemetry::traceSampled(id, 64)) << id;
    }
}

TEST(Sampling, DisabledPeriodsAndIdZeroAlwaysKeep)
{
    EXPECT_TRUE(telemetry::traceSampled(7, 0));
    EXPECT_TRUE(telemetry::traceSampled(7, 1));
    // Id 0 marks spans not tied to a user op; they are never skimmed.
    EXPECT_TRUE(telemetry::traceSampled(0, 1'000'000));
}

TEST(Tracer, SamplingGatesRetentionNotMinting)
{
    telemetry::Tracer t;
    t.setEnabled(true);
    t.setSamplePeriod(64);

    std::uint64_t expectKept = 0;
    for (int i = 0; i < 1000; ++i) {
        telemetry::TraceSpan s;
        s.traceId = t.mint();
        s.name = "op";
        if (t.sampled(s.traceId))
            ++expectKept;
        t.recordSpan(std::move(s));
    }
    // Ids keep minting densely (1..1000) no matter the period; only
    // retention is skimmed, and every skip is accounted.
    EXPECT_EQ(t.mint(), 1001u);
    EXPECT_EQ(t.spans().size(), expectKept);
    EXPECT_EQ(t.sampledOutSpans(), 1000u - expectKept);
    EXPECT_EQ(t.droppedSpans(), 0u); // sampling is not an overflow drop
    for (const telemetry::TraceSpan &s : t.spans())
        EXPECT_TRUE(t.sampled(s.traceId));
}

// --- exemplar reservoir -------------------------------------------------

namespace {

telemetry::TraceSpan
opSpan(std::uint64_t id, sim::Tick start, sim::Tick end)
{
    telemetry::TraceSpan s;
    s.traceId = id;
    s.lane = "op";
    s.name = "draid.read";
    s.start = start;
    s.end = end;
    return s;
}

} // namespace

TEST(ExemplarReservoir, KeepsKSlowestPerWindowWithStableTies)
{
    telemetry::ExemplarReservoir res(/*window_ticks=*/1000,
                                     /*per_window=*/2,
                                     /*max_windows=*/16);
    res.setEnabled(true);
    // One window, four ops: latencies 50, 200, 10, 200.
    EXPECT_TRUE(res.offer(opSpan(1, 100, 150), 512, {}));
    EXPECT_TRUE(res.offer(opSpan(2, 100, 300), 512, {}));
    EXPECT_FALSE(res.offer(opSpan(3, 400, 410), 512, {})); // too fast
    // Latency tie with id 2: the incumbent (smaller id) wins the slot,
    // and the newcomer displaces the strictly faster id 1 instead? No —
    // id 1 (latency 50) is the fastest retained, so 200 displaces it.
    EXPECT_TRUE(res.offer(opSpan(4, 500, 700), 512, {}));

    const auto kept = res.collect(0, 1000);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0]->latency(), 200);
    EXPECT_EQ(kept[1]->latency(), 200);
    EXPECT_EQ(kept[0]->traceId, 2u); // equal latency: smaller id first
    EXPECT_EQ(kept[1]->traceId, 4u);

    // A third 200-tick op cannot displace either incumbent (strictly
    // slower only), keeping the set order-independent under ties.
    EXPECT_FALSE(res.offer(opSpan(5, 600, 800), 512, {}));
    EXPECT_EQ(res.size(), 2u);
    EXPECT_EQ(res.offered(), 5u);
    EXPECT_EQ(res.evicted(), 1u);
}

TEST(ExemplarReservoir, OldestWindowEvictedWhole)
{
    telemetry::ExemplarReservoir res(1000, /*per_window=*/2,
                                     /*max_windows=*/2);
    res.setEnabled(true);
    res.offer(opSpan(1, 0, 500), 0, {});
    res.offer(opSpan(2, 1000, 1800), 0, {});
    res.offer(opSpan(3, 2000, 2900), 0, {});
    EXPECT_EQ(res.windowsEvicted(), 1u);
    EXPECT_EQ(res.size(), 2u);
    // Window 0 (id 1) is gone wholesale; straggler spans for it no
    // longer attach.
    EXPECT_TRUE(res.collect(0, 1000).empty());
    EXPECT_FALSE(res.appendIfHeld(opSpan(1, 100, 200)));
    EXPECT_TRUE(res.appendIfHeld(opSpan(3, 2100, 2200)));
}

TEST(ExemplarReservoir, ChainsRideOfferAndStragglersAppend)
{
    telemetry::ExemplarReservoir res(1000, 2, 4);
    res.setEnabled(true);
    std::vector<telemetry::TraceSpan> chain;
    chain.push_back(opSpan(9, 10, 40)); // sub-span
    chain.push_back(opSpan(9, 0, 100)); // root
    res.offer(opSpan(9, 0, 100), 4096, std::move(chain));
    res.appendIfHeld(opSpan(9, 50, 90)); // straggler after completion

    const auto kept = res.all();
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0]->bytes, 4096u);
    EXPECT_EQ(kept[0]->chain.size(), 3u);
    EXPECT_GT(res.retainedBytes(), 0u);
}

TEST(Tracer, OpCompletionFeedsSinkAndReservoirWithFullChains)
{
    struct CountingSink : telemetry::OpCompletionSink
    {
        std::uint64_t ops = 0;
        std::uint64_t bytes = 0;
        void onOpComplete(const telemetry::TraceSpan &,
                          std::uint64_t b) override
        {
            ++ops;
            bytes += b;
        }
    };

    telemetry::Tracer t;
    telemetry::ExemplarReservoir res(1000, 4, 4);
    res.setEnabled(true);
    t.bindExemplars(&res);
    CountingSink sink;
    t.bindOpSink(&sink);
    t.setEnabled(true);
    t.setSamplePeriod(1'000'000); // skim (almost) everything

    const std::uint64_t id = t.mint();
    telemetry::TraceSpan sub = opSpan(id, 20, 60);
    sub.lane = "ssd";
    sub.name = "ssd.read";
    t.recordSpan(std::move(sub));
    telemetry::TraceSpan root = opSpan(id, 0, 90);
    root.args.emplace_back("bytes", "8192");
    t.recordOpCompletion(std::move(root));

    // The sink and the reservoir saw the op even though sampling dropped
    // it from retention — and the exemplar carries the buffered sub-span.
    EXPECT_EQ(sink.ops, 1u);
    EXPECT_EQ(sink.bytes, 8192u);
    const auto kept = res.all();
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0]->chain.size(), 2u);
    if (!t.sampled(id))
        EXPECT_TRUE(t.spans().empty());
}

// --- streaming aggregation ----------------------------------------------

TEST(WindowedAggregator, StreamingMatchesBatchSpanFeed)
{
    std::vector<telemetry::TraceSpan> spans;
    for (std::uint64_t i = 0; i < 500; ++i) {
        telemetry::TraceSpan s = opSpan(i + 1, i * 37, i * 37 + 90 + i % 7);
        s.args.emplace_back("bytes", "4096");
        spans.push_back(std::move(s));
    }

    telemetry::WindowedAggregator batch(sim::Ticks{1000});
    batch.addOpSpans(spans);
    telemetry::WindowedAggregator streamed(sim::Ticks{1000});
    for (const telemetry::TraceSpan &s : spans)
        streamed.onOpComplete(s, 4096);

    const auto a = batch.finalize();
    const auto b = streamed.finalize();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w) {
        EXPECT_EQ(a[w].start, b[w].start);
        EXPECT_EQ(a[w].ops, b[w].ops);
        EXPECT_EQ(a[w].bytes, b[w].bytes);
        EXPECT_DOUBLE_EQ(a[w].p50Us, b[w].p50Us);
        EXPECT_DOUBLE_EQ(a[w].p99Us, b[w].p99Us);
    }
}

TEST(WindowedAggregator, DecimationKeepsTotalsExactAndTailsClose)
{
    // >=50k ops into a handful of bins: per-bin latency samples blow past
    // kLatencySampleCap and decimate, but ops/bytes stay exact and the
    // percentile drift stays under 5% of ground truth.
    const std::uint64_t n = 50'000;
    telemetry::WindowedAggregator agg(sim::Ticks{1'000'000});
    std::vector<sim::Tick> all;
    for (std::uint64_t i = 0; i < n; ++i) {
        // Hash-scrambled arrival order, smooth latency spread in
        // [1000, 2000): the strided survivor set is then an effectively
        // uniform subsample of the distribution.
        const std::uint64_t h = telemetry::traceSampleHash(i + 1);
        const sim::Tick lat = 1000 + static_cast<sim::Tick>(h % 1000);
        all.push_back(lat);
        // Every completion lands in the same window.
        agg.addOp(sim::Ticks{static_cast<sim::Tick>((i * 17) % 999'000)},
                  sim::Ticks{lat}, 4096);
    }
    EXPECT_GT(agg.droppedLatencySamples(), 0u);

    const auto windows = agg.finalize();
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].ops, n);
    EXPECT_EQ(windows[0].bytes, n * 4096);

    // Ground truth over ALL samples vs the decimated estimate.
    std::sort(all.begin(), all.end());
    const double truthP50 =
        static_cast<double>(all[all.size() / 2]) / sim::kMicrosecond;
    const double truthP99 =
        static_cast<double>(all[all.size() * 99 / 100]) /
        sim::kMicrosecond;
    EXPECT_NEAR(windows[0].p50Us, truthP50, truthP50 * 0.05);
    EXPECT_NEAR(windows[0].p99Us, truthP99, truthP99 * 0.05);
}

TEST(WindowedAggregator, RetainedBytesBoundedInOpCount)
{
    // Same tick range, 4x the ops: retained bytes must not scale with op
    // count (bins are capped; totals are scalars).
    const sim::Tick range = 10'000'000;
    telemetry::WindowedAggregator a(sim::Ticks{1'000'000});
    telemetry::WindowedAggregator b(sim::Ticks{1'000'000});
    for (std::uint64_t i = 0; i < 50'000; ++i)
        a.addOp(sim::Ticks{static_cast<sim::Tick>(i) * (range / 50'000)},
                sim::Ticks{1000 + static_cast<sim::Tick>(i % 500)}, 4096);
    for (std::uint64_t i = 0; i < 200'000; ++i)
        b.addOp(sim::Ticks{static_cast<sim::Tick>(i) * (range / 200'000)},
                sim::Ticks{1000 + static_cast<sim::Tick>(i % 500)}, 4096);
    EXPECT_GT(a.retainedBytes(), 0u);
    EXPECT_LE(b.retainedBytes(), a.retainedBytes() * 3 / 2);
}

TEST(WindowedAggregator, AdaptiveWidthBoundsBinsAndCoalesces)
{
    telemetry::WindowedAggregator agg(sim::Ticks::zero()); // adaptive
    EXPECT_EQ(agg.windowTicks().raw(), sim::kMicrosecond);
    // 80 ms of completions at 1 us base width would be 80k bins; the
    // width must double until the span fits the bin budget.
    for (std::uint64_t i = 0; i < 20'000; ++i)
        agg.addOp(sim::Ticks{static_cast<sim::Tick>(i) * 4000},
                  sim::Ticks{500}, 512);
    EXPECT_GT(agg.windowTicks().raw(), sim::kMicrosecond);
    const auto windows = agg.finalize();
    EXPECT_LE(windows.size(), telemetry::WindowedAggregator::kMaxBins);
    std::uint64_t ops = 0;
    for (const auto &w : windows)
        ops += w.ops;
    EXPECT_EQ(ops, 20'000u);

    const auto coalesced = agg.coalesce(64);
    EXPECT_LE(coalesced.windows.size(), 64u);
    EXPECT_GE(coalesced.windowTicks, agg.windowTicks().raw());
    std::uint64_t cops = 0;
    for (const auto &w : coalesced.windows)
        cops += w.ops;
    EXPECT_EQ(cops, 20'000u);
}

// --- bounded retention elsewhere ----------------------------------------

TEST(LatencyRecorder, CapDecimatesButAggregatesStayExact)
{
    sim::LatencyRecorder rec;
    const std::uint64_t n = 600'000; // > kSampleCap
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const sim::Tick s = 1 + static_cast<sim::Tick>(
                                    telemetry::traceSampleHash(i) % 1000);
        sum += static_cast<std::uint64_t>(s);
        rec.record(sim::Ticks{s});
    }
    EXPECT_EQ(rec.count(), n);
    EXPECT_GT(rec.droppedSamples(), 0u);
    EXPECT_LE(rec.retainedSamples(), sim::LatencyRecorder::kSampleCap);
    EXPECT_EQ(rec.min().raw(), 1);
    EXPECT_EQ(rec.max().raw(), 1000);
    EXPECT_NEAR(rec.mean(),
                static_cast<double>(sum) / static_cast<double>(n), 1e-9);
    // Interior percentiles come from the decimated set; on a uniform
    // spread they stay within 5% of truth.
    EXPECT_NEAR(static_cast<double>(rec.percentile(50.0).raw()), 500.0, 25.0);
    EXPECT_NEAR(static_cast<double>(rec.percentile(99.0).raw()), 990.0, 49.5);

    rec.clear();
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_EQ(rec.sampleStride(), 1u);
    EXPECT_EQ(rec.percentile(50.0).raw(), 0);
}

TEST(UtilizationSampler, SampleCapMergesRoundsAndSkipsBoundaries)
{
    sim::Simulator sim;
    telemetry::UtilizationSampler sampler;
    sim::Tick busy = 0;
    sampler.addSource(0, "ssd.util",
                      [&busy]() { return sim::Ticks{busy}; });
    sampler.setSampleCap(8);
    sampler.start(sim, sim::Ticks{100});

    for (sim::Tick now = 100; now <= 100 * 200; now += 100) {
        busy = now / 2; // 50% busy
        sampler.onClockAdvance(sim::Ticks{now});
    }
    EXPECT_LE(sampler.samples().size(), 8u);
    EXPECT_GT(sampler.emitStride(), 1u);
    EXPECT_GT(sampler.droppedSamples(), 0u);
    // Busy-fraction windows self-correct across skipped boundaries: the
    // retained values still read ~50%.
    for (const auto &s : sampler.samples())
        EXPECT_NEAR(s.value, 0.5, 0.01);
    EXPECT_GT(sampler.retainedBytes(), 0u);
}
