// Regression: the reducer's own contribution must gate completion.
//
// Under load, every peer partial can reach the reducer before the
// reducer's own union drive read completes; the last peer's absorb then
// drives the outstanding count to zero. An earlier implementation
// finished the reduction at that instant — persisting a rebuilt chunk
// that was missing the reducer's own contribution (caught as exactly
// `expected ^ reducer_chunk` on the spare). The fix blocks completion on
// the local absorb, like the RMW parity preload.

#include <gtest/gtest.h>

#include <cstring>

#include "core/reconstruct.h"
#include "draid_test_util.h"
#include "workload/fio.h"

using namespace draid;
using namespace draid::testutil;

TEST(DraidReducerRace, RebuildCorrectUnderPrecedingDegradedLoad)
{
    cluster::TestbedConfig cfg = smallConfig();
    cfg.ssd.capacity = 1ull << 30;
    cluster::Cluster cluster(cfg, 9);
    core::DraidOptions o;
    o.chunkSize = 256 * 1024;
    core::DraidSystem sys(cluster, o, 8);
    auto &host = sys.host();
    const auto &g = host.geometry();

    const std::uint64_t stripes = 64;
    const std::uint64_t span = stripes * g.stripeDataSize();
    ec::Buffer content(span);
    content.fillPattern(7);
    ASSERT_TRUE(writeSync(cluster.sim(), host, 0, content));

    cluster.failTarget(3);
    host.markFailed(3);

    // The degraded read burst leaves the bdev CPU/SSD queues busy, which
    // is what historically let peers outrun the reducer's own read.
    workload::FioConfig fio;
    fio.ioSize = 128 * 1024;
    fio.readRatio = 1.0;
    fio.ioDepth = 16;
    fio.numOps = 200;
    fio.workingSetBytes = span;
    workload::FioJob job(cluster.sim(), host, fio);
    auto r = job.run();
    ASSERT_EQ(r.errors, 0u);

    core::RebuildJob rebuild(
        cluster.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            host.reconstructChunk(stripe, 8, std::move(done));
        },
        stripes, g.chunkSize(), /*window=*/16);
    bool ok = false;
    rebuild.start([&](bool all_ok) {
        ok = all_ok;
        cluster.sim().stop();
    });
    cluster.sim().run();
    ASSERT_TRUE(ok);

    // Every rebuilt data chunk on the spare must be byte-identical.
    for (std::uint64_t s = 0; s < stripes; ++s) {
        if (g.roleOf(s, 3) != raid::ChunkRole::kData)
            continue;
        const std::uint32_t idx = g.dataIndexOf(s, 3);
        const std::uint64_t uoff =
            s * g.stripeDataSize() +
            static_cast<std::uint64_t>(idx) * g.chunkSize();
        ec::Buffer expect = content.slice(uoff, g.chunkSize());
        ec::Buffer got = cluster.target(8).ssd().store().readSync(
            g.deviceAddress(s, 0), g.chunkSize());
        ASSERT_TRUE(got.contentEquals(expect)) << "stripe " << s;
    }
}
