// Reduce engine: session bookkeeping, late-Parity tolerance, accumulator
// math.

#include <gtest/gtest.h>

#include "core/reduce_engine.h"
#include "ec/xor_kernel.h"

using namespace draid::core;
using draid::ec::Buffer;

TEST(ReduceEngine, ObtainCreatesOnce)
{
    ReduceEngine eng;
    auto &a = eng.obtain(1);
    a.remaining = 5;
    auto &b = eng.obtain(1);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.remaining, 5);
    EXPECT_EQ(eng.activeSessions(), 1u);
}

TEST(ReduceEngine, FindReturnsNullForUnknown)
{
    ReduceEngine eng;
    EXPECT_EQ(eng.find(99), nullptr);
    eng.obtain(99);
    EXPECT_NE(eng.find(99), nullptr);
    eng.erase(99);
    EXPECT_EQ(eng.find(99), nullptr);
}

TEST(ReduceEngine, AbsorbXorsAtOffset)
{
    ReduceSession s;
    Buffer a(100);
    a.fill(0x0f);
    ReduceEngine::absorbNoCount(s, 50, a);
    EXPECT_GE(s.accEnd, 150u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(s.acc[i], 0);
    for (int i = 50; i < 150; ++i)
        EXPECT_EQ(s.acc[i], 0x0f);

    Buffer b(100);
    b.fill(0xf0);
    ReduceEngine::absorbNoCount(s, 50, b);
    for (int i = 50; i < 150; ++i)
        EXPECT_EQ(s.acc[i], 0xff);
}

TEST(ReduceEngine, AccumulatorGrowsPreservingContent)
{
    ReduceSession s;
    Buffer a(10);
    a.fill(0xaa);
    ReduceEngine::absorbNoCount(s, 0, a);
    Buffer b(10);
    b.fill(0xbb);
    ReduceEngine::absorbNoCount(s, 100, b);
    EXPECT_EQ(s.acc[5], 0xaa);
    EXPECT_EQ(s.acc[105], 0xbb);
}

TEST(ReduceEngine, CountedAbsorbDecrementsRemaining)
{
    ReduceSession s;
    s.remaining = 2;
    Buffer a(8);
    ReduceEngine::absorb(s, 0, a);
    EXPECT_EQ(s.remaining, 1);
    ReduceEngine::absorb(s, 0, a);
    EXPECT_EQ(s.remaining, 0);
    EXPECT_EQ(s.absorbed, 2u);
}

TEST(ReduceEngine, NotReadyUntilHostCommandSeen)
{
    // The §5.2 non-blocking property: peers may finish first, but the
    // session must not complete before the Parity command arrives.
    ReduceSession s;
    Buffer a(8);
    ReduceEngine::absorb(s, 0, a); // remaining -1, host unseen
    EXPECT_FALSE(ReduceEngine::readyToFinish(s));
    s.hostCmdSeen = true;
    s.remaining += 1; // wait-num from the host command
    EXPECT_TRUE(ReduceEngine::readyToFinish(s));
}

TEST(ReduceEngine, NotReadyWhileContributionsOutstanding)
{
    ReduceSession s;
    s.hostCmdSeen = true;
    s.remaining = 3;
    EXPECT_FALSE(ReduceEngine::readyToFinish(s));
    s.remaining = 0;
    EXPECT_TRUE(ReduceEngine::readyToFinish(s));
}

TEST(ReduceEngine, NotReadyWhilePreloadPending)
{
    ReduceSession s;
    s.hostCmdSeen = true;
    s.remaining = 0;
    s.preloadPending = true;
    EXPECT_FALSE(ReduceEngine::readyToFinish(s));
    s.preloadPending = false;
    EXPECT_TRUE(ReduceEngine::readyToFinish(s));
}

TEST(ReduceEngine, FinalWindowSlicesBaseRange)
{
    ReduceSession s;
    Buffer a(200);
    for (int i = 0; i < 200; ++i)
        a[i] = static_cast<std::uint8_t>(i);
    ReduceEngine::absorbNoCount(s, 0, a);
    s.baseOffset = 40;
    s.length = 10;
    Buffer w = ReduceEngine::finalWindow(s);
    ASSERT_EQ(w.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(w[i], 40 + i);
}

TEST(ReduceEngine, OrderIndependentReduction)
{
    // XOR commutes: any arrival order yields the same final window.
    Buffer p1(64), p2(64), p3(64);
    p1.fillPattern(1);
    p2.fillPattern(2);
    p3.fillPattern(3);

    ReduceSession fwd, rev;
    for (auto *s : {&fwd, &rev}) {
        s->baseOffset = 0;
        s->length = 64;
    }
    ReduceEngine::absorbNoCount(fwd, 0, p1);
    ReduceEngine::absorbNoCount(fwd, 0, p2);
    ReduceEngine::absorbNoCount(fwd, 0, p3);
    ReduceEngine::absorbNoCount(rev, 0, p3);
    ReduceEngine::absorbNoCount(rev, 0, p1);
    ReduceEngine::absorbNoCount(rev, 0, p2);
    EXPECT_TRUE(ReduceEngine::finalWindow(fwd).contentEquals(
        ReduceEngine::finalWindow(rev)));
}
