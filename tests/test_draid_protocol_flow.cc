// dRAID protocol-level behaviour: bandwidth accounting (the paper's core
// claim), pipeline/barrier/relay ablations, late-Parity tolerance.

#include <gtest/gtest.h>

#include "draid_test_util.h"
#include "workload/fio.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using raid::RaidLevel;

namespace {

DraidOptions
opts()
{
    DraidOptions o;
    o.level = RaidLevel::kRaid5;
    o.chunkSize = 64 * 1024;
    return o;
}

/** Host tx bytes consumed by one partial-stripe write of `len` bytes. */
std::uint64_t
hostTxForWrite(DraidRig &rig, std::uint32_t len)
{
    ec::Buffer data(len);
    data.fillPattern(9);
    const std::uint64_t tx0 =
        rig.cluster->host().nic().tx().bytesTransferred();
    EXPECT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    return rig.cluster->host().nic().tx().bytesTransferred() - tx0;
}

} // namespace

TEST(DraidProtocol, PartialWriteCostsOneUserByteOfHostTx)
{
    // The headline property (§5, Table 1): write overhead 1x at the host.
    DraidRig rig(8, opts());
    const std::uint64_t tx = hostTxForWrite(rig, 128 * 1024);
    EXPECT_GE(tx, 128u * 1024);
    EXPECT_LT(tx, 128u * 1024 + 4096); // + command capsules only
}

TEST(DraidProtocol, PartialParitiesFlowBetweenPeers)
{
    DraidRig rig(8, opts());
    const auto &g = rig.host().geometry();
    ec::Buffer data(128 * 1024);
    data.fillPattern(10);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    // The written chunks' devices forwarded partial parities: their tx
    // must exceed the paper-trail of small capsules.
    const std::uint32_t dev0 = g.dataDevice(0, 0);
    EXPECT_GE(rig.cluster->target(dev0).nic().tx().bytesTransferred(),
              64u * 1024);
    // And the P bdev pulled them: rx at least the forwarded bytes.
    const std::uint32_t p_dev = g.parityDevice(0);
    EXPECT_GE(rig.cluster->target(p_dev).nic().rx().bytesTransferred(),
              128u * 1024);
}

TEST(DraidProtocol, HostRelayAblationBurnsHostBandwidth)
{
    // p2pForwarding=false models a conventional distributed RAID: the
    // partial parities are relayed through the host.
    auto o = opts();
    o.p2pForwarding = false;
    DraidRig rig(8, o);
    const std::uint64_t tx = hostTxForWrite(rig, 128 * 1024);
    // Host tx now carries user bytes + relayed partial parities.
    EXPECT_GE(tx, 2u * 128 * 1024 - 4096);

    // Data must still be correct.
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0, 128 * 1024);
    ec::Buffer expect(128 * 1024);
    expect.fillPattern(9);
    EXPECT_TRUE(got.contentEquals(expect));
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.host().geometry(), 0));
}

TEST(DraidProtocol, BarrierAblationStillCorrect)
{
    auto o = opts();
    o.nonBlockingReduce = false;
    DraidRig rig(8, o);
    ec::Buffer data(100 * 1024);
    data.fillPattern(11);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 12345, data));
    ec::Buffer got = readSync(rig.sim(), rig.host(), 12345, 100 * 1024);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.host().geometry(), 0));
}

TEST(DraidProtocol, NoPipelineAblationStillCorrect)
{
    auto o = opts();
    o.pipeline = false;
    DraidRig rig(8, o);
    ec::Buffer data(100 * 1024);
    data.fillPattern(12);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 12345, data));
    ec::Buffer got = readSync(rig.sim(), rig.host(), 12345, 100 * 1024);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.host().geometry(), 0));
}

TEST(DraidProtocol, PipelineImprovesWriteLatency)
{
    // §5.3: overlapping fetch/read/write/forward must strictly reduce
    // partial-write latency versus the serial flow.
    auto run_once = [](bool pipeline) {
        auto o = opts();
        o.pipeline = pipeline;
        DraidRig rig(8, o);
        workload::FioConfig fio;
        fio.ioSize = 64 * 1024;
        fio.ioDepth = 1;
        fio.numOps = 50;
        fio.workingSetBytes = 8ull << 20;
        workload::FioJob job(rig.sim(), rig.host(), fio);
        return job.run().avgLatencyUs;
    };
    const double piped = run_once(true);
    const double serial = run_once(false);
    EXPECT_LT(piped, serial);
}

namespace {

/** Captures the completion a bdev sends back to the "host". */
class CompletionCatcher : public net::Endpoint
{
  public:
    void
    onMessage(const net::Message &msg) override
    {
        if (msg.capsule.opcode == proto::Opcode::kCompletion)
            completions.push_back(msg.capsule);
    }

    std::vector<proto::Capsule> completions;
};

} // namespace

TEST(DraidProtocol, LateParityCommandIsToleratedAndReducesEagerly)
{
    // Drive the server-side controller directly (§5.2): a Peer partial
    // arrives BEFORE the Parity command. The bdev must absorb it
    // immediately and only persist once the Parity command lands.
    cluster::TestbedConfig cfg = smallConfig();
    cluster::Cluster cluster(cfg, 2);
    core::DraidOptions o = opts();
    core::DraidBdev parity_bdev(cluster, 0, o);
    core::DraidBdev peer_bdev(cluster, 1, o);
    CompletionCatcher host;
    cluster.fabric().setEndpoint(cluster.hostId(), &host);

    const std::uint64_t op = 7;
    const std::uint32_t len = 4096;

    ec::Buffer partial(len);
    partial.fillPattern(77);

    // Peer announcement from target 1 (node id 2) to target 0 (node 1).
    proto::Capsule peer;
    peer.opcode = proto::Opcode::kPeer;
    peer.commandId = core::makeCmdId(op, 1);
    peer.fwdOffset = 0;
    peer.fwdLength = len;
    cluster.fabric().send(net::Message{cluster.targetNodeId(1),
                                       cluster.targetNodeId(0), peer,
                                       partial});
    cluster.sim().runFor(sim::Ticks::ms(5));

    // The partial was reduced eagerly but nothing persisted yet.
    auto *session = parity_bdev.reduceEngine().find(op);
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session->absorbed, 1u);
    EXPECT_FALSE(session->hostCmdSeen);
    EXPECT_TRUE(host.completions.empty());
    EXPECT_EQ(cluster.target(0).ssd().writesCompleted(), 0u);

    // Now the (late) Parity command arrives from the host.
    proto::Capsule par;
    par.opcode = proto::Opcode::kParity;
    par.commandId = core::makeCmdId(op, core::kParitySub);
    par.subtype = proto::Subtype::kNone;
    par.offset = 0;
    par.length = len;
    par.fwdOffset = 0;
    par.fwdLength = len;
    par.waitNum = 1;
    cluster.fabric().send(net::Message{cluster.hostId(),
                                       cluster.targetNodeId(0), par, {}});
    cluster.sim().runFor(sim::Ticks::ms(5));

    EXPECT_GE(parity_bdev.counters().lateParityCmds, 1u);
    ASSERT_EQ(host.completions.size(), 1u);
    EXPECT_EQ(host.completions[0].status, proto::Status::kSuccess);
    EXPECT_TRUE(cluster.target(0).ssd().store().readSync(0, len)
                    .contentEquals(partial));
    EXPECT_EQ(parity_bdev.reduceEngine().activeSessions(), 0u);
}

TEST(DraidProtocol, BdevCountersTrackOperations)
{
    DraidRig rig(8, opts());
    const auto &g = rig.host().geometry();
    ec::Buffer data(64 * 1024); // single-chunk RMW
    data.fillPattern(14);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    const std::uint32_t d_dev = g.dataDevice(0, 0);
    const std::uint32_t p_dev = g.parityDevice(0);
    EXPECT_EQ(rig.system->bdev(d_dev).counters().partialWrites, 1u);
    EXPECT_EQ(rig.system->bdev(p_dev).counters().parityCmds, 1u);
    EXPECT_GE(rig.system->bdev(p_dev).counters().peersAbsorbed, 1u);
    EXPECT_EQ(rig.system->bdev(p_dev).counters().reductionsFinished, 1u);
    EXPECT_EQ(rig.system->bdev(p_dev).reduceEngine().activeSessions(), 0u);
}

TEST(DraidProtocol, ReadsAreLockFree)
{
    DraidRig rig(8, opts());
    ec::Buffer data(64 * 1024);
    data.fillPattern(15);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    int completed = 0;
    for (int i = 0; i < 16; ++i) {
        rig.host().read(0, 4096, [&](blockdev::IoStatus, ec::Buffer) {
            ++completed;
        });
    }
    rig.sim().run();
    EXPECT_EQ(completed, 16);
    // Reads never touched the write-lock table.
    EXPECT_EQ(rig.host().stripeLocks().contendedAcquires(), 0u);
}

TEST(DraidProtocol, FullStripeWriteSkipsPeerForwarding)
{
    DraidRig rig(8, opts());
    const auto &g = rig.host().geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(16);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    // FSW computes parity at the host: no Parity/Peer commands at all.
    for (std::uint32_t i = 0; i < rig.system->numBdevs(); ++i) {
        EXPECT_EQ(rig.system->bdev(i).counters().parityCmds, 0u);
        EXPECT_EQ(rig.system->bdev(i).counters().peersAbsorbed, 0u);
    }
}
