// GF(2^8) field axioms and RAID-6 generator properties.

#include <gtest/gtest.h>

#include "ec/gf256.h"

using draid::ec::Gf256;

TEST(Gf256, MultiplicationByZeroAndOne)
{
    const auto &gf = Gf256::instance();
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 0), 0);
        EXPECT_EQ(gf.mul(0, static_cast<std::uint8_t>(a)), 0);
        EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 1), a);
    }
}

TEST(Gf256, MultiplicationCommutative)
{
    const auto &gf = Gf256::instance();
    for (int a = 1; a < 256; a += 7) {
        for (int b = 1; b < 256; b += 11) {
            EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b)),
                      gf.mul(static_cast<std::uint8_t>(b),
                             static_cast<std::uint8_t>(a)));
        }
    }
}

TEST(Gf256, MultiplicationAssociative)
{
    const auto &gf = Gf256::instance();
    for (int a = 1; a < 256; a += 31) {
        for (int b = 1; b < 256; b += 37) {
            for (int c = 1; c < 256; c += 41) {
                const auto x = static_cast<std::uint8_t>(a);
                const auto y = static_cast<std::uint8_t>(b);
                const auto z = static_cast<std::uint8_t>(c);
                EXPECT_EQ(gf.mul(gf.mul(x, y), z), gf.mul(x, gf.mul(y, z)));
            }
        }
    }
}

TEST(Gf256, DistributesOverXor)
{
    const auto &gf = Gf256::instance();
    for (int a = 1; a < 256; a += 13) {
        for (int b = 0; b < 256; b += 17) {
            for (int c = 0; c < 256; c += 19) {
                const auto x = static_cast<std::uint8_t>(a);
                const auto y = static_cast<std::uint8_t>(b);
                const auto z = static_cast<std::uint8_t>(c);
                EXPECT_EQ(gf.mul(x, y ^ z), gf.mul(x, y) ^ gf.mul(x, z));
            }
        }
    }
}

TEST(Gf256, InverseRoundTrips)
{
    const auto &gf = Gf256::instance();
    for (int a = 1; a < 256; ++a) {
        const auto x = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gf.mul(x, gf.inv(x)), 1) << "a=" << a;
    }
}

TEST(Gf256, DivisionInvertsMultiplication)
{
    const auto &gf = Gf256::instance();
    for (int a = 0; a < 256; a += 5) {
        for (int b = 1; b < 256; b += 9) {
            const auto x = static_cast<std::uint8_t>(a);
            const auto y = static_cast<std::uint8_t>(b);
            EXPECT_EQ(gf.div(gf.mul(x, y), y), x);
        }
    }
}

TEST(Gf256, GeneratorHasFullOrder)
{
    const auto &gf = Gf256::instance();
    // g = 2 generates the whole multiplicative group: g^i distinct for
    // i in [0, 255).
    bool seen[256] = {};
    for (unsigned i = 0; i < 255; ++i) {
        const auto v = gf.pow2(i);
        EXPECT_NE(v, 0);
        EXPECT_FALSE(seen[v]) << "repeat at i=" << i;
        seen[v] = true;
    }
    EXPECT_EQ(gf.pow2(255), gf.pow2(0));
}

TEST(Gf256, Pow2MatchesRepeatedDoubling)
{
    const auto &gf = Gf256::instance();
    std::uint8_t v = 1;
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_EQ(gf.pow2(i), v);
        v = gf.mul(v, 2);
    }
}

TEST(Gf256, MulAccumMatchesScalarLoop)
{
    const auto &gf = Gf256::instance();
    std::uint8_t src[257], dst[257], ref[257];
    for (int i = 0; i < 257; ++i) {
        src[i] = static_cast<std::uint8_t>(i * 7 + 3);
        dst[i] = static_cast<std::uint8_t>(i * 13 + 5);
        ref[i] = dst[i] ^ gf.mul(0x1d, src[i]);
    }
    gf.mulAccum(0x1d, src, dst, 257);
    for (int i = 0; i < 257; ++i)
        EXPECT_EQ(dst[i], ref[i]);
}

TEST(Gf256, MulBlockByZeroClears)
{
    const auto &gf = Gf256::instance();
    std::uint8_t src[16], dst[16];
    for (int i = 0; i < 16; ++i) {
        src[i] = static_cast<std::uint8_t>(i + 1);
        dst[i] = 0xff;
    }
    gf.mulBlock(0, src, dst, 16);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(dst[i], 0);
}
