// Property-style sweeps across geometries: for random workloads, dRAID
// and both baselines must agree with a reference model and leave
// scrubbable parity; dRAID must obey its bandwidth invariant.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "baselines/linux_md.h"
#include "baselines/spdk_raid.h"
#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using raid::RaidLevel;

namespace {

struct Shape
{
    RaidLevel level;
    std::uint32_t width;
    std::uint32_t chunk;
};

std::string
shapeName(const ::testing::TestParamInfo<Shape> &info)
{
    const auto &s = info.param;
    return std::string(s.level == RaidLevel::kRaid6 ? "raid6" : "raid5") +
           "_w" + std::to_string(s.width) + "_c" +
           std::to_string(s.chunk / 1024) + "k";
}

} // namespace

class DraidPropertySweep : public ::testing::TestWithParam<Shape>
{
};

TEST_P(DraidPropertySweep, RandomOpsMatchModelAndScrub)
{
    const Shape s = GetParam();
    DraidOptions o;
    o.level = s.level;
    o.chunkSize = s.chunk;
    DraidRig rig(s.width, o);
    const auto &g = rig.host().geometry();

    const std::uint64_t stripes = 5;
    const std::uint64_t span = stripes * g.stripeDataSize();
    std::vector<std::uint8_t> model(span, 0);
    sim::Rng rng(s.width * 31 + s.chunk);

    for (int i = 0; i < 25; ++i) {
        const std::uint32_t len = static_cast<std::uint32_t>(
            512 * (1 + rng.nextBounded(2 * s.chunk / 512)));
        const std::uint64_t off = rng.nextBounded(span - len);
        ec::Buffer data(len);
        data.fillPattern(i * 17 + 3);
        std::memcpy(model.data() + off, data.data(), len);
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));

        // Interleave random reads.
        const std::uint32_t rlen = static_cast<std::uint32_t>(
            512 * (1 + rng.nextBounded(16)));
        const std::uint64_t roff = rng.nextBounded(span - rlen);
        bool ok = false;
        ec::Buffer got = readSync(rig.sim(), rig.host(), roff, rlen, &ok);
        ASSERT_TRUE(ok);
        ASSERT_EQ(std::memcmp(got.data(), model.data() + roff, rlen), 0);
    }
    for (std::uint64_t st = 0; st < stripes; ++st)
        ASSERT_TRUE(scrubStripe(*rig.cluster, g, st)) << "stripe " << st;
}

TEST_P(DraidPropertySweep, HostTxNeverExceedsUserBytesPlusCapsules)
{
    // The §5 invariant, swept across shapes: writes cost 1x host tx.
    const Shape s = GetParam();
    DraidOptions o;
    o.level = s.level;
    o.chunkSize = s.chunk;
    DraidRig rig(s.width, o);
    const auto &g = rig.host().geometry();

    sim::Rng rng(s.width * 7 + 1);
    std::uint64_t user_bytes = 0;
    const std::uint64_t tx0 =
        rig.cluster->host().nic().tx().bytesTransferred();
    int capsule_budget = 0;
    for (int i = 0; i < 15; ++i) {
        // Partial writes only (full-stripe legitimately sends parity too).
        const std::uint32_t len = static_cast<std::uint32_t>(
            512 * (1 + rng.nextBounded(s.chunk / 512)));
        const std::uint64_t off =
            rng.nextBounded(4 * g.stripeDataSize() - len);
        ec::Buffer data(len);
        data.fillPattern(i);
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
        user_bytes += len;
        capsule_budget += 3 * (s.level == RaidLevel::kRaid6 ? 4 : 3);
    }
    const std::uint64_t tx =
        rig.cluster->host().nic().tx().bytesTransferred() - tx0;
    EXPECT_GE(tx, user_bytes);
    EXPECT_LE(tx, user_bytes +
                      static_cast<std::uint64_t>(capsule_budget) * 256);
}

TEST_P(DraidPropertySweep, DegradedReadsMatchModelForEveryFailedDevice)
{
    const Shape s = GetParam();
    DraidOptions o;
    o.level = s.level;
    o.chunkSize = s.chunk;

    for (std::uint32_t victim = 0; victim < s.width; victim += 3) {
        DraidRig rig(s.width, o);
        const auto &g = rig.host().geometry();
        const std::uint64_t span = 3 * g.stripeDataSize();
        ec::Buffer data(span);
        data.fillPattern(victim + 1);
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

        rig.host().markFailed(victim);
        bool ok = false;
        ec::Buffer got = readSync(rig.sim(), rig.host(), 0,
                                  static_cast<std::uint32_t>(span), &ok);
        ASSERT_TRUE(ok);
        EXPECT_TRUE(got.contentEquals(data)) << "victim " << victim;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DraidPropertySweep,
    ::testing::Values(Shape{RaidLevel::kRaid5, 4, 16 * 1024},
                      Shape{RaidLevel::kRaid5, 6, 64 * 1024},
                      Shape{RaidLevel::kRaid5, 9, 32 * 1024},
                      Shape{RaidLevel::kRaid6, 5, 16 * 1024},
                      Shape{RaidLevel::kRaid6, 8, 64 * 1024},
                      Shape{RaidLevel::kRaid6, 11, 32 * 1024}),
    shapeName);

class CrossSystemEquivalence : public ::testing::TestWithParam<Shape>
{
};

TEST_P(CrossSystemEquivalence, AllThreeSystemsStoreIdenticalUserData)
{
    // Same op sequence against dRAID, SPDK, and MD: all must read back
    // the same bytes (the systems differ in performance, never content).
    const Shape s = GetParam();

    auto run = [&](int which) {
        cluster::TestbedConfig cfg = smallConfig();
        auto cluster = std::make_unique<cluster::Cluster>(cfg, s.width);
        std::unique_ptr<blockdev::BlockDevice> dev;
        std::unique_ptr<core::DraidSystem> dsys;
        if (which == 0) {
            DraidOptions o;
            o.level = s.level;
            o.chunkSize = s.chunk;
            dsys = std::make_unique<core::DraidSystem>(*cluster, o);
        } else if (which == 1) {
            dev = std::make_unique<baselines::SpdkRaid>(*cluster, s.level,
                                                        s.chunk);
        } else {
            dev = std::make_unique<baselines::LinuxMdRaid>(*cluster,
                                                           s.level,
                                                           s.chunk);
        }
        blockdev::BlockDevice &bd = dsys ? static_cast<blockdev::BlockDevice &>(
                                               dsys->host())
                                         : *dev;

        sim::Rng rng(2024);
        const std::uint64_t span = 3ull * (s.width - 2) * s.chunk;
        for (int i = 0; i < 20; ++i) {
            const std::uint32_t len = static_cast<std::uint32_t>(
                1024 * (1 + rng.nextBounded(48)));
            const std::uint64_t off = rng.nextBounded(span - len);
            ec::Buffer data(len);
            data.fillPattern(i * 7);
            EXPECT_TRUE(writeSync(cluster->sim(), bd, off, data));
        }
        bool ok = false;
        return readSync(cluster->sim(), bd, 0,
                        static_cast<std::uint32_t>(span), &ok);
    };

    ec::Buffer a = run(0), b = run(1), c = run(2);
    EXPECT_TRUE(a.contentEquals(b));
    EXPECT_TRUE(a.contentEquals(c));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossSystemEquivalence,
    ::testing::Values(Shape{RaidLevel::kRaid5, 6, 64 * 1024},
                      Shape{RaidLevel::kRaid6, 7, 32 * 1024}),
    shapeName);
