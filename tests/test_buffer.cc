// Buffer semantics: sharing, cloning, slicing, patterns.

#include <gtest/gtest.h>

#include "ec/buffer.h"

using draid::ec::Buffer;

TEST(Buffer, DefaultIsEmpty)
{
    Buffer b;
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.size(), 0u);
}

TEST(Buffer, AllocatesZeroInitialized)
{
    Buffer b(64);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(b[i], 0);
}

TEST(Buffer, CopyIsShared)
{
    Buffer a(16);
    Buffer b = a;
    a[3] = 0xaa;
    EXPECT_EQ(b[3], 0xaa);
}

TEST(Buffer, CloneIsDeep)
{
    Buffer a(16);
    a[3] = 0x11;
    Buffer b = a.clone();
    a[3] = 0x22;
    EXPECT_EQ(b[3], 0x11);
}

TEST(Buffer, SliceExtractsRange)
{
    Buffer a(10);
    for (std::size_t i = 0; i < 10; ++i)
        a[i] = static_cast<std::uint8_t>(i);
    Buffer s = a.slice(3, 4);
    ASSERT_EQ(s.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(s[i], i + 3);
}

TEST(Buffer, ContentEquals)
{
    Buffer a(8), b(8), c(9);
    a.fill(0x5a);
    b.fill(0x5a);
    EXPECT_TRUE(a.contentEquals(b));
    EXPECT_FALSE(a.contentEquals(c));
    b[0] = 0;
    EXPECT_FALSE(a.contentEquals(b));
    EXPECT_TRUE(Buffer().contentEquals(Buffer()));
}

TEST(Buffer, PatternIsDeterministicAndSeedSensitive)
{
    Buffer a(256), b(256), c(256);
    a.fillPattern(42);
    b.fillPattern(42);
    c.fillPattern(43);
    EXPECT_TRUE(a.contentEquals(b));
    EXPECT_FALSE(a.contentEquals(c));
}

TEST(Buffer, ConstructFromRawBytes)
{
    const std::uint8_t raw[] = {1, 2, 3, 4};
    Buffer b(raw, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 1);
    EXPECT_EQ(b[3], 4);
}
