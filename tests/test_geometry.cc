// Geometry: rotation invariants, role/index inverses, extent mapping.

#include <gtest/gtest.h>

#include <set>

#include "raid/geometry.h"

using namespace draid::raid;

class GeometryParam
    : public ::testing::TestWithParam<std::tuple<RaidLevel, std::uint32_t>>
{
  protected:
    RaidLevel level() const { return std::get<0>(GetParam()); }
    std::uint32_t width() const { return std::get<1>(GetParam()); }
};

TEST_P(GeometryParam, EveryStripePlacesEveryRoleOnDistinctDevices)
{
    Geometry g(level(), 512 * 1024, width());
    for (std::uint64_t s = 0; s < 3 * width(); ++s) {
        std::set<std::uint32_t> used;
        used.insert(g.parityDevice(s));
        if (level() == RaidLevel::kRaid6)
            used.insert(g.qDevice(s));
        for (std::uint32_t i = 0; i < g.dataChunks(); ++i)
            used.insert(g.dataDevice(s, i));
        EXPECT_EQ(used.size(), width()) << "stripe " << s;
    }
}

TEST_P(GeometryParam, ParityRotatesOverAllDevices)
{
    Geometry g(level(), 64 * 1024, width());
    std::set<std::uint32_t> parity_devs;
    for (std::uint64_t s = 0; s < width(); ++s)
        parity_devs.insert(g.parityDevice(s));
    EXPECT_EQ(parity_devs.size(), width());
}

TEST_P(GeometryParam, RoleAndIndexAreConsistent)
{
    Geometry g(level(), 128 * 1024, width());
    for (std::uint64_t s = 0; s < 2 * width(); ++s) {
        for (std::uint32_t d = 0; d < width(); ++d) {
            const ChunkRole role = g.roleOf(s, d);
            if (role == ChunkRole::kData) {
                const std::uint32_t idx = g.dataIndexOf(s, d);
                EXPECT_EQ(g.dataDevice(s, idx), d);
            } else if (role == ChunkRole::kParityP) {
                EXPECT_EQ(g.parityDevice(s), d);
            } else {
                EXPECT_EQ(g.qDevice(s), d);
            }
        }
    }
}

TEST_P(GeometryParam, DataChunkCountMatchesLevel)
{
    Geometry g(level(), 4096, width());
    const std::uint32_t pc = level() == RaidLevel::kRaid6 ? 2 : 1;
    EXPECT_EQ(g.parityCount(), pc);
    EXPECT_EQ(g.dataChunks(), width() - pc);
    EXPECT_EQ(g.stripeDataSize(),
              static_cast<std::uint64_t>(width() - pc) * 4096);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryParam,
    ::testing::Combine(::testing::Values(RaidLevel::kRaid5,
                                         RaidLevel::kRaid6),
                       ::testing::Values(4u, 5u, 8u, 13u, 18u)));

TEST(Geometry, MapSingleChunkInterior)
{
    Geometry g(RaidLevel::kRaid5, 512 * 1024, 8); // 7 data chunks
    auto ext = g.map(100, 1000);
    ASSERT_EQ(ext.size(), 1u);
    EXPECT_EQ(ext[0].stripe, 0u);
    EXPECT_EQ(ext[0].dataIdx, 0u);
    EXPECT_EQ(ext[0].offset, 100u);
    EXPECT_EQ(ext[0].length, 1000u);
}

TEST(Geometry, MapSplitsAcrossChunks)
{
    Geometry g(RaidLevel::kRaid5, 1024, 4); // 3 data chunks, stripe 3072
    auto ext = g.map(1000, 2000);
    ASSERT_EQ(ext.size(), 3u);
    EXPECT_EQ(ext[0].dataIdx, 0u);
    EXPECT_EQ(ext[0].offset, 1000u);
    EXPECT_EQ(ext[0].length, 24u);
    EXPECT_EQ(ext[1].dataIdx, 1u);
    EXPECT_EQ(ext[1].length, 1024u);
    EXPECT_EQ(ext[2].dataIdx, 2u);
    EXPECT_EQ(ext[2].length, 952u);
}

TEST(Geometry, MapSplitsAcrossStripes)
{
    Geometry g(RaidLevel::kRaid5, 1024, 4); // stripe data = 3072
    auto ext = g.map(3000, 200);
    ASSERT_EQ(ext.size(), 2u);
    EXPECT_EQ(ext[0].stripe, 0u);
    EXPECT_EQ(ext[0].dataIdx, 2u);
    EXPECT_EQ(ext[0].length, 72u);
    EXPECT_EQ(ext[1].stripe, 1u);
    EXPECT_EQ(ext[1].dataIdx, 0u);
    EXPECT_EQ(ext[1].offset, 0u);
    EXPECT_EQ(ext[1].length, 128u);
}

TEST(Geometry, MapTotalLengthPreserved)
{
    Geometry g(RaidLevel::kRaid6, 4096, 6);
    for (std::uint64_t off : {0ull, 100ull, 5000ull, 123456ull}) {
        for (std::uint64_t len : {1ull, 4096ull, 100000ull}) {
            std::uint64_t sum = 0;
            for (const auto &e : g.map(off, len))
                sum += e.length;
            EXPECT_EQ(sum, len);
        }
    }
}

TEST(Geometry, DeviceAddressLayout)
{
    Geometry g(RaidLevel::kRaid5, 1 << 20, 8);
    EXPECT_EQ(g.deviceAddress(0, 0), 0u);
    EXPECT_EQ(g.deviceAddress(3, 100), 3ull * (1 << 20) + 100);
}

TEST(Geometry, StripeOf)
{
    Geometry g(RaidLevel::kRaid5, 1024, 4); // 3072 per stripe
    EXPECT_EQ(g.stripeOf(0), 0u);
    EXPECT_EQ(g.stripeOf(3071), 0u);
    EXPECT_EQ(g.stripeOf(3072), 1u);
}
