// SimProfiler: per-label attribution, heap histograms, and the
// observe-only guarantee (profiling must not perturb the simulation).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "sim/simulator.h"
#include "telemetry/sim_profiler.h"

using draid::sim::Simulator;
using draid::sim::Tick;
namespace sim = draid::sim;
using draid::telemetry::SimProfiler;

namespace {

/** Find a label's row in a report; fails the test if absent. */
const SimProfiler::LabelCost &
rowFor(const SimProfiler::Report &report, const std::string &label)
{
    for (const auto &src : report.sources)
        if (src.label == label)
            return src;
    ADD_FAILURE() << "label not found: " << label;
    static const SimProfiler::LabelCost kEmpty;
    return kEmpty;
}

} // namespace

TEST(SimProfiler, CountsEventsPerLabelExactly)
{
    Simulator sim;
    SimProfiler profiler;
    profiler.attach(sim);
    for (int i = 0; i < 7; ++i)
        sim.schedule(sim::Ticks{10 + i}, "alpha", []() {});
    for (int i = 0; i < 3; ++i)
        sim.schedule(sim::Ticks{5}, "beta", []() {});
    sim.schedule(sim::Ticks{1}, []() {}); // unlabeled
    sim.run();

    const SimProfiler::Report report = profiler.report();
    EXPECT_EQ(report.events, 11u);
    EXPECT_EQ(report.scheduled, 11u);
    ASSERT_EQ(report.sources.size(), 3u);
    EXPECT_EQ(rowFor(report, "alpha").count, 7u);
    EXPECT_EQ(rowFor(report, "beta").count, 3u);
    EXPECT_EQ(rowFor(report, "(unlabeled)").count, 1u);
    for (const auto &src : report.sources) {
        EXPECT_GE(src.maxNs, src.minNs) << src.label;
        EXPECT_GE(src.totalNs, src.maxNs) << src.label;
    }
}

TEST(SimProfiler, MergesIdenticalLabelsAcrossDistinctPointers)
{
    // Labels are cached by pointer but merged by name: two distinct char
    // arrays with equal contents must land in one report row.
    static const char kA[] = "same.name";
    static const char kB[] = "same.name";
    ASSERT_NE(static_cast<const void *>(kA), static_cast<const void *>(kB));
    Simulator sim;
    SimProfiler profiler;
    profiler.attach(sim);
    sim.schedule(sim::Ticks{1}, kA, []() {});
    sim.schedule(sim::Ticks{2}, kB, []() {});
    sim.run();

    const SimProfiler::Report report = profiler.report();
    ASSERT_EQ(report.sources.size(), 1u);
    EXPECT_EQ(report.sources[0].label, "same.name");
    EXPECT_EQ(report.sources[0].count, 2u);
}

TEST(SimProfiler, BinForMatchesLog2Semantics)
{
    // Bin b holds v in [2^b, 2^(b+1)); 0 maps to bin 0.
    EXPECT_EQ(SimProfiler::binFor(0), 0u);
    EXPECT_EQ(SimProfiler::binFor(1), 0u);
    EXPECT_EQ(SimProfiler::binFor(2), 1u);
    EXPECT_EQ(SimProfiler::binFor(3), 1u);
    EXPECT_EQ(SimProfiler::binFor(4), 2u);
    EXPECT_EQ(SimProfiler::binFor(7), 2u);
    EXPECT_EQ(SimProfiler::binFor(8), 3u);
    EXPECT_EQ(SimProfiler::binFor(1u << 20), 20u);
    EXPECT_EQ(SimProfiler::binFloor(0), 1u);
    EXPECT_EQ(SimProfiler::binFloor(10), 1024u);
}

TEST(SimProfiler, HeapStatsAndHistogramsMatchHandBuiltSchedule)
{
    // 8 events on one tick + 1 on another: drains of size 8 and 1,
    // queue depth peaking at 9.
    Simulator sim;
    SimProfiler profiler;
    profiler.attach(sim);
    for (int i = 0; i < 8; ++i)
        sim.schedule(sim::Ticks{10}, "wide", []() {});
    sim.schedule(sim::Ticks{20}, "lone", []() {});
    sim.run();

    const SimProfiler::Report report = profiler.report();
    EXPECT_EQ(report.scheduled, 9u);
    EXPECT_EQ(report.events, 9u);
    EXPECT_EQ(report.drains, 2u);
    EXPECT_EQ(report.maxQueueDepth, 9u);
    EXPECT_EQ(report.maxBatch, 8u);
    ASSERT_EQ(report.batchHist.size(), SimProfiler::kHistBins);
    ASSERT_EQ(report.depthHist.size(), SimProfiler::kHistBins);
    // Batch sizes 8 and 1 land in bins 3 and 0.
    EXPECT_EQ(report.batchHist[SimProfiler::binFor(8)], 1u);
    EXPECT_EQ(report.batchHist[SimProfiler::binFor(1)], 1u);
    for (std::size_t b = 0; b < SimProfiler::kHistBins; ++b)
        if (b != 0 && b != 3)
            EXPECT_EQ(report.batchHist[b], 0u) << "bin " << b;
    // Queue depths observed at push time: 1..9 → bins 0,1,1,2,2,2,2,3,3.
    EXPECT_EQ(report.depthHist[0], 1u);
    EXPECT_EQ(report.depthHist[1], 2u);
    EXPECT_EQ(report.depthHist[2], 4u);
    EXPECT_EQ(report.depthHist[3], 2u);
}

TEST(SimProfiler, ProfiledRunLeavesSimulationByteIdentical)
{
    // The determinism guard: the exact same workload driven with and
    // without a profiler attached must produce an identical simulated
    // trace — same ticks, same labels, same order, same final clock and
    // counters. This is the in-process version of CI's on/off byte
    // compare of the bench artifacts.
    using Row = std::tuple<Tick, std::string, int>;
    const auto drive = [](bool profiled, std::vector<Row> &trace) {
        Simulator sim;
        SimProfiler profiler;
        if (profiled)
            profiler.attach(sim);
        int seq = 0;
        for (int i = 0; i < 50; ++i) {
            const Tick when = (i * 37) % 11;
            const int id = seq++;
            sim.schedule(sim::Ticks{when}, "outer", [&, id]() {
                trace.emplace_back(sim.now().raw(), "outer", id);
                // Nested fan-out, including same-tick zero-delay events.
                for (int k = 0; k < 2; ++k) {
                    const int nested = seq++;
                    sim.schedule(sim::Ticks{k}, "inner", [&, nested]() {
                        trace.emplace_back(sim.now().raw(), "inner", nested);
                    });
                }
            });
        }
        sim.run();
        trace.emplace_back(sim.now().raw(), "final",
                           static_cast<int>(sim.eventsExecuted()));
    };
    std::vector<Row> off;
    std::vector<Row> on;
    drive(false, off);
    drive(true, on);
    EXPECT_EQ(off, on);
}

TEST(SimProfiler, WallClockFieldsArePlausible)
{
    Simulator sim;
    SimProfiler profiler;
    profiler.attach(sim);
    // Enough work that the run window is strictly positive even at a
    // coarse clock granularity.
    for (int i = 0; i < 10000; ++i)
        sim.schedule(sim::Ticks{i % 100}, "work", []() {});
    sim.run();

    const SimProfiler::Report report = profiler.report();
    EXPECT_GT(report.wallNs, 0u);
    EXPECT_GT(report.eventsPerSec, 0.0);
    const auto &row = rowFor(report, "work");
    EXPECT_EQ(row.count, 10000u);
    EXPECT_DOUBLE_EQ(row.share, 1.0); // only label → all attributed time
    EXPECT_GE(row.meanNs, 0.0);
}

TEST(SimProfiler, AccumulatesAcrossSimulators)
{
    // The bench harness points one profiler at several simulators in
    // sequence; counters must accumulate, not reset on attach.
    SimProfiler profiler;
    for (int r = 0; r < 3; ++r) {
        Simulator sim;
        profiler.attach(sim);
        for (int i = 0; i < 5; ++i)
            sim.schedule(sim::Ticks{i}, "round", []() {});
        sim.run();
    }
    const SimProfiler::Report report = profiler.report();
    EXPECT_EQ(report.events, 15u);
    EXPECT_EQ(rowFor(report, "round").count, 15u);
}

TEST(SimProfiler, WriteJsonEmitsRequiredKeys)
{
    Simulator sim;
    SimProfiler profiler;
    profiler.attach(sim);
    sim.schedule(sim::Ticks{1}, "k1", []() {});
    sim.schedule(sim::Ticks{1}, "k2", []() {});
    sim.run();

    std::ostringstream os;
    SimProfiler::writeJson(os, profiler.report(), "unit_test", 42);
    const std::string json = os.str();
    for (const char *key :
         {"\"bench\":\"unit_test\"", "\"seed\":42", "\"events\":",
          "\"wall_ns\":", "\"events_per_sec\":", "\"heap_stats\":",
          "\"pushes\":", "\"pops\":", "\"batches\":",
          "\"max_queue_depth\":", "\"max_batch\":",
          "\"queue_depth_hist\":", "\"batch_size_hist\":",
          "\"top_sources\":", "\"label\":\"k1\"", "\"label\":\"k2\"",
          "\"count\":", "\"total_ns\":", "\"min_ns\":", "\"max_ns\":",
          "\"mean_ns\":", "\"share\":"})
        EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
    EXPECT_EQ(json.back(), '\n');
}

TEST(SimProfiler, RenderAsciiShowsTotalsAndTopSources)
{
    Simulator sim;
    SimProfiler profiler;
    profiler.attach(sim);
    for (int i = 0; i < 4; ++i)
        sim.schedule(sim::Ticks{i}, "hot.path", []() {});
    sim.run();

    std::ostringstream os;
    SimProfiler::renderAscii(os, profiler.report(), "unit");
    const std::string text = os.str();
    EXPECT_NE(text.find("unit"), std::string::npos);
    EXPECT_NE(text.find("hot.path"), std::string::npos);
    EXPECT_NE(text.find("events"), std::string::npos);
}
