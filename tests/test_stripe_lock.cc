// Stripe lock table: exclusivity, FIFO handoff, independence of stripes.

#include <gtest/gtest.h>

#include <vector>

#include "raid/stripe_lock.h"

using draid::raid::StripeLockTable;

TEST(StripeLock, GrantsImmediatelyWhenFree)
{
    StripeLockTable t;
    bool granted = false;
    t.acquire(7, [&]() { granted = true; });
    EXPECT_TRUE(granted);
    EXPECT_TRUE(t.isLocked(7));
}

TEST(StripeLock, SecondAcquirerWaits)
{
    StripeLockTable t;
    bool second = false;
    t.acquire(1, []() {});
    t.acquire(1, [&]() { second = true; });
    EXPECT_FALSE(second);
    t.release(1);
    EXPECT_TRUE(second);
    EXPECT_TRUE(t.isLocked(1)); // handed off, still held
    t.release(1);
    EXPECT_FALSE(t.isLocked(1));
}

TEST(StripeLock, FifoOrderAmongWaiters)
{
    StripeLockTable t;
    std::vector<int> order;
    t.acquire(5, [&]() { order.push_back(0); });
    for (int i = 1; i <= 4; ++i)
        t.acquire(5, [&, i]() { order.push_back(i); });
    for (int i = 0; i < 5; ++i)
        t.release(5);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_FALSE(t.isLocked(5));
}

TEST(StripeLock, DifferentStripesIndependent)
{
    StripeLockTable t;
    bool a = false, b = false;
    t.acquire(10, [&]() { a = true; });
    t.acquire(11, [&]() { b = true; });
    EXPECT_TRUE(a);
    EXPECT_TRUE(b);
    EXPECT_EQ(t.locksHeld(), 2u);
}

TEST(StripeLock, ContentionCounter)
{
    StripeLockTable t;
    t.acquire(3, []() {});
    EXPECT_EQ(t.contendedAcquires(), 0u);
    t.acquire(3, []() {});
    t.acquire(3, []() {});
    EXPECT_EQ(t.contendedAcquires(), 2u);
}

TEST(StripeLock, ReleaseCleansUpState)
{
    StripeLockTable t;
    t.acquire(42, []() {});
    t.release(42);
    EXPECT_EQ(t.locksHeld(), 0u);
    // Can be re-acquired after full release.
    bool again = false;
    t.acquire(42, [&]() { again = true; });
    EXPECT_TRUE(again);
}
