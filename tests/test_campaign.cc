// Fault-campaign engine: durability math, schedule generation, fault
// hooks (gray drive, latent sector errors, rebuild stripe failures), and
// an end-to-end mini campaign with a deterministic JSON report.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/durability.h"
#include "campaign/fault_schedule.h"
#include "core/reconstruct.h"
#include "draid_test_util.h"
#include "ec/buffer.h"
#include "nvme/ssd.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "telemetry/event_journal.h"

namespace campaign = draid::campaign;
namespace testutil = draid::testutil;
using draid::sim::Simulator;
using draid::telemetry::EventJournal;
using draid::telemetry::EventType;

// ---------------------------------------------------------------------------
// Durability math
// ---------------------------------------------------------------------------

TEST(Durability, WilsonIntervalHandChecked)
{
    // 0/32 losses at 95%: the upper bound is z^2 / (n + z^2).
    const campaign::WilsonInterval w0 = campaign::wilsonInterval(0, 32);
    EXPECT_DOUBLE_EQ(w0.lo, 0.0);
    EXPECT_NEAR(w0.hi, 1.96 * 1.96 / (32.0 + 1.96 * 1.96), 1e-12);
    EXPECT_NEAR(w0.hi, 0.107183, 1e-6);

    // 6/32 losses: the interval brackets the point estimate.
    const campaign::WilsonInterval w6 = campaign::wilsonInterval(6, 32);
    EXPECT_LT(w6.lo, 6.0 / 32.0);
    EXPECT_GT(w6.hi, 6.0 / 32.0);
    EXPECT_NEAR(w6.lo, 0.088894, 1e-6);
    EXPECT_NEAR(w6.hi, 0.353095, 1e-6);

    // Mirror symmetry: losses and survivals swap the bounds.
    const campaign::WilsonInterval w26 = campaign::wilsonInterval(26, 32);
    EXPECT_NEAR(w26.lo, 1.0 - w6.hi, 1e-12);
    EXPECT_NEAR(w26.hi, 1.0 - w6.lo, 1e-12);
}

TEST(Durability, WilsonIntervalDegenerateCases)
{
    const campaign::WilsonInterval none = campaign::wilsonInterval(0, 0);
    EXPECT_DOUBLE_EQ(none.lo, 0.0);
    EXPECT_DOUBLE_EQ(none.hi, 1.0);

    const campaign::WilsonInterval all = campaign::wilsonInterval(32, 32);
    EXPECT_GT(all.lo, 0.8);
    EXPECT_DOUBLE_EQ(all.hi, 1.0);
}

TEST(Durability, MttdlFormulas)
{
    // MTTF^2 / (N (N-1) MTTR) with easy numbers.
    EXPECT_NEAR(campaign::mttdlHours(100.0, 1.0, 4),
                100.0 * 100.0 / (4.0 * 3.0), 1e-9);

    // Sim gap Exp(gap) vs real gap Exp(MTTF / (width-1)).
    EXPECT_NEAR(campaign::accelHoursPerTick(1.2e6, 4, 4.0e6), 0.1, 1e-12);

    // A rebuild lasting gap*ln2 loses exactly half the trials.
    const double gap = 5.0e6;
    EXPECT_NEAR(campaign::modelLossProbability(gap * std::log(2.0), gap),
                0.5, 1e-12);
    EXPECT_NEAR(campaign::modelLossProbability(0.0, gap), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

TEST(FaultSchedule, SameSeedSameSchedule)
{
    const campaign::ScheduleShape shape;
    for (const campaign::ScenarioClass cls :
         {campaign::ScenarioClass::kBenign,
          campaign::ScenarioClass::kCorrelatedDual,
          campaign::ScenarioClass::kLseRebuild,
          campaign::ScenarioClass::kGrayFlap}) {
        draid::sim::Rng a(42), b(42);
        const std::vector<campaign::FaultAction> sa =
            campaign::generateSchedule(cls, shape, a);
        const std::vector<campaign::FaultAction> sb =
            campaign::generateSchedule(cls, shape, b);
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i].tick, sb[i].tick);
            EXPECT_EQ(sa[i].kind, sb[i].kind);
            EXPECT_EQ(sa[i].device, sb[i].device);
            EXPECT_EQ(sa[i].stripe, sb[i].stripe);
            EXPECT_DOUBLE_EQ(sa[i].factor, sb[i].factor);
            EXPECT_EQ(sa[i].duration, sb[i].duration);
            EXPECT_EQ(sa[i].cycles, sb[i].cycles);
        }
        // Sorted by arming tick regardless of generation order.
        for (std::size_t i = 1; i < sa.size(); ++i)
            EXPECT_LE(sa[i - 1].tick, sa[i].tick);
    }
}

TEST(FaultSchedule, ClassCompositions)
{
    const campaign::ScheduleShape shape;
    draid::sim::Rng rng(7);

    const std::vector<campaign::FaultAction> benign =
        campaign::generateSchedule(campaign::ScenarioClass::kBenign, shape,
                                   rng);
    ASSERT_EQ(benign.size(), 1u);
    EXPECT_EQ(benign[0].kind, campaign::FaultKind::kDriveFailure);
    EXPECT_LT(benign[0].device, shape.width);
    // First failure lands in [mean/2, 3*mean/2).
    EXPECT_GE(benign[0].tick, shape.firstFailureTick / 2);
    EXPECT_LT(benign[0].tick, shape.firstFailureTick * 3 / 2);

    const std::vector<campaign::FaultAction> dual =
        campaign::generateSchedule(campaign::ScenarioClass::kCorrelatedDual,
                                   shape, rng);
    ASSERT_EQ(dual.size(), 2u);
    EXPECT_EQ(dual[0].kind, campaign::FaultKind::kDriveFailure);
    EXPECT_EQ(dual[1].kind, campaign::FaultKind::kSecondFailure);
    EXPECT_NE(dual[0].device, dual[1].device);
    EXPECT_GT(dual[1].tick, dual[0].tick);

    const std::vector<campaign::FaultAction> lse =
        campaign::generateSchedule(campaign::ScenarioClass::kLseRebuild,
                                   shape, rng);
    ASSERT_EQ(lse.size(), shape.lseCount + 1u);
    std::uint32_t lses = 0, failures = 0;
    for (const campaign::FaultAction &a : lse) {
        if (a.kind == campaign::FaultKind::kLatentSectorError) {
            ++lses;
            EXPECT_EQ(a.tick, 0); // planted before the preload finishes
            EXPECT_LT(a.stripe, shape.stripes);
        } else {
            ++failures;
            EXPECT_EQ(a.kind, campaign::FaultKind::kDriveFailure);
        }
    }
    EXPECT_EQ(lses, shape.lseCount);
    EXPECT_EQ(failures, 1u);

    const std::vector<campaign::FaultAction> gray =
        campaign::generateSchedule(campaign::ScenarioClass::kGrayFlap, shape,
                                   rng);
    ASSERT_EQ(gray.size(), 3u);
    std::uint32_t kinds[3] = {0, 0, 0};
    for (const campaign::FaultAction &a : gray) {
        switch (a.kind) {
          case campaign::FaultKind::kGrayDrive: ++kinds[0]; break;
          case campaign::FaultKind::kTargetFlap: ++kinds[1]; break;
          case campaign::FaultKind::kPortDegrade: ++kinds[2]; break;
          default: FAIL() << "drive death in the no-death class";
        }
    }
    EXPECT_EQ(kinds[0], 1u);
    EXPECT_EQ(kinds[1], 1u);
    EXPECT_EQ(kinds[2], 1u);
    // Churn primitives land on distinct devices.
    EXPECT_NE(gray[0].device, gray[1].device);
    EXPECT_NE(gray[1].device, gray[2].device);
    EXPECT_NE(gray[0].device, gray[2].device);
}

// ---------------------------------------------------------------------------
// SSD fault hooks
// ---------------------------------------------------------------------------

namespace {

/** Read [0, 4096) synchronously; returns the elapsed ticks. */
draid::sim::Ticks
timedRead(Simulator &sim, draid::nvme::Ssd &ssd, bool *ok_out = nullptr)
{
    const draid::sim::Ticks start = sim.now();
    testutil::readSync(sim, ssd, 0, 4096, ok_out);
    return sim.now() - start;
}

} // namespace

TEST(SsdFaults, DegradeFactorInflatesLatency)
{
    Simulator sim;
    draid::nvme::SsdConfig cfg;
    cfg.capacity = 1 << 20;
    draid::nvme::Ssd ssd(sim, cfg);

    const draid::sim::Ticks nominal = timedRead(sim, ssd);
    ssd.setDegradeFactor(4.0);
    const draid::sim::Ticks gray = timedRead(sim, ssd);
    ssd.setDegradeFactor(1.0);
    const draid::sim::Ticks restored = timedRead(sim, ssd);

    EXPECT_GT(gray.raw(), 3 * nominal.raw());
    EXPECT_EQ(restored.raw(), nominal.raw());
}

TEST(SsdFaults, LatentSectorErrorFailsReadsUntilRewritten)
{
    Simulator sim;
    EventJournal journal;
    draid::nvme::SsdConfig cfg;
    cfg.capacity = 1 << 20;
    draid::nvme::Ssd ssd(sim, cfg);
    ssd.bindJournal(&journal, 3);

    ssd.plantLatentSectorError(1024, 512);
    EXPECT_EQ(ssd.latentSectorErrors(), 1u);

    // An intersecting read burns media time, then fails.
    bool ok = true;
    const draid::sim::Ticks elapsed = timedRead(sim, ssd, &ok);
    EXPECT_FALSE(ok);
    EXPECT_GT(elapsed.raw(), 0);
    EXPECT_EQ(ssd.latentErrorsHit(), 1u);

    // Discovery is journaled with the media range.
    const std::vector<EventJournal::Event> ev = journal.snapshot();
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].type, EventType::kLatentSectorError);
    EXPECT_EQ(ev[0].node, 3u);
    EXPECT_EQ(ev[0].a, 1024u);
    EXPECT_EQ(ev[0].b, 512u);

    // A disjoint read is unaffected.
    bool okDisjoint = false;
    testutil::readSync(sim, ssd, 8192, 4096, &okDisjoint);
    EXPECT_TRUE(okDisjoint);

    // Rewriting the range remaps the sector; reads succeed again.
    draid::ec::Buffer fresh(4096);
    fresh.fillPattern(9);
    EXPECT_TRUE(testutil::writeSync(sim, ssd, 0, fresh));
    EXPECT_EQ(ssd.latentSectorErrors(), 0u);
    bool okAfter = false;
    testutil::readSync(sim, ssd, 0, 4096, &okAfter);
    EXPECT_TRUE(okAfter);
}

// ---------------------------------------------------------------------------
// Rebuild stripe-failure hook
// ---------------------------------------------------------------------------

TEST(RebuildHook, OnStripeFailedReportsEachFailedStripe)
{
    Simulator sim;
    std::vector<std::uint64_t> failed;
    draid::core::RebuildJob job(
        sim,
        [&sim](std::uint64_t stripe, std::function<void(bool)> done) {
            sim.schedule(draid::sim::Ticks{10}, "test.stripe", [stripe, done]() {
                done(stripe != 2 && stripe != 5);
            });
        },
        8, 4096, 4);
    job.onStripeFailed([&failed](std::uint64_t s) { failed.push_back(s); });

    bool ok = true;
    bool finished = false;
    job.start([&](bool success) {
        ok = success;
        finished = true;
    });
    sim.run();

    EXPECT_TRUE(finished);
    EXPECT_FALSE(ok);
    ASSERT_EQ(failed.size(), 2u);
    EXPECT_EQ(failed[0], 2u);
    EXPECT_EQ(failed[1], 5u);
}

// ---------------------------------------------------------------------------
// End-to-end mini campaign
// ---------------------------------------------------------------------------

TEST(Campaign, BenignClassLosesNothingAndReportsDeterministically)
{
    campaign::CampaignConfig cfg;
    cfg.trials = 2;
    cfg.seed = 11;
    cfg.classes = {campaign::ScenarioClass::kBenign};

    const campaign::CampaignReport a = campaign::runCampaign(cfg);
    ASSERT_EQ(a.classes.size(), 1u);
    const campaign::ClassReport &cr = a.classes[0];
    EXPECT_EQ(cr.trials, 2u);
    EXPECT_EQ(cr.losses, 0u);
    EXPECT_EQ(cr.integrityFailures, 0u);
    EXPECT_EQ(cr.unexplainedIntegrityFailures, 0u);
    EXPECT_DOUBLE_EQ(cr.lossP, 0.0);
    EXPECT_GT(cr.rebuildMsMean, 0.0); // a rebuild ran in every trial
    EXPECT_GT(cr.exposureMsMean, 0.0);

    // Same seed, second run: byte-identical JSON report.
    const campaign::CampaignReport b = campaign::runCampaign(cfg);
    std::ostringstream ja, jb;
    campaign::writeCampaignJson(ja, a);
    campaign::writeCampaignJson(jb, b);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_FALSE(ja.str().empty());

    // Every JSONL row is well-formed JSON.
    std::istringstream lines(ja.str());
    std::string line;
    int rows = 0;
    while (std::getline(lines, line)) {
        ++rows;
        EXPECT_TRUE(testutil::JsonChecker(line).valid()) << line;
    }
    EXPECT_EQ(rows, 1); // one class, no cross-check without correlated-dual
}

TEST(Campaign, CorrelatedDualRecordsVerdictForEveryIntegrityFailure)
{
    campaign::CampaignConfig cfg;
    cfg.trials = 4;
    cfg.seed = 3;
    cfg.classes = {campaign::ScenarioClass::kCorrelatedDual};

    const campaign::CampaignReport r = campaign::runCampaign(cfg);
    ASSERT_EQ(r.classes.size(), 1u);
    const campaign::ClassReport &cr = r.classes[0];
    EXPECT_EQ(cr.trials, 4u);
    // Whatever happened, no integrity failure went unexplained. The
    // converse can hold: an overlapping-exposure verdict is recorded
    // even when the rebuild happened to read everything it needed first,
    // so losses may exceed the bit-level integrity failures.
    EXPECT_EQ(cr.unexplainedIntegrityFailures, 0u);
    EXPECT_GE(cr.losses, cr.integrityFailures);
    // The MTTDL cross-check row rides on this class.
    EXPECT_TRUE(r.mttdl.valid);
    EXPECT_GT(r.mttdl.mttdlHours, 0.0);
    EXPECT_GT(r.mttdl.accelHoursPerTick, 0.0);
    EXPECT_NEAR(r.mttdl.measuredLossP, cr.lossP, 1e-12);
}
