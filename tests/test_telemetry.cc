// Telemetry subsystem: registry scoping, histogram bucketing, span
// recording, Chrome-trace JSON well-formedness, the end-to-end span chain
// of a 4+1 dRAID write, and the guard that tracing never perturbs timing.

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "draid_test_util.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

using namespace draid;
using namespace draid::testutil;


// --- registry -----------------------------------------------------------

TEST(MetricsRegistry, ScopedNamesFormDottedHierarchy)
{
    telemetry::MetricsRegistry reg;
    telemetry::MetricScope root(reg, "");
    auto nic = root.scope("node3").scope("nic");
    EXPECT_EQ(nic.prefix(), "node3.nic");

    nic.counter("tx_bytes").inc(128);
    EXPECT_TRUE(reg.hasCounter("node3.nic.tx_bytes"));
    EXPECT_EQ(reg.counterValue("node3.nic.tx_bytes"), 128u);

    // The same qualified name resolves to the same object.
    nic.counter("tx_bytes").inc(1);
    EXPECT_EQ(reg.counterValue("node3.nic.tx_bytes"), 129u);

    // An unscoped root name has no leading dot.
    root.counter("events").inc();
    EXPECT_TRUE(reg.hasCounter("events"));

    const auto names = reg.names();
    EXPECT_NE(std::find(names.begin(), names.end(), "node3.nic.tx_bytes"),
              names.end());
}

TEST(MetricsRegistry, ProbesReadExistingStorageAtSnapshotTime)
{
    telemetry::MetricsRegistry reg;
    double backing = 1.0;
    reg.probe("host0.nic.tx_bytes", [&backing] { return backing; });

    EXPECT_TRUE(reg.hasProbe("host0.nic.tx_bytes"));
    EXPECT_DOUBLE_EQ(reg.probeValue("host0.nic.tx_bytes"), 1.0);

    // Probes are pull-based: the registry sees updates for free.
    backing = 7.5;
    EXPECT_DOUBLE_EQ(reg.probeValue("host0.nic.tx_bytes"), 7.5);

    EXPECT_DOUBLE_EQ(reg.probeValue("no.such.probe"), 0.0);
    EXPECT_EQ(reg.counterValue("no.such.counter"), 0u);
}

TEST(Histogram, BucketsAndSummaryStats)
{
    telemetry::Histogram h({10.0, 100.0, 1000.0});
    for (double s : {5.0, 7.0, 50.0, 500.0, 5000.0})
        h.observe(s);

    EXPECT_EQ(h.count(), 5u);
    const auto &c = h.bucketCounts();
    ASSERT_EQ(c.size(), 4u); // three bounds + overflow
    EXPECT_EQ(c[0], 2u);     // 5, 7
    EXPECT_EQ(c[1], 1u);     // 50
    EXPECT_EQ(c[2], 1u);     // 500
    EXPECT_EQ(c[3], 1u);     // 5000 overflows
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 5000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5562.0 / 5.0);
}

TEST(Histogram, BoundaryLandsInLowerBucket)
{
    telemetry::Histogram h({10.0, 100.0});
    h.observe(10.0);  // inclusive upper bound
    h.observe(10.01); // just past it
    const auto &c = h.bucketCounts();
    EXPECT_EQ(c[0], 1u);
    EXPECT_EQ(c[1], 1u);
    EXPECT_EQ(c[2], 0u);
}

TEST(Histogram, EmptyReportsZeros)
{
    telemetry::Histogram h(telemetry::latencyBucketsUs());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsRegistry, JsonSnapshotIsWellFormed)
{
    telemetry::MetricsRegistry reg;
    telemetry::MetricScope root(reg, "");
    root.scope("host0").counter("ops").inc(3);
    root.scope("host0").gauge("depth").set(1.5);
    root.scope("node1").histogram("lat_us", {10.0, 100.0}).observe(42.0);
    reg.probe("node1.ssd.reads", [] { return 9.0; });

    const std::string json = reg.toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"host0.ops\""), std::string::npos);
    EXPECT_NE(json.find("\"node1.ssd.reads\""), std::string::npos);
    EXPECT_NE(json.find("\"node1.lat_us\""), std::string::npos);
}

// --- tracer -------------------------------------------------------------

TEST(Tracer, DisabledMintsZeroAndRecordsNothing)
{
    telemetry::Tracer t;
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.mint(), 0u);
    EXPECT_EQ(t.mint(), 0u); // stays 0, never advances

    telemetry::TraceSpan s;
    s.traceId = 1;
    s.name = "ssd.read";
    t.recordSpan(std::move(s));
    EXPECT_TRUE(t.spans().empty());
}

TEST(Tracer, EnabledMintsSequentialIdsAndKeepsSpans)
{
    telemetry::Tracer t;
    t.setEnabled(true);
    EXPECT_EQ(t.mint(), 1u);
    EXPECT_EQ(t.mint(), 2u);

    telemetry::TraceSpan outer;
    outer.traceId = 1;
    outer.node = 0;
    outer.lane = "op";
    outer.name = "draid.write";
    outer.start = 100;
    outer.end = 900;

    telemetry::TraceSpan inner;
    inner.traceId = 1;
    inner.node = 2;
    inner.lane = "ssd";
    inner.name = "ssd.write";
    inner.start = 300;
    inner.end = 600;
    inner.args.emplace_back("bytes", "4096");

    t.recordSpan(outer);
    t.recordSpan(inner);
    ASSERT_EQ(t.spans().size(), 2u);

    // Nesting is positional: the inner span sits inside the outer one.
    const auto &o = t.spans()[0];
    const auto &i = t.spans()[1];
    EXPECT_EQ(o.traceId, i.traceId);
    EXPECT_GE(i.start, o.start);
    EXPECT_LE(i.end, o.end);
    EXPECT_EQ(i.args[0].first, "bytes");
}

TEST(Tracer, SpanCapDropsButCounts)
{
    telemetry::Tracer t;
    t.setEnabled(true);
    t.setSpanCap(3);
    for (int i = 0; i < 5; ++i) {
        telemetry::TraceSpan s;
        s.traceId = t.mint();
        s.name = "x";
        t.recordSpan(std::move(s));
    }
    EXPECT_EQ(t.spans().size(), 3u);
    EXPECT_EQ(t.droppedSpans(), 2u);
}

TEST(Tracer, ClearResetsDroppedAndNextId)
{
    telemetry::Tracer t;
    t.setEnabled(true);
    t.setSpanCap(1);
    t.setCounterCap(1);
    for (int i = 0; i < 3; ++i) {
        telemetry::TraceSpan s;
        s.traceId = t.mint();
        s.name = "x";
        t.recordSpan(std::move(s));
        t.recordCounter(0, "u", i, 0.5);
    }
    ASSERT_GT(t.droppedSpans(), 0u);
    ASSERT_GT(t.droppedCounters(), 0u);
    ASSERT_GT(t.counterStride(), 1u);

    t.clear();
    EXPECT_TRUE(t.spans().empty());
    EXPECT_TRUE(t.counterSamples().empty());
    EXPECT_EQ(t.droppedSpans(), 0u);
    EXPECT_EQ(t.droppedCounters(), 0u);
    EXPECT_EQ(t.sampledOutSpans(), 0u);
    EXPECT_EQ(t.counterStride(), 1u);
    EXPECT_EQ(t.mint(), 1u); // id sequence restarts
}

TEST(Tracer, FlightRecorderMirrorsPastSpanCap)
{
    telemetry::Tracer t;
    telemetry::FlightRecorder fr(8);
    t.bindFlightRecorder(&fr);
    t.setEnabled(true);
    t.setSpanCap(2);
    for (int i = 0; i < 6; ++i) {
        telemetry::TraceSpan s;
        s.traceId = t.mint();
        s.name = "op";
        s.lane = "op";
        t.recordSpan(std::move(s));
    }
    // Retention capped, but the ring saw every span regardless.
    EXPECT_EQ(t.spans().size(), 2u);
    EXPECT_EQ(t.droppedSpans(), 4u);
    EXPECT_EQ(fr.totalRecorded(), 6u);
    EXPECT_EQ(fr.size(), 6u);
}

TEST(Tracer, TruncationMetadataInChromeExport)
{
    telemetry::Tracer t;
    t.setEnabled(true);
    // No drops: no truncation marker, so clean traces stay clean.
    telemetry::TraceSpan ok;
    ok.traceId = t.mint();
    ok.name = "x";
    t.recordSpan(std::move(ok));
    EXPECT_EQ(t.toChromeTraceJson().find("trace_truncation"),
              std::string::npos);

    t.setSpanCap(1);
    for (int i = 0; i < 3; ++i) {
        telemetry::TraceSpan s;
        s.traceId = t.mint();
        s.name = "x";
        t.recordSpan(std::move(s));
    }
    const std::string json = t.toChromeTraceJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"trace_truncation\""), std::string::npos);
    // The pre-cap span already fills the one retained slot, so all three
    // later spans dropped.
    EXPECT_NE(json.find("\"dropped_spans\":3"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_counters\":0"), std::string::npos);
}

TEST(Tracer, ChromeTraceJsonIsWellFormed)
{
    telemetry::Tracer t;
    t.setEnabled(true);
    t.setNodeName(0, "host0");
    t.setNodeName(1, "node1");

    telemetry::TraceSpan s;
    s.traceId = t.mint();
    s.node = 1;
    s.lane = "nic.tx";
    s.name = "xfer \"quoted\"\\slash"; // must be escaped in the output
    s.start = 1000;
    s.end = 2500;
    s.args.emplace_back("bytes", "128");
    t.recordSpan(std::move(s));
    t.recordCounter(1, "nic.tx.util", 2000, 0.75);

    const std::string json = t.toChromeTraceJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"host0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

// --- end to end ---------------------------------------------------------

namespace {

core::DraidOptions
fourPlusOneOptions()
{
    core::DraidOptions o;
    o.chunkSize = 64 * 1024;
    return o;
}

} // namespace

TEST(TelemetryE2E, WriteSpansExactlyTheExpectedNodes)
{
    // 4+1 RAID-5: a small write touches one data chunk; dRAID offloads
    // the parity update so only the host, the data-chunk node and the
    // parity node should ever see this op.
    DraidRig rig(5, fourPlusOneOptions());
    rig.cluster->tracer().setEnabled(true);

    ec::Buffer data(16 * 1024);
    data.fillPattern(3);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    const auto &g = rig.host().geometry();
    const sim::NodeId host = rig.cluster->hostId();
    const sim::NodeId data_node =
        rig.cluster->targetNodeId(g.dataDevice(0, 0));
    const sim::NodeId parity_node =
        rig.cluster->targetNodeId(g.parityDevice(0));

    const auto &spans = rig.cluster->tracer().spans();
    ASSERT_FALSE(spans.empty());

    std::set<sim::NodeId> nodes;
    std::set<std::string> host_lanes, data_lanes, parity_lanes;
    for (const auto &s : spans) {
        // One user op -> every span carries its trace id.
        EXPECT_EQ(s.traceId, 1u) << s.name;
        EXPECT_LE(s.start, s.end) << s.name;
        nodes.insert(s.node);
        if (s.node == host)
            host_lanes.insert(s.lane);
        else if (s.node == data_node)
            data_lanes.insert(s.lane);
        else if (s.node == parity_node)
            parity_lanes.insert(s.lane);
    }

    EXPECT_EQ(nodes, (std::set<sim::NodeId>{host, data_node, parity_node}));

    // Host side: the op-level span plus its NIC transmit.
    EXPECT_TRUE(host_lanes.count("op"));
    EXPECT_TRUE(host_lanes.count("nic.tx"));
    // Data node: server CPU, SSD channel, and the forwarded parity delta.
    EXPECT_TRUE(data_lanes.count("cpu"));
    EXPECT_TRUE(data_lanes.count("ssd"));
    // Parity node: absorbs the delta and writes the new parity.
    EXPECT_TRUE(parity_lanes.count("ssd"));
}

TEST(TelemetryE2E, RegistryExposesPerNodeCountersAfterIo)
{
    DraidRig rig(5, fourPlusOneOptions());
    ec::Buffer data(16 * 1024);
    data.fillPattern(4);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    auto &reg = rig.cluster->telemetry().metrics();
    const auto &g = rig.host().geometry();
    const std::string data_name =
        rig.cluster->nodeName(rig.cluster->targetNodeId(g.dataDevice(0, 0)));

    // Per-node NIC / CPU / SSD probes reflect the traffic of the write.
    EXPECT_GT(reg.probeValue("host0.nic.tx_bytes"), 0.0);
    EXPECT_GT(reg.probeValue(data_name + ".nic.rx_bytes"), 0.0);
    EXPECT_GT(reg.probeValue(data_name + ".cpu.busy_ticks"), 0.0);
    EXPECT_GT(reg.probeValue(data_name + ".ssd.writes"), 0.0);

    // HostCounters are folded in as probes, not duplicated.
    EXPECT_DOUBLE_EQ(reg.probeValue("host0.draid.rmw_writes") +
                         reg.probeValue("host0.draid.rcw_writes") +
                         reg.probeValue("host0.draid.full_stripe_writes"),
                     1.0);

    // The op latency landed in the host histogram.
    auto &lat = reg.histogram("host0.draid.write_latency_us", {});
    EXPECT_EQ(lat.count(), 1u);
    EXPECT_GT(lat.mean(), 0.0);

    // And the whole snapshot serializes to valid JSON.
    std::ostringstream os;
    rig.cluster->telemetry().writeMetricsJson(os);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(TelemetryE2E, UtilizationSamplerCollectsBusyFractions)
{
    DraidRig rig(5, fourPlusOneOptions());
    rig.cluster->startUtilizationSampling(sim::Ticks::us(10));

    ec::Buffer data(256 * 1024); // a full stripe keeps the NICs busy
    data.fillPattern(5);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    const auto &samples = rig.cluster->telemetry().sampler().samples();
    ASSERT_FALSE(samples.empty());
    bool saw_busy = false;
    for (const auto &s : samples) {
        EXPECT_GE(s.value, 0.0) << s.name;
        EXPECT_LE(s.value, 1.0 + 1e-9) << s.name;
        saw_busy |= s.value > 0.0;
    }
    EXPECT_TRUE(saw_busy);
}

// --- determinism guard --------------------------------------------------

TEST(TelemetryDeterminism, TracingDoesNotPerturbCompletionTicks)
{
    // Identical scenario twice: once dark, once with tracing + sampling.
    // Telemetry is observe-only, so completion ticks must be identical.
    auto run = [](bool telemetry_on) {
        DraidRig rig(6, fourPlusOneOptions());
        if (telemetry_on) {
            rig.cluster->tracer().setEnabled(true);
            rig.cluster->startUtilizationSampling(sim::Ticks::us(20));
        }

        std::vector<sim::Tick> ticks;
        ec::Buffer big(192 * 1024);
        big.fillPattern(6);
        EXPECT_TRUE(writeSync(rig.sim(), rig.host(), 8192, big));
        ticks.push_back(rig.sim().now().raw());

        ec::Buffer small(16 * 1024);
        small.fillPattern(7);
        EXPECT_TRUE(writeSync(rig.sim(), rig.host(), 0, small));
        ticks.push_back(rig.sim().now().raw());

        bool ok = false;
        readSync(rig.sim(), rig.host(), 4096, 64 * 1024, &ok);
        EXPECT_TRUE(ok);
        ticks.push_back(rig.sim().now().raw());
        return ticks;
    };

    EXPECT_EQ(run(false), run(true));
}
