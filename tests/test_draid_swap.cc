// Full failure lifecycle: fail -> degraded service -> rebuild onto spare
// -> swap the spare in -> healthy array serving from the new device.

#include <gtest/gtest.h>

#include <cstring>

#include "core/reconstruct.h"
#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using core::RebuildJob;
using raid::RaidLevel;

namespace {

DraidOptions
opts(RaidLevel level)
{
    DraidOptions o;
    o.level = level;
    o.chunkSize = 64 * 1024;
    return o;
}

void
rebuildAll(DraidRig &rig, std::uint64_t stripes, std::uint32_t spare)
{
    RebuildJob job(
        rig.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            rig.host().reconstructChunk(stripe, spare, std::move(done));
        },
        stripes, rig.host().geometry().chunkSize());
    bool ok = false;
    job.start([&](bool all_ok) {
        ok = all_ok;
        rig.sim().stop();
    });
    rig.sim().run();
    ASSERT_TRUE(ok);
}

} // namespace

class DraidSwap : public ::testing::TestWithParam<RaidLevel>
{
};

TEST_P(DraidSwap, FullLifecycleRestoresHealthyArray)
{
    // 7 targets, width 6; target 6 is the spare.
    DraidRig rig(7, opts(GetParam()), 6);
    const auto &g = rig.host().geometry();
    const std::uint64_t stripes = 6;
    const std::uint64_t span = stripes * g.stripeDataSize();

    ec::Buffer content(span);
    content.fillPattern(77);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, content));

    // Fail device 2, rebuild every stripe onto the spare, swap it in.
    rig.cluster->failTarget(2);
    rig.host().markFailed(2);
    rebuildAll(rig, stripes, 6);
    rig.host().replaceDevice(2, 6);

    EXPECT_FALSE(rig.host().isDegraded());
    EXPECT_EQ(rig.host().targetOf(2), 6u);

    // All data readable through the healthy array — including chunks that
    // lived on the dead device, now served by the spare.
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), 0,
                              static_cast<std::uint32_t>(span), &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(content));

    // No reconstruction should have been needed post-swap.
    const auto degraded_before = rig.host().counters().degradedReads;
    readSync(rig.sim(), rig.host(), 0, 4096, &ok);
    EXPECT_EQ(rig.host().counters().degradedReads, degraded_before);
}

TEST_P(DraidSwap, WritesAfterSwapLandOnSpare)
{
    DraidRig rig(7, opts(GetParam()), 6);
    const auto &g = rig.host().geometry();
    ec::Buffer content(4 * g.stripeDataSize());
    content.fillPattern(3);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, content));

    rig.cluster->failTarget(0);
    rig.host().markFailed(0);
    rebuildAll(rig, 4, 6);
    rig.host().replaceDevice(0, 6);

    const std::uint64_t spare_writes_before =
        rig.cluster->target(6).ssd().writesCompleted();

    // Write a chunk whose device is member 0 (now the spare); pick a
    // stripe where device 0 holds data, not parity.
    std::uint64_t stripe = 0;
    while (g.roleOf(stripe, 0) != raid::ChunkRole::kData)
        ++stripe;
    const std::uint32_t fidx = g.dataIndexOf(stripe, 0);
    const std::uint64_t off =
        stripe * g.stripeDataSize() +
        static_cast<std::uint64_t>(fidx) * g.chunkSize();
    ec::Buffer data(8192);
    data.fillPattern(9);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
    EXPECT_GT(rig.cluster->target(6).ssd().writesCompleted(),
              spare_writes_before);

    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), rig.host(), off, 8192, &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
}

TEST_P(DraidSwap, ScrubPassesAfterSwap)
{
    DraidRig rig(7, opts(GetParam()), 6);
    const auto &g = rig.host().geometry();
    ec::Buffer content(4 * g.stripeDataSize());
    content.fillPattern(5);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, content));

    rig.cluster->failTarget(3);
    rig.host().markFailed(3);
    rebuildAll(rig, 4, 6);
    rig.host().replaceDevice(3, 6);

    for (std::uint64_t s = 0; s < 4; ++s) {
        core::DraidHost::ScrubResult r;
        bool done = false;
        rig.host().scrubStripe(s, false, [&](core::DraidHost::ScrubResult
                                                 res) {
            r = res;
            done = true;
            rig.sim().stop();
        });
        while (!done && rig.sim().pendingEvents() > 0)
            rig.sim().run();
        EXPECT_TRUE(r.ok) << "stripe " << s;
        EXPECT_TRUE(r.consistent) << "stripe " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, DraidSwap,
                         ::testing::Values(RaidLevel::kRaid5,
                                           RaidLevel::kRaid6));
