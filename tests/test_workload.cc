// Workload generators: FIO driver mechanics, zipfian/latest distributions,
// YCSB mixes.

#include <gtest/gtest.h>

#include <map>

#include "draid_test_util.h"
#include "workload/fio.h"
#include "workload/ycsb.h"
#include "workload/zipfian.h"

using namespace draid;
using namespace draid::testutil;
using namespace draid::workload;

TEST(Fio, CompletesRequestedOps)
{
    DraidRig rig(6);
    FioConfig cfg;
    cfg.ioSize = 64 * 1024;
    cfg.readRatio = 0.0;
    cfg.numOps = 100;
    cfg.ioDepth = 8;
    cfg.workingSetBytes = 16ull << 20;
    FioJob job(rig.sim(), rig.host(), cfg);
    auto r = job.run();
    EXPECT_EQ(r.errors, 0u);
    EXPECT_GT(r.bandwidthMBps, 0.0);
    EXPECT_GT(r.avgLatencyUs, 0.0);
    EXPECT_GE(r.p99LatencyUs, r.p50LatencyUs);
}

TEST(Fio, ReadOnlyWorkloadOnlyReads)
{
    DraidRig rig(6);
    FioConfig cfg;
    cfg.readRatio = 1.0;
    cfg.numOps = 50;
    cfg.ioSize = 4096;
    cfg.workingSetBytes = 8ull << 20;
    FioJob job(rig.sim(), rig.host(), cfg);
    auto r = job.run();
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(rig.host().counters().rmwWrites +
                  rig.host().counters().rcwWrites +
                  rig.host().counters().fullStripeWrites,
              0u);
}

TEST(Fio, HigherDepthRaisesThroughput)
{
    auto bw_at_depth = [](int depth) {
        DraidRig rig(6);
        FioConfig cfg;
        cfg.ioSize = 128 * 1024;
        cfg.readRatio = 1.0;
        cfg.numOps = 300;
        cfg.ioDepth = depth;
        cfg.workingSetBytes = 32ull << 20;
        FioJob job(rig.sim(), rig.host(), cfg);
        return job.run().bandwidthMBps;
    };
    EXPECT_GT(bw_at_depth(16), 1.5 * bw_at_depth(1));
}

TEST(Fio, SequentialModeCoversLinearly)
{
    DraidRig rig(6);
    FioConfig cfg;
    cfg.sequential = true;
    cfg.numOps = 10;
    cfg.ioSize = 64 * 1024;
    cfg.ioDepth = 1;
    FioJob job(rig.sim(), rig.host(), cfg);
    auto r = job.run();
    EXPECT_EQ(r.errors, 0u);
}

TEST(Zipfian, ValuesInRange)
{
    ZipfianGenerator gen(1000);
    sim::Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(gen.next(rng), 1000u);
}

TEST(Zipfian, SkewsTowardLowRanks)
{
    ZipfianGenerator gen(10000);
    sim::Rng rng(2);
    int top10 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        top10 += gen.next(rng) < 10;
    // With theta=0.99, the ten hottest keys draw a large share.
    EXPECT_GT(top10, n / 10);
}

TEST(Zipfian, GrowExtendsRange)
{
    ZipfianGenerator gen(100);
    gen.grow(200);
    EXPECT_EQ(gen.itemCount(), 200u);
    sim::Rng rng(3);
    bool saw_new = false;
    for (int i = 0; i < 50000; ++i)
        saw_new |= gen.next(rng) >= 100;
    EXPECT_TRUE(saw_new);
}

TEST(Latest, FavorsRecentKeys)
{
    LatestGenerator gen(1000);
    sim::Rng rng(4);
    int recent = 0;
    for (int i = 0; i < 10000; ++i)
        recent += gen.next(rng) >= 990;
    EXPECT_GT(recent, 1000);
}

namespace {

std::map<YcsbOp::Type, int>
histogram(YcsbWorkload w, int n = 20000)
{
    YcsbGenerator gen(w, YcsbDistribution::kUniform, 10000, 5);
    std::map<YcsbOp::Type, int> h;
    for (int i = 0; i < n; ++i)
        ++h[gen.next().type];
    return h;
}

} // namespace

TEST(Ycsb, WorkloadAMixes50_50)
{
    auto h = histogram(YcsbWorkload::kA);
    EXPECT_NEAR(h[YcsbOp::Type::kRead], 10000, 600);
    EXPECT_NEAR(h[YcsbOp::Type::kUpdate], 10000, 600);
}

TEST(Ycsb, WorkloadBMixes95_5)
{
    auto h = histogram(YcsbWorkload::kB);
    EXPECT_NEAR(h[YcsbOp::Type::kRead], 19000, 400);
    EXPECT_NEAR(h[YcsbOp::Type::kUpdate], 1000, 400);
}

TEST(Ycsb, WorkloadCIsReadOnly)
{
    auto h = histogram(YcsbWorkload::kC);
    EXPECT_EQ(h[YcsbOp::Type::kRead], 20000);
}

TEST(Ycsb, WorkloadDInsertsGrowKeyspace)
{
    YcsbGenerator gen(YcsbWorkload::kD, YcsbDistribution::kLatest, 1000, 6);
    int inserts = 0;
    for (int i = 0; i < 10000; ++i)
        inserts += gen.next().type == YcsbOp::Type::kInsert;
    EXPECT_NEAR(inserts, 500, 150);
    EXPECT_EQ(gen.recordCount(), 1000u + inserts);
}

TEST(Ycsb, WorkloadFMixesReadAndRmw)
{
    auto h = histogram(YcsbWorkload::kF);
    EXPECT_NEAR(h[YcsbOp::Type::kRead], 10000, 600);
    EXPECT_NEAR(h[YcsbOp::Type::kReadModifyWrite], 10000, 600);
}

TEST(Ycsb, KeysWithinRecordCount)
{
    YcsbGenerator gen(YcsbWorkload::kA, YcsbDistribution::kZipfian, 500, 7);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(gen.next().key, gen.recordCount());
}
