// MiniKv: LSM mechanics (WAL batching, flush, compaction, lookups).

#include <gtest/gtest.h>

#include "app/minikv.h"
#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using app::MiniKv;
using app::MiniKvConfig;

namespace {

MiniKvConfig
tinyConfig()
{
    MiniKvConfig c;
    c.memtableBytes = 64 * 1024; // flush after ~64 puts
    c.walBatchOps = 4;
    c.walRegionBytes = 4 << 20;
    return c;
}

void
drain(DraidRig &rig, int &done, int target)
{
    while (done < target && rig.sim().pendingEvents() > 0)
        rig.sim().run();
}

} // namespace

TEST(MiniKv, PutThenGetHitsMemtable)
{
    DraidRig rig(6);
    MiniKv kv(rig.sim(), rig.cluster->host().cpu(), rig.host(),
              tinyConfig());
    int done = 0;
    kv.put(1, [&](bool ok) {
        EXPECT_TRUE(ok);
        ++done;
    });
    drain(rig, done, 1);
    kv.get(1, [&](bool ok) {
        EXPECT_TRUE(ok);
        ++done;
    });
    drain(rig, done, 2);
    EXPECT_EQ(kv.stats().memtableHits, 1u);
    EXPECT_GE(kv.stats().walWrites, 1u);
}

TEST(MiniKv, MissingKeyMisses)
{
    DraidRig rig(6);
    MiniKv kv(rig.sim(), rig.cluster->host().cpu(), rig.host(),
              tinyConfig());
    int done = 0;
    kv.get(999, [&](bool ok) {
        EXPECT_FALSE(ok);
        ++done;
    });
    drain(rig, done, 1);
    EXPECT_EQ(kv.stats().getMisses, 1u);
}

TEST(MiniKv, WalBatchesGroupCommits)
{
    DraidRig rig(6);
    auto cfg = tinyConfig();
    cfg.walBatchOps = 8;
    MiniKv kv(rig.sim(), rig.cluster->host().cpu(), rig.host(), cfg);
    int done = 0;
    for (int i = 0; i < 32; ++i)
        kv.put(i, [&](bool) { ++done; });
    drain(rig, done, 32);
    // Group commit: far fewer WAL writes than puts.
    EXPECT_LE(kv.stats().walWrites, 8u);
    EXPECT_GE(kv.stats().walWrites, 4u);
}

TEST(MiniKv, MemtableFlushesToSst)
{
    DraidRig rig(6);
    MiniKv kv(rig.sim(), rig.cluster->host().cpu(), rig.host(),
              tinyConfig());
    int done = 0;
    const int n = 200; // 200 KB of values > 64 KB memtable
    for (int i = 0; i < n; ++i)
        kv.put(i, [&](bool) { ++done; });
    drain(rig, done, n);
    rig.sim().run();
    EXPECT_GE(kv.stats().flushes, 1u);

    // Flushed keys are found via SST reads.
    int got = 0;
    bool found = false;
    kv.get(0, [&](bool ok) {
        found = ok;
        ++got;
    });
    drain(rig, got, 1);
    EXPECT_TRUE(found);
    EXPECT_GE(kv.stats().sstReads + kv.stats().memtableHits, 1u);
}

TEST(MiniKv, CompactionTriggersAfterEnoughFlushes)
{
    DraidRig rig(6);
    auto cfg = tinyConfig();
    cfg.l0CompactTrigger = 2;
    MiniKv kv(rig.sim(), rig.cluster->host().cpu(), rig.host(), cfg);
    int done = 0;
    const int n = 600;
    for (int i = 0; i < n; ++i)
        kv.put(i % 300, [&](bool) { ++done; });
    drain(rig, done, n);
    rig.sim().run();
    EXPECT_GE(kv.stats().compactions, 1u);
}

TEST(MiniKv, AllKeysReadableAfterChurn)
{
    DraidRig rig(6);
    MiniKv kv(rig.sim(), rig.cluster->host().cpu(), rig.host(),
              tinyConfig());
    int done = 0;
    const int n = 300;
    for (int i = 0; i < n; ++i)
        kv.put(i, [&](bool) { ++done; });
    drain(rig, done, n);
    rig.sim().run();

    int found = 0, answered = 0;
    for (int i = 0; i < n; ++i) {
        kv.get(i, [&](bool ok) {
            found += ok;
            ++answered;
        });
    }
    drain(rig, answered, n);
    EXPECT_EQ(found, n);
}
