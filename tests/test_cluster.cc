// Cluster assembly: node wiring, heterogeneous NICs, failure injection.

#include <gtest/gtest.h>

#include "cluster/cluster.h"

using namespace draid;
using namespace draid::cluster;

TEST(Cluster, BuildsHostAndTargets)
{
    TestbedConfig cfg;
    Cluster c(cfg, 8);
    EXPECT_EQ(c.numTargets(), 8u);
    EXPECT_FALSE(c.host().hasSsd());
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(c.target(i).hasSsd());
        EXPECT_EQ(c.target(i).id(), c.targetNodeId(i));
    }
}

TEST(Cluster, NodeIdsAreStable)
{
    TestbedConfig cfg;
    Cluster c(cfg, 3);
    EXPECT_EQ(c.hostId(), 0u);
    EXPECT_EQ(c.targetNodeId(0), 1u);
    EXPECT_EQ(c.targetNodeId(2), 3u);
    EXPECT_EQ(c.targetIndexOf(c.targetNodeId(2)), 2u);
}

TEST(Cluster, DefaultNicIs100G)
{
    TestbedConfig cfg;
    Cluster c(cfg, 2);
    EXPECT_DOUBLE_EQ(c.host().nic().goodput(), cfg.nicGoodput100g);
    EXPECT_DOUBLE_EQ(c.target(0).nic().goodput(), cfg.nicGoodput100g);
}

TEST(Cluster, HeterogeneousNicOverrides)
{
    TestbedConfig cfg;
    Cluster c(cfg, 4, {cfg.nicGoodput25g, cfg.nicGoodput25g});
    EXPECT_DOUBLE_EQ(c.target(0).nic().goodput(), cfg.nicGoodput25g);
    EXPECT_DOUBLE_EQ(c.target(1).nic().goodput(), cfg.nicGoodput25g);
    // Entries beyond the override vector fall back to 100 Gbps.
    EXPECT_DOUBLE_EQ(c.target(2).nic().goodput(), cfg.nicGoodput100g);
    EXPECT_DOUBLE_EQ(c.target(3).nic().goodput(), cfg.nicGoodput100g);
}

TEST(Cluster, FailAndRecoverTarget)
{
    TestbedConfig cfg;
    Cluster c(cfg, 2);
    EXPECT_FALSE(c.isTargetFailed(1));
    c.failTarget(1);
    EXPECT_TRUE(c.isTargetFailed(1));
    EXPECT_TRUE(c.fabric().isDown(c.targetNodeId(1)));
    c.recoverTarget(1);
    EXPECT_FALSE(c.isTargetFailed(1));
}

TEST(Cluster, SsdConfigPropagates)
{
    TestbedConfig cfg;
    cfg.ssd.capacity = 123 << 20;
    Cluster c(cfg, 1);
    EXPECT_EQ(c.target(0).ssd().sizeBytes(), 123u << 20);
}

TEST(Cluster, SimulatorSharedAcrossComponents)
{
    TestbedConfig cfg;
    Cluster c(cfg, 2);
    c.sim().schedule(draid::sim::Ticks{100}, []() {});
    c.sim().run();
    EXPECT_EQ(c.sim().now().raw(), 100);
}
