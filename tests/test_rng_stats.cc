// Rng determinism/distribution sanity and stats helpers.

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "sim/stats.h"

using namespace draid::sim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng r(11);
    std::vector<int> hist(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++hist[r.nextBounded(8)];
    for (int c : hist)
        EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(9);
    int heads = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        heads += r.nextBool(0.3);
    EXPECT_NEAR(heads, 0.3 * n, 0.03 * n);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(13);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.nextExponential(42.0);
    EXPECT_NEAR(sum / n, 42.0, 2.0);
}

TEST(LatencyRecorder, BasicStats)
{
    LatencyRecorder rec;
    for (Tick t : {10, 20, 30, 40, 50})
        rec.record(Ticks{t});
    EXPECT_EQ(rec.count(), 5u);
    EXPECT_EQ(rec.min().raw(), 10);
    EXPECT_EQ(rec.max().raw(), 50);
    EXPECT_DOUBLE_EQ(rec.mean(), 30.0);
    EXPECT_EQ(rec.percentile(50).raw(), 30);
    EXPECT_EQ(rec.percentile(100).raw(), 50);
}

TEST(LatencyRecorder, EmptyIsZero)
{
    LatencyRecorder rec;
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_EQ(rec.min().raw(), 0);
    EXPECT_EQ(rec.max().raw(), 0);
    EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
    EXPECT_EQ(rec.percentile(99).raw(), 0);
}

TEST(LatencyRecorder, PercentileNearestRank)
{
    LatencyRecorder rec;
    for (Tick t = 1; t <= 100; ++t)
        rec.record(Ticks{t});
    EXPECT_EQ(rec.percentile(99).raw(), 99);
    EXPECT_EQ(rec.percentile(1).raw(), 1);
}

TEST(LatencyRecorder, PercentileExtremesAreExactMinMax)
{
    LatencyRecorder rec;
    for (Tick t : {17, 3, 99, 42})
        rec.record(Ticks{t});
    // Nearest-rank rounding must not shift the endpoints.
    EXPECT_EQ(rec.percentile(0).raw(), 3);
    EXPECT_EQ(rec.percentile(100).raw(), 99);
}

TEST(LatencyRecorder, P999TailPercentile)
{
    LatencyRecorder rec;
    for (Tick t = 1; t <= 1000; ++t)
        rec.record(Ticks{t});
    // Nearest rank: ceil(0.999 * 1000) = 999 -> the 999th sample.
    EXPECT_EQ(rec.p999().raw(), 999);
    EXPECT_EQ(rec.p999(), rec.percentile(99.9));
    // With few samples the tail collapses onto the max.
    LatencyRecorder small;
    for (Tick t : {10, 20, 30})
        small.record(Ticks{t});
    EXPECT_EQ(small.p999().raw(), 30);
    EXPECT_EQ(LatencyRecorder{}.p999().raw(), 0);
}

TEST(LatencyRecorder, StddevOfKnownDistribution)
{
    LatencyRecorder rec;
    // The classic population example: mean 5, stddev exactly 2.
    for (Tick t : {2, 4, 4, 4, 5, 5, 7, 9})
        rec.record(Ticks{t});
    EXPECT_DOUBLE_EQ(rec.mean(), 5.0);
    EXPECT_DOUBLE_EQ(rec.stddev(), 2.0);
}

TEST(LatencyRecorder, StddevDegenerateCases)
{
    LatencyRecorder rec;
    EXPECT_DOUBLE_EQ(rec.stddev(), 0.0); // empty
    rec.record(Ticks{42});
    EXPECT_DOUBLE_EQ(rec.stddev(), 0.0); // single sample
    rec.record(Ticks{42});
    EXPECT_DOUBLE_EQ(rec.stddev(), 0.0); // identical samples
}

TEST(ThroughputMeter, ComputesBandwidthAndIops)
{
    ThroughputMeter m;
    m.start(Ticks::zero());
    for (int i = 0; i < 1000; ++i)
        m.complete(128 * 1024);
    m.finish(Ticks::sec(1)); // 1 simulated second
    EXPECT_NEAR(m.bandwidthMBps(), 1000.0 * 128 * 1024 / 1e6, 0.1);
    EXPECT_NEAR(m.kiops(), 1.0, 1e-9);
}

TEST(ThroughputMeter, ZeroWindowReportsZero)
{
    ThroughputMeter m;
    m.start(Ticks{100});
    m.complete(4096);
    m.finish(Ticks{100});
    EXPECT_DOUBLE_EQ(m.bandwidthMBps(), 0.0);
    EXPECT_DOUBLE_EQ(m.kiops(), 0.0);
}
