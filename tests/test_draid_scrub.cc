// Online scrub (md-style check/repair) on the dRAID host.

#include <gtest/gtest.h>

#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidHost;
using core::DraidOptions;
using raid::RaidLevel;

namespace {

DraidOptions
opts(RaidLevel level)
{
    DraidOptions o;
    o.level = level;
    o.chunkSize = 64 * 1024;
    return o;
}

DraidHost::ScrubResult
scrubSync(DraidRig &rig, std::uint64_t stripe, bool repair)
{
    DraidHost::ScrubResult out;
    bool done = false;
    rig.host().scrubStripe(stripe, repair,
                           [&](DraidHost::ScrubResult r) {
                               out = r;
                               done = true;
                               rig.sim().stop();
                           });
    while (!done && rig.sim().pendingEvents() > 0)
        rig.sim().run();
    return out;
}

} // namespace

class DraidScrub : public ::testing::TestWithParam<RaidLevel>
{
};

TEST_P(DraidScrub, CleanStripeIsConsistent)
{
    DraidRig rig(6, opts(GetParam()));
    ec::Buffer data(rig.host().geometry().stripeDataSize());
    data.fillPattern(1);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    auto r = scrubSync(rig, 0, /*repair=*/false);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.consistent);
    EXPECT_FALSE(r.repaired);
}

TEST_P(DraidScrub, DetectsCorruptParity)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(2);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    // Corrupt the on-disk parity behind the controller's back (simulates
    // an interrupted write after a host crash, §5.4).
    ec::Buffer garbage(g.chunkSize());
    garbage.fill(0x5a);
    rig.cluster->target(g.parityDevice(0)).ssd().store().writeSync(
        0, garbage);

    auto r = scrubSync(rig, 0, /*repair=*/false);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.consistent);
    EXPECT_FALSE(r.repaired);
}

TEST_P(DraidScrub, RepairRestoresParity)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(3);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    ec::Buffer garbage(g.chunkSize());
    garbage.fill(0xa5);
    rig.cluster->target(g.parityDevice(0)).ssd().store().writeSync(
        0, garbage);
    if (GetParam() == RaidLevel::kRaid6) {
        rig.cluster->target(g.qDevice(0)).ssd().store().writeSync(
            0, garbage);
    }

    auto r = scrubSync(rig, 0, /*repair=*/true);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.consistent);
    EXPECT_TRUE(r.repaired);

    // On-disk parity is correct again.
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
    // And a re-scrub reports consistency.
    auto r2 = scrubSync(rig, 0, /*repair=*/false);
    EXPECT_TRUE(r2.consistent);
}

TEST_P(DraidScrub, RepairReconstructsLatentSectorError)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(4);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    // Plant an unreadable media range on data chunk 0 of stripe 0.
    auto &ssd = rig.cluster->target(g.dataDevice(0, 0)).ssd();
    ssd.plantLatentSectorError(g.deviceAddress(0, 0), 4096);

    // check-only cannot complete: the chunk is unreadable.
    auto r0 = scrubSync(rig, 0, /*repair=*/false);
    EXPECT_FALSE(r0.ok);

    // repair reconstructs the chunk from the survivors and rewrites it,
    // which remaps the bad sectors.
    auto r = scrubSync(rig, 0, /*repair=*/true);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.consistent);
    EXPECT_TRUE(r.repaired);
    EXPECT_EQ(ssd.latentSectorErrors(), 0u);

    // The reconstructed chunk carries the original bytes.
    bool ok = false;
    ec::Buffer back =
        readSync(rig.sim(), rig.host(), 0,
                 static_cast<std::uint32_t>(g.stripeDataSize()), &ok);
    EXPECT_TRUE(ok);
    EXPECT_TRUE(back.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
}

TEST_P(DraidScrub, RepairReconstructsParityLatentSectorError)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(5);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    auto &ssd = rig.cluster->target(g.parityDevice(0)).ssd();
    ssd.plantLatentSectorError(g.deviceAddress(0, 0), 4096);

    auto r = scrubSync(rig, 0, /*repair=*/true);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.repaired);
    EXPECT_EQ(ssd.latentSectorErrors(), 0u);
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
}

TEST_P(DraidScrub, RefusesWhileDegraded)
{
    DraidRig rig(6, opts(GetParam()));
    rig.host().markFailed(1);
    auto r = scrubSync(rig, 0, /*repair=*/true);
    EXPECT_FALSE(r.ok);
}

TEST_P(DraidScrub, WholeArraySweepAfterWriteStorm)
{
    DraidRig rig(6, opts(GetParam()));
    const auto &g = rig.host().geometry();
    sim::Rng rng(5);
    const std::uint64_t span = 6 * g.stripeDataSize();
    for (int i = 0; i < 30; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(1024 * (1 + rng.nextBounded(64)));
        const std::uint64_t off = rng.nextBounded(span - len);
        ec::Buffer data(len);
        data.fillPattern(i);
        ASSERT_TRUE(writeSync(rig.sim(), rig.host(), off, data));
    }
    for (std::uint64_t s = 0; s < 6; ++s) {
        auto r = scrubSync(rig, s, /*repair=*/false);
        EXPECT_TRUE(r.ok);
        EXPECT_TRUE(r.consistent) << "stripe " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, DraidScrub,
                         ::testing::Values(RaidLevel::kRaid5,
                                           RaidLevel::kRaid6));
