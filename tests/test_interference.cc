// Per-tenant contention attribution: exact blame splits on hand-built
// overlap fixtures, the sums-to-wait invariant under randomized load (the
// same exactness contract the critical-path analyzer carries), keyed
// stripe-lock holds, SLO burn windows, cardinality bounds, and the
// byte-identical double-run determinism of the exported JSON row.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "draid_test_util.h"
#include "sim/pipe.h"
#include "sim/rng.h"
#include "telemetry/interference.h"
#include "telemetry/lane_tap.h"
#include "telemetry/telemetry.h"
#include "workload/fio.h"

using namespace draid;
using namespace draid::testutil;

using telemetry::ContentionTracker;
using RK = ContentionTracker::ResourceKind;

namespace {

/** Tracker with two named tenants and one resource, ready to record. */
struct TwoTenantFixture
{
    ContentionTracker ct;
    telemetry::TenantId a = 0;
    telemetry::TenantId b = 0;
    ContentionTracker::ResourceId res = 0;

    explicit TwoTenantFixture(RK kind = RK::NicTx)
    {
        ct.setEnabled(true);
        a = ct.registerTenant("alice");
        b = ct.registerTenant("bob");
        res = ct.registerResource(/*node=*/1, kind);
        ct.noteOpStart(101, a);
        ct.noteOpStart(202, b);
    }
};

} // namespace

// --- hand-built overlap fixtures ---------------------------------------

TEST(Interference, FullOverlapBlamesTheOccupyingTenant)
{
    TwoTenantFixture f;
    // Alice occupies [0, 100); Bob arrives at 0 and is serviced at 100.
    f.ct.noteOccupancy(f.res, 101, 0, 100);
    f.ct.attributeWait(f.res, 202, 0, 100);

    EXPECT_EQ(f.ct.blameTicks(f.b, f.a, RK::NicTx), 100);
    EXPECT_EQ(f.ct.blameTicks(f.b, ContentionTracker::kUntracked), 0);
    EXPECT_EQ(f.ct.totalWaitTicks(), 100);
    EXPECT_EQ(f.ct.totalBlameTicks(), f.ct.totalWaitTicks());
    EXPECT_EQ(f.ct.waitedOps(), 1u);
    EXPECT_EQ(f.ct.dominantAggressor(f.b, RK::NicTx), f.a);
}

TEST(Interference, PartialCoverageChargesResidualToUntracked)
{
    TwoTenantFixture f;
    // Only [60, 100) of Bob's wait overlaps Alice's occupancy; the first
    // 60 ticks were consumed by something the tracker never saw.
    f.ct.noteOccupancy(f.res, 101, 60, 100);
    f.ct.attributeWait(f.res, 202, 0, 100);

    EXPECT_EQ(f.ct.blameTicks(f.b, f.a, RK::NicTx), 40);
    EXPECT_EQ(f.ct.blameTicks(f.b, ContentionTracker::kUntracked), 60);
    EXPECT_EQ(f.ct.totalBlameTicks(), f.ct.totalWaitTicks());
}

TEST(Interference, SplitBlameAcrossTwoAggressors)
{
    ContentionTracker ct;
    ct.setEnabled(true);
    const auto a = ct.registerTenant("a");
    const auto b = ct.registerTenant("b");
    const auto c = ct.registerTenant("c");
    const auto res = ct.registerResource(2, RK::SsdChannel);
    ct.noteOpStart(1, a);
    ct.noteOpStart(2, b);
    ct.noteOpStart(3, c);

    // a serves [0,70), b serves [70,100); c waits the whole [0,100).
    ct.noteOccupancy(res, 1, 0, 70);
    ct.noteOccupancy(res, 2, 70, 100);
    ct.attributeWait(res, 3, 0, 100);

    EXPECT_EQ(ct.blameTicks(c, a, RK::SsdChannel), 70);
    EXPECT_EQ(ct.blameTicks(c, b, RK::SsdChannel), 30);
    EXPECT_EQ(ct.totalBlameTicks(), ct.totalWaitTicks());
    EXPECT_EQ(ct.dominantAggressor(c, RK::SsdChannel), a);
}

TEST(Interference, SelfQueueingIsBlamedOnTheSameTenant)
{
    TwoTenantFixture f;
    f.ct.noteOpStart(102, f.a); // second op of the SAME tenant
    f.ct.noteOccupancy(f.res, 101, 0, 80);
    f.ct.attributeWait(f.res, 102, 0, 80);

    // Intra-tenant queueing is real wait; it lands on the tenant itself
    // so the row distinguishes self-inflicted pressure from interference.
    EXPECT_EQ(f.ct.blameTicks(f.a, f.a, RK::NicTx), 80);
    EXPECT_EQ(f.ct.totalBlameTicks(), f.ct.totalWaitTicks());
}

TEST(Interference, KeyedLockHoldOpenCloseAttributesToHolder)
{
    TwoTenantFixture f(RK::StripeLock);
    const std::uint64_t stripe = 7;

    // Alice granted at t=10 (open-ended hold), Bob arrives at 10.
    f.ct.openOccupancy(f.res, 101, 10, stripe);
    // Alice releases at 60; close precedes Bob's grant (release order).
    f.ct.closeOccupancy(f.res, 60, stripe);
    f.ct.attributeWait(f.res, 202, 10, 60, stripe);

    EXPECT_EQ(f.ct.blameTicks(f.b, f.a, RK::StripeLock), 50);
    EXPECT_EQ(f.ct.totalBlameTicks(), f.ct.totalWaitTicks());

    // A different stripe's segments must not bleed into this key.
    f.ct.noteOpStart(303, f.a);
    f.ct.openOccupancy(f.res, 303, 100, /*key=*/8);
    f.ct.closeOccupancy(f.res, 150, /*key=*/8);
    f.ct.attributeWait(f.res, 202, 140, 160, stripe);
    EXPECT_EQ(f.ct.blameTicks(f.b, f.a, RK::StripeLock), 50);
    EXPECT_EQ(f.ct.blameTicks(f.b, ContentionTracker::kUntracked), 20);
    EXPECT_EQ(f.ct.totalBlameTicks(), f.ct.totalWaitTicks());
}

TEST(Interference, NoWaitRecordsNothing)
{
    TwoTenantFixture f;
    f.ct.attributeWait(f.res, 202, 100, 100); // serviced immediately
    EXPECT_EQ(f.ct.totalWaitTicks(), 0);
    EXPECT_EQ(f.ct.waitedOps(), 0u);
}

// --- cardinality bounds -------------------------------------------------

TEST(Interference, TenantRegistryOverflowCollapsesToOther)
{
    ContentionTracker ct;
    ct.setEnabled(true);
    std::vector<telemetry::TenantId> ids;
    for (std::size_t i = 0; i < ContentionTracker::kMaxTenants + 5; ++i) {
        std::string name = "t";
        name += std::to_string(i);
        ids.push_back(ct.registerTenant(name));
    }

    // The first kMaxTenants get distinct ids; the rest share "other".
    for (std::size_t i = 0; i < ContentionTracker::kMaxTenants; ++i)
        EXPECT_EQ(ids[i], static_cast<telemetry::TenantId>(i + 1));
    const auto other = ids[ContentionTracker::kMaxTenants];
    for (std::size_t i = ContentionTracker::kMaxTenants; i < ids.size();
         ++i)
        EXPECT_EQ(ids[i], other);
    EXPECT_EQ(ct.tenantName(other), "other");
    // untracked + named + other.
    EXPECT_EQ(ct.tenantCount(), ContentionTracker::kMaxTenants + 2);
}

TEST(Interference, WindowWideningBoundsRetention)
{
    ContentionTracker ct;
    ct.setEnabled(true);
    ct.setWindowTicks(1000);
    const auto t = ct.registerTenant("t");
    // Completions spread over 4x the window budget force merges.
    const std::int64_t spread =
        static_cast<std::int64_t>(ContentionTracker::kMaxWindows) * 4;
    for (std::int64_t i = 0; i < spread; ++i) {
        const std::uint64_t trace = 1000 + static_cast<std::uint64_t>(i);
        ct.noteOpStart(trace, t);
        ct.noteOpComplete(trace, i * 1000 + 500, 100, 4096);
    }
    EXPECT_GT(ct.windowMerges(), 0u);
    EXPECT_GE(ct.windowTicks(), 4000);
    EXPECT_LE(ct.activeWindows(t), ContentionTracker::kMaxWindows);
    // Merging must not lose ops.
    std::ostringstream row;
    ct.writeJsonRow(row, "widen", 1);
    EXPECT_NE(row.str().find("\"ops\":" + std::to_string(spread)),
              std::string::npos);
}

// --- SLO burn windows ---------------------------------------------------

TEST(Interference, BurnWindowsFlagP99AboveTarget)
{
    ContentionTracker ct;
    ct.setEnabled(true);
    ct.setWindowTicks(1000);
    const auto t = ct.registerTenant("svc");
    ct.setSloTargetTicks(t, 500);

    // Window 0: all ops at 100 ticks (healthy). Window 1: all at 900.
    for (int i = 0; i < 10; ++i) {
        const std::uint64_t trace = 10 + static_cast<std::uint64_t>(i);
        ct.noteOpStart(trace, t);
        ct.noteOpComplete(trace, 500, 100, 4096);
    }
    for (int i = 0; i < 10; ++i) {
        const std::uint64_t trace = 50 + static_cast<std::uint64_t>(i);
        ct.noteOpStart(trace, t);
        ct.noteOpComplete(trace, 1500, 900, 4096);
    }
    EXPECT_EQ(ct.activeWindows(t), 2u);
    EXPECT_EQ(ct.burnWindows(t), 1u);

    std::ostringstream row;
    ct.writeJsonRow(row, "slo", 1);
    EXPECT_NE(row.str().find("\"burn_windows\":1"), std::string::npos);
    EXPECT_NE(row.str().find("\"burn_rate\":0.500"), std::string::npos);
}

TEST(Interference, NoTargetNeverBurns)
{
    ContentionTracker ct;
    ct.setEnabled(true);
    const auto t = ct.registerTenant("svc");
    ct.noteOpStart(1, t);
    ct.noteOpComplete(1, 100, 1000000, 4096);
    EXPECT_EQ(ct.burnWindows(t), 0u);
}

// --- reset keeps registrations ------------------------------------------

TEST(Interference, ResetAccountingKeepsTenantsAndResources)
{
    TwoTenantFixture f;
    f.ct.setSloTargetTicks(f.a, 123);
    f.ct.noteOccupancy(f.res, 101, 0, 100);
    f.ct.attributeWait(f.res, 202, 0, 100);
    ASSERT_GT(f.ct.totalWaitTicks(), 0);

    f.ct.resetAccounting();
    EXPECT_EQ(f.ct.totalWaitTicks(), 0);
    EXPECT_EQ(f.ct.totalBlameTicks(), 0);
    EXPECT_EQ(f.ct.waitedOps(), 0u);
    EXPECT_EQ(f.ct.blameTicks(f.b, f.a), 0);
    EXPECT_TRUE(f.ct.enabled());
    EXPECT_EQ(f.ct.tenantName(f.a), "alice");
    EXPECT_EQ(f.ct.tenantName(f.b), "bob");
    EXPECT_EQ(f.ct.resourceCount(), 1u);

    // New waits attribute cleanly after the reset.
    f.ct.noteOpStart(303, f.a);
    f.ct.noteOpStart(404, f.b);
    f.ct.noteOccupancy(f.res, 303, 200, 250);
    f.ct.attributeWait(f.res, 404, 200, 250);
    EXPECT_EQ(f.ct.blameTicks(f.b, f.a), 50);
    EXPECT_EQ(f.ct.totalBlameTicks(), f.ct.totalWaitTicks());
}

// --- sums-to-wait property under randomized FIFO load --------------------

TEST(Interference, PropertySumsToWaitOnRandomizedPipeLoad)
{
    // Drive a real FIFO Pipe with interleaved transfers from three
    // tenants and random sizes/gaps: however the waits land, blame must
    // tile them exactly. (Engine RNG in tests is fine; the tracker
    // itself stays draw-free.)
    sim::Simulator sim;
    sim::Rng rng(42);
    ContentionTracker ct;
    ct.setEnabled(true);
    const auto res = ct.registerResource(0, RK::NicTx);
    std::vector<telemetry::TenantId> tenants;
    for (int t = 0; t < 3; ++t) {
        std::string name = "t";
        name += std::to_string(t);
        tenants.push_back(ct.registerTenant(name));
    }

    sim::Pipe pipe(sim, /*bytes_per_sec=*/1e9, /*latency=*/sim::Ticks{500},
                   /*per_op=*/sim::Ticks{100});
    telemetry::LaneTap tap(telemetry::LaneTap::Style::kPipe);
    tap.bindContention(&ct, res);
    pipe.setObserver(&tap);

    std::uint64_t nextTrace = 1;
    int completed = 0;
    constexpr int kOps = 400;
    for (int i = 0; i < kOps; ++i) {
        const std::uint64_t trace = nextTrace++;
        const auto tenant = tenants[rng.nextBounded(tenants.size())];
        ct.noteOpStart(trace, tenant);
        const std::uint64_t bytes = 512 + rng.nextBounded(64 * 1024);
        const sim::Tick at =
            static_cast<sim::Tick>(rng.nextBounded(20'000));
        sim.scheduleAt(sim::Ticks{at}, [&pipe, &completed, trace, bytes] {
            pipe.transfer(bytes, trace, [&completed] { ++completed; });
        });
    }
    sim.run();

    EXPECT_EQ(completed, kOps);
    EXPECT_GT(ct.waitedOps(), 0u);
    EXPECT_GT(ct.totalWaitTicks(), 0);
    EXPECT_EQ(ct.totalBlameTicks(), ct.totalWaitTicks());

    // Per-cell sum equals the total too (nothing double-counted).
    sim::Tick cells = 0;
    for (std::size_t v = 0; v < ct.tenantCount(); ++v)
        for (std::size_t a = 0; a < ct.tenantCount(); ++a)
            cells += ct.blameTicks(static_cast<telemetry::TenantId>(v),
                                   static_cast<telemetry::TenantId>(a));
    EXPECT_EQ(cells, ct.totalWaitTicks());
}

// --- end-to-end: two tenants on a real dRAID array -----------------------

namespace {

/** Victim (4K reads) + aggressor (256K writes) on one dRAID rig; returns
 *  the exported interference row. */
std::string
runTwoTenantMix(std::uint64_t seed)
{
    DraidRig rig(/*targets=*/6);
    telemetry::ContentionTracker &ct =
        rig.cluster->telemetry().contention();
    ct.setEnabled(true);
    const auto victim = ct.registerTenant("victim");
    const auto aggressor = ct.registerTenant("aggressor");
    ct.setSloTargetTicks(victim, 2 * sim::kMillisecond);

    const std::uint64_t workingSet = 8ull << 20;
    // Preload so reads hit written stripes.
    {
        workload::FioConfig pre;
        pre.ioSize = 256 * 1024;
        pre.readRatio = 0.0;
        pre.ioDepth = 8;
        pre.numOps = workingSet / pre.ioSize;
        pre.sequential = true;
        pre.workingSetBytes = workingSet;
        pre.seed = seed;
        workload::FioJob preload(rig.sim(), rig.host(), pre);
        preload.run();
    }
    ct.resetAccounting();

    workload::FioConfig vic;
    vic.ioSize = 4 * 1024;
    vic.readRatio = 1.0;
    vic.ioDepth = 2;
    vic.numOps = 200;
    vic.workingSetBytes = workingSet;
    vic.seed = seed + 1;
    vic.tenant = victim;
    vic.contention = &ct;

    workload::FioConfig agg;
    agg.ioSize = 256 * 1024;
    agg.readRatio = 0.0;
    agg.ioDepth = 16;
    agg.numOps = 150;
    agg.workingSetBytes = workingSet;
    agg.seed = seed + 2;
    agg.tenant = aggressor;
    agg.contention = &ct;

    workload::FioJob vicJob(rig.sim(), rig.host(), vic);
    workload::FioJob aggJob(rig.sim(), rig.host(), agg);
    const auto results =
        workload::runConcurrent(rig.sim(), {&vicJob, &aggJob});
    EXPECT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].errors, 0u);
    EXPECT_EQ(results[1].errors, 0u);

    // The invariant holds end-to-end across every hooked resource (NIC
    // directions, SSD channels, CPU cores, stripe locks).
    EXPECT_EQ(ct.totalBlameTicks(), ct.totalWaitTicks());
    EXPECT_GT(ct.waitedOps(), 0u);

    // The saturating writer must show up as the victim's main source of
    // cross-tenant blame.
    EXPECT_GT(ct.blameTicks(victim, aggressor), 0);
    EXPECT_GT(ct.blameTicks(victim, aggressor),
              ct.blameTicks(victim, victim));

    std::ostringstream row;
    ct.writeJsonRow(row, "test_mix", seed);
    return row.str();
}

} // namespace

TEST(Interference, TwoTenantDraidMixAttributesAggressorPressure)
{
    const std::string row = runTwoTenantMix(7);
    EXPECT_NE(row.find("\"victim\""), std::string::npos);
    EXPECT_NE(row.find("\"aggressor\""), std::string::npos);
    EXPECT_NE(row.find("\"matrix\""), std::string::npos);
    EXPECT_NE(row.find("\"slo\""), std::string::npos);
}

TEST(Interference, ExportedRowIsByteIdenticalAcrossSameSeedRuns)
{
    const std::string first = runTwoTenantMix(11);
    const std::string second = runTwoTenantMix(11);
    EXPECT_EQ(first, second);
}
