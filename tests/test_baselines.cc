// Baselines (SPDK POC, Linux MD): data integrity and the host-centric
// bandwidth amplification dRAID eliminates.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "baselines/linux_md.h"
#include "baselines/spdk_raid.h"
#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using baselines::HostCentricRaid;
using baselines::LinuxMdRaid;
using baselines::SpdkRaid;
using raid::RaidLevel;

namespace {

enum class Kind
{
    kSpdk,
    kLinux,
};

struct BaselineRig
{
    cluster::TestbedConfig cfg;
    std::unique_ptr<cluster::Cluster> cluster;
    std::unique_ptr<HostCentricRaid> raidDev;

    BaselineRig(Kind kind, RaidLevel level, std::uint32_t targets = 6,
                std::uint32_t width = 0)
        : cfg(smallConfig())
    {
        cluster = std::make_unique<cluster::Cluster>(cfg, targets);
        if (kind == Kind::kSpdk) {
            raidDev = std::make_unique<SpdkRaid>(*cluster, level,
                                                 64 * 1024, width);
        } else {
            raidDev = std::make_unique<LinuxMdRaid>(*cluster, level,
                                                    64 * 1024, width);
        }
    }

    sim::Simulator &sim() { return cluster->sim(); }
};

} // namespace

class BaselineParam
    : public ::testing::TestWithParam<std::tuple<Kind, RaidLevel>>
{
  protected:
    Kind kind() const { return std::get<0>(GetParam()); }
    RaidLevel level() const { return std::get<1>(GetParam()); }
};

TEST_P(BaselineParam, PartialWriteRoundTripsWithParity)
{
    BaselineRig rig(kind(), level());
    ec::Buffer data(16 * 1024);
    data.fillPattern(1);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 4096, data));
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), *rig.raidDev, 4096, 16 * 1024,
                              &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, rig.raidDev->geometry(), 0));
}

TEST_P(BaselineParam, FullStripeWriteRoundTrips)
{
    BaselineRig rig(kind(), level());
    const auto &g = rig.raidDev->geometry();
    ec::Buffer data(g.stripeDataSize());
    data.fillPattern(2);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, data));
    ec::Buffer got = readSync(rig.sim(), *rig.raidDev, 0,
                              static_cast<std::uint32_t>(data.size()));
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_TRUE(scrubStripe(*rig.cluster, g, 0));
}

TEST_P(BaselineParam, RandomStormMatchesModel)
{
    BaselineRig rig(kind(), level());
    const auto &g = rig.raidDev->geometry();
    const std::uint64_t span = 4 * g.stripeDataSize();
    std::vector<std::uint8_t> model(span, 0);
    sim::Rng rng(17);
    for (int i = 0; i < 30; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(1024 * (1 + rng.nextBounded(64)));
        const std::uint64_t off = rng.nextBounded(span - len);
        ec::Buffer data(len);
        data.fillPattern(2000 + i);
        std::memcpy(model.data() + off, data.data(), len);
        ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, off, data));
    }
    bool ok = false;
    ec::Buffer all = readSync(rig.sim(), *rig.raidDev, 0,
                              static_cast<std::uint32_t>(span), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(all.data(), model.data(), span), 0);
    for (std::uint64_t s = 0; s < 4; ++s)
        EXPECT_TRUE(scrubStripe(*rig.cluster, g, s));
}

TEST_P(BaselineParam, DegradedReadReconstructs)
{
    BaselineRig rig(kind(), level());
    const auto &g = rig.raidDev->geometry();
    ec::Buffer data(2 * g.stripeDataSize());
    data.fillPattern(3);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, data));

    rig.raidDev->markFailed(1);
    bool ok = false;
    ec::Buffer got = readSync(rig.sim(), *rig.raidDev, 0,
                              static_cast<std::uint32_t>(data.size()),
                              &ok);
    ASSERT_TRUE(ok);
    EXPECT_TRUE(got.contentEquals(data));
    EXPECT_GE(rig.raidDev->counters().degradedReads, 1u);
}

TEST_P(BaselineParam, DegradedWriteStaysConsistent)
{
    BaselineRig rig(kind(), level());
    const auto &g = rig.raidDev->geometry();
    const std::uint64_t span = 3 * g.stripeDataSize();
    std::vector<std::uint8_t> model(span, 0);
    ec::Buffer pre(span);
    pre.fillPattern(4);
    std::memcpy(model.data(), pre.data(), span);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, pre));

    rig.raidDev->markFailed(0);
    sim::Rng rng(23);
    for (int i = 0; i < 20; ++i) {
        const std::uint32_t len =
            static_cast<std::uint32_t>(1024 * (1 + rng.nextBounded(48)));
        const std::uint64_t off = rng.nextBounded(span - len);
        ec::Buffer data(len);
        data.fillPattern(3000 + i);
        std::memcpy(model.data() + off, data.data(), len);
        ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, off, data));
    }
    bool ok = false;
    ec::Buffer all = readSync(rig.sim(), *rig.raidDev, 0,
                              static_cast<std::uint32_t>(span), &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(all.data(), model.data(), span), 0);
}

TEST_P(BaselineParam, RebuildOntoSpare)
{
    BaselineRig rig(kind(), level(), 7, 6);
    const auto &g = rig.raidDev->geometry();
    ec::Buffer data(4 * g.stripeDataSize());
    data.fillPattern(5);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, data));

    rig.raidDev->markFailed(2);
    int done = 0;
    for (std::uint64_t s = 0; s < 4; ++s) {
        rig.raidDev->reconstructChunk(s, 6, [&](bool ok) {
            EXPECT_TRUE(ok);
            ++done;
        });
    }
    rig.sim().run();
    EXPECT_EQ(done, 4);
    // The spare holds the failed device's chunks for every stripe.
    for (std::uint64_t s = 0; s < 4; ++s) {
        const std::uint64_t addr = g.deviceAddress(s, 0);
        ec::Buffer spare = rig.cluster->target(6).ssd().store().readSync(
            addr, g.chunkSize());
        // Compare with reconstruction from survivors.
        if (g.roleOf(s, 2) == raid::ChunkRole::kData) {
            std::vector<ec::Buffer> sur;
            for (std::uint32_t i = 0; i < g.dataChunks(); ++i) {
                const auto dev = g.dataDevice(s, i);
                if (dev != 2) {
                    sur.push_back(rig.cluster->target(dev)
                                      .ssd()
                                      .store()
                                      .readSync(addr, g.chunkSize()));
                }
            }
            sur.push_back(rig.cluster->target(g.parityDevice(s))
                              .ssd()
                              .store()
                              .readSync(addr, g.chunkSize()));
            EXPECT_TRUE(
                ec::Raid5Codec::recover(sur).contentEquals(spare))
                << "stripe " << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BaselineParam,
    ::testing::Combine(::testing::Values(Kind::kSpdk, Kind::kLinux),
                       ::testing::Values(RaidLevel::kRaid5,
                                         RaidLevel::kRaid6)));

TEST(BaselineTraffic, SpdkRmwCostsDoubleHostTx)
{
    // §2.3: host-centric RMW sends new data AND new parity through the
    // host NIC — 2x outbound for RAID-5.
    BaselineRig rig(Kind::kSpdk, RaidLevel::kRaid5, 8);
    ec::Buffer pre(rig.raidDev->geometry().stripeDataSize());
    pre.fillPattern(6);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, pre));

    const std::uint64_t tx0 =
        rig.cluster->host().nic().tx().bytesTransferred();
    const std::uint64_t rx0 =
        rig.cluster->host().nic().rx().bytesTransferred();
    ec::Buffer data(64 * 1024); // one chunk: RMW
    data.fillPattern(7);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, data));
    const std::uint64_t tx =
        rig.cluster->host().nic().tx().bytesTransferred() - tx0;
    const std::uint64_t rx =
        rig.cluster->host().nic().rx().bytesTransferred() - rx0;

    // Outbound: data + parity = 2 chunks; inbound: old data + old parity.
    EXPECT_GE(tx, 2u * 64 * 1024);
    EXPECT_LT(tx, 2u * 64 * 1024 + 8192);
    EXPECT_GE(rx, 2u * 64 * 1024);
}

TEST(BaselineTraffic, SpdkDegradedReadAmplifiesHostRx)
{
    // Table 1: D-Read overhead Nx for host-centric RAID.
    BaselineRig rig(Kind::kSpdk, RaidLevel::kRaid5, 8);
    const auto &g = rig.raidDev->geometry();
    ec::Buffer pre(2 * g.stripeDataSize());
    pre.fillPattern(8);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, pre));
    rig.raidDev->markFailed(0);

    const std::uint32_t fidx = g.dataIndexOf(0, 0);
    const std::uint64_t off =
        static_cast<std::uint64_t>(fidx) * g.chunkSize();
    const std::uint64_t rx0 =
        rig.cluster->host().nic().rx().bytesTransferred();
    bool ok = false;
    readSync(rig.sim(), *rig.raidDev, off, g.chunkSize(), &ok);
    ASSERT_TRUE(ok);
    const std::uint64_t rx =
        rig.cluster->host().nic().rx().bytesTransferred() - rx0;
    // n-1 = 7 chunks cross the host NIC to deliver one.
    EXPECT_GE(rx, 7u * g.chunkSize());
}

TEST(BaselineBehaviour, SpdkLocksReadsLinuxDoesNot)
{
    BaselineRig spdk(Kind::kSpdk, RaidLevel::kRaid5);
    ec::Buffer pre(64 * 1024);
    pre.fillPattern(9);
    ASSERT_TRUE(writeSync(spdk.sim(), *spdk.raidDev, 0, pre));
    int completed = 0;
    for (int i = 0; i < 8; ++i) {
        spdk.raidDev->read(0, 4096,
                           [&](blockdev::IoStatus, ec::Buffer) {
                               ++completed;
                           });
    }
    spdk.sim().run();
    EXPECT_EQ(completed, 8);
    // SPDK POC serializes same-stripe reads through the stripe lock;
    // the contention counter proves the lock was exercised.
}

TEST(BaselineFailure, TimeoutFailsOverToDegraded)
{
    BaselineRig rig(Kind::kSpdk, RaidLevel::kRaid5);
    const auto &g = rig.raidDev->geometry();
    ec::Buffer pre(g.stripeDataSize());
    pre.fillPattern(10);
    ASSERT_TRUE(writeSync(rig.sim(), *rig.raidDev, 0, pre));

    const std::uint32_t victim = g.dataDevice(0, 0);
    rig.cluster->failTarget(victim);
    ec::Buffer data(8192);
    data.fillPattern(11);
    bool done = false;
    blockdev::IoStatus st = blockdev::IoStatus::kError;
    rig.raidDev->write(0, data.clone(), [&](blockdev::IoStatus s) {
        st = s;
        done = true;
        rig.sim().stop();
    });
    while (!done && rig.sim().pendingEvents() > 0)
        rig.sim().run();
    ASSERT_TRUE(done);
    EXPECT_EQ(st, blockdev::IoStatus::kOk);
    EXPECT_TRUE(rig.raidDev->isDegraded());
    ec::Buffer got = readSync(rig.sim(), *rig.raidDev, 0, 8192);
    EXPECT_TRUE(got.contentEquals(data));
}
