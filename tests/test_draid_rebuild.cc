// dRAID rebuild: reconstruction onto a spare via the peer-to-peer data
// path (§6), for data, P, and Q chunks; RebuildJob driver behaviour.

#include <gtest/gtest.h>

#include <cstring>

#include "core/reconstruct.h"
#include "draid_test_util.h"

using namespace draid;
using namespace draid::testutil;
using core::DraidOptions;
using core::RebuildJob;
using raid::RaidLevel;

namespace {

DraidOptions
opts(RaidLevel level)
{
    DraidOptions o;
    o.level = level;
    o.chunkSize = 64 * 1024;
    return o;
}

} // namespace

class DraidRebuild : public ::testing::TestWithParam<RaidLevel>
{
};

TEST_P(DraidRebuild, RebuildsEveryStripeOntoSpare)
{
    // 7 targets, width 6; target 6 is the spare.
    DraidRig rig(7, opts(GetParam()), 6);
    const auto &g = rig.host().geometry();
    const std::uint64_t stripes = 8;

    ec::Buffer data(stripes * g.stripeDataSize());
    data.fillPattern(31);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));

    const std::uint32_t failed = 2;
    rig.host().markFailed(failed);

    RebuildJob job(
        rig.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            rig.host().reconstructChunk(stripe, 6, std::move(done));
        },
        stripes, g.chunkSize());
    bool finished = false, all_ok = false;
    job.start([&](bool ok) {
        finished = true;
        all_ok = ok;
        rig.sim().stop();
    });
    rig.sim().run();
    ASSERT_TRUE(finished);
    EXPECT_TRUE(all_ok);
    EXPECT_EQ(job.stripesDone(), stripes);
    EXPECT_EQ(job.failures(), 0u);
    EXPECT_GT(job.throughputMBps(), 0.0);

    // The spare drive must now hold exactly what the failed drive held:
    // per stripe, the failed device's chunk content (data, P or Q).
    for (std::uint64_t s = 0; s < stripes; ++s) {
        const std::uint64_t addr = g.deviceAddress(s, 0);
        ec::Buffer spare_chunk =
            rig.cluster->target(6).ssd().store().readSync(addr,
                                                          g.chunkSize());

        // Expected content: recompute from the surviving layout.
        std::vector<ec::Buffer> chunks;
        for (std::uint32_t i = 0; i < g.dataChunks(); ++i) {
            const std::uint32_t dev = g.dataDevice(s, i);
            const auto src = dev == failed ? 6u : dev;
            (void)src;
            chunks.push_back(
                dev == failed
                    ? spare_chunk
                    : rig.cluster->target(dev).ssd().store().readSync(
                          addr, g.chunkSize()));
        }
        const raid::ChunkRole role = g.roleOf(s, failed);
        if (role == raid::ChunkRole::kData) {
            // Verify the whole stripe is self-consistent using P on disk.
            ec::Buffer p = rig.cluster->target(g.parityDevice(s))
                               .ssd()
                               .store()
                               .readSync(addr, g.chunkSize());
            EXPECT_TRUE(
                ec::Raid5Codec::computeParity(chunks).contentEquals(p))
                << "stripe " << s;
        } else if (role == raid::ChunkRole::kParityP) {
            EXPECT_TRUE(ec::Raid5Codec::computeParity(chunks)
                            .contentEquals(spare_chunk))
                << "stripe " << s;
        } else {
            ec::Buffer ep, eq;
            ec::Raid6Codec::computePQ(chunks, ep, eq);
            EXPECT_TRUE(eq.contentEquals(spare_chunk)) << "stripe " << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, DraidRebuild,
                         ::testing::Values(RaidLevel::kRaid5,
                                           RaidLevel::kRaid6));

TEST(DraidRebuildTraffic, RebuildBypassesHostNic)
{
    DraidOptions o;
    o.level = RaidLevel::kRaid5;
    o.chunkSize = 64 * 1024;
    DraidRig rig(7, o, 6);
    const auto &g = rig.host().geometry();
    ec::Buffer data(4 * g.stripeDataSize());
    data.fillPattern(3);
    ASSERT_TRUE(writeSync(rig.sim(), rig.host(), 0, data));
    rig.host().markFailed(0);

    const std::uint64_t rx0 =
        rig.cluster->host().nic().rx().bytesTransferred();
    const std::uint64_t tx0 =
        rig.cluster->host().nic().tx().bytesTransferred();

    RebuildJob job(
        rig.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            rig.host().reconstructChunk(stripe, 6, std::move(done));
        },
        4, g.chunkSize());
    job.start([&](bool) { rig.sim().stop(); });
    rig.sim().run();

    // Only command capsules cross the host NIC; chunk data flows
    // peer-to-peer into the spare.
    const std::uint64_t host_bytes =
        rig.cluster->host().nic().rx().bytesTransferred() - rx0 +
        rig.cluster->host().nic().tx().bytesTransferred() - tx0;
    EXPECT_LT(host_bytes, 16384u);
    EXPECT_GT(rig.cluster->target(6).ssd().bytesWritten(),
              3u * g.chunkSize());
}

TEST(RebuildJob, WindowBoundsInFlight)
{
    sim::Simulator sim;
    int in_flight = 0, max_in_flight = 0;
    RebuildJob job(
        sim,
        [&](std::uint64_t, std::function<void(bool)> done) {
            ++in_flight;
            max_in_flight = std::max(max_in_flight, in_flight);
            sim.schedule(draid::sim::Ticks{1000}, [&in_flight, done = std::move(done)]() {
                --in_flight;
                done(true);
            });
        },
        100, 4096, /*window=*/4);
    bool finished = false;
    job.start([&](bool ok) {
        finished = true;
        EXPECT_TRUE(ok);
    });
    sim.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(max_in_flight, 4);
    EXPECT_EQ(job.stripesDone(), 100u);
}

TEST(RebuildJob, ReportsFailures)
{
    sim::Simulator sim;
    RebuildJob job(
        sim,
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            sim.schedule(draid::sim::Ticks{10}, [stripe, done = std::move(done)]() {
                done(stripe % 3 != 0);
            });
        },
        9, 4096);
    bool ok = true;
    job.start([&](bool all_ok) { ok = all_ok; });
    sim.run();
    EXPECT_FALSE(ok);
    EXPECT_EQ(job.failures(), 3u);
}

TEST(RebuildJob, EmptyJobCompletesImmediately)
{
    sim::Simulator sim;
    RebuildJob job(sim, [](std::uint64_t, std::function<void(bool)>) {},
                   0, 4096);
    bool finished = false;
    job.start([&](bool ok) {
        finished = true;
        EXPECT_TRUE(ok);
    });
    EXPECT_TRUE(finished);
}
