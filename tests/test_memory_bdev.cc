// MemoryBdev: sparse page store semantics.

#include <gtest/gtest.h>

#include "blockdev/memory_bdev.h"

using namespace draid::blockdev;
using draid::ec::Buffer;

TEST(MemoryBdev, ReportsCapacity)
{
    MemoryBdev dev(1 << 20);
    EXPECT_EQ(dev.sizeBytes(), 1u << 20);
}

TEST(MemoryBdev, FreshDeviceReadsZeros)
{
    MemoryBdev dev(1 << 20);
    Buffer b = dev.readSync(1000, 512);
    Buffer zeros(512);
    EXPECT_TRUE(b.contentEquals(zeros));
    EXPECT_EQ(dev.pagesAllocated(), 0u);
}

TEST(MemoryBdev, WriteReadRoundTrip)
{
    MemoryBdev dev(8 << 20);
    Buffer data(4096);
    data.fillPattern(11);
    dev.writeSync(12345, data);
    EXPECT_TRUE(dev.readSync(12345, 4096).contentEquals(data));
}

TEST(MemoryBdev, WriteSpanningPages)
{
    MemoryBdev dev(8 << 20);
    // Page size is 256 KB; span the boundary.
    const std::uint64_t off = 256 * 1024 - 100;
    Buffer data(300);
    data.fillPattern(12);
    dev.writeSync(off, data);
    EXPECT_TRUE(dev.readSync(off, 300).contentEquals(data));
    EXPECT_EQ(dev.pagesAllocated(), 2u);
}

TEST(MemoryBdev, PartialOverwrite)
{
    MemoryBdev dev(1 << 20);
    Buffer first(1000);
    first.fill(0xaa);
    dev.writeSync(0, first);
    Buffer patch(100);
    patch.fill(0xbb);
    dev.writeSync(450, patch);

    Buffer got = dev.readSync(0, 1000);
    for (int i = 0; i < 450; ++i)
        EXPECT_EQ(got[i], 0xaa);
    for (int i = 450; i < 550; ++i)
        EXPECT_EQ(got[i], 0xbb);
    for (int i = 550; i < 1000; ++i)
        EXPECT_EQ(got[i], 0xaa);
}

TEST(MemoryBdev, AsyncInterfaceCompletesInline)
{
    MemoryBdev dev(1 << 20);
    bool wrote = false, read = false;
    Buffer data(64);
    data.fill(0x42);
    dev.write(0, data, [&](IoStatus st) { wrote = st == IoStatus::kOk; });
    dev.read(0, 64, [&](IoStatus st, Buffer b) {
        read = st == IoStatus::kOk && b.contentEquals(Buffer(64)) == false;
    });
    EXPECT_TRUE(wrote);
    EXPECT_TRUE(read);
}

TEST(MemoryBdev, SparseAllocationOnlyTouchedPages)
{
    MemoryBdev dev(1ull << 40); // 1 TB logical, no allocation yet
    dev.writeSync(1ull << 39, Buffer(128));
    EXPECT_EQ(dev.pagesAllocated(), 1u);
}
