// Event journal + windowed timeline: ring wraparound, hand-computed
// window bins, utilization re-binning, the health detector, JSON/JSONL
// well-formedness, the ASCII renderer's event markers, the end-to-end
// failure -> rebuild -> swap journal lifecycle, and the guard that the
// journal + timeline never perturb simulated ticks.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/reconstruct.h"
#include "draid_test_util.h"
#include "telemetry/event_journal.h"
#include "telemetry/timeline.h"

using namespace draid;
using namespace draid::testutil;

namespace {

core::DraidOptions
fourPlusOneOptions()
{
    core::DraidOptions o;
    o.chunkSize = 64 * 1024;
    return o;
}

std::uint64_t
countType(const std::vector<telemetry::EventJournal::Event> &events,
          telemetry::EventType t)
{
    std::uint64_t n = 0;
    for (const auto &e : events) {
        if (e.type == t)
            ++n;
    }
    return n;
}

sim::Tick
tickOf(const std::vector<telemetry::EventJournal::Event> &events,
       telemetry::EventType t)
{
    for (const auto &e : events) {
        if (e.type == t)
            return e.tick;
    }
    return -1;
}

} // namespace

// --- event journal ------------------------------------------------------

TEST(EventJournal, RingWrapsAndKeepsNewestOldestFirst)
{
    telemetry::EventJournal journal(4);
    EXPECT_EQ(journal.capacity(), 4u);
    for (std::uint64_t i = 1; i <= 6; ++i) {
        journal.record(telemetry::EventType::kScrubPass, /*node=*/0,
                       /*tick=*/static_cast<sim::Tick>(i * 10), /*a=*/i);
    }
    EXPECT_EQ(journal.size(), 4u);
    EXPECT_EQ(journal.totalRecorded(), 6u);

    const auto events = journal.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Records 1 and 2 were overwritten; 3..6 remain, oldest first.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].a, i + 3);
        EXPECT_EQ(events[i].tick, static_cast<sim::Tick>((i + 3) * 10));
    }
}

TEST(EventJournal, SnapshotRangeFiltersHalfOpenInterval)
{
    telemetry::EventJournal journal;
    for (sim::Tick t : {10, 20, 30, 40})
        journal.record(telemetry::EventType::kDriveFailed, 0, t);
    const auto in = journal.snapshotRange(20, 40);
    ASSERT_EQ(in.size(), 2u);
    EXPECT_EQ(in[0].tick, 20);
    EXPECT_EQ(in[1].tick, 30);
}

TEST(EventJournal, DisabledRecordsNothing)
{
    telemetry::EventJournal journal;
    EXPECT_TRUE(journal.enabled()); // ships enabled
    journal.setEnabled(false);
    journal.record(telemetry::EventType::kDriveFailed, 0, 1);
    EXPECT_EQ(journal.size(), 0u);
    EXPECT_EQ(journal.totalRecorded(), 0u);
}

TEST(EventJournal, JsonlLinesAreWellFormed)
{
    telemetry::EventJournal journal;
    journal.record(telemetry::EventType::kRebuildStarted, 0, 100, 96,
                   524288);
    journal.record(telemetry::EventType::kStripeLockConvoy, 3, 200, 7, 2);
    std::ostringstream os;
    journal.writeJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    int lines = 0;
    while (std::getline(is, line)) {
        EXPECT_TRUE(JsonChecker(line).valid()) << line;
        ++lines;
    }
    EXPECT_EQ(lines, 2);
    EXPECT_NE(os.str().find("\"RebuildStarted\""), std::string::npos);
}

// --- windowed aggregator ------------------------------------------------

TEST(WindowedAggregator, HandComputedBins)
{
    // Window = 1000 ticks = 1 us. Two ops land in window 0, none in
    // window 1, one in window 2.
    telemetry::WindowedAggregator agg(sim::Ticks{1000});
    agg.addOp(sim::Ticks{100}, sim::Ticks{50}, /*bytes=*/1000);
    agg.addOp(sim::Ticks{999}, sim::Ticks{150}, /*bytes=*/500);
    agg.addOp(sim::Ticks{2500}, sim::Ticks{100}, /*bytes=*/2000);
    EXPECT_EQ(agg.opsAdded(), 3u);

    const auto windows = agg.finalize();
    ASSERT_EQ(windows.size(), 3u);

    EXPECT_EQ(windows[0].start, 0);
    EXPECT_EQ(windows[0].ops, 2u);
    EXPECT_EQ(windows[0].bytes, 1500u);
    // 1500 bytes over 1 us = 1500 MB/s; 2 ops over 1 us = 2000 kIOPS.
    EXPECT_NEAR(windows[0].goodputMBps, 1500.0, 1e-9);
    EXPECT_NEAR(windows[0].kiops, 2000.0, 1e-9);
    // Nearest-rank p50 of {50, 150} ticks is 50 ticks = 0.05 us.
    EXPECT_NEAR(windows[0].p50Us, 0.05, 1e-12);
    EXPECT_NEAR(windows[0].p99Us, 0.15, 1e-12);

    // The empty middle window is present and zero-filled.
    EXPECT_EQ(windows[1].start, 1000);
    EXPECT_EQ(windows[1].ops, 0u);
    EXPECT_EQ(windows[1].goodputMBps, 0.0);

    EXPECT_EQ(windows[2].start, 2000);
    EXPECT_EQ(windows[2].ops, 1u);
    EXPECT_NEAR(windows[2].goodputMBps, 2000.0, 1e-9);
    EXPECT_NEAR(windows[2].p50Us, 0.1, 1e-12);
}

TEST(WindowedAggregator, ExplicitRangeExtendsCoverage)
{
    telemetry::WindowedAggregator agg(sim::Ticks{1000});
    agg.addOp(sim::Ticks{1500}, sim::Ticks{10}, 100);
    const auto windows = agg.finalize(sim::Ticks::zero(), sim::Ticks{5000});
    ASSERT_EQ(windows.size(), 5u);
    EXPECT_EQ(windows[0].ops, 0u);
    EXPECT_EQ(windows[1].ops, 1u);
    EXPECT_EQ(windows[4].start, 4000);
}

TEST(WindowedAggregator, SpanIngestionUsesOpLaneOnly)
{
    telemetry::WindowedAggregator agg(sim::Ticks{1000});
    telemetry::TraceSpan op;
    op.lane = "op";
    op.name = "draid.read";
    op.start = 100;
    op.end = 600;
    op.args.emplace_back("bytes", "4096");

    telemetry::TraceSpan ssd = op;
    ssd.lane = "ssd"; // sub-span: must not be double-counted

    agg.addOpSpans({op, ssd});
    const auto windows = agg.finalize();
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].ops, 1u);
    EXPECT_EQ(windows[0].bytes, 4096u);
    EXPECT_NEAR(windows[0].p50Us, 0.5, 1e-12); // 500-tick latency
}

// --- utilization binning + health detector ------------------------------

TEST(Timeline, UtilizationRebinsAndCarriesForward)
{
    std::vector<telemetry::UtilizationSampler::Sample> samples;
    // Node 1 "ssd.util": two samples in window 0, none in window 1.
    samples.push_back({1, "ssd.util", 100, 0.2});
    samples.push_back({1, "ssd.util", 900, 0.6});
    const auto series =
        telemetry::binUtilization(samples, /*from=*/sim::Ticks::zero(),
                                  sim::Ticks{1000}, /*num_windows=*/2);
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0].node, 1);
    ASSERT_EQ(series[0].perWindow.size(), 2u);
    EXPECT_NEAR(series[0].perWindow[0], 0.4, 1e-12); // mean of the two
    EXPECT_NEAR(series[0].perWindow[1], 0.4, 1e-12); // carried forward
}

TEST(Timeline, HealthDetectorFlagsStallsAndImbalance)
{
    std::vector<telemetry::TimelineWindow> windows(4);
    windows[0].ops = 5;
    windows[1].ops = 0; // stalled: active windows on both sides
    windows[2].ops = 3;
    windows[3].ops = 0; // trailing zero window: NOT a stall

    // Three non-host nodes report ssd.util; node 1 is far busier in
    // window 0. The host (node 0) being busy must not flag.
    std::vector<telemetry::UtilizationSeries> util;
    util.push_back({0, "ssd.util", {1.0, 1.0, 1.0, 1.0}}); // host: ignored
    util.push_back({1, "ssd.util", {0.9, 0.3, 0.2, 0.0}});
    util.push_back({2, "ssd.util", {0.1, 0.3, 0.2, 0.0}});
    util.push_back({3, "ssd.util", {0.1, 0.3, 0.2, 0.0}});

    const auto health =
        telemetry::detectHealth(windows, util, /*host_node=*/0);
    ASSERT_EQ(health.stalledWindows.size(), 1u);
    EXPECT_EQ(health.stalledWindows[0], 1u);

    ASSERT_EQ(health.imbalances.size(), 1u);
    EXPECT_EQ(health.imbalances[0].window, 0u);
    EXPECT_EQ(health.imbalances[0].node, 1);
    EXPECT_NEAR(health.imbalances[0].maxUtil, 0.9, 1e-12);
    EXPECT_NEAR(health.imbalances[0].meanUtil, 0.1, 1e-12);
}

// --- report assembly + rendering ----------------------------------------

namespace {

/** A synthetic run: steady ops with a dip bracketed by rebuild markers. */
telemetry::TimelineReport
syntheticReport()
{
    std::vector<telemetry::TraceSpan> spans;
    for (int i = 0; i < 100; ++i) {
        telemetry::TraceSpan s;
        s.lane = "op";
        s.name = "draid.read";
        s.start = i * 100;
        s.end = s.start + 80;
        // The dip: ops in [3000, 7000) carry fewer bytes.
        const bool dip = s.end >= 3000 && s.end < 7000;
        s.args.emplace_back("bytes", dip ? "512" : "8192");
        spans.push_back(std::move(s));
    }
    std::vector<telemetry::EventJournal::Event> events;
    events.push_back({telemetry::EventType::kRebuildStarted, 0, 3000, 8, 0});
    events.push_back(
        {telemetry::EventType::kRebuildCompleted, 0, 6999, 8, 0});
    return telemetry::buildTimeline(spans, events, {},
                                    sim::Ticks{1000}, /*host_node=*/0);
}

} // namespace

TEST(Timeline, BuildClampsEventsAndSizesWindows)
{
    auto report = syntheticReport();
    EXPECT_EQ(report.windowTicks, 1000);
    ASSERT_EQ(report.windows.size(), 10u);
    EXPECT_EQ(report.events.size(), 2u);

    // An event outside the op range is dropped.
    std::vector<telemetry::EventJournal::Event> far;
    far.push_back({telemetry::EventType::kDriveFailed, 0, 1'000'000, 0, 0});
    telemetry::TraceSpan s;
    s.lane = "op";
    s.start = 0;
    s.end = 100;
    const auto clamped =
        telemetry::buildTimeline({s}, far, {}, sim::Ticks{1000}, 0);
    EXPECT_TRUE(clamped.events.empty());
}

TEST(Timeline, JsonReportIsWellFormed)
{
    auto report = syntheticReport();
    report.utilization.push_back({1, "ssd.util", {0.5, 0.6}});
    std::ostringstream os;
    telemetry::writeTimelineJson(os, report);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
    EXPECT_NE(os.str().find("\"RebuildStarted\""), std::string::npos);
}

TEST(Timeline, AsciiRendererShowsDipBracketedByMarkers)
{
    const auto report = syntheticReport();
    std::ostringstream os;
    telemetry::renderTimelineAscii(os, report, "synthetic");
    const std::string out = os.str();

    // One sparkline column per window, between the | delimiters.
    const auto gp = out.find("## goodput |");
    ASSERT_NE(gp, std::string::npos);
    const auto ev = out.find("## events  |");
    ASSERT_NE(ev, std::string::npos);
    const std::string spark = out.substr(gp + 12, report.windows.size());
    const std::string markers = out.substr(ev + 12, report.windows.size());

    // The R and C markers bracket the dip windows.
    EXPECT_EQ(markers[3], 'R');
    EXPECT_EQ(markers[6], 'C');
    // Goodput inside the dip renders lower than outside (peak is '#').
    EXPECT_EQ(spark[1], '#');
    EXPECT_NE(spark[4], '#');
    EXPECT_NE(spark[4], ' ');

    // Legend lines name the rare events.
    EXPECT_NE(out.find("[R] RebuildStarted"), std::string::npos);
    EXPECT_NE(out.find("[C] RebuildCompleted"), std::string::npos);
    EXPECT_NE(out.find("## health:"), std::string::npos);
}

TEST(Timeline, EventMarkersAreUniquePerType)
{
    std::set<char> seen;
    for (std::size_t i = 0; i < telemetry::kNumEventTypes; ++i) {
        const char m = telemetry::eventMarker(
            static_cast<telemetry::EventType>(i));
        EXPECT_NE(m, '?');
        EXPECT_TRUE(seen.insert(m).second)
            << "duplicate marker '" << m << "'";
    }
}

// --- end to end ---------------------------------------------------------

TEST(TimelineE2E, JournalRecordsFailureRebuildSwapLifecycle)
{
    // 4+1 dRAID on 6 targets: target 5 is the hot spare.
    DraidRig rig(6, fourPlusOneOptions(), 5);
    auto &journal = rig.cluster->telemetry().journal();
    const auto &geom = rig.host().geometry();
    const std::uint32_t stripeData =
        static_cast<std::uint32_t>(geom.stripeDataSize());

    const std::uint64_t stripes = 4;
    for (std::uint64_t s = 0; s < stripes; ++s) {
        ec::Buffer buf(stripeData);
        buf.fillPattern(static_cast<int>(s) + 1);
        ASSERT_TRUE(
            writeSync(rig.sim(), rig.host(), s * stripeData, buf));
    }

    rig.host().markFailed(0);
    bool ok = false;
    readSync(rig.sim(), rig.host(), 0, stripeData, &ok);
    ASSERT_TRUE(ok);

    core::RebuildJob job(
        rig.sim(),
        [&](std::uint64_t stripe, std::function<void(bool)> done) {
            rig.host().reconstructChunk(stripe, 5, std::move(done));
        },
        stripes, geom.chunkSize(), /*window=*/2);
    job.bindJournal(&journal, rig.cluster->hostId());
    bool rebuilt = false;
    job.start([&](bool all_ok) {
        rebuilt = all_ok;
        rig.sim().stop();
    });
    while (!job.finished() && rig.sim().pendingEvents() > 0)
        rig.sim().run();
    ASSERT_TRUE(rebuilt);
    rig.host().replaceDevice(0, 5);
    EXPECT_FALSE(rig.host().isDegraded());

    const auto events = journal.snapshot();
    EXPECT_EQ(countType(events, telemetry::EventType::kDriveFailed), 1u);
    EXPECT_GE(countType(events, telemetry::EventType::kDegradedReadServed),
              1u);
    EXPECT_EQ(countType(events, telemetry::EventType::kRebuildStarted), 1u);
    EXPECT_EQ(countType(events, telemetry::EventType::kRebuildCompleted),
              1u);
    EXPECT_EQ(countType(events, telemetry::EventType::kHotSpareSwap), 1u);
    EXPECT_EQ(countType(events, telemetry::EventType::kDriveRecovered), 1u);

    // Lifecycle order: failed <= rebuild started <= completed <= swap.
    const sim::Tick failed =
        tickOf(events, telemetry::EventType::kDriveFailed);
    const sim::Tick started =
        tickOf(events, telemetry::EventType::kRebuildStarted);
    const sim::Tick completed =
        tickOf(events, telemetry::EventType::kRebuildCompleted);
    const sim::Tick swap =
        tickOf(events, telemetry::EventType::kHotSpareSwap);
    EXPECT_LE(failed, started);
    EXPECT_LE(started, completed);
    EXPECT_LE(completed, swap);

    // The snapshot is tick-ordered (single writer, monotone clock).
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].tick, events[i].tick);

    // The completed record carries the stripe count.
    for (const auto &e : events) {
        if (e.type == telemetry::EventType::kRebuildStarted) {
            EXPECT_EQ(e.a, stripes);
        }
        if (e.type == telemetry::EventType::kRebuildCompleted) {
            EXPECT_EQ(e.a, stripes);
            EXPECT_EQ(e.b, 0u); // no per-stripe failures
        }
    }
}

TEST(TimelineDeterminism, JournalAndTimelineDoNotPerturbTicks)
{
    // The same failure + degraded-read + rebuild scenario twice: once
    // fully dark (journal disabled, no tracing), once with the journal,
    // tracing, sampling AND a timeline built + rendered at the end.
    // Everything is observe-only, so completion ticks must be identical.
    auto run = [](bool instrumented) {
        DraidRig rig(6, fourPlusOneOptions(), 5);
        auto &tel = rig.cluster->telemetry();
        if (instrumented) {
            rig.cluster->tracer().setEnabled(true);
            rig.cluster->startUtilizationSampling(sim::Ticks::us(20));
        } else {
            tel.journal().setEnabled(false);
        }

        const auto &geom = rig.host().geometry();
        const std::uint32_t stripeData =
            static_cast<std::uint32_t>(geom.stripeDataSize());
        std::vector<sim::Tick> ticks;

        for (std::uint64_t s = 0; s < 2; ++s) {
            ec::Buffer buf(stripeData);
            buf.fillPattern(static_cast<int>(s) + 3);
            EXPECT_TRUE(
                writeSync(rig.sim(), rig.host(), s * stripeData, buf));
            ticks.push_back(rig.sim().now().raw());
        }

        rig.host().markFailed(0);
        bool ok = false;
        readSync(rig.sim(), rig.host(), 0, stripeData, &ok);
        EXPECT_TRUE(ok);
        ticks.push_back(rig.sim().now().raw());

        core::RebuildJob job(
            rig.sim(),
            [&](std::uint64_t stripe, std::function<void(bool)> done) {
                rig.host().reconstructChunk(stripe, 5, std::move(done));
            },
            2, geom.chunkSize(), /*window=*/2);
        job.bindJournal(&tel.journal(), rig.cluster->hostId());
        job.start([&](bool) { rig.sim().stop(); });
        while (!job.finished() && rig.sim().pendingEvents() > 0)
            rig.sim().run();
        ticks.push_back(rig.sim().now().raw());
        rig.host().replaceDevice(0, 5);

        readSync(rig.sim(), rig.host(), 0, stripeData, &ok);
        EXPECT_TRUE(ok);
        ticks.push_back(rig.sim().now().raw());

        if (instrumented) {
            // Post-processing is pure: it runs after the ticks were
            // sampled and touches no simulator state.
            const auto report = telemetry::buildTimeline(
                rig.cluster->tracer().spans(), tel.journal().snapshot(),
                tel.sampler().samples(), sim::Ticks::zero(),
                rig.cluster->hostId());
            EXPECT_FALSE(report.windows.empty());
            std::ostringstream ss;
            telemetry::renderTimelineAscii(ss, report, "determinism");
            EXPECT_FALSE(ss.str().empty());
            EXPECT_GT(tel.journal().size(), 0u);
        }
        return ticks;
    };

    EXPECT_EQ(run(false), run(true));
}
