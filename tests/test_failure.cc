// DeadlineTable: arm/disarm/re-arm semantics (§5.4 explicit timeouts).

#include <gtest/gtest.h>

#include "core/failure.h"
#include "sim/simulator.h"

using draid::core::DeadlineTable;
using draid::sim::Simulator;

TEST(DeadlineTable, FiresAfterDelay)
{
    Simulator sim;
    DeadlineTable t(sim);
    bool fired = false;
    t.arm(1, 1000, [&]() { fired = true; });
    sim.runUntil(999);
    EXPECT_FALSE(fired);
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(t.expiredCount(), 1u);
    EXPECT_FALSE(t.isArmed(1));
}

TEST(DeadlineTable, DisarmPreventsFiring)
{
    Simulator sim;
    DeadlineTable t(sim);
    bool fired = false;
    t.arm(1, 1000, [&]() { fired = true; });
    t.disarm(1);
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(t.expiredCount(), 0u);
}

TEST(DeadlineTable, ReArmSupersedes)
{
    Simulator sim;
    DeadlineTable t(sim);
    int fired = 0;
    t.arm(1, 1000, [&]() { fired = 1; });
    t.arm(1, 5000, [&]() { fired = 2; });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(t.expiredCount(), 1u);
}

TEST(DeadlineTable, IndependentIds)
{
    Simulator sim;
    DeadlineTable t(sim);
    bool a = false, b = false;
    t.arm(1, 100, [&]() { a = true; });
    t.arm(2, 200, [&]() { b = true; });
    t.disarm(1);
    sim.run();
    EXPECT_FALSE(a);
    EXPECT_TRUE(b);
}

TEST(DeadlineTable, DisarmAfterFiringIsNoOp)
{
    Simulator sim;
    DeadlineTable t(sim);
    t.arm(1, 10, []() {});
    sim.run();
    t.disarm(1); // must not crash or corrupt
    EXPECT_FALSE(t.isArmed(1));
}

TEST(DeadlineTable, IdReusableAfterExpiry)
{
    Simulator sim;
    DeadlineTable t(sim);
    int fired = 0;
    t.arm(1, 10, [&]() { ++fired; });
    sim.run();
    t.arm(1, 10, [&]() { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 2);
}
