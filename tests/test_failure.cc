// DeadlineTable: arm/disarm/re-arm semantics (§5.4 explicit timeouts).
// FailureTracker: multi-failure ordering and data-loss promotion.

#include <gtest/gtest.h>

#include <vector>

#include "core/failure.h"
#include "sim/simulator.h"
#include "telemetry/event_journal.h"

using draid::core::DeadlineTable;
using draid::core::FailureTracker;
using draid::sim::Simulator;
using draid::sim::Ticks;
using draid::telemetry::EventJournal;
using draid::telemetry::EventType;

TEST(DeadlineTable, FiresAfterDelay)
{
    Simulator sim;
    DeadlineTable t(sim);
    bool fired = false;
    t.arm(1, Ticks{1000}, [&]() { fired = true; });
    sim.runUntil(Ticks{999});
    EXPECT_FALSE(fired);
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(t.expiredCount(), 1u);
    EXPECT_FALSE(t.isArmed(1));
}

TEST(DeadlineTable, DisarmPreventsFiring)
{
    Simulator sim;
    DeadlineTable t(sim);
    bool fired = false;
    t.arm(1, Ticks{1000}, [&]() { fired = true; });
    t.disarm(1);
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(t.expiredCount(), 0u);
}

TEST(DeadlineTable, ReArmSupersedes)
{
    Simulator sim;
    DeadlineTable t(sim);
    int fired = 0;
    t.arm(1, Ticks{1000}, [&]() { fired = 1; });
    t.arm(1, Ticks{5000}, [&]() { fired = 2; });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(t.expiredCount(), 1u);
}

TEST(DeadlineTable, IndependentIds)
{
    Simulator sim;
    DeadlineTable t(sim);
    bool a = false, b = false;
    t.arm(1, Ticks{100}, [&]() { a = true; });
    t.arm(2, Ticks{200}, [&]() { b = true; });
    t.disarm(1);
    sim.run();
    EXPECT_FALSE(a);
    EXPECT_TRUE(b);
}

TEST(DeadlineTable, DisarmAfterFiringIsNoOp)
{
    Simulator sim;
    DeadlineTable t(sim);
    t.arm(1, Ticks{10}, []() {});
    sim.run();
    t.disarm(1); // must not crash or corrupt
    EXPECT_FALSE(t.isArmed(1));
}

TEST(DeadlineTable, IdReusableAfterExpiry)
{
    Simulator sim;
    DeadlineTable t(sim);
    int fired = 0;
    t.arm(1, Ticks{10}, [&]() { ++fired; });
    sim.run();
    t.arm(1, Ticks{10}, [&]() { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 2);
}

// Two DriveFailed in the same tick on a RAID-5 array: the second must
// promote to data loss, and the journal must carry the exact ordered
// record of what happened.
TEST(FailureTracker, SameTickDualFailurePromotesToDataLoss)
{
    EventJournal journal;
    FailureTracker t(4, 1);
    t.bindJournal(&journal, 0);

    EXPECT_TRUE(t.recordFailure(0, Ticks{500}));
    EXPECT_FALSE(t.dataLoss());
    EXPECT_TRUE(t.recordFailure(2, Ticks{500}));
    EXPECT_TRUE(t.dataLoss());
    EXPECT_EQ(t.activeFailures(), 2u);

    const std::vector<EventJournal::Event> ev = journal.snapshot();
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_EQ(ev[0].type, EventType::kDriveFailed);
    EXPECT_EQ(ev[0].tick, 500);
    EXPECT_EQ(ev[0].a, 0u); // device 0
    EXPECT_EQ(ev[0].b, 1u); // one active failure
    EXPECT_EQ(ev[1].type, EventType::kDriveFailed);
    EXPECT_EQ(ev[1].tick, 500);
    EXPECT_EQ(ev[1].a, 2u); // device 2
    EXPECT_EQ(ev[1].b, 2u); // two active failures
    EXPECT_EQ(ev[2].type, EventType::kDataLoss);
    EXPECT_EQ(ev[2].tick, 500);
    EXPECT_EQ(ev[2].a, 2u); // the device that tipped the array over
    EXPECT_EQ(ev[2].b, 0u); // b = 0: drive-level loss
}

// A second failure while the first is still rebuilding (exposure window
// open) is the classic correlated-failure data-loss path. The journal
// must read DriveFailed / RebuildStarted / DriveFailed / DataLoss.
TEST(FailureTracker, FailureDuringRebuildPromotesToDataLoss)
{
    EventJournal journal;
    FailureTracker t(4, 1);
    t.bindJournal(&journal, 0);

    EXPECT_TRUE(t.recordFailure(1, Ticks{1000}));
    // The rebuild orchestrator (not the tracker) journals the start.
    journal.record(EventType::kRebuildStarted, 0, 1200, 24, 65536);
    EXPECT_TRUE(t.recordFailure(3, Ticks{1500}));
    EXPECT_TRUE(t.dataLoss());

    const std::vector<EventJournal::Event> ev = journal.snapshot();
    ASSERT_EQ(ev.size(), 4u);
    EXPECT_EQ(ev[0].type, EventType::kDriveFailed);
    EXPECT_EQ(ev[0].a, 1u);
    EXPECT_EQ(ev[1].type, EventType::kRebuildStarted);
    EXPECT_EQ(ev[2].type, EventType::kDriveFailed);
    EXPECT_EQ(ev[2].a, 3u);
    EXPECT_EQ(ev[3].type, EventType::kDataLoss);
    EXPECT_EQ(ev[3].tick, 1500);
    EXPECT_EQ(ev[3].a, 3u);
}

// RAID-6 redundancy: two concurrent failures survive, the third loses.
TEST(FailureTracker, RedundancyTwoSurvivesDualFailure)
{
    FailureTracker t(6, 2);
    EXPECT_TRUE(t.recordFailure(0, Ticks{10}));
    EXPECT_TRUE(t.recordFailure(1, Ticks{20}));
    EXPECT_FALSE(t.dataLoss());
    EXPECT_TRUE(t.recordFailure(2, Ticks{30}));
    EXPECT_TRUE(t.dataLoss());
}

TEST(FailureTracker, DuplicateFailureIsNoOp)
{
    EventJournal journal;
    FailureTracker t(4, 1);
    t.bindJournal(&journal, 0);
    EXPECT_TRUE(t.recordFailure(0, Ticks{100}));
    EXPECT_FALSE(t.recordFailure(0, Ticks{200}));
    EXPECT_EQ(t.activeFailures(), 1u);
    EXPECT_FALSE(t.dataLoss());
    EXPECT_EQ(journal.snapshot().size(), 1u);
}

TEST(FailureTracker, RebuiltClosesExposureWindow)
{
    FailureTracker t(4, 1);
    EXPECT_TRUE(t.recordFailure(2, Ticks{1000}));
    EXPECT_EQ(t.openExposure(Ticks{4000}).raw(), 3000);
    t.recordRebuilt(2, Ticks{5000});
    ASSERT_EQ(t.exposureWindows().size(), 1u);
    EXPECT_EQ(t.exposureWindows()[0], 4000);
    EXPECT_EQ(t.activeFailures(), 0u);
    EXPECT_EQ(t.openExposure(Ticks{9000}).raw(), 0);
    // The device is eligible to fail again after the rebuild.
    EXPECT_TRUE(t.recordFailure(2, Ticks{6000}));
    EXPECT_FALSE(t.dataLoss());
}

TEST(FailureTracker, StripeLossJournalsOncePerStripe)
{
    EventJournal journal;
    FailureTracker t(4, 1);
    t.bindJournal(&journal, 0);
    t.recordStripeLoss(7, Ticks{100});
    t.recordStripeLoss(7, Ticks{110}); // retry of the same stripe: dedup
    t.recordStripeLoss(9, Ticks{120});
    EXPECT_TRUE(t.dataLoss());
    EXPECT_EQ(t.lostStripes(), 2u);

    const std::vector<EventJournal::Event> ev = journal.snapshot();
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].type, EventType::kDataLoss);
    EXPECT_EQ(ev[0].a, 7u);
    EXPECT_EQ(ev[0].b, 1u); // b = 1: stripe-level loss
    EXPECT_EQ(ev[1].a, 9u);
}

TEST(FailureTracker, FailedDevicesSortedAscending)
{
    FailureTracker t(6, 2);
    EXPECT_TRUE(t.recordFailure(4, Ticks{10}));
    EXPECT_TRUE(t.recordFailure(1, Ticks{20}));
    const std::vector<std::uint32_t> failed = t.failedDevices();
    ASSERT_EQ(failed.size(), 2u);
    EXPECT_EQ(failed[0], 1u);
    EXPECT_EQ(failed[1], 4u);
}
