/**
 * @file
 * RAID-5 codec: single XOR parity over k data chunks.
 */

#ifndef DRAID_EC_RAID5_CODEC_H
#define DRAID_EC_RAID5_CODEC_H

#include <vector>

#include "ec/buffer.h"

namespace draid::ec {

/** Stateless RAID-5 parity generation and recovery. */
class Raid5Codec
{
  public:
    /**
     * P = D_0 ^ D_1 ^ ... ^ D_{k-1}.
     * @pre all chunks are non-empty and the same size
     */
    static Buffer computeParity(const std::vector<Buffer> &data);

    /**
     * Recover one lost chunk as the XOR of all surviving chunks (data and
     * parity alike) of the same stripe — XOR's associativity makes the
     * lost chunk's role irrelevant.
     */
    static Buffer recover(const std::vector<Buffer> &survivors);

    /**
     * Partial-parity delta for read-modify-write: old_chunk ^ new_chunk.
     * Applying the delta to the old parity yields the new parity (§5).
     */
    static Buffer delta(const Buffer &old_chunk, const Buffer &new_chunk);
};

} // namespace draid::ec

#endif // DRAID_EC_RAID5_CODEC_H
