/**
 * @file
 * Reference-counted byte buffers used throughout the data plane.
 *
 * Buffers are cheap to copy (shared ownership) so a payload can be handed
 * through the simulated network, reduced at a peer, and verified at the
 * host without deep copies — mirroring the zero-copy RDMA data path of the
 * real system.
 */

#ifndef DRAID_EC_BUFFER_H
#define DRAID_EC_BUFFER_H

#include <cstddef>
#include <cstdint>
#include <memory>

namespace draid::ec {

/** A shared, fixed-size byte buffer. */
class Buffer
{
  public:
    /** An empty (null) buffer. */
    Buffer() = default;

    /** Allocate a zero-initialized buffer of @p size bytes. */
    explicit Buffer(std::size_t size);

    /** Allocate and fill from @p src (copies @p size bytes). */
    Buffer(const std::uint8_t *src, std::size_t size);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    std::uint8_t *data() { return data_.get(); }
    const std::uint8_t *data() const { return data_.get(); }

    std::uint8_t &operator[](std::size_t i) { return data_.get()[i]; }
    std::uint8_t operator[](std::size_t i) const { return data_.get()[i]; }

    /** Deep copy. */
    Buffer clone() const;

    /**
     * A view-copy of bytes [offset, offset+len). Allocates; views are not
     * needed at simulation scale. @pre offset+len <= size()
     */
    Buffer slice(std::size_t offset, std::size_t len) const;

    /** Byte-wise equality (both empty counts as equal). */
    bool contentEquals(const Buffer &other) const;

    /** Fill the whole buffer with @p value. */
    void fill(std::uint8_t value);

    /** Fill with a deterministic pattern derived from @p seed (testing). */
    void fillPattern(std::uint64_t seed);

  private:
    std::shared_ptr<std::uint8_t[]> data_;
    std::size_t size_ = 0;
};

} // namespace draid::ec

#endif // DRAID_EC_BUFFER_H
