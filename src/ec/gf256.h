/**
 * @file
 * GF(2^8) arithmetic for RAID-6 (polynomial 0x11d, generator 2).
 *
 * Follows the construction in H. P. Anvin, "The mathematics of RAID-6":
 * the Q parity is sum_i g^i * D_i over GF(2^8) where g = 2. Tables are
 * built once at startup.
 */

#ifndef DRAID_EC_GF256_H
#define DRAID_EC_GF256_H

#include <cstddef>
#include <cstdint>

namespace draid::ec {

/** Galois field GF(2^8) with the RAID-6 polynomial x^8+x^4+x^3+x^2+1. */
class Gf256
{
  public:
    /** The singleton field instance (tables built on first use). */
    static const Gf256 &instance();

    /** Field multiply. */
    std::uint8_t
    mul(std::uint8_t a, std::uint8_t b) const
    {
        if (a == 0 || b == 0)
            return 0;
        return exp_[log_[a] + log_[b]];
    }

    /** Field divide. @pre b != 0 */
    std::uint8_t div(std::uint8_t a, std::uint8_t b) const;

    /** Multiplicative inverse. @pre a != 0 */
    std::uint8_t inv(std::uint8_t a) const;

    /** g^n for generator g = 2 (n may exceed 255; reduced mod 255). */
    std::uint8_t pow2(unsigned n) const { return exp_[n % 255]; }

    /** Discrete log base 2 of a. @pre a != 0 */
    std::uint8_t log2(std::uint8_t a) const { return log_[a]; }

    /**
     * dst[i] ^= c * src[i] — the multiply-accumulate kernel used for Q
     * parity generation and reconstruction.
     */
    void mulAccum(std::uint8_t c, const std::uint8_t *src, std::uint8_t *dst,
                  std::size_t len) const;

    /** dst[i] = c * src[i]. */
    void mulBlock(std::uint8_t c, const std::uint8_t *src, std::uint8_t *dst,
                  std::size_t len) const;

  private:
    Gf256();

    // exp_ is doubled so mul() can skip the mod-255 reduction.
    std::uint8_t exp_[512];
    std::uint8_t log_[256];
};

} // namespace draid::ec

#endif // DRAID_EC_GF256_H
