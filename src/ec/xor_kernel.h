/**
 * @file
 * XOR kernels — the RAID-5 parity primitive.
 *
 * These are the software counterparts of the ISA-L routines the paper uses
 * (§8). They operate on raw pointers in 64-bit words with 4x unrolling;
 * the simulated CPU cost of running them is modeled separately by
 * sim::CpuCore with a calibrated bytes/sec rate.
 */

#ifndef DRAID_EC_XOR_KERNEL_H
#define DRAID_EC_XOR_KERNEL_H

#include <cstddef>
#include <cstdint>

#include "ec/buffer.h"

namespace draid::ec {

/** dst[i] ^= src[i] for i in [0, len). */
void xorInto(std::uint8_t *dst, const std::uint8_t *src, std::size_t len);

/** dst[i] = a[i] ^ b[i] for i in [0, len). */
void xorBlocks(std::uint8_t *dst, const std::uint8_t *a,
               const std::uint8_t *b, std::size_t len);

/**
 * Buffer overloads. Lengths must match; asserts in debug builds.
 * @{
 */
void xorInto(Buffer &dst, const Buffer &src);
Buffer xorOf(const Buffer &a, const Buffer &b);
/** @} */

} // namespace draid::ec

#endif // DRAID_EC_XOR_KERNEL_H
