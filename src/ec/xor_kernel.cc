#include "ec/xor_kernel.h"

#include <cassert>
#include <cstring>

namespace draid::ec {

void
xorInto(std::uint8_t *dst, const std::uint8_t *src, std::size_t len)
{
    std::size_t i = 0;
    // Word-wise with 4x unrolling; memcpy keeps this free of alignment UB
    // and compiles to plain loads/stores.
    for (; i + 32 <= len; i += 32) {
        std::uint64_t d[4], s[4];
        std::memcpy(d, dst + i, 32);
        std::memcpy(s, src + i, 32);
        d[0] ^= s[0];
        d[1] ^= s[1];
        d[2] ^= s[2];
        d[3] ^= s[3];
        std::memcpy(dst + i, d, 32);
    }
    for (; i < len; ++i)
        dst[i] ^= src[i];
}

void
xorBlocks(std::uint8_t *dst, const std::uint8_t *a, const std::uint8_t *b,
          std::size_t len)
{
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
        std::uint64_t x[4], y[4];
        std::memcpy(x, a + i, 32);
        std::memcpy(y, b + i, 32);
        x[0] ^= y[0];
        x[1] ^= y[1];
        x[2] ^= y[2];
        x[3] ^= y[3];
        std::memcpy(dst + i, x, 32);
    }
    for (; i < len; ++i)
        dst[i] = a[i] ^ b[i];
}

void
xorInto(Buffer &dst, const Buffer &src)
{
    assert(dst.size() == src.size());
    xorInto(dst.data(), src.data(), dst.size());
}

Buffer
xorOf(const Buffer &a, const Buffer &b)
{
    assert(a.size() == b.size());
    Buffer out(a.size());
    xorBlocks(out.data(), a.data(), b.data(), a.size());
    return out;
}

} // namespace draid::ec
