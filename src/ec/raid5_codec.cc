#include "ec/raid5_codec.h"

#include <cassert>

#include "ec/xor_kernel.h"

namespace draid::ec {

Buffer
Raid5Codec::computeParity(const std::vector<Buffer> &data)
{
    assert(!data.empty());
    Buffer p = data[0].clone();
    for (std::size_t i = 1; i < data.size(); ++i) {
        assert(data[i].size() == p.size());
        xorInto(p, data[i]);
    }
    return p;
}

Buffer
Raid5Codec::recover(const std::vector<Buffer> &survivors)
{
    return computeParity(survivors);
}

Buffer
Raid5Codec::delta(const Buffer &old_chunk, const Buffer &new_chunk)
{
    return xorOf(old_chunk, new_chunk);
}

} // namespace draid::ec
