#include "ec/buffer.h"

#include <cassert>
#include <cstring>

namespace draid::ec {

Buffer::Buffer(std::size_t size)
    : data_(new std::uint8_t[size](), std::default_delete<std::uint8_t[]>()),
      size_(size)
{
}

Buffer::Buffer(const std::uint8_t *src, std::size_t size) : Buffer(size)
{
    std::memcpy(data_.get(), src, size);
}

Buffer
Buffer::clone() const
{
    if (empty())
        return Buffer();
    return Buffer(data_.get(), size_);
}

Buffer
Buffer::slice(std::size_t offset, std::size_t len) const
{
    assert(offset + len <= size_);
    return Buffer(data_.get() + offset, len);
}

bool
Buffer::contentEquals(const Buffer &other) const
{
    if (size_ != other.size_)
        return false;
    if (size_ == 0)
        return true;
    return std::memcmp(data_.get(), other.data_.get(), size_) == 0;
}

void
Buffer::fill(std::uint8_t value)
{
    if (size_)
        std::memset(data_.get(), value, size_);
}

void
Buffer::fillPattern(std::uint64_t seed)
{
    // Cheap splitmix-style stream; good enough to make collisions
    // vanishingly unlikely in integrity tests.
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < size_; ++i) {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        data_.get()[i] = static_cast<std::uint8_t>(z ^ (z >> 31));
    }
}

} // namespace draid::ec
