#include "ec/gf256.h"

#include <cassert>

namespace draid::ec {

const Gf256 &
Gf256::instance()
{
    static const Gf256 field;
    return field;
}

Gf256::Gf256()
{
    // Generator g = 2, polynomial 0x11d.
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
        exp_[i] = static_cast<std::uint8_t>(x);
        log_[x] = static_cast<std::uint8_t>(i);
        x <<= 1;
        if (x & 0x100)
            x ^= 0x11d;
    }
    for (unsigned i = 255; i < 512; ++i)
        exp_[i] = exp_[i - 255];
    log_[0] = 0; // Unused; mul() guards zero operands.
}

std::uint8_t
Gf256::div(std::uint8_t a, std::uint8_t b) const
{
    assert(b != 0);
    if (a == 0)
        return 0;
    return exp_[(log_[a] + 255 - log_[b]) % 255];
}

std::uint8_t
Gf256::inv(std::uint8_t a) const
{
    assert(a != 0);
    return exp_[(255 - log_[a]) % 255];
}

void
Gf256::mulAccum(std::uint8_t c, const std::uint8_t *src, std::uint8_t *dst,
                std::size_t len) const
{
    if (c == 0)
        return;
    if (c == 1) {
        for (std::size_t i = 0; i < len; ++i)
            dst[i] ^= src[i];
        return;
    }
    const unsigned lc = log_[c];
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint8_t s = src[i];
        if (s)
            dst[i] ^= exp_[lc + log_[s]];
    }
}

void
Gf256::mulBlock(std::uint8_t c, const std::uint8_t *src, std::uint8_t *dst,
                std::size_t len) const
{
    if (c == 0) {
        for (std::size_t i = 0; i < len; ++i)
            dst[i] = 0;
        return;
    }
    const unsigned lc = log_[c];
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint8_t s = src[i];
        dst[i] = s ? exp_[lc + log_[s]] : 0;
    }
}

} // namespace draid::ec
