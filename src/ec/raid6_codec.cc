#include "ec/raid6_codec.h"

#include <cassert>
#include <cstddef>

#include "ec/gf256.h"
#include "ec/xor_kernel.h"

namespace draid::ec {

void
Raid6Codec::computePQ(const std::vector<Buffer> &data, Buffer &p, Buffer &q)
{
    assert(!data.empty());
    const auto &gf = Gf256::instance();
    const std::size_t len = data[0].size();
    p = Buffer(len);
    q = Buffer(len);
    for (std::size_t i = 0; i < data.size(); ++i) {
        assert(data[i].size() == len);
        xorInto(p.data(), data[i].data(), len);
        gf.mulAccum(gf.pow2(static_cast<unsigned>(i)), data[i].data(),
                    q.data(), len);
    }
}

Buffer
Raid6Codec::computeQ(const std::vector<Buffer> &data)
{
    assert(!data.empty());
    const auto &gf = Gf256::instance();
    const std::size_t len = data[0].size();
    Buffer q(len);
    for (std::size_t i = 0; i < data.size(); ++i) {
        gf.mulAccum(gf.pow2(static_cast<unsigned>(i)), data[i].data(),
                    q.data(), len);
    }
    return q;
}

void
Raid6Codec::applyQDelta(Buffer &q, const Buffer &delta, std::size_t idx)
{
    assert(q.size() == delta.size());
    const auto &gf = Gf256::instance();
    gf.mulAccum(gf.pow2(static_cast<unsigned>(idx)), delta.data(), q.data(),
                q.size());
}

Buffer
Raid6Codec::recoverDataWithP(const std::vector<Buffer> &data, const Buffer &p,
                             std::size_t missing)
{
    Buffer out = p.clone();
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (i == missing)
            continue;
        assert(!data[i].empty());
        xorInto(out, data[i]);
    }
    return out;
}

Buffer
Raid6Codec::recoverDataWithQ(const std::vector<Buffer> &data, const Buffer &q,
                             std::size_t missing)
{
    const auto &gf = Gf256::instance();
    // Qx = Q computed without the missing chunk; then
    // D_missing = (Q ^ Qx) * g^{-missing}.
    Buffer acc = q.clone();
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (i == missing)
            continue;
        assert(!data[i].empty());
        gf.mulAccum(gf.pow2(static_cast<unsigned>(i)), data[i].data(),
                    acc.data(), acc.size());
    }
    const std::uint8_t ginv =
        gf.inv(gf.pow2(static_cast<unsigned>(missing)));
    Buffer out(acc.size());
    gf.mulBlock(ginv, acc.data(), out.data(), out.size());
    return out;
}

void
Raid6Codec::recoverTwoData(std::vector<Buffer> &data, const Buffer &p,
                           const Buffer &q, std::size_t x, std::size_t y)
{
    assert(x < y && y < data.size());
    const auto &gf = Gf256::instance();
    const std::size_t len = p.size();

    // Pxy/Qxy: parities computed from the survivors only.
    Buffer pxy(len), qxy(len);
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (i == x || i == y)
            continue;
        assert(!data[i].empty());
        xorInto(pxy.data(), data[i].data(), len);
        gf.mulAccum(gf.pow2(static_cast<unsigned>(i)), data[i].data(),
                    qxy.data(), len);
    }

    // From hpa's paper:
    //   A = g^{y-x} / (g^{y-x} ^ 1)
    //   B = g^{-x}  / (g^{y-x} ^ 1)
    //   Dx = A*(P ^ Pxy) ^ B*(Q ^ Qxy);  Dy = (P ^ Pxy) ^ Dx
    const std::uint8_t gyx = gf.pow2(static_cast<unsigned>(y - x));
    const std::uint8_t denom = static_cast<std::uint8_t>(gyx ^ 0x01);
    const std::uint8_t a = gf.div(gyx, denom);
    const std::uint8_t b =
        gf.div(gf.inv(gf.pow2(static_cast<unsigned>(x))), denom);

    Buffer pd = xorOf(p, pxy);
    Buffer qd = xorOf(q, qxy);

    Buffer dx(len);
    gf.mulBlock(a, pd.data(), dx.data(), len);
    gf.mulAccum(b, qd.data(), dx.data(), len);

    Buffer dy = xorOf(pd, dx);

    data[x] = dx;
    data[y] = dy;
}

bool
Raid6Codec::recover(std::vector<Buffer> &data, Buffer &p, Buffer &q)
{
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (data[i].empty())
            missing.push_back(i);
    }
    const bool p_missing = p.empty();
    const bool q_missing = q.empty();
    const std::size_t total =
        missing.size() + (p_missing ? 1 : 0) + (q_missing ? 1 : 0);
    if (total > 2)
        return false;
    if (total == 0)
        return true;

    if (missing.size() == 2) {
        recoverTwoData(data, p, q, missing[0], missing[1]);
        return true;
    }
    if (missing.size() == 1) {
        if (!p_missing) {
            data[missing[0]] = recoverDataWithP(data, p, missing[0]);
        } else {
            data[missing[0]] = recoverDataWithQ(data, q, missing[0]);
        }
    }
    // All data present now; recompute whichever parity is absent.
    if (p_missing || q_missing) {
        Buffer np, nq;
        computePQ(data, np, nq);
        if (p_missing)
            p = np;
        if (q_missing)
            q = nq;
    }
    return true;
}

} // namespace draid::ec
