/**
 * @file
 * RAID-6 codec: P (XOR) + Q (Reed-Solomon over GF(2^8), generator 2),
 * following H. P. Anvin's "The mathematics of RAID-6".
 *
 * Q = sum_i g^i * D_i. Recovery covers every one- and two-erasure case:
 * {D}, {P}, {Q}, {D,P}, {D,Q}, {D,D}, {P,Q}.
 */

#ifndef DRAID_EC_RAID6_CODEC_H
#define DRAID_EC_RAID6_CODEC_H

#include <cstddef>
#include <vector>

#include "ec/buffer.h"

namespace draid::ec {

/** Stateless RAID-6 dual-parity generation and recovery. */
class Raid6Codec
{
  public:
    /** Compute both parities over the ordered data chunks. */
    static void computePQ(const std::vector<Buffer> &data, Buffer &p,
                          Buffer &q);

    /** Compute only Q (used when P is updated incrementally). */
    static Buffer computeQ(const std::vector<Buffer> &data);

    /**
     * RMW update of Q given a data delta: Q' = Q ^ g^idx * (old ^ new).
     * @param q      parity to update in place
     * @param delta  old_chunk ^ new_chunk
     * @param idx    position of the chunk within the stripe's data chunks
     */
    static void applyQDelta(Buffer &q, const Buffer &delta, std::size_t idx);

    /**
     * Recover one missing data chunk using P (the RAID-5 path).
     * @param data     stripe data chunks; data[missing] may be empty
     * @param p        the P parity
     * @param missing  index of the lost chunk
     */
    static Buffer recoverDataWithP(const std::vector<Buffer> &data,
                                   const Buffer &p, std::size_t missing);

    /** Recover one missing data chunk using Q (when P is also lost). */
    static Buffer recoverDataWithQ(const std::vector<Buffer> &data,
                                   const Buffer &q, std::size_t missing);

    /**
     * Recover two missing data chunks using both parities.
     * @param data  stripe data chunks; entries x and y may be empty
     * @param x, y  indices of the lost chunks, x < y
     * @return pair written back into data[x], data[y]
     */
    static void recoverTwoData(std::vector<Buffer> &data, const Buffer &p,
                               const Buffer &q, std::size_t x, std::size_t y);

    /**
     * General entry point: given the surviving subset, fill in every
     * missing piece. At most two of {data chunks, P, Q} may be missing.
     *
     * @param data        data chunks; missing entries are empty Buffers and
     *                    are filled on return
     * @param p, q        parities; empty ones are recomputed on return
     * @return false if more than two pieces are missing (unrecoverable)
     */
    static bool recover(std::vector<Buffer> &data, Buffer &p, Buffer &q);
};

} // namespace draid::ec

#endif // DRAID_EC_RAID6_CODEC_H
