/**
 * @file
 * NIC model: one full-duplex port = two independent bandwidth pipes.
 *
 * The paper's central bottleneck is NIC bandwidth (§2.3): a 100 Gbps RNIC
 * yields ~92 Gbps goodput per direction. Modeling tx and rx as separate
 * pipes captures full-duplex behaviour — a read-modify-write that moves 2x
 * the user bytes *outbound* halves write throughput even though the inbound
 * direction is idle.
 */

#ifndef DRAID_NET_NIC_H
#define DRAID_NET_NIC_H

#include "sim/pipe.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace draid::net {

/** A full-duplex NIC port. */
class Nic
{
  public:
    /**
     * @param sim             owning simulator
     * @param goodput         usable bandwidth per direction, bytes/sec
     * @param per_msg         fixed per-message port occupancy (DMA setup,
     *                        doorbells); bounds small-message rate
     */
    Nic(sim::Simulator &sim, double goodput, sim::Ticks per_msg);

    sim::Pipe &tx() { return tx_; }
    sim::Pipe &rx() { return rx_; }
    const sim::Pipe &tx() const { return tx_; }
    const sim::Pipe &rx() const { return rx_; }

    double goodput() const { return goodput_; }

    /** Retarget both directions (used to model NIC swaps in tests). */
    void setGoodput(double goodput);

  private:
    double goodput_;
    sim::Pipe tx_;
    sim::Pipe rx_;
};

} // namespace draid::net

#endif // DRAID_NET_NIC_H
