/**
 * @file
 * The datacenter fabric: a non-blocking switch connecting every node's NIC,
 * with RDMA-style message and one-sided transfer primitives.
 *
 * Transfers occupy the sender's tx pipe and the receiver's rx pipe in
 * parallel (cut-through), so end-to-end time is one serialization plus the
 * fabric's propagation delay, while both ports are charged the bandwidth.
 *
 * Command capsules travel as Messages: only the capsule's wire size is
 * charged; bulk payloads are always moved by explicit rdmaRead/rdmaWrite
 * calls (matching the NVMe-oF pull model and dRAID's peer-pull reduce).
 *
 * The fabric is also the failure-injection point: nodes can be taken down
 * (messages and transfers silently vanish, §5.4 transient failures) and
 * per-node extra delay can be injected (network jitter).
 */

#ifndef DRAID_NET_FABRIC_H
#define DRAID_NET_FABRIC_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ec/buffer.h"
#include "net/nic.h"
#include "proto/capsule.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace draid::telemetry {
class Tracer;
}

namespace draid::net {

/** A capsule in flight, with an optional zero-copy payload handle. */
struct Message
{
    sim::NodeId from = sim::kInvalidNode;
    sim::NodeId to = sim::kInvalidNode;
    proto::Capsule capsule;

    /**
     * Payload handle. Handles ride with the capsule free of charge (they
     * stand for an RDMA-registered remote address); the *bytes* are only
     * charged when a peer pulls them with rdmaRead, exactly like the real
     * one-sided protocol.
     */
    ec::Buffer payload;
};

/** Receives messages addressed to a node. */
class Endpoint
{
  public:
    virtual ~Endpoint() = default;
    virtual void onMessage(const Message &msg) = 0;
};

/** The switch fabric. */
class Fabric
{
  public:
    /**
     * @param sim          owning simulator
     * @param propagation  one-way wire+switch delay
     */
    Fabric(sim::Simulator &sim, sim::Ticks propagation);

    /** Register a node. The NIC and endpoint must outlive the fabric. */
    void attach(sim::NodeId node, Nic &nic, Endpoint *endpoint);

    /**
     * Install or replace a node's message handler. Used by the storage
     * systems, which bind their controllers to already-attached nodes.
     */
    void setEndpoint(sim::NodeId node, Endpoint *endpoint);

    /** Send a command capsule. Silently dropped if either node is down. */
    void send(Message msg);

    /**
     * One-sided RDMA READ: @p initiator pulls @p bytes from @p target.
     * @p done fires when the data has fully arrived at the initiator.
     * Never fires if either node is down. @p trace tags the NIC spans with
     * a per-op trace id (0 = untraced).
     */
    void rdmaRead(sim::NodeId initiator, sim::NodeId target,
                  std::uint64_t bytes, sim::EventFn done,
                  std::uint64_t trace = 0);

    /**
     * One-sided RDMA WRITE: @p initiator pushes @p bytes to @p target.
     * @p done fires when the data has fully arrived at the target.
     */
    void rdmaWrite(sim::NodeId initiator, sim::NodeId target,
                   std::uint64_t bytes, sim::EventFn done,
                   std::uint64_t trace = 0);

    /** Take a node off the network / bring it back. */
    void setNodeDown(sim::NodeId node, bool down);

    bool isDown(sim::NodeId node) const;

    /** Add fixed extra delivery delay for traffic touching @p node. */
    void setExtraDelay(sim::NodeId node, sim::Ticks delay);

    /**
     * Attach a span sink: traced transfers record their propagation window
     * (the wire+switch delay after the last byte leaves the ports) as a
     * "fabric" lane span on the source node, so the critical-path analyzer
     * can attribute fabric time separately from NIC serialization.
     * Observe-only, like every other trace binding.
     */
    void bindTrace(telemetry::Tracer *tracer);

    Nic &nicOf(sim::NodeId node);

    /** Total messages delivered (tests). */
    std::uint64_t messagesDelivered() const { return delivered_; }

    /** Total messages dropped because a node was down. */
    std::uint64_t messagesDropped() const { return dropped_; }

    sim::Simulator &simulator() { return sim_; }

  private:
    struct Port
    {
        Nic *nic = nullptr;
        Endpoint *endpoint = nullptr;
        sim::Ticks extraDelay;
    };

    /** Parallel-occupancy transfer src.tx || dst.rx, then done. */
    void transferPair(sim::NodeId src, sim::NodeId dst, std::uint64_t bytes,
                      std::uint64_t trace, sim::EventFn done);

    sim::Ticks delayFor(sim::NodeId a, sim::NodeId b) const;

    sim::Simulator &sim_;
    sim::Ticks propagation_;
    telemetry::Tracer *tracer_ = nullptr;
    // draid-lint: cap(one port per registered node; fixed topology)
    std::unordered_map<sim::NodeId, Port> ports_;
    // draid-lint: cap(subset of registered nodes; fixed topology)
    std::unordered_set<sim::NodeId> down_;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace draid::net

#endif // DRAID_NET_FABRIC_H
