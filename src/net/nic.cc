#include "net/nic.h"

namespace draid::net {

Nic::Nic(sim::Simulator &sim, double goodput, sim::Tick per_msg)
    : goodput_(goodput),
      tx_(sim, goodput, /*latency=*/0, per_msg),
      rx_(sim, goodput, /*latency=*/0, per_msg)
{
}

void
Nic::setGoodput(double goodput)
{
    goodput_ = goodput;
    tx_.setRate(goodput);
    rx_.setRate(goodput);
}

} // namespace draid::net
