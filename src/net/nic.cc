#include "net/nic.h"

namespace draid::net {

Nic::Nic(sim::Simulator &sim, double goodput, sim::Ticks per_msg)
    : goodput_(goodput),
      tx_(sim, goodput, sim::Ticks::zero(), per_msg),
      rx_(sim, goodput, sim::Ticks::zero(), per_msg)
{
}

void
Nic::setGoodput(double goodput)
{
    goodput_ = goodput;
    tx_.setRate(goodput);
    rx_.setRate(goodput);
}

} // namespace draid::net
