/**
 * @file
 * RDMA reliable-connection (RC) queue pair abstraction.
 *
 * dRAID connects the host with every storage server, and storage servers
 * with each other in pairs, over RDMA RC (§3). One QP is created per
 * (local, remote) destination and shared by all bdevs on the server
 * (§5.5 network sharing). The QP tracks per-connection traffic counters,
 * which the Table-1 overhead bench and the bandwidth-aware reconstruction
 * planner consume.
 */

#ifndef DRAID_NET_RDMA_H
#define DRAID_NET_RDMA_H

#include <cstdint>

#include "net/fabric.h"

namespace draid::net {

/** One reliable connection between two nodes. */
class RdmaQp
{
  public:
    RdmaQp(Fabric &fabric, sim::NodeId local, sim::NodeId remote)
        : fabric_(fabric), local_(local), remote_(remote)
    {
    }

    sim::NodeId local() const { return local_; }
    sim::NodeId remote() const { return remote_; }

    /** Send a command capsule (two-sided). */
    void
    sendCapsule(proto::Capsule capsule, ec::Buffer payload = {})
    {
        ++capsulesSent_;
        fabric_.send(Message{local_, remote_, std::move(capsule),
                             std::move(payload)});
    }

    /** One-sided READ: pull @p bytes from the remote node. */
    void
    read(std::uint64_t bytes, sim::EventFn done)
    {
        bytesRead_ += bytes;
        fabric_.rdmaRead(local_, remote_, bytes, std::move(done));
    }

    /** One-sided WRITE: push @p bytes to the remote node. */
    void
    write(std::uint64_t bytes, sim::EventFn done)
    {
        bytesWritten_ += bytes;
        fabric_.rdmaWrite(local_, remote_, bytes, std::move(done));
    }

    std::uint64_t capsulesSent() const { return capsulesSent_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    Fabric &fabric_;
    sim::NodeId local_;
    sim::NodeId remote_;
    std::uint64_t capsulesSent_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace draid::net

#endif // DRAID_NET_RDMA_H
