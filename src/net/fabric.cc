#include "net/fabric.h"

#include <cassert>
#include <memory>
#include <utility>

#include "telemetry/trace.h"

namespace draid::net {

Fabric::Fabric(sim::Simulator &sim, sim::Ticks propagation)
    : sim_(sim), propagation_(propagation)
{
}

void
Fabric::attach(sim::NodeId node, Nic &nic, Endpoint *endpoint)
{
    assert(!ports_.contains(node));
    ports_[node] = Port{&nic, endpoint, sim::Ticks::zero()};
}

void
Fabric::setEndpoint(sim::NodeId node, Endpoint *endpoint)
{
    ports_.at(node).endpoint = endpoint;
}

sim::Ticks
Fabric::delayFor(sim::NodeId a, sim::NodeId b) const
{
    sim::Ticks d = propagation_;
    auto ia = ports_.find(a);
    if (ia != ports_.end())
        d += ia->second.extraDelay;
    auto ib = ports_.find(b);
    if (ib != ports_.end())
        d += ib->second.extraDelay;
    return d;
}

void
Fabric::transferPair(sim::NodeId src, sim::NodeId dst, std::uint64_t bytes,
                     std::uint64_t trace, sim::EventFn done)
{
    auto &sp = ports_.at(src);
    auto &dp = ports_.at(dst);
    const sim::Ticks delay = delayFor(src, dst);

    // Both port directions are charged the full transfer; completion waits
    // for the later of the two (cut-through forwarding).
    auto remaining = std::make_shared<int>(2);
    auto joint = [this, remaining, delay, src, trace,
                  done = std::move(done)]() mutable {
        if (--*remaining != 0)
            return;
        if (trace != 0 && tracer_ && tracer_->active()) {
            telemetry::TraceSpan span;
            span.traceId = trace;
            span.node = src;
            span.lane = "fabric";
            span.name = "fabric.prop";
            span.start = sim_.now().raw();
            span.end = (sim_.now() + delay).raw();
            tracer_->recordSpan(std::move(span));
        }
        sim_.schedule(delay, "fabric.prop", std::move(done));
    };
    sp.nic->tx().transfer(bytes, trace, joint);
    dp.nic->rx().transfer(bytes, trace, joint);
}

void
Fabric::send(Message msg)
{
    assert(ports_.contains(msg.from) && ports_.contains(msg.to));
    if (down_.contains(msg.from) || down_.contains(msg.to)) {
        ++dropped_;
        return;
    }
    const std::uint32_t wire = msg.capsule.wireSize();
    const sim::NodeId to = msg.to;
    transferPair(msg.from, to, wire, msg.capsule.traceId,
                 [this, to, msg = std::move(msg)]() {
                     // The destination may have gone down in flight.
                     if (down_.contains(to)) {
                         ++dropped_;
                         return;
                     }
                     ++delivered_;
                     auto *ep = ports_.at(to).endpoint;
                     if (ep)
                         ep->onMessage(msg);
                 });
}

void
Fabric::rdmaRead(sim::NodeId initiator, sim::NodeId target,
                 std::uint64_t bytes, sim::EventFn done, std::uint64_t trace)
{
    if (down_.contains(initiator) || down_.contains(target)) {
        ++dropped_;
        return;
    }
    // Data flows target -> initiator.
    transferPair(target, initiator, bytes, trace, std::move(done));
}

void
Fabric::rdmaWrite(sim::NodeId initiator, sim::NodeId target,
                  std::uint64_t bytes, sim::EventFn done, std::uint64_t trace)
{
    if (down_.contains(initiator) || down_.contains(target)) {
        ++dropped_;
        return;
    }
    transferPair(initiator, target, bytes, trace, std::move(done));
}

void
Fabric::setNodeDown(sim::NodeId node, bool down)
{
    if (down)
        down_.insert(node);
    else
        down_.erase(node);
}

bool
Fabric::isDown(sim::NodeId node) const
{
    return down_.contains(node);
}

void
Fabric::setExtraDelay(sim::NodeId node, sim::Ticks delay)
{
    ports_.at(node).extraDelay = delay;
}

void
Fabric::bindTrace(telemetry::Tracer *tracer)
{
    tracer_ = tracer;
}

Nic &
Fabric::nicOf(sim::NodeId node)
{
    return *ports_.at(node).nic;
}

} // namespace draid::net
