// RdmaQp is header-only; this translation unit exists so the build system
// compiles the header standalone (include-hygiene check).
#include "net/rdma.h"
