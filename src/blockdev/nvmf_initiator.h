/**
 * @file
 * Host-side NVMe-oF initiator: issues standard Read/Write commands to
 * remote targets and matches their completions, with per-operation
 * deadlines (§5.4 explicit timeouts).
 *
 * The initiator is not a fabric endpoint itself — the host controller
 * that owns it receives all host-bound messages and offers completions via
 * tryComplete(), so one host node can host a RAID controller and an
 * initiator side by side.
 */

#ifndef DRAID_BLOCKDEV_NVMF_INITIATOR_H
#define DRAID_BLOCKDEV_NVMF_INITIATOR_H

#include <cstdint>
#include <unordered_map>

#include "blockdev/block_device.h"
#include "cluster/cluster.h"
#include "net/fabric.h"

namespace draid::blockdev {

/**
 * Allocates operation identifiers unique across one host's components.
 * Wire command ids are composed as (operation id << 8 | sub-index); the
 * initiator reserves sub-index 0xff, dRAID sub-commands use the rest.
 */
struct CommandIdAllocator
{
    std::uint64_t next = 1;

    std::uint64_t alloc() { return next++; }
};

/** Host-side initiator multiplexing all remote targets. */
class NvmfInitiator
{
  public:
    NvmfInitiator(cluster::Cluster &cluster, CommandIdAllocator &ids);

    /**
     * Read [offset, offset+length) of remote target @p target. @p trace
     * tags the command capsule (and so every downstream span) with a
     * telemetry trace id; 0 = untraced.
     */
    void readRemote(std::uint32_t target, std::uint64_t offset,
                    std::uint32_t length, ReadCallback cb,
                    std::uint64_t trace = 0);

    /** Write to remote target @p target. */
    void writeRemote(std::uint32_t target, std::uint64_t offset,
                     ec::Buffer data, WriteCallback cb,
                     std::uint64_t trace = 0);

    /**
     * Offer a host-bound message. Returns true if it completed one of this
     * initiator's pending commands (including late completions of already
     * timed-out commands, which are swallowed).
     */
    bool tryComplete(const net::Message &msg);

    /** Pending commands (tests). */
    std::size_t pendingOps() const { return pending_.size(); }

    std::uint64_t timeoutsFired() const { return timeouts_; }

  private:
    struct Pending
    {
        bool isRead;
        ReadCallback readCb;
        WriteCallback writeCb;
    };

    void arm(std::uint64_t id, Pending p);
    void onTimeout(std::uint64_t id);

    cluster::Cluster &cluster_;
    CommandIdAllocator &ids_;
    // draid-lint: cap(in-flight commands; bounded by the host queue depth)
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::uint64_t timeouts_ = 0;
};

} // namespace draid::blockdev

#endif // DRAID_BLOCKDEV_NVMF_INITIATOR_H
