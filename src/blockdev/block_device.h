/**
 * @file
 * The asynchronous block-device interface every storage stack in this
 * repository implements: the raw SSD model, the NVMe-oF initiator view of
 * a remote drive, and the three RAID virtual block devices (dRAID, SPDK
 * baseline, Linux MD baseline).
 *
 * The interface mirrors the SPDK bdev layer: submit + completion callback,
 * no blocking, no locks exposed to callers.
 */

#ifndef DRAID_BLOCKDEV_BLOCK_DEVICE_H
#define DRAID_BLOCKDEV_BLOCK_DEVICE_H

#include <cstdint>
#include <functional>

#include "ec/buffer.h"

namespace draid::blockdev {

/** Completion status of a block I/O. */
enum class IoStatus
{
    kOk,
    kError,
    kTimedOut,
};

/** Completion callback for writes. */
using WriteCallback = std::function<void(IoStatus)>;

/** Completion callback for reads; the buffer holds `length` bytes. */
using ReadCallback = std::function<void(IoStatus, ec::Buffer)>;

/** An asynchronous virtual block device. */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    /** Usable capacity in bytes. */
    virtual std::uint64_t sizeBytes() const = 0;

    /** Read [offset, offset+length). */
    virtual void read(std::uint64_t offset, std::uint32_t length,
                      ReadCallback cb) = 0;

    /** Write data.size() bytes at @p offset. */
    virtual void write(std::uint64_t offset, ec::Buffer data,
                       WriteCallback cb) = 0;
};

} // namespace draid::blockdev

#endif // DRAID_BLOCKDEV_BLOCK_DEVICE_H
