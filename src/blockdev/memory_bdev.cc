#include "blockdev/memory_bdev.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace draid::blockdev {

MemoryBdev::MemoryBdev(std::uint64_t capacity) : capacity_(capacity) {}

void
MemoryBdev::read(std::uint64_t offset, std::uint32_t length, ReadCallback cb)
{
    cb(IoStatus::kOk, readSync(offset, length));
}

void
MemoryBdev::write(std::uint64_t offset, ec::Buffer data, WriteCallback cb)
{
    writeSync(offset, data);
    cb(IoStatus::kOk);
}

ec::Buffer
MemoryBdev::readSync(std::uint64_t offset, std::uint32_t length) const
{
    assert(offset + length <= capacity_);
    ec::Buffer out(length);
    std::uint64_t pos = offset;
    std::uint32_t copied = 0;
    while (copied < length) {
        const std::uint64_t page = pos / kPageSize;
        const std::uint32_t in_page = static_cast<std::uint32_t>(
            pos % kPageSize);
        const std::uint32_t take =
            std::min(length - copied, kPageSize - in_page);
        auto it = pages_.find(page);
        if (it != pages_.end())
            std::memcpy(out.data() + copied, it->second.data() + in_page,
                        take);
        // else: leave zeros (fresh-drive semantics).
        pos += take;
        copied += take;
    }
    return out;
}

void
MemoryBdev::writeSync(std::uint64_t offset, const ec::Buffer &data)
{
    assert(offset + data.size() <= capacity_);
    std::uint64_t pos = offset;
    std::size_t copied = 0;
    while (copied < data.size()) {
        const std::uint64_t page = pos / kPageSize;
        const std::uint32_t in_page = static_cast<std::uint32_t>(
            pos % kPageSize);
        const std::uint32_t take = std::min<std::uint32_t>(
            static_cast<std::uint32_t>(data.size() - copied),
            kPageSize - in_page);
        auto &storage = pages_[page];
        if (storage.empty())
            storage.assign(kPageSize, 0);
        std::memcpy(storage.data() + in_page, data.data() + copied, take);
        pos += take;
        copied += take;
    }
}

} // namespace draid::blockdev
