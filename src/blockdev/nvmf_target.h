/**
 * @file
 * Plain NVMe-oF target: serves standard Read/Write capsules against the
 * node's local SSD. This is the storage-server side of both baselines
 * (Linux MD and the SPDK RAID POC access remote drives through exactly
 * this path); dRAID's server-side controller extends it with the four
 * dRAID opcodes.
 *
 * Wire behaviour follows the RDMA transport binding: a write pulls its
 * payload from the initiator with RDMA READ; a read pushes data with RDMA
 * WRITE and then sends a response capsule.
 */

#ifndef DRAID_BLOCKDEV_NVMF_TARGET_H
#define DRAID_BLOCKDEV_NVMF_TARGET_H

#include <cstdint>

#include "cluster/cluster.h"
#include "net/fabric.h"

namespace draid::blockdev {

/** NVMe-oF target bound to one storage server. */
class NvmfTarget : public net::Endpoint
{
  public:
    /**
     * Binds to target @p index of @p cluster and installs itself as the
     * node's fabric endpoint.
     */
    NvmfTarget(cluster::Cluster &cluster, std::uint32_t index);

    void onMessage(const net::Message &msg) override;

  protected:
    /** Standard read handling; shared with the dRAID subclass. */
    void handleRead(const net::Message &msg);

    /** Standard write handling; shared with the dRAID subclass. */
    void handleWrite(const net::Message &msg);

    /**
     * Send a completion capsule for @p cmd back to @p to. @p trace tags
     * the completion with the originating op's telemetry trace id.
     */
    void sendCompletion(sim::NodeId to, std::uint64_t command_id,
                        proto::Status status, ec::Buffer payload = {},
                        std::uint64_t trace = 0);

    cluster::Cluster &cluster_;
    std::uint32_t index_;
    cluster::Node &node_;
};

} // namespace draid::blockdev

#endif // DRAID_BLOCKDEV_NVMF_TARGET_H
