#include "blockdev/nvmf_target.h"

#include <utility>

namespace draid::blockdev {

NvmfTarget::NvmfTarget(cluster::Cluster &cluster, std::uint32_t index)
    : cluster_(cluster), index_(index), node_(cluster.target(index))
{
    cluster_.fabric().setEndpoint(node_.id(), this);
}

void
NvmfTarget::onMessage(const net::Message &msg)
{
    switch (msg.capsule.opcode) {
      case proto::Opcode::kRead:
        handleRead(msg);
        break;
      case proto::Opcode::kWrite:
        handleWrite(msg);
        break;
      default:
        // A plain NVMe-oF target does not understand dRAID opcodes.
        sendCompletion(msg.from, msg.capsule.commandId,
                       proto::Status::kFailed);
        break;
    }
}

void
NvmfTarget::handleRead(const net::Message &msg)
{
    const auto cmd = msg.capsule;
    const auto from = msg.from;
    node_.cpu().execute(cluster_.config().serverCmdCost, cmd.traceId,
                        "srv.cmd", [this, cmd, from]() {
        node_.ssd().read(cmd.offset, cmd.length, cmd.traceId,
                         [this, cmd, from](IoStatus st, ec::Buffer data) {
            if (st != IoStatus::kOk) {
                sendCompletion(from, cmd.commandId, proto::Status::kFailed,
                               {}, cmd.traceId);
                return;
            }
            // Push the data, then the response capsule (RDMA transport
            // binding order).
            cluster_.fabric().rdmaWrite(node_.id(), from, data.size(),
                                        [this, cmd, from,
                                         data = std::move(data)]() {
                sendCompletion(from, cmd.commandId, proto::Status::kSuccess,
                               data, cmd.traceId);
            }, cmd.traceId);
        });
    });
}

void
NvmfTarget::handleWrite(const net::Message &msg)
{
    const auto cmd = msg.capsule;
    const auto from = msg.from;
    auto payload = msg.payload;
    node_.cpu().execute(cluster_.config().serverCmdCost, cmd.traceId,
                        "srv.cmd",
                        [this, cmd, from, payload = std::move(payload)]() {
        // Pull the payload from the initiator.
        cluster_.fabric().rdmaRead(node_.id(), from, cmd.length,
                                   [this, cmd, from,
                                    payload = std::move(payload)]() {
            node_.ssd().write(cmd.offset, payload, cmd.traceId,
                              [this, cmd, from](IoStatus st) {
                sendCompletion(from, cmd.commandId,
                               st == IoStatus::kOk ? proto::Status::kSuccess
                                                   : proto::Status::kFailed,
                               {}, cmd.traceId);
            });
        }, cmd.traceId);
    });
}

void
NvmfTarget::sendCompletion(sim::NodeId to, std::uint64_t command_id,
                           proto::Status status, ec::Buffer payload,
                           std::uint64_t trace)
{
    proto::Capsule c;
    c.opcode = proto::Opcode::kCompletion;
    c.commandId = command_id;
    c.status = status;
    c.traceId = trace;
    cluster_.fabric().send(net::Message{node_.id(), to, std::move(c),
                                        std::move(payload)});
}

} // namespace draid::blockdev
