/**
 * @file
 * In-memory backing store with sparse page allocation.
 *
 * Holds the *actual bytes* of every simulated drive so RAID semantics are
 * verifiable bit-for-bit. Untouched ranges read as zeros, like a fresh
 * drive. Completion is immediate (timing belongs to nvme::Ssd, which wraps
 * this store).
 */

#ifndef DRAID_BLOCKDEV_MEMORY_BDEV_H
#define DRAID_BLOCKDEV_MEMORY_BDEV_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "ec/buffer.h"

namespace draid::blockdev {

/** Sparse in-memory block store. */
class MemoryBdev : public BlockDevice
{
  public:
    explicit MemoryBdev(std::uint64_t capacity);

    std::uint64_t sizeBytes() const override { return capacity_; }

    void read(std::uint64_t offset, std::uint32_t length,
              ReadCallback cb) override;

    void write(std::uint64_t offset, ec::Buffer data,
               WriteCallback cb) override;

    /** Synchronous accessors used by tests and the timing wrapper. */
    ec::Buffer readSync(std::uint64_t offset, std::uint32_t length) const;
    void writeSync(std::uint64_t offset, const ec::Buffer &data);

    /** Number of pages materialized so far. */
    std::size_t pagesAllocated() const { return pages_.size(); }

  private:
    static constexpr std::uint32_t kPageSize = 256 * 1024;

    std::uint64_t capacity_;
    // draid-lint: cap(capacity_ / kPageSize; one page per touched region)
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
};

} // namespace draid::blockdev

#endif // DRAID_BLOCKDEV_MEMORY_BDEV_H
