#include "blockdev/nvmf_initiator.h"

#include <utility>

#include "telemetry/interference.h"

namespace draid::blockdev {

NvmfInitiator::NvmfInitiator(cluster::Cluster &cluster,
                             CommandIdAllocator &ids)
    : cluster_(cluster), ids_(ids)
{
}

void
NvmfInitiator::readRemote(std::uint32_t target, std::uint64_t offset,
                          std::uint32_t length, ReadCallback cb,
                          std::uint64_t trace)
{
    const std::uint64_t id = (ids_.alloc() << 8) | 0xff;
    proto::Capsule c;
    c.opcode = proto::Opcode::kRead;
    c.commandId = id;
    c.nsid = target;
    c.offset = offset;
    c.length = length;
    c.traceId = trace;
    c.tenant = cluster_.telemetry().contention().tenantOf(trace);

    arm(id, Pending{true, std::move(cb), {}});
    auto &host = cluster_.host();
    host.cpu().execute(cluster_.config().hostCmdCost, trace, "host.cmd",
                       [this, c, target]() {
        cluster_.fabric().send(net::Message{
            cluster_.hostId(), cluster_.targetNodeId(target), c, {}});
    });
}

void
NvmfInitiator::writeRemote(std::uint32_t target, std::uint64_t offset,
                           ec::Buffer data, WriteCallback cb,
                           std::uint64_t trace)
{
    const std::uint64_t id = (ids_.alloc() << 8) | 0xff;
    proto::Capsule c;
    c.opcode = proto::Opcode::kWrite;
    c.commandId = id;
    c.nsid = target;
    c.offset = offset;
    c.length = static_cast<std::uint32_t>(data.size());
    c.traceId = trace;
    c.tenant = cluster_.telemetry().contention().tenantOf(trace);

    arm(id, Pending{false, {}, std::move(cb)});
    auto &host = cluster_.host();
    host.cpu().execute(cluster_.config().hostCmdCost, trace, "host.cmd",
                       [this, c, target, data = std::move(data)]() {
        cluster_.fabric().send(net::Message{cluster_.hostId(),
                                            cluster_.targetNodeId(target), c,
                                            data});
    });
}

bool
NvmfInitiator::tryComplete(const net::Message &msg)
{
    if (msg.capsule.opcode != proto::Opcode::kCompletion)
        return false;
    auto it = pending_.find(msg.capsule.commandId);
    if (it == pending_.end())
        return false;

    Pending p = std::move(it->second);
    pending_.erase(it);

    const IoStatus st = msg.capsule.status == proto::Status::kSuccess
                            ? IoStatus::kOk
                            : IoStatus::kError;
    auto payload = msg.payload;
    cluster_.host().cpu().execute(
        cluster_.config().hostCompletionCost, msg.capsule.traceId,
        "host.completion",
        [p = std::move(p), st, payload = std::move(payload)]() {
            if (p.isRead)
                p.readCb(st, payload);
            else
                p.writeCb(st);
        });
    return true;
}

void
NvmfInitiator::arm(std::uint64_t id, Pending p)
{
    pending_.emplace(id, std::move(p));
    cluster_.sim().schedule(cluster_.config().opTimeout, "nvmf.timeout",
                            [this, id]() { onTimeout(id); });
}

void
NvmfInitiator::onTimeout(std::uint64_t id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return; // completed in time
    Pending p = std::move(it->second);
    pending_.erase(it);
    ++timeouts_;
    if (p.isRead)
        p.readCb(IoStatus::kTimedOut, {});
    else
        p.writeCb(IoStatus::kTimedOut);
}

} // namespace draid::blockdev
