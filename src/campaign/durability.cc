#include "campaign/durability.h"

#include <cmath>

namespace draid::campaign {

WilsonInterval
wilsonInterval(std::uint64_t successes, std::uint64_t trials, double z)
{
    if (trials == 0)
        return WilsonInterval{0.0, 1.0};
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = p + z2 / (2.0 * n);
    const double margin =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
    WilsonInterval ci;
    ci.lo = (center - margin) / denom;
    ci.hi = (center + margin) / denom;
    if (ci.lo < 0.0)
        ci.lo = 0.0;
    if (ci.hi > 1.0)
        ci.hi = 1.0;
    return ci;
}

double
accelHoursPerTick(double mttf_hours, std::uint32_t width,
                  double gap_mean_ticks)
{
    return mttf_hours / static_cast<double>(width - 1) / gap_mean_ticks;
}

double
mttdlHours(double mttf_hours, double mttr_hours, std::uint32_t width)
{
    const double n = static_cast<double>(width);
    return mttf_hours * mttf_hours / (n * (n - 1.0) * mttr_hours);
}

double
modelLossProbability(double rebuild_ticks, double gap_mean_ticks)
{
    return 1.0 - std::exp(-rebuild_ticks / gap_mean_ticks);
}

} // namespace draid::campaign
