#include "campaign/fault_schedule.h"

#include <algorithm>

namespace draid::campaign {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kDriveFailure:      return "drive-failure";
      case FaultKind::kSecondFailure:     return "second-failure";
      case FaultKind::kGrayDrive:         return "gray-drive";
      case FaultKind::kLatentSectorError: return "latent-sector-error";
      case FaultKind::kTargetFlap:        return "target-flap";
      case FaultKind::kPortDegrade:       return "port-degrade";
    }
    return "unknown";
}

const char *
scenarioName(ScenarioClass cls)
{
    switch (cls) {
      case ScenarioClass::kBenign:         return "benign";
      case ScenarioClass::kCorrelatedDual: return "correlated-dual";
      case ScenarioClass::kLseRebuild:     return "lse-rebuild";
      case ScenarioClass::kGrayFlap:       return "gray-flap";
    }
    return "unknown";
}

namespace {

/** Uniform tick in [mean/2, 3*mean/2). @pre mean > 0 */
sim::Tick
jittered(sim::Tick mean, sim::Rng &rng)
{
    const auto span = static_cast<std::uint64_t>(mean);
    return mean / 2 + static_cast<sim::Tick>(rng.nextBounded(span));
}

FaultAction
firstFailure(const ScheduleShape &shape, sim::Rng &rng)
{
    FaultAction a;
    a.kind = FaultKind::kDriveFailure;
    a.tick = jittered(shape.firstFailureTick, rng);
    a.device =
        static_cast<std::uint32_t>(rng.nextBounded(shape.width));
    return a;
}

/** A member device distinct from @p avoid. @pre width >= 2 */
std::uint32_t
otherDevice(std::uint32_t avoid, std::uint32_t width, sim::Rng &rng)
{
    const auto pick =
        static_cast<std::uint32_t>(rng.nextBounded(width - 1));
    return pick >= avoid ? pick + 1 : pick;
}

} // namespace

std::vector<FaultAction>
generateSchedule(ScenarioClass cls, const ScheduleShape &shape,
                 sim::Rng &rng)
{
    std::vector<FaultAction> out;
    switch (cls) {
      case ScenarioClass::kBenign: {
        out.push_back(firstFailure(shape, rng));
        break;
      }
      case ScenarioClass::kCorrelatedDual: {
        FaultAction first = firstFailure(shape, rng);
        FaultAction second;
        second.kind = FaultKind::kSecondFailure;
        second.tick =
            first.tick + static_cast<sim::Tick>(rng.nextExponential(
                             static_cast<double>(shape.gapMeanTicks)));
        second.device = otherDevice(first.device, shape.width, rng);
        out.push_back(first);
        out.push_back(second);
        break;
      }
      case ScenarioClass::kLseRebuild: {
        // Plant the latent errors up front — they are latent precisely
        // because nothing notices them until a scrub or rebuild reads
        // the range.
        for (std::uint32_t i = 0; i < shape.lseCount; ++i) {
            FaultAction lse;
            lse.kind = FaultKind::kLatentSectorError;
            lse.tick = 0;
            lse.stripe = rng.nextBounded(shape.stripes);
            lse.device =
                static_cast<std::uint32_t>(rng.nextBounded(shape.width));
            out.push_back(lse);
        }
        out.push_back(firstFailure(shape, rng));
        break;
      }
      case ScenarioClass::kGrayFlap: {
        FaultAction gray;
        gray.kind = FaultKind::kGrayDrive;
        gray.tick = jittered(shape.firstFailureTick, rng);
        gray.device =
            static_cast<std::uint32_t>(rng.nextBounded(shape.width));
        gray.factor = shape.grayFactor;
        gray.duration = shape.grayDuration;
        out.push_back(gray);

        FaultAction flap;
        flap.kind = FaultKind::kTargetFlap;
        flap.tick = jittered(2 * shape.firstFailureTick, rng);
        flap.device = otherDevice(gray.device, shape.width, rng);
        flap.duration = shape.flapHalfPeriod;
        flap.cycles = shape.flapCycles;
        out.push_back(flap);

        FaultAction port;
        port.kind = FaultKind::kPortDegrade;
        port.tick = jittered(3 * shape.firstFailureTick, rng);
        port.device = shape.width >= 3
                          ? otherDevice(flap.device, shape.width, rng)
                          : gray.device;
        port.factor = shape.portGoodputFraction;
        port.duration = shape.portDegradeDuration;
        out.push_back(port);
        break;
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FaultAction &x, const FaultAction &y) {
                  if (x.tick != y.tick)
                      return x.tick < y.tick;
                  if (x.kind != y.kind)
                      return static_cast<int>(x.kind) <
                             static_cast<int>(y.kind);
                  if (x.device != y.device)
                      return x.device < y.device;
                  return x.stripe < y.stripe;
              });
    return out;
}

} // namespace draid::campaign
