#include "campaign/campaign.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "campaign/fault_injector.h"
#include "cluster/cluster.h"
#include "core/draid_host.h"
#include "core/failure.h"
#include "core/reconstruct.h"
#include "telemetry/timeline.h"
#include "workload/fio.h"

namespace draid::campaign {

namespace {

/** splitmix64-style seed derivation: class x trial -> independent Rng. */
std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t cls, std::uint64_t trial)
{
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (cls + 1) +
                      0xd1b54a32d192ed03ull * (trial + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Per-stripe preload pattern seed (regenerated at integrity check). */
std::uint64_t
patternSeed(std::uint64_t trial_seed, std::uint64_t stripe)
{
    return trial_seed ^ (0xa0761d6478bd642full * (stripe + 1));
}

std::size_t
classIndex(ScenarioClass cls)
{
    return static_cast<std::size_t>(cls);
}

} // namespace

TrialResult
runTrial(const CampaignConfig &cfg, ScenarioClass cls, std::uint32_t trial,
         std::ostream *ascii_os)
{
    const std::uint64_t tseed =
        deriveSeed(cfg.seed, classIndex(cls), trial);
    const std::uint32_t chunkBytes = cfg.chunkKb * 1024;

    // --- testbed: small array, short op deadlines, one spare pool ---
    cluster::TestbedConfig tb;
    tb.ssd.capacity = cfg.stripes * chunkBytes;
    tb.opTimeout = sim::Ticks{cfg.opTimeout};
    cluster::Cluster cluster(tb, cfg.width + cfg.spares);
    sim::Simulator &sim = cluster.sim();

    core::DraidOptions opts;
    opts.level = raid::RaidLevel::kRaid5;
    opts.chunkSize = chunkBytes;
    opts.seed = tseed ^ 0x5eedull;
    core::DraidSystem sys(cluster, opts, cfg.width);
    core::DraidHost &host = sys.host();
    const std::uint64_t stripeBytes = host.geometry().stripeDataSize();

    core::FailureTracker tracker(cfg.width, /*redundancy=*/1);
    tracker.bindJournal(&cluster.telemetry().journal(), cluster.hostId());

    // --- preload the deterministic pattern, one full stripe at a time ---
    auto writeNext =
        std::make_shared<std::function<void(std::uint64_t)>>();
    *writeNext = [&cfg, &host, tseed, stripeBytes,
                  writeNext](std::uint64_t s) {
        if (s == cfg.stripes)
            return;
        ec::Buffer buf(static_cast<std::size_t>(stripeBytes));
        buf.fillPattern(patternSeed(tseed, s));
        host.write(s * stripeBytes, buf,
                   [writeNext, s](blockdev::IoStatus) {
                       (*writeNext)(s + 1);
                   });
    };
    (*writeNext)(0);
    sim.run();
    *writeNext = nullptr; // break the self-capture cycle

    // Windowed SLO series over the measured part of the trial only (the
    // sink is fed at op completion; preload stays out of the windows).
    telemetry::WindowedAggregator agg(sim::Ticks::zero());
    cluster.tracer().bindOpSink(&agg);
    const sim::Tick measuredStart = sim.now().raw();

    // --- generate + arm the fault schedule ---
    sim::Rng schedRng(tseed);
    ScheduleShape shape = cfg.shape;
    shape.width = cfg.width;
    shape.stripes = cfg.stripes;
    const std::vector<FaultAction> schedule =
        generateSchedule(cls, shape, schedRng);

    struct RebuildState
    {
        std::uint32_t sparesLeft = 0;
        std::uint32_t nextSpare = 0;
        std::unique_ptr<core::RebuildJob> job;
        sim::Ticks start = sim::Ticks::zero();
        sim::Ticks end = sim::Ticks::zero();
        bool ran = false;
    };
    RebuildState rb;
    rb.sparesLeft = cfg.spares;
    rb.nextSpare = cfg.width;

    FaultInjector injector(cluster, host);
    injector.onDriveFailure([&](const FaultAction &a) {
        const sim::Ticks now = sim.now();
        if (tracker.activeFailures() > 0) {
            // Concurrent with an unfinished rebuild: beyond the RAID-5
            // redundancy. The tracker journals DriveFailed + DataLoss;
            // taking the target off the fabric makes the remaining
            // rebuild stripes fail for real (op deadlines fire).
            if (!tracker.recordFailure(a.device, now))
                return;
            cluster.failTarget(host.targetOf(a.device));
            return;
        }
        host.markFailed(a.device);
        tracker.recordFailure(a.device, now, /*already_journaled=*/true);
        if (rb.sparesLeft == 0)
            return; // no spare pool left: stay degraded
        const std::uint32_t spare = rb.nextSpare++;
        --rb.sparesLeft;
        rb.ran = true;
        rb.start = now;
        rb.job = std::make_unique<core::RebuildJob>(
            sim,
            [&host, spare](std::uint64_t stripe,
                           std::function<void(bool)> done) {
                host.reconstructChunk(stripe, spare, std::move(done));
            },
            cfg.stripes, chunkBytes, /*window=*/8);
        rb.job->bindJournal(&cluster.telemetry().journal(),
                            cluster.hostId());
        rb.job->bindTrace(&cluster.tracer(), cluster.hostId());
        rb.job->onStripeFailed([&tracker, &sim](std::uint64_t stripe) {
            tracker.recordStripeLoss(stripe, sim.now());
        });
        rb.job->start([&, device = a.device, spare](bool) {
            rb.end = sim.now();
            tracker.recordRebuilt(device, rb.end);
            host.replaceDevice(device, spare);
            // A failure that landed mid-rebuild leaves the array
            // degraded on that member once the swap completes.
            const auto still = tracker.failedDevices();
            if (!still.empty() && !host.isDegraded())
                host.markFailed(still.front());
        });
    });
    injector.arm(schedule);

    // --- lse-rebuild: a repair scrub sweeps a prefix of the stripes,
    // discovering (and fixing) some of the planted errors first ---
    auto scrubNext =
        std::make_shared<std::function<void(std::uint64_t)>>();
    if (cls == ScenarioClass::kLseRebuild) {
        const auto limit = static_cast<std::uint64_t>(
            static_cast<double>(cfg.stripes) * cfg.scrubFraction);
        *scrubNext = [&host, limit, scrubNext](std::uint64_t s) {
            if (s >= limit)
                return;
            host.scrubStripe(s, /*repair=*/true,
                             [scrubNext, s](core::DraidHost::ScrubResult) {
                                 (*scrubNext)(s + 1);
                             });
        };
        sim.schedule(sim::Ticks::us(100), "campaign.scrub",
                     [scrubNext]() { (*scrubNext)(0); });
    }

    // --- foreground workload (read-only) while the faults play out ---
    workload::FioConfig fio;
    fio.ioSize = cfg.fioIoKb * 1024;
    fio.readRatio = 1.0;
    fio.ioDepth = cfg.fioDepth;
    fio.numOps = cfg.fioOps;
    fio.workingSetBytes = cfg.stripes * stripeBytes;
    fio.seed = tseed ^ 0xf10ull;
    workload::FioJob job(sim, host, fio);
    const workload::FioResult fioResult = job.run();

    sim.run(); // drain: rebuild tail, flap cycles, pending deadlines
    if (*scrubNext)
        *scrubNext = nullptr;

    // --- bit-for-bit integrity check of the whole device ---
    bool pass = true;
    auto readNext =
        std::make_shared<std::function<void(std::uint64_t)>>();
    *readNext = [&cfg, &host, &pass, tseed, stripeBytes,
                 readNext](std::uint64_t s) {
        if (s == cfg.stripes)
            return;
        host.read(s * stripeBytes, static_cast<std::uint32_t>(stripeBytes),
                  [&pass, tseed, stripeBytes, readNext,
                   s](blockdev::IoStatus st, ec::Buffer data) {
                      ec::Buffer expect(
                          static_cast<std::size_t>(stripeBytes));
                      expect.fillPattern(patternSeed(tseed, s));
                      if (st != blockdev::IoStatus::kOk ||
                          !data.contentEquals(expect))
                          pass = false;
                      (*readNext)(s + 1);
                  });
    };
    (*readNext)(0);
    sim.run();
    *readNext = nullptr;

    // --- verdict + per-trial telemetry ---
    TrialResult r;
    r.dataLoss = tracker.dataLoss();
    r.integrityPass = pass;
    r.unexplainedIntegrityFailure = !pass && !tracker.dataLoss();
    r.lostStripes = tracker.lostStripes();
    r.fioErrors = fioResult.errors;
    r.rebuildTicks = rb.ran ? (rb.end - rb.start).raw() : 0;
    for (sim::Tick w : tracker.exposureWindows())
        r.exposureTicks += w;
    r.exposureTicks += tracker.openExposure(sim.now()).raw();
    r.simEndTicks = sim.now().raw();

    const auto events =
        cluster.telemetry().journal().snapshotRange(measuredStart,
                                                    sim.now().raw() + 1);
    const telemetry::TimelineReport timeline =
        telemetry::buildTimeline(agg, events, {}, cluster.hostId());
    for (const telemetry::TimelineWindow &w : timeline.windows) {
        if (w.ops > 0 && w.p99Us > cfg.sloP99Us)
            r.degradedSloTicks += timeline.windowTicks;
    }
    r.degradedSloTicks +=
        static_cast<sim::Tick>(timeline.health.stalledWindows.size()) *
        timeline.windowTicks;

    if (ascii_os != nullptr) {
        renderTimelineAscii(*ascii_os, timeline,
                            std::string(scenarioName(cls)) + " trial " +
                                std::to_string(trial) +
                                (r.dataLoss ? " [DATA LOSS]" : ""));
    }
    return r;
}

CampaignReport
runCampaign(const CampaignConfig &cfg, std::ostream *ascii_os)
{
    CampaignReport report;
    report.config = cfg;
    for (ScenarioClass cls : cfg.classes) {
        ClassReport cr;
        cr.cls = cls;
        cr.trials = cfg.trials;
        double sloMsSum = 0.0;
        double exposureMsSum = 0.0;
        double rebuildMsSum = 0.0;
        std::uint32_t rebuilds = 0;
        for (std::uint32_t t = 0; t < cfg.trials; ++t) {
            const TrialResult r = runTrial(
                cfg, cls, t, cfg.timelineAscii ? ascii_os : nullptr);
            if (r.dataLoss)
                ++cr.losses;
            if (!r.integrityPass)
                ++cr.integrityFailures;
            if (r.unexplainedIntegrityFailure)
                ++cr.unexplainedIntegrityFailures;
            cr.lostStripes += r.lostStripes;
            cr.fioErrors += r.fioErrors;
            sloMsSum += static_cast<double>(r.degradedSloTicks) /
                        sim::kMillisecond;
            exposureMsSum += static_cast<double>(r.exposureTicks) /
                             sim::kMillisecond;
            if (r.rebuildTicks > 0) {
                rebuildMsSum += static_cast<double>(r.rebuildTicks) /
                                sim::kMillisecond;
                ++rebuilds;
            }
        }
        const double n = static_cast<double>(cfg.trials);
        cr.lossP = cfg.trials > 0
                       ? static_cast<double>(cr.losses) / n
                       : 0.0;
        cr.ci = wilsonInterval(cr.losses, cfg.trials);
        cr.degradedSloMsMean = cfg.trials > 0 ? sloMsSum / n : 0.0;
        cr.exposureMsMean = cfg.trials > 0 ? exposureMsSum / n : 0.0;
        cr.rebuildMsMean =
            rebuilds > 0 ? rebuildMsSum / static_cast<double>(rebuilds)
                         : 0.0;
        report.classes.push_back(cr);
    }

    // --- MTTDL cross-check against the correlated-dual class. MTTR is
    // the *clean* rebuild time (benign class when available): a second
    // failure only counts as inside the exposure window the clean
    // rebuild defines, so the closed form must use the uninterfered
    // duration, not the timeout-prolonged rebuilds of the loss trials.
    double cleanRebuildMs = 0.0;
    for (const ClassReport &cr : report.classes) {
        if (cr.cls == ScenarioClass::kBenign && cr.rebuildMsMean > 0.0)
            cleanRebuildMs = cr.rebuildMsMean;
    }
    for (const ClassReport &cr : report.classes) {
        if (cr.cls != ScenarioClass::kCorrelatedDual ||
            cr.rebuildMsMean <= 0.0)
            continue;
        MttdlCrossCheck &m = report.mttdl;
        const double gapTicks =
            static_cast<double>(cfg.shape.gapMeanTicks);
        const double rebuildTicks =
            (cleanRebuildMs > 0.0 ? cleanRebuildMs : cr.rebuildMsMean) *
            sim::kMillisecond;
        m.valid = true;
        m.mttfHours = cfg.mttfHours;
        m.gapMeanMs = gapTicks / sim::kMillisecond;
        m.rebuildMsMean = rebuildTicks / sim::kMillisecond;
        m.accelHoursPerTick =
            accelHoursPerTick(cfg.mttfHours, cfg.width, gapTicks);
        m.mttrHours = rebuildTicks * m.accelHoursPerTick;
        m.mttdlHours = mttdlHours(cfg.mttfHours, m.mttrHours, cfg.width);
        m.modelLossP = modelLossProbability(rebuildTicks, gapTicks);
        m.measuredLossP = cr.lossP;
    }
    return report;
}

void
writeCampaignJson(std::ostream &os, const CampaignReport &report)
{
    char buf[1024];
    for (const ClassReport &cr : report.classes) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"figure\":\"campaign\",\"seed\":%llu,\"class\":\"%s\","
            "\"trials\":%u,\"losses\":%u,\"loss_p\":%.6g,"
            "\"wilson_lo\":%.6g,\"wilson_hi\":%.6g,"
            "\"lost_stripes\":%llu,\"integrity_failures\":%u,"
            "\"unexplained_integrity_failures\":%u,"
            "\"degraded_slo_ms_mean\":%.6g,"
            "\"degraded_slo_min_mean\":%.6g,"
            "\"exposure_ms_mean\":%.6g,\"rebuild_ms_mean\":%.6g,"
            "\"fio_errors\":%llu}",
            static_cast<unsigned long long>(report.config.seed),
            scenarioName(cr.cls), cr.trials, cr.losses, cr.lossP,
            cr.ci.lo, cr.ci.hi,
            static_cast<unsigned long long>(cr.lostStripes),
            cr.integrityFailures, cr.unexplainedIntegrityFailures,
            cr.degradedSloMsMean, cr.degradedSloMsMean / 60000.0,
            cr.exposureMsMean, cr.rebuildMsMean,
            static_cast<unsigned long long>(cr.fioErrors));
        os << buf << "\n";
    }
    if (report.mttdl.valid) {
        const MttdlCrossCheck &m = report.mttdl;
        std::snprintf(
            buf, sizeof(buf),
            "{\"figure\":\"campaign\",\"seed\":%llu,"
            "\"class\":\"mttdl-model\",\"mttf_hours\":%.6g,"
            "\"gap_mean_ms\":%.6g,\"rebuild_ms_mean\":%.6g,"
            "\"accel_hours_per_tick\":%.6g,\"mttr_hours\":%.6g,"
            "\"mttdl_hours\":%.6g,\"model_loss_p\":%.6g,"
            "\"measured_loss_p\":%.6g}",
            static_cast<unsigned long long>(report.config.seed),
            m.mttfHours, m.gapMeanMs, m.rebuildMsMean,
            m.accelHoursPerTick, m.mttrHours, m.mttdlHours, m.modelLossP,
            m.measuredLossP);
        os << buf << "\n";
    }
}

} // namespace draid::campaign
