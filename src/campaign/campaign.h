/**
 * @file
 * Fault-campaign engine: Monte Carlo durability estimation over the
 * simulated testbed.
 *
 * For each scenario class the engine runs N seeded trials. A trial
 * builds a fresh cluster + dRAID array, preloads a deterministic
 * pattern, arms a generated fault schedule, drives a read-only
 * foreground workload while the faults (and any rebuild) play out,
 * drains the simulator, and ends with a bit-for-bit integrity check of
 * the whole device against the preloaded pattern. Every integrity
 * failure must be explained by a data-loss verdict the FailureTracker
 * recorded while the faults unfolded — an unexplained mismatch is a
 * model bug and is reported separately.
 *
 * The per-class report carries the measured data-loss probability with
 * a Wilson confidence interval, degraded-SLO time from the windowed
 * timeline, rebuild-exposure statistics, and (for the correlated-dual
 * class) a closed-form MTTDL cross-check computed from the same rate
 * parameters the schedule generator drew from.
 */

#ifndef DRAID_CAMPAIGN_CAMPAIGN_H
#define DRAID_CAMPAIGN_CAMPAIGN_H

#include <cstdint>
#include <ostream>
#include <vector>

#include "campaign/durability.h"
#include "campaign/fault_schedule.h"
#include "sim/types.h"

namespace draid::campaign {

/** Campaign-wide knobs (every trial shares them). */
struct CampaignConfig
{
    std::uint64_t seed = 1;     ///< campaign seed; trials derive from it
    std::uint32_t trials = 32;  ///< Monte Carlo trials per scenario class
    std::uint32_t width = 4;    ///< member devices
    std::uint32_t spares = 1;   ///< hot spares beyond the members
    std::uint64_t stripes = 24; ///< working-set stripes (= whole device)
    std::uint32_t chunkKb = 64;
    sim::Tick opTimeout = 2 * sim::kMillisecond;
    std::uint64_t fioOps = 400;  ///< foreground read ops per trial
    std::uint32_t fioIoKb = 32;  ///< foreground I/O size
    int fioDepth = 8;            ///< foreground queue depth
    double sloP99Us = 1000.0;    ///< per-window p99 SLO threshold
    double mttfHours = 1.2e6;    ///< drive MTTF for the MTTDL cross-check
    double scrubFraction = 0.5;  ///< stripes repair-scrubbed pre-failure
    ScheduleShape shape;         ///< width/stripes synced by runCampaign
    bool timelineAscii = false;  ///< render per-trial ASCII timelines
    // draid-lint: cap(fixed scenario list; config-time only)
    std::vector<ScenarioClass> classes = {
        ScenarioClass::kBenign, ScenarioClass::kCorrelatedDual,
        ScenarioClass::kLseRebuild, ScenarioClass::kGrayFlap};
};

/** Outcome of one trial. */
struct TrialResult
{
    bool dataLoss = false;      ///< FailureTracker verdict
    bool integrityPass = false; ///< bit-for-bit readback matched
    /** Integrity failed but no loss was recorded — a model bug. */
    bool unexplainedIntegrityFailure = false;
    std::uint64_t lostStripes = 0;
    std::uint64_t fioErrors = 0;
    sim::Tick rebuildTicks = 0;     ///< 0 when no rebuild ran
    sim::Tick exposureTicks = 0;    ///< closed + still-open windows
    sim::Tick degradedSloTicks = 0; ///< windows breaching the p99 SLO
    sim::Tick simEndTicks = 0;
};

/** Aggregated per-scenario-class durability estimate. */
struct ClassReport
{
    ScenarioClass cls = ScenarioClass::kBenign;
    std::uint32_t trials = 0;
    std::uint32_t losses = 0; ///< trials with a data-loss verdict
    double lossP = 0.0;
    WilsonInterval ci;
    std::uint64_t lostStripes = 0;
    std::uint32_t integrityFailures = 0;
    std::uint32_t unexplainedIntegrityFailures = 0;
    double degradedSloMsMean = 0.0; ///< simulated ms per trial
    double exposureMsMean = 0.0;
    double rebuildMsMean = 0.0; ///< over trials where a rebuild ran
    std::uint64_t fioErrors = 0;
};

/** Closed-form cross-check row (from the correlated-dual class). */
struct MttdlCrossCheck
{
    bool valid = false;
    double mttfHours = 0.0;
    double gapMeanMs = 0.0;
    double rebuildMsMean = 0.0;
    double accelHoursPerTick = 0.0;
    double mttrHours = 0.0;
    double mttdlHours = 0.0;
    double modelLossP = 0.0;    ///< 1 - exp(-rebuild / gap mean)
    double measuredLossP = 0.0; ///< the Monte Carlo estimate
};

/** The whole campaign's durability report. */
struct CampaignReport
{
    CampaignConfig config;
    // draid-lint: cap(one report per configured scenario class)
    std::vector<ClassReport> classes;
    MttdlCrossCheck mttdl;
};

/**
 * Run one trial of @p cls. @p trial indexes the derived seed;
 * @p ascii_os (nullable) receives the trial's ASCII timeline.
 */
TrialResult runTrial(const CampaignConfig &cfg, ScenarioClass cls,
                     std::uint32_t trial, std::ostream *ascii_os);

/**
 * Run the full campaign: every configured class x trials. Byte-for-byte
 * deterministic in cfg (same seed -> same report).
 */
CampaignReport runCampaign(const CampaignConfig &cfg,
                           std::ostream *ascii_os = nullptr);

/**
 * Append the report as JSONL: one row per scenario class plus one
 * "mttdl-model" cross-check row, deterministic formatting.
 */
void writeCampaignJson(std::ostream &os, const CampaignReport &report);

} // namespace draid::campaign

#endif // DRAID_CAMPAIGN_CAMPAIGN_H
