/**
 * @file
 * FaultInjector: arms a generated fault schedule against a live testbed.
 *
 * The injector owns the mechanical primitives — latency inflation on a
 * gray drive's SSD, latent-sector-error planting, target down/up
 * flapping, NIC goodput cuts — and journals the matching cluster
 * events. Drive-death actions (kDriveFailure / kSecondFailure) are
 * policy, not mechanism: they are delegated to a campaign-supplied
 * callback that decides how the array reacts (degrade, rebuild, promote
 * to data loss).
 */

#ifndef DRAID_CAMPAIGN_FAULT_INJECTOR_H
#define DRAID_CAMPAIGN_FAULT_INJECTOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/fault_schedule.h"
#include "cluster/cluster.h"
#include "core/draid_host.h"

namespace draid::campaign {

/** Applies FaultActions to a cluster + dRAID host pair. */
class FaultInjector
{
  public:
    FaultInjector(cluster::Cluster &cluster, core::DraidHost &host);

    /** Handler for kDriveFailure / kSecondFailure actions (required if
     *  the schedule contains any). */
    void onDriveFailure(std::function<void(const FaultAction &)> cb)
    {
        driveFailure_ = std::move(cb);
    }

    /**
     * Schedule every action of @p schedule at now + action.tick. The
     * schedule must outlive nothing — actions are copied into the
     * simulator's closures.
     */
    void arm(const std::vector<FaultAction> &schedule);

    /** Bytes planted per latent sector error (one 4K sector run). */
    static constexpr std::uint32_t kLseBytes = 4096;

  private:
    void apply(const FaultAction &a);
    void applyGray(const FaultAction &a);
    void applyLse(const FaultAction &a);
    void applyFlap(const FaultAction &a);
    void applyPortDegrade(const FaultAction &a);

    /** The SSD currently serving member device @p device. */
    nvme::Ssd &ssdOf(std::uint32_t device);

    cluster::Cluster &cluster_;
    core::DraidHost &host_;
    std::function<void(const FaultAction &)> driveFailure_;
};

} // namespace draid::campaign

#endif // DRAID_CAMPAIGN_FAULT_INJECTOR_H
