#include "campaign/fault_injector.h"

#include <cassert>

#include "telemetry/event_journal.h"

namespace draid::campaign {

FaultInjector::FaultInjector(cluster::Cluster &cluster,
                             core::DraidHost &host)
    : cluster_(cluster), host_(host)
{
}

nvme::Ssd &
FaultInjector::ssdOf(std::uint32_t device)
{
    return cluster_.target(host_.targetOf(device)).ssd();
}

void
FaultInjector::arm(const std::vector<FaultAction> &schedule)
{
    for (const FaultAction &a : schedule) {
        cluster_.sim().schedule(sim::Ticks{a.tick}, "campaign.fault",
                                [this, a]() { apply(a); });
    }
}

void
FaultInjector::apply(const FaultAction &a)
{
    switch (a.kind) {
      case FaultKind::kDriveFailure:
      case FaultKind::kSecondFailure:
        assert(driveFailure_);
        driveFailure_(a);
        break;
      case FaultKind::kGrayDrive:
        applyGray(a);
        break;
      case FaultKind::kLatentSectorError:
        applyLse(a);
        break;
      case FaultKind::kTargetFlap:
        applyFlap(a);
        break;
      case FaultKind::kPortDegrade:
        applyPortDegrade(a);
        break;
    }
}

void
FaultInjector::applyGray(const FaultAction &a)
{
    const std::uint32_t target = host_.targetOf(a.device);
    nvme::Ssd &ssd = cluster_.target(target).ssd();
    ssd.setDegradeFactor(a.factor);
    // The journal record stands in for the health monitor that notices
    // the inflated latencies (the campaign knows ground truth).
    cluster_.telemetry().journal().record(
        telemetry::EventType::kSlowDriveDetected,
        cluster_.targetNodeId(target), cluster_.sim().now().raw(), target,
        static_cast<std::uint64_t>(a.factor * 100.0));
    cluster_.sim().schedule(sim::Ticks{a.duration}, "campaign.gray.clear",
                            [&ssd]() { ssd.setDegradeFactor(1.0); });
}

void
FaultInjector::applyLse(const FaultAction &a)
{
    // Plant one unreadable sector run at the start of this (stripe,
    // device) chunk. Silent by design: the SSD journals the discovery
    // when something finally reads the range.
    const std::uint64_t addr =
        host_.geometry().deviceAddress(a.stripe, 0);
    ssdOf(a.device).plantLatentSectorError(addr, kLseBytes);
}

void
FaultInjector::applyFlap(const FaultAction &a)
{
    const std::uint32_t target = host_.targetOf(a.device);
    cluster_.telemetry().journal().record(
        telemetry::EventType::kTargetFlap, cluster_.targetNodeId(target),
        cluster_.sim().now().raw(), target, a.cycles);
    for (std::uint32_t c = 0; c < a.cycles; ++c) {
        const sim::Ticks base =
            sim::Ticks{2 * static_cast<sim::Tick>(c) * a.duration};
        cluster_.sim().schedule(base, "campaign.flap.down", [this, target]() {
            cluster_.failTarget(target);
        });
        cluster_.sim().schedule(base + sim::Ticks{a.duration},
                                "campaign.flap.up",
                                [this, target]() {
            cluster_.recoverTarget(target);
        });
    }
}

void
FaultInjector::applyPortDegrade(const FaultAction &a)
{
    const std::uint32_t target = host_.targetOf(a.device);
    net::Nic &nic = cluster_.target(target).nic();
    const double full = nic.goodput();
    nic.setGoodput(full * a.factor);
    cluster_.telemetry().journal().record(
        telemetry::EventType::kSwitchPortDegraded,
        cluster_.targetNodeId(target), cluster_.sim().now().raw(),
        cluster_.targetNodeId(target),
        static_cast<std::uint64_t>(a.factor * 100.0));
    cluster_.sim().schedule(sim::Ticks{a.duration}, "campaign.port.restore",
                            [&nic, full]() { nic.setGoodput(full); });
}

} // namespace draid::campaign
