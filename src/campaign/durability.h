/**
 * @file
 * Durability estimation helpers: Wilson score intervals for the Monte
 * Carlo data-loss frequency, and the closed-form MTTDL model the
 * campaign cross-checks its measured loss rate against.
 *
 * The cross-check works by construction: the simulated second-failure
 * gap is Exp(gap mean ticks), and in the real system the time to the
 * next failure among the surviving width-1 drives is
 * Exp(MTTF / (width-1)) hours — so one simulated tick corresponds to
 * accelHoursPerTick() real hours, the measured rebuild time maps to an
 * MTTR, and the textbook MTTDL formula consumes the same rate
 * parameters the schedule generator drew from.
 */

#ifndef DRAID_CAMPAIGN_DURABILITY_H
#define DRAID_CAMPAIGN_DURABILITY_H

#include <cstdint>

namespace draid::campaign {

/** A two-sided confidence interval on a binomial proportion. */
struct WilsonInterval
{
    double lo = 0.0;
    double hi = 1.0;
};

/**
 * Wilson score interval for @p successes out of @p trials at normal
 * quantile @p z (1.96 = 95%). Returns [0, 1] when trials == 0. Unlike
 * the normal approximation it stays inside [0, 1] and is informative
 * at 0 observed losses — exactly the campaign's common case.
 */
WilsonInterval wilsonInterval(std::uint64_t successes,
                              std::uint64_t trials, double z = 1.96);

/**
 * Real hours represented by one simulated tick, given that the sim
 * draws the second-failure gap from Exp(@p gap_mean_ticks) while the
 * real gap is Exp(@p mttf_hours / (width - 1)).
 * @pre width >= 2, gap_mean_ticks > 0
 */
double accelHoursPerTick(double mttf_hours, std::uint32_t width,
                         double gap_mean_ticks);

/**
 * Textbook MTTDL for an array surviving one failure:
 * MTTF^2 / (N * (N-1) * MTTR), all in hours.
 * @pre width >= 2, mttr_hours > 0
 */
double mttdlHours(double mttf_hours, double mttr_hours,
                  std::uint32_t width);

/**
 * Closed-form per-trial data-loss probability: a second failure lands
 * inside the rebuild window, P = 1 - exp(-rebuild / gap mean).
 * @pre gap_mean_ticks > 0
 */
double modelLossProbability(double rebuild_ticks, double gap_mean_ticks);

} // namespace draid::campaign

#endif // DRAID_CAMPAIGN_DURABILITY_H
