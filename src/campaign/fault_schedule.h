/**
 * @file
 * Fault-schedule generator for durability campaigns: composes seeded,
 * deterministic schedules of fault primitives — correlated drive
 * failures, gray (slow) drives, latent sector errors, NVMe-oF target
 * flapping, switch-port bandwidth degradation — that the FaultInjector
 * then arms against a live testbed.
 *
 * A schedule is a plain sorted vector of FaultAction records; generation
 * draws only from the caller's sim::Rng, so the same (class, shape,
 * seed) triple always yields the same schedule, and two trials differ
 * only through their derived seeds.
 */

#ifndef DRAID_CAMPAIGN_FAULT_SCHEDULE_H
#define DRAID_CAMPAIGN_FAULT_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace draid::campaign {

/** The fault primitives a schedule is composed of. */
enum class FaultKind : std::uint8_t
{
    kDriveFailure,      ///< member device dies (degraded mode + rebuild)
    kSecondFailure,     ///< correlated second death, gap ~ Exp(gap mean)
    kGrayDrive,         ///< latency inflation on one member for a while
    kLatentSectorError, ///< unreadable media range planted on one chunk
    kTargetFlap,        ///< NVMe-oF target bounces down/up for N cycles
    kPortDegrade,       ///< switch-port goodput cut for a while
};

/** Stable short name: "drive-failure", "gray-drive", ... */
const char *faultKindName(FaultKind kind);

/** One armed fault. Fields are typed per FaultKind. */
struct FaultAction
{
    sim::Tick tick = 0; ///< trial-relative arming tick
    FaultKind kind = FaultKind::kDriveFailure;
    std::uint32_t device = 0; ///< member device index
    std::uint64_t stripe = 0; ///< kLatentSectorError: stripe carrying it
    double factor = 1.0;      ///< gray latency multiple / port goodput frac
    sim::Tick duration = 0;   ///< gray & port: length; flap: half-period
    std::uint32_t cycles = 0; ///< kTargetFlap: down/up repetitions
};

/** The scenario classes a campaign sweeps (one Monte Carlo set each). */
enum class ScenarioClass : std::uint8_t
{
    kBenign,         ///< one failure, clean rebuild onto the spare
    kCorrelatedDual, ///< second failure races the rebuild window
    kLseRebuild,     ///< latent sector errors discovered mid-rebuild
    kGrayFlap,       ///< gray drive + target flap + port degrade, no death
};

inline constexpr std::size_t kNumScenarioClasses = 4;

/** Stable short name: "benign", "correlated-dual", ... */
const char *scenarioName(ScenarioClass cls);

/** Knobs the generator draws schedules from. */
struct ScheduleShape
{
    std::uint32_t width = 4;    ///< member devices
    std::uint64_t stripes = 24; ///< working-set stripes
    /** Mean tick of the first drive failure (uniform in [mean/2, 3mean/2)). */
    sim::Tick firstFailureTick = sim::kMillisecond;
    /** Mean of the exponential first-to-second failure gap. */
    sim::Tick gapMeanTicks = 4 * sim::kMillisecond;
    std::uint32_t lseCount = 3;    ///< planted latent sector errors
    double grayFactor = 4.0;       ///< gray-drive latency multiple
    sim::Tick grayDuration = 2 * sim::kMillisecond;
    std::uint32_t flapCycles = 3;  ///< target down/up repetitions
    sim::Tick flapHalfPeriod = 300 * sim::kMicrosecond;
    double portGoodputFraction = 0.25; ///< goodput left after degrade
    sim::Tick portDegradeDuration = 2 * sim::kMillisecond;
};

/**
 * Draw one schedule for @p cls from @p rng. The result is sorted by
 * (tick, kind, device) so arming order never depends on generation
 * order. All randomness flows through @p rng — nothing else.
 */
std::vector<FaultAction> generateSchedule(ScenarioClass cls,
                                          const ScheduleShape &shape,
                                          sim::Rng &rng);

} // namespace draid::campaign

#endif // DRAID_CAMPAIGN_FAULT_SCHEDULE_H
