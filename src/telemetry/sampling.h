/**
 * @file
 * Deterministic head sampling of per-op traces.
 *
 * At scale the tracer cannot retain every span: a 1M-op run at ~20 spans
 * per op is 20M spans, and the 4M span cap silently discards the *end* of
 * the run — exactly the region a regression investigation needs. Head
 * sampling keeps a uniform 1-in-N subset of trace ids instead, chosen the
 * moment the id is minted, so every span of a kept op is retained and
 * every span of a dropped op is skipped (a trace is useful whole or not
 * at all).
 *
 * The keep decision is a pure function of the trace id: a fixed-seed
 * splitmix64-style finalizer hashes the id and keeps it when the hash
 * falls in the bottom 1/N of the 64-bit space. Three properties follow by
 * construction, and the determinism CI gates rely on all of them:
 *
 *  - No draws from the simulation's seeded RNG (the draid-lint raw-rng
 *    rule bans the engine RNG from src/telemetry/ entirely), so enabling
 *    sampling cannot shift any random sequence the simulation consumes.
 *  - No run state: the decision depends on nothing but the id, so the
 *    sampled id set is byte-identical across runs, across sample-period
 *    changes of *other* telemetry, and across machines.
 *  - Nested: the ids kept at period 2N are a subset of those kept at
 *    period N (threshold halves), so coarser runs stay comparable to
 *    finer ones.
 *
 * Id 0 (spans not tied to a user op) is always kept: those are rare,
 * structural, and never the memory problem sampling exists to solve.
 */

#ifndef DRAID_TELEMETRY_SAMPLING_H
#define DRAID_TELEMETRY_SAMPLING_H

#include <cstdint>

namespace draid::telemetry {

/**
 * splitmix64 finalizer over the trace id. Fixed constants (Steele et al.,
 * the standard splitmix64 mix) — deliberately NOT configurable, so two
 * builds can never disagree about which ids a period keeps.
 */
inline std::uint64_t
traceSampleHash(std::uint64_t id)
{
    std::uint64_t z = id + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Keep decision for @p id at sample period @p period (1-in-period kept).
 * Period 0 and 1 keep everything; id 0 is always kept.
 */
inline bool
traceSampled(std::uint64_t id, std::uint64_t period)
{
    if (period <= 1 || id == 0)
        return true;
    // Keep when the hash lands in the bottom 1/period of the hash space.
    // Integer division keeps the threshold exact; the subset-nesting
    // property (period 2N ⊂ period N) follows from threshold monotonicity.
    return traceSampleHash(id) < (~0ull / period);
}

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_SAMPLING_H
