/**
 * @file
 * ContentionTracker: per-tenant contention attribution with an exact
 * sums-to-wait contract.
 *
 * The instrument ROADMAP item 4 (multi-tenant QoS) needs: for every op
 * that queues at a contended resource — a NIC port direction, an SSD
 * channel, a CPU core, a stripe lock — record how much of its measured
 * queue-wait overlapped each *other* tenant's occupancy of that resource.
 * Because every such resource is FIFO (`start = max(now, busyUntil)` for
 * pipes/cores; strict grant order for stripe locks), the wait interval
 * `[arrival, serviceStart)` is exactly tiled by previously recorded
 * occupancy segments, so the per-aggressor blame split *sums to the wait
 * by construction* — the same exactness contract the critical-path
 * analyzer provides for per-phase latency. Any portion not covered by a
 * known tenant's segment (occupancy from before the tracker was enabled,
 * untraced internal work, segments dropped by the memory bound) is
 * charged to the reserved "untracked" tenant so the invariant
 * totalBlameTicks() == totalWaitTicks() holds unconditionally.
 *
 * Aggregation: blame lands in a tenant×tenant×resource-kind matrix,
 * bucketed into fixed tick windows; per-tenant completion stats feed a
 * windowed SLO series with burn flags (window p99 above the tenant's
 * target). Both stores are bounded: when the observed window span
 * exceeds kMaxWindows the window width doubles and retained windows
 * merge pairwise (the timeline aggregator's trick), so memory is O(1)
 * in run length.
 *
 * Cardinality bounds: at most kMaxTenants named tenants; registration
 * beyond that collapses into one reserved "other" tenant, so labeled
 * metrics ("tenant.<name>.ops" etc.) can never explode the registry.
 *
 * Like everything in src/telemetry/: observe-only (no Simulator access,
 * no scheduling), draw-free (no RNG — enforced by draid-lint's raw-rng
 * telemetry scope), and a pure function of the recorded event stream, so
 * the exported BENCH_interference.json row is byte-identical across
 * same-seed runs (CI double-run gate).
 */

#ifndef DRAID_TELEMETRY_INTERFERENCE_H
#define DRAID_TELEMETRY_INTERFERENCE_H

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <tuple>
#include <vector>

#include "sim/types.h"

namespace draid::telemetry {

class MetricsRegistry;

/** Tenant (== volume owner) dimension; 0 is reserved for "untracked". */
using TenantId = std::uint32_t;

/** Per-tenant queue-wait blame attribution at FIFO resources. */
class ContentionTracker
{
  public:
    /** Resource kinds the matrix aggregates over. */
    enum class ResourceKind : std::uint8_t
    {
        NicTx = 0,
        NicRx,
        SsdChannel,
        Cpu,
        StripeLock,
    };
    static constexpr std::size_t kNumKinds = 5;

    /** Stable display name ("nic.tx", "ssd.channel", "lock.stripe"...). */
    static const char *kindName(ResourceKind kind);

    /** Handle for one registered (node, kind) resource instance. */
    using ResourceId = std::uint32_t;

    /** Reserved tenant ids. */
    static constexpr TenantId kUntracked = 0;

    /** Cardinality bounds (see file header). */
    static constexpr std::size_t kMaxTenants = 16;
    static constexpr std::size_t kMaxWindows = 256;
    /** Per-(resource, key) occupancy-segment bound; the oldest segment is
     *  dropped first and its coverage degrades to "untracked" blame. */
    static constexpr std::size_t kMaxSegmentsPerKey = 4096;
    /** Retained latency samples per SLO window / per tenant overall. */
    static constexpr std::size_t kWindowSampleCap = 64;
    static constexpr std::size_t kTenantSampleCap = 4096;
    /** Bound on concurrently tracked trace->tenant bindings. */
    static constexpr std::size_t kMaxLiveOps = 65536;

    static constexpr sim::Tick kDefaultWindowTicks = sim::kMillisecond;

    /** Ships disabled; every hook is one predictable branch while off. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Base aggregation window width (before any merge-doubling). */
    void setWindowTicks(sim::Tick ticks);
    sim::Tick windowTicks() const { return windowTicks_; }
    /** Times the window width doubled to stay under kMaxWindows. */
    std::uint64_t windowMerges() const { return windowMerges_; }

    /** Optional registry for bounded per-tenant labeled metrics
     *  (tenant.<name>.{ops,bytes,wait_blamed_us}). */
    void bindMetrics(MetricsRegistry *metrics) { metrics_ = metrics; }

    // --- tenant registry (bounded cardinality) ---

    /**
     * Register a tenant and return its id. At most kMaxTenants named
     * tenants; further registrations all map to one reserved "other"
     * tenant, so total cardinality is bounded at kMaxTenants + 2
     * (untracked + named + other).
     */
    TenantId registerTenant(std::string name);

    /** Registered tenants including reserved ids ("untracked", "other"). */
    std::size_t tenantCount() const { return tenants_.size(); }
    const std::string &tenantName(TenantId tenant) const;

    /** Per-tenant SLO target for the windowed burn flags (0 = no SLO). */
    void setSloTargetTicks(TenantId tenant, sim::Tick p99);

    // --- op binding (issue-site context -> trace id) ---

    /**
     * Workload-generator context: ops minted while @p tenant is current
     * bind to it. Safe as plain state because issuance and minting run
     * synchronously on the single-threaded event loop.
     */
    void setCurrentTenant(TenantId tenant) { current_ = tenant; }
    TenantId currentTenant() const { return current_; }

    /** Bind @p trace to the current tenant (entry-point mint sites). */
    void noteOpStart(std::uint64_t trace) { noteOpStart(trace, current_); }
    void noteOpStart(std::uint64_t trace, TenantId tenant);

    /** Tenant bound to @p trace; kUntracked when unknown. */
    TenantId tenantOf(std::uint64_t trace) const;

    /**
     * Op completion: feeds the tenant's SLO window (end tick decides the
     * window), bumps labeled metrics, and releases the trace binding.
     */
    void noteOpComplete(std::uint64_t trace, sim::Tick end,
                        sim::Tick latency, std::uint64_t bytes);

    // --- resource registry + occupancy/blame recording ---

    ResourceId registerResource(sim::NodeId node, ResourceKind kind);
    std::size_t resourceCount() const { return resources_.size(); }

    /**
     * Record that @p trace occupied resource @p res over [start, end).
     * @p key sub-divides keyed resources (stripe id for lock tables);
     * FIFO order must hold per key. Pipes/cores use key 0.
     */
    void noteOccupancy(ResourceId res, std::uint64_t trace, sim::Tick start,
                       sim::Tick end, std::uint64_t key = 0);

    /** Open-ended occupancy (lock hold begins at grant time)... */
    void openOccupancy(ResourceId res, std::uint64_t trace, sim::Tick start,
                       std::uint64_t key = 0);
    /** ...closed at release. Must precede granting the next waiter. */
    void closeOccupancy(ResourceId res, sim::Tick end, std::uint64_t key = 0);

    /**
     * Attribute the queue-wait [arrival, serviceStart) of @p trace on
     * @p res: every overlap with a recorded occupancy segment becomes
     * blame against that segment's tenant; the uncovered residual is
     * blamed on "untracked". No-op when serviceStart <= arrival (no
     * wait) or @p trace is 0. Call before noteOccupancy for the same op.
     * Per key, calls must arrive in non-decreasing @p arrival order
     * (FIFO service order guarantees this).
     */
    void attributeWait(ResourceId res, std::uint64_t trace,
                       sim::Tick arrival, sim::Tick serviceStart,
                       std::uint64_t key = 0);

    // --- the sums-to-wait contract ---

    /** Total queue-wait ever attributed (ticks). */
    sim::Tick totalWaitTicks() const { return totalWait_; }
    /** Total blame ever assigned (ticks); == totalWaitTicks() always. */
    sim::Tick totalBlameTicks() const { return totalBlame_; }
    /** Waiting ops attributed. */
    std::uint64_t waitedOps() const { return waitedOps_; }
    /** Occupancy segments dropped by the per-key bound. */
    std::uint64_t droppedSegments() const { return droppedSegments_; }

    // --- queries (tests + heatmap) ---

    /** Blame @p victim accumulated against @p aggressor on @p kind. */
    sim::Tick blameTicks(TenantId victim, TenantId aggressor,
                         ResourceKind kind) const;
    /** As above, summed over every resource kind. */
    sim::Tick blameTicks(TenantId victim, TenantId aggressor) const;

    /** The aggressor with the most blame against @p victim on @p kind
     *  (kUntracked when the victim never waited there). */
    TenantId dominantAggressor(TenantId victim, ResourceKind kind) const;

    /** Windows in which @p tenant completed at least one op. */
    std::uint64_t activeWindows(TenantId tenant) const;
    /** Active windows whose p99 exceeded the tenant's SLO target
     *  (always 0 without a target). */
    std::uint64_t burnWindows(TenantId tenant) const;

    /**
     * Reset accumulated accounting (matrix, SLO windows, occupancy
     * segments, totals) while keeping tenants, resources, SLO targets and
     * the enable state — the harness calls this between warm-up and the
     * measured run so the exported row covers exactly one job.
     */
    void resetAccounting();

    /** Approximate heap bytes retained (size-based, deterministic). */
    std::uint64_t retainedBytes() const;

    // --- export ---

    /**
     * One self-contained JSON object on a single line (JSONL row for
     * BENCH_interference.json): tenant table, matrix cells with exact
     * blame_ns + per-window splits, per-tenant SLO series with burn
     * flags, per-resource totals, and the wait/blame invariant fields.
     */
    void writeJsonRow(std::ostream &os, const std::string &label,
                      std::uint64_t seed) const;

    /**
     * Victim×aggressor ASCII heatmap (blame summed over resources),
     * with per-victim dominant resource annotations.
     */
    void renderAsciiHeatmap(std::ostream &os) const;

  private:
    /** One recorded occupancy interval. kOpenEnd marks a held lock. */
    static constexpr sim::Tick kOpenEnd =
        std::numeric_limits<sim::Tick>::max();
    struct Segment
    {
        sim::Tick start = 0;
        sim::Tick end = 0;
        TenantId tenant = kUntracked;
    };

    struct Resource
    {
        sim::NodeId node = 0;
        ResourceKind kind = ResourceKind::NicTx;
        sim::Tick waitTicks = 0;
        std::uint64_t waitedOps = 0;
        /** key (0 for pipes/cores; stripe for locks) -> FIFO segments. */
        // draid-lint: cap(kMaxSegmentsPerKey per key; keys bounded by live stripes)
        std::map<std::uint64_t, std::deque<Segment>> segs;
    };

    /** One matrix cell: lifetime total + per-window split. */
    struct Cell
    {
        sim::Tick total = 0;
        // draid-lint: cap(kMaxWindows; width doubles on overflow)
        std::map<std::int64_t, sim::Tick> byWindow;
    };

    /** Stride-decimated latency sample set (bounded, deterministic). */
    struct SampleSet
    {
        // draid-lint: cap(SampleSet::cap; stride-decimated on overflow)
        std::vector<sim::Tick> samples;
        std::uint64_t seq = 0;
        std::uint64_t stride = 1;
        std::size_t cap = kWindowSampleCap;

        void push(sim::Tick latency);
        void mergeFrom(const SampleSet &other);
        /** Nearest-rank percentile over retained samples; 0 if empty. */
        sim::Tick percentile(double p) const;
    };

    struct SloWindow
    {
        std::uint64_t ops = 0;
        std::uint64_t bytes = 0;
        sim::Tick latencySum = 0;
        SampleSet lat;
    };

    struct Tenant
    {
        std::string name;
        sim::Tick sloTarget = 0; ///< p99 target in ticks; 0 = none
        std::uint64_t ops = 0;
        std::uint64_t bytes = 0;
        sim::Tick latencySum = 0;
        SampleSet lat;
        // draid-lint: cap(kMaxWindows; width doubles on overflow)
        std::map<std::int64_t, SloWindow> windows;
    };

    std::int64_t windowOf(sim::Tick tick) const
    {
        return static_cast<std::int64_t>(tick / windowTicks_);
    }
    void addBlame(TenantId victim, TenantId aggressor, ResourceKind kind,
                  std::int64_t window, sim::Tick ticks);
    void touchWindow(std::int64_t window);
    /** Double the window width and merge retained windows pairwise until
     *  the observed span fits kMaxWindows again. */
    void widenWindows();

    bool enabled_ = false;
    sim::Tick windowTicks_ = kDefaultWindowTicks;
    sim::Tick baseWindowTicks_ = kDefaultWindowTicks;
    std::uint64_t windowMerges_ = 0;
    std::int64_t minWindow_ = 0;
    std::int64_t maxWindow_ = -1; ///< < minWindow_ means none observed
    MetricsRegistry *metrics_ = nullptr;

    /** Index is the tenant id; [0] is "untracked". */
    // draid-lint: cap(kMaxTenants + 2)
    std::vector<Tenant> tenants_;
    TenantId overflowTenant_ = 0; ///< lazily created "other" id
    TenantId current_ = kUntracked;

    // draid-lint: cap(kMaxLiveOps; oldest evicted)
    std::map<std::uint64_t, TenantId> liveOps_;
    // draid-lint: cap(one entry per registered resource; fixed topology)
    std::vector<Resource> resources_;
    // draid-lint: cap((kMaxTenants + 2)^2 x resource kinds)
    std::map<std::tuple<TenantId, TenantId, std::uint8_t>, Cell> matrix_;

    sim::Tick totalWait_ = 0;
    sim::Tick totalBlame_ = 0;
    std::uint64_t waitedOps_ = 0;
    std::uint64_t droppedSegments_ = 0;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_INTERFERENCE_H
