#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>

#include "telemetry/trace.h"

namespace draid::telemetry {

namespace {

/**
 * Live recorders, for the crash handlers. The simulation is
 * single-threaded; construction/destruction order is the only concern.
 */
std::vector<FlightRecorder *> &
liveRecorders()
{
    static std::vector<FlightRecorder *> live;
    return live;
}

std::string &
crashTracePath()
{
    static std::string path;
    return path;
}

void
copyName(char (&dst)[24], const char *src)
{
    std::snprintf(dst, sizeof(dst), "%s", src);
}

void
dumpEverythingToStderr(const char *why)
{
    // fprintf only: the abort path must not allocate more than it has to.
    std::fprintf(stderr, "\n=== FLIGHT RECORDER post-mortem (%s) ===\n",
                 why);
    std::ostringstream oss;
    FlightRecorder::dumpAll(oss);
    std::fputs(oss.str().c_str(), stderr);
    std::fflush(stderr);

    if (!crashTracePath().empty()) {
        std::ofstream f(crashTracePath());
        if (f) {
            // One trace per recorder would collide; dump the newest (the
            // cluster under test) which holds the relevant window.
            if (!liveRecorders().empty())
                liveRecorders().back()->writeChromeTrace(f);
            std::fprintf(stderr, "flight recorder: Chrome trace saved to "
                                 "%s\n",
                         crashTracePath().c_str());
        }
    }
}

void (*g_prevAbort)(int) = SIG_DFL;
void (*g_prevSegv)(int) = SIG_DFL;
std::terminate_handler g_prevTerminate = nullptr;

void
onFatalSignal(int sig)
{
    // Restore the previous disposition first so a second fault (or the
    // re-raise below) terminates instead of recursing.
    std::signal(SIGABRT, g_prevAbort);
    std::signal(SIGSEGV, g_prevSegv);
    dumpEverythingToStderr(sig == SIGABRT ? "abort" : "fatal signal");
    std::raise(sig);
}

[[noreturn]] void
onTerminate()
{
    dumpEverythingToStderr("std::terminate");
    if (g_prevTerminate)
        g_prevTerminate();
    std::abort();
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1))
{
    liveRecorders().push_back(this);
}

FlightRecorder::~FlightRecorder()
{
    auto &live = liveRecorders();
    live.erase(std::remove(live.begin(), live.end(), this), live.end());
}

std::size_t
FlightRecorder::size() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(total_, ring_.size()));
}

void
FlightRecorder::push(const Record &rec)
{
    ring_[total_ % ring_.size()] = rec;
    ++total_;
}

void
FlightRecorder::record(const TraceSpan &span)
{
    if (!enabled_)
        return;
    Record rec;
    rec.traceId = span.traceId;
    rec.node = span.node;
    rec.tenant = span.tenant;
    rec.lane = span.lane;
    copyName(rec.name, span.name.c_str());
    rec.start = span.start;
    rec.end = span.end;
    push(rec);
}

void
FlightRecorder::note(const char *name, std::uint64_t id, sim::NodeId node,
                     sim::Tick tick)
{
    if (!enabled_)
        return;
    Record rec;
    rec.traceId = id;
    rec.node = node;
    rec.lane = "event";
    copyName(rec.name, name);
    rec.start = tick;
    rec.end = tick;
    push(rec);
}

void
FlightRecorder::noteAbnormal(const char *name, std::uint64_t id,
                             sim::NodeId node, sim::Tick tick)
{
    note(name, id, node, tick);
    if (enabled_ && dumpOnAbnormal_ && abnormalDumps_ < 3) {
        ++abnormalDumps_;
        std::cerr << "\n=== FLIGHT RECORDER post-mortem (" << name
                  << ") ===\n";
        dump(std::cerr);
        std::cerr.flush();
    }
}

std::vector<FlightRecorder::Record>
FlightRecorder::snapshot() const
{
    std::vector<Record> out;
    const std::size_t n = size();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(total_ - n + i) % ring_.size()]);
    return out;
}

void
FlightRecorder::dump(std::ostream &os, std::size_t max_records) const
{
    const auto records = snapshot();
    const std::size_t n = std::min(records.size(), max_records);
    os << "flight recorder: " << records.size() << " records held, "
       << total_ << " total; last " << n << ":\n";
    char line[160];
    for (std::size_t i = records.size() - n; i < records.size(); ++i) {
        const Record &r = records[i];
        std::snprintf(line, sizeof(line),
                      "  [%12" PRId64 " .. %12" PRId64 " ns] node%-3u "
                      "%-7s %-22s trace=%" PRIu64 " tenant=%u\n",
                      r.start, r.end, r.node, r.lane, r.name, r.traceId,
                      r.tenant);
        os << line;
    }
}

void
FlightRecorder::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const Record &r : snapshot()) {
        if (!first)
            os << ",";
        first = false;
        char buf[224];
        std::snprintf(buf, sizeof(buf),
                      "\n{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"flight\","
                      "\"pid\":%u,\"tid\":\"%s\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"args\":{\"trace\":%" PRIu64 ",\"tenant\":%u}}",
                      r.name, r.node, r.lane,
                      static_cast<double>(r.start) / 1000.0,
                      static_cast<double>(r.end >= r.start ? r.end - r.start
                                                           : 0) /
                          1000.0,
                      r.traceId, r.tenant);
        os << buf;
    }
    os << "\n]}";
}

void
FlightRecorder::clear()
{
    total_ = 0;
    abnormalDumps_ = 0;
}

void
FlightRecorder::dumpAll(std::ostream &os, std::size_t max_records)
{
    if (liveRecorders().empty()) {
        os << "flight recorder: no live recorders\n";
        return;
    }
    for (FlightRecorder *fr : liveRecorders())
        fr->dump(os, max_records);
}

void
FlightRecorder::installCrashHandlers()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    g_prevAbort = std::signal(SIGABRT, onFatalSignal);
    g_prevSegv = std::signal(SIGSEGV, onFatalSignal);
    g_prevTerminate = std::set_terminate(onTerminate);
}

void
FlightRecorder::setCrashTracePath(std::string path)
{
    crashTracePath() = std::move(path);
}

} // namespace draid::telemetry
