#include "telemetry/sim_profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

namespace draid::telemetry {

namespace {

/** Label shown for schedule() call sites that carry no tag. */
const char *const kUnlabeled = "(unlabeled)";

} // namespace

std::uint64_t
SimProfiler::hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::size_t
SimProfiler::binFor(std::size_t v)
{
    std::size_t b = 0;
    while (v > 1 && b + 1 < kHistBins) {
        v >>= 1;
        ++b;
    }
    return b;
}

std::size_t
SimProfiler::slotFor(const char *label)
{
    if (label == nullptr)
        label = kUnlabeled;
    // The engine fires the same handful of label pointers millions of
    // times; a one-entry cache makes the common case a pointer compare.
    if (label == lastLabel_)
        return lastSlot_;
    auto it = slotIndex_.find(label);
    std::size_t idx;
    if (it != slotIndex_.end()) {
        idx = it->second;
    } else {
        idx = slots_.size();
        slots_.push_back(Slot{label, 0, 0, 0, 0});
        slotIndex_.emplace(label, idx);
    }
    lastLabel_ = label;
    lastSlot_ = idx;
    return idx;
}

void
SimProfiler::onSchedule(sim::Ticks, const char *, std::size_t pending)
{
    ++scheduled_;
    maxQueueDepth_ = std::max(maxQueueDepth_, pending);
    ++depthHist_[binFor(pending)];
}

void
SimProfiler::onBatchDrain(sim::Ticks, std::size_t batch, std::size_t)
{
    ++drains_;
    maxBatch_ = std::max(maxBatch_, batch);
    ++batchHist_[binFor(batch)];
}

void
SimProfiler::onEventStart(sim::Ticks, const char *label)
{
    eventSlot_ = slotFor(label);
    inEvent_ = true;
    eventStartNs_ = hostNowNs();
}

void
SimProfiler::onEventEnd()
{
    const std::uint64_t end = hostNowNs();
    if (!inEvent_)
        return;
    inEvent_ = false;
    ++events_;
    const std::uint64_t ns =
        end >= eventStartNs_ ? end - eventStartNs_ : 0;
    Slot &slot = slots_[eventSlot_];
    ++slot.count;
    slot.totalNs += ns;
    slot.minNs = slot.count == 1 ? ns : std::min(slot.minNs, ns);
    slot.maxNs = std::max(slot.maxNs, ns);
}

void
SimProfiler::onRunStart()
{
    inRun_ = true;
    runStartNs_ = hostNowNs();
}

void
SimProfiler::onRunEnd()
{
    const std::uint64_t end = hostNowNs();
    if (!inRun_)
        return;
    inRun_ = false;
    wallNs_ += end >= runStartNs_ ? end - runStartNs_ : 0;
}

void
SimProfiler::addExternalCost(const std::string &label, std::uint64_t count,
                             std::uint64_t total_ns)
{
    if (count == 0)
        return;
    externals_.push_back(Slot{label, count, total_ns, 0, 0});
}

SimProfiler::Report
SimProfiler::report() const
{
    Report r;
    r.events = events_;
    r.scheduled = scheduled_;
    r.drains = drains_;
    r.wallNs = wallNs_;
    r.eventsPerSec = wallNs_ > 0 ? static_cast<double>(events_) * 1e9 /
                                       static_cast<double>(wallNs_)
                                 : 0.0;
    r.maxQueueDepth = maxQueueDepth_;
    r.maxBatch = maxBatch_;
    r.depthHist.assign(depthHist_, depthHist_ + kHistBins);
    r.batchHist.assign(batchHist_, batchHist_ + kHistBins);

    // Distinct string literals can carry equal text from different
    // translation units; merge slots by name before ranking.
    std::map<std::string, LabelCost> merged;
    std::uint64_t attributed = 0;
    const auto fold = [&merged](const Slot &s) {
        LabelCost &c = merged[s.name];
        c.label = s.name;
        c.minNs = c.count == 0 ? s.minNs : std::min(c.minNs, s.minNs);
        c.maxNs = std::max(c.maxNs, s.maxNs);
        c.count += s.count;
        c.totalNs += s.totalNs;
    };
    for (const Slot &s : slots_) {
        if (s.count == 0)
            continue;
        fold(s);
        attributed += s.totalNs;
    }
    // External rows (telemetry.* self-timing) rank alongside engine
    // labels but stay out of the denominator: their ns were spent inside
    // event callbacks and are already counted under the enclosing label.
    for (const Slot &s : externals_) {
        if (s.count == 0)
            continue;
        fold(s);
    }
    for (auto &[name, cost] : merged) {
        cost.meanNs = cost.count > 0 ? static_cast<double>(cost.totalNs) /
                                           static_cast<double>(cost.count)
                                     : 0.0;
        cost.share = attributed > 0
                         ? static_cast<double>(cost.totalNs) /
                               static_cast<double>(attributed)
                         : 0.0;
        r.sources.push_back(cost);
    }
    std::sort(r.sources.begin(), r.sources.end(),
              [](const LabelCost &a, const LabelCost &b) {
                  if (a.totalNs != b.totalNs)
                      return a.totalNs > b.totalNs;
                  return a.label < b.label;
              });
    return r;
}

void
SimProfiler::writeJson(std::ostream &os, const Report &report,
                       const std::string &bench, std::uint64_t seed,
                       const TelemetryOverhead *overhead)
{
    char buf[256];
    os << "{\"bench\":\"" << bench << "\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"seed\":%llu,\"events\":%llu,\"wall_ns\":%llu"
                  ",\"events_per_sec\":%.1f",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(report.events),
                  static_cast<unsigned long long>(report.wallNs),
                  report.eventsPerSec);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"heap_stats\":{\"pushes\":%llu,\"pops\":%llu,"
                  "\"batches\":%llu,\"max_queue_depth\":%zu,"
                  "\"max_batch\":%zu",
                  static_cast<unsigned long long>(report.scheduled),
                  static_cast<unsigned long long>(report.events),
                  static_cast<unsigned long long>(report.drains),
                  report.maxQueueDepth, report.maxBatch);
    os << buf;
    // Histograms as [bin_floor, count] pairs; zero bins elided so the
    // row stays compact and new depth regimes are obvious in diffs.
    const auto histogram = [&os](const char *key,
                                 const std::vector<std::uint64_t> &bins) {
        os << ",\"" << key << "\":[";
        bool first = true;
        for (std::size_t b = 0; b < bins.size(); ++b) {
            if (bins[b] == 0)
                continue;
            if (!first)
                os << ",";
            first = false;
            os << "[" << binFloor(b) << "," << bins[b] << "]";
        }
        os << "]";
    };
    histogram("queue_depth_hist", report.depthHist);
    histogram("batch_size_hist", report.batchHist);
    os << "}";
    {
        static const TelemetryOverhead kZero;
        const TelemetryOverhead &t = overhead != nullptr ? *overhead
                                                         : kZero;
        const double hostShare =
            report.wallNs > 0 ? static_cast<double>(t.hostNs) /
                                    static_cast<double>(report.wallNs)
                              : 0.0;
        std::snprintf(buf, sizeof(buf),
                      ",\"telemetry_overhead\":{\"host_ns\":%llu,"
                      "\"host_share\":%.4f,\"retained_bytes\":%llu,"
                      "\"spans_retained\":%llu,\"spans_dropped\":%llu,"
                      "\"spans_sampled_out\":%llu",
                      static_cast<unsigned long long>(t.hostNs), hostShare,
                      static_cast<unsigned long long>(t.retainedBytes),
                      static_cast<unsigned long long>(t.spansRetained),
                      static_cast<unsigned long long>(t.spansDropped),
                      static_cast<unsigned long long>(t.spansSampledOut));
        os << buf;
        std::snprintf(buf, sizeof(buf),
                      ",\"counters_retained\":%llu,"
                      "\"counters_dropped\":%llu,\"exemplars\":%llu,"
                      "\"sample_period\":%llu}",
                      static_cast<unsigned long long>(t.countersRetained),
                      static_cast<unsigned long long>(t.countersDropped),
                      static_cast<unsigned long long>(t.exemplars),
                      static_cast<unsigned long long>(t.samplePeriod));
        os << buf;
    }
    os << ",\"top_sources\":[";
    bool first = true;
    for (const LabelCost &c : report.sources) {
        if (!first)
            os << ",";
        first = false;
        std::snprintf(buf, sizeof(buf),
                      "{\"label\":\"%s\",\"count\":%llu,"
                      "\"total_ns\":%llu,\"min_ns\":%llu,\"max_ns\":%llu,"
                      "\"mean_ns\":%.1f,\"share\":%.4f}",
                      c.label.c_str(),
                      static_cast<unsigned long long>(c.count),
                      static_cast<unsigned long long>(c.totalNs),
                      static_cast<unsigned long long>(c.minNs),
                      static_cast<unsigned long long>(c.maxNs), c.meanNs,
                      c.share);
        os << buf;
    }
    os << "]}\n";
}

void
SimProfiler::renderAscii(std::ostream &os, const Report &report,
                         const std::string &title, std::size_t top_k)
{
    char buf[160];
    os << "\n## engine profile: " << title << "\n";
    std::snprintf(buf, sizeof(buf),
                  "## %llu events in %.1f ms host time = %.0f events/sec "
                  "(%llu scheduled, %llu batches)\n",
                  static_cast<unsigned long long>(report.events),
                  static_cast<double>(report.wallNs) / 1e6,
                  report.eventsPerSec,
                  static_cast<unsigned long long>(report.scheduled),
                  static_cast<unsigned long long>(report.drains));
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "## max queue depth %zu, max same-tick batch %zu\n",
                  report.maxQueueDepth, report.maxBatch);
    os << buf;
    std::snprintf(buf, sizeof(buf), "## %-18s %12s %10s %10s %10s %7s\n",
                  "source", "count", "mean(ns)", "min(ns)", "max(ns)",
                  "share");
    os << buf;
    std::size_t shown = 0;
    for (const LabelCost &c : report.sources) {
        if (top_k > 0 && shown >= top_k)
            break;
        ++shown;
        std::snprintf(buf, sizeof(buf),
                      "## %-18s %12llu %10.1f %10llu %10llu %6.1f%%\n",
                      c.label.c_str(),
                      static_cast<unsigned long long>(c.count), c.meanNs,
                      static_cast<unsigned long long>(c.minNs),
                      static_cast<unsigned long long>(c.maxNs),
                      c.share * 100.0);
        os << buf;
    }
    if (shown < report.sources.size()) {
        std::snprintf(buf, sizeof(buf), "## ... %zu more source(s)\n",
                      report.sources.size() - shown);
        os << buf;
    }
}

} // namespace draid::telemetry
