/**
 * @file
 * Cluster event journal: typed, tick-stamped records of the rare but
 * load-bearing events of a run — drive failures, rebuild lifecycle,
 * degraded reads, scrub passes, stripe-lock convoys, hot-spare swaps.
 *
 * The journal answers "what happened when" at cluster granularity, the
 * layer between per-op spans (one op) and end-of-run aggregates (whole
 * run). Overlaid on the windowed performance timeline it makes regime
 * transitions visible: the Fig. 17 foreground dip sits exactly between
 * the RebuildStarted and RebuildCompleted records.
 *
 * Same discipline as the flight recorder: a fixed-size ring of
 * fixed-size records (no heap per event), observe-only — recording never
 * touches the Simulator, so an enabled journal cannot perturb event
 * ordering (the determinism guard test covers it). The ring overwrites
 * the oldest record, bounding memory on arbitrarily long runs.
 */

#ifndef DRAID_TELEMETRY_EVENT_JOURNAL_H
#define DRAID_TELEMETRY_EVENT_JOURNAL_H

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/types.h"

namespace draid::telemetry {

/**
 * Event vocabulary. The two payload words `a`/`b` are typed per event;
 * see the per-enumerator comments.
 */
enum class EventType : std::uint8_t
{
    kDriveFailed = 0,    ///< a = member device index
    kDriveRecovered,     ///< a = member device index (failed state cleared)
    kTargetDown,         ///< a = cluster target index (taken off the fabric)
    kTargetRecovered,    ///< a = cluster target index (back on the fabric)
    kRebuildStarted,     ///< a = stripes to rebuild, b = chunk bytes
    kRebuildProgress,    ///< a = stripes done, b = stripes total
    kRebuildCompleted,   ///< a = stripes done, b = failures
    kScrubPass,          ///< a = stripe, b = 0 clean / 1 inconsistent / 2 repaired
    kDegradedReadServed, ///< a = stripe, b = reconstructed bytes
    kStripeLockConvoy,   ///< a = stripe, b = waiters queued behind the holder
    kHotSpareSwap,       ///< a = member device index, b = spare target index
    kOpTimeout,          ///< a = operation id
    kSlowDriveDetected,  ///< a = target index, b = latency factor x100
    kLatentSectorError,  ///< a = media byte offset, b = byte length
    kTargetFlap,         ///< a = target index, b = down/up cycles
    kSwitchPortDegraded, ///< a = fabric node, b = remaining goodput %
    kDataLoss,           ///< a = device or stripe, b = 0 drives / 1 stripe
};

inline constexpr std::size_t kNumEventTypes = 17;

/** Stable short name: "DriveFailed", "RebuildStarted", ... */
const char *eventTypeName(EventType t);

/** Bounded ring of cluster events. */
class EventJournal
{
  public:
    /** One fixed-size record. */
    struct Event
    {
        EventType type = EventType::kDriveFailed;
        sim::NodeId node = 0; ///< emitting node (host for controller events)
        sim::Tick tick = 0;
        std::uint64_t a = 0; ///< payload word, typed per EventType
        std::uint64_t b = 0; ///< payload word, typed per EventType
    };

    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit EventJournal(std::size_t capacity = kDefaultCapacity);

    /**
     * The journal ships enabled: events are orders of magnitude rarer
     * than spans and the ring write is a few stores. setEnabled(false)
     * makes every record() a no-op (the determinism guard compares an
     * enabled run against a disabled one).
     */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    std::size_t capacity() const { return ring_.size(); }
    /** Records currently held (== capacity once the ring has wrapped). */
    std::size_t size() const;
    /** Total records ever pushed (size() + overwritten). */
    std::uint64_t totalRecorded() const { return total_; }

    /** Append one event. No-op while disabled. */
    void record(EventType type, sim::NodeId node, sim::Tick tick,
                std::uint64_t a = 0, std::uint64_t b = 0);

    /** The retained events, oldest first. */
    std::vector<Event> snapshot() const;

    /**
     * The retained events whose tick lies in [from, to), oldest first.
     * Used to attach journal context to one measured job's window.
     */
    std::vector<Event> snapshotRange(sim::Tick from, sim::Tick to) const;

    /**
     * JSONL export: one {"tick","type","node","a","b"} object per line,
     * oldest first.
     */
    void writeJsonl(std::ostream &os) const;

    void clear();

  private:
    bool enabled_ = true;
    // draid-lint: cap(capacity ctor arg; ring overwrite, never grows)
    std::vector<Event> ring_;
    std::size_t next_ = 0;    ///< slot the next record lands in
    std::uint64_t total_ = 0; ///< records ever pushed
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_EVENT_JOURNAL_H
