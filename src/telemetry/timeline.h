/**
 * @file
 * Windowed performance timeline: bins completed user ops into fixed tick
 * windows (goodput, IOPS, p50/p99 latency per window), re-bins the
 * utilization sampler's busy fractions onto the same windows, flags
 * unhealthy windows (stalls, cross-server utilization imbalance), and
 * renders the result as JSON or as an ASCII sparkline with the event
 * journal's markers overlaid.
 *
 * This is the behaviour-over-time pillar of the telemetry subsystem: a
 * per-op span explains one op, the end-of-run aggregates summarize the
 * whole run, the timeline shows the regimes in between — the Fig. 17
 * foreground-goodput dip while a rebuild runs, degraded-mode transitions
 * after a drive failure, load staying (or not staying) balanced.
 *
 * Everything here is a pure function of already-recorded telemetry
 * (spans, journal events, sampler samples); nothing touches the
 * Simulator, so building a timeline cannot perturb event ordering.
 */

#ifndef DRAID_TELEMETRY_TIMELINE_H
#define DRAID_TELEMETRY_TIMELINE_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"
#include "telemetry/event_journal.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace draid::telemetry {

/** One fixed-width window of completed-op statistics. */
struct TimelineWindow
{
    sim::Tick start = 0; ///< window covers [start, start + width)
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    double goodputMBps = 0.0;
    double kiops = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
};

/** One (node, counter) utilization series re-binned onto the windows. */
struct UtilizationSeries
{
    sim::NodeId node = 0;
    std::string name; ///< e.g. "ssd.util"
    // draid-lint: cap(kMaxBins windows after coalescing)
    std::vector<double> perWindow;
};

/** Unhealthy windows found by the detector. */
struct HealthFlags
{
    /** Windows with zero completions strictly between active windows. */
    // draid-lint: cap(kMaxBins; subset of report windows)
    std::vector<std::size_t> stalledWindows;

    /** One server far busier than its peers on the same resource. */
    struct Imbalance
    {
        std::size_t window = 0;
        std::string name; ///< the utilization counter, e.g. "ssd.util"
        sim::NodeId node = 0;
        double maxUtil = 0.0;
        double meanUtil = 0.0; ///< mean of the *other* nodes' series
    };
    // draid-lint: cap(at most one per node pair flagged; kMaxBins windows)
    std::vector<Imbalance> imbalances;
};

/**
 * Bins op completions into fixed tick windows. Feed it either raw
 * (end tick, latency, bytes) triples or a recorded span stream; windows
 * between the first and last completion that saw no ops still appear
 * (zero-filled) so stalls stay visible.
 *
 * Built to be fed *incrementally* at op completion (it implements
 * OpCompletionSink), with memory bounded independent of op count:
 *  - op and byte totals per bin are exact, always;
 *  - per-bin latency samples are capped (kLatencySampleCap); on overflow
 *    the retained set is decimated in place (keep 1-in-stride, stride
 *    doubled), so percentiles degrade gracefully to a deterministic
 *    uniform subsample instead of truncating the tail;
 *  - with window_ticks == 0 the bin width adapts to the (unknown) run
 *    length: it starts at 1 us and doubles — merging bins pairwise —
 *    whenever the bin span would exceed kMaxBins.
 * Every decision is a pure function of the fed sequence: no RNG, no
 * clock, byte-identical across runs.
 */
class WindowedAggregator : public OpCompletionSink
{
  public:
    /** Retained latency samples per bin before stride decimation. */
    static constexpr std::size_t kLatencySampleCap = 512;
    /** Bin budget in adaptive (window_ticks == 0) mode. */
    static constexpr std::size_t kMaxBins = 256;
    /** Adaptive mode's starting bin width. */
    static constexpr sim::Tick kAutoBaseTicks = sim::kMicrosecond;

    /** @param window_ticks bin width; zero selects the adaptive mode */
    explicit WindowedAggregator(sim::Ticks window_ticks);

    sim::Ticks windowTicks() const { return sim::Ticks{windowTicks_}; }
    std::uint64_t opsAdded() const { return opsAdded_; }

    /** Record one completed op. */
    void addOp(sim::Ticks end, sim::Ticks latency, std::uint64_t bytes);

    /** OpCompletionSink: stream one completed root op in. */
    void onOpComplete(const TraceSpan &root, std::uint64_t bytes) override
    {
        addOp(sim::Ticks{root.end}, sim::Ticks{root.end - root.start},
              bytes);
    }

    /**
     * Record every root op from a span stream: spans on the "op" lane,
     * using the span's [start, end) as the latency window and its
     * "bytes" arg as the payload size. Non-op spans are ignored.
     */
    void addOpSpans(const std::vector<TraceSpan> &spans);

    /**
     * Produce the contiguous window series covering every added op
     * (empty if none were added). Goodput/IOPS use the window width as
     * the denominator; percentiles use the nearest-rank method over the
     * retained (possibly decimated) samples; ops/bytes are exact.
     */
    std::vector<TimelineWindow> finalize() const;

    /** As finalize(), but covering at least [from, to). */
    std::vector<TimelineWindow> finalize(sim::Ticks from,
                                         sim::Ticks to) const;

    /** finalize() re-binned so at most @p max_windows windows remain
     *  (adjacent bins merged by an integral factor). */
    struct Coalesced
    {
        sim::Tick windowTicks = 0;
        // draid-lint: cap(kMaxBins; adaptive coalescing enforces it)
        std::vector<TimelineWindow> windows;
    };
    Coalesced coalesce(std::size_t max_windows) const;

    /** Latency samples dropped by per-bin decimation (totals stay exact). */
    std::uint64_t droppedLatencySamples() const { return droppedSamples_; }

    /** Approximate heap bytes retained (size-based, deterministic). */
    std::uint64_t retainedBytes() const;

  private:
    struct Accum
    {
        std::uint64_t bytes = 0;
        std::uint64_t ops = 0; ///< exact, even when samples are decimated
        // draid-lint: cap(kLatencySampleCap; decimated on overflow)
        std::vector<sim::Tick> latencies; ///< 1-in-stride retained subset
        std::uint64_t stride = 1;
        std::uint64_t seen = 0; ///< samples offered to this bin
    };

    /** Decimate one bin to half its retained samples (stride doubling). */
    static void decimateBin(Accum &bin, std::uint64_t &dropped);
    /** Adaptive mode: double the bin width, merging bins pairwise. */
    void widenBins();
    /** Window series for an arbitrary bin map (shared by finalize and
     *  coalesce). */
    static std::vector<TimelineWindow>
    makeWindows(const std::map<std::int64_t, Accum> &bins,
                sim::Ticks window_ticks, std::int64_t first,
                std::int64_t last);

    // Raw Tick here is storage, not API: the tick-unit rule covers
    // parameters and returns; retained state stays on the wire format.
    sim::Tick windowTicks_;
    bool adaptive_ = false;
    std::uint64_t opsAdded_ = 0;
    std::uint64_t droppedSamples_ = 0;
    // draid-lint: cap(kMaxBins; adaptive coalescing merges on overflow)
    std::map<std::int64_t, Accum> bins_; ///< window index -> accum
};

/**
 * Average the sampler's busy-fraction samples per window. Windows with
 * no sample carry the previous window's value (utilization is a
 * continuous quantity; the sampler may tick slower than the timeline).
 */
std::vector<UtilizationSeries>
binUtilization(const std::vector<UtilizationSampler::Sample> &samples,
               sim::Ticks from, sim::Ticks window_ticks,
               std::size_t num_windows);

/**
 * Flag stalled windows and cross-server utilization imbalance. A window
 * is imbalanced on a counter when at least three nodes report it, the
 * busiest is above 0.4, and it exceeds 2.5x the mean of the others.
 * @p host_node is excluded from imbalance checks (the host is *supposed*
 * to be the busiest NIC in host-centric baselines).
 */
HealthFlags detectHealth(const std::vector<TimelineWindow> &windows,
                         const std::vector<UtilizationSeries> &util,
                         sim::NodeId host_node);

/** The full timeline of one measured job. */
struct TimelineReport
{
    sim::Tick windowTicks = 0;
    sim::Tick startTick = 0; ///< start of windows[0]
    // draid-lint: cap(kMaxBins; adaptive coalescing enforces it)
    std::vector<TimelineWindow> windows;
    // draid-lint: cap(journal capacity; ring-bounded source)
    std::vector<EventJournal::Event> events; ///< within the window range
    // draid-lint: cap(one series per node lane; fixed topology)
    std::vector<UtilizationSeries> utilization;
    HealthFlags health;
};

/**
 * Assemble a report from recorded telemetry. @p window_ticks == 0
 * auto-sizes to ~64 windows over the op completion range. Events and
 * samples outside the covered range are dropped.
 */
TimelineReport buildTimeline(const std::vector<TraceSpan> &spans,
                             const std::vector<EventJournal::Event> &events,
                             const std::vector<UtilizationSampler::Sample>
                                 &samples,
                             sim::Ticks window_ticks,
                             sim::NodeId host_node);

/**
 * As above, but from an incrementally-fed aggregator instead of a
 * retained span stream — the scale path: windowed stats stay exact (the
 * sink saw every completion) even when trace sampling retains almost no
 * spans. The aggregator's bins are coalesced to at most ~64 windows.
 */
TimelineReport buildTimeline(const WindowedAggregator &agg,
                             const std::vector<EventJournal::Event> &events,
                             const std::vector<UtilizationSampler::Sample>
                                 &samples,
                             sim::NodeId host_node);

/** One JSON object (windows + events + utilization + health), no newline. */
void writeTimelineJson(std::ostream &os, const TimelineReport &report);

/**
 * Terminal report: a goodput sparkline, one column per window, with the
 * journal's event markers overlaid on a second row, then a legend and
 * the health summary. Pure ASCII, '#'-prefixed (safe for stderr next to
 * diffable figure stdout).
 */
void renderTimelineAscii(std::ostream &os, const TimelineReport &report,
                         const std::string &title);

/** Single-character marker for the ASCII event row ('F', 'R', 'C'...). */
char eventMarker(EventType t);

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_TIMELINE_H
