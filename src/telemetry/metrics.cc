#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace draid::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds))
{
    assert(std::is_sorted(bounds_.begin(), bounds_.end()));
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::observe(double sample)
{
    std::size_t i = 0;
    while (i < bounds_.size() && sample > bounds_[i])
        ++i;
    ++counts_[i];
    ++count_;
    sum_ += sample;
    if (count_ == 1) {
        min_ = max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
}

std::vector<double>
latencyBucketsUs()
{
    // 1us .. ~1s in half-decade steps; covers queueing collapse tails.
    return {1,    2,    5,     10,    20,    50,     100,    200,    500,
            1000, 2000, 5000,  10000, 20000, 50000,  100000, 200000, 500000,
            1000000};
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
    return it->second;
}

void
MetricsRegistry::probe(const std::string &name, std::function<double()> fn)
{
    probes_[name] = std::move(fn);
}

bool
MetricsRegistry::hasCounter(const std::string &name) const
{
    return counters_.contains(name);
}

bool
MetricsRegistry::hasProbe(const std::string &name) const
{
    return probes_.contains(name);
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
MetricsRegistry::probeValue(const std::string &name) const
{
    auto it = probes_.find(name);
    return it == probes_.end() ? 0.0 : it->second();
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[n, c] : counters_)
        out.push_back(n);
    for (const auto &[n, g] : gauges_)
        out.push_back(n);
    for (const auto &[n, h] : histograms_)
        out.push_back(n);
    for (const auto &[n, p] : probes_)
        out.push_back(n);
    std::sort(out.begin(), out.end());
    return out;
}

namespace {

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c; break;
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "0";
        return;
    }
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
        os << static_cast<std::int64_t>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{";

    os << "\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            os << ",";
        first = false;
        writeJsonString(os, name);
        os << ":" << c.value();
    }
    os << "},";

    os << "\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            os << ",";
        first = false;
        writeJsonString(os, name);
        os << ":";
        writeJsonNumber(os, g.value());
    }
    os << "},";

    os << "\"probes\":{";
    first = true;
    for (const auto &[name, fn] : probes_) {
        if (!first)
            os << ",";
        first = false;
        writeJsonString(os, name);
        os << ":";
        writeJsonNumber(os, fn());
    }
    os << "},";

    os << "\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            os << ",";
        first = false;
        writeJsonString(os, name);
        os << ":{\"count\":" << h.count() << ",\"sum\":";
        writeJsonNumber(os, h.sum());
        os << ",\"min\":";
        writeJsonNumber(os, h.min());
        os << ",\"max\":";
        writeJsonNumber(os, h.max());
        os << ",\"bounds\":[";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            if (i)
                os << ",";
            writeJsonNumber(os, h.bounds()[i]);
        }
        os << "],\"buckets\":[";
        for (std::size_t i = 0; i < h.bucketCounts().size(); ++i) {
            if (i)
                os << ",";
            os << h.bucketCounts()[i];
        }
        os << "]}";
    }
    os << "}";

    os << "}";
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

} // namespace draid::telemetry
