/**
 * @file
 * Telemetry facade: one object bundling the metrics registry, the per-op
 * tracer, and the utilization sampler, with file export helpers.
 *
 * A Cluster (or baseline rig) owns one Telemetry instance and hands
 * MetricScope views to its components. The bench harness flips the tracer
 * and sampler on when `--trace=` / `--metrics-json=` are passed and saves
 * the artifacts when the system under test is torn down.
 */

#ifndef DRAID_TELEMETRY_TELEMETRY_H
#define DRAID_TELEMETRY_TELEMETRY_H

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "telemetry/event_journal.h"
#include "telemetry/exemplar.h"
#include "telemetry/interference.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace draid::telemetry {

/**
 * Periodic sampler of busy fractions (NIC tx/rx, SSD channel, CPU core).
 *
 * Pull-based and observe-only: it installs a clock observer on the
 * Simulator, which fires as the run loop advances the clock. No events are
 * scheduled, so enabling the sampler cannot perturb event ordering — the
 * determinism guard test relies on this.
 */
class UtilizationSampler
{
  public:
    struct Sample
    {
        sim::NodeId node;
        std::string name; ///< e.g. "nic.tx.util"
        sim::Tick tick;
        double value; ///< busy fraction over the preceding window, [0,1]
    };

    /**
     * Register a busy-tick source. @p busy must return cumulative busy
     * ticks (monotone non-decreasing) and outlive the sampler.
     */
    void addSource(sim::NodeId node, std::string name,
                   std::function<sim::Ticks()> busy);

    /**
     * Begin sampling every @p interval ticks. Also mirrors samples into
     * @p tracer as Chrome "C" counter events when it is enabled.
     */
    void start(sim::Simulator &sim, sim::Ticks interval,
               Tracer *tracer = nullptr);

    bool started() const { return interval_ > sim::Ticks::zero(); }

    const std::vector<Sample> &samples() const { return samples_; }

    /** Sampler hook, exposed for tests; called by the clock observer. */
    void onClockAdvance(sim::Ticks now);

    /** Default bound on retained samples (all sources together). */
    static constexpr std::size_t kDefaultSampleCap = 65'536;

    /**
     * Bound on retained samples. Hitting it halves resolution instead of
     * truncating: retained rounds are merged pairwise (values averaged
     * over the doubled window) and every 2nd future boundary is skipped,
     * so coverage stays end-to-end and memory stays O(cap). The busy-tick
     * window math self-corrects across skipped boundaries (a skipped
     * round's busy ticks are charged to the next emitted window).
     */
    void setSampleCap(std::size_t cap)
    {
        sampleCap_ = cap == 0 ? 1 : cap;
    }
    /** Samples lost to round merging or boundary skipping. */
    std::uint64_t droppedSamples() const { return droppedSamples_; }
    /** Current boundary emit stride (1 until the cap is first hit). */
    std::uint64_t emitStride() const { return emitStride_; }

    /** Approximate heap bytes retained (size-based, deterministic). */
    std::uint64_t retainedBytes() const;

  private:
    struct Source
    {
        sim::NodeId node;
        std::string name;
        std::function<sim::Ticks()> busy;
        sim::Ticks lastBusy;
    };

    /** Merge retained rounds pairwise and double the emit stride. */
    void mergeSampleRounds();

    // draid-lint: cap(one entry per registered resource lane)
    std::vector<Source> sources_;
    // draid-lint: cap(sampleCap_; rounds merged pairwise on overflow)
    std::vector<Sample> samples_;
    sim::Ticks interval_;
    sim::Ticks nextSample_;
    sim::Ticks lastEmit_;
    std::size_t sampleCap_ = kDefaultSampleCap;
    std::uint64_t emitStride_ = 1;
    std::uint64_t rounds_ = 0; ///< interval boundaries reached
    std::uint64_t droppedSamples_ = 0;
    Tracer *tracer_ = nullptr;
};

/** The bundle a Cluster owns. */
class Telemetry
{
  public:
    /**
     * The flight recorder ships enabled: its ring write is cheap enough
     * to be always-on, and an abnormal event (abort, op timeout, failed
     * assertion) can then always produce a post-mortem.
     */
    Telemetry()
    {
        tracer_.bindFlightRecorder(&recorder_);
        tracer_.bindExemplars(&exemplars_);
        contention_.bindMetrics(&metrics_);
    }

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }
    UtilizationSampler &sampler() { return sampler_; }
    const UtilizationSampler &sampler() const { return sampler_; }
    FlightRecorder &flightRecorder() { return recorder_; }
    const FlightRecorder &flightRecorder() const { return recorder_; }
    EventJournal &journal() { return journal_; }
    const EventJournal &journal() const { return journal_; }
    /** Tail-exemplar reservoir (disabled until the harness enables it). */
    ExemplarReservoir &exemplars() { return exemplars_; }
    const ExemplarReservoir &exemplars() const { return exemplars_; }
    /** Per-tenant contention attribution (disabled until enabled). */
    ContentionTracker &contention() { return contention_; }
    const ContentionTracker &contention() const { return contention_; }

    /**
     * Approximate heap bytes retained across every telemetry store
     * (tracer spans/counters/pending chains, exemplars, sampler rounds,
     * flight-recorder ring, journal ring). Size-based and a pure function
     * of recorded telemetry, so deterministic across runs — this is the
     * retained_bytes figure in the bench JSON's telemetry_overhead block.
     */
    std::uint64_t retainedTelemetryBytes() const;

    /** Root scope; components derive their own via scope("node3") etc. */
    MetricScope root() { return MetricScope(metrics_, ""); }

    /**
     * Snapshot metrics + utilization timelines as one JSON object:
     * {"metrics":{...},"timelines":[{"node","name","samples":[[t,v],..]}]}.
     */
    void writeMetricsJson(std::ostream &os) const;

    /** Write the metrics snapshot to @p path. @return false on I/O error. */
    bool saveMetricsJson(const std::string &path) const;

    /** Write the Chrome trace to @p path. @return false on I/O error. */
    bool saveChromeTrace(const std::string &path) const;

  private:
    MetricsRegistry metrics_;
    Tracer tracer_;
    UtilizationSampler sampler_;
    FlightRecorder recorder_;
    EventJournal journal_;
    ExemplarReservoir exemplars_;
    ContentionTracker contention_;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_TELEMETRY_H
