/**
 * @file
 * Per-operation trace spans with Chrome trace_event export.
 *
 * Every user I/O gets a trace id minted at the array entry point
 * (DraidHost or a baseline); the id rides in proto::Capsule (simulation
 * metadata — never charged to the wire) so every hop — host queue, NIC tx,
 * fabric pipe, server CPU, SSD channel, reduce engine, completion —
 * records a timed span against the deterministic sim clock.
 *
 * Design rules, enforced by construction:
 *  - Zero overhead when off: mint() returns 0 while neither export tracing
 *    nor the flight recorder is active, and every recording call is gated
 *    on a nonzero id, so the fully-dark path costs one predictable branch.
 *  - Observe only, never schedule: recording appends to an in-memory
 *    vector; the tracer holds no Simulator reference and cannot create
 *    events, so enabling tracing cannot perturb event ordering.
 *
 * Export is Chrome trace_event JSON ("X" complete events + "C" counter
 * samples + "M" metadata), loadable in chrome://tracing or Perfetto.
 */

#ifndef DRAID_TELEMETRY_TRACE_H
#define DRAID_TELEMETRY_TRACE_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"
#include "telemetry/flight_recorder.h"

namespace draid::telemetry {

/** One timed span on one node's lane. */
struct TraceSpan
{
    std::uint64_t traceId = 0; ///< 0 = not tied to a user op
    sim::NodeId node = 0;      ///< Chrome pid
    const char *lane = "";     ///< Chrome tid name: "op", "nic.tx", "ssd"...
    std::string name;          ///< e.g. "draid.write", "ssd.read"
    sim::Tick start = 0;
    sim::Tick end = 0;
    /** Small key/value payload shown in the trace viewer. */
    std::vector<std::pair<std::string, std::string>> args;
};

/** One sample of a counter timeline (utilization plots). */
struct CounterSample
{
    sim::NodeId node = 0;
    std::string name; ///< e.g. "nic.tx.util"
    sim::Tick tick = 0;
    double value = 0.0;
};

/** Span sink + trace-id mint. */
class Tracer
{
  public:
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Whether recording sites should build spans: export tracing is on OR
     * an attached flight recorder wants the stream. This is the gate every
     * recording site checks; enabled() gates retention/export only.
     */
    bool
    active() const
    {
        return enabled_ || (recorder_ && recorder_->enabled());
    }

    /** Next per-op trace id; 0 while inactive. Ids start at 1. */
    std::uint64_t
    mint()
    {
        return active() ? nextId_++ : 0;
    }

    /**
     * Append one span. Always mirrored into the attached flight recorder's
     * ring; retained for export only while enabled() and under the span
     * cap.
     */
    void recordSpan(TraceSpan span);

    /** Attach a flight recorder that shadows every recorded span. */
    void bindFlightRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }
    FlightRecorder *flightRecorder() const { return recorder_; }

    /** Append one counter sample (utilization timelines). */
    void recordCounter(sim::NodeId node, std::string name, sim::Tick tick,
                       double value);

    /** Human name for a node ("host0", "node3"), used as process_name. */
    void setNodeName(sim::NodeId node, std::string name);

    const std::vector<TraceSpan> &spans() const { return spans_; }
    const std::vector<CounterSample> &counterSamples() const
    {
        return counters_;
    }
    std::uint64_t droppedSpans() const { return dropped_; }

    /**
     * Bound on retained spans; further spans are counted but dropped so a
     * long bench with tracing on cannot exhaust memory.
     */
    void setSpanCap(std::size_t cap) { spanCap_ = cap; }

    /** Emit the whole trace as Chrome trace_event JSON. */
    void writeChromeTrace(std::ostream &os) const;
    std::string toChromeTraceJson() const;

    void clear();

  private:
    bool enabled_ = false;
    FlightRecorder *recorder_ = nullptr;
    std::uint64_t nextId_ = 1;
    std::size_t spanCap_ = 4'000'000;
    std::uint64_t dropped_ = 0;
    std::vector<TraceSpan> spans_;
    std::vector<CounterSample> counters_;
    std::map<sim::NodeId, std::string> nodeNames_;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_TRACE_H
