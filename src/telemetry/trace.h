/**
 * @file
 * Per-operation trace spans with Chrome trace_event export.
 *
 * Every user I/O gets a trace id minted at the array entry point
 * (DraidHost or a baseline); the id rides in proto::Capsule (simulation
 * metadata — never charged to the wire) so every hop — host queue, NIC tx,
 * fabric pipe, server CPU, SSD channel, reduce engine, completion —
 * records a timed span against the deterministic sim clock.
 *
 * Design rules, enforced by construction:
 *  - Zero overhead when off: mint() returns 0 while neither export tracing
 *    nor the flight recorder is active, and every recording call is gated
 *    on a nonzero id, so the fully-dark path costs one predictable branch.
 *  - Observe only, never schedule: recording appends to an in-memory
 *    vector; the tracer holds no Simulator reference and cannot create
 *    events, so enabling tracing cannot perturb event ordering.
 *
 * Export is Chrome trace_event JSON ("X" complete events + "C" counter
 * samples + "M" metadata), loadable in chrome://tracing or Perfetto.
 */

#ifndef DRAID_TELEMETRY_TRACE_H
#define DRAID_TELEMETRY_TRACE_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/sampling.h"

namespace draid::telemetry {

class ExemplarReservoir;

/** One timed span on one node's lane. */
struct TraceSpan
{
    std::uint64_t traceId = 0; ///< 0 = not tied to a user op
    sim::NodeId node = 0;      ///< Chrome pid
    const char *lane = "";     ///< Chrome tid name: "op", "nic.tx", "ssd"...
    std::string name;          ///< e.g. "draid.write", "ssd.read"
    sim::Tick start = 0;
    sim::Tick end = 0;
    /** Owning tenant (ContentionTracker id); 0 = untracked. */
    std::uint32_t tenant = 0;
    /** Small key/value payload shown in the trace viewer. */
    // draid-lint: cap(a few key/value pairs per span; call sites add O(1))
    std::vector<std::pair<std::string, std::string>> args;
};

/** One sample of a counter timeline (utilization plots). */
struct CounterSample
{
    sim::NodeId node = 0;
    std::string name; ///< e.g. "nic.tx.util"
    sim::Tick tick = 0;
    double value = 0.0;
};

/**
 * Sink notified once per completed user op (root span on the "op" lane).
 * The streaming timeline aggregator implements this so windowed stats see
 * EVERY completion even when sampling drops the op's spans from retention.
 */
class OpCompletionSink
{
  public:
    virtual ~OpCompletionSink() = default;
    /** @p bytes parsed from the root span's "bytes" arg (0 if absent). */
    virtual void onOpComplete(const TraceSpan &root, std::uint64_t bytes) = 0;
};

/** Span sink + trace-id mint. */
class Tracer
{
  public:
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Whether recording sites should build spans: export tracing is on OR
     * an attached flight recorder wants the stream. This is the gate every
     * recording site checks; enabled() gates retention/export only.
     */
    bool
    active() const
    {
        return enabled_ || (recorder_ && recorder_->enabled());
    }

    /** Next per-op trace id; 0 while inactive. Ids start at 1. */
    std::uint64_t
    mint()
    {
        return active() ? nextId_++ : 0;
    }

    /**
     * Append one span. Always mirrored into the attached flight recorder's
     * ring; retained for export only while enabled(), the trace id is
     * sampled, and the span cap is not hit.
     */
    void recordSpan(TraceSpan span);

    /**
     * Append the root "op" span of a completed user op. Beyond the normal
     * recordSpan() path this (in order): notifies the bound
     * OpCompletionSink, offers the op — with its buffered sub-span chain —
     * to the bound exemplar reservoir, then retains the span like any
     * other. Array entry points (DraidHost, HostCentricRaid) call this
     * instead of recordSpan() for the root span.
     */
    void recordOpCompletion(TraceSpan span);

    /** Streaming consumer of op completions (nullptr detaches). */
    void bindOpSink(OpCompletionSink *sink) { opSink_ = sink; }

    /** Tail-exemplar reservoir fed at op completion (nullptr detaches).
     *  While the reservoir is enabled the tracer buffers every traced
     *  sub-span per op so a kept exemplar carries its whole chain. */
    void bindExemplars(ExemplarReservoir *reservoir)
    {
        exemplars_ = reservoir;
    }
    ExemplarReservoir *exemplars() const { return exemplars_; }

    /**
     * Deterministic head sampling: retain spans of 1-in-@p period trace
     * ids, decided by the seeded hash of the id (sampling.h) — never by
     * the engine RNG, so enabling sampling cannot perturb the simulation
     * and the sampled set is byte-identical across runs. 0/1 disables.
     * Orthogonal to mint(): ids are minted for every op regardless, and
     * id 0 is always kept.
     */
    void setSamplePeriod(std::uint64_t period)
    {
        samplePeriod_ = period == 0 ? 1 : period;
    }
    std::uint64_t samplePeriod() const { return samplePeriod_; }
    /** Keep decision for @p traceId under the current period. */
    bool sampled(std::uint64_t traceId) const
    {
        return traceSampled(traceId, samplePeriod_);
    }
    /** Spans skipped by the sampling decision (not an overflow drop). */
    std::uint64_t sampledOutSpans() const { return sampledOut_; }

    /** Attach a flight recorder that shadows every recorded span. */
    void bindFlightRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }
    FlightRecorder *flightRecorder() const { return recorder_; }

    /** Append one counter sample (utilization timelines). */
    void recordCounter(sim::NodeId node, std::string name, sim::Tick tick,
                       double value);

    /** Human name for a node ("host0", "node3"), used as process_name. */
    void setNodeName(sim::NodeId node, std::string name);

    const std::vector<TraceSpan> &spans() const { return spans_; }
    const std::vector<CounterSample> &counterSamples() const
    {
        return counters_;
    }
    std::uint64_t droppedSpans() const { return dropped_; }
    std::uint64_t droppedCounters() const { return droppedCounters_; }

    /**
     * Bound on retained spans; further spans are counted but dropped so a
     * long bench with tracing on cannot exhaust memory.
     */
    void setSpanCap(std::size_t cap) { spanCap_ = cap; }

    /**
     * Bound on retained counter samples. Unlike the span cap, hitting it
     * does not truncate the tail: the retained set is decimated in place
     * (every 2nd sample per series dropped, stride doubled), so coverage
     * stays end-to-end at reduced resolution and memory stays O(cap).
     */
    void setCounterCap(std::size_t cap)
    {
        counterCap_ = cap == 0 ? 1 : cap;
    }
    /** Current per-series keep stride (1 until the cap is first hit). */
    std::uint64_t counterStride() const { return counterStride_; }

    /**
     * Host-clock self-timing of the recording paths, for the
     * telemetry.* rows and the telemetry_overhead block in
     * BENCH_simcore.json. Off by default (two clock reads per span are
     * not free); the harness enables it only when profiling. Wall-clock
     * reads are legal here — src/telemetry/ is the lint-exempt scope —
     * and never influence what is recorded.
     */
    void setSelfTiming(bool on) { selfTiming_ = on; }
    struct SelfCost
    {
        std::uint64_t calls = 0;
        std::uint64_t ns = 0;
    };
    const SelfCost &spanCost() const { return spanCost_; }
    const SelfCost &opCost() const { return opCost_; }
    const SelfCost &counterCost() const { return counterCost_; }

    /** Approximate heap bytes retained (spans + counters + pending
     *  exemplar chains; size-based, so deterministic across runs). */
    std::uint64_t retainedBytes() const;

    /** Emit the whole trace as Chrome trace_event JSON. */
    void writeChromeTrace(std::ostream &os) const;
    std::string toChromeTraceJson() const;

    void clear();

  private:
    /** Shared retention path; @p completion marks a root op span (already
     *  routed through sink/reservoir, so no pending-chain stash). */
    void ingestSpan(TraceSpan span, bool completion);
    /** Buffer a sub-span until its op completes (exemplar chains). */
    void stashPending(const TraceSpan &span);
    /** Halve retained counter resolution (stride doubling). */
    void decimateCounters();

    bool enabled_ = false;
    FlightRecorder *recorder_ = nullptr;
    std::uint64_t nextId_ = 1;
    std::size_t spanCap_ = 4'000'000;
    std::uint64_t dropped_ = 0;
    std::uint64_t sampledOut_ = 0;
    std::uint64_t samplePeriod_ = 1;
    std::size_t counterCap_ = 262'144;
    std::uint64_t counterStride_ = 1;
    std::uint64_t droppedCounters_ = 0;
    bool selfTiming_ = false;
    SelfCost spanCost_;
    SelfCost opCost_;
    SelfCost counterCost_;
    OpCompletionSink *opSink_ = nullptr;
    ExemplarReservoir *exemplars_ = nullptr;
    // draid-lint: cap(spanCap_; recording stops at the cap)
    std::vector<TraceSpan> spans_;
    // draid-lint: cap(counterCap_; stride decimation past the cap)
    std::vector<CounterSample> counters_;
    /** Per-series arrival index driving the counter keep stride. */
    std::map<std::pair<sim::NodeId, std::string>, std::uint64_t>
        // draid-lint: cap(one entry per (node, series); code-defined set)
        counterSeq_;
    /** In-flight sub-span chains keyed by trace id, kept only while an
     *  enabled reservoir is bound; bounded by kPendingOpCap (oldest —
     *  smallest id — evicted first). */
    // draid-lint: cap(kPendingOpCap; oldest evicted)
    std::map<std::uint64_t, std::vector<TraceSpan>> pendingChains_;
    static constexpr std::size_t kPendingOpCap = 1024;
    // draid-lint: cap(one name per registered node; fixed topology)
    std::map<sim::NodeId, std::string> nodeNames_;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_TRACE_H
