/**
 * @file
 * Tail-exemplar reservoir: the K slowest ops per timeline window, kept
 * with their FULL span chains.
 *
 * Head sampling (sampling.h) is blind to latency — at 1/1000 it keeps one
 * p99.9 outlier per million ops, which is not enough to explain a tail
 * regression. The reservoir is the complement: every completed op is
 * *offered* at completion, and the K slowest per fixed tick window are
 * retained whole (root span + every sub-span recorded under its trace
 * id), so the critical-path analyzer can still produce an exact phase
 * breakdown for the outliers no matter how aggressive sampling is.
 *
 * Bounds, all deterministic:
 *  - at most K exemplars per window, displaced only by a strictly slower
 *    op (ties keep the earlier op — smaller trace id — so insertion
 *    order cannot leak in);
 *  - at most maxWindows windows; the oldest window is evicted whole when
 *    the budget is exceeded, so retained bytes are O(K * maxWindows *
 *    chain length) regardless of run length.
 *
 * Like everything in src/telemetry/: observe-only, no Simulator access,
 * no RNG, no wall clock on the recording path — the exemplar set is a
 * pure function of the span stream and is byte-compared across double
 * runs in CI.
 */

#ifndef DRAID_TELEMETRY_EXEMPLAR_H
#define DRAID_TELEMETRY_EXEMPLAR_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.h"
#include "telemetry/trace.h"

namespace draid::telemetry {

/** Bounded reservoir of the K slowest ops per tick window. */
class ExemplarReservoir
{
  public:
    /** One retained slow op: its root span plus the whole chain. */
    struct Exemplar
    {
        std::uint64_t traceId = 0;
        std::string name; ///< root span name, e.g. "draid.read"
        sim::Tick start = 0;
        sim::Tick end = 0;
        std::uint64_t bytes = 0;
        std::uint32_t tenant = 0; ///< owning tenant; 0 = untracked
        /** Every span recorded under the trace id, in record order; the
         *  root op span is last. */
        // draid-lint: cap(spans of a single op; bounded op fan-out)
        std::vector<TraceSpan> chain;

        sim::Tick latency() const { return end - start; }
    };

    static constexpr sim::Tick kDefaultWindowTicks = sim::kMillisecond;
    static constexpr std::size_t kDefaultPerWindow = 4;
    static constexpr std::size_t kDefaultMaxWindows = 256;

    explicit ExemplarReservoir(sim::Tick window_ticks = kDefaultWindowTicks,
                               std::size_t per_window = kDefaultPerWindow,
                               std::size_t max_windows = kDefaultMaxWindows);

    /** The reservoir ships disarmed; the tracer skips chain buffering
     *  entirely while it is off. */
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    sim::Tick windowTicks() const { return windowTicks_; }
    std::size_t perWindow() const { return perWindow_; }

    /**
     * Offer one completed op. Keeps it (with @p chain) when its window
     * has a free slot or the op is strictly slower than the window's
     * current fastest exemplar. @return true when retained.
     */
    bool offer(const TraceSpan &root, std::uint64_t bytes,
               std::vector<TraceSpan> chain);

    /**
     * Append a span recorded *after* its op completed (e.g. a straggler
     * ack) to an exemplar still holding the trace id. @return false when
     * the id is not retained (caller drops the span).
     */
    bool appendIfHeld(const TraceSpan &span);

    /** Exemplars currently held. */
    std::size_t size() const;

    std::uint64_t offered() const { return offered_; }
    std::uint64_t kept() const { return kept_; }
    /** Exemplars displaced by slower ops or evicted with old windows. */
    std::uint64_t evicted() const { return evicted_; }
    std::uint64_t windowsEvicted() const { return windowsEvicted_; }

    /**
     * Exemplars whose root completed in [from, to), slowest first (ties
     * by ascending trace id). Pointers are valid until the next mutation.
     */
    std::vector<const Exemplar *> collect(sim::Tick from, sim::Tick to) const;

    /** All exemplars, oldest window first, slowest first within one. */
    std::vector<const Exemplar *> all() const;

    /** Approximate heap bytes retained (size-based, deterministic). */
    std::uint64_t retainedBytes() const;

    void clear();

  private:
    struct Window
    {
        // draid-lint: cap(per-window slot budget; worst evicted on overflow)
        std::vector<Exemplar> slots; ///< unordered; collect() sorts
    };

    sim::Tick windowTicks_;
    std::size_t perWindow_;
    std::size_t maxWindows_;
    bool enabled_ = false;
    std::uint64_t offered_ = 0;
    std::uint64_t kept_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t windowsEvicted_ = 0;
    // draid-lint: cap(retained window span; oldest windows evicted)
    std::map<std::int64_t, Window> windows_; ///< window index -> slots
    /** trace id -> (window index, slot) for appendIfHeld. */
    // draid-lint: cap(mirrors live slots across retained windows)
    std::map<std::uint64_t, std::pair<std::int64_t, std::size_t>> held_;
};

/** Approximate heap footprint of one span (size-based, deterministic). */
std::uint64_t approxSpanBytes(const TraceSpan &span);

/**
 * One JSON line per exemplar (oldest window first, slowest first within a
 * window): trace id, window, latency, an exact per-phase breakdown of the
 * chain from the critical-path analyzer, and the dominant phase.
 */
void writeExemplarsJsonl(std::ostream &os, const ExemplarReservoir &res);

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_EXEMPLAR_H
