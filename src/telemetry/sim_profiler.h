/**
 * @file
 * SimProfiler: host wall-clock attribution for the simulator core.
 *
 * Everything else in src/telemetry/ measures *simulated* time; this class
 * is the one instrument pointed at the engine itself. It implements the
 * observe-only sim::EngineObserver hook and, per event label, accounts
 * the host nanoseconds spent inside event callbacks, plus event-heap
 * statistics (push/pop counts, queue-depth and same-tick-batch-size
 * histograms) and overall engine throughput (events per host second).
 *
 * The ROADMAP item-1 speedup work compares BENCH_simcore.json artifacts
 * produced from these reports; the numbers here are the baseline a ≥10×
 * events/sec claim must beat.
 *
 * Design constraints:
 *  - Observe-only: attaching a profiler must leave simulated output
 *    byte-identical. The profiler never schedules events and never
 *    touches simulation state; it only reads the hook arguments.
 *  - Wall-clock reads live here (src/telemetry/) and nowhere else — the
 *    draid-lint wall-clock rule enforces that the engine and components
 *    stay host-time-free. Consequently wall-clock numbers appear only in
 *    BENCH_simcore.json, which CI excludes from the byte-compare
 *    determinism gate (a timing-stripped projection is compared instead).
 */

#ifndef DRAID_TELEMETRY_SIM_PROFILER_H
#define DRAID_TELEMETRY_SIM_PROFILER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"

namespace draid::telemetry {

/** Wall-clock attribution for the engine. One instance may observe many
 *  Simulators sequentially (the bench harness reuses one across systems
 *  under test); counters accumulate across all of them. */
class SimProfiler final : public sim::EngineObserver
{
  public:
    /** Histogram bin count: bin b holds values v with 2^b <= v < 2^(b+1),
     *  so 24 bins cover depths up to ~16M events. */
    static constexpr std::size_t kHistBins = 24;

    /** Per-label cost row of a report. */
    struct LabelCost
    {
        std::string label;
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
        std::uint64_t minNs = 0;
        std::uint64_t maxNs = 0;
        double meanNs = 0.0;
        double share = 0.0; ///< fraction of attributed event time
    };

    /** End-of-run attribution snapshot. */
    struct Report
    {
        std::uint64_t events = 0;    ///< callbacks executed under a run
        std::uint64_t scheduled = 0; ///< pushes observed
        std::uint64_t drains = 0;    ///< same-tick batches drained
        std::uint64_t wallNs = 0;    ///< host ns inside run()/runUntil()
        double eventsPerSec = 0.0;   ///< events / wallNs, in Hz
        std::size_t maxQueueDepth = 0;
        std::size_t maxBatch = 0;
        // draid-lint: cap(kHistBins)
        std::vector<std::uint64_t> depthHist; ///< kHistBins log2 bins
        // draid-lint: cap(kHistBins)
        std::vector<std::uint64_t> batchHist; ///< kHistBins log2 bins
        /** All labels (not just top-K), sorted by totalNs descending,
         *  ties broken by label so equal-cost rows order stably. */
        // draid-lint: cap(one row per profiled label; code-defined set)
        std::vector<LabelCost> sources;
    };

    /** Install this profiler as @p sim's engine observer. */
    void attach(sim::Simulator &sim) { sim.setEngineObserver(this); }

    /** Log2 histogram bin for @p v (v >= 1; 0 maps to bin 0). */
    static std::size_t binFor(std::size_t v);

    /** Lower bound of histogram bin @p b (1, 2, 4, 8, ...). */
    static std::uint64_t binFloor(std::size_t b) { return 1ull << b; }

    // sim::EngineObserver — observe-only, called from the engine.
    void onSchedule(sim::Ticks when, const char *label,
                    std::size_t pending) override;
    void onBatchDrain(sim::Ticks when, std::size_t batch,
                      std::size_t heap_before) override;
    void onEventStart(sim::Ticks now, const char *label) override;
    void onEventEnd() override;
    void onRunStart() override;
    void onRunEnd() override;

    /**
     * Fold in a cost measured outside the engine-observer hooks — the
     * telemetry.* self-timing rows (Tracer::SelfCost). External rows are
     * ranked alongside engine labels but excluded from the share
     * denominator: telemetry recording runs *inside* event callbacks, so
     * its ns are already attributed to the enclosing label, and its share
     * reads as "fraction of attributed event time spent recording".
     */
    void addExternalCost(const std::string &label, std::uint64_t count,
                         std::uint64_t total_ns);

    /** Build the attribution snapshot from everything observed so far. */
    Report report() const;

    /** The bench-row telemetry_overhead block: what observability itself
     *  cost, in host ns and retained heap bytes. */
    struct TelemetryOverhead
    {
        std::uint64_t hostNs = 0; ///< self-timed recording-path ns
        std::uint64_t retainedBytes = 0;
        std::uint64_t spansRetained = 0;
        std::uint64_t spansDropped = 0;
        std::uint64_t spansSampledOut = 0;
        std::uint64_t countersRetained = 0;
        std::uint64_t countersDropped = 0;
        std::uint64_t exemplars = 0;
        std::uint64_t samplePeriod = 1;
    };

    /**
     * One BENCH_simcore.json row: {"bench","seed","events","wall_ns",
     * "events_per_sec","heap_stats","telemetry_overhead","top_sources"}.
     * "top_sources" holds every label (cost-sorted) so a timing-stripped
     * projection of the file — drop the *_ns / *_per_sec / host-time
     * fields, sort labels by name — is deterministic and CI-comparable
     * across runs. The telemetry_overhead block is always present (all
     * zeros when @p overhead is null) so consumers can key on it.
     */
    static void writeJson(std::ostream &os, const Report &report,
                          const std::string &bench, std::uint64_t seed,
                          const TelemetryOverhead *overhead = nullptr);

    /** Human report: engine totals + top-K hot sources as an ASCII table. */
    static void renderAscii(std::ostream &os, const Report &report,
                            const std::string &title,
                            std::size_t top_k = 12);

  private:
    struct Slot
    {
        std::string name;
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
        std::uint64_t minNs = 0;
        std::uint64_t maxNs = 0;
    };

    /** Slot index for an event label (pointer-cached; merged by name). */
    std::size_t slotFor(const char *label);

    /** Monotonic host clock, ns. The only wall-clock read in the repo
     *  outside FlightRecorder's crash path. */
    static std::uint64_t hostNowNs();

    // draid-lint: cap(one slot per static label site; code-defined set)
    std::vector<Slot> slots_;
    // draid-lint: cap(one row per addExternalCost label; code-defined set)
    std::vector<Slot> externals_; ///< addExternalCost rows
    // draid-lint: cap(mirrors slots_; code-defined label set)
    std::unordered_map<const void *, std::size_t> slotIndex_;
    const char *lastLabel_ = nullptr; ///< one-entry lookup cache
    std::size_t lastSlot_ = 0;

    std::uint64_t scheduled_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t drains_ = 0;
    std::size_t maxQueueDepth_ = 0;
    std::size_t maxBatch_ = 0;
    std::uint64_t depthHist_[kHistBins] = {};
    std::uint64_t batchHist_[kHistBins] = {};

    std::uint64_t wallNs_ = 0;
    std::uint64_t runStartNs_ = 0;
    std::uint64_t eventStartNs_ = 0;
    std::size_t eventSlot_ = 0;
    bool inRun_ = false;
    bool inEvent_ = false;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_SIM_PROFILER_H
