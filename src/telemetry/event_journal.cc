#include "telemetry/event_journal.h"

#include <algorithm>
#include <cassert>

namespace draid::telemetry {

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::kDriveFailed: return "DriveFailed";
      case EventType::kDriveRecovered: return "DriveRecovered";
      case EventType::kTargetDown: return "TargetDown";
      case EventType::kTargetRecovered: return "TargetRecovered";
      case EventType::kRebuildStarted: return "RebuildStarted";
      case EventType::kRebuildProgress: return "RebuildProgress";
      case EventType::kRebuildCompleted: return "RebuildCompleted";
      case EventType::kScrubPass: return "ScrubPass";
      case EventType::kDegradedReadServed: return "DegradedReadServed";
      case EventType::kStripeLockConvoy: return "StripeLockConvoy";
      case EventType::kHotSpareSwap: return "HotSpareSwap";
      case EventType::kOpTimeout: return "OpTimeout";
      case EventType::kSlowDriveDetected: return "SlowDriveDetected";
      case EventType::kLatentSectorError: return "LatentSectorError";
      case EventType::kTargetFlap: return "TargetFlap";
      case EventType::kSwitchPortDegraded: return "SwitchPortDegraded";
      case EventType::kDataLoss: return "DataLoss";
    }
    return "?";
}

EventJournal::EventJournal(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1))
{
}

std::size_t
EventJournal::size() const
{
    return std::min<std::uint64_t>(total_, ring_.size());
}

void
EventJournal::record(EventType type, sim::NodeId node, sim::Tick tick,
                     std::uint64_t a, std::uint64_t b)
{
    if (!enabled_)
        return;
    Event &e = ring_[next_];
    e.type = type;
    e.node = node;
    e.tick = tick;
    e.a = a;
    e.b = b;
    next_ = (next_ + 1) % ring_.size();
    ++total_;
}

std::vector<EventJournal::Event>
EventJournal::snapshot() const
{
    std::vector<Event> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest record: the write cursor once the ring has wrapped, else 0.
    const std::size_t first = total_ > ring_.size() ? next_ : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(first + i) % ring_.size()]);
    return out;
}

std::vector<EventJournal::Event>
EventJournal::snapshotRange(sim::Tick from, sim::Tick to) const
{
    std::vector<Event> out;
    for (const Event &e : snapshot()) {
        if (e.tick >= from && e.tick < to)
            out.push_back(e);
    }
    return out;
}

void
EventJournal::writeJsonl(std::ostream &os) const
{
    for (const Event &e : snapshot()) {
        os << "{\"tick\":" << e.tick << ",\"type\":\""
           << eventTypeName(e.type) << "\",\"node\":" << e.node
           << ",\"a\":" << e.a << ",\"b\":" << e.b << "}\n";
    }
}

void
EventJournal::clear()
{
    next_ = 0;
    total_ = 0;
}

} // namespace draid::telemetry
