#include "telemetry/critical_path.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace draid::telemetry {

namespace {

/** Ticks are nanoseconds; summaries report microseconds. */
double
toUs(sim::Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sim::kMicrosecond);
}

/** Nearest-rank percentile of an already-sorted tick sample vector. */
double
percentileUs(const std::vector<sim::Tick> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    const double rank = pct / 100.0 * static_cast<double>(sorted.size());
    std::size_t idx = static_cast<std::size_t>(rank);
    if (static_cast<double>(idx) < rank)
        ++idx; // ceil
    if (idx > 0)
        --idx; // 1-based rank -> 0-based index
    idx = std::min(idx, sorted.size() - 1);
    return toUs(sorted[idx]);
}

/** A clamped resource span inside one op's window. */
struct Interval
{
    sim::Tick start;
    sim::Tick end;
    Phase phase;
};

/**
 * Max total duration over non-overlapping subsets (weighted interval
 * scheduling). Intervals may overlap arbitrarily across lanes.
 */
sim::Tick
longestChain(std::vector<Interval> ivs)
{
    if (ivs.empty())
        return 0;
    std::sort(ivs.begin(), ivs.end(),
              [](const Interval &a, const Interval &b) {
                  return a.end < b.end;
              });
    const std::size_t n = ivs.size();
    std::vector<sim::Tick> dp(n + 1, 0);
    std::vector<sim::Tick> ends(n);
    for (std::size_t i = 0; i < n; ++i)
        ends[i] = ivs[i].end;
    for (std::size_t i = 0; i < n; ++i) {
        // Last interval ending at or before this one's start.
        const auto it = std::upper_bound(ends.begin(),
                                         ends.begin() +
                                             static_cast<std::ptrdiff_t>(i),
                                         ivs[i].start);
        const std::size_t p =
            static_cast<std::size_t>(it - ends.begin());
        dp[i + 1] = std::max(dp[i],
                             dp[p] + (ivs[i].end - ivs[i].start));
    }
    return dp[n];
}

/** Exact partition of [start, end) across phases by boundary sweep. */
void
partition(sim::Tick start, sim::Tick end, const std::vector<Interval> &ivs,
          std::array<sim::Tick, kNumPhases> &out)
{
    std::vector<sim::Tick> bounds;
    bounds.reserve(2 * ivs.size() + 2);
    bounds.push_back(start);
    bounds.push_back(end);
    for (const Interval &iv : ivs) {
        bounds.push_back(iv.start);
        bounds.push_back(iv.end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        const sim::Tick lo = bounds[i];
        const sim::Tick hi = bounds[i + 1];
        Phase best = Phase::kQueue;
        for (const Interval &iv : ivs) {
            if (iv.start <= lo && iv.end >= hi && iv.phase > best)
                best = iv.phase;
        }
        out[static_cast<std::size_t>(best)] += hi - lo;
    }
}

/** Union length of a set of intervals (resource busy time). */
sim::Tick
unionLength(std::vector<std::pair<sim::Tick, sim::Tick>> ivs)
{
    if (ivs.empty())
        return 0;
    std::sort(ivs.begin(), ivs.end());
    sim::Tick total = 0;
    sim::Tick curLo = ivs.front().first;
    sim::Tick curHi = ivs.front().second;
    for (std::size_t i = 1; i < ivs.size(); ++i) {
        if (ivs[i].first > curHi) {
            total += curHi - curLo;
            curLo = ivs[i].first;
            curHi = ivs[i].second;
        } else {
            curHi = std::max(curHi, ivs[i].second);
        }
    }
    total += curHi - curLo;
    return total;
}

/** Lanes that model an occupiable resource (verdict candidates). */
bool
isResourceLane(std::string_view lane)
{
    return lane == "nic.tx" || lane == "nic.rx" || lane == "cpu" ||
           lane == "ssd";
}

} // namespace

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::kQueue:
        return "queue";
    case Phase::kLockWait:
        return "lock";
    case Phase::kFabric:
        return "fabric";
    case Phase::kNic:
        return "nic";
    case Phase::kCpu:
        return "cpu";
    case Phase::kReduce:
        return "reduce";
    case Phase::kSsd:
        return "ssd";
    }
    return "?";
}

Phase
classifySpan(const TraceSpan &span)
{
    const std::string_view lane(span.lane);
    if (lane == "ssd")
        return Phase::kSsd;
    if (lane == "cpu") {
        return span.name.rfind("reduce.", 0) == 0 ? Phase::kReduce
                                                  : Phase::kCpu;
    }
    if (lane == "nic.tx" || lane == "nic.rx")
        return Phase::kNic;
    if (lane == "fabric")
        return Phase::kFabric;
    if (lane == "lock")
        return Phase::kLockWait;
    return Phase::kQueue;
}

CriticalPathReport
analyzeCriticalPath(const std::vector<TraceSpan> &spans)
{
    CriticalPathReport report;

    // Index the stream: roots in completion order, children by trace id.
    std::vector<const TraceSpan *> roots;
    std::unordered_map<std::uint64_t, std::vector<const TraceSpan *>>
        children;
    for (const TraceSpan &s : spans) {
        if (std::string_view(s.lane) == "op") {
            roots.push_back(&s);
        } else if (s.traceId != 0) {
            children[s.traceId].push_back(&s);
        }
    }

    // --- per-op exact breakdown + longest chain ---
    report.ops.reserve(roots.size());
    for (const TraceSpan *root : roots) {
        OpBreakdown op;
        op.traceId = root->traceId;
        op.name = root->name;
        op.start = root->start;
        op.end = root->end;

        std::vector<Interval> ivs;
        const auto it = children.find(root->traceId);
        if (it != children.end()) {
            for (const TraceSpan *c : it->second) {
                const Phase p = classifySpan(*c);
                if (p == Phase::kQueue)
                    continue; // "event", "rebuild": no phase lane
                const sim::Tick lo = std::max(c->start, op.start);
                const sim::Tick hi = std::min(c->end, op.end);
                if (hi > lo)
                    ivs.push_back(Interval{lo, hi, p});
            }
        }

        partition(op.start, op.end, ivs, op.phaseTicks);
        op.chainTicks = longestChain(std::move(ivs));
        report.ops.push_back(std::move(op));
    }

    // --- run window ---
    bool haveWindow = false;
    for (const OpBreakdown &op : report.ops) {
        if (!haveWindow) {
            report.windowStart = op.start;
            report.windowEnd = op.end;
            haveWindow = true;
        } else {
            report.windowStart = std::min(report.windowStart, op.start);
            report.windowEnd = std::max(report.windowEnd, op.end);
        }
    }

    // --- per-phase aggregates ---
    std::uint64_t grand = 0;
    std::array<std::vector<sim::Tick>, kNumPhases> samples;
    for (const OpBreakdown &op : report.ops) {
        for (std::size_t p = 0; p < kNumPhases; ++p)
            samples[p].push_back(op.phaseTicks[p]);
    }
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        PhaseSummary &ps = report.phases[p];
        for (sim::Tick t : samples[p])
            ps.totalTicks += static_cast<std::uint64_t>(t);
        grand += ps.totalTicks;
        if (!samples[p].empty()) {
            ps.meanUs = toUs(static_cast<sim::Tick>(ps.totalTicks)) /
                        static_cast<double>(samples[p].size());
            std::sort(samples[p].begin(), samples[p].end());
            ps.p50Us = percentileUs(samples[p], 50.0);
            ps.p99Us = percentileUs(samples[p], 99.0);
        }
    }
    if (grand > 0) {
        for (PhaseSummary &ps : report.phases)
            ps.share = static_cast<double>(ps.totalTicks) /
                       static_cast<double>(grand);
    }

    // --- resource busy fractions over the run window ---
    // Every resource span counts, including ones from rootless traces
    // (rebuild traffic competes for the same NICs and SSDs). Spans are
    // clamped to the window; union-merged so overlap cannot overcount.
    std::map<std::pair<sim::NodeId, std::string>,
             std::vector<std::pair<sim::Tick, sim::Tick>>>
        byResource;
    sim::Tick spanLo = 0, spanHi = 0;
    bool haveSpanWindow = false;
    for (const TraceSpan &s : spans) {
        if (!isResourceLane(s.lane))
            continue;
        if (!haveSpanWindow) {
            spanLo = s.start;
            spanHi = s.end;
            haveSpanWindow = true;
        } else {
            spanLo = std::min(spanLo, s.start);
            spanHi = std::max(spanHi, s.end);
        }
        byResource[{s.node, std::string(s.lane)}].push_back(
            {s.start, s.end});
    }
    if (!haveWindow && haveSpanWindow) {
        report.windowStart = spanLo;
        report.windowEnd = spanHi;
    }
    const sim::Tick window = report.windowEnd - report.windowStart;
    for (auto &[key, ivs] : byResource) {
        for (auto &iv : ivs) {
            iv.first = std::max(iv.first, report.windowStart);
            iv.second = std::min(iv.second, report.windowEnd);
            if (iv.second < iv.first)
                iv.second = iv.first;
        }
        ResourceBusy rb;
        rb.node = key.first;
        rb.lane = key.second;
        rb.busyTicks = unionLength(std::move(ivs));
        rb.busyFraction = window > 0 ? static_cast<double>(rb.busyTicks) /
                                           static_cast<double>(window)
                                     : 0.0;
        report.resources.push_back(std::move(rb));
    }
    std::sort(report.resources.begin(), report.resources.end(),
              [](const ResourceBusy &a, const ResourceBusy &b) {
                  if (a.busyTicks != b.busyTicks)
                      return a.busyTicks > b.busyTicks;
                  if (a.node != b.node)
                      return a.node < b.node;
                  return a.lane < b.lane;
              });

    return report;
}

} // namespace draid::telemetry
