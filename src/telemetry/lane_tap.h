/**
 * @file
 * LaneTap: the telemetry-side adapter for the sim::ServiceObserver seam.
 *
 * src/sim's FIFO resources (Pipe, CpuCore) report every traced service
 * commitment through sim/service.h without knowing telemetry exists; a
 * LaneTap attached via setObserver() translates each ServiceRecord into
 * the trace span and contention-attribution calls the old tightly-coupled
 * bindTrace/bindContention paths used to make — in the same order, with
 * the same gating, so output is byte-identical.
 *
 * One LaneTap serves one resource. Style selects the span shape:
 *  - kPipe: lane = name = the resource's label, "bytes" span arg.
 *  - kCpu:  lane = "cpu", name = the work label, no payload arg.
 */

#ifndef DRAID_TELEMETRY_LANE_TAP_H
#define DRAID_TELEMETRY_LANE_TAP_H

#include <cstdint>

#include "sim/service.h"
#include "sim/types.h"

namespace draid::telemetry {

class ContentionTracker;
class Tracer;

/** Observe-only bridge from one FIFO resource into telemetry. */
class LaneTap final : public sim::ServiceObserver
{
  public:
    enum class Style
    {
        kPipe, ///< bandwidth lane: span lane/name = resource label
        kCpu,  ///< compute lane: span lane "cpu", name = work label
    };

    explicit LaneTap(Style style = Style::kPipe) : style_(style) {}

    /** Attach a span sink; spans land on node @p node. */
    void bindTrace(Tracer *tracer, sim::NodeId node)
    {
        tracer_ = tracer;
        node_ = node;
    }

    /** Attach a contention tracker under resource id @p res. */
    void bindContention(ContentionTracker *tracker, std::uint32_t res)
    {
        contention_ = tracker;
        res_ = res;
    }

    const Tracer *tracer() const { return tracer_; }
    const ContentionTracker *contention() const { return contention_; }

    void onService(const sim::ServiceRecord &rec) override;

  private:
    Style style_;
    Tracer *tracer_ = nullptr;
    sim::NodeId node_ = 0;
    ContentionTracker *contention_ = nullptr;
    std::uint32_t res_ = 0;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_LANE_TAP_H
