/**
 * @file
 * MetricsRegistry: named counters, gauges and fixed-bucket histograms,
 * hierarchically scoped per component instance.
 *
 * Naming follows a dotted hierarchy rooted at the node, e.g.
 * `node3.nic.tx_bytes`, `node3.ssd.write_channel_busy_ticks`,
 * `host0.draid.degraded_reads`. Components obtain a MetricScope once at
 * construction and resolve metric objects up front, so the hot path is a
 * single integer add — cheap enough to stay on by default.
 *
 * Two kinds of sources feed the registry:
 *  - push metrics (Counter / Gauge / Histogram) owned by the registry and
 *    updated by components as events happen, and
 *  - probes: read-only callbacks sampled at snapshot time, which expose
 *    counters a component already maintains (Pipe::bytesTransferred(),
 *    CpuCore::busyTime(), ...) without duplicating their storage.
 *
 * The whole registry is observe-only: nothing here touches the simulator,
 * so snapshotting cannot perturb event ordering.
 */

#ifndef DRAID_TELEMETRY_METRICS_H
#define DRAID_TELEMETRY_METRICS_H

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace draid::telemetry {

/** A monotonically increasing integer metric. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A point-in-time numeric metric. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
 * implicit overflow bucket counts the rest. Bounds are set at creation
 * and never reallocate, so observe() is a linear scan over a handful of
 * doubles plus three adds.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double sample);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }
    double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Bucket upper bounds (excluding the implicit overflow bucket). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket counts; size() == bounds().size() + 1 (overflow last). */
    const std::vector<std::uint64_t> &bucketCounts() const
    {
        return counts_;
    }

  private:
    // draid-lint: cap(bucket bounds; fixed at construction)
    std::vector<double> bounds_;
    // draid-lint: cap(bounds_.size() + 1; fixed at construction)
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Commonly useful latency bucket bounds, in microseconds. */
std::vector<double> latencyBucketsUs();

/**
 * The metric store. Metric objects are owned by the registry and their
 * addresses are stable for its lifetime (node-based map storage), so
 * components may cache the returned references.
 */
class MetricsRegistry
{
  public:
    /** Get or create the counter @p name. */
    Counter &counter(const std::string &name);

    /** Get or create the gauge @p name. */
    Gauge &gauge(const std::string &name);

    /**
     * Get or create the histogram @p name with @p bounds (ignored when
     * the histogram already exists).
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    /**
     * Register a read-only probe sampled at snapshot time. Probes expose
     * counters a component already keeps, avoiding duplicated storage.
     * The callback must outlive the registry's use (components and the
     * registry share the owning Cluster's lifetime).
     */
    void probe(const std::string &name, std::function<double()> fn);

    bool hasCounter(const std::string &name) const;
    bool hasProbe(const std::string &name) const;

    /** Counter value by full name; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Probe value by full name; 0 when absent. */
    double probeValue(const std::string &name) const;

    /** Full names of every metric and probe, sorted. */
    std::vector<std::string> names() const;

    /**
     * Snapshot everything as one JSON object:
     * {"counters":{...},"gauges":{...},"probes":{...},"histograms":{...}}.
     * std::map keeps the output deterministically sorted.
     */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

  private:
    // draid-lint: cap(registered metric names; code-defined set)
    std::map<std::string, Counter> counters_;
    // draid-lint: cap(registered metric names; code-defined set)
    std::map<std::string, Gauge> gauges_;
    // draid-lint: cap(registered metric names; code-defined set)
    std::map<std::string, Histogram> histograms_;
    // draid-lint: cap(registered metric names; code-defined set)
    std::map<std::string, std::function<double()>> probes_;
};

/**
 * A dotted-prefix view of a registry, e.g. scope "node3" -> sub-scope
 * "nic" -> counter "tx_bytes" names `node3.nic.tx_bytes`.
 */
class MetricScope
{
  public:
    MetricScope(MetricsRegistry &registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {
    }

    MetricScope scope(const std::string &sub) const
    {
        return MetricScope(*registry_, qualify(sub));
    }

    Counter &counter(const std::string &name) const
    {
        return registry_->counter(qualify(name));
    }

    Gauge &gauge(const std::string &name) const
    {
        return registry_->gauge(qualify(name));
    }

    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds) const
    {
        return registry_->histogram(qualify(name), std::move(bounds));
    }

    void probe(const std::string &name, std::function<double()> fn) const
    {
        registry_->probe(qualify(name), std::move(fn));
    }

    const std::string &prefix() const { return prefix_; }
    MetricsRegistry &registry() const { return *registry_; }

  private:
    std::string qualify(const std::string &name) const
    {
        return prefix_.empty() ? name : prefix_ + "." + name;
    }

    MetricsRegistry *registry_;
    std::string prefix_;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_METRICS_H
