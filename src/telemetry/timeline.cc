#include "telemetry/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <limits>
#include <sstream>

namespace draid::telemetry {

namespace {

/** Nearest-rank percentile of a sorted tick vector, in microseconds. */
double
percentileUs(const std::vector<sim::Tick> &sorted, double pct)
{
    if (sorted.empty())
        return 0.0;
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    rank = std::min(rank, sorted.size());
    return static_cast<double>(sorted[rank - 1]) / sim::kMicrosecond;
}

std::uint64_t
spanBytes(const TraceSpan &span)
{
    for (const auto &[key, value] : span.args) {
        if (key == "bytes")
            return std::strtoull(value.c_str(), nullptr, 10);
    }
    return 0;
}

/** Fixed-precision double (JSON-safe: never nan/inf, always has digits). */
std::string
num(double v, int precision = 3)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace

WindowedAggregator::WindowedAggregator(sim::Ticks window_ticks)
    : windowTicks_(window_ticks.raw() <= 0
                       ? kAutoBaseTicks
                       : std::max<sim::Tick>(window_ticks.raw(), 1)),
      adaptive_(window_ticks.raw() <= 0)
{
}

void
WindowedAggregator::decimateBin(Accum &bin, std::uint64_t &dropped)
{
    // Retained samples sit at arrival indices 0, stride, 2*stride, ...;
    // keeping the even positions leaves exactly the multiples of the
    // doubled stride, so `seen % stride == 0` stays the keep test.
    std::vector<sim::Tick> survivors;
    survivors.reserve(bin.latencies.size() / 2 + 1);
    for (std::size_t i = 0; i < bin.latencies.size(); ++i) {
        if (i % 2 == 0)
            survivors.push_back(bin.latencies[i]);
        else
            ++dropped;
    }
    bin.latencies = std::move(survivors);
    bin.stride *= 2;
}

void
WindowedAggregator::addOp(sim::Ticks end_ticks, sim::Ticks latency_ticks,
                          std::uint64_t bytes)
{
    const sim::Tick end = end_ticks.raw();
    const sim::Tick latency = latency_ticks.raw();
    if (adaptive_) {
        // Widen until this op's bin fits inside the kMaxBins budget
        // spanned from the earliest bin.
        while (!bins_.empty()) {
            const std::int64_t idx = end / windowTicks_;
            const std::int64_t lo =
                std::min(idx, bins_.begin()->first);
            const std::int64_t hi =
                std::max(idx, bins_.rbegin()->first);
            if (static_cast<std::uint64_t>(hi - lo) <
                static_cast<std::uint64_t>(kMaxBins))
                break;
            widenBins();
        }
    }
    Accum &bin = bins_[end / windowTicks_];
    bin.bytes += bytes;
    ++bin.ops;
    if (bin.seen % bin.stride == 0) {
        if (bin.latencies.size() >= kLatencySampleCap)
            decimateBin(bin, droppedSamples_);
        bin.latencies.push_back(latency);
    } else {
        ++droppedSamples_;
    }
    ++bin.seen;
    ++opsAdded_;
}

void
WindowedAggregator::widenBins()
{
    std::map<std::int64_t, Accum> merged;
    for (auto &[idx, bin] : bins_) {
        Accum &dst = merged[idx >= 0 ? idx / 2 : (idx - 1) / 2];
        if (dst.ops == 0) {
            dst = std::move(bin);
            continue;
        }
        dst.bytes += bin.bytes;
        dst.ops += bin.ops;
        dst.seen += bin.seen;
        // Pooling two decimated subsamples biases toward the
        // lower-stride half; acceptable — the totals stay exact and the
        // percentiles are documented as approximate once decimation has
        // kicked in.
        dst.stride = std::max(dst.stride, bin.stride);
        dst.latencies.insert(dst.latencies.end(), bin.latencies.begin(),
                             bin.latencies.end());
        while (dst.latencies.size() > kLatencySampleCap)
            decimateBin(dst, droppedSamples_);
    }
    bins_ = std::move(merged);
    windowTicks_ *= 2;
}

void
WindowedAggregator::addOpSpans(const std::vector<TraceSpan> &spans)
{
    for (const TraceSpan &span : spans) {
        if (std::strcmp(span.lane, "op") != 0)
            continue;
        addOp(sim::Ticks{span.end}, sim::Ticks{span.end - span.start},
              spanBytes(span));
    }
}

std::vector<TimelineWindow>
WindowedAggregator::finalize() const
{
    if (bins_.empty())
        return {};
    const std::int64_t first = bins_.begin()->first;
    const std::int64_t last = bins_.rbegin()->first;
    return finalize(sim::Ticks{first * windowTicks_},
                    sim::Ticks{(last + 1) * windowTicks_});
}

std::vector<TimelineWindow>
WindowedAggregator::makeWindows(const std::map<std::int64_t, Accum> &bins,
                                sim::Ticks window_ticks, std::int64_t first,
                                std::int64_t last)
{
    std::vector<TimelineWindow> out;
    out.reserve(static_cast<std::size_t>(last - first + 1));
    const double windowSec = static_cast<double>(window_ticks.raw()) /
                             (sim::kMillisecond * 1000.0);
    for (std::int64_t idx = first; idx <= last; ++idx) {
        TimelineWindow w;
        w.start = idx * window_ticks.raw();
        auto it = bins.find(idx);
        if (it != bins.end()) {
            std::vector<sim::Tick> lat = it->second.latencies;
            std::sort(lat.begin(), lat.end());
            w.ops = it->second.ops;
            w.bytes = it->second.bytes;
            w.goodputMBps =
                static_cast<double>(w.bytes) / 1e6 / windowSec;
            w.kiops = static_cast<double>(w.ops) / 1e3 / windowSec;
            w.p50Us = percentileUs(lat, 50.0);
            w.p99Us = percentileUs(lat, 99.0);
        }
        out.push_back(std::move(w));
    }
    return out;
}

std::vector<TimelineWindow>
WindowedAggregator::finalize(sim::Ticks from_ticks, sim::Ticks to_ticks) const
{
    const sim::Tick from = from_ticks.raw();
    const sim::Tick to = to_ticks.raw();
    std::int64_t first = from / windowTicks_;
    std::int64_t last = to <= from ? first : (to - 1) / windowTicks_;
    if (!bins_.empty()) {
        first = std::min(first, bins_.begin()->first);
        last = std::max(last, bins_.rbegin()->first);
    }
    return makeWindows(bins_, sim::Ticks{windowTicks_}, first, last);
}

WindowedAggregator::Coalesced
WindowedAggregator::coalesce(std::size_t max_windows) const
{
    Coalesced out;
    out.windowTicks = windowTicks_;
    if (bins_.empty() || max_windows == 0)
        return out;
    const std::int64_t first = bins_.begin()->first;
    const std::int64_t last = bins_.rbegin()->first;
    const auto span = static_cast<std::uint64_t>(last - first + 1);
    const std::uint64_t factor =
        (span + max_windows - 1) / max_windows;
    if (factor <= 1) {
        out.windows =
            makeWindows(bins_, sim::Ticks{windowTicks_}, first, last);
        return out;
    }
    // Merge each run of `factor` adjacent bins. Grouping by idx/factor
    // (floor toward -inf) keeps window starts on multiples of the merged
    // width, matching how a wider aggregator would have binned.
    std::map<std::int64_t, Accum> merged;
    std::uint64_t dropped = 0;
    const auto f = static_cast<std::int64_t>(factor);
    for (const auto &[idx, bin] : bins_) {
        const std::int64_t g = idx >= 0 ? idx / f : (idx - f + 1) / f;
        Accum &dst = merged[g];
        dst.bytes += bin.bytes;
        dst.ops += bin.ops;
        dst.seen += bin.seen;
        dst.stride = std::max(dst.stride, bin.stride);
        dst.latencies.insert(dst.latencies.end(), bin.latencies.begin(),
                             bin.latencies.end());
        while (dst.latencies.size() > kLatencySampleCap)
            decimateBin(dst, dropped);
    }
    out.windowTicks = windowTicks_ * f;
    out.windows = makeWindows(merged, sim::Ticks{out.windowTicks},
                              merged.begin()->first,
                              merged.rbegin()->first);
    return out;
}

std::uint64_t
WindowedAggregator::retainedBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &[idx, bin] : bins_)
        bytes += sizeof(Accum) + sizeof(std::int64_t) +
                 bin.latencies.size() * sizeof(sim::Tick);
    return bytes;
}

std::vector<UtilizationSeries>
binUtilization(const std::vector<UtilizationSampler::Sample> &samples,
               sim::Ticks from_ticks, sim::Ticks window_ticks_in,
               std::size_t num_windows)
{
    const sim::Tick from = from_ticks.raw();
    const sim::Tick window_ticks = window_ticks_in.raw();
    if (window_ticks <= 0 || num_windows == 0)
        return {};

    struct SeriesAccum
    {
        // draid-lint: cap(window count of the coalesced timeline; kMaxBins)
        std::vector<double> sum;
        // draid-lint: cap(parallel to sum; kMaxBins)
        std::vector<std::uint32_t> count;
    };
    // Keyed by (node, name); std::map keeps the output ordering stable.
    std::map<std::pair<sim::NodeId, std::string>, SeriesAccum> accums;
    const sim::Tick to = from + static_cast<sim::Tick>(num_windows)
        * window_ticks;
    for (const UtilizationSampler::Sample &s : samples) {
        if (s.tick < from || s.tick >= to)
            continue;
        SeriesAccum &acc = accums[{s.node, s.name}];
        if (acc.sum.empty()) {
            acc.sum.assign(num_windows, 0.0);
            acc.count.assign(num_windows, 0);
        }
        const auto idx =
            static_cast<std::size_t>((s.tick - from) / window_ticks);
        acc.sum[idx] += s.value;
        acc.count[idx] += 1;
    }

    std::vector<UtilizationSeries> out;
    out.reserve(accums.size());
    for (auto &[key, acc] : accums) {
        UtilizationSeries series;
        series.node = key.first;
        series.name = key.second;
        series.perWindow.resize(num_windows, 0.0);
        double carry = 0.0;
        for (std::size_t i = 0; i < num_windows; ++i) {
            if (acc.count[i] > 0)
                carry = acc.sum[i] / acc.count[i];
            series.perWindow[i] = carry;
        }
        out.push_back(std::move(series));
    }
    return out;
}

HealthFlags
detectHealth(const std::vector<TimelineWindow> &windows,
             const std::vector<UtilizationSeries> &util,
             sim::NodeId host_node)
{
    HealthFlags flags;

    // Stalled windows: zero completions strictly between active windows.
    std::size_t firstActive = windows.size();
    std::size_t lastActive = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        if (windows[i].ops > 0) {
            firstActive = std::min(firstActive, i);
            lastActive = i;
        }
    }
    if (firstActive < windows.size()) {
        for (std::size_t i = firstActive + 1; i < lastActive; ++i) {
            if (windows[i].ops == 0)
                flags.stalledWindows.push_back(i);
        }
    }

    // Imbalance: per window and counter name, across non-host nodes.
    std::map<std::string, std::vector<const UtilizationSeries *>> byName;
    for (const UtilizationSeries &s : util) {
        if (s.node != host_node)
            byName[s.name].push_back(&s);
    }
    for (const auto &[name, group] : byName) {
        if (group.size() < 3)
            continue;
        const std::size_t n = group.front()->perWindow.size();
        for (std::size_t w = 0; w < n; ++w) {
            double maxV = -1.0;
            double sum = 0.0;
            const UtilizationSeries *maxSeries = nullptr;
            for (const UtilizationSeries *s : group) {
                const double v = s->perWindow[w];
                sum += v;
                if (v > maxV) {
                    maxV = v;
                    maxSeries = s;
                }
            }
            const double meanOthers =
                (sum - maxV) / static_cast<double>(group.size() - 1);
            if (maxV > 0.4 && maxV > 2.5 * meanOthers) {
                HealthFlags::Imbalance im;
                im.window = w;
                im.name = name;
                im.node = maxSeries->node;
                im.maxUtil = maxV;
                im.meanUtil = meanOthers;
                flags.imbalances.push_back(im);
            }
        }
    }
    return flags;
}

TimelineReport
buildTimeline(const std::vector<TraceSpan> &spans,
              const std::vector<EventJournal::Event> &events,
              const std::vector<UtilizationSampler::Sample> &samples,
              sim::Ticks window_ticks_in, sim::NodeId host_node)
{
    sim::Tick window_ticks = window_ticks_in.raw();
    TimelineReport report;

    // The op completion range drives the window grid.
    sim::Tick firstEnd = std::numeric_limits<sim::Tick>::max();
    sim::Tick lastEnd = 0;
    for (const TraceSpan &span : spans) {
        if (std::strcmp(span.lane, "op") != 0)
            continue;
        firstEnd = std::min(firstEnd, span.end);
        lastEnd = std::max(lastEnd, span.end);
    }
    if (firstEnd > lastEnd)
        return report; // no ops recorded

    if (window_ticks <= 0) {
        // Auto-size to ~64 windows over the run, min 1 us each.
        window_ticks = std::max<sim::Tick>((lastEnd - firstEnd + 1) / 64,
                                           sim::kMicrosecond);
    }

    WindowedAggregator agg(sim::Ticks{window_ticks});
    agg.addOpSpans(spans);
    report.windowTicks = agg.windowTicks().raw();
    report.windows = agg.finalize();
    report.startTick = report.windows.empty() ? 0 : report.windows.front().start;
    const sim::Tick endTick = report.startTick
        + static_cast<sim::Tick>(report.windows.size()) * report.windowTicks;

    for (const EventJournal::Event &e : events) {
        if (e.tick >= report.startTick && e.tick < endTick)
            report.events.push_back(e);
    }
    report.utilization = binUtilization(samples,
                                        sim::Ticks{report.startTick},
                                        sim::Ticks{report.windowTicks},
                                        report.windows.size());
    report.health =
        detectHealth(report.windows, report.utilization, host_node);
    return report;
}

TimelineReport
buildTimeline(const WindowedAggregator &agg,
              const std::vector<EventJournal::Event> &events,
              const std::vector<UtilizationSampler::Sample> &samples,
              sim::NodeId host_node)
{
    TimelineReport report;
    if (agg.opsAdded() == 0)
        return report; // no ops streamed in

    const WindowedAggregator::Coalesced c = agg.coalesce(64);
    report.windowTicks = c.windowTicks;
    report.windows = c.windows;
    report.startTick =
        report.windows.empty() ? 0 : report.windows.front().start;
    const sim::Tick endTick = report.startTick
        + static_cast<sim::Tick>(report.windows.size()) * report.windowTicks;

    for (const EventJournal::Event &e : events) {
        if (e.tick >= report.startTick && e.tick < endTick)
            report.events.push_back(e);
    }
    report.utilization = binUtilization(samples,
                                        sim::Ticks{report.startTick},
                                        sim::Ticks{report.windowTicks},
                                        report.windows.size());
    report.health =
        detectHealth(report.windows, report.utilization, host_node);
    return report;
}

void
writeTimelineJson(std::ostream &os, const TimelineReport &report)
{
    os << "{\"window_us\":"
       << num(static_cast<double>(report.windowTicks) / sim::kMicrosecond)
       << ",\"start_tick\":" << report.startTick << ",\"windows\":[";
    for (std::size_t i = 0; i < report.windows.size(); ++i) {
        const TimelineWindow &w = report.windows[i];
        if (i)
            os << ",";
        os << "{\"t\":" << w.start << ",\"ops\":" << w.ops << ",\"bytes\":"
           << w.bytes << ",\"mbps\":" << num(w.goodputMBps, 1)
           << ",\"kiops\":" << num(w.kiops) << ",\"p50_us\":"
           << num(w.p50Us, 2) << ",\"p99_us\":" << num(w.p99Us, 2) << "}";
    }
    os << "],\"events\":[";
    for (std::size_t i = 0; i < report.events.size(); ++i) {
        const EventJournal::Event &e = report.events[i];
        if (i)
            os << ",";
        os << "{\"tick\":" << e.tick << ",\"type\":\""
           << eventTypeName(e.type) << "\",\"node\":" << e.node
           << ",\"a\":" << e.a << ",\"b\":" << e.b << "}";
    }
    os << "],\"util\":[";
    for (std::size_t i = 0; i < report.utilization.size(); ++i) {
        const UtilizationSeries &s = report.utilization[i];
        if (i)
            os << ",";
        os << "{\"node\":" << s.node << ",\"name\":\"" << s.name
           << "\",\"v\":[";
        for (std::size_t j = 0; j < s.perWindow.size(); ++j) {
            if (j)
                os << ",";
            os << num(s.perWindow[j]);
        }
        os << "]}";
    }
    os << "],\"health\":{\"stalled_windows\":[";
    for (std::size_t i = 0; i < report.health.stalledWindows.size(); ++i) {
        if (i)
            os << ",";
        os << report.health.stalledWindows[i];
    }
    os << "],\"imbalances\":[";
    for (std::size_t i = 0; i < report.health.imbalances.size(); ++i) {
        const HealthFlags::Imbalance &im = report.health.imbalances[i];
        if (i)
            os << ",";
        os << "{\"window\":" << im.window << ",\"name\":\"" << im.name
           << "\",\"node\":" << im.node << ",\"max\":" << num(im.maxUtil)
           << ",\"mean\":" << num(im.meanUtil) << "}";
    }
    os << "]}}";
}

char
eventMarker(EventType t)
{
    switch (t) {
      case EventType::kDriveFailed: return 'F';
      case EventType::kDriveRecovered: return 'f';
      case EventType::kTargetDown: return 'X';
      case EventType::kTargetRecovered: return 'x';
      case EventType::kRebuildStarted: return 'R';
      case EventType::kRebuildProgress: return 'r';
      case EventType::kRebuildCompleted: return 'C';
      case EventType::kScrubPass: return 'S';
      case EventType::kDegradedReadServed: return 'd';
      case EventType::kStripeLockConvoy: return 'L';
      case EventType::kHotSpareSwap: return 'H';
      case EventType::kOpTimeout: return 'T';
      case EventType::kSlowDriveDetected: return 'G';
      case EventType::kLatentSectorError: return 'E';
      case EventType::kTargetFlap: return 'p';
      case EventType::kSwitchPortDegraded: return 'B';
      case EventType::kDataLoss: return '!';
    }
    return '?';
}

namespace {

/**
 * When several events land in the same window column, the rarer / more
 * structural one wins the marker slot: a RebuildStarted must not be
 * hidden under hundreds of DegradedReadServed records.
 */
int
markerPriority(EventType t)
{
    switch (t) {
      case EventType::kDataLoss: return 7; ///< never hidden by anything
      case EventType::kRebuildStarted:
      case EventType::kRebuildCompleted: return 6;
      case EventType::kDriveFailed:
      case EventType::kTargetDown:
      case EventType::kTargetFlap: return 5;
      case EventType::kHotSpareSwap:
      case EventType::kDriveRecovered:
      case EventType::kTargetRecovered:
      case EventType::kSlowDriveDetected:
      case EventType::kSwitchPortDegraded: return 4;
      case EventType::kOpTimeout: return 3;
      case EventType::kRebuildProgress:
      case EventType::kScrubPass:
      case EventType::kLatentSectorError: return 2;
      case EventType::kStripeLockConvoy: return 1;
      case EventType::kDegradedReadServed: return 0;
    }
    return 0;
}

std::string
fmtMs(sim::Tick tick)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(2)
       << static_cast<double>(tick) / sim::kMillisecond << " ms";
    return ss.str();
}

} // namespace

void
renderTimelineAscii(std::ostream &os, const TimelineReport &report,
                    const std::string &title)
{
    const std::size_t n = report.windows.size();
    if (n == 0) {
        os << "## timeline: " << title << " (no ops recorded)\n";
        return;
    }

    double peak = 0.0;
    for (const TimelineWindow &w : report.windows)
        peak = std::max(peak, w.goodputMBps);

    os << "## timeline: " << title << " (" << n << " windows x "
       << num(static_cast<double>(report.windowTicks) / sim::kMicrosecond, 1)
       << " us, peak " << num(peak, 1) << " MB/s)\n";

    // Goodput sparkline: 8-level ramp, one column per window.
    static const char kRamp[] = " .:-=+*#";
    std::string spark(n, ' ');
    for (std::size_t i = 0; i < n; ++i) {
        const double v = report.windows[i].goodputMBps;
        if (v <= 0.0 || peak <= 0.0)
            continue;
        // A trickle still renders as '.': only a truly idle window is
        // blank, so stalls stay distinguishable from slow windows.
        auto level = static_cast<std::size_t>(v / peak * 7.0 + 0.5);
        level = std::min<std::size_t>(std::max<std::size_t>(level, 1), 7);
        spark[i] = kRamp[level];
    }
    os << "## goodput |" << spark << "|\n";

    // Event marker row: highest-priority event per window column.
    std::string markers(n, '.');
    std::vector<int> priority(n, -1);
    for (const EventJournal::Event &e : report.events) {
        const auto idx = static_cast<std::size_t>(
            (e.tick - report.startTick) / report.windowTicks);
        if (idx >= n)
            continue;
        const int p = markerPriority(e.type);
        if (p > priority[idx]) {
            priority[idx] = p;
            markers[idx] = eventMarker(e.type);
        }
    }
    os << "## events  |" << markers << "|\n";

    // Legend: rare event types listed individually, frequent ones counted.
    struct TypeStats
    {
        std::uint64_t count = 0;
        sim::Tick firstTick = 0;
    };
    std::map<EventType, TypeStats> byType;
    for (const EventJournal::Event &e : report.events) {
        TypeStats &st = byType[e.type];
        if (st.count == 0)
            st.firstTick = e.tick;
        ++st.count;
    }
    for (const EventJournal::Event &e : report.events) {
        if (byType[e.type].count > 3)
            continue;
        os << "##   [" << eventMarker(e.type) << "] " << std::left
           << std::setw(18) << eventTypeName(e.type) << std::right
           << " @ " << fmtMs(e.tick) << "  node=" << e.node << " a=" << e.a
           << " b=" << e.b << "\n";
    }
    for (const auto &[type, st] : byType) {
        if (st.count <= 3)
            continue;
        os << "##   [" << eventMarker(type) << "] " << std::left
           << std::setw(18) << eventTypeName(type) << std::right << " x "
           << st.count << " (first @ " << fmtMs(st.firstTick) << ")\n";
    }

    // Health summary.
    os << "## health: " << report.health.stalledWindows.size()
       << " stalled window(s)";
    if (!report.health.imbalances.empty()) {
        const HealthFlags::Imbalance *worst = nullptr;
        for (const HealthFlags::Imbalance &im : report.health.imbalances) {
            if (!worst || im.maxUtil > worst->maxUtil)
                worst = &im;
        }
        os << "; " << report.health.imbalances.size()
           << " imbalanced window(s), worst node" << worst->node << " "
           << worst->name << " " << num(worst->maxUtil, 2) << " vs "
           << num(worst->meanUtil, 2) << " mean @ window " << worst->window;
    } else {
        os << "; utilization balanced";
    }
    os << "\n";
}

} // namespace draid::telemetry
