/**
 * @file
 * Always-on flight recorder: a fixed-size ring of the most recent span and
 * event records, cheap enough to leave running on every cluster, dumped as
 * a readable post-mortem when something goes wrong (a run aborts, an op
 * times out, or a test assertion fires).
 *
 * The recorder is a sink behind the Tracer: recording sites are unchanged
 * and the observe-only invariant holds — the recorder never touches the
 * Simulator, so leaving it on cannot perturb event ordering (the
 * determinism guard test covers it). Unlike the Tracer's unbounded span
 * vector, the ring overwrites the oldest record, so memory stays constant
 * no matter how long the run is.
 */

#ifndef DRAID_TELEMETRY_FLIGHT_RECORDER_H
#define DRAID_TELEMETRY_FLIGHT_RECORDER_H

#include <cstdint>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace draid::telemetry {

struct TraceSpan;

/** Bounded ring of recent telemetry records. */
class FlightRecorder
{
  public:
    /** One compact record; names are truncated to fit (no heap). */
    struct Record
    {
        std::uint64_t traceId = 0;
        sim::NodeId node = 0;
        std::uint32_t tenant = 0; ///< owning tenant; 0 = untracked
        const char *lane = "";    ///< static string from the recording site
        char name[24] = "";
        sim::Tick start = 0;
        sim::Tick end = 0;
    };

    static constexpr std::size_t kDefaultCapacity = 4096;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    std::size_t capacity() const { return ring_.size(); }
    /** Records currently held (== capacity once the ring has wrapped). */
    std::size_t size() const;
    /** Total records ever pushed (size() + overwritten). */
    std::uint64_t totalRecorded() const { return total_; }

    /** Append one span record. No-op while disabled. */
    void record(const TraceSpan &span);

    /**
     * Append one out-of-band event record (lane "event"): op timeouts,
     * aborts, externally observed anomalies. @p lane_static and @p name
     * follow Record's rules. Records even a disabled recorder would want
     * to keep are still gated on enabled() so a dark run stays dark.
     */
    void note(const char *name, std::uint64_t id, sim::NodeId node,
              sim::Tick tick);

    /**
     * As note(), and additionally dumps the ring to stderr when
     * dumpOnAbnormal() is set (at most three times per recorder, so a
     * timeout cascade cannot flood the log).
     */
    void noteAbnormal(const char *name, std::uint64_t id, sim::NodeId node,
                      sim::Tick tick);

    /**
     * Dump abnormal events (noteAbnormal) immediately to stderr. Off by
     * default: tests inject timeouts on purpose; the bench harness turns
     * it on because a bench timeout is always a bug.
     */
    void setDumpOnAbnormal(bool on) { dumpOnAbnormal_ = on; }
    bool dumpOnAbnormal() const { return dumpOnAbnormal_; }

    /** The retained records, oldest first. */
    std::vector<Record> snapshot() const;

    /**
     * Human-readable post-mortem: the last @p max_records records, oldest
     * first, one line each (tick window, node, lane, name, trace id).
     */
    void dump(std::ostream &os, std::size_t max_records = 64) const;

    /** The ring as a minimal Chrome trace_event JSON ("X" events). */
    void writeChromeTrace(std::ostream &os) const;

    void clear();

    // --- process-wide post-mortem hooks ---

    /** Dump every live recorder to @p os (newest-constructed last). */
    static void dumpAll(std::ostream &os, std::size_t max_records = 64);

    /**
     * Install SIGABRT/SIGSEGV handlers and a std::terminate handler that
     * dump every live recorder to stderr (and, when a crash-trace path is
     * set, write a Chrome trace there) before the process dies.
     * Idempotent.
     */
    static void installCrashHandlers();

    /** Chrome-trace file written by the crash handlers; "" disables. */
    static void setCrashTracePath(std::string path);

  private:
    void push(const Record &rec);

    bool enabled_ = true;
    bool dumpOnAbnormal_ = false;
    int abnormalDumps_ = 0;
    std::uint64_t total_ = 0;
    // draid-lint: cap(capacity ctor arg; ring overwrite, never grows)
    std::vector<Record> ring_;
};

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_FLIGHT_RECORDER_H
