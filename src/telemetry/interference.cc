#include "telemetry/interference.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "telemetry/metrics.h"

namespace draid::telemetry {

namespace {

/** Escape a string for a JSON literal (names are short and internal). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Fixed-precision double — deterministic formatting for the byte gate. */
void
putF(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    os << buf;
}

double
ticksToUs(sim::Tick t)
{
    return static_cast<double>(t) / static_cast<double>(sim::kMicrosecond);
}

} // namespace

const char *
ContentionTracker::kindName(ResourceKind kind)
{
    switch (kind) {
    case ResourceKind::NicTx: return "nic.tx";
    case ResourceKind::NicRx: return "nic.rx";
    case ResourceKind::SsdChannel: return "ssd.channel";
    case ResourceKind::Cpu: return "cpu";
    case ResourceKind::StripeLock: return "lock.stripe";
    }
    return "?";
}

void
ContentionTracker::setWindowTicks(sim::Tick ticks)
{
    assert(ticks > 0);
    windowTicks_ = ticks;
    baseWindowTicks_ = ticks;
}

TenantId
ContentionTracker::registerTenant(std::string name)
{
    if (tenants_.empty()) {
        Tenant untracked;
        untracked.name = "untracked";
        tenants_.push_back(std::move(untracked));
    }
    if (tenants_.size() <= kMaxTenants) {
        Tenant named;
        named.name = std::move(name);
        tenants_.push_back(std::move(named));
        return static_cast<TenantId>(tenants_.size() - 1);
    }
    // Cardinality bound hit: collapse into the reserved "other" tenant.
    if (overflowTenant_ == 0) {
        Tenant other;
        other.name = "other";
        tenants_.push_back(std::move(other));
        overflowTenant_ = static_cast<TenantId>(tenants_.size() - 1);
    }
    return overflowTenant_;
}

const std::string &
ContentionTracker::tenantName(TenantId tenant) const
{
    static const std::string kUntrackedName = "untracked";
    if (tenant >= tenants_.size())
        return kUntrackedName;
    return tenants_[tenant].name;
}

void
ContentionTracker::setSloTargetTicks(TenantId tenant, sim::Tick p99)
{
    if (tenant < tenants_.size())
        tenants_[tenant].sloTarget = p99;
}

void
ContentionTracker::noteOpStart(std::uint64_t trace, TenantId tenant)
{
    if (!enabled_ || trace == 0 || tenant == kUntracked)
        return;
    if (liveOps_.size() >= kMaxLiveOps)
        liveOps_.erase(liveOps_.begin());
    liveOps_[trace] = tenant;
}

TenantId
ContentionTracker::tenantOf(std::uint64_t trace) const
{
    if (trace == 0)
        return kUntracked;
    const auto it = liveOps_.find(trace);
    return it == liveOps_.end() ? kUntracked : it->second;
}

void
ContentionTracker::noteOpComplete(std::uint64_t trace, sim::Tick end,
                                  sim::Tick latency, std::uint64_t bytes)
{
    if (!enabled_)
        return;
    const TenantId tenant = tenantOf(trace);
    liveOps_.erase(trace);
    if (tenant >= tenants_.size())
        return;

    Tenant &t = tenants_[tenant];
    t.ops += 1;
    t.bytes += bytes;
    t.latencySum += latency;
    t.lat.cap = kTenantSampleCap;
    t.lat.push(latency);

    const std::int64_t w = windowOf(end);
    touchWindow(w);
    SloWindow &win = t.windows[w];
    win.ops += 1;
    win.bytes += bytes;
    win.latencySum += latency;
    win.lat.push(latency);
    widenWindows();

    if (metrics_ != nullptr && tenant != kUntracked) {
        const std::string prefix = "tenant." + t.name;
        metrics_->counter(prefix + ".ops").inc();
        metrics_->counter(prefix + ".bytes").inc(bytes);
        metrics_->histogram(prefix + ".latency_us", latencyBucketsUs())
            .observe(ticksToUs(latency));
    }
}

ContentionTracker::ResourceId
ContentionTracker::registerResource(sim::NodeId node, ResourceKind kind)
{
    Resource r;
    r.node = node;
    r.kind = kind;
    resources_.push_back(std::move(r));
    return static_cast<ResourceId>(resources_.size() - 1);
}

void
ContentionTracker::noteOccupancy(ResourceId res, std::uint64_t trace,
                                 sim::Tick start, sim::Tick end,
                                 std::uint64_t key)
{
    if (!enabled_ || end <= start)
        return;
    const TenantId tenant = tenantOf(trace);
    auto &dq = resources_.at(res).segs[key];
    // Merge back-to-back occupancy by the same tenant (a saturating
    // aggressor otherwise costs one segment per transfer).
    if (!dq.empty() && dq.back().end == start && dq.back().tenant == tenant) {
        dq.back().end = end;
        return;
    }
    dq.push_back(Segment{.start = start, .end = end, .tenant = tenant});
    while (dq.size() > kMaxSegmentsPerKey) {
        dq.pop_front();
        ++droppedSegments_;
    }
}

void
ContentionTracker::openOccupancy(ResourceId res, std::uint64_t trace,
                                 sim::Tick start, std::uint64_t key)
{
    if (!enabled_)
        return;
    auto &dq = resources_.at(res).segs[key];
    dq.push_back(Segment{.start = start,
                         .end = kOpenEnd,
                         .tenant = tenantOf(trace)});
    while (dq.size() > kMaxSegmentsPerKey) {
        dq.pop_front();
        ++droppedSegments_;
    }
}

void
ContentionTracker::closeOccupancy(ResourceId res, sim::Tick end,
                                  std::uint64_t key)
{
    if (!enabled_)
        return;
    auto &dq = resources_.at(res).segs[key];
    // Exclusive resources hold at most one open segment, always newest.
    for (auto it = dq.rbegin(); it != dq.rend(); ++it) {
        if (it->end == kOpenEnd) {
            it->end = end;
            return;
        }
    }
}

void
ContentionTracker::attributeWait(ResourceId res, std::uint64_t trace,
                                 sim::Tick arrival, sim::Tick serviceStart,
                                 std::uint64_t key)
{
    if (!enabled_ || trace == 0 || serviceStart <= arrival)
        return;
    Resource &r = resources_.at(res);
    const TenantId victim = tenantOf(trace);
    const sim::Tick wait = serviceStart - arrival;
    const std::int64_t w = windowOf(arrival);

    r.waitTicks += wait;
    r.waitedOps += 1;
    totalWait_ += wait;
    waitedOps_ += 1;

    auto &dq = r.segs[key];
    // Per-key arrivals are non-decreasing (FIFO service), so segments
    // wholly before this arrival can never be blamed again.
    while (!dq.empty() && dq.front().end != kOpenEnd &&
           dq.front().end <= arrival)
        dq.pop_front();

    sim::Tick covered = 0;
    for (const Segment &s : dq) {
        if (s.start >= serviceStart)
            break;
        const sim::Tick lo = std::max(s.start, arrival);
        const sim::Tick hi =
            std::min(s.end == kOpenEnd ? serviceStart : s.end, serviceStart);
        if (hi > lo) {
            addBlame(victim, s.tenant, r.kind, w, hi - lo);
            covered += hi - lo;
        }
    }
    // FIFO tiling makes covered == wait whenever every occupant was
    // recorded; anything else (pre-enable occupancy, dropped segments,
    // untraced work) degrades to "untracked" so the invariant holds.
    if (covered < wait)
        addBlame(victim, kUntracked, r.kind, w, wait - covered);
    widenWindows();
}

void
ContentionTracker::addBlame(TenantId victim, TenantId aggressor,
                            ResourceKind kind, std::int64_t window,
                            sim::Tick ticks)
{
    Cell &cell = matrix_[{victim, aggressor,
                          static_cast<std::uint8_t>(kind)}];
    cell.total += ticks;
    cell.byWindow[window] += ticks;
    totalBlame_ += ticks;
    touchWindow(window);
}

void
ContentionTracker::touchWindow(std::int64_t window)
{
    if (maxWindow_ < minWindow_) {
        minWindow_ = window;
        maxWindow_ = window;
        return;
    }
    minWindow_ = std::min(minWindow_, window);
    maxWindow_ = std::max(maxWindow_, window);
}

void
ContentionTracker::widenWindows()
{
    while (maxWindow_ >= minWindow_ &&
           maxWindow_ - minWindow_ + 1 >
               static_cast<std::int64_t>(kMaxWindows)) {
        windowTicks_ *= 2;
        ++windowMerges_;
        for (auto &[key, cell] : matrix_) {
            std::map<std::int64_t, sim::Tick> merged;
            for (const auto &[w, t] : cell.byWindow)
                merged[w / 2] += t;
            cell.byWindow = std::move(merged);
        }
        for (Tenant &t : tenants_) {
            std::map<std::int64_t, SloWindow> merged;
            for (auto &[w, win] : t.windows) {
                SloWindow &dst = merged[w / 2];
                dst.ops += win.ops;
                dst.bytes += win.bytes;
                dst.latencySum += win.latencySum;
                dst.lat.mergeFrom(win.lat);
            }
            t.windows = std::move(merged);
        }
        minWindow_ /= 2;
        maxWindow_ /= 2;
    }
}

sim::Tick
ContentionTracker::blameTicks(TenantId victim, TenantId aggressor,
                              ResourceKind kind) const
{
    const auto it = matrix_.find({victim, aggressor,
                                  static_cast<std::uint8_t>(kind)});
    return it == matrix_.end() ? 0 : it->second.total;
}

sim::Tick
ContentionTracker::blameTicks(TenantId victim, TenantId aggressor) const
{
    sim::Tick total = 0;
    for (const auto &[key, cell] : matrix_)
        if (std::get<0>(key) == victim && std::get<1>(key) == aggressor)
            total += cell.total;
    return total;
}

TenantId
ContentionTracker::dominantAggressor(TenantId victim,
                                     ResourceKind kind) const
{
    TenantId best = kUntracked;
    sim::Tick bestTicks = 0;
    for (const auto &[key, cell] : matrix_) {
        if (std::get<0>(key) != victim ||
            std::get<2>(key) != static_cast<std::uint8_t>(kind))
            continue;
        if (cell.total > bestTicks) {
            bestTicks = cell.total;
            best = std::get<1>(key);
        }
    }
    return best;
}

void
ContentionTracker::resetAccounting()
{
    matrix_.clear();
    liveOps_.clear();
    for (Resource &r : resources_) {
        r.segs.clear();
        r.waitTicks = 0;
        r.waitedOps = 0;
    }
    for (Tenant &t : tenants_) {
        t.ops = 0;
        t.bytes = 0;
        t.latencySum = 0;
        t.lat = SampleSet{};
        t.windows.clear();
    }
    windowTicks_ = baseWindowTicks_;
    windowMerges_ = 0;
    minWindow_ = 0;
    maxWindow_ = -1;
    totalWait_ = 0;
    totalBlame_ = 0;
    waitedOps_ = 0;
    droppedSegments_ = 0;
}

std::uint64_t
ContentionTracker::retainedBytes() const
{
    std::uint64_t bytes = 0;
    bytes += liveOps_.size() * 48;
    for (const Resource &r : resources_)
        for (const auto &[key, dq] : r.segs)
            bytes += 64 + dq.size() * sizeof(Segment);
    for (const auto &[key, cell] : matrix_)
        bytes += 96 + cell.byWindow.size() * 48;
    for (const Tenant &t : tenants_) {
        bytes += 128 + t.lat.samples.capacity() * sizeof(sim::Tick);
        for (const auto &[w, win] : t.windows)
            bytes += 128 + win.lat.samples.capacity() * sizeof(sim::Tick);
    }
    return bytes;
}

// --- SampleSet ---

void
ContentionTracker::SampleSet::push(sim::Tick latency)
{
    // Stride decimation: keep 1-in-stride arrivals; on overflow drop every
    // 2nd retained sample and double the stride, so coverage stays
    // end-to-end at reduced resolution (the timeline aggregator's trick).
    if (seq++ % stride == 0) {
        samples.push_back(latency);
        if (samples.size() > cap) {
            std::size_t kept = 0;
            for (std::size_t i = 0; i < samples.size(); i += 2)
                samples[kept++] = samples[i];
            samples.resize(kept);
            stride *= 2;
        }
    }
}

void
ContentionTracker::SampleSet::mergeFrom(const SampleSet &other)
{
    cap = std::max(cap, other.cap);
    stride = std::max(stride, other.stride);
    seq += other.seq;
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    while (samples.size() > cap) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < samples.size(); i += 2)
            samples[kept++] = samples[i];
        samples.resize(kept);
        stride *= 2;
    }
}

sim::Tick
ContentionTracker::SampleSet::percentile(double p) const
{
    if (samples.empty())
        return 0;
    std::vector<sim::Tick> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank.
    const double rank = p / 100.0 * static_cast<double>(sorted.size());
    std::size_t idx = static_cast<std::size_t>(rank);
    if (static_cast<double>(idx) < rank)
        ++idx;
    if (idx > 0)
        --idx;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

std::uint64_t
ContentionTracker::activeWindows(TenantId tenant) const
{
    if (tenant >= tenants_.size())
        return 0;
    std::uint64_t active = 0;
    for (const auto &[w, win] : tenants_[tenant].windows)
        if (win.ops > 0)
            ++active;
    return active;
}

std::uint64_t
ContentionTracker::burnWindows(TenantId tenant) const
{
    if (tenant >= tenants_.size())
        return 0;
    const Tenant &t = tenants_[tenant];
    if (t.sloTarget <= 0)
        return 0;
    std::uint64_t burning = 0;
    for (const auto &[w, win] : t.windows)
        if (win.ops > 0 && win.lat.percentile(99.0) > t.sloTarget)
            ++burning;
    return burning;
}

// --- export ---

void
ContentionTracker::writeJsonRow(std::ostream &os, const std::string &label,
                                std::uint64_t seed) const
{
    os << "{\"label\":\"" << jsonEscape(label) << "\",\"seed\":" << seed
       << ",\"window_us\":";
    putF(os, ticksToUs(windowTicks_));
    os << ",\"window_merges\":" << windowMerges_
       << ",\"waited_ops\":" << waitedOps_
       << ",\"wait_ns_total\":" << totalWait_
       << ",\"blame_ns_total\":" << totalBlame_
       << ",\"dropped_segments\":" << droppedSegments_;

    os << ",\"tenants\":[";
    bool first = true;
    for (std::size_t id = 0; id < tenants_.size(); ++id) {
        const Tenant &t = tenants_[id];
        if (!first)
            os << ",";
        first = false;
        os << "{\"id\":" << id << ",\"name\":\"" << jsonEscape(t.name)
           << "\",\"slo_target_us\":";
        putF(os, ticksToUs(t.sloTarget));
        os << "}";
    }
    os << "]";

    os << ",\"matrix\":[";
    first = true;
    for (const auto &[key, cell] : matrix_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"victim\":\"" << jsonEscape(tenantName(std::get<0>(key)))
           << "\",\"aggressor\":\""
           << jsonEscape(tenantName(std::get<1>(key)))
           << "\",\"resource\":\""
           << kindName(static_cast<ResourceKind>(std::get<2>(key)))
           << "\",\"blame_ns\":" << cell.total << ",\"windows\":[";
        bool wfirst = true;
        for (const auto &[w, t] : cell.byWindow) {
            if (!wfirst)
                os << ",";
            wfirst = false;
            os << "[" << w << "," << t << "]";
        }
        os << "]}";
    }
    os << "]";

    os << ",\"slo\":[";
    first = true;
    for (std::size_t id = 0; id < tenants_.size(); ++id) {
        const Tenant &t = tenants_[id];
        if (t.ops == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        std::uint64_t active = 0;
        std::uint64_t burning = 0;
        for (const auto &[w, win] : t.windows) {
            if (win.ops == 0)
                continue;
            ++active;
            if (t.sloTarget > 0 && win.lat.percentile(99.0) > t.sloTarget)
                ++burning;
        }
        os << "{\"tenant\":\"" << jsonEscape(t.name)
           << "\",\"target_p99_us\":";
        putF(os, ticksToUs(t.sloTarget));
        os << ",\"ops\":" << t.ops << ",\"bytes\":" << t.bytes
           << ",\"mean_us\":";
        putF(os, t.ops == 0
                     ? 0.0
                     : ticksToUs(t.latencySum) /
                           static_cast<double>(t.ops));
        os << ",\"p50_us\":";
        putF(os, ticksToUs(t.lat.percentile(50.0)));
        os << ",\"p99_us\":";
        putF(os, ticksToUs(t.lat.percentile(99.0)));
        os << ",\"active_windows\":" << active
           << ",\"burn_windows\":" << burning << ",\"burn_rate\":";
        putF(os, active == 0 ? 0.0
                             : static_cast<double>(burning) /
                                   static_cast<double>(active));
        os << ",\"windows\":[";
        bool wfirst = true;
        for (const auto &[w, win] : t.windows) {
            if (win.ops == 0)
                continue;
            if (!wfirst)
                os << ",";
            wfirst = false;
            const sim::Tick p99 = win.lat.percentile(99.0);
            const bool burn = t.sloTarget > 0 && p99 > t.sloTarget;
            os << "[" << w << "," << win.ops << ",";
            putF(os, ticksToUs(p99));
            os << "," << (burn ? 1 : 0) << "]";
        }
        os << "]}";
    }
    os << "]";

    os << ",\"resources\":[";
    first = true;
    for (const Resource &r : resources_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"node\":" << r.node << ",\"resource\":\""
           << kindName(r.kind) << "\",\"waited_ops\":" << r.waitedOps
           << ",\"wait_ns\":" << r.waitTicks << "}";
    }
    os << "]}";
}

void
ContentionTracker::renderAsciiHeatmap(std::ostream &os) const
{
    // Victims/aggressors that appear in any matrix cell, ascending id.
    std::vector<TenantId> ids;
    for (std::size_t id = 0; id < tenants_.size(); ++id) {
        bool used = false;
        for (const auto &[key, cell] : matrix_)
            if (std::get<0>(key) == id || std::get<1>(key) == id) {
                used = true;
                break;
            }
        if (used)
            ids.push_back(static_cast<TenantId>(id));
    }
    os << "interference heatmap (victim rows x aggressor cols, blame ms)\n";
    if (ids.empty()) {
        os << "  (no queue-wait attributed)\n";
        return;
    }

    sim::Tick maxCell = 0;
    for (const TenantId v : ids)
        for (const TenantId a : ids)
            maxCell = std::max(maxCell, blameTicks(v, a));

    char buf[64];
    os << "  " << std::string(12, ' ');
    for (const TenantId a : ids) {
        std::snprintf(buf, sizeof buf, " %10.10s",
                      tenantName(a).c_str());
        os << buf;
    }
    os << "\n";
    const char shades[] = " .:=*#@";
    for (const TenantId v : ids) {
        std::snprintf(buf, sizeof buf, "  %-12.12s",
                      tenantName(v).c_str());
        os << buf;
        std::string bar;
        for (const TenantId a : ids) {
            const sim::Tick t = blameTicks(v, a);
            std::snprintf(buf, sizeof buf, " %10.2f",
                          static_cast<double>(t) /
                              static_cast<double>(sim::kMillisecond));
            os << buf;
            const std::size_t level =
                maxCell == 0
                    ? 0
                    : static_cast<std::size_t>(
                          static_cast<double>(t) /
                          static_cast<double>(maxCell) * 6.0);
            bar += shades[std::min<std::size_t>(level, 6)];
        }
        os << "  |" << bar << "|";
        // Dominant aggressor + resource annotation for this victim.
        TenantId bestA = kUntracked;
        ResourceKind bestK = ResourceKind::NicTx;
        sim::Tick bestT = 0;
        for (const auto &[key, cell] : matrix_) {
            if (std::get<0>(key) != v)
                continue;
            if (cell.total > bestT) {
                bestT = cell.total;
                bestA = std::get<1>(key);
                bestK = static_cast<ResourceKind>(std::get<2>(key));
            }
        }
        if (bestT > 0)
            os << "  worst: " << tenantName(bestA) << " on "
               << kindName(bestK);
        os << "\n";
    }
}

} // namespace draid::telemetry
