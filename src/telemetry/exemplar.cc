#include "telemetry/exemplar.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "telemetry/critical_path.h"

namespace draid::telemetry {

ExemplarReservoir::ExemplarReservoir(sim::Tick window_ticks,
                                     std::size_t per_window,
                                     std::size_t max_windows)
    : windowTicks_(std::max<sim::Tick>(window_ticks, 1)),
      perWindow_(std::max<std::size_t>(per_window, 1)),
      maxWindows_(std::max<std::size_t>(max_windows, 1))
{
}

bool
ExemplarReservoir::offer(const TraceSpan &root, std::uint64_t bytes,
                         std::vector<TraceSpan> chain)
{
    ++offered_;
    const std::int64_t idx =
        static_cast<std::int64_t>(root.end / windowTicks_);
    Window &win = windows_[idx];

    const sim::Tick latency = root.end - root.start;
    std::size_t slot = win.slots.size();
    if (win.slots.size() >= perWindow_) {
        // Displace only a strictly faster exemplar; on a latency tie the
        // incumbent (earlier completion, smaller id) wins, so the kept
        // set is order-independent for equal-latency ops.
        std::size_t fastest = 0;
        for (std::size_t i = 1; i < win.slots.size(); ++i) {
            const Exemplar &a = win.slots[i];
            const Exemplar &b = win.slots[fastest];
            if (a.latency() < b.latency() ||
                (a.latency() == b.latency() && a.traceId > b.traceId))
                fastest = i;
        }
        if (win.slots[fastest].latency() >= latency)
            return false;
        held_.erase(win.slots[fastest].traceId);
        ++evicted_;
        slot = fastest;
        win.slots[fastest] = Exemplar{};
    } else {
        win.slots.emplace_back();
    }

    Exemplar &ex = win.slots[slot];
    ex.traceId = root.traceId;
    ex.name = root.name;
    ex.start = root.start;
    ex.end = root.end;
    ex.bytes = bytes;
    ex.tenant = root.tenant;
    ex.chain = std::move(chain);
    held_[root.traceId] = {idx, slot};
    ++kept_;

    // Window budget: evict the oldest window whole. Keeping the newest
    // windows matches how the reservoir is consumed (the bench collects
    // the measured job's tick range, which is always the most recent).
    while (windows_.size() > maxWindows_) {
        auto oldest = windows_.begin();
        for (const Exemplar &e : oldest->second.slots) {
            held_.erase(e.traceId);
            ++evicted_;
        }
        windows_.erase(oldest);
        ++windowsEvicted_;
    }
    return held_.count(root.traceId) != 0;
}

bool
ExemplarReservoir::appendIfHeld(const TraceSpan &span)
{
    auto it = held_.find(span.traceId);
    if (it == held_.end())
        return false;
    auto win = windows_.find(it->second.first);
    if (win == windows_.end() ||
        it->second.second >= win->second.slots.size())
        return false;
    win->second.slots[it->second.second].chain.push_back(span);
    return true;
}

std::size_t
ExemplarReservoir::size() const
{
    return held_.size();
}

std::vector<const ExemplarReservoir::Exemplar *>
ExemplarReservoir::collect(sim::Tick from, sim::Tick to) const
{
    std::vector<const Exemplar *> out;
    for (const auto &[idx, win] : windows_) {
        for (const Exemplar &e : win.slots) {
            if (e.end >= from && e.end < to)
                out.push_back(&e);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Exemplar *a, const Exemplar *b) {
                  if (a->latency() != b->latency())
                      return a->latency() > b->latency();
                  return a->traceId < b->traceId;
              });
    return out;
}

std::vector<const ExemplarReservoir::Exemplar *>
ExemplarReservoir::all() const
{
    std::vector<const Exemplar *> out;
    for (const auto &[idx, win] : windows_) {
        std::vector<const Exemplar *> ordered;
        for (const Exemplar &e : win.slots)
            ordered.push_back(&e);
        std::sort(ordered.begin(), ordered.end(),
                  [](const Exemplar *a, const Exemplar *b) {
                      if (a->latency() != b->latency())
                          return a->latency() > b->latency();
                      return a->traceId < b->traceId;
                  });
        out.insert(out.end(), ordered.begin(), ordered.end());
    }
    return out;
}

std::uint64_t
approxSpanBytes(const TraceSpan &span)
{
    std::uint64_t bytes = sizeof(TraceSpan) + span.name.size();
    for (const auto &[k, v] : span.args)
        bytes += sizeof(std::pair<std::string, std::string>) + k.size() +
                 v.size();
    return bytes;
}

std::uint64_t
ExemplarReservoir::retainedBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &[idx, win] : windows_) {
        for (const Exemplar &e : win.slots) {
            bytes += sizeof(Exemplar) + e.name.size();
            for (const TraceSpan &s : e.chain)
                bytes += approxSpanBytes(s);
        }
    }
    return bytes;
}

void
ExemplarReservoir::clear()
{
    windows_.clear();
    held_.clear();
    offered_ = 0;
    kept_ = 0;
    evicted_ = 0;
    windowsEvicted_ = 0;
}

void
writeExemplarsJsonl(std::ostream &os, const ExemplarReservoir &res)
{
    char buf[256];
    for (const ExemplarReservoir::Exemplar *e : res.all()) {
        // Exact phase partition of just this op's chain; with one root op
        // the report's single breakdown is the op's.
        const CriticalPathReport report = analyzeCriticalPath(e->chain);
        std::snprintf(buf, sizeof(buf),
                      "{\"trace\":%" PRIu64 ",\"name\":\"%s\","
                      "\"tenant_id\":%u,"
                      "\"window_start\":%" PRId64 ",\"start\":%" PRId64
                      ",\"end\":%" PRId64 ",\"latency_us\":%.3f,"
                      "\"bytes\":%" PRIu64 ",\"spans\":%zu",
                      e->traceId, e->name.c_str(), e->tenant,
                      (e->end / res.windowTicks()) * res.windowTicks(),
                      e->start, e->end,
                      static_cast<double>(e->latency()) / sim::kMicrosecond,
                      e->bytes, e->chain.size());
        os << buf;
        os << ",\"phase_us\":{";
        const char *dominant = phaseName(Phase::kQueue);
        sim::Tick dominantTicks = -1;
        bool first = true;
        if (!report.ops.empty()) {
            const OpBreakdown &op = report.ops.front();
            for (std::size_t p = 0; p < kNumPhases; ++p) {
                const sim::Tick t = op.phaseTicks[p];
                if (t > dominantTicks) {
                    dominantTicks = t;
                    dominant = phaseName(static_cast<Phase>(p));
                }
                if (t == 0)
                    continue;
                if (!first)
                    os << ",";
                first = false;
                std::snprintf(buf, sizeof(buf), "\"%s\":%.3f",
                              phaseName(static_cast<Phase>(p)),
                              static_cast<double>(t) / sim::kMicrosecond);
                os << buf;
            }
        }
        os << "},\"dominant\":\"" << dominant << "\"}\n";
    }
}

} // namespace draid::telemetry
