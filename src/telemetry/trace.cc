#include "telemetry/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "telemetry/exemplar.h"

namespace draid::telemetry {

namespace {

/** Monotonic host clock for self-timing. Wall-clock reads are legal in
 *  src/telemetry/ (lint-exempt) and never influence what is recorded. */
std::uint64_t
selfNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
spanBytesArg(const TraceSpan &span)
{
    for (const auto &[key, value] : span.args) {
        if (key == "bytes")
            return std::strtoull(value.c_str(), nullptr, 10);
    }
    return 0;
}

} // namespace

void
Tracer::ingestSpan(TraceSpan span, bool completion)
{
    // Sub-spans of in-flight ops are buffered whenever an enabled
    // reservoir is bound — sampled or not, a tail op must keep its whole
    // chain. Spans arriving after their op completed extend the exemplar
    // directly (stragglers of non-kept ops are simply re-stashed and age
    // out of the bounded pending map).
    if (!completion && exemplars_ != nullptr && exemplars_->enabled() &&
        span.traceId != 0 && !exemplars_->appendIfHeld(span))
        stashPending(span);
    if (!enabled_)
        return;
    if (samplePeriod_ > 1 && !traceSampled(span.traceId, samplePeriod_)) {
        ++sampledOut_;
        return;
    }
    if (spans_.size() >= spanCap_) {
        ++dropped_;
        return;
    }
    spans_.push_back(std::move(span));
}

void
Tracer::recordSpan(TraceSpan span)
{
    const std::uint64_t t0 = selfTiming_ ? selfNowNs() : 0;
    if (recorder_)
        recorder_->record(span);
    ingestSpan(std::move(span), /*completion=*/false);
    if (selfTiming_) {
        ++spanCost_.calls;
        spanCost_.ns += selfNowNs() - t0;
    }
}

void
Tracer::recordOpCompletion(TraceSpan span)
{
    const std::uint64_t t0 = selfTiming_ ? selfNowNs() : 0;
    if (recorder_)
        recorder_->record(span);
    if (opSink_ != nullptr)
        opSink_->onOpComplete(span, spanBytesArg(span));
    if (exemplars_ != nullptr && exemplars_->enabled() &&
        span.traceId != 0) {
        std::vector<TraceSpan> chain;
        auto it = pendingChains_.find(span.traceId);
        if (it != pendingChains_.end()) {
            chain = std::move(it->second);
            pendingChains_.erase(it);
        }
        chain.push_back(span);
        exemplars_->offer(span, spanBytesArg(span), std::move(chain));
    }
    ingestSpan(std::move(span), /*completion=*/true);
    if (selfTiming_) {
        ++opCost_.calls;
        opCost_.ns += selfNowNs() - t0;
    }
}

void
Tracer::stashPending(const TraceSpan &span)
{
    pendingChains_[span.traceId].push_back(span);
    // Ids are minted in issue order, so the smallest pending id is the
    // oldest op — the one most likely already abandoned (e.g. rebuild
    // stripe ids that never see an op completion).
    while (pendingChains_.size() > kPendingOpCap)
        pendingChains_.erase(pendingChains_.begin());
}

void
Tracer::recordCounter(sim::NodeId node, std::string name, sim::Tick tick,
                      double value)
{
    if (!enabled_)
        return;
    const std::uint64_t t0 = selfTiming_ ? selfNowNs() : 0;
    const std::uint64_t seq = counterSeq_[{node, name}]++;
    bool kept = false;
    if (seq % counterStride_ == 0) {
        if (counters_.size() >= counterCap_)
            decimateCounters();
        if (counters_.size() < counterCap_) {
            counters_.push_back(
                CounterSample{node, std::move(name), tick, value});
            kept = true;
        }
    }
    if (!kept)
        ++droppedCounters_;
    if (selfTiming_) {
        ++counterCost_.calls;
        counterCost_.ns += selfNowNs() - t0;
    }
}

void
Tracer::decimateCounters()
{
    // Keep every 2nd retained sample per series, preserving each series'
    // first sample, so the survivors sit at arrival indices that are
    // multiples of the doubled stride — future seq % stride == 0 keeps
    // landing on the same lattice.
    std::map<std::pair<sim::NodeId, std::string>, std::uint64_t> keptIdx;
    std::vector<CounterSample> survivors;
    survivors.reserve(counters_.size() / 2 + 1);
    for (CounterSample &c : counters_) {
        const std::uint64_t idx = keptIdx[{c.node, c.name}]++;
        if (idx % 2 == 0)
            survivors.push_back(std::move(c));
        else
            ++droppedCounters_;
    }
    counters_ = std::move(survivors);
    counterStride_ *= 2;
}

std::uint64_t
Tracer::retainedBytes() const
{
    std::uint64_t bytes = 0;
    for (const TraceSpan &s : spans_)
        bytes += approxSpanBytes(s);
    for (const CounterSample &c : counters_)
        bytes += sizeof(CounterSample) + c.name.size();
    for (const auto &[id, chain] : pendingChains_) {
        for (const TraceSpan &s : chain)
            bytes += approxSpanBytes(s);
    }
    return bytes;
}

void
Tracer::setNodeName(sim::NodeId node, std::string name)
{
    nodeNames_[node] = std::move(name);
}

void
Tracer::clear()
{
    spans_.clear();
    counters_.clear();
    counterSeq_.clear();
    pendingChains_.clear();
    dropped_ = 0;
    sampledOut_ = 0;
    droppedCounters_ = 0;
    counterStride_ = 1;
    spanCost_ = SelfCost{};
    opCost_ = SelfCost{};
    counterCost_ = SelfCost{};
    nextId_ = 1;
}

namespace {

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c; break;
        }
    }
    os << '"';
}

/** Ticks (integer ns) -> Chrome ts (fractional microseconds). */
void
writeMicros(std::ostream &os, sim::Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", t / 1000,
                  static_cast<int>(t % 1000));
    os << buf;
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Stable small thread ids per (node, lane), in first-use order.
    std::map<std::pair<sim::NodeId, std::string>, int> tids;
    auto tidOf = [&tids](sim::NodeId node, const std::string &lane) {
        auto [it, inserted] =
            tids.emplace(std::make_pair(node, lane),
                         static_cast<int>(tids.size()) + 1);
        (void)inserted;
        return it->second;
    };
    for (const auto &s : spans_)
        tidOf(s.node, s.lane);

    // Process metadata: node names.
    for (const auto &[node, name] : nodeNames_) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << node
           << ",\"tid\":0,\"args\":{\"name\":";
        writeJsonString(os, name);
        os << "}}";
    }
    // Thread metadata: lane names.
    for (const auto &[key, tid] : tids) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first
           << ",\"tid\":" << tid << ",\"args\":{\"name\":";
        writeJsonString(os, key.second);
        os << "}}";
    }

    // Truncation metadata: an exported trace that silently lost spans is
    // worse than no trace — surface cap drops and the sampling skim so a
    // viewer knows the stream is partial.
    if (dropped_ > 0 || droppedCounters_ > 0 || sampledOut_ > 0) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"trace_truncation\",\"pid\":0,"
           << "\"tid\":0,\"args\":{\"dropped_spans\":" << dropped_
           << ",\"dropped_counters\":" << droppedCounters_
           << ",\"sampled_out_spans\":" << sampledOut_
           << ",\"sample_period\":" << samplePeriod_ << "}}";
    }

    for (const auto &s : spans_) {
        sep();
        os << "{\"ph\":\"X\",\"name\":";
        writeJsonString(os, s.name);
        os << ",\"cat\":\"draid\",\"pid\":" << s.node
           << ",\"tid\":" << tidOf(s.node, s.lane) << ",\"ts\":";
        writeMicros(os, s.start);
        os << ",\"dur\":";
        writeMicros(os, s.end >= s.start ? s.end - s.start : 0);
        os << ",\"args\":{\"trace\":" << s.traceId;
        if (s.tenant != 0)
            os << ",\"tenant\":" << s.tenant;
        for (const auto &[k, v] : s.args) {
            os << ",";
            writeJsonString(os, k);
            os << ":";
            writeJsonString(os, v);
        }
        os << "}}";
    }

    for (const auto &c : counters_) {
        sep();
        os << "{\"ph\":\"C\",\"name\":";
        writeJsonString(os, c.name);
        os << ",\"pid\":" << c.node << ",\"tid\":0,\"ts\":";
        writeMicros(os, c.tick);
        os << ",\"args\":{\"value\":";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", c.value);
        os << buf << "}}";
    }

    os << "\n]}";
}

std::string
Tracer::toChromeTraceJson() const
{
    std::ostringstream oss;
    writeChromeTrace(oss);
    return oss.str();
}

} // namespace draid::telemetry
