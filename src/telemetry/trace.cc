#include "telemetry/trace.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

namespace draid::telemetry {

void
Tracer::recordSpan(TraceSpan span)
{
    if (recorder_)
        recorder_->record(span);
    if (!enabled_)
        return;
    if (spans_.size() >= spanCap_) {
        ++dropped_;
        return;
    }
    spans_.push_back(std::move(span));
}

void
Tracer::recordCounter(sim::NodeId node, std::string name, sim::Tick tick,
                      double value)
{
    if (!enabled_)
        return;
    counters_.push_back(CounterSample{node, std::move(name), tick, value});
}

void
Tracer::setNodeName(sim::NodeId node, std::string name)
{
    nodeNames_[node] = std::move(name);
}

void
Tracer::clear()
{
    spans_.clear();
    counters_.clear();
    dropped_ = 0;
    nextId_ = 1;
}

namespace {

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c; break;
        }
    }
    os << '"';
}

/** Ticks (integer ns) -> Chrome ts (fractional microseconds). */
void
writeMicros(std::ostream &os, sim::Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", t / 1000,
                  static_cast<int>(t % 1000));
    os << buf;
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Stable small thread ids per (node, lane), in first-use order.
    std::map<std::pair<sim::NodeId, std::string>, int> tids;
    auto tidOf = [&tids](sim::NodeId node, const std::string &lane) {
        auto [it, inserted] =
            tids.emplace(std::make_pair(node, lane),
                         static_cast<int>(tids.size()) + 1);
        (void)inserted;
        return it->second;
    };
    for (const auto &s : spans_)
        tidOf(s.node, s.lane);

    // Process metadata: node names.
    for (const auto &[node, name] : nodeNames_) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << node
           << ",\"tid\":0,\"args\":{\"name\":";
        writeJsonString(os, name);
        os << "}}";
    }
    // Thread metadata: lane names.
    for (const auto &[key, tid] : tids) {
        sep();
        os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first
           << ",\"tid\":" << tid << ",\"args\":{\"name\":";
        writeJsonString(os, key.second);
        os << "}}";
    }

    for (const auto &s : spans_) {
        sep();
        os << "{\"ph\":\"X\",\"name\":";
        writeJsonString(os, s.name);
        os << ",\"cat\":\"draid\",\"pid\":" << s.node
           << ",\"tid\":" << tidOf(s.node, s.lane) << ",\"ts\":";
        writeMicros(os, s.start);
        os << ",\"dur\":";
        writeMicros(os, s.end >= s.start ? s.end - s.start : 0);
        os << ",\"args\":{\"trace\":" << s.traceId;
        for (const auto &[k, v] : s.args) {
            os << ",";
            writeJsonString(os, k);
            os << ":";
            writeJsonString(os, v);
        }
        os << "}}";
    }

    for (const auto &c : counters_) {
        sep();
        os << "{\"ph\":\"C\",\"name\":";
        writeJsonString(os, c.name);
        os << ",\"pid\":" << c.node << ",\"tid\":0,\"ts\":";
        writeMicros(os, c.tick);
        os << ",\"args\":{\"value\":";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", c.value);
        os << buf << "}}";
    }

    os << "\n]}";
}

std::string
Tracer::toChromeTraceJson() const
{
    std::ostringstream oss;
    writeChromeTrace(oss);
    return oss.str();
}

} // namespace draid::telemetry
