/**
 * @file
 * Critical-path analyzer: turns the span stream of a run into an exact
 * per-op latency breakdown and a per-run bottleneck verdict.
 *
 * For every completed user op (a root span on the "op" lane) the analyzer
 * partitions the op's latency window across phases — queueing, NIC
 * serialization, fabric propagation, server/host CPU, SSD channel, parity
 * reduce, stripe-lock wait — by sweeping the elementary intervals between
 * span boundaries and charging each to the highest-priority phase covering
 * it. The partition is exact by construction: the phase ticks of one op sum
 * to its measured latency, with no double counting even when spans overlap
 * (an SSD read under an in-flight NIC transfer counts once, as SSD).
 *
 * It also computes each op's longest *resource chain* — the maximum total
 * time of any non-overlapping subset of its resource spans (weighted
 * interval scheduling) — a lower bound on how fast the op could finish if
 * all queueing vanished, and, across the run, the per-(node, resource) busy
 * fraction over the run window, whose maximum is the bottleneck verdict:
 * the resource that bounds throughput.
 *
 * Pure function of recorded spans; never touches the simulator.
 */

#ifndef DRAID_TELEMETRY_CRITICAL_PATH_H
#define DRAID_TELEMETRY_CRITICAL_PATH_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"
#include "telemetry/trace.h"

namespace draid::telemetry {

/**
 * Latency phases, in partition priority order (later entries win an
 * overlapping elementary interval; kQueue is the uncovered remainder).
 */
enum class Phase : std::uint8_t
{
    kQueue = 0,   ///< no recorded activity: host queues, waitNum barriers
    kLockWait,    ///< stripe-lock wait behind another writer
    kFabric,      ///< wire + switch propagation
    kNic,         ///< NIC tx/rx serialization
    kCpu,         ///< host/server command handling
    kReduce,      ///< parity/reconstruction XOR-GF reduce
    kSsd,         ///< SSD channel occupancy
};

inline constexpr std::size_t kNumPhases = 7;

/** Short stable name: "queue", "lock", "fabric", "nic", "cpu", ... */
const char *phaseName(Phase p);

/** Exact latency partition of one completed op. */
struct OpBreakdown
{
    std::uint64_t traceId = 0;
    std::string name; ///< root span name, e.g. "draid.write"
    sim::Tick start = 0;
    sim::Tick end = 0;

    /** Ticks charged to each phase; sums exactly to latency(). */
    std::array<sim::Tick, kNumPhases> phaseTicks{};

    /**
     * Longest resource chain: max total duration over non-overlapping
     * subsets of this op's resource spans. latency() - chainTicks is an
     * upper bound on what eliminating all waiting could save.
     */
    sim::Tick chainTicks = 0;

    sim::Tick latency() const { return end - start; }
    sim::Tick phase(Phase p) const
    {
        return phaseTicks[static_cast<std::size_t>(p)];
    }
};

/** Aggregate of one phase across every analyzed op. */
struct PhaseSummary
{
    std::uint64_t totalTicks = 0;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    /** totalTicks / sum of all phases' totalTicks (share of latency). */
    double share = 0.0;
};

/** Busy time of one (node, resource-lane) over the run window. */
struct ResourceBusy
{
    sim::NodeId node = 0;
    std::string lane; ///< "nic.tx", "nic.rx", "cpu", "ssd"
    sim::Tick busyTicks = 0;
    double busyFraction = 0.0; ///< of the run window
};

/** Everything the analyzer derives from one run's span stream. */
struct CriticalPathReport
{
    // draid-lint: cap(one breakdown per root span; tracer spanCap_ bounds it)
    std::vector<OpBreakdown> ops; ///< completion (root-end) order
    std::array<PhaseSummary, kNumPhases> phases{};

    /** Run window: [earliest root start, latest root end]. */
    sim::Tick windowStart = 0;
    sim::Tick windowEnd = 0;

    /** Per-resource busy, sorted by descending busy fraction. */
    // draid-lint: cap(one row per resource lane; fixed topology)
    std::vector<ResourceBusy> resources;

    bool hasVerdict() const { return !resources.empty(); }
    /** The bottleneck: the busiest resource. @pre hasVerdict() */
    const ResourceBusy &bottleneck() const { return resources.front(); }

    const PhaseSummary &phase(Phase p) const
    {
        return phases[static_cast<std::size_t>(p)];
    }
};

/**
 * Analyze a span stream (typically Tracer::spans()). Spans without an "op"
 * root (rebuild stripes, orphaned ids) contribute to resource busy but not
 * to per-op breakdowns.
 */
CriticalPathReport analyzeCriticalPath(const std::vector<TraceSpan> &spans);

/** Classify one span's phase; kQueue if the lane carries no phase. */
Phase classifySpan(const TraceSpan &span);

} // namespace draid::telemetry

#endif // DRAID_TELEMETRY_CRITICAL_PATH_H
