#include "telemetry/lane_tap.h"

#include <string>
#include <utility>

#include "telemetry/interference.h"
#include "telemetry/trace.h"

namespace draid::telemetry {

void
LaneTap::onService(const sim::ServiceRecord &rec)
{
    if (contention_ && contention_->enabled()) {
        // FIFO service: [arrival, start) is exactly tiled by the occupancy
        // segments already recorded, so the blame split sums to the wait.
        contention_->attributeWait(res_, rec.trace, rec.arrival.raw(),
                                   rec.start.raw());
        contention_->noteOccupancy(res_, rec.trace, rec.start.raw(),
                                   rec.end.raw());
    }

    if (tracer_ && tracer_->active()) {
        TraceSpan span;
        span.traceId = rec.trace;
        span.node = node_;
        span.lane = style_ == Style::kCpu ? "cpu" : rec.what;
        span.name = rec.what;
        span.start = rec.start.raw();
        span.end = rec.end.raw();
        if (contention_ && contention_->enabled())
            span.tenant = contention_->tenantOf(rec.trace);
        if (style_ == Style::kPipe)
            span.args.emplace_back("bytes", std::to_string(rec.bytes));
        tracer_->recordSpan(std::move(span));
    }
}

} // namespace draid::telemetry
