#include "telemetry/telemetry.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <utility>

namespace draid::telemetry {

void
UtilizationSampler::addSource(sim::NodeId node, std::string name,
                              std::function<sim::Tick()> busy)
{
    sources_.push_back(Source{node, std::move(name), std::move(busy), 0});
}

void
UtilizationSampler::start(sim::Simulator &sim, sim::Tick interval,
                          Tracer *tracer)
{
    assert(interval > 0);
    interval_ = interval;
    lastEmit_ = sim.now();
    nextSample_ = sim.now() + interval;
    tracer_ = tracer;
    for (auto &src : sources_)
        src.lastBusy = src.busy();
    sim.setClockObserver([this](sim::Tick now) { onClockAdvance(now); });
}

void
UtilizationSampler::onClockAdvance(sim::Tick now)
{
    if (interval_ <= 0 || now < nextSample_)
        return;
    // One sample per advance, stamped at the greatest interval boundary
    // <= now, covering the whole window since the previous emission. The
    // busy counters include committed (future) occupancy, so clamp.
    const sim::Tick boundary =
        nextSample_ + ((now - nextSample_) / interval_) * interval_;
    const sim::Tick window = boundary - lastEmit_;
    for (auto &src : sources_) {
        const sim::Tick busyNow = src.busy();
        double frac = window > 0
                          ? static_cast<double>(busyNow - src.lastBusy) /
                                static_cast<double>(window)
                          : 0.0;
        if (frac > 1.0)
            frac = 1.0;
        src.lastBusy = busyNow;
        samples_.push_back(Sample{src.node, src.name, boundary, frac});
        if (tracer_ && tracer_->enabled())
            tracer_->recordCounter(src.node, src.name, boundary, frac);
    }
    lastEmit_ = boundary;
    nextSample_ = boundary + interval_;
}

namespace {

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c; break;
        }
    }
    os << '"';
}

} // namespace

void
Telemetry::writeMetricsJson(std::ostream &os) const
{
    os << "{\"metrics\":";
    metrics_.writeJson(os);
    os << ",\"timelines\":[";
    // Samples are interleaved per window in source order; regroup them into
    // one series per (node, name), in first-seen order.
    const auto &samples = sampler_.samples();
    std::vector<std::pair<sim::NodeId, std::string>> series;
    for (const auto &s : samples) {
        auto key = std::make_pair(s.node, s.name);
        bool seen = false;
        for (const auto &k : series)
            seen = seen || k == key;
        if (!seen)
            series.push_back(std::move(key));
    }
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"node\":" << series[i].first << ",\"name\":";
        writeJsonString(os, series[i].second);
        os << ",\"samples\":[";
        bool firstSample = true;
        for (const auto &s : samples) {
            if (s.node != series[i].first || s.name != series[i].second)
                continue;
            if (!firstSample)
                os << ",";
            firstSample = false;
            char buf[48];
            std::snprintf(buf, sizeof(buf), "[%lld,%.4f]",
                          static_cast<long long>(s.tick), s.value);
            os << buf;
        }
        os << "]}";
    }
    os << "]}";
}

bool
Telemetry::saveMetricsJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeMetricsJson(out);
    out << "\n";
    return static_cast<bool>(out);
}

bool
Telemetry::saveChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    tracer_.writeChromeTrace(out);
    out << "\n";
    return static_cast<bool>(out);
}

} // namespace draid::telemetry
