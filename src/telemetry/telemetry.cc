#include "telemetry/telemetry.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <utility>

namespace draid::telemetry {

void
UtilizationSampler::addSource(sim::NodeId node, std::string name,
                              std::function<sim::Ticks()> busy)
{
    sources_.push_back(
        Source{node, std::move(name), std::move(busy), sim::Ticks::zero()});
}

void
UtilizationSampler::start(sim::Simulator &sim, sim::Ticks interval,
                          Tracer *tracer)
{
    assert(interval > sim::Ticks::zero());
    interval_ = interval;
    lastEmit_ = sim.now();
    nextSample_ = sim.now() + interval;
    tracer_ = tracer;
    for (auto &src : sources_)
        src.lastBusy = src.busy();
    sim.setClockObserver([this](sim::Ticks now) { onClockAdvance(now); });
}

void
UtilizationSampler::onClockAdvance(sim::Ticks now)
{
    if (interval_ <= sim::Ticks::zero() || now < nextSample_)
        return;
    // One sample per advance, stamped at the greatest interval boundary
    // <= now, covering the whole window since the previous emission. The
    // busy counters include committed (future) occupancy, so clamp.
    const sim::Ticks boundary =
        nextSample_ + ((now - nextSample_) / interval_) * interval_;
    ++rounds_;
    if (emitStride_ > 1 && (rounds_ - 1) % emitStride_ != 0) {
        // Skipped boundary: no emission, but the window since lastEmit_
        // keeps accumulating, so the next emitted round covers it.
        droppedSamples_ += sources_.size();
        nextSample_ = boundary + interval_;
        return;
    }
    if (!sources_.empty() &&
        samples_.size() + sources_.size() > sampleCap_)
        mergeSampleRounds();
    const sim::Ticks window = boundary - lastEmit_;
    for (auto &src : sources_) {
        const sim::Ticks busyNow = src.busy();
        double frac =
            window > sim::Ticks::zero()
                ? static_cast<double>((busyNow - src.lastBusy).raw()) /
                      static_cast<double>(window.raw())
                : 0.0;
        if (frac > 1.0)
            frac = 1.0;
        src.lastBusy = busyNow;
        samples_.push_back(Sample{src.node, src.name, boundary.raw(), frac});
        if (tracer_ && tracer_->enabled())
            tracer_->recordCounter(src.node, src.name, boundary.raw(), frac);
    }
    lastEmit_ = boundary;
    nextSample_ = boundary + interval_;
}

void
UtilizationSampler::mergeSampleRounds()
{
    // Samples arrive in whole rounds of sources_.size(); merge adjacent
    // round pairs (mean value over the doubled window, stamped at the
    // later boundary) and skip every 2nd future boundary to match.
    const std::size_t perRound = sources_.size();
    const std::size_t numRounds = samples_.size() / perRound;
    if (numRounds < 2)
        return; // cap smaller than one round: nothing left to halve
    std::vector<Sample> merged;
    merged.reserve(samples_.size() / 2 + perRound);
    std::size_t r = 0;
    for (; r + 1 < numRounds; r += 2) {
        for (std::size_t s = 0; s < perRound; ++s) {
            Sample out = samples_[(r + 1) * perRound + s];
            out.value =
                (samples_[r * perRound + s].value + out.value) / 2.0;
            merged.push_back(std::move(out));
        }
        droppedSamples_ += perRound;
    }
    for (; r < numRounds; ++r) { // odd trailing round survives as-is
        for (std::size_t s = 0; s < perRound; ++s)
            merged.push_back(std::move(samples_[r * perRound + s]));
    }
    samples_ = std::move(merged);
    emitStride_ *= 2;
}

std::uint64_t
UtilizationSampler::retainedBytes() const
{
    std::uint64_t bytes = 0;
    for (const Sample &s : samples_)
        bytes += sizeof(Sample) + s.name.size();
    return bytes;
}

namespace {

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c; break;
        }
    }
    os << '"';
}

} // namespace

void
Telemetry::writeMetricsJson(std::ostream &os) const
{
    os << "{\"metrics\":";
    metrics_.writeJson(os);
    os << ",\"timelines\":[";
    // Samples are interleaved per window in source order; regroup them into
    // one series per (node, name), in first-seen order.
    const auto &samples = sampler_.samples();
    std::vector<std::pair<sim::NodeId, std::string>> series;
    for (const auto &s : samples) {
        auto key = std::make_pair(s.node, s.name);
        bool seen = false;
        for (const auto &k : series)
            seen = seen || k == key;
        if (!seen)
            series.push_back(std::move(key));
    }
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"node\":" << series[i].first << ",\"name\":";
        writeJsonString(os, series[i].second);
        os << ",\"samples\":[";
        bool firstSample = true;
        for (const auto &s : samples) {
            if (s.node != series[i].first || s.name != series[i].second)
                continue;
            if (!firstSample)
                os << ",";
            firstSample = false;
            char buf[48];
            std::snprintf(buf, sizeof(buf), "[%lld,%.4f]",
                          static_cast<long long>(s.tick), s.value);
            os << buf;
        }
        os << "]}";
    }
    os << "]}";
}

std::uint64_t
Telemetry::retainedTelemetryBytes() const
{
    return tracer_.retainedBytes() + exemplars_.retainedBytes() +
           sampler_.retainedBytes() + contention_.retainedBytes() +
           recorder_.size() * sizeof(FlightRecorder::Record) +
           journal_.size() * sizeof(EventJournal::Event);
}

bool
Telemetry::saveMetricsJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeMetricsJson(out);
    out << "\n";
    return static_cast<bool>(out);
}

bool
Telemetry::saveChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    tracer_.writeChromeTrace(out);
    out << "\n";
    return static_cast<bool>(out);
}

} // namespace draid::telemetry
