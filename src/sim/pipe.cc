#include "sim/pipe.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "telemetry/interference.h"
#include "telemetry/trace.h"

namespace draid::sim {

Pipe::Pipe(Simulator &sim, double bytes_per_sec, Tick latency, Tick per_op)
    : sim_(sim), rate_(bytes_per_sec), latency_(latency), perOp_(per_op)
{
    assert(rate_ > 0.0);
}

void
Pipe::setRate(double bytes_per_sec)
{
    assert(bytes_per_sec > 0.0);
    rate_ = bytes_per_sec;
}

void
Pipe::transfer(std::uint64_t bytes, EventFn done)
{
    transfer(bytes, 0, std::move(done));
}

void
Pipe::transfer(std::uint64_t bytes, std::uint64_t trace, EventFn done)
{
    const Tick service =
        perOp_ + static_cast<Tick>(std::ceil(
                     static_cast<double>(bytes) / rate_ * kSecond));
    const Tick start = std::max(sim_.now(), busyUntil_);
    const Tick end = start + service;

    busyUntil_ = end;
    busyTime_ += service;
    statsBusy_ += service;
    bytes_ += bytes;
    ++ops_;

    if (trace != 0 && contention_ && contention_->enabled()) {
        // FIFO service: [now, start) is exactly tiled by the occupancy
        // segments already recorded, so the blame split sums to the wait.
        contention_->attributeWait(contentionRes_, trace, sim_.now(), start);
        contention_->noteOccupancy(contentionRes_, trace, start, end);
    }

    if (trace != 0 && tracer_ && tracer_->active()) {
        telemetry::TraceSpan span;
        span.traceId = trace;
        span.node = traceNode_;
        span.lane = traceLane_;
        span.name = traceLane_;
        span.start = start;
        span.end = end;
        if (contention_ && contention_->enabled())
            span.tenant = contention_->tenantOf(trace);
        span.args.emplace_back("bytes", std::to_string(bytes));
        tracer_->recordSpan(std::move(span));
    }

    // Engine-profiler attribution: completions carry the lane name bound
    // by bindTrace ("nic.tx", "ssd.write", ...) when available.
    sim_.scheduleAt(end + latency_,
                    *traceLane_ != '\0' ? traceLane_ : "pipe.xfer",
                    std::move(done));
}

void
Pipe::bindTrace(telemetry::Tracer *tracer, NodeId node, const char *lane)
{
    tracer_ = tracer;
    traceNode_ = node;
    traceLane_ = lane;
}

void
Pipe::bindContention(telemetry::ContentionTracker *tracker,
                     std::uint32_t res)
{
    contention_ = tracker;
    contentionRes_ = res;
}

double
Pipe::utilization(Tick window_start) const
{
    const Tick now = sim_.now();
    if (now <= window_start)
        return 0.0;
    // Clamp: commitments may extend past `now`.
    const double busy = static_cast<double>(std::min(statsBusy_,
                                                     now - window_start));
    return busy / static_cast<double>(now - window_start);
}

void
Pipe::resetStats()
{
    bytes_ = 0;
    ops_ = 0;
    statsBusy_ = std::max<Tick>(0, busyUntil_ - sim_.now());
    statsStart_ = sim_.now();
}

} // namespace draid::sim
