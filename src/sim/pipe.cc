#include "sim/pipe.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace draid::sim {

Pipe::Pipe(Simulator &sim, double bytes_per_sec, Ticks latency, Ticks per_op)
    : sim_(sim), rate_(bytes_per_sec), latency_(latency), perOp_(per_op)
{
    assert(rate_ > 0.0);
}

void
Pipe::setRate(double bytes_per_sec)
{
    assert(bytes_per_sec > 0.0);
    rate_ = bytes_per_sec;
}

void
Pipe::transfer(std::uint64_t bytes, EventFn done)
{
    transfer(bytes, 0, std::move(done));
}

void
Pipe::transfer(std::uint64_t bytes, std::uint64_t trace, EventFn done)
{
    const Ticks service =
        perOp_ + Ticks{static_cast<Tick>(std::ceil(
                     static_cast<double>(bytes) / rate_ * kSecond))};
    const Ticks start = std::max(sim_.now(), busyUntil_);
    const Ticks end = start + service;

    busyUntil_ = end;
    busyTime_ += service;
    statsBusy_ += service;
    bytes_ += bytes;
    ++ops_;

    if (trace != 0 && observer_) {
        // FIFO service: [now, start) is exactly the queueing window; the
        // telemetry tap turns it into blame splits and a trace span.
        ServiceRecord rec;
        rec.trace = trace;
        rec.arrival = sim_.now();
        rec.start = start;
        rec.end = end;
        rec.bytes = bytes;
        rec.what = label_;
        observer_->onService(rec);
    }

    // Engine-profiler attribution: completions carry the lane name set
    // by setLabel ("nic.tx", "ssd.write", ...) when available.
    sim_.scheduleAt(end + latency_,
                    *label_ != '\0' ? label_ : "pipe.xfer",
                    std::move(done));
}

double
Pipe::utilization(Ticks window_start) const
{
    const Ticks now = sim_.now();
    if (now <= window_start)
        return 0.0;
    // Clamp: commitments may extend past `now`.
    const double busy = static_cast<double>(
        std::min(statsBusy_, now - window_start).raw());
    return busy / static_cast<double>((now - window_start).raw());
}

void
Pipe::resetStats()
{
    bytes_ = 0;
    ops_ = 0;
    statsBusy_ = std::max(Ticks::zero(), busyUntil_ - sim_.now());
    statsStart_ = sim_.now();
}

} // namespace draid::sim
