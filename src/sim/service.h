/**
 * @file
 * Observe-only seam between the FIFO resources (Pipe, CpuCore) and the
 * telemetry layer.
 *
 * src/sim sits at the bottom of the layering DAG (DESIGN.md §6) and must
 * not include src/telemetry; instead, every service decision a FIFO
 * resource makes is reported through this interface, and the telemetry
 * adapters (telemetry::LaneTap) translate the record into trace spans and
 * contention-attribution calls. Implementations MUST NOT schedule events
 * or otherwise mutate the simulation: the record is a pure statement of
 * timing the resource already committed to.
 */

#ifndef DRAID_SIM_SERVICE_H
#define DRAID_SIM_SERVICE_H

#include <cstdint>

#include "sim/types.h"

namespace draid::sim {

/** Facts about one FIFO service commitment, reported observe-only. */
struct ServiceRecord
{
    /** Per-op trace id; the resource only reports when nonzero. */
    std::uint64_t trace = 0;
    Ticks arrival; ///< submission time (queueing starts here)
    Ticks start;   ///< service start (queueing ends here)
    Ticks end;     ///< service end (resource released)
    std::uint64_t bytes = 0;    ///< payload size; 0 for pure-compute work
    const char *what = nullptr; ///< work label ("parity.xor", ...); may
                                ///< be nullptr for unlabeled work
};

/** Observe-only sink for ServiceRecords (implemented in src/telemetry). */
class ServiceObserver
{
  public:
    virtual ~ServiceObserver() = default;

    /** One service commitment was made; @p rec.trace is nonzero. */
    virtual void onService(const ServiceRecord &rec) = 0;
};

} // namespace draid::sim

#endif // DRAID_SIM_SERVICE_H
