#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace draid::sim {

void
Simulator::schedule(Ticks delay, EventFn fn)
{
    assert(delay >= Ticks::zero());
    scheduleAt(now_ + delay, nullptr, std::move(fn));
}

void
Simulator::schedule(Ticks delay, const char *label, EventFn fn)
{
    assert(delay >= Ticks::zero());
    scheduleAt(now_ + delay, label, std::move(fn));
}

void
Simulator::scheduleAt(Ticks when, EventFn fn)
{
    scheduleAt(when, nullptr, std::move(fn));
}

void
Simulator::scheduleAt(Ticks when, const char *label, EventFn fn)
{
    assert(when >= now_);
    heap_.push_back(Event{when, seq_++, label, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
    if (engineObserver_)
        engineObserver_->onSchedule(when, label, pendingEvents());
}

void
Simulator::drainTick(Ticks when)
{
    const std::size_t heap_before = heap_.size();
    while (!heap_.empty() && heap_.front().when == when) {
        std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
        batch_.push_back(std::move(heap_.back()));
        heap_.pop_back();
    }
    if (engineObserver_)
        engineObserver_->onBatchDrain(when, batch_.size(), heap_before);
}

void
Simulator::execute(Event &ev)
{
    ++executed_;
    if (engineObserver_) {
        engineObserver_->onEventStart(now_, ev.label);
        ev.fn();
        engineObserver_->onEventEnd();
    } else {
        ev.fn();
    }
    // Release the closure eagerly: the batch slot stays alive until the
    // whole batch retires, and closures can pin buffers.
    ev.fn = nullptr;
}

void
Simulator::advanceTo(Ticks when)
{
    assert(when >= now_);
    const bool advanced = when > now_;
    now_ = when;
    if (advanced && clockObserver_)
        clockObserver_(now_);
}

void
Simulator::run()
{
    assert(!running_);
    running_ = true;
    stopped_ = false;
    if (engineObserver_)
        engineObserver_->onRunStart();
    while (!stopped_) {
        if (batchPos_ >= batch_.size()) {
            batch_.clear();
            batchPos_ = 0;
            if (heap_.empty())
                break;
            advanceTo(heap_.front().when);
            drainTick(now_);
        }
        execute(batch_[batchPos_++]);
    }
    if (engineObserver_)
        engineObserver_->onRunEnd();
    running_ = false;
}

void
Simulator::runUntil(Ticks deadline)
{
    assert(!running_);
    running_ = true;
    stopped_ = false;
    if (engineObserver_)
        engineObserver_->onRunStart();
    while (!stopped_) {
        if (batchPos_ >= batch_.size()) {
            batch_.clear();
            batchPos_ = 0;
            if (heap_.empty() || heap_.front().when > deadline)
                break;
            advanceTo(heap_.front().when);
            drainTick(now_);
        } else if (now_ > deadline) {
            // Batch left over from a stop() at a tick past this deadline
            // (possible when resuming with an earlier deadline): the
            // events stay pending, exactly as heap events past the
            // deadline would.
            break;
        } else {
            execute(batch_[batchPos_++]);
            continue;
        }
        // Freshly drained batch: fall through to the next iteration so
        // the now_ <= deadline guard applies uniformly.
    }
    if (!stopped_ && batchPos_ >= batch_.size() && now_ < deadline)
        advanceTo(deadline);
    if (engineObserver_)
        engineObserver_->onRunEnd();
    running_ = false;
}

} // namespace draid::sim
