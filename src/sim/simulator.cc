#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace draid::sim {

void
Simulator::schedule(Tick delay, EventFn fn)
{
    assert(delay >= 0);
    scheduleAt(now_ + delay, std::move(fn));
}

void
Simulator::scheduleAt(Tick when, EventFn fn)
{
    assert(when >= now_);
    queue_.push(Event{when, seq_++, std::move(fn)});
}

void
Simulator::run()
{
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        // Moving out of a priority_queue top requires a const_cast; the
        // element is popped immediately after, so this is safe.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        assert(ev.when >= now_);
        const bool advanced = ev.when > now_;
        now_ = ev.when;
        if (advanced && clockObserver_)
            clockObserver_(now_);
        ++executed_;
        ev.fn();
    }
}

void
Simulator::runUntil(Tick deadline)
{
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        if (queue_.top().when > deadline)
            break;
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        const bool advanced = ev.when > now_;
        now_ = ev.when;
        if (advanced && clockObserver_)
            clockObserver_(now_);
        ++executed_;
        ev.fn();
    }
    if (!stopped_ && now_ < deadline) {
        now_ = deadline;
        if (clockObserver_)
            clockObserver_(now_);
    }
}

} // namespace draid::sim
