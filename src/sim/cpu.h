/**
 * @file
 * CpuCore: a serializing compute resource.
 *
 * Models one poll-mode CPU core. Work items are expressed directly in ticks
 * of compute time (per-command parsing costs, XOR/Galois-field kernel time
 * at a calibrated bytes/sec rate) and execute FIFO. The core also tracks
 * cumulative busy time so benches can report CPU utilization, which the
 * paper uses to argue dRAID is resource-conservative (<25% of one core per
 * SSD, §7).
 *
 * Telemetry reaches the core only through the observe-only ServiceObserver
 * seam (sim/service.h): src/sim never includes src/telemetry.
 */

#ifndef DRAID_SIM_CPU_H
#define DRAID_SIM_CPU_H

#include <cstdint>

#include "sim/service.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace draid::sim {

/** One simulated CPU core executing work items in FIFO order. */
class CpuCore
{
  public:
    explicit CpuCore(Simulator &sim) : sim_(sim) {}

    /**
     * Execute a work item costing @p cost ticks of CPU time; @p done fires
     * when the item retires.
     */
    void execute(Ticks cost, EventFn done);

    /**
     * As execute(), tagged with a per-op trace id; @p what names the span
     * ("cmd.parse", "xor", ...). When an observer is attached and
     * @p trace is nonzero, the exact core-occupancy window is reported.
     */
    void execute(Ticks cost, std::uint64_t trace, const char *what,
                 EventFn done);

    /**
     * Convenience: cost of processing @p bytes at @p bytes_per_sec plus a
     * fixed @p fixed cost, executed as one work item.
     */
    void executeBytes(std::uint64_t bytes, double bytes_per_sec, Ticks fixed,
                      EventFn done);

    /** Traced variant of executeBytes(). */
    void executeBytes(std::uint64_t bytes, double bytes_per_sec, Ticks fixed,
                      std::uint64_t trace, const char *what, EventFn done);

    /** Attach the observe-only telemetry tap (telemetry::LaneTap). */
    void setObserver(ServiceObserver *observer) { observer_ = observer; }

    /** Total busy ticks accumulated. */
    Ticks busyTime() const { return busyTime_; }

    /** Utilization over [window_start, now]. */
    double utilization(Ticks window_start) const;

    /** Reset the utilization window. */
    void resetStats();

  private:
    Simulator &sim_;
    ServiceObserver *observer_ = nullptr;
    Ticks busyUntil_;
    Ticks busyTime_;
    Ticks statsBusy_;
    Ticks statsStart_;
};

} // namespace draid::sim

#endif // DRAID_SIM_CPU_H
