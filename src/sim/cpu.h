/**
 * @file
 * CpuCore: a serializing compute resource.
 *
 * Models one poll-mode CPU core. Work items are expressed directly in ticks
 * of compute time (per-command parsing costs, XOR/Galois-field kernel time
 * at a calibrated bytes/sec rate) and execute FIFO. The core also tracks
 * cumulative busy time so benches can report CPU utilization, which the
 * paper uses to argue dRAID is resource-conservative (<25% of one core per
 * SSD, §7).
 */

#ifndef DRAID_SIM_CPU_H
#define DRAID_SIM_CPU_H

#include <cstdint>

#include "sim/simulator.h"
#include "sim/types.h"

namespace draid::telemetry {
class ContentionTracker;
class Tracer;
}

namespace draid::sim {

/** One simulated CPU core executing work items in FIFO order. */
class CpuCore
{
  public:
    explicit CpuCore(Simulator &sim) : sim_(sim) {}

    /**
     * Execute a work item costing @p cost ticks of CPU time; @p done fires
     * when the item retires.
     */
    void execute(Tick cost, EventFn done);

    /**
     * As execute(), tagged with a per-op trace id; @p what names the span
     * ("cmd.parse", "xor", ...). When tracing is bound and enabled and
     * @p trace is nonzero, the exact core-occupancy window is recorded.
     */
    void execute(Tick cost, std::uint64_t trace, const char *what,
                 EventFn done);

    /**
     * Convenience: cost of processing @p bytes at @p bytes_per_sec plus a
     * fixed @p fixed cost, executed as one work item.
     */
    void executeBytes(std::uint64_t bytes, double bytes_per_sec, Tick fixed,
                      EventFn done);

    /** Traced variant of executeBytes(). */
    void executeBytes(std::uint64_t bytes, double bytes_per_sec, Tick fixed,
                      std::uint64_t trace, const char *what, EventFn done);

    /** Attach a span sink; spans land on node @p node, lane "cpu". */
    void bindTrace(telemetry::Tracer *tracer, NodeId node);

    /** Attach a contention tracker under resource id @p res (observe-only;
     *  see Pipe::bindContention). */
    void bindContention(telemetry::ContentionTracker *tracker,
                        std::uint32_t res);

    /** Total busy ticks accumulated. */
    Tick busyTime() const { return busyTime_; }

    /** Utilization over [window_start, now]. */
    double utilization(Tick window_start) const;

    /** Reset the utilization window. */
    void resetStats();

  private:
    Simulator &sim_;
    telemetry::Tracer *tracer_ = nullptr;
    NodeId traceNode_ = 0;
    telemetry::ContentionTracker *contention_ = nullptr;
    std::uint32_t contentionRes_ = 0;
    Tick busyUntil_ = 0;
    Tick busyTime_ = 0;
    Tick statsBusy_ = 0;
    Tick statsStart_ = 0;
};

} // namespace draid::sim

#endif // DRAID_SIM_CPU_H
