#include "sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "telemetry/interference.h"
#include "telemetry/trace.h"

namespace draid::sim {

void
CpuCore::execute(Tick cost, EventFn done)
{
    execute(cost, 0, "", std::move(done));
}

void
CpuCore::execute(Tick cost, std::uint64_t trace, const char *what,
                 EventFn done)
{
    assert(cost >= 0);
    const Tick start = std::max(sim_.now(), busyUntil_);
    const Tick end = start + cost;
    busyUntil_ = end;
    busyTime_ += cost;
    statsBusy_ += cost;

    if (trace != 0 && contention_ && contention_->enabled()) {
        contention_->attributeWait(contentionRes_, trace, sim_.now(), start);
        contention_->noteOccupancy(contentionRes_, trace, start, end);
    }

    if (trace != 0 && tracer_ && tracer_->active()) {
        telemetry::TraceSpan span;
        span.traceId = trace;
        span.node = traceNode_;
        span.lane = "cpu";
        span.name = what;
        span.start = start;
        span.end = end;
        if (contention_ && contention_->enabled())
            span.tenant = contention_->tenantOf(trace);
        tracer_->recordSpan(std::move(span));
    }

    // Engine-profiler attribution: reuse the trace tag ("parity.xor",
    // "host.cmd", ...) so per-source cost rolls up by work type.
    sim_.scheduleAt(end, what != nullptr && *what != '\0' ? what
                                                          : "cpu.exec",
                    std::move(done));
}

void
CpuCore::executeBytes(std::uint64_t bytes, double bytes_per_sec, Tick fixed,
                      EventFn done)
{
    executeBytes(bytes, bytes_per_sec, fixed, 0, "", std::move(done));
}

void
CpuCore::executeBytes(std::uint64_t bytes, double bytes_per_sec, Tick fixed,
                      std::uint64_t trace, const char *what, EventFn done)
{
    assert(bytes_per_sec > 0.0);
    const Tick cost =
        fixed + static_cast<Tick>(std::ceil(
                    static_cast<double>(bytes) / bytes_per_sec * kSecond));
    execute(cost, trace, what, std::move(done));
}

void
CpuCore::bindTrace(telemetry::Tracer *tracer, NodeId node)
{
    tracer_ = tracer;
    traceNode_ = node;
}

void
CpuCore::bindContention(telemetry::ContentionTracker *tracker,
                        std::uint32_t res)
{
    contention_ = tracker;
    contentionRes_ = res;
}

double
CpuCore::utilization(Tick window_start) const
{
    const Tick now = sim_.now();
    if (now <= window_start)
        return 0.0;
    const double busy = static_cast<double>(std::min(statsBusy_,
                                                     now - window_start));
    return busy / static_cast<double>(now - window_start);
}

void
CpuCore::resetStats()
{
    statsBusy_ = std::max<Tick>(0, busyUntil_ - sim_.now());
    statsStart_ = sim_.now();
}

} // namespace draid::sim
