#include "sim/cpu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace draid::sim {

void
CpuCore::execute(Ticks cost, EventFn done)
{
    execute(cost, 0, "", std::move(done));
}

void
CpuCore::execute(Ticks cost, std::uint64_t trace, const char *what,
                 EventFn done)
{
    assert(cost >= Ticks::zero());
    const Ticks start = std::max(sim_.now(), busyUntil_);
    const Ticks end = start + cost;
    busyUntil_ = end;
    busyTime_ += cost;
    statsBusy_ += cost;

    if (trace != 0 && observer_) {
        ServiceRecord rec;
        rec.trace = trace;
        rec.arrival = sim_.now();
        rec.start = start;
        rec.end = end;
        rec.what = what;
        observer_->onService(rec);
    }

    // Engine-profiler attribution: reuse the trace tag ("parity.xor",
    // "host.cmd", ...) so per-source cost rolls up by work type.
    sim_.scheduleAt(end, what != nullptr && *what != '\0' ? what
                                                          : "cpu.exec",
                    std::move(done));
}

void
CpuCore::executeBytes(std::uint64_t bytes, double bytes_per_sec, Ticks fixed,
                      EventFn done)
{
    executeBytes(bytes, bytes_per_sec, fixed, 0, "", std::move(done));
}

void
CpuCore::executeBytes(std::uint64_t bytes, double bytes_per_sec, Ticks fixed,
                      std::uint64_t trace, const char *what, EventFn done)
{
    assert(bytes_per_sec > 0.0);
    const Ticks cost =
        fixed + Ticks{static_cast<Tick>(std::ceil(
                    static_cast<double>(bytes) / bytes_per_sec * kSecond))};
    execute(cost, trace, what, std::move(done));
}

double
CpuCore::utilization(Ticks window_start) const
{
    const Ticks now = sim_.now();
    if (now <= window_start)
        return 0.0;
    const double busy = static_cast<double>(
        std::min(statsBusy_, now - window_start).raw());
    return busy / static_cast<double>((now - window_start).raw());
}

void
CpuCore::resetStats()
{
    statsBusy_ = std::max(Ticks::zero(), busyUntil_ - sim_.now());
    statsStart_ = sim_.now();
}

} // namespace draid::sim
