/**
 * @file
 * Discrete-event simulator core: a virtual clock and an event queue.
 *
 * The simulator is single-threaded and fully deterministic: events that are
 * scheduled for the same tick fire in scheduling order (FIFO tie-break by a
 * monotonically increasing sequence number). There is deliberately no access
 * to wall-clock time anywhere in the simulation.
 */

#ifndef DRAID_SIM_SIMULATOR_H
#define DRAID_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace draid::sim {

/** An event callback. Fired exactly once at its scheduled tick. */
using EventFn = std::function<void()>;

/**
 * The discrete-event engine.
 *
 * All simulated components (pipes, CPU cores, NICs, SSDs, controllers) hold
 * a reference to one Simulator and schedule continuation callbacks on it.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @pre delay >= 0
     */
    void schedule(Tick delay, EventFn fn);

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @pre when >= now()
     */
    void scheduleAt(Tick when, EventFn fn);

    /** Run until the event queue drains or stop() is called. */
    void run();

    /**
     * Run until the clock reaches @p deadline (inclusive of events at the
     * deadline tick) or the queue drains. The clock is advanced to
     * @p deadline even if the queue drains earlier.
     */
    void runUntil(Tick deadline);

    /** Run for @p duration ticks from the current time. */
    void runFor(Tick duration) { runUntil(now_ + duration); }

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopped_ = true; }

    /** Number of events executed so far (for tests and sanity checks). */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /**
     * Install an observe-only hook fired whenever the clock advances to a
     * new tick (before the first event at that tick executes). Used by the
     * telemetry utilization sampler. The observer MUST NOT schedule events
     * or otherwise mutate the simulation — it exists precisely so that
     * sampling cannot perturb event ordering. Pass nullptr to remove.
     */
    void setClockObserver(std::function<void(Tick)> fn)
    {
        clockObserver_ = std::move(fn);
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct EventOrder
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
    std::function<void(Tick)> clockObserver_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
};

} // namespace draid::sim

#endif // DRAID_SIM_SIMULATOR_H
