/**
 * @file
 * Discrete-event simulator core: a virtual clock and an event queue.
 *
 * The simulator is single-threaded and fully deterministic: events that are
 * scheduled for the same tick fire in scheduling order (FIFO tie-break by a
 * monotonically increasing sequence number). There is deliberately no access
 * to wall-clock time anywhere in the simulation; host-time measurement of
 * the engine itself happens through the observe-only EngineObserver hook,
 * whose implementations live in src/telemetry/ (the only directory the
 * draid-lint wall-clock rule exempts).
 *
 * All simulated-time parameters and returns are the strong sim::Ticks type
 * (draid-lint rule tick-unit): a raw integer can never silently cross the
 * scheduling boundary with the wrong unit.
 */

#ifndef DRAID_SIM_SIMULATOR_H
#define DRAID_SIM_SIMULATOR_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace draid::sim {

/** An event callback. Fired exactly once at its scheduled tick. */
using EventFn = std::function<void()>;

/**
 * Observe-only hook into the engine's own machinery, mirroring the
 * clock-observer contract: implementations MUST NOT schedule events, call
 * run()/stop(), or otherwise mutate the simulation. The hooks exist so a
 * profiler (telemetry::SimProfiler) can attribute *host* wall-clock cost
 * to event sources without perturbing event order — simulated output must
 * be byte-identical whether an observer is installed or not.
 *
 * Labels passed to the hooks are the static strings given to the labeled
 * schedule()/scheduleAt() overloads; nullptr means the call site was not
 * tagged. The engine itself never reads host time: any clock access
 * belongs in the observer implementation under src/telemetry/.
 */
class EngineObserver
{
  public:
    virtual ~EngineObserver() = default;

    /** An event was pushed; @p pending counts events now queued. */
    virtual void onSchedule(Ticks when, const char *label,
                            std::size_t pending) = 0;

    /**
     * All events at tick @p when were just drained into the run batch.
     * @p batch is the same-tick batch size, @p heap_before the queue
     * depth immediately before the drain.
     */
    virtual void onBatchDrain(Ticks when, std::size_t batch,
                              std::size_t heap_before) = 0;

    /** Fired immediately before an event callback executes. */
    virtual void onEventStart(Ticks now, const char *label) = 0;

    /** Fired immediately after the event callback returns. */
    virtual void onEventEnd() = 0;

    /** run()/runUntil() entered. */
    virtual void onRunStart() = 0;

    /** run()/runUntil() returned. */
    virtual void onRunEnd() = 0;
};

/**
 * The discrete-event engine.
 *
 * All simulated components (pipes, CPU cores, NICs, SSDs, controllers) hold
 * a reference to one Simulator and schedule continuation callbacks on it.
 */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Ticks now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay ticks from now.
     * @pre delay >= zero
     */
    void schedule(Ticks delay, EventFn fn);

    /**
     * As above, tagged with a cost-attribution label for the engine
     * profiler. @p label must point at storage that outlives the event
     * (in practice: a string literal). The label has no effect on the
     * simulation; it only reaches the EngineObserver.
     */
    void schedule(Ticks delay, const char *label, EventFn fn);

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @pre when >= now()
     */
    void scheduleAt(Ticks when, EventFn fn);

    /** Labeled variant of scheduleAt(); see the labeled schedule(). */
    void scheduleAt(Ticks when, const char *label, EventFn fn);

    /**
     * Run until the event queue drains or stop() is called. Not
     * reentrant: events must not call run()/runUntil() themselves (use
     * stop() and resume from the driver instead; draid-lint rule
     * callback-discipline enforces this statically).
     */
    void run();

    /**
     * Run until the clock reaches @p deadline (inclusive of events at the
     * deadline tick) or the queue drains. The clock is advanced to
     * @p deadline even if the queue drains earlier.
     */
    void runUntil(Ticks deadline);

    /** Run for @p duration ticks from the current time. */
    void runFor(Ticks duration) { runUntil(now_ + duration); }

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopped_ = true; }

    /** Number of events executed so far (for tests and sanity checks). */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Number of events currently pending (heap + undrained batch rest). */
    std::size_t pendingEvents() const
    {
        return heap_.size() + (batch_.size() - batchPos_);
    }

    /**
     * Install an observe-only hook fired whenever the clock advances to a
     * new tick (before the first event at that tick executes). Used by the
     * telemetry utilization sampler. The observer MUST NOT schedule events
     * or otherwise mutate the simulation — it exists precisely so that
     * sampling cannot perturb event ordering. Pass nullptr to remove.
     */
    void setClockObserver(std::function<void(Ticks)> fn)
    {
        clockObserver_ = std::move(fn);
    }

    /**
     * Install the engine profiling hook (see EngineObserver). Observe-only
     * under the same contract as the clock observer; the pointer must
     * outlive the simulator or be cleared with nullptr first.
     */
    void setEngineObserver(EngineObserver *observer)
    {
        engineObserver_ = observer;
    }

  private:
    struct Event
    {
        Ticks when;
        std::uint64_t seq;
        const char *label; ///< static attribution tag; may be nullptr
        EventFn fn;
    };

    struct EventOrder
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * Move every event at tick @p when from the heap into batch_ (in FIFO
     * seq order). Draining through pop_heap + vector::back lets the event
     * move out legally — no const_cast out of a priority_queue top — and
     * amortizes per-event pop cost across the same-tick batch.
     */
    void drainTick(Ticks when);

    /** Execute one drained event, bracketing it with the observer hooks. */
    void execute(Event &ev);

    /** Advance the clock to @p when, firing the clock observer. */
    void advanceTo(Ticks when);

    // draid-lint: cap(pending events; drained to batch_ every tick)
    std::vector<Event> heap_; ///< binary min-heap under EventOrder
    // draid-lint: cap(same-tick batch; cleared before every drain)
    std::vector<Event> batch_; ///< current same-tick batch, FIFO order
    std::size_t batchPos_ = 0; ///< next unexecuted event in batch_
    std::function<void(Ticks)> clockObserver_;
    EngineObserver *engineObserver_ = nullptr;
    Ticks now_;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
    bool running_ = false; ///< reentrancy guard (assert-only)
};

} // namespace draid::sim

#endif // DRAID_SIM_SIMULATOR_H
