/**
 * @file
 * Deterministic pseudo-random number generation for workloads and policies.
 *
 * A thin wrapper over xoshiro256** with explicit seeding. Every simulation
 * component draws from an Rng instance it owns, so runs are reproducible
 * bit-for-bit given the same seed.
 */

#ifndef DRAID_SIM_RNG_H
#define DRAID_SIM_RNG_H

#include <cstdint>

namespace draid::sim {

/** Deterministic random number generator (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. @pre lo <= hi */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of true. */
    bool nextBool(double p);

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

  private:
    std::uint64_t s_[4];
};

} // namespace draid::sim

#endif // DRAID_SIM_RNG_H
