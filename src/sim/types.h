/**
 * @file
 * Fundamental time and identifier types shared by the whole simulator.
 *
 * One unit, two spellings:
 *
 *  - Tick  — the raw int64 nanosecond count. Storage and serialization
 *            only: trace-span stamps, journal entries, JSON export, and
 *            struct fields that must stay plain integers.
 *  - Ticks — the strong duration/instant type wrapping a Tick. The only
 *            time type allowed in scheduling and latency API signatures
 *            (enforced by the draid-lint `tick-unit` rule; DESIGN.md §6).
 *            Construction is explicit, there is no implicit mixing with
 *            integers, and unit conversions are checked — so a µs count
 *            can never silently flow into an API expecting ns.
 *
 * All arithmetic on Ticks is the same int64 arithmetic the raw count
 * would do; wrapping is behavior-neutral by construction.
 */

#ifndef DRAID_SIM_TYPES_H
#define DRAID_SIM_TYPES_H

#include <cassert>
#include <cstdint>

namespace draid::sim {

/** Simulated time in integer nanoseconds (raw count; see Ticks). */
using Tick = std::int64_t;

/** Convenience tick constants. */
constexpr Tick kNanosecond = 1;
constexpr Tick kMicrosecond = 1'000;
constexpr Tick kMillisecond = 1'000'000;
constexpr Tick kSecond = 1'000'000'000;

/**
 * A strong simulated-time quantity (duration or instant), in ticks.
 *
 * The contract:
 *  - explicit construction from a raw count: `Ticks{raw}`, or unit-named
 *    factories `Ticks::us(84)`, `Ticks::ms(50)`, ...;
 *  - no implicit conversion to or from integers — crossing the boundary
 *    is always spelled (`.raw()`, `.toNs()`, `.toUs()`);
 *  - `toNs()` is exact by definition (ticks are nanoseconds); `toUs()`
 *    is checked: it asserts the value is a whole number of microseconds,
 *    so lossy unit truncation cannot hide in a conversion. For display
 *    math use the lossy-but-explicit `toMicros(Ticks)` / `toSeconds(Ticks)`
 *    free functions, which return double.
 */
class Ticks
{
  public:
    constexpr Ticks() = default;
    constexpr explicit Ticks(Tick raw_ns) : v_(raw_ns) {}

    static constexpr Ticks zero() { return Ticks{0}; }
    static constexpr Ticks ns(Tick n) { return Ticks{n * kNanosecond}; }
    static constexpr Ticks us(Tick n) { return Ticks{n * kMicrosecond}; }
    static constexpr Ticks ms(Tick n) { return Ticks{n * kMillisecond}; }
    static constexpr Ticks sec(Tick n) { return Ticks{n * kSecond}; }

    /** Seconds → ticks, rounded to nearest (same rounding as the
     *  historical fromSeconds(), so calibration constants are stable). */
    static constexpr Ticks fromSeconds(double s)
    {
        return Ticks{static_cast<Tick>(s * static_cast<double>(kSecond) +
                                       0.5)};
    }

    /** The raw tick count, for storage/serialization edges. */
    constexpr Tick raw() const { return v_; }

    /** Checked ns conversion (exact: one tick is one nanosecond). */
    constexpr Tick toNs() const { return v_; }

    /** Checked µs conversion: asserts the value is whole microseconds. */
    constexpr Tick toUs() const
    {
        return assert(v_ % kMicrosecond == 0), v_ / kMicrosecond;
    }

    constexpr Ticks operator-() const { return Ticks{-v_}; }
    constexpr Ticks &operator+=(Ticks o) { v_ += o.v_; return *this; }
    constexpr Ticks &operator-=(Ticks o) { v_ -= o.v_; return *this; }

    friend constexpr Ticks operator+(Ticks a, Ticks b)
    {
        return Ticks{a.v_ + b.v_};
    }
    friend constexpr Ticks operator-(Ticks a, Ticks b)
    {
        return Ticks{a.v_ - b.v_};
    }
    /** Scalar scaling keeps the unit; Ticks*Ticks would be ns² and does
     *  not exist. */
    friend constexpr Ticks operator*(Ticks t, std::int64_t k)
    {
        return Ticks{t.v_ * k};
    }
    friend constexpr Ticks operator*(std::int64_t k, Ticks t)
    {
        return Ticks{t.v_ * k};
    }
    friend constexpr Ticks operator/(Ticks t, std::int64_t k)
    {
        return Ticks{t.v_ / k};
    }
    /** Duration ratio: unitless. */
    friend constexpr std::int64_t operator/(Ticks a, Ticks b)
    {
        return a.v_ / b.v_;
    }
    friend constexpr Ticks operator%(Ticks a, Ticks b)
    {
        return Ticks{a.v_ % b.v_};
    }

    friend constexpr bool operator==(Ticks a, Ticks b)
    {
        return a.v_ == b.v_;
    }
    friend constexpr bool operator!=(Ticks a, Ticks b)
    {
        return a.v_ != b.v_;
    }
    friend constexpr bool operator<(Ticks a, Ticks b) { return a.v_ < b.v_; }
    friend constexpr bool operator<=(Ticks a, Ticks b)
    {
        return a.v_ <= b.v_;
    }
    friend constexpr bool operator>(Ticks a, Ticks b) { return a.v_ > b.v_; }
    friend constexpr bool operator>=(Ticks a, Ticks b)
    {
        return a.v_ >= b.v_;
    }

  private:
    Tick v_ = 0;
};

/** Convert a tick count to floating-point seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr double
toSeconds(Ticks t)
{
    return toSeconds(t.raw());
}

/** Convert a tick count to floating-point microseconds. */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

constexpr double
toMicros(Ticks t)
{
    return toMicros(t.raw());
}

/** Convert floating-point seconds to ticks (round to nearest). */
constexpr Tick
fromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond) + 0.5);
}

/** Logical identifier of a node (host or storage server) in the cluster. */
using NodeId = std::uint32_t;

/** Identifier reserved for "no node". */
constexpr NodeId kInvalidNode = 0xffffffffu;

} // namespace draid::sim

#endif // DRAID_SIM_TYPES_H
