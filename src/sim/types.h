/**
 * @file
 * Fundamental time and identifier types shared by the whole simulator.
 */

#ifndef DRAID_SIM_TYPES_H
#define DRAID_SIM_TYPES_H

#include <cstdint>

namespace draid::sim {

/** Simulated time in integer nanoseconds. */
using Tick = std::int64_t;

/** Convenience tick constants. */
constexpr Tick kNanosecond = 1;
constexpr Tick kMicrosecond = 1'000;
constexpr Tick kMillisecond = 1'000'000;
constexpr Tick kSecond = 1'000'000'000;

/** Convert a tick count to floating-point seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert a tick count to floating-point microseconds. */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert floating-point seconds to ticks (round to nearest). */
constexpr Tick
fromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond) + 0.5);
}

/** Logical identifier of a node (host or storage server) in the cluster. */
using NodeId = std::uint32_t;

/** Identifier reserved for "no node". */
constexpr NodeId kInvalidNode = 0xffffffffu;

} // namespace draid::sim

#endif // DRAID_SIM_TYPES_H
