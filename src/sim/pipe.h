/**
 * @file
 * Pipe: a FIFO store-and-forward bandwidth resource.
 *
 * A Pipe models any component whose throughput is limited by a serial
 * channel: a NIC port direction (tx or rx), an SSD read or write channel,
 * or a PCIe link. Transfers are serviced in submission order; each transfer
 * occupies the channel for `bytes / rate` (plus a fixed per-operation
 * overhead), and the completion callback fires an additional `latency`
 * after the channel is released (propagation / media latency that does not
 * consume bandwidth).
 *
 * This simple model produces the two behaviours the evaluation depends on:
 * a hard bandwidth ceiling under load, and queueing latency that grows with
 * offered load.
 *
 * Telemetry reaches the pipe only through the observe-only ServiceObserver
 * seam (sim/service.h): src/sim never includes src/telemetry.
 */

#ifndef DRAID_SIM_PIPE_H
#define DRAID_SIM_PIPE_H

#include <cstdint>

#include "sim/service.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace draid::sim {

/** A FIFO bandwidth-limited channel. */
class Pipe
{
  public:
    /**
     * @param sim        owning simulator
     * @param bytes_per_sec  channel bandwidth
     * @param latency    post-service latency added before the completion
     *                   callback fires (does not occupy the channel)
     * @param per_op     fixed channel occupancy added to every transfer
     */
    Pipe(Simulator &sim, double bytes_per_sec, Ticks latency = Ticks::zero(),
         Ticks per_op = Ticks::zero());

    /**
     * Submit a transfer of @p bytes; @p done fires when the last byte has
     * traversed the channel plus the fixed latency.
     */
    void transfer(std::uint64_t bytes, EventFn done);

    /**
     * As above, tagged with a per-op trace id. When an observer is
     * attached and @p trace is nonzero, the exact channel-occupancy
     * window (queueing excluded, service included) is reported through
     * the ServiceObserver seam.
     */
    void transfer(std::uint64_t bytes, std::uint64_t trace, EventFn done);

    /**
     * Name this channel for engine-profiler attribution and trace lanes
     * ("nic.tx", "ssd.write", ...). @p lane must be a string literal (or
     * outlive the pipe); it also becomes the label of every completion
     * event the pipe schedules.
     */
    void setLabel(const char *lane) { label_ = lane; }

    /** The channel's lane label ("" until setLabel()). */
    const char *label() const { return label_; }

    /**
     * Attach the observe-only telemetry tap (telemetry::LaneTap). While
     * attached, every traced transfer reports its exact service window;
     * the observer never changes the transfer timing computed above.
     */
    void setObserver(ServiceObserver *observer) { observer_ = observer; }

    /** Change the channel bandwidth (takes effect for future transfers). */
    void setRate(double bytes_per_sec);

    /** Channel bandwidth in bytes per second. */
    double rate() const { return rate_; }

    /** Total bytes ever pushed through the channel. */
    std::uint64_t bytesTransferred() const { return bytes_; }

    /** Total transfers ever submitted. */
    std::uint64_t opsTransferred() const { return ops_; }

    /** Total ticks the channel has been (or is committed to be) busy. */
    Ticks busyTime() const { return busyTime_; }

    /** Tick at which the channel becomes free given current commitments. */
    Ticks busyUntil() const { return busyUntil_; }

    /**
     * Fraction of time busy over [window_start, now]. Used by the
     * bandwidth-aware reconstruction planner to estimate available
     * bandwidth per node.
     */
    double utilization(Ticks window_start) const;

    /** Reset accounting counters (not the busy horizon). */
    void resetStats();

  private:
    Simulator &sim_;
    double rate_;
    Ticks latency_;
    Ticks perOp_;

    const char *label_ = "";
    ServiceObserver *observer_ = nullptr;

    Ticks busyUntil_;
    Ticks busyTime_;
    std::uint64_t bytes_ = 0;
    std::uint64_t ops_ = 0;

    // Stats window bookkeeping for utilization().
    Ticks statsStart_;
    Ticks statsBusy_;
};

} // namespace draid::sim

#endif // DRAID_SIM_PIPE_H
