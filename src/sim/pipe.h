/**
 * @file
 * Pipe: a FIFO store-and-forward bandwidth resource.
 *
 * A Pipe models any component whose throughput is limited by a serial
 * channel: a NIC port direction (tx or rx), an SSD read or write channel,
 * or a PCIe link. Transfers are serviced in submission order; each transfer
 * occupies the channel for `bytes / rate` (plus a fixed per-operation
 * overhead), and the completion callback fires an additional `latency`
 * after the channel is released (propagation / media latency that does not
 * consume bandwidth).
 *
 * This simple model produces the two behaviours the evaluation depends on:
 * a hard bandwidth ceiling under load, and queueing latency that grows with
 * offered load.
 */

#ifndef DRAID_SIM_PIPE_H
#define DRAID_SIM_PIPE_H

#include <cstdint>

#include "sim/simulator.h"
#include "sim/types.h"

namespace draid::telemetry {
class ContentionTracker;
class Tracer;
}

namespace draid::sim {

/** A FIFO bandwidth-limited channel. */
class Pipe
{
  public:
    /**
     * @param sim        owning simulator
     * @param bytes_per_sec  channel bandwidth
     * @param latency    post-service latency added before the completion
     *                   callback fires (does not occupy the channel)
     * @param per_op     fixed channel occupancy added to every transfer
     */
    Pipe(Simulator &sim, double bytes_per_sec, Tick latency = 0,
         Tick per_op = 0);

    /**
     * Submit a transfer of @p bytes; @p done fires when the last byte has
     * traversed the channel plus the fixed latency.
     */
    void transfer(std::uint64_t bytes, EventFn done);

    /**
     * As above, tagged with a per-op trace id. When tracing is bound and
     * enabled and @p trace is nonzero, the exact channel-occupancy window
     * (queueing excluded, service included) is recorded as a span.
     */
    void transfer(std::uint64_t bytes, std::uint64_t trace, EventFn done);

    /**
     * Attach a span sink. @p lane names the Chrome thread ("nic.tx",
     * "ssd.write", ...); spans are recorded on node @p node. Observe-only:
     * tracing never changes the transfer timing computed above.
     */
    void bindTrace(telemetry::Tracer *tracer, NodeId node, const char *lane);

    /**
     * Attach a contention tracker under resource id @p res. Observe-only
     * like bindTrace: while the tracker is enabled, every traced transfer
     * records its exact channel occupancy and any queue-wait is blamed on
     * the tenants occupying the channel during the wait.
     */
    void bindContention(telemetry::ContentionTracker *tracker,
                        std::uint32_t res);

    /** Change the channel bandwidth (takes effect for future transfers). */
    void setRate(double bytes_per_sec);

    /** Channel bandwidth in bytes per second. */
    double rate() const { return rate_; }

    /** Total bytes ever pushed through the channel. */
    std::uint64_t bytesTransferred() const { return bytes_; }

    /** Total transfers ever submitted. */
    std::uint64_t opsTransferred() const { return ops_; }

    /** Total ticks the channel has been (or is committed to be) busy. */
    Tick busyTime() const { return busyTime_; }

    /** Tick at which the channel becomes free given current commitments. */
    Tick busyUntil() const { return busyUntil_; }

    /**
     * Fraction of time busy over [window_start, now]. Used by the
     * bandwidth-aware reconstruction planner to estimate available
     * bandwidth per node.
     */
    double utilization(Tick window_start) const;

    /** Reset accounting counters (not the busy horizon). */
    void resetStats();

  private:
    Simulator &sim_;
    double rate_;
    Tick latency_;
    Tick perOp_;

    telemetry::Tracer *tracer_ = nullptr;
    NodeId traceNode_ = 0;
    const char *traceLane_ = "";
    telemetry::ContentionTracker *contention_ = nullptr;
    std::uint32_t contentionRes_ = 0;

    Tick busyUntil_ = 0;
    Tick busyTime_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t ops_ = 0;

    // Stats window bookkeeping for utilization().
    Tick statsStart_ = 0;
    Tick statsBusy_ = 0;
};

} // namespace draid::sim

#endif // DRAID_SIM_PIPE_H
