#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace draid::sim {

void
LatencyRecorder::record(Ticks sample)
{
    const Tick raw = sample.raw();
    const std::uint64_t idx = count_++;
    sum_ += raw;
    const auto u = static_cast<unsigned __int128>(
        static_cast<std::uint64_t>(raw));
    sumSq_ += u * u;
    if (count_ == 1) {
        min_ = raw;
        max_ = raw;
    } else {
        min_ = std::min(min_, raw);
        max_ = std::max(max_, raw);
    }
    if (idx % stride_ != 0)
        return;
    if (samples_.size() >= kSampleCap)
        decimate();
    samples_.push_back(raw);
    sorted_ = false;
}

void
LatencyRecorder::decimate()
{
    // Keep every 2nd retained sample. Before any percentile query the
    // retained set is in arrival order and the survivors stay on the
    // `idx % stride == 0` lattice; after a query it is sorted, and
    // keeping every 2nd order statistic is an equally uniform subsample.
    // Either way the result is a pure function of the recorded sequence
    // and the (deterministic) query sequence.
    std::vector<Tick> survivors;
    survivors.reserve(samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < samples_.size(); i += 2)
        survivors.push_back(samples_[i]);
    samples_ = std::move(survivors);
    stride_ *= 2;
}

Ticks
LatencyRecorder::min() const
{
    return Ticks{count_ == 0 ? 0 : min_};
}

Ticks
LatencyRecorder::max() const
{
    return Ticks{count_ == 0 ? 0 : max_};
}

double
LatencyRecorder::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double
LatencyRecorder::stddev() const
{
    const std::uint64_t n = count_;
    if (n < 2)
        return 0.0;
    // Exact integral moments: Var = (n·Σs² − (Σs)²) / n². Samples are
    // ticks (≤ ~2^40) so the 128-bit products cannot overflow, and the
    // single fp conversion at the edge keeps the result independent of
    // summation order (draid-lint fp-accum). The running sumSq_ covers
    // every recorded sample, so stddev stays exact under decimation.
    const auto sum = static_cast<unsigned __int128>(
        static_cast<std::uint64_t>(sum_));
    const unsigned __int128 num =
        static_cast<unsigned __int128>(n) * sumSq_ - sum * sum;
    return std::sqrt(static_cast<double>(num)) / static_cast<double>(n);
}

Ticks
LatencyRecorder::percentile(double p) const
{
    if (samples_.empty())
        return Ticks::zero();
    assert(p >= 0.0 && p <= 100.0);
    // The extremes are exact running aggregates — decimation must not
    // lose the true min/max — and nearest-rank rounding must not shift
    // them onto a neighbouring sample.
    if (p <= 0.0)
        return Ticks{min_};
    if (p >= 100.0)
        return Ticks{max_};
    sortIfNeeded();
    const auto n = samples_.size();
    // The epsilon absorbs floating-point noise in p/100*n (e.g. 0.999*1000
    // = 999.0000000000001) that would otherwise bump the rank past an
    // exactly-representable boundary.
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n) - 1e-9));
    if (rank > 0)
        --rank;
    rank = std::min(rank, n - 1);
    return Ticks{samples_[rank]};
}

void
LatencyRecorder::clear()
{
    samples_.clear();
    sum_ = 0;
    sumSq_ = 0;
    count_ = 0;
    stride_ = 1;
    min_ = 0;
    max_ = 0;
    sorted_ = true;
}

void
LatencyRecorder::sortIfNeeded() const
{
    if (!sorted_) {
        auto &mut = const_cast<std::vector<Tick> &>(samples_);
        std::sort(mut.begin(), mut.end());
        const_cast<bool &>(sorted_) = true;
    }
}

void
ThroughputMeter::start(Ticks now)
{
    bytes_ = 0;
    ops_ = 0;
    begin_ = now;
    end_ = now;
}

void
ThroughputMeter::complete(std::uint64_t bytes)
{
    bytes_ += bytes;
    ++ops_;
}

void
ThroughputMeter::finish(Ticks now)
{
    end_ = now;
}

double
ThroughputMeter::bandwidthMBps() const
{
    const Ticks dt = end_ - begin_;
    if (dt <= Ticks::zero())
        return 0.0;
    return static_cast<double>(bytes_) / toSeconds(dt) / 1e6;
}

double
ThroughputMeter::kiops() const
{
    const Ticks dt = end_ - begin_;
    if (dt <= Ticks::zero())
        return 0.0;
    return static_cast<double>(ops_) / toSeconds(dt) / 1e3;
}

} // namespace draid::sim
