#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace draid::sim {

void
LatencyRecorder::record(Tick sample)
{
    samples_.push_back(sample);
    sum_ += sample;
    sorted_ = false;
}

Tick
LatencyRecorder::min() const
{
    if (samples_.empty())
        return 0;
    sortIfNeeded();
    return samples_.front();
}

Tick
LatencyRecorder::max() const
{
    if (samples_.empty())
        return 0;
    sortIfNeeded();
    return samples_.back();
}

double
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(samples_.size());
}

double
LatencyRecorder::stddev() const
{
    const auto n = samples_.size();
    if (n < 2)
        return 0.0;
    // Exact integral moments: Var = (n·Σs² − (Σs)²) / n². Samples are
    // ticks (≤ ~2^40) so the 128-bit products cannot overflow, and the
    // single fp conversion at the edge keeps the result independent of
    // summation order (draid-lint fp-accum).
    unsigned __int128 sum_sq = 0;
    for (Tick s : samples_) {
        const auto u = static_cast<unsigned __int128>(
            static_cast<std::uint64_t>(s));
        sum_sq += u * u;
    }
    const auto sum = static_cast<unsigned __int128>(
        static_cast<std::uint64_t>(sum_));
    const unsigned __int128 num =
        static_cast<unsigned __int128>(n) * sum_sq - sum * sum;
    return std::sqrt(static_cast<double>(num)) / static_cast<double>(n);
}

Tick
LatencyRecorder::percentile(double p) const
{
    if (samples_.empty())
        return 0;
    assert(p >= 0.0 && p <= 100.0);
    sortIfNeeded();
    // The extremes are exact by definition; nearest-rank rounding must not
    // shift them onto a neighbouring sample.
    if (p <= 0.0)
        return samples_.front();
    if (p >= 100.0)
        return samples_.back();
    const auto n = samples_.size();
    // The epsilon absorbs floating-point noise in p/100*n (e.g. 0.999*1000
    // = 999.0000000000001) that would otherwise bump the rank past an
    // exactly-representable boundary.
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n) - 1e-9));
    if (rank > 0)
        --rank;
    rank = std::min(rank, n - 1);
    return samples_[rank];
}

void
LatencyRecorder::clear()
{
    samples_.clear();
    sum_ = 0;
    sorted_ = true;
}

void
LatencyRecorder::sortIfNeeded() const
{
    if (!sorted_) {
        auto &mut = const_cast<std::vector<Tick> &>(samples_);
        std::sort(mut.begin(), mut.end());
        const_cast<bool &>(sorted_) = true;
    }
}

void
ThroughputMeter::start(Tick now)
{
    bytes_ = 0;
    ops_ = 0;
    begin_ = now;
    end_ = now;
}

void
ThroughputMeter::complete(std::uint64_t bytes)
{
    bytes_ += bytes;
    ++ops_;
}

void
ThroughputMeter::finish(Tick now)
{
    end_ = now;
}

double
ThroughputMeter::bandwidthMBps() const
{
    const Tick dt = end_ - begin_;
    if (dt <= 0)
        return 0.0;
    return static_cast<double>(bytes_) / toSeconds(dt) / 1e6;
}

double
ThroughputMeter::kiops() const
{
    const Tick dt = end_ - begin_;
    if (dt <= 0)
        return 0.0;
    return static_cast<double>(ops_) / toSeconds(dt) / 1e3;
}

} // namespace draid::sim
