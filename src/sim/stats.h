/**
 * @file
 * Measurement helpers: latency distributions and throughput meters.
 *
 * Public time-valued parameters and results use the strong sim::Ticks type
 * (draid-lint rule tick-unit); the retained sample vector stays raw Tick
 * internally, converted only at the API edge.
 */

#ifndef DRAID_SIM_STATS_H
#define DRAID_SIM_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/types.h"

namespace draid::sim {

/**
 * Records a distribution of latencies (in ticks) and computes summary
 * statistics with memory bounded independent of sample count: count, sum,
 * sum-of-squares, min and max are exact running aggregates, while the
 * retained sample set — used only for interior percentiles — is capped at
 * kSampleCap and decimated in place on overflow (keep 1-in-stride, stride
 * doubled). Every decision is a pure function of the recorded sequence,
 * so results stay byte-identical across runs.
 */
class LatencyRecorder
{
  public:
    /** Retained samples before stride decimation kicks in. */
    static constexpr std::size_t kSampleCap = 262'144;

    /** Add one sample. */
    void record(Ticks sample);

    /** Samples recorded (exact, independent of retention). */
    std::size_t count() const { return static_cast<std::size_t>(count_); }
    /** Samples currently retained for percentile queries. */
    std::size_t retainedSamples() const { return samples_.size(); }
    /** Samples dropped by decimation (aggregates stay exact). */
    std::uint64_t droppedSamples() const
    {
        return count_ - samples_.size();
    }
    /** Current keep stride (1 until the cap is first hit). */
    std::uint64_t sampleStride() const { return stride_; }

    Ticks min() const;
    Ticks max() const;

    /** Arithmetic mean in ticks; 0 when empty. */
    double mean() const;

    /** Population standard deviation; 0 when fewer than two samples. */
    double stddev() const;

    /**
     * p-th percentile by nearest-rank on the sorted samples, p in [0, 100].
     * p=0 is exactly min() and p=100 exactly max(). Returns zero when empty.
     */
    Ticks percentile(double p) const;

    /** Mean in microseconds, the unit the paper plots. */
    double meanMicros() const { return mean() / kMicrosecond; }

    /** Tail latency: the 99.9th percentile (nearest-rank). */
    Ticks p999() const { return percentile(99.9); }

    void clear();

  private:
    void sortIfNeeded() const;
    /** Halve the retained set (keep every 2nd, stride doubling). */
    void decimate();

    // draid-lint: cap(kSampleCap; decimated in place on overflow)
    std::vector<Tick> samples_;
    mutable bool sorted_ = true;
    Tick sum_ = 0;
    unsigned __int128 sumSq_ = 0; ///< exact second moment (stddev)
    std::uint64_t count_ = 0;
    std::uint64_t stride_ = 1;
    Tick min_ = 0;
    Tick max_ = 0;
};

/**
 * Accumulates completed bytes/operations over a measurement window and
 * reports bandwidth and IOPS in the paper's units.
 */
class ThroughputMeter
{
  public:
    /** Mark the start of the measurement window. */
    void start(Ticks now);

    /** Record a completed operation of @p bytes. */
    void complete(std::uint64_t bytes);

    /** Mark the end of the measurement window. */
    void finish(Ticks now);

    std::uint64_t bytes() const { return bytes_; }
    std::uint64_t ops() const { return ops_; }
    Ticks elapsed() const { return end_ - begin_; }

    /** Bandwidth in MB/s (10^6 bytes per second, as FIO reports). */
    double bandwidthMBps() const;

    /** Completed operations per second, in thousands (KIOPS). */
    double kiops() const;

  private:
    std::uint64_t bytes_ = 0;
    std::uint64_t ops_ = 0;
    Ticks begin_;
    Ticks end_;
};

} // namespace draid::sim

#endif // DRAID_SIM_STATS_H
