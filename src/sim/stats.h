/**
 * @file
 * Measurement helpers: latency distributions and throughput meters.
 */

#ifndef DRAID_SIM_STATS_H
#define DRAID_SIM_STATS_H

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/types.h"

namespace draid::sim {

/**
 * Records a distribution of latencies (in ticks) and computes summary
 * statistics. Samples are kept in full; evaluation runs record at most a
 * few hundred thousand operations.
 */
class LatencyRecorder
{
  public:
    /** Add one sample. */
    void record(Tick sample);

    std::size_t count() const { return samples_.size(); }
    Tick min() const;
    Tick max() const;

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population standard deviation; 0 when fewer than two samples. */
    double stddev() const;

    /**
     * p-th percentile by nearest-rank on the sorted samples, p in [0, 100].
     * p=0 is exactly min() and p=100 exactly max(). Returns 0 when empty.
     */
    Tick percentile(double p) const;

    /** Mean in microseconds, the unit the paper plots. */
    double meanMicros() const { return mean() / kMicrosecond; }

    /** Tail latency: the 99.9th percentile (nearest-rank). */
    Tick p999() const { return percentile(99.9); }

    void clear();

  private:
    void sortIfNeeded() const;

    std::vector<Tick> samples_;
    mutable bool sorted_ = true;
    Tick sum_ = 0;
};

/**
 * Accumulates completed bytes/operations over a measurement window and
 * reports bandwidth and IOPS in the paper's units.
 */
class ThroughputMeter
{
  public:
    /** Mark the start of the measurement window. */
    void start(Tick now);

    /** Record a completed operation of @p bytes. */
    void complete(std::uint64_t bytes);

    /** Mark the end of the measurement window. */
    void finish(Tick now);

    std::uint64_t bytes() const { return bytes_; }
    std::uint64_t ops() const { return ops_; }
    Tick elapsed() const { return end_ - begin_; }

    /** Bandwidth in MB/s (10^6 bytes per second, as FIO reports). */
    double bandwidthMBps() const;

    /** Completed operations per second, in thousands (KIOPS). */
    double kiops() const;

  private:
    std::uint64_t bytes_ = 0;
    std::uint64_t ops_ = 0;
    Tick begin_ = 0;
    Tick end_ = 0;
};

} // namespace draid::sim

#endif // DRAID_SIM_STATS_H
