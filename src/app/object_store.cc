#include "app/object_store.h"

#include <cassert>

namespace draid::app {

ObjectStore::ObjectStore(blockdev::BlockDevice &dev,
                         std::uint32_t object_size)
    : dev_(dev), objectSize_(object_size)
{
    assert(object_size > 0);
    slots_ = dev_.sizeBytes() / objectSize_;
    assert(slots_ > 0);
}

std::uint64_t
ObjectStore::allocateSlot(std::uint64_t id)
{
    // Multiplicative (Fibonacci) hash, then linear probe to a free slot.
    std::uint64_t slot = (id * 0x9e3779b97f4a7c15ull) % slots_;
    while (slotOwner_.contains(slot))
        slot = (slot + 1) % slots_;
    slotOwner_[slot] = id;
    return slot;
}

void
ObjectStore::put(std::uint64_t id, ec::Buffer data, PutCallback cb)
{
    assert(data.size() == objectSize_);
    auto it = index_.find(id);
    std::uint64_t slot;
    if (it != index_.end()) {
        slot = it->second;
    } else {
        if (index_.size() >= slots_) {
            cb(false); // store full
            return;
        }
        slot = allocateSlot(id);
        index_.emplace(id, slot);
    }
    dev_.write(slot * objectSize_, std::move(data),
               [cb](blockdev::IoStatus st) {
                   cb(st == blockdev::IoStatus::kOk);
               });
}

void
ObjectStore::get(std::uint64_t id, GetCallback cb)
{
    auto it = index_.find(id);
    if (it == index_.end()) {
        cb(false, {});
        return;
    }
    dev_.read(it->second * objectSize_, objectSize_,
              [cb](blockdev::IoStatus st, ec::Buffer data) {
                  cb(st == blockdev::IoStatus::kOk, std::move(data));
              });
}

} // namespace draid::app
