/**
 * @file
 * MiniKv: a single-instance LSM key-value store standing in for
 * RocksDB-on-BlobFS in the application evaluation (paper §9.6, Fig. 19).
 *
 * Like the paper's RocksDB setup, MiniKv is a single instance whose
 * throughput is bounded by its own CPU path and write-ahead logging, using
 * well under the array's full bandwidth; the RAID systems differentiate
 * through WAL/flush/compaction I/O latency and bandwidth.
 *
 * Structure: group-committed WAL + in-memory memtable; memtable flushes to
 * L0 SSTs (large sequential writes); L0 compaction merges into L1. Gets
 * hit the memtable or read one 4 KB block of an SST through an in-memory
 * index.
 */

#ifndef DRAID_APP_MINIKV_H
#define DRAID_APP_MINIKV_H

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.h"
#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace draid::app {

/** MiniKv tunables. */
struct MiniKvConfig
{
    std::uint32_t valueSize = 1024;
    std::uint64_t memtableBytes = 8ull << 20;
    std::uint32_t l0CompactTrigger = 4;
    std::uint32_t walBatchOps = 32;
    sim::Ticks walBatchDelay = sim::Ticks::us(20);
    sim::Ticks opCpuCost = sim::Ticks{1500}; ///< per-op CPU (locks, skiplist, encode)
    std::uint64_t walRegionBytes = 256ull << 20;
    std::uint32_t flushIoBytes = 1 << 20; ///< sequential flush chunk
    std::uint64_t blockCacheBytes = 16ull << 20; ///< LRU cache of 4KB blocks
};

/** Counters for benches and tests. */
struct MiniKvStats
{
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t getMisses = 0;
    std::uint64_t memtableHits = 0;
    std::uint64_t sstReads = 0;
    std::uint64_t walWrites = 0;
    std::uint64_t flushes = 0;
    std::uint64_t compactions = 0;
    std::uint64_t cacheHits = 0;
};

/** A miniature LSM store over a BlockDevice. */
class MiniKv
{
  public:
    using PutCallback = std::function<void(bool)>;
    using GetCallback = std::function<void(bool)>;

    MiniKv(sim::Simulator &sim, sim::CpuCore &cpu,
           blockdev::BlockDevice &dev, const MiniKvConfig &config);

    /** Insert/update a key (value content is synthetic). */
    void put(std::uint64_t key, PutCallback cb);

    /** Point lookup. */
    void get(std::uint64_t key, GetCallback cb);

    const MiniKvStats &stats() const { return stats_; }

  private:
    struct SstEntry
    {
        std::uint64_t offset; ///< device offset of the run
        std::uint64_t bytes;
    };

    void enqueueWal(PutCallback cb, std::uint64_t key);
    void flushWalBatch();
    void maybeFlushMemtable();
    void maybeCompact();

    sim::Simulator &sim_;
    sim::CpuCore &cpu_;
    blockdev::BlockDevice &dev_;
    MiniKvConfig cfg_;
    MiniKvStats stats_;

    // WAL ring.
    std::uint64_t walHead_ = 0;
    // draid-lint: cap(cfg_.walBatchOps; flushed at the batch delay)
    std::vector<std::pair<std::uint64_t, PutCallback>> walBatch_;
    bool walTimerArmed_ = false;
    bool walWriteInFlight_ = false;

    // Memtable: key -> present (values synthetic, sized cfg_.valueSize).
    // draid-lint: cap(cfg_.memtableBytes / value size; flushed on overflow)
    std::unordered_map<std::uint64_t, bool> memtable_;
    std::uint64_t memtableBytes_ = 0;
    bool flushInFlight_ = false;
    bool compactionInFlight_ = false;

    // SST index: key -> device block address; plus run bookkeeping.
    // draid-lint: cap(one entry per live key; bounded by the workload keyspace)
    std::unordered_map<std::uint64_t, std::uint64_t> sstIndex_;
    // draid-lint: cap(cfg_.l0CompactTrigger; compaction merges into L1)
    std::vector<SstEntry> level0_;
    // draid-lint: cap(runs covering the keyspace; rewritten per compaction)
    std::vector<SstEntry> level1_;
    std::uint64_t sstAllocator_; ///< bump allocator past the WAL region

    // LRU block cache: block address -> position in the LRU list.
    void cacheTouch(std::uint64_t block);
    bool cacheContains(std::uint64_t block) const;
    // draid-lint: cap(cfg_.blockCacheBytes / 4KB block; LRU-evicted)
    std::list<std::uint64_t> cacheLru_;
    std::unordered_map<std::uint64_t,
                       // draid-lint: cap(mirrors cacheLru_; same blockCacheBytes bound)
                       std::list<std::uint64_t>::iterator> cacheMap_;
};

} // namespace draid::app

#endif // DRAID_APP_MINIKV_H
