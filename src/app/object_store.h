/**
 * @file
 * Lightweight hash-based object store running directly on the block layer
 * (paper §9.6): fixed-size objects (128 KB in the evaluation), an
 * in-memory hash index mapping object id to a device slot, no filesystem
 * in between.
 */

#ifndef DRAID_APP_OBJECT_STORE_H
#define DRAID_APP_OBJECT_STORE_H

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "blockdev/block_device.h"
#include "ec/buffer.h"

namespace draid::app {

/** Fixed-size object store over a BlockDevice. */
class ObjectStore
{
  public:
    using PutCallback = std::function<void(bool)>;
    using GetCallback = std::function<void(bool, ec::Buffer)>;

    /**
     * @param dev          backing block device
     * @param object_size  size of every object, bytes
     */
    ObjectStore(blockdev::BlockDevice &dev, std::uint32_t object_size);

    /** Maximum number of objects the device can hold. */
    std::uint64_t capacityObjects() const { return slots_; }

    std::uint64_t objectCount() const { return index_.size(); }
    std::uint32_t objectSize() const { return objectSize_; }

    /** Insert or update an object. @pre data.size() == objectSize() */
    void put(std::uint64_t id, ec::Buffer data, PutCallback cb);

    /** Fetch an object; fails if absent. */
    void get(std::uint64_t id, GetCallback cb);

    bool contains(std::uint64_t id) const { return index_.contains(id); }

  private:
    /** Slot allocation: multiplicative hash with linear probing. */
    std::uint64_t allocateSlot(std::uint64_t id);

    blockdev::BlockDevice &dev_;
    std::uint32_t objectSize_;
    std::uint64_t slots_;
    // draid-lint: cap(slots_; one mapping per allocated slot)
    std::unordered_map<std::uint64_t, std::uint64_t> index_; ///< id -> slot
    // draid-lint: cap(slots_; at most one owner per slot)
    std::unordered_map<std::uint64_t, std::uint64_t> slotOwner_;
};

} // namespace draid::app

#endif // DRAID_APP_OBJECT_STORE_H
