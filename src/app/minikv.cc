#include "app/minikv.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <memory>

namespace draid::app {

MiniKv::MiniKv(sim::Simulator &sim, sim::CpuCore &cpu,
               blockdev::BlockDevice &dev, const MiniKvConfig &config)
    : sim_(sim), cpu_(cpu), dev_(dev), cfg_(config),
      sstAllocator_(config.walRegionBytes)
{
    assert(dev.sizeBytes() > cfg_.walRegionBytes);
}

void
MiniKv::put(std::uint64_t key, PutCallback cb)
{
    ++stats_.puts;
    cpu_.execute(cfg_.opCpuCost, [this, key, cb = std::move(cb)]() mutable {
        enqueueWal(std::move(cb), key);
    });
}

void
MiniKv::enqueueWal(PutCallback cb, std::uint64_t key)
{
    walBatch_.emplace_back(key, std::move(cb));
    if (walBatch_.size() >= cfg_.walBatchOps) {
        flushWalBatch();
        return;
    }
    if (!walTimerArmed_) {
        walTimerArmed_ = true;
        sim_.schedule(cfg_.walBatchDelay, "minikv.wal_batch", [this]() {
            walTimerArmed_ = false;
            if (!walBatch_.empty())
                flushWalBatch();
        });
    }
}

void
MiniKv::flushWalBatch()
{
    if (walWriteInFlight_ || walBatch_.empty())
        return;
    walWriteInFlight_ = true;
    // Group commit with a bounded batch: take up to walBatchOps entries,
    // leave the rest for the next commit.
    const std::size_t take =
        std::min<std::size_t>(walBatch_.size(), cfg_.walBatchOps);
    auto batch = std::make_shared<
        std::vector<std::pair<std::uint64_t, PutCallback>>>();
    batch->assign(std::make_move_iterator(walBatch_.begin()),
                  std::make_move_iterator(walBatch_.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              take)));
    walBatch_.erase(walBatch_.begin(),
                    walBatch_.begin() + static_cast<std::ptrdiff_t>(take));

    const std::uint64_t bytes =
        static_cast<std::uint64_t>(batch->size()) * (cfg_.valueSize + 16);
    if (walHead_ + bytes > cfg_.walRegionBytes)
        walHead_ = 0; // ring wrap
    const std::uint64_t off = walHead_;
    walHead_ += bytes;

    ec::Buffer data(bytes);
    dev_.write(off, std::move(data), [this,
                                      batch](blockdev::IoStatus st) {
        ++stats_.walWrites;
        walWriteInFlight_ = false;
        const bool ok = st == blockdev::IoStatus::kOk;
        for (auto &[key, cb] : *batch) {
            if (ok) {
                if (!memtable_.contains(key)) {
                    memtable_[key] = true;
                    memtableBytes_ += cfg_.valueSize;
                }
            }
            cb(ok);
        }
        maybeFlushMemtable();
        if (!walBatch_.empty())
            flushWalBatch();
    });
}

void
MiniKv::maybeFlushMemtable()
{
    if (flushInFlight_ || memtableBytes_ < cfg_.memtableBytes)
        return;
    flushInFlight_ = true;
    ++stats_.flushes;

    // Snapshot and clear the memtable; write it as one L0 run of large
    // sequential I/Os.
    auto keys = std::make_shared<std::vector<std::uint64_t>>();
    keys->reserve(memtable_.size());
    for (const auto &[k, v] : memtable_) // draid-lint: allow(unordered-iter) -- keys are sorted below before any tick-affecting use
        keys->push_back(k);
    // Hash order must not pick the SST layout: sort so the run (and every
    // read latency that depends on where a key landed) is reproducible
    // across standard-library implementations.
    std::sort(keys->begin(), keys->end());
    memtable_.clear();
    const std::uint64_t run_bytes = memtableBytes_;
    memtableBytes_ = 0;

    const std::uint64_t base = sstAllocator_;
    sstAllocator_ += run_bytes;
    assert(sstAllocator_ <= dev_.sizeBytes());

    // Index entries point at their 4 KB block within the run.
    for (std::size_t i = 0; i < keys->size(); ++i) {
        sstIndex_[(*keys)[i]] =
            base + (static_cast<std::uint64_t>(i) * cfg_.valueSize) /
                       4096 * 4096;
    }

    auto remaining = std::make_shared<std::uint64_t>(run_bytes);
    auto offset = std::make_shared<std::uint64_t>(base);
    // The closure must not capture its own shared_ptr (that cycle never
    // frees); each in-flight I/O callback holds the strong reference.
    auto pump = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_pump = pump;
    *pump = [this, remaining, offset, base, run_bytes, weak_pump]() {
        if (*remaining == 0) {
            level0_.push_back(SstEntry{base, run_bytes});
            flushInFlight_ = false;
            maybeCompact();
            maybeFlushMemtable();
            return;
        }
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(*remaining, cfg_.flushIoBytes));
        const std::uint64_t off = *offset;
        *offset += chunk;
        *remaining -= chunk;
        dev_.write(off, ec::Buffer(chunk),
                   [pump = weak_pump.lock()](blockdev::IoStatus) {
                       (*pump)();
                   });
    };
    (*pump)();
}

void
MiniKv::maybeCompact()
{
    if (compactionInFlight_ || level0_.size() < cfg_.l0CompactTrigger)
        return;
    compactionInFlight_ = true;
    ++stats_.compactions;

    // Merge every L0 run (plus the newest L1 run, if any) into a new L1
    // run: sequential reads of the inputs, then sequential writes of the
    // merged output.
    auto inputs = std::make_shared<std::vector<SstEntry>>(level0_);
    level0_.clear();
    if (!level1_.empty()) {
        inputs->push_back(level1_.back());
        level1_.pop_back();
    }
    std::uint64_t total = 0;
    for (const auto &e : *inputs)
        total += e.bytes;

    const std::uint64_t base = sstAllocator_;
    sstAllocator_ += total;
    assert(sstAllocator_ <= dev_.sizeBytes());

    // Read phase: walk the inputs in flushIoBytes chunks.
    auto read_idx = std::make_shared<std::size_t>(0);
    auto read_off = std::make_shared<std::uint64_t>(0);
    auto write_off = std::make_shared<std::uint64_t>(base);
    auto write_left = std::make_shared<std::uint64_t>(total);

    auto write_pump = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_write = write_pump;
    *write_pump = [this, write_off, write_left, base, total,
                   weak_write]() {
        if (*write_left == 0) {
            level1_.push_back(SstEntry{base, total});
            compactionInFlight_ = false;
            maybeCompact();
            return;
        }
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(*write_left, cfg_.flushIoBytes));
        const std::uint64_t off = *write_off;
        *write_off += chunk;
        *write_left -= chunk;
        dev_.write(off, ec::Buffer(chunk),
                   [pump = weak_write.lock()](blockdev::IoStatus) {
                       (*pump)();
                   });
    };

    auto read_pump = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_read = read_pump;
    *read_pump = [this, inputs, read_idx, read_off, weak_read,
                  write_pump]() {
        if (*read_idx >= inputs->size()) {
            (*write_pump)();
            return;
        }
        const auto &e = (*inputs)[*read_idx];
        if (*read_off >= e.bytes) {
            ++*read_idx;
            *read_off = 0;
            (*weak_read.lock())();
            return;
        }
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(e.bytes - *read_off,
                                    cfg_.flushIoBytes));
        const std::uint64_t off = e.offset + *read_off;
        *read_off += chunk;
        dev_.read(off, chunk,
                  [pump = weak_read.lock()](blockdev::IoStatus, ec::Buffer) {
                      (*pump)();
                  });
    };
    (*read_pump)();
}

void
MiniKv::get(std::uint64_t key, GetCallback cb)
{
    ++stats_.gets;
    cpu_.execute(cfg_.opCpuCost, [this, key, cb = std::move(cb)]() mutable {
        if (memtable_.contains(key)) {
            ++stats_.memtableHits;
            cb(true);
            return;
        }
        auto it = sstIndex_.find(key);
        if (it == sstIndex_.end()) {
            ++stats_.getMisses;
            cb(false);
            return;
        }
        const std::uint64_t block = it->second;
        if (cacheContains(block)) {
            ++stats_.cacheHits;
            cacheTouch(block);
            cb(true);
            return;
        }
        ++stats_.sstReads;
        dev_.read(block, 4096,
                  [this, block, cb = std::move(cb)](blockdev::IoStatus st,
                                                    ec::Buffer) mutable {
                      if (st == blockdev::IoStatus::kOk)
                          cacheTouch(block);
                      cb(st == blockdev::IoStatus::kOk);
                  });
    });
}

bool
MiniKv::cacheContains(std::uint64_t block) const
{
    return cacheMap_.contains(block);
}

void
MiniKv::cacheTouch(std::uint64_t block)
{
    auto it = cacheMap_.find(block);
    if (it != cacheMap_.end()) {
        cacheLru_.erase(it->second);
    } else {
        const std::uint64_t capacity =
            std::max<std::uint64_t>(1, cfg_.blockCacheBytes / 4096);
        while (cacheLru_.size() >= capacity) {
            cacheMap_.erase(cacheLru_.back());
            cacheLru_.pop_back();
        }
    }
    cacheLru_.push_front(block);
    cacheMap_[block] = cacheLru_.begin();
}

} // namespace draid::app
