#include "raid/geometry.h"

#include <cassert>

namespace draid::raid {

Geometry::Geometry(RaidLevel level, std::uint32_t chunk_size,
                   std::uint32_t width)
    : level_(level), chunkSize_(chunk_size), width_(width)
{
    assert(chunk_size > 0);
    assert(width >= (level == RaidLevel::kRaid6 ? 4u : 3u));
}

std::uint32_t
Geometry::parityCount() const
{
    return level_ == RaidLevel::kRaid6 ? 2 : 1;
}

std::uint32_t
Geometry::parityDevice(std::uint64_t stripe) const
{
    return width_ - 1 - static_cast<std::uint32_t>(stripe % width_);
}

std::uint32_t
Geometry::qDevice(std::uint64_t stripe) const
{
    assert(level_ == RaidLevel::kRaid6);
    return (parityDevice(stripe) + 1) % width_;
}

std::uint32_t
Geometry::dataDevice(std::uint64_t stripe, std::uint32_t data_idx) const
{
    assert(data_idx < dataChunks());
    const std::uint32_t after_parity =
        level_ == RaidLevel::kRaid6 ? qDevice(stripe) : parityDevice(stripe);
    return (after_parity + 1 + data_idx) % width_;
}

ChunkRole
Geometry::roleOf(std::uint64_t stripe, std::uint32_t dev) const
{
    assert(dev < width_);
    if (dev == parityDevice(stripe))
        return ChunkRole::kParityP;
    if (level_ == RaidLevel::kRaid6 && dev == qDevice(stripe))
        return ChunkRole::kParityQ;
    return ChunkRole::kData;
}

std::uint32_t
Geometry::dataIndexOf(std::uint64_t stripe, std::uint32_t dev) const
{
    assert(roleOf(stripe, dev) == ChunkRole::kData);
    const std::uint32_t after_parity =
        level_ == RaidLevel::kRaid6 ? qDevice(stripe) : parityDevice(stripe);
    return (dev + width_ - after_parity - 1) % width_;
}

std::uint64_t
Geometry::stripeOf(std::uint64_t offset) const
{
    return offset / stripeDataSize();
}

std::vector<Extent>
Geometry::map(std::uint64_t offset, std::uint64_t length) const
{
    std::vector<Extent> out;
    const std::uint64_t sds = stripeDataSize();
    std::uint64_t pos = offset;
    std::uint64_t remaining = length;
    while (remaining > 0) {
        const std::uint64_t stripe = pos / sds;
        const std::uint64_t in_stripe = pos % sds;
        const auto data_idx =
            static_cast<std::uint32_t>(in_stripe / chunkSize_);
        const auto in_chunk =
            static_cast<std::uint32_t>(in_stripe % chunkSize_);
        const std::uint64_t take =
            std::min<std::uint64_t>(remaining, chunkSize_ - in_chunk);
        out.push_back(Extent{stripe, data_idx, in_chunk,
                             static_cast<std::uint32_t>(take)});
        pos += take;
        remaining -= take;
    }
    return out;
}

} // namespace draid::raid
