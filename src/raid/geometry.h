/**
 * @file
 * RAID array geometry: logical-address-to-stripe mapping and the rotating
 * (left-symmetric) placement of data and parity chunks across devices.
 */

#ifndef DRAID_RAID_GEOMETRY_H
#define DRAID_RAID_GEOMETRY_H

#include <cstdint>
#include <vector>

namespace draid::raid {

/** Parity-based RAID levels supported by the library. */
enum class RaidLevel
{
    kRaid5, ///< single rotating XOR parity
    kRaid6, ///< rotating P (XOR) + Q (GF(2^8)) parity
};

/** Role a device plays within one particular stripe. */
enum class ChunkRole
{
    kData,
    kParityP,
    kParityQ,
};

/** A contiguous byte range within one data chunk of one stripe. */
struct Extent
{
    std::uint64_t stripe;   ///< stripe index
    std::uint32_t dataIdx;  ///< data-chunk index within the stripe
    std::uint32_t offset;   ///< byte offset within the chunk
    std::uint32_t length;   ///< byte length within the chunk
};

/**
 * Immutable description of a RAID array's layout.
 *
 * Parity rotates across devices per stripe (left-symmetric, the Linux MD
 * default): in stripe s, P lives on device `width-1 - s%width`, Q (RAID-6)
 * on the next device, and data chunks fill the remaining devices in order.
 */
class Geometry
{
  public:
    /**
     * @param level       RAID level
     * @param chunk_size  chunk size in bytes (power-of-two not required)
     * @param width       total member devices, including parity
     * @pre width >= 3 for RAID-5, >= 4 for RAID-6
     */
    Geometry(RaidLevel level, std::uint32_t chunk_size, std::uint32_t width);

    RaidLevel level() const { return level_; }
    std::uint32_t chunkSize() const { return chunkSize_; }
    std::uint32_t width() const { return width_; }

    /** Number of parity chunks per stripe (1 or 2). */
    std::uint32_t parityCount() const;

    /** Number of data chunks per stripe. */
    std::uint32_t dataChunks() const { return width_ - parityCount(); }

    /** User-visible bytes per stripe. */
    std::uint64_t
    stripeDataSize() const
    {
        return static_cast<std::uint64_t>(dataChunks()) * chunkSize_;
    }

    /** Device holding P parity for @p stripe. */
    std::uint32_t parityDevice(std::uint64_t stripe) const;

    /** Device holding Q parity for @p stripe (RAID-6 only). */
    std::uint32_t qDevice(std::uint64_t stripe) const;

    /** Device holding data chunk @p data_idx of @p stripe. */
    std::uint32_t dataDevice(std::uint64_t stripe,
                             std::uint32_t data_idx) const;

    /** Role of device @p dev within @p stripe. */
    ChunkRole roleOf(std::uint64_t stripe, std::uint32_t dev) const;

    /**
     * Data-chunk index of device @p dev within @p stripe.
     * @pre roleOf(stripe, dev) == ChunkRole::kData
     */
    std::uint32_t dataIndexOf(std::uint64_t stripe, std::uint32_t dev) const;

    /** Stripe containing logical byte @p offset. */
    std::uint64_t stripeOf(std::uint64_t offset) const;

    /**
     * Split the logical range [offset, offset+length) into per-chunk
     * extents, ordered by logical address.
     */
    std::vector<Extent> map(std::uint64_t offset, std::uint64_t length) const;

    /**
     * Byte address on a member device of @p chunk_offset within the chunk
     * that @p stripe places on that device.
     */
    std::uint64_t
    deviceAddress(std::uint64_t stripe, std::uint32_t chunk_offset) const
    {
        return stripe * chunkSize_ + chunk_offset;
    }

  private:
    RaidLevel level_;
    std::uint32_t chunkSize_;
    std::uint32_t width_;
};

} // namespace draid::raid

#endif // DRAID_RAID_GEOMETRY_H
