#include "raid/write_plan.h"

#include <algorithm>
#include <cassert>

namespace draid::raid {

std::uint64_t
StripeWritePlan::userBytes() const
{
    std::uint64_t total = 0;
    for (const auto &w : writes)
        total += w.length;
    return total;
}

std::vector<StripeWritePlan>
WritePlanner::plan(std::uint64_t offset, std::uint64_t length) const
{
    std::vector<StripeWritePlan> plans;
    const auto extents = geom_.map(offset, length);

    std::vector<WriteSegment> segs;
    std::uint64_t cur_stripe = extents.empty() ? 0 : extents.front().stripe;
    for (const auto &e : extents) {
        if (e.stripe != cur_stripe) {
            plans.push_back(planStripe(cur_stripe, std::move(segs)));
            segs.clear();
            cur_stripe = e.stripe;
        }
        segs.push_back(WriteSegment{e.dataIdx, e.offset, e.length});
    }
    if (!segs.empty())
        plans.push_back(planStripe(cur_stripe, std::move(segs)));
    return plans;
}

StripeWritePlan
WritePlanner::planStripe(std::uint64_t stripe,
                         std::vector<WriteSegment> segs) const
{
    assert(!segs.empty());
    StripeWritePlan p;
    p.stripe = stripe;
    p.writes = std::move(segs);
    std::sort(p.writes.begin(), p.writes.end(),
              [](const WriteSegment &a, const WriteSegment &b) {
                  return a.dataIdx < b.dataIdx;
              });

    const std::uint32_t k = geom_.dataChunks();
    const std::uint32_t pc = geom_.parityCount();
    const std::uint32_t chunk = geom_.chunkSize();
    const auto w = static_cast<std::uint32_t>(p.writes.size());

    const bool full_coverage =
        w == k && std::all_of(p.writes.begin(), p.writes.end(),
                              [chunk](const WriteSegment &s) {
                                  return s.offset == 0 && s.length == chunk;
                              });
    if (full_coverage) {
        p.mode = WriteMode::kFullStripe;
        p.parityOffset = 0;
        p.parityLength = chunk;
        p.waitNum = 0;
        return p;
    }

    // Byte-based mode rule (see class comment).
    std::uint64_t written_bytes = 0;
    std::uint32_t union_lo = chunk, union_hi = 0;
    for (const auto &s : p.writes) {
        written_bytes += s.length;
        union_lo = std::min(union_lo, s.offset);
        union_hi = std::max(union_hi, s.offset + s.length);
    }
    const std::uint64_t rmw_reads =
        written_bytes +
        static_cast<std::uint64_t>(pc) * (union_hi - union_lo);
    const std::uint64_t rcw_reads =
        static_cast<std::uint64_t>(k) * chunk - written_bytes;
    (void)w;
    if (rmw_reads < rcw_reads) {
        p.mode = WriteMode::kReadModifyWrite;
        // Parity range = union of delta ranges.
        std::uint32_t lo = chunk, hi = 0;
        for (const auto &s : p.writes) {
            lo = std::min(lo, s.offset);
            hi = std::max(hi, s.offset + s.length);
        }
        p.parityOffset = lo;
        p.parityLength = hi - lo;
        p.waitNum = w;
    } else {
        p.mode = WriteMode::kReconstructWrite;
        // Untouched data chunks are read whole and contribute to parity.
        std::vector<bool> touched(k, false);
        for (const auto &s : p.writes)
            touched[s.dataIdx] = true;
        for (std::uint32_t i = 0; i < k; ++i) {
            if (!touched[i])
                p.rcwReads.push_back(i);
        }
        p.parityOffset = 0;
        p.parityLength = chunk;
        p.waitNum = w + static_cast<std::uint32_t>(p.rcwReads.size());
    }
    return p;
}

} // namespace draid::raid
