/**
 * @file
 * Per-stripe exclusive locks with FIFO waiters.
 *
 * RAID does not allow concurrent writes to the same stripe; the host-side
 * controller admits one write per stripe at a time and queues the rest
 * (§3). The SPDK baseline additionally takes the lock for normal reads
 * (the POC behaviour the paper's §8 optimization removes), which is why
 * dRAID only routes writes through this table.
 */

#ifndef DRAID_RAID_STRIPE_LOCK_H
#define DRAID_RAID_STRIPE_LOCK_H

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "sim/types.h"
#include "telemetry/event_journal.h"

namespace draid::raid {

/** FIFO exclusive lock table keyed by stripe index. */
class StripeLockTable
{
  public:
    using Grant = std::function<void()>;

    /**
     * Acquire the lock on @p stripe. @p granted runs immediately (same
     * call stack) if the lock is free, otherwise when released to this
     * waiter.
     */
    void acquire(std::uint64_t stripe, Grant granted);

    /**
     * Release the lock on @p stripe; hands off to the next waiter (its
     * grant callback runs inside this call).
     * @pre the lock is held
     */
    void release(std::uint64_t stripe);

    /** Whether @p stripe is currently locked. */
    bool isLocked(std::uint64_t stripe) const;

    /** Number of stripes currently locked. */
    std::size_t locksHeld() const { return locks_.size(); }

    /** Total grants that had to wait (contention counter). */
    std::uint64_t contendedAcquires() const { return contended_; }

    /**
     * Attach the cluster event journal: a StripeLockConvoy record is
     * emitted (as node @p node) whenever a stripe accumulates two or more
     * queued waiters behind the holder. The table holds no clock, so the
     * owner supplies @p now. Observe-only.
     */
    void bindJournal(telemetry::EventJournal *journal, sim::NodeId node,
                     std::function<sim::Tick()> now);

  private:
    struct LockState
    {
        bool held = false;
        // draid-lint: cap(ops queued on one stripe; host queue depth)
        std::deque<Grant> waiters;
    };

    // draid-lint: cap(live locked stripes; erased on release)
    std::unordered_map<std::uint64_t, LockState> locks_;
    std::uint64_t contended_ = 0;
    telemetry::EventJournal *journal_ = nullptr;
    sim::NodeId journalNode_ = 0;
    std::function<sim::Tick()> now_;
};

} // namespace draid::raid

#endif // DRAID_RAID_STRIPE_LOCK_H
