/**
 * @file
 * Per-stripe write planning: pick the write mode (full-stripe,
 * read-modify-write, or reconstruct write) and enumerate the device I/Os
 * every mode needs. Used by the host-side controllers of dRAID and of both
 * baselines, so all systems make identical mode decisions (§9.1's fairness
 * requirement).
 */

#ifndef DRAID_RAID_WRITE_PLAN_H
#define DRAID_RAID_WRITE_PLAN_H

#include <cstdint>
#include <vector>

#include "raid/geometry.h"

namespace draid::raid {

/** The three RAID write modes (§2.1). */
enum class WriteMode
{
    kFullStripe,      ///< all data chunks fully covered; no remote reads
    kReadModifyWrite, ///< read old data + parity, apply deltas
    kReconstructWrite,///< read untouched chunks, rebuild parity from scratch
};

/** One data chunk receiving new bytes in a stripe write. */
struct WriteSegment
{
    std::uint32_t dataIdx; ///< data-chunk index within the stripe
    std::uint32_t offset;  ///< byte offset within the chunk
    std::uint32_t length;  ///< byte length
};

/** Plan for the portion of a write that falls in one stripe. */
struct StripeWritePlan
{
    std::uint64_t stripe = 0;
    WriteMode mode = WriteMode::kFullStripe;

    /** Chunks receiving new data, ordered by dataIdx. */
    // draid-lint: cap(chunks of one stripe; at most data width)
    std::vector<WriteSegment> writes;

    /** Untouched data chunks to read whole (reconstruct write only). */
    // draid-lint: cap(untouched chunks of one stripe; at most data width)
    std::vector<std::uint32_t> rcwReads;

    /** Parity byte range to update (union of deltas for RMW; whole chunk
     * for RCW/FSW). */
    std::uint32_t parityOffset = 0;
    std::uint32_t parityLength = 0;

    /** Partial parities the parity bdev must wait for (dRAID wait-num). */
    std::uint32_t waitNum = 0;

    /** Bytes of user data written in this stripe. */
    std::uint64_t userBytes() const;
};

/**
 * Splits a logical write into per-stripe plans and decides each stripe's
 * mode by comparing the *bytes that must be read* from the drives:
 *   RMW reads  = written bytes (old data) + parity window (x parities)
 *   RCW reads  = untouched chunks + uncovered parts of written chunks
 * choosing RMW iff it reads strictly fewer bytes. With the paper's default
 * RAID-5 geometry (k=7, 512 KB chunks) this yields the §9.3 regime
 * boundaries — RMW below 1536 KB, reconstruct write from 1536 KB to
 * 3584 KB, full stripe at 3584 KB — while still picking RMW for small
 * partial-chunk writes on narrow arrays (the Fig. 12 width-4 case).
 */
class WritePlanner
{
  public:
    explicit WritePlanner(const Geometry &geom) : geom_(geom) {}

    /** Plan the write [offset, offset+length). */
    std::vector<StripeWritePlan> plan(std::uint64_t offset,
                                      std::uint64_t length) const;

    /** Plan a single stripe given its write segments. */
    StripeWritePlan planStripe(std::uint64_t stripe,
                               std::vector<WriteSegment> segs) const;

  private:
    const Geometry &geom_;
};

} // namespace draid::raid

#endif // DRAID_RAID_WRITE_PLAN_H
