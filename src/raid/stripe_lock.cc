#include "raid/stripe_lock.h"

#include <cassert>
#include <utility>

namespace draid::raid {

void
StripeLockTable::acquire(std::uint64_t stripe, Grant granted)
{
    auto &st = locks_[stripe];
    if (!st.held) {
        st.held = true;
        granted();
        return;
    }
    ++contended_;
    st.waiters.push_back(std::move(granted));
    // Two or more ops queued behind the holder is a convoy forming; one
    // waiter is routine serialization.
    if (journal_ && st.waiters.size() >= 2) {
        journal_->record(telemetry::EventType::kStripeLockConvoy,
                         journalNode_, now_ ? now_() : 0, stripe,
                         st.waiters.size());
    }
}

void
StripeLockTable::bindJournal(telemetry::EventJournal *journal,
                             sim::NodeId node, std::function<sim::Tick()> now)
{
    journal_ = journal;
    journalNode_ = node;
    now_ = std::move(now);
}

void
StripeLockTable::release(std::uint64_t stripe)
{
    auto it = locks_.find(stripe);
    assert(it != locks_.end() && it->second.held);
    auto &st = it->second;
    if (st.waiters.empty()) {
        locks_.erase(it);
        return;
    }
    Grant next = std::move(st.waiters.front());
    st.waiters.pop_front();
    // Lock stays held; ownership transfers to the waiter.
    next();
}

bool
StripeLockTable::isLocked(std::uint64_t stripe) const
{
    auto it = locks_.find(stripe);
    return it != locks_.end() && it->second.held;
}

} // namespace draid::raid
