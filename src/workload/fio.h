/**
 * @file
 * FIO-style workload driver (paper §9.1): random block accesses against a
 * BlockDevice at a fixed queue depth, measuring bandwidth and latency the
 * way the paper's FIO runs do.
 */

#ifndef DRAID_WORKLOAD_FIO_H
#define DRAID_WORKLOAD_FIO_H

#include <cstdint>
#include <functional>
#include <vector>

#include "blockdev/block_device.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace draid::telemetry {
class ContentionTracker;
}

namespace draid::workload {

/** Job description. */
struct FioConfig
{
    std::uint32_t ioSize = 128 * 1024;
    double readRatio = 0.0; ///< fraction of operations that are reads
    int ioDepth = 32;       ///< operations kept in flight
    std::uint64_t numOps = 2000;
    bool sequential = false;
    /** Restrict offsets to the first N bytes; 0 = whole device. */
    std::uint64_t workingSetBytes = 0;
    /**
     * RNG seed for offset/ratio draws. When the job runs through the
     * bench harness this is overwritten by the --seed flag (default 1):
     * workloads never choose their own seed, the invocation does.
     */
    std::uint64_t seed = 1;

    /**
     * Optional custom offset generator (overrides the uniform picker).
     * Used by benches that target specific regions, e.g. the all-degraded
     * read sweeps of Fig. 17.
     */
    std::function<std::uint64_t(sim::Rng &)> offsetPicker;

    /**
     * Tenant (== volume) dimension for contention attribution: when
     * @p contention is set, the job marks @p tenant as the current tenant
     * before every issue, so the op minted at the array entry point binds
     * to it and every queue-wait it suffers is blamed per aggressor
     * tenant. Both default off — existing jobs are unchanged.
     */
    std::uint32_t tenant = 0;
    telemetry::ContentionTracker *contention = nullptr;
};

/** Job results in the paper's units. */
struct FioResult
{
    double bandwidthMBps = 0.0;
    double avgLatencyUs = 0.0;
    double p50LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double p999LatencyUs = 0.0;
    double kiops = 0.0;
    std::uint64_t errors = 0;
};

/** Drives one workload to completion on the simulator. */
class FioJob
{
  public:
    FioJob(sim::Simulator &sim, blockdev::BlockDevice &dev,
           const FioConfig &config);

    /**
     * Run the job: issues ops at the configured depth and runs the
     * simulator until every operation completes.
     */
    FioResult run();

    /**
     * Concurrent-mode start: issue the initial depth without running the
     * simulator; @p on_all_complete fires when the last op completes (the
     * caller owns the run loop). Use runConcurrent() for the common case.
     */
    void start(std::function<void()> on_all_complete);

    /** Results so far (complete once on_all_complete has fired). */
    FioResult result() const;

    bool done() const { return completed_ >= cfg_.numOps; }

  private:
    void issueNext();
    void onComplete(sim::Ticks issued, std::uint32_t bytes, bool ok);
    std::uint64_t pickOffset();

    sim::Simulator &sim_;
    blockdev::BlockDevice &dev_;
    FioConfig cfg_;
    sim::Rng rng_;

    std::uint64_t slots_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t seqPos_ = 0;
    sim::LatencyRecorder latency_;
    sim::ThroughputMeter meter_;
    std::function<void()> onAllComplete_;
};

/**
 * Run several jobs concurrently on one simulator (multi-tenant traffic
 * mixes): every job issues its initial depth, the simulator runs until
 * the last job drains, and each job's own stats are returned in order.
 */
std::vector<FioResult> runConcurrent(sim::Simulator &sim,
                                     std::vector<FioJob *> jobs);

} // namespace draid::workload

#endif // DRAID_WORKLOAD_FIO_H
