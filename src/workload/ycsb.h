/**
 * @file
 * YCSB operation generator (Cooper et al.): the standard core workloads
 * A, B, C, D, F used in the paper's application evaluation (§9.6).
 *
 *   A: 50% read / 50% update          (zipfian or uniform)
 *   B: 95% read /  5% update
 *   C: 100% read
 *   D: 95% read /  5% insert          (latest distribution for reads)
 *   F: 50% read / 50% read-modify-write
 */

#ifndef DRAID_WORKLOAD_YCSB_H
#define DRAID_WORKLOAD_YCSB_H

#include <cstdint>

#include "sim/rng.h"
#include "workload/zipfian.h"

namespace draid::workload {

/** Core workload letters. */
enum class YcsbWorkload
{
    kA,
    kB,
    kC,
    kD,
    kF,
};

/** Request distribution over the key space. */
enum class YcsbDistribution
{
    kUniform, ///< the paper's object-store setting (§9.6)
    kZipfian,
    kLatest, ///< implied by workload D
};

/** One generated operation. */
struct YcsbOp
{
    enum class Type
    {
        kRead,
        kUpdate,
        kInsert,
        kReadModifyWrite,
    };

    Type type = Type::kRead;
    std::uint64_t key = 0;
};

/** Generates the operation stream for one workload. */
class YcsbGenerator
{
  public:
    YcsbGenerator(YcsbWorkload workload, YcsbDistribution dist,
                  std::uint64_t num_records, std::uint64_t seed);

    YcsbOp next();

    /** Records present (grows as D inserts land). */
    std::uint64_t recordCount() const { return records_; }

    static const char *name(YcsbWorkload w);

  private:
    std::uint64_t pickKey();

    YcsbWorkload workload_;
    YcsbDistribution dist_;
    std::uint64_t records_;
    sim::Rng rng_;
    ZipfianGenerator zipf_;
    LatestGenerator latest_;
};

} // namespace draid::workload

#endif // DRAID_WORKLOAD_YCSB_H
