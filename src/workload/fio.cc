#include "workload/fio.h"

#include <cassert>

#include "telemetry/interference.h"

namespace draid::workload {

FioJob::FioJob(sim::Simulator &sim, blockdev::BlockDevice &dev,
               const FioConfig &config)
    : sim_(sim), dev_(dev), cfg_(config), rng_(config.seed)
{
    const std::uint64_t span = cfg_.workingSetBytes == 0
                                   ? dev_.sizeBytes()
                                   : std::min(cfg_.workingSetBytes,
                                              dev_.sizeBytes());
    slots_ = span / cfg_.ioSize;
    assert(slots_ > 0);
}

std::uint64_t
FioJob::pickOffset()
{
    if (cfg_.offsetPicker)
        return cfg_.offsetPicker(rng_);
    if (cfg_.sequential) {
        const std::uint64_t off = (seqPos_ % slots_) * cfg_.ioSize;
        ++seqPos_;
        return off;
    }
    return rng_.nextBounded(slots_) * cfg_.ioSize;
}

FioResult
FioJob::run()
{
    start([this] { sim_.stop(); });
    sim_.run();
    return result();
}

void
FioJob::start(std::function<void()> on_all_complete)
{
    onAllComplete_ = std::move(on_all_complete);
    latency_.clear();
    meter_.start(sim_.now());

    const int depth = std::min<std::uint64_t>(cfg_.ioDepth, cfg_.numOps);
    for (int i = 0; i < depth; ++i)
        issueNext();
    if (cfg_.numOps == 0 && onAllComplete_)
        onAllComplete_();
}

FioResult
FioJob::result() const
{
    FioResult r;
    r.bandwidthMBps = meter_.bandwidthMBps();
    r.kiops = meter_.kiops();
    r.avgLatencyUs = latency_.mean() / sim::kMicrosecond;
    r.p50LatencyUs =
        static_cast<double>(latency_.percentile(50).raw()) / sim::kMicrosecond;
    r.p99LatencyUs =
        static_cast<double>(latency_.percentile(99).raw()) / sim::kMicrosecond;
    r.p999LatencyUs =
        static_cast<double>(latency_.p999().raw()) / sim::kMicrosecond;
    r.errors = errors_;
    return r;
}

void
FioJob::issueNext()
{
    if (issued_ >= cfg_.numOps)
        return;
    ++issued_;
    const std::uint64_t offset = pickOffset();
    const sim::Ticks t0 = sim_.now();
    const std::uint32_t bytes = cfg_.ioSize;

    // Mark the issuing tenant so the op minted inside read()/write()
    // binds to it for contention attribution.
    if (cfg_.contention != nullptr)
        cfg_.contention->setCurrentTenant(cfg_.tenant);

    if (rng_.nextBool(cfg_.readRatio)) {
        dev_.read(offset, bytes,
                  [this, t0, bytes](blockdev::IoStatus st, ec::Buffer) {
                      onComplete(t0, bytes, st == blockdev::IoStatus::kOk);
                  });
    } else {
        ec::Buffer data(bytes);
        data.fill(static_cast<std::uint8_t>(issued_));
        dev_.write(offset, std::move(data),
                   [this, t0, bytes](blockdev::IoStatus st) {
                       onComplete(t0, bytes, st == blockdev::IoStatus::kOk);
                   });
    }
}

void
FioJob::onComplete(sim::Ticks issued, std::uint32_t bytes, bool ok)
{
    ++completed_;
    if (!ok)
        ++errors_;
    latency_.record(sim_.now() - issued);
    meter_.complete(bytes);
    if (issued_ < cfg_.numOps) {
        issueNext();
    } else if (completed_ == cfg_.numOps) {
        meter_.finish(sim_.now());
        if (onAllComplete_)
            onAllComplete_();
    }
}

std::vector<FioResult>
runConcurrent(sim::Simulator &sim, std::vector<FioJob *> jobs)
{
    std::size_t remaining = 0;
    for (FioJob *job : jobs) {
        if (job != nullptr)
            ++remaining;
    }
    // A zero-op job completes inside start(), decrementing immediately;
    // counting every job first keeps the countdown exact either way.
    for (FioJob *job : jobs) {
        if (job == nullptr)
            continue;
        job->start([&sim, &remaining] {
            if (--remaining == 0)
                sim.stop();
        });
    }
    if (remaining > 0)
        sim.run();

    std::vector<FioResult> out;
    out.reserve(jobs.size());
    for (FioJob *job : jobs)
        out.push_back(job != nullptr ? job->result() : FioResult{});
    return out;
}

} // namespace draid::workload
