#include "workload/ycsb.h"

namespace draid::workload {

const char *
YcsbGenerator::name(YcsbWorkload w)
{
    switch (w) {
      case YcsbWorkload::kA: return "YCSB-A";
      case YcsbWorkload::kB: return "YCSB-B";
      case YcsbWorkload::kC: return "YCSB-C";
      case YcsbWorkload::kD: return "YCSB-D";
      case YcsbWorkload::kF: return "YCSB-F";
    }
    return "YCSB-?";
}

YcsbGenerator::YcsbGenerator(YcsbWorkload workload, YcsbDistribution dist,
                             std::uint64_t num_records, std::uint64_t seed)
    : workload_(workload),
      dist_(dist),
      records_(num_records),
      rng_(seed),
      zipf_(num_records),
      latest_(num_records)
{
}

std::uint64_t
YcsbGenerator::pickKey()
{
    switch (dist_) {
      case YcsbDistribution::kUniform:
        return rng_.nextBounded(records_);
      case YcsbDistribution::kZipfian:
        return zipf_.next(rng_);
      case YcsbDistribution::kLatest:
        return latest_.next(rng_);
    }
    return 0;
}

YcsbOp
YcsbGenerator::next()
{
    YcsbOp op;
    const double p = rng_.nextDouble();
    switch (workload_) {
      case YcsbWorkload::kA:
        op.type = p < 0.5 ? YcsbOp::Type::kRead : YcsbOp::Type::kUpdate;
        break;
      case YcsbWorkload::kB:
        op.type = p < 0.95 ? YcsbOp::Type::kRead : YcsbOp::Type::kUpdate;
        break;
      case YcsbWorkload::kC:
        op.type = YcsbOp::Type::kRead;
        break;
      case YcsbWorkload::kD:
        op.type = p < 0.95 ? YcsbOp::Type::kRead : YcsbOp::Type::kInsert;
        break;
      case YcsbWorkload::kF:
        op.type = p < 0.5 ? YcsbOp::Type::kRead
                          : YcsbOp::Type::kReadModifyWrite;
        break;
    }

    if (op.type == YcsbOp::Type::kInsert) {
        op.key = records_++;
        latest_.append();
        if (dist_ == YcsbDistribution::kZipfian)
            zipf_.grow(records_);
    } else {
        op.key = pickKey();
    }
    return op;
}

} // namespace draid::workload
