#include "workload/zipfian.h"

#include <cassert>
#include <cmath>

namespace draid::workload {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    assert(n > 0);
    zetan_ = zeta(0, n_);
    zeta2_ = zeta(0, 2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

double
ZipfianGenerator::zeta(std::uint64_t from, std::uint64_t to) const
{
    double sum = 0.0;
    for (std::uint64_t i = from; i < to; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    return sum;
}

void
ZipfianGenerator::grow(std::uint64_t n)
{
    if (n <= n_)
        return;
    zetan_ += zeta(n_, n);
    n_ = n;
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

std::uint64_t
ZipfianGenerator::next(sim::Rng &rng)
{
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

} // namespace draid::workload
