/**
 * @file
 * Zipfian and latest-skewed key generators, following the YCSB reference
 * implementation (Gray et al.'s rejection-free method with precomputed
 * zeta).
 */

#ifndef DRAID_WORKLOAD_ZIPFIAN_H
#define DRAID_WORKLOAD_ZIPFIAN_H

#include <cstdint>

#include "sim/rng.h"

namespace draid::workload {

/** Zipf-distributed integers over [0, n). */
class ZipfianGenerator
{
  public:
    static constexpr double kDefaultTheta = 0.99;

    ZipfianGenerator(std::uint64_t n, double theta = kDefaultTheta);

    /** Draw the next value in [0, n) (rank 0 is the hottest). */
    std::uint64_t next(sim::Rng &rng);

    /**
     * Grow the item count (used by the latest distribution as inserts
     * arrive). Zeta is extended incrementally.
     */
    void grow(std::uint64_t n);

    std::uint64_t itemCount() const { return n_; }

  private:
    double zeta(std::uint64_t from, std::uint64_t to) const;

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
    double zeta2_;
};

/**
 * "Latest" distribution: skewed toward the most recently inserted keys
 * (YCSB workload D). next() returns a key index counted back from the
 * current maximum.
 */
class LatestGenerator
{
  public:
    explicit LatestGenerator(std::uint64_t n) : zipf_(n), max_(n) {}

    std::uint64_t
    next(sim::Rng &rng)
    {
        const std::uint64_t back = zipf_.next(rng);
        return max_ - 1 - back;
    }

    void
    append()
    {
        ++max_;
        zipf_.grow(max_);
    }

  private:
    ZipfianGenerator zipf_;
    std::uint64_t max_;
};

} // namespace draid::workload

#endif // DRAID_WORKLOAD_ZIPFIAN_H
