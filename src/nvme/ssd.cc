#include "nvme/ssd.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "telemetry/trace.h"

namespace draid::nvme {

namespace {

/** Channel "bytes" (= ns) for moving @p bytes at @p rate bytes/sec. */
std::uint64_t
scaled(std::uint64_t bytes, double rate)
{
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / rate * 1e9));
}

} // namespace

Ssd::Ssd(sim::Simulator &sim, const SsdConfig &config)
    : sim_(sim),
      config_(config),
      store_(config.capacity),
      channel_(sim, 1e9, /*latency=*/0, config.perCommand)
{
    // Label-only bind: channel completions attribute as "ssd.channel" in
    // the engine profile (span recording stays off until a tracer binds).
    channel_.bindTrace(nullptr, 0, "ssd.channel");
}

void
Ssd::read(std::uint64_t offset, std::uint32_t length,
          blockdev::ReadCallback cb)
{
    read(offset, length, 0, std::move(cb));
}

void
Ssd::read(std::uint64_t offset, std::uint32_t length, std::uint64_t trace,
          blockdev::ReadCallback cb)
{
    bytesRead_ += length;
    const sim::Tick start = std::max(sim_.now(), channel_.busyUntil());
    channel_.transfer(scaled(length, config_.readBw),
                      [this, offset, length, cb = std::move(cb)]() {
        sim_.schedule(config_.readLatency, "ssd.read.done",
                      [this, offset, length, cb = std::move(cb)]() {
            ++reads_;
            cb(blockdev::IoStatus::kOk, store_.readSync(offset, length));
        });
    });
    if (trace != 0 && tracer_ && tracer_->active()) {
        telemetry::TraceSpan span;
        span.traceId = trace;
        span.node = traceNode_;
        span.lane = "ssd";
        span.name = "ssd.read";
        span.start = start;
        span.end = channel_.busyUntil();
        span.args.emplace_back("bytes", std::to_string(length));
        tracer_->recordSpan(std::move(span));
    }
}

void
Ssd::write(std::uint64_t offset, ec::Buffer data, blockdev::WriteCallback cb)
{
    write(offset, std::move(data), 0, std::move(cb));
}

void
Ssd::write(std::uint64_t offset, ec::Buffer data, std::uint64_t trace,
           blockdev::WriteCallback cb)
{
    const std::uint64_t length = data.size();
    bytesWritten_ += length;
    const sim::Tick start = std::max(sim_.now(), channel_.busyUntil());
    channel_.transfer(scaled(length, config_.writeBw),
                      [this, offset, data = std::move(data),
                       cb = std::move(cb)]() {
        sim_.schedule(config_.writeLatency, "ssd.write.done",
                      [this, offset, data = std::move(data),
                       cb = std::move(cb)]() {
            ++writes_;
            store_.writeSync(offset, data);
            cb(blockdev::IoStatus::kOk);
        });
    });
    if (trace != 0 && tracer_ && tracer_->active()) {
        telemetry::TraceSpan span;
        span.traceId = trace;
        span.node = traceNode_;
        span.lane = "ssd";
        span.name = "ssd.write";
        span.start = start;
        span.end = channel_.busyUntil();
        span.args.emplace_back("bytes", std::to_string(length));
        tracer_->recordSpan(std::move(span));
    }
}

void
Ssd::bindTrace(telemetry::Tracer *tracer, sim::NodeId node)
{
    tracer_ = tracer;
    traceNode_ = node;
}

} // namespace draid::nvme
