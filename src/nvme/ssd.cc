#include "nvme/ssd.h"

#include <cmath>
#include <utility>

namespace draid::nvme {

namespace {

/** Channel "bytes" (= ns) for moving @p bytes at @p rate bytes/sec. */
std::uint64_t
scaled(std::uint64_t bytes, double rate)
{
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / rate * 1e9));
}

} // namespace

Ssd::Ssd(sim::Simulator &sim, const SsdConfig &config)
    : sim_(sim),
      config_(config),
      store_(config.capacity),
      channel_(sim, 1e9, /*latency=*/0, config.perCommand)
{
}

void
Ssd::read(std::uint64_t offset, std::uint32_t length,
          blockdev::ReadCallback cb)
{
    bytesRead_ += length;
    channel_.transfer(scaled(length, config_.readBw),
                      [this, offset, length, cb = std::move(cb)]() {
        sim_.schedule(config_.readLatency, [this, offset, length,
                                            cb = std::move(cb)]() {
            ++reads_;
            cb(blockdev::IoStatus::kOk, store_.readSync(offset, length));
        });
    });
}

void
Ssd::write(std::uint64_t offset, ec::Buffer data, blockdev::WriteCallback cb)
{
    bytesWritten_ += data.size();
    channel_.transfer(scaled(data.size(), config_.writeBw),
                      [this, offset, data = std::move(data),
                       cb = std::move(cb)]() {
        sim_.schedule(config_.writeLatency, [this, offset,
                                             data = std::move(data),
                                             cb = std::move(cb)]() {
            ++writes_;
            store_.writeSync(offset, data);
            cb(blockdev::IoStatus::kOk);
        });
    });
}

} // namespace draid::nvme
