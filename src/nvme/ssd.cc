#include "nvme/ssd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "telemetry/event_journal.h"
#include "telemetry/interference.h"
#include "telemetry/trace.h"

namespace draid::nvme {

namespace {

/** Channel "bytes" (= ns) for moving @p bytes at @p rate bytes/sec. */
std::uint64_t
scaled(std::uint64_t bytes, double rate)
{
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / rate * 1e9));
}

} // namespace

Ssd::Ssd(sim::Simulator &sim, const SsdConfig &config)
    : sim_(sim),
      config_(config),
      store_(config.capacity),
      channel_(sim, 1e9, sim::Ticks::zero(), config.perCommand)
{
    // Label-only: channel completions attribute as "ssd.channel" in the
    // engine profile (span recording stays off; see channelTap_).
    channel_.setLabel("ssd.channel");
}

void
Ssd::read(std::uint64_t offset, std::uint32_t length,
          blockdev::ReadCallback cb)
{
    read(offset, length, 0, std::move(cb));
}

void
Ssd::read(std::uint64_t offset, std::uint32_t length, std::uint64_t trace,
          blockdev::ReadCallback cb)
{
    bytesRead_ += length;
    const sim::Ticks start = std::max(sim_.now(), channel_.busyUntil());
    // The trace rides into the channel pipe for contention attribution
    // (the pipe's tracer is never bound, so no duplicate span appears).
    channel_.transfer(scaled(length, config_.readBw / degrade_), trace,
                      [this, offset, length, cb = std::move(cb)]() {
        const auto latency = sim::Ticks{static_cast<sim::Tick>(
            static_cast<double>(config_.readLatency.raw()) * degrade_)};
        sim_.schedule(latency, "ssd.read.done",
                      [this, offset, length, cb = std::move(cb)]() {
            ++reads_;
            // A planted latent sector error surfaces only when the media
            // is actually accessed: the drive burns the full service time
            // and then reports the unreadable range (checked at media
            // time, so an intervening rewrite rescues the read).
            if (const auto *hit = findLse(offset, length)) {
                ++lseHits_;
                if (journal_) {
                    journal_->record(
                        telemetry::EventType::kLatentSectorError,
                        journalNode_, sim_.now().raw(), hit->first,
                        hit->second - hit->first);
                }
                cb(blockdev::IoStatus::kError, ec::Buffer());
                return;
            }
            cb(blockdev::IoStatus::kOk, store_.readSync(offset, length));
        });
    });
    if (trace != 0 && tracer_ && tracer_->active()) {
        telemetry::TraceSpan span;
        span.traceId = trace;
        span.node = traceNode_;
        span.lane = "ssd";
        span.name = "ssd.read";
        span.start = start.raw();
        span.end = channel_.busyUntil().raw();
        if (contention_ && contention_->enabled())
            span.tenant = contention_->tenantOf(trace);
        span.args.emplace_back("bytes", std::to_string(length));
        tracer_->recordSpan(std::move(span));
    }
}

void
Ssd::write(std::uint64_t offset, ec::Buffer data, blockdev::WriteCallback cb)
{
    write(offset, std::move(data), 0, std::move(cb));
}

void
Ssd::write(std::uint64_t offset, ec::Buffer data, std::uint64_t trace,
           blockdev::WriteCallback cb)
{
    const std::uint64_t length = data.size();
    bytesWritten_ += length;
    const sim::Ticks start = std::max(sim_.now(), channel_.busyUntil());
    channel_.transfer(scaled(length, config_.writeBw / degrade_), trace,
                      [this, offset, data = std::move(data),
                       cb = std::move(cb)]() {
        const auto latency = sim::Ticks{static_cast<sim::Tick>(
            static_cast<double>(config_.writeLatency.raw()) * degrade_)};
        sim_.schedule(latency, "ssd.write.done",
                      [this, offset, data = std::move(data),
                       cb = std::move(cb)]() {
            ++writes_;
            store_.writeSync(offset, data);
            // Rewriting remaps bad sectors: drop every planted range the
            // write touches (checked at media time, like the read path).
            if (!lse_.empty()) {
                const std::uint64_t end = offset + data.size();
                for (auto it = lse_.begin(); it != lse_.end();) {
                    if (it->first < end && it->second > offset)
                        it = lse_.erase(it);
                    else
                        ++it;
                }
            }
            cb(blockdev::IoStatus::kOk);
        });
    });
    if (trace != 0 && tracer_ && tracer_->active()) {
        telemetry::TraceSpan span;
        span.traceId = trace;
        span.node = traceNode_;
        span.lane = "ssd";
        span.name = "ssd.write";
        span.start = start.raw();
        span.end = channel_.busyUntil().raw();
        if (contention_ && contention_->enabled())
            span.tenant = contention_->tenantOf(trace);
        span.args.emplace_back("bytes", std::to_string(length));
        tracer_->recordSpan(std::move(span));
    }
}

void
Ssd::bindTrace(telemetry::Tracer *tracer, sim::NodeId node)
{
    tracer_ = tracer;
    traceNode_ = node;
}

void
Ssd::bindContention(telemetry::ContentionTracker *tracker,
                    std::uint32_t res)
{
    contention_ = tracker;
    channelTap_.bindContention(tracker, res);
    channel_.setObserver(&channelTap_);
}

void
Ssd::bindJournal(telemetry::EventJournal *journal, sim::NodeId node)
{
    journal_ = journal;
    journalNode_ = node;
}

void
Ssd::setDegradeFactor(double factor)
{
    assert(factor >= 1.0);
    degrade_ = factor;
}

void
Ssd::plantLatentSectorError(std::uint64_t offset, std::uint32_t length)
{
    assert(length > 0);
    assert(offset + length <= config_.capacity);
    // Keep ranges disjoint: extend an existing overlapping range instead
    // of stacking duplicates (plant order must not matter).
    const std::uint64_t lo = offset;
    const std::uint64_t hi = offset + length;
    auto it = lse_.lower_bound(lo);
    if (it != lse_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= lo)
            it = prev;
    }
    std::uint64_t mergedLo = lo, mergedHi = hi;
    while (it != lse_.end() && it->first <= mergedHi) {
        mergedLo = std::min(mergedLo, it->first);
        mergedHi = std::max(mergedHi, it->second);
        it = lse_.erase(it);
    }
    lse_.emplace(mergedLo, mergedHi);
}

const std::pair<const std::uint64_t, std::uint64_t> *
Ssd::findLse(std::uint64_t offset, std::uint64_t length) const
{
    if (lse_.empty())
        return nullptr;
    const std::uint64_t end = offset + length;
    auto it = lse_.upper_bound(offset);
    if (it != lse_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > offset)
            return &*prev;
    }
    if (it != lse_.end() && it->first < end)
        return &*it;
    return nullptr;
}

} // namespace draid::nvme
