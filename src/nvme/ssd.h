/**
 * @file
 * NVMe SSD model: an in-memory backing store behind one shared media
 * channel with distinct read and write service rates.
 *
 * The rates default to the paper's drive (Dell Ent NVMe AGN MU U.2
 * 1.6 TB): ~19 Gbps (§2.3) sustained write, ~3.2 GB/s read. Reads and
 * writes share the channel — concurrent mixed traffic divides the media
 * bandwidth, which is what caps read-modify-write throughput at the
 * "maximum bandwidth eight SSDs can provide" plateau the paper reports
 * (§9.3). Fixed media latencies apply per direction on top of queueing.
 */

#ifndef DRAID_NVME_SSD_H
#define DRAID_NVME_SSD_H

#include <cstdint>
#include <map>
#include <memory>

#include "blockdev/block_device.h"
#include "blockdev/memory_bdev.h"
#include "sim/pipe.h"
#include "sim/simulator.h"
#include "sim/types.h"
#include "telemetry/lane_tap.h"

namespace draid::telemetry {
class ContentionTracker;
class Tracer;
class EventJournal;
}

namespace draid::nvme {

/** Calibrated performance profile of one drive. */
struct SsdConfig
{
    std::uint64_t capacity = 64ull << 30; ///< logical bytes
    double readBw = 3.2e9;                ///< bytes/s
    double writeBw = 2.375e9;             ///< bytes/s (~19 Gbps, §2.3)
    sim::Ticks readLatency = sim::Ticks::us(84);
    sim::Ticks writeLatency = sim::Ticks::us(14);
    sim::Ticks perCommand = sim::Ticks::us(2); ///< channel occupancy/cmd
};

/** One simulated NVMe drive. */
class Ssd : public blockdev::BlockDevice
{
  public:
    Ssd(sim::Simulator &sim, const SsdConfig &config);

    std::uint64_t sizeBytes() const override { return config_.capacity; }

    void read(std::uint64_t offset, std::uint32_t length,
              blockdev::ReadCallback cb) override;

    void write(std::uint64_t offset, ec::Buffer data,
               blockdev::WriteCallback cb) override;

    /**
     * Traced variants: record the exact media-channel occupancy window as
     * an "ssd.read"/"ssd.write" span when telemetry is bound, tracing is
     * enabled, and @p trace is nonzero. Timing is identical to the
     * untraced calls.
     */
    void read(std::uint64_t offset, std::uint32_t length,
              std::uint64_t trace, blockdev::ReadCallback cb);
    void write(std::uint64_t offset, ec::Buffer data, std::uint64_t trace,
               blockdev::WriteCallback cb);

    /** Attach a span sink; spans land on node @p node, lane "ssd". */
    void bindTrace(telemetry::Tracer *tracer, sim::NodeId node);

    /**
     * Attach a contention tracker under resource id @p res: traced I/O
     * records its exact media-channel occupancy and queue-wait blame
     * (observe-only; see Pipe::bindContention).
     */
    void bindContention(telemetry::ContentionTracker *tracker,
                        std::uint32_t res);

    /**
     * Attach the cluster event journal: a read hitting a latent sector
     * error records a LatentSectorError event (a = media offset, b = len)
     * at discovery time, as node @p node. Observe-only.
     */
    void bindJournal(telemetry::EventJournal *journal, sim::NodeId node);

    /**
     * Gray-drive hook (fault campaigns): service times — channel occupancy
     * and fixed media latency — scale by @p factor (>= 1.0). The drive
     * keeps serving correctly, only slower; 1.0 restores nominal speed.
     */
    void setDegradeFactor(double factor);
    double degradeFactor() const { return degrade_; }

    /**
     * Plant a latent sector error over media bytes [offset, offset+len):
     * until the range is rewritten, any read intersecting it completes
     * with IoStatus::kError after normal media timing (the drive burns the
     * access before reporting the unreadable sector). A write that touches
     * a planted range clears it (sector remap on rewrite), silently.
     */
    void plantLatentSectorError(std::uint64_t offset, std::uint32_t length);

    /** Planted-and-not-yet-cleared latent sector error ranges. */
    std::size_t latentSectorErrors() const { return lse_.size(); }

    /** Reads that hit a latent sector error (discoveries, not ranges). */
    std::uint64_t latentErrorsHit() const { return lseHits_; }

    /** Direct store access for scrub checks in tests (no timing). */
    blockdev::MemoryBdev &store() { return store_; }
    const blockdev::MemoryBdev &store() const { return store_; }

    const SsdConfig &config() const { return config_; }

    std::uint64_t readsCompleted() const { return reads_; }
    std::uint64_t writesCompleted() const { return writes_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

    /** Shared-channel utilization accessor (rebuild load balancing). */
    const sim::Pipe &channel() const { return channel_; }

  private:
    sim::Simulator &sim_;
    SsdConfig config_;
    blockdev::MemoryBdev store_;
    /**
     * Shared media channel, scaled to 1 byte/ns: a transfer of N "bytes"
     * occupies the channel for N ns, so read and write service times are
     * expressed by scaling the byte count with the per-direction rate.
     */
    sim::Pipe channel_;
    /** Observe-only contention tap for the shared channel (no spans: the
     *  Ssd records its own "ssd.read"/"ssd.write" spans with media timing
     *  included, so the tap's tracer is never bound). */
    telemetry::LaneTap channelTap_;
    telemetry::Tracer *tracer_ = nullptr;
    sim::NodeId traceNode_ = 0;
    telemetry::ContentionTracker *contention_ = nullptr;
    telemetry::EventJournal *journal_ = nullptr;
    sim::NodeId journalNode_ = 0;
    /** Gray-drive service-time multiplier (1.0 = healthy). */
    double degrade_ = 1.0;
    /** Latent sector errors: media start offset -> end offset (ordered so
     *  intersection checks are deterministic). */
    // draid-lint: cap(injected LSE ranges; campaign config bounds injections)
    std::map<std::uint64_t, std::uint64_t> lse_;
    std::uint64_t lseHits_ = 0;
    /** First planted range intersecting [offset, offset+length), if any. */
    const std::pair<const std::uint64_t, std::uint64_t> *
    findLse(std::uint64_t offset, std::uint64_t length) const;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace draid::nvme

#endif // DRAID_NVME_SSD_H
